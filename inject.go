package ftfft

import "ftfft/internal/fault"

// Injector decides, at each fault site a protected transform visits, whether
// to corrupt the visited block. The built-in Schedule implementation fires a
// deterministic list of faults; bring your own Injector for custom fault
// models.
type Injector = fault.Injector

// Site identifies a point in a protected algorithm where faults can strike
// (the Site* constants below).
type Site = fault.Site

// Mode selects how an injected fault corrupts an element (the AddConstant /
// SetConstant / BitFlip constants below).
type Mode = fault.Mode

// Fault describes one scheduled soft error: what kind, where, when, and how
// the element is corrupted. The zero Rank matters in parallel plans; use
// AnyRank for sequential ones.
type Fault = fault.Fault

// FaultRecord logs an injection that actually happened.
type FaultRecord = fault.Record

// Schedule is the deterministic injector used by the paper-reproduction
// experiments; it fires each fault exactly once and records what it did.
type Schedule = fault.Schedule

// NewFaultSchedule builds a deterministic injector; seed drives random index
// selection for faults with Index = -1.
func NewFaultSchedule(seed int64, faults ...Fault) *Schedule {
	return fault.NewSchedule(seed, faults...)
}

// AnyRank matches every rank in a Fault's Rank field.
const AnyRank = -1

// Fault sites (where a Fault can strike).
const (
	// SiteSubFFT1 is a first-layer sub-FFT output (arithmetic fault).
	SiteSubFFT1 = fault.SiteSubFFT1
	// SiteSubFFT2 is a second-layer sub-FFT output.
	SiteSubFFT2 = fault.SiteSubFFT2
	// SiteFullFFT is the whole-transform output (offline scheme).
	SiteFullFFT = fault.SiteFullFFT
	// SiteTwiddle is the twiddle-multiplication result.
	SiteTwiddle = fault.SiteTwiddle
	// SiteInputMemory is the input array at rest.
	SiteInputMemory = fault.SiteInputMemory
	// SiteIntermediateMemory is the inter-layer intermediate at rest.
	SiteIntermediateMemory = fault.SiteIntermediateMemory
	// SiteOutputMemory is the output array at rest.
	SiteOutputMemory = fault.SiteOutputMemory
	// SiteMessage is a message payload in transit (parallel plans).
	SiteMessage = fault.SiteMessage
	// SiteParallelFFT1 is a p-point sub-FFT output in the parallel FFT1.
	SiteParallelFFT1 = fault.SiteParallelFFT1
	// SiteParallelFFT2 is a sub-FFT output inside the parallel FFT2.
	SiteParallelFFT2 = fault.SiteParallelFFT2
)

// Fault corruption modes.
const (
	// AddConstant adds Value to the element (arithmetic-fault model).
	AddConstant = fault.AddConstant
	// SetConstant overwrites the element with Value (memory-fault model).
	SetConstant = fault.SetConstant
	// BitFlip flips bit Bit of the real part (the Table 6 model).
	BitFlip = fault.BitFlip
)
