//go:build race

package ftfft_test

// raceEnabled reports whether the race detector is instrumenting this build;
// its allocations make AllocsPerRun assertions meaningless.
const raceEnabled = true
