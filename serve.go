// serve.go is the public face of FFT-as-a-service: ListenServe runs a
// long-lived spectral server multiplexing concurrent clients onto a bounded
// plan cache, and Client submits transforms to one. The service extends the
// paper's ABFT contract to the wire — every payload travels under §5 block
// checksums and every response is repaired or rejected, never silently
// wrong — while the transforms themselves run whatever protection scheme
// each request names.
package ftfft

import (
	"context"
	"fmt"

	"ftfft/internal/mpi"
	"ftfft/internal/serve"
	"ftfft/internal/tune"
)

// Server is a long-lived FFT service instance: it accepts client
// connections, multiplexes their requests onto a bounded LRU plan cache,
// and admits transform execution through the shared executor so QPS bursts
// degrade by queuing rather than goroutine explosion. Create one with
// ListenServe; stop it with Shutdown (graceful drain) or Close (immediate).
type Server = serve.Server

// ErrServerUnavailable is returned (wrapped) for requests a draining or
// stopped server refused.
var ErrServerUnavailable = serve.ErrUnavailable

// ErrClientClosed is returned by client calls issued — or still in
// flight — after Close, or after the connection failed.
var ErrClientClosed = serve.ErrClientClosed

// ServerConfig tunes a Server. The zero value is a working default: a
// 64-plan cache, payloads up to 1<<20 elements, in-flight requests bounded
// at twice the executor width, plans built on the process-wide shared pool.
type ServerConfig struct {
	// PlanCache bounds the number of cached plans; least recently used
	// plans are evicted beyond it. 0 means 64.
	PlanCache int
	// MaxInFlight bounds concurrently executing requests across all
	// connections — the burst backpressure point. 0 means 2×workers
	// (minimum 4).
	MaxInFlight int
	// MaxElems bounds one request's payload in complex128-equivalent
	// elements. 0 means 1<<20 (16 MiB of samples).
	MaxElems int
	// Workers sizes a server-owned executor pool; 0 shares the
	// process-wide default pool.
	Workers int

	// Injector, when non-nil, is installed in every plan the server
	// builds — the server-side fault-injection site for service
	// experiments. Clients cannot install injectors remotely.
	Injector Injector
	// EtaScale scales the §8 round-off detection thresholds of every
	// built plan; 0 means 1.
	EtaScale float64
	// MaxRetries caps recomputation attempts per protected unit in every
	// built plan; 0 means 3.
	MaxRetries int
}

// ListenServe starts an FFT server on network ("unix" or "tcp") and addr.
// Plans are built with New / NewReal exactly as a local caller would — each
// request names its own size, geometry (WithDims equivalent) and protection
// scheme — and cached across clients under cfg.PlanCache. Use
// (*Server).Addr to recover the bound address and (*Server).Shutdown for a
// graceful drain.
//
// Served plans follow the process-wide wisdom table (ImportWisdom) but never
// measure: a cache miss applies any recorded tuned choices and otherwise
// keeps the heuristics, so request latency never pays for a benchmark sweep.
// The plan cache keys on the wisdom epoch — importing or forgetting wisdom
// rotates cached plans out rather than mixing plans tuned under different
// tables.
func ListenServe(network, addr string, cfg ServerConfig) (*Server, error) {
	tuning := func() []Option {
		// tuneWisdom, not the client-visible modes: apply wisdom hits,
		// never benchmark inside a request.
		opts := []Option{WithTuning(tuneWisdom)}
		if cfg.Injector != nil {
			opts = append(opts, WithInjector(cfg.Injector))
		}
		if cfg.EtaScale != 0 {
			opts = append(opts, WithEtaScale(cfg.EtaScale))
		}
		if cfg.MaxRetries != 0 {
			opts = append(opts, WithMaxRetries(cfg.MaxRetries))
		}
		return opts
	}
	return serve.Listen(network, addr, serve.Config{
		NewTransform: func(n int, dims []int, protection byte) (serve.Transformer, error) {
			opts := append(tuning(), WithProtection(Protection(protection)))
			if len(dims) > 0 {
				opts = append(opts, WithDims(dims...))
			}
			return New(n, opts...)
		},
		NewReal: func(n int, protection byte) (serve.RealTransformer, error) {
			opts := append(tuning(), WithProtection(Protection(protection)))
			return NewReal(n, opts...)
		},
		PlanEpoch:   tune.Epoch,
		PlanCache:   cfg.PlanCache,
		MaxInFlight: cfg.MaxInFlight,
		MaxElems:    cfg.MaxElems,
		Workers:     cfg.Workers,
	})
}

// Client is a connection to a Server. One Client is safe for concurrent
// use: requests from many goroutines multiplex onto the single connection
// and responses are matched back by id, so N in-flight transforms share one
// dial. Requests and responses travel under §5 block checksums — a single
// corrupted element on either leg is repaired (and counted in the Report),
// anything worse is rejected with ErrUncorrectable.
type Client struct {
	c *serve.Client
}

// Dial connects to a Server at network/addr.
func Dial(network, addr string) (*Client, error) {
	c, err := serve.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// MaxElems returns the per-request element limit the server advertised.
func (c *Client) MaxElems() int { return c.c.MaxElems() }

// InjectWireFaults installs a hook over the serialized element payload of
// every outgoing request — wire-level soft errors, which the §5 checksums
// must repair server-side or reject. A nil hook removes it.
func (c *Client) InjectWireFaults(f func(payload []byte)) { c.c.InjectWireFaults(f) }

// Close tears the connection down; in-flight calls fail with
// ErrClientClosed. Idempotent.
func (c *Client) Close() error { return c.c.Close() }

// Forward computes the protected forward DFT of src on the server, writing
// the Len(src) output points into dst. Options select the scheme and
// geometry exactly as with New — WithProtection, WithDims, WithShape —
// and determine which server-side cached plan serves the request.
func (c *Client) Forward(ctx context.Context, dst, src []complex128, opts ...Option) (Report, error) {
	return c.complexOp(ctx, mpi.OpForward, dst, src, opts)
}

// Inverse computes the protected inverse DFT (1/N normalization) of src on
// the server into dst, under the same options as Forward.
func (c *Client) Inverse(ctx context.Context, dst, src []complex128, opts ...Option) (Report, error) {
	return c.complexOp(ctx, mpi.OpInverse, dst, src, opts)
}

// RealForward computes the protected half spectrum of the len(src) real
// samples (even length) into dst, which must hold len(src)/2+1 bins.
// Geometry options do not apply to the 1-D real path and are rejected.
func (c *Client) RealForward(ctx context.Context, dst []complex128, src []float64, opts ...Option) (Report, error) {
	prot, dims, err := clientOptions(len(src), opts)
	if err != nil {
		return Report{}, err
	}
	if len(dims) > 0 {
		return Report{}, fmt.Errorf("ftfft: invalid real-transform options: WithDims/WithShape do not apply to RealForward")
	}
	return c.c.Do(ctx, serve.Request{
		Op: mpi.OpRealForward, Protection: prot, N: len(src), Real: src,
	}, dst, nil)
}

// RealInverse computes the len(dst) real samples whose stored half spectrum
// is src (len(dst)/2+1 bins) into dst, with 1/n normalization. Geometry
// options are rejected as with RealForward.
func (c *Client) RealInverse(ctx context.Context, dst []float64, src []complex128, opts ...Option) (Report, error) {
	n := 2 * (len(src) - 1)
	prot, dims, err := clientOptions(n, opts)
	if err != nil {
		return Report{}, err
	}
	if len(dims) > 0 {
		return Report{}, fmt.Errorf("ftfft: invalid real-transform options: WithDims/WithShape do not apply to RealInverse")
	}
	return c.c.Do(ctx, serve.Request{
		Op: mpi.OpRealInverse, Protection: prot, N: n, Data: src,
	}, nil, dst)
}

func (c *Client) complexOp(ctx context.Context, op mpi.ServeOp, dst, src []complex128, opts []Option) (Report, error) {
	prot, dims, err := clientOptions(len(src), opts)
	if err != nil {
		return Report{}, err
	}
	return c.c.Do(ctx, serve.Request{
		Op: op, Protection: prot, N: len(src), Dims: dims, Data: src,
	}, dst, nil)
}

// clientOptions distills an option list into the request parameters that
// travel on the wire: the protection byte and the geometry. Execution-side
// options (ranks, transports, executors, injectors, tuning) configure a
// plan where it runs — the server — and are rejected here so a client
// cannot silently believe it changed server behavior.
func clientOptions(n int, opts []Option) (protection byte, dims []int, err error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	switch {
	case c.ranks != 0:
		return 0, nil, fmt.Errorf("ftfft: invalid client options: WithRanks configures execution, which belongs to the server")
	case c.transport != nil:
		return 0, nil, fmt.Errorf("ftfft: invalid client options: WithTransport configures execution, which belongs to the server")
	case c.workers != 0 || c.executorSet:
		return 0, nil, fmt.Errorf("ftfft: invalid client options: WithWorkers/WithExecutor configure execution, which belongs to the server")
	case c.injector != nil:
		return 0, nil, fmt.Errorf("ftfft: invalid client options: WithInjector is server-side (ServerConfig.Injector); use InjectWireFaults for wire faults")
	case c.etaScale != 0 || c.maxRetries != 0:
		return 0, nil, fmt.Errorf("ftfft: invalid client options: WithEtaScale/WithMaxRetries are server-side tuning (ServerConfig)")
	case c.tuning != TuneEstimate:
		return 0, nil, fmt.Errorf("ftfft: invalid client options: WithTuning is plan-side; tune where plans are built and ship wisdom to the server (ImportWisdom)")
	case c.batchWindow != 0:
		return 0, nil, fmt.Errorf("ftfft: invalid client options: WithBatchWindow configures execution, which belongs to the server")
	}
	if err := c.validate(n); err != nil {
		return 0, nil, err
	}
	if c.rows != 0 || c.cols != 0 {
		c.dims = []int{c.rows, c.cols}
	}
	if _, err := c.protection.coreConfig(); err != nil {
		return 0, nil, err
	}
	return byte(c.protection), c.dims, nil
}
