// The BenchmarkServe* family prices FFT-as-a-service end to end: framed
// request over a Unix socket, §5 wire-checksum verification, plan-cache
// lookup, pool-admitted protected transform, checksummed response — against
// the local Transform the server wraps. Sustained measures steady-state
// throughput under concurrent clients on one plan (the cache hit path);
// Mixed interleaves sizes and protection schemes across the cache the way a
// shared service sees traffic; Latency prices a single lonely client. Each
// run also reports the p99 request latency alongside ns/op (mean), since a
// service is judged by its tail.
//
// bench.sh records the family; BENCH_PR7.json pins the trajectory point for
// this PR.
package ftfft_test

import (
	"context"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"ftfft"
	"ftfft/internal/workload"
)

// benchServer starts a unix-socket server for the benchmark's lifetime.
func benchServer(b *testing.B, cfg ftfft.ServerConfig) (network, addr string) {
	b.Helper()
	sock := filepath.Join(b.TempDir(), "bench-serve.sock")
	srv, err := ftfft.ListenServe("unix", sock, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return "unix", sock
}

// reportP99 folds per-request latencies into the benchmark output.
func reportP99(b *testing.B, lat []time.Duration) {
	b.Helper()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
}

// BenchmarkServeSustained is the steady-state QPS number: several clients
// hammering one (n, protection) plan concurrently, every request riding the
// plan-cache hit path. ns/op is the sustained per-request cost (QPS =
// clients·1e9/ns-per-op with 4 in-flight streams).
func BenchmarkServeSustained(b *testing.B) {
	const n, clients = 1 << 12, 4
	network, addr := benchServer(b, ftfft.ServerConfig{})
	src := workload.Uniform(int64(n), n)
	opts := []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFTMemory)}
	ctx := context.Background()

	// Warm the plan cache so b.N measures the hit path, not the build.
	warm, err := ftfft.Dial(network, addr)
	if err != nil {
		b.Fatal(err)
	}
	warmDst := make([]complex128, n)
	if _, err := warm.Forward(ctx, warmDst, src, opts...); err != nil {
		b.Fatal(err)
	}
	warm.Close()

	lats := make([][]time.Duration, clients)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	var wg sync.WaitGroup
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := ftfft.Dial(network, addr)
			if err != nil {
				b.Error(err)
				return
			}
			defer c.Close()
			dst := make([]complex128, n)
			for i := k; i < b.N; i += clients {
				t0 := time.Now()
				if _, err := c.Forward(ctx, dst, src, opts...); err != nil {
					b.Error(err)
					return
				}
				lats[k] = append(lats[k], time.Since(t0))
			}
		}(k)
	}
	wg.Wait()
	b.StopTimer()
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	reportP99(b, all)
}

// BenchmarkServeMixed is the shared-service traffic shape: concurrent
// clients rotating through mixed sizes and protection schemes, exercising
// plan-cache multiplexing rather than one hot entry.
func BenchmarkServeMixed(b *testing.B) {
	const clients = 4
	sizes := []int{1 << 8, 1 << 10, 1 << 12}
	prots := []ftfft.Protection{ftfft.None, ftfft.OnlineABFT, ftfft.OnlineABFTMemory}
	network, addr := benchServer(b, ftfft.ServerConfig{})
	ctx := context.Background()

	srcs := make([][]complex128, len(sizes))
	for i, n := range sizes {
		srcs[i] = workload.Uniform(int64(n), n)
	}
	// Warm every (size, protection) plan.
	warm, err := ftfft.Dial(network, addr)
	if err != nil {
		b.Fatal(err)
	}
	for i, n := range sizes {
		dst := make([]complex128, n)
		for _, p := range prots {
			if _, err := warm.Forward(ctx, dst, srcs[i], ftfft.WithProtection(p)); err != nil {
				b.Fatal(err)
			}
		}
	}
	warm.Close()

	lats := make([][]time.Duration, clients)
	b.ResetTimer()
	var wg sync.WaitGroup
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := ftfft.Dial(network, addr)
			if err != nil {
				b.Error(err)
				return
			}
			defer c.Close()
			dst := make([]complex128, sizes[len(sizes)-1])
			for i := k; i < b.N; i += clients {
				si := (k + i) % len(sizes)
				prot := prots[(k+i/len(sizes))%len(prots)]
				t0 := time.Now()
				if _, err := c.Forward(ctx, dst[:sizes[si]], srcs[si], ftfft.WithProtection(prot)); err != nil {
					b.Error(err)
					return
				}
				lats[k] = append(lats[k], time.Since(t0))
			}
		}(k)
	}
	wg.Wait()
	b.StopTimer()
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	reportP99(b, all)
}

// BenchmarkServeLatency is the lonely-client number: one connection,
// strictly sequential requests, so ns/op is the full unloaded round-trip
// (wire + checksums + transform) and the service overhead is the delta
// against BenchmarkServeLocalBaseline.
func BenchmarkServeLatency(b *testing.B) {
	const n = 1 << 12
	network, addr := benchServer(b, ftfft.ServerConfig{})
	c, err := ftfft.Dial(network, addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	src := workload.Uniform(int64(n), n)
	dst := make([]complex128, n)
	opts := []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFTMemory)}
	ctx := context.Background()
	if _, err := c.Forward(ctx, dst, src, opts...); err != nil {
		b.Fatal(err)
	}
	lat := make([]time.Duration, 0, b.N)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := c.Forward(ctx, dst, src, opts...); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	reportP99(b, lat)
}

// BenchmarkServeLocalBaseline is the same transform without the service:
// the in-process Transform the server would run, pricing what the wire,
// checksums and scheduling add.
func BenchmarkServeLocalBaseline(b *testing.B) {
	const n = 1 << 12
	tr, err := ftfft.New(n, ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		b.Fatal(err)
	}
	src := workload.Uniform(int64(n), n)
	dst := make([]complex128, n)
	ctx := context.Background()
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Forward(ctx, dst, src); err != nil {
			b.Fatal(err)
		}
	}
}
