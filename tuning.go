package ftfft

import (
	"context"
	"time"

	"ftfft/internal/core"
	"ftfft/internal/fft"
	"ftfft/internal/nd"
	"ftfft/internal/parallel"
	"ftfft/internal/tune"
)

// TuningMode selects the plan-time tuning policy; see WithTuning.
type TuningMode int

const (
	// TuneEstimate keeps the analytic heuristics every choice shipped with
	// and ignores the wisdom table entirely — the default, bit-identical to
	// untuned behavior.
	TuneEstimate TuningMode = iota
	// TuneMeasured times the legal candidates for each tunable choice at
	// plan build (FFTW's MEASURE) and records the winners as wisdom.
	TuneMeasured
	// tuneWisdom applies wisdom hits but never measures on a miss — the
	// serving policy, installed internally by ListenServe so a service
	// follows imported wisdom deterministically without pausing a request
	// to benchmark.
	tuneWisdom
)

// ExportWisdom serializes the process-wide wisdom table — every measured
// winner recorded by TuneMeasured plan builds — as a versioned, checksummed
// blob. The canonical fleet workflow: tune once on one canary host, export,
// ship the file, ImportWisdom everywhere (including services via the
// -wisdom flag on ftserve); plans built from the same wisdom make identical
// choices and therefore produce bit-identical outputs.
func ExportWisdom() []byte { return tune.Export() }

// ImportWisdom merges an ExportWisdom blob into the process-wide wisdom
// table and bumps the wisdom epoch (serve plan caches key on it, so cached
// plans tuned under different wisdom are never mixed). A malformed blob is
// rejected whole with no table change.
func ImportWisdom(data []byte) error { return tune.Import(data) }

// ForgetWisdom clears the process-wide wisdom table and bumps the epoch.
func ForgetWisdom() { tune.Forget() }

// tuneMode maps the public option onto the internal tuning policy.
func (c *config) tuneMode() tune.Mode {
	switch c.tuning {
	case TuneMeasured:
		return tune.Measured
	case tuneWisdom:
		return tune.Wisdom
	default:
		return tune.Estimate
	}
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// kernelEligible reports whether flat-vs-recursive is a real A-B for an
// n-point core transform: both two-layer sub-plan sizes must be powers of
// two (KernelFlat is pow2-only; for other sizes auto already resolves to
// the recursive engine and there is nothing to tune).
func kernelEligible(n int) bool {
	m, k, err := core.Split(n)
	if err != nil {
		m, k = n, 1
	}
	return isPow2(m) && isPow2(k)
}

// applyCoreTuning installs the kernel and convolution-length knobs on a
// core config under the plan's tuning mode. TuneEstimate leaves the config
// untouched — the zero knobs reproduce pre-tuning plans bit for bit.
func applyCoreTuning(n int, cfg *core.Config, c *config, real bool) {
	mode := c.tuneMode()
	if mode == tune.Estimate {
		return
	}
	cfg.ConvLen = convChooser(mode)

	inner := n
	if real {
		if n%2 != 0 {
			return // NewReal will reject n; nothing to tune
		}
		inner = n / 2 // the packed complex transform the knob actually times
	}
	if !kernelEligible(inner) {
		return
	}
	key, ok := tune.KeyFor(tune.KnobKernel, n, nil, uint8(c.protection), real)
	if !ok {
		return
	}
	if v, hit := tune.Lookup(key); hit {
		if kn := fft.Kernel(v); kn == fft.KernelFlat || kn == fft.KernelRecursive {
			cfg.Kernel = kn
		}
		return
	}
	if mode != tune.Measured {
		return
	}
	if kn := measureKernel(n, *cfg, real); kn != fft.KernelAuto {
		cfg.Kernel = kn
		tune.Record(key, int64(kn))
	}
}

// convChooser is the ConvLen callback for the tuned modes: a wisdom hit
// wins (ignoring recorded lengths that are illegal for this leaf, e.g. from
// wisdom tuned before a ladder change), a measured-mode miss measures the
// shared candidate ladder and records the winner, and anything else defers
// to the convCost heuristic (return 0).
func convChooser(mode tune.Mode) func(int) int {
	return func(leaf int) int {
		key, ok := tune.KeyFor(tune.KnobConv, leaf, nil, 0, false)
		if !ok {
			return 0
		}
		if v, hit := tune.Lookup(key); hit {
			if m := int(v); m >= 2*leaf-1 {
				return m
			}
			return 0
		}
		if mode != tune.Measured {
			return 0
		}
		m := tune.MeasureConv(leaf)
		if m > 0 {
			tune.Record(key, int64(m))
		}
		return m
	}
}

// measureKernel times the flat and recursive engines on a throwaway
// transformer each (injector stripped — tuning must not consume scheduled
// faults or pay repair time) and returns the winner, or KernelAuto when
// neither candidate builds.
func measureKernel(n int, cfg core.Config, real bool) fft.Kernel {
	cfg.Injector = nil
	cfg.ConvLen = nil // kernel A-B must not trigger conv measurement
	iters := tune.Iters(n)
	ctx := context.Background()
	best, bestT := fft.KernelAuto, time.Duration(0)
	for _, kn := range []fft.Kernel{fft.KernelFlat, fft.KernelRecursive} {
		kcfg := cfg
		kcfg.Kernel = kn
		var run func()
		if real {
			tr, err := core.NewReal(n, kcfg)
			if err != nil {
				continue
			}
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(i%17) - 8
			}
			dst := make([]complex128, n/2+1)
			run = func() { _, _ = tr.TransformContext(ctx, dst, src) }
		} else {
			tr, err := core.New(n, kcfg)
			if err != nil {
				continue
			}
			src := make([]complex128, n)
			for i := range src {
				src[i] = complex(float64(i%17)-8, float64(i%13)-6)
			}
			dst := make([]complex128, n)
			run = func() { _, _ = tr.TransformContext(ctx, dst, src) }
		}
		d := tune.Measure(iters, run)
		if best == fft.KernelAuto || d < bestT {
			best, bestT = kn, d
		}
	}
	return best
}

// applyTileTuning resolves the nd tile knob on a built plan: a wisdom hit
// retiles immediately; a measured-mode miss sweeps the shared TileLadder on
// the plan itself (Retile never changes arithmetic, so the sweep is safe)
// and records the winner. Skipped with an active injector — measurement
// must not consume scheduled faults.
func applyTileTuning(pl *nd.Plan, c *config) {
	mode := c.tuneMode()
	if mode == tune.Estimate {
		return
	}
	key, ok := tune.KeyFor(tune.KnobTile, pl.Len(), pl.Dims(), uint8(c.protection), false)
	if !ok {
		return // shapes beyond tune.MaxDims go untuned
	}
	if v, hit := tune.Lookup(key); hit {
		pl.Retile(int(v))
		return
	}
	if mode != tune.Measured || c.injector != nil {
		return
	}
	if best := measureTile(pl); best > 0 {
		pl.Retile(best)
		tune.Record(key, int64(best))
	}
}

// measureTile sweeps the TileLadder on the built plan with throwaway
// buffers and returns the fastest tile size. The plan is left on the last
// swept candidate; the caller retiles to the winner.
func measureTile(pl *nd.Plan) int {
	n := pl.Len()
	src := make([]complex128, n)
	for i := range src {
		src[i] = complex(float64(i%17)-8, float64(i%13)-6)
	}
	dst := make([]complex128, n)
	iters := tune.Iters(n)
	ctx := context.Background()
	best, bestT := 0, time.Duration(0)
	for _, t := range nd.TileLadder() {
		pl.Retile(t)
		d := tune.Measure(iters, func() { _, _ = pl.Forward(ctx, dst, src) })
		if best == 0 || d < bestT {
			best, bestT = t, d
		}
	}
	return best
}

// windowCandidates is the ForwardBatch epoch-window ladder the tuner
// measures — the in-flight depths the epoch ring supports.
var windowCandidates = [...]int{1, 2, 4}

// clampWindow bounds a configured or recorded window to what the plan can
// pipeline; ≤ 0 falls back to the automatic choice.
func clampWindow(w int, pl *parallel.Plan) int {
	if w < 1 {
		return 0
	}
	return min(w, maxBatchWorlds, pl.MaxInflight())
}

// applyWindowTuning resolves the ForwardBatch window knob for a parallel
// plan. An explicit WithBatchWindow wins before this is consulted.
func applyWindowTuning(t *parTransform, c *config) {
	mode := c.tuneMode()
	if mode == tune.Estimate {
		return
	}
	key, ok := tune.KeyFor(tune.KnobWindow, t.n, []int{t.ranks}, uint8(c.protection), false)
	if !ok {
		return
	}
	if v, hit := tune.Lookup(key); hit {
		t.window = clampWindow(int(v), t.pl)
		return
	}
	if mode != tune.Measured || c.injector != nil {
		return
	}
	if best := measureWindow(t); best > 0 {
		t.window = best
		tune.Record(key, int64(best))
	}
}

// measureWindow times small ForwardBatch sweeps per candidate window depth
// at plan build. The iteration count is a fixed small constant — each
// sample is already a whole batch of parallel transforms.
func measureWindow(t *parTransform) int {
	const items = 4
	const iters = 2
	src := make([][]complex128, items)
	dst := make([][]complex128, items)
	for i := range src {
		src[i] = make([]complex128, t.n)
		for j := range src[i] {
			src[i][j] = complex(float64((i+j)%17)-8, float64(j%13)-6)
		}
		dst[i] = make([]complex128, t.n)
	}
	ctx := context.Background()
	best, bestT := 0, time.Duration(0)
	for _, w := range windowCandidates {
		if w > t.pl.MaxInflight() {
			continue
		}
		d := tune.Measure(iters, func() { _, _ = t.forwardBatchWindow(ctx, dst, src, w) })
		if best == 0 || d < bestT {
			best, bestT = w, d
		}
	}
	return best
}
