package ftfft_test

import (
	"errors"
	"math/cmplx"
	"testing"

	"ftfft"
	"ftfft/internal/dft"
	"ftfft/internal/workload"
)

var allProtections = []ftfft.Protection{
	ftfft.None,
	ftfft.OfflineABFT, ftfft.OfflineABFTNaive,
	ftfft.OnlineABFT, ftfft.OnlineABFTNaive,
	ftfft.OnlineABFTMemory, ftfft.OnlineABFTMemoryNaive,
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func maxAbs(a []complex128) float64 {
	var m float64
	for _, v := range a {
		if d := cmplx.Abs(v); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesDFTAllProtections(t *testing.T) {
	n := 512
	x := workload.Uniform(1, n)
	want := dft.Transform(x)
	tol := 1e-8 * float64(n) * (1 + maxAbs(want))
	for _, prot := range allProtections {
		got, rep, err := ftfft.Forward(append([]complex128(nil), x...), ftfft.Options{Protection: prot})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if !rep.Clean() {
			t.Errorf("%v: fault-free run not clean: %+v", prot, rep)
		}
		if d := maxAbsDiff(got, want); d > tol {
			t.Errorf("%v: diff %g", prot, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	n := 1024
	x := workload.Normal(2, n)
	for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OnlineABFTMemory} {
		p, err := ftfft.NewPlan(n, ftfft.Options{Protection: prot})
		if err != nil {
			t.Fatal(err)
		}
		X := make([]complex128, n)
		y := make([]complex128, n)
		if _, err := p.Forward(X, x); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Inverse(y, X); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(y, x); d > 1e-9*float64(n)*(1+maxAbs(x)) {
			t.Errorf("%v: round trip diff %g", prot, d)
		}
	}
}

func TestInverseMatchesDirectIDFT(t *testing.T) {
	n := 256
	x := workload.Uniform(3, n)
	want := dft.Inverse(x)
	got, rep, err := ftfft.Inverse(x, ftfft.Options{Protection: ftfft.OnlineABFTMemory})
	if err != nil || !rep.Clean() {
		t.Fatalf("err=%v rep=%+v", err, rep)
	}
	if d := maxAbsDiff(got, want); d > 1e-9*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("diff %g", d)
	}
}

func TestFaultInjectionRecoveryThroughPublicAPI(t *testing.T) {
	n := 1024
	x := workload.Uniform(4, n)
	want := dft.Transform(x)
	sched := ftfft.NewFaultSchedule(1,
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 3, Index: -1, Mode: ftfft.AddConstant, Value: 7},
		ftfft.Fault{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Index: 100, Mode: ftfft.SetConstant, Value: -5},
	)
	got, rep, err := ftfft.Forward(append([]complex128(nil), x...), ftfft.Options{
		Protection: ftfft.OnlineABFTMemory,
		Injector:   sched,
	})
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if !sched.AllFired() {
		t.Fatal("faults did not fire")
	}
	if rep.Clean() {
		t.Fatalf("expected recovery activity, got clean report")
	}
	if d := maxAbsDiff(got, want); d > 1e-7*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("output wrong after recovery: %g (%+v)", d, rep)
	}
	if len(sched.Records()) != 2 {
		t.Fatalf("expected 2 injection records, got %d", len(sched.Records()))
	}
}

func TestConvolveTheorem(t *testing.T) {
	n := 256
	a := workload.Uniform(5, n)
	b := workload.GaussianPulse(n, n/2, 8)
	got, rep, err := ftfft.Convolve(a, b, ftfft.Options{Protection: ftfft.OnlineABFTMemory})
	if err != nil || !rep.Clean() {
		t.Fatalf("err=%v rep=%+v", err, rep)
	}
	// Direct O(n²) circular convolution.
	want := make([]complex128, n)
	for i := 0; i < n; i++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += a[j] * b[(i-j+n)%n]
		}
		want[i] = s
	}
	if d := maxAbsDiff(got, want); d > 1e-8*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("convolution diff %g", d)
	}
	if _, _, err := ftfft.Convolve(a, b[:128], ftfft.Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestParallelPlanPublicAPI(t *testing.T) {
	n, p := 4096, 8
	x := workload.Uniform(6, n)
	want := dft.Transform(x)
	for _, opts := range []ftfft.ParallelOptions{
		{},
		{Optimized: true},
		{Protected: true},
		{Protected: true, Optimized: true},
	} {
		pp, err := ftfft.NewParallelPlan(n, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if pp.N() != n || pp.Ranks() != p {
			t.Fatalf("accessors: %d %d", pp.N(), pp.Ranks())
		}
		dst := make([]complex128, n)
		src := append([]complex128(nil), x...)
		rep, err := pp.Forward(dst, src)
		if err != nil {
			t.Fatalf("%+v: %v (%+v)", opts, err, rep)
		}
		if d := maxAbsDiff(dst, want); d > 1e-8*float64(n)*(1+maxAbs(want)) {
			t.Errorf("%+v: diff %g", opts, d)
		}
	}
	if _, err := ftfft.NewParallelPlan(100, 3, ftfft.ParallelOptions{}); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestParallelFaultRecoveryPublicAPI(t *testing.T) {
	n, p := 4096, 8
	x := workload.Uniform(7, n)
	want := dft.Transform(x)
	sched := ftfft.NewFaultSchedule(2,
		ftfft.Fault{Site: ftfft.SiteMessage, Rank: 3, Occurrence: 2, Index: -1, Mode: ftfft.AddConstant, Value: 4},
	)
	pp, err := ftfft.NewParallelPlan(n, p, ftfft.ParallelOptions{Protected: true, Optimized: true, Injector: sched})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, n)
	src := append([]complex128(nil), x...)
	rep, err := pp.Forward(dst, src)
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if !sched.AllFired() || rep.MemCorrections == 0 {
		t.Fatalf("fired=%v rep=%+v", sched.AllFired(), rep)
	}
	if d := maxAbsDiff(dst, want); d > 1e-7*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("diff %g", d)
	}
}

func TestUncorrectableSurfacesAsError(t *testing.T) {
	n := 256
	// A fault that re-fires on every visit defeats the retry budget.
	sched := ftfft.NewFaultSchedule(3,
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 1, Index: 0, Mode: ftfft.AddConstant, Value: 100},
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 2, Index: 0, Mode: ftfft.AddConstant, Value: 100},
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 3, Index: 0, Mode: ftfft.AddConstant, Value: 100},
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 4, Index: 0, Mode: ftfft.AddConstant, Value: 100},
	)
	_, rep, err := ftfft.Forward(workload.Uniform(8, n), ftfft.Options{
		Protection: ftfft.OnlineABFT, Injector: sched, MaxRetries: 3,
	})
	if !errors.Is(err, ftfft.ErrUncorrectable) {
		t.Fatalf("want ErrUncorrectable, got %v", err)
	}
	if !rep.Uncorrectable {
		t.Fatalf("report not marked: %+v", rep)
	}
}

func TestProtectionStringer(t *testing.T) {
	for _, p := range allProtections {
		if p.String() == "" {
			t.Fatalf("empty name for %d", int(p))
		}
	}
	if ftfft.Protection(99).String() == "" {
		t.Fatal("unknown protection must stringify")
	}
}

func TestOnlineRejectsPrimeSizes(t *testing.T) {
	if _, err := ftfft.NewPlan(101, ftfft.Options{Protection: ftfft.OnlineABFT}); err == nil {
		t.Fatal("online plan on prime size must fail")
	}
	if _, err := ftfft.NewPlan(101, ftfft.Options{Protection: ftfft.OfflineABFT}); err != nil {
		t.Fatalf("offline plan on prime size should work: %v", err)
	}
}
