package ftfft_test

import (
	"context"
	"testing"

	"ftfft"
	"ftfft/internal/workload"
)

// gatherScatter2D builds the pre-engine 2-D baseline: a contiguous row pass,
// then a column pass that gathers every column into a contiguous buffer,
// transforms it, and scatters the result back — the copy round-trip the
// tiled strided passes remove. Protection and pass order match the engine
// exactly, so the benchmark isolates the memory-access pattern.
func gatherScatter2D(b *testing.B, rows, cols int, prot ftfft.Protection) func(dst, src []complex128) {
	b.Helper()
	ctx := context.Background()
	rowT, err := ftfft.New(cols, ftfft.WithProtection(prot))
	if err != nil {
		b.Fatal(err)
	}
	colT, err := ftfft.New(rows, ftfft.WithProtection(prot))
	if err != nil {
		b.Fatal(err)
	}
	col := make([]complex128, rows)
	out := make([]complex128, rows)
	return func(dst, src []complex128) {
		for r := 0; r < rows; r++ {
			if _, err := rowT.Forward(ctx, dst[r*cols:(r+1)*cols], src[r*cols:(r+1)*cols]); err != nil {
				b.Fatal(err)
			}
		}
		for c := 0; c < cols; c++ {
			for r := 0; r < rows; r++ {
				col[r] = dst[r*cols+c]
			}
			if _, err := colT.Forward(ctx, out, col); err != nil {
				b.Fatal(err)
			}
			for r := 0; r < rows; r++ {
				dst[r*cols+c] = out[r]
			}
		}
	}
}

func benchND(b *testing.B, dims []int, prot ftfft.Protection) {
	b.Helper()
	n := 1
	for _, d := range dims {
		n *= d
	}
	tr, err := ftfft.New(n, ftfft.WithDims(dims...), ftfft.WithProtection(prot))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	src := workload.Uniform(int64(n), n)
	dst := make([]complex128, n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Forward(ctx, dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkND is the N-D engine family: the 2-D tiled strided column pass
// against its gather/scatter baseline (the BENCH_PR4.json before/after
// pairs), and the canonical 64³ HPC volume, serial so the comparison
// isolates the memory behaviour rather than dispatch. The square grid is
// the balanced case; the short-column grid (64×16384) is where the
// per-column copy round-trip costs the baseline most relative to the
// 64-point column FFTs.
func BenchmarkND(b *testing.B) {
	for _, bc := range []struct {
		name string
		prot ftfft.Protection
	}{
		{"FFTW", ftfft.None},
		{"OnlineMemory", ftfft.OnlineABFTMemory},
	} {
		for _, shape := range []struct {
			name       string
			rows, cols int
		}{
			{"2D_512x512", 512, 512},
			{"2D_64x16384", 64, 16384},
		} {
			b.Run(shape.name+"/GatherScatter/"+bc.name, func(b *testing.B) {
				apply := gatherScatter2D(b, shape.rows, shape.cols, bc.prot)
				n := shape.rows * shape.cols
				src := workload.Uniform(int64(n), n)
				dst := make([]complex128, n)
				b.SetBytes(int64(16 * n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					apply(dst, src)
				}
			})
			b.Run(shape.name+"/Tiled/"+bc.name, func(b *testing.B) {
				benchND(b, []int{shape.rows, shape.cols}, bc.prot)
			})
		}
		b.Run("3D_64x64x64/"+bc.name, func(b *testing.B) {
			benchND(b, []int{64, 64, 64}, bc.prot)
		})
	}
}

// BenchmarkND_Dispatch measures the 64³ volume with pass tiles fanned out
// over the bounded executor (WithRanks), the N-D scaling story.
func BenchmarkND_Dispatch(b *testing.B) {
	n := 64 * 64 * 64
	for _, ranks := range []int{2, 4} {
		b.Run(benchRankName(ranks), func(b *testing.B) {
			tr, err := ftfft.New(n, ftfft.WithDims(64, 64, 64), ftfft.WithRanks(ranks),
				ftfft.WithProtection(ftfft.OnlineABFTMemory))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			src := workload.Uniform(int64(n), n)
			dst := make([]complex128, n)
			b.SetBytes(int64(16 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Forward(ctx, dst, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchRankName(p int) string {
	return "p" + string(rune('0'+p))
}
