#!/usr/bin/env bash
# bench.sh — run the paper's benchmark families and record the results as a
# dated JSON trajectory point (BENCH_<date>.json, via `go test -json`).
#
# Usage:
#   ./bench.sh                 # full benchmark suite
#   ./bench.sh 'Fig8a'         # one family
#   ./bench.sh 'Batch'         # steady-state ForwardBatch vs unbatched loop
#   BENCHTIME=5s ./bench.sh    # longer per-benchmark budget
set -euo pipefail
cd "$(dirname "$0")"

pattern="${1:-.}"
benchtime="${BENCHTIME:-2s}"
out="BENCH_$(date +%Y%m%d).json"

# Root package: the paper's figure/table families, the public kernel pair
# (BenchmarkKernelRFFT vs BenchmarkKernelComplexSameLength), the
# BenchmarkServe* service family (sustained multi-client QPS with p50/p99
# request latencies, mixed-traffic plan-cache multiplexing, unloaded round
# trip vs the in-process local baseline), and the BenchmarkWire* transport
# family (chan shared/message vs the unix-socket codec — star and mesh —
# vs the shm ring wire, plus the BenchmarkWireBatch* rows pricing
# epoch-pipelined ForwardBatch over each wire); then the fft engine's
# BenchmarkKernel* micro family (flat vs recursive, in-place, Bluestein
# convolution-length chooser).
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -json . ./internal/fft/ | tee "$out"
echo "wrote $out" >&2
