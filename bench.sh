#!/usr/bin/env bash
# bench.sh — run the paper's benchmark families and record the results as a
# dated JSON trajectory point (BENCH_<date>.json, via `go test -json`).
#
# Usage:
#   ./bench.sh                 # full benchmark suite
#   ./bench.sh 'Fig8a'         # one family
#   ./bench.sh 'Batch'         # steady-state ForwardBatch vs unbatched loop
#   ./bench.sh --tuned         # autotuner A-B: estimate vs measured per knob
#   BENCHTIME=5s ./bench.sh    # longer per-benchmark budget
set -euo pipefail
cd "$(dirname "$0")"

benchtime="${BENCHTIME:-2s}"
out="BENCH_$(date +%Y%m%d).json"

if [[ "${1:-}" == "--tuned" ]]; then
  # Autotuner mode: the BenchmarkTuned* families run each knob's transform
  # under the estimate heuristics and under freshly measured wisdom (one
  # sub-benchmark per mode), plus the per-candidate Bluestein convolution
  # ladder (BenchmarkConv4099) — the estimate-vs-measured A-B pairs land in
  # the dated snapshot automatically instead of being assembled by hand.
  go test -run '^$' -bench 'Tuned' -benchmem -benchtime "$benchtime" -json . | tee "$out"
  go test -run '^$' -bench 'BenchmarkConv4099' -benchmem -benchtime "$benchtime" -json ./internal/tune/ | tee -a "$out"
  echo "wrote $out (tuned A-B)" >&2
  exit 0
fi

pattern="${1:-.}"

# Root package: the paper's figure/table families, the public kernel pair
# (BenchmarkKernelRFFT vs BenchmarkKernelComplexSameLength), the
# BenchmarkServe* service family (sustained multi-client QPS with p50/p99
# request latencies, mixed-traffic plan-cache multiplexing, unloaded round
# trip vs the in-process local baseline), and the BenchmarkWire* transport
# family (chan shared/message vs the unix-socket codec — star and mesh —
# vs the shm ring wire, plus the BenchmarkWireBatch* rows pricing
# epoch-pipelined ForwardBatch over each wire); then the fft engine's
# BenchmarkKernel* micro family (flat vs recursive, in-place, Bluestein
# convolution-length chooser).
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -json . ./internal/fft/ | tee "$out"
echo "wrote $out" >&2
