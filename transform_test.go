package ftfft_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ftfft"
	"ftfft/internal/dft"
	"ftfft/internal/workload"
)

var bg = context.Background()

// TestNewMatchesDeprecatedPlan: the unified sequential executor and the
// deprecated Plan shim are the same machinery — outputs must be bit-identical.
func TestNewMatchesDeprecatedPlan(t *testing.T) {
	n := 1024
	x := workload.Uniform(21, n)
	for _, prot := range allProtections {
		tr, err := ftfft.New(n, ftfft.WithProtection(prot))
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n || tr.Ranks() != 1 || tr.Protection() != prot {
			t.Fatalf("%v: accessors Len=%d Ranks=%d Protection=%v", prot, tr.Len(), tr.Ranks(), tr.Protection())
		}
		if r, c := tr.Shape(); r != 1 || c != n {
			t.Fatalf("%v: Shape = %d,%d", prot, r, c)
		}
		got := make([]complex128, n)
		if _, err := tr.Forward(bg, got, append([]complex128(nil), x...)); err != nil {
			t.Fatal(err)
		}
		p, err := ftfft.NewPlan(n, ftfft.Options{Protection: prot})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, n)
		if _, err := p.Forward(want, append([]complex128(nil), x...)); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: New and NewPlan outputs differ at %d: %v vs %v", prot, i, got[i], want[i])
			}
		}
	}
}

// TestNewWithRanksMatchesParallelPlan: New(n, WithRanks(p)) must be
// bit-identical to the deprecated NewParallelPlan at the equivalent
// (Protected, Optimized) configuration.
func TestNewWithRanksMatchesParallelPlan(t *testing.T) {
	n, p := 4096, 8
	x := workload.Uniform(22, n)
	for _, tc := range []struct {
		prot ftfft.Protection
		opts ftfft.ParallelOptions
	}{
		{ftfft.None, ftfft.ParallelOptions{Optimized: true}},
		{ftfft.OnlineABFTMemory, ftfft.ParallelOptions{Protected: true, Optimized: true}},
		{ftfft.OnlineABFTMemoryNaive, ftfft.ParallelOptions{Protected: true}},
	} {
		tr, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(tc.prot))
		if err != nil {
			t.Fatal(err)
		}
		if tr.Ranks() != p || tr.Len() != n {
			t.Fatalf("accessors: Ranks=%d Len=%d", tr.Ranks(), tr.Len())
		}
		got := make([]complex128, n)
		if _, err := tr.Forward(bg, got, append([]complex128(nil), x...)); err != nil {
			t.Fatalf("%v: %v", tc.prot, err)
		}
		pp, err := ftfft.NewParallelPlan(n, p, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, n)
		if _, err := pp.Forward(want, append([]complex128(nil), x...)); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: unified and deprecated parallel outputs differ at %d", tc.prot, i)
			}
		}
	}
	if _, err := ftfft.New(4096, ftfft.WithRanks(8), ftfft.WithProtection(ftfft.OfflineABFT)); err == nil {
		t.Fatal("offline protection has no parallel formulation; New must reject it")
	}
}

// TestNewWithShapeMatchesPlan2D: WithShape must reproduce the deprecated
// Plan2D bit-for-bit, and adding WithRanks (worker-pool dispatch of the
// row/column passes) must not change a single bit.
func TestNewWithShapeMatchesPlan2D(t *testing.T) {
	rows, cols := 32, 64
	n := rows * cols
	x := workload.Uniform(23, n)
	for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OnlineABFTMemory} {
		p2, err := ftfft.NewPlan2D(rows, cols, ftfft.Options{Protection: prot})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, n)
		if _, err := p2.Forward(want, append([]complex128(nil), x...)); err != nil {
			t.Fatal(err)
		}
		for _, ranks := range []int{0, 1, 4} {
			opts := []ftfft.Option{ftfft.WithShape(rows, cols), ftfft.WithProtection(prot)}
			if ranks > 0 {
				opts = append(opts, ftfft.WithRanks(ranks))
			}
			tr, err := ftfft.New(n, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if r, c := tr.Shape(); r != rows || c != cols {
				t.Fatalf("Shape = %d,%d", r, c)
			}
			got := make([]complex128, n)
			if _, err := tr.Forward(bg, got, append([]complex128(nil), x...)); err != nil {
				t.Fatalf("%v ranks=%d: %v", prot, ranks, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v ranks=%d: 2-D outputs differ at %d", prot, ranks, i)
				}
			}
		}
	}
	if _, err := ftfft.New(100, ftfft.WithShape(8, 8)); err == nil {
		t.Fatal("size/shape mismatch accepted")
	}
	if _, err := ftfft.New(64, ftfft.WithShape(-8, -8)); err == nil {
		t.Fatal("negative shape accepted")
	}
}

// TestParallel2DInverseRoundTrip exercises the rank-pool 2-D path through
// Inverse (including under protection with injected faults elsewhere absent).
func TestParallel2DInverseRoundTrip(t *testing.T) {
	rows, cols := 64, 32
	n := rows * cols
	x := workload.Normal(24, n)
	tr, err := ftfft.New(n, ftfft.WithShape(rows, cols), ftfft.WithRanks(4),
		ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		t.Fatal(err)
	}
	X := make([]complex128, n)
	y := make([]complex128, n)
	if _, err := tr.Forward(bg, X, append([]complex128(nil), x...)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Inverse(bg, y, X); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(y, x); d > 1e-9*float64(n)*(1+maxAbs(x)) {
		t.Fatalf("round trip diff %g", d)
	}
}

// TestParallelInverse: the parallel inverse (conjugation identity over the
// six-step pipeline) must match the direct IDFT and round-trip with the
// parallel forward.
func TestParallelInverse(t *testing.T) {
	n, p := 4096, 8
	x := workload.Uniform(25, n)
	for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OnlineABFTMemory} {
		tr, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(prot))
		if err != nil {
			t.Fatal(err)
		}
		want := dft.Inverse(x)
		got := make([]complex128, n)
		if _, err := tr.Inverse(bg, got, append([]complex128(nil), x...)); err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n)*(1+maxAbs(want)) {
			t.Fatalf("%v: inverse diff %g", prot, d)
		}
		X := make([]complex128, n)
		y := make([]complex128, n)
		if _, err := tr.Forward(bg, X, append([]complex128(nil), x...)); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Inverse(bg, y, X); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(y, x); d > 1e-9*float64(n)*(1+maxAbs(x)) {
			t.Fatalf("%v: round trip diff %g", prot, d)
		}
	}
}

// TestParallelInverseFaultRecovery pushes injected faults through the
// parallel inverse path: detection must be reported and the output must
// still match the clean reference.
func TestParallelInverseFaultRecovery(t *testing.T) {
	n, p := 4096, 8
	x := workload.Uniform(26, n)
	clean, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	if _, err := clean.Inverse(bg, want, append([]complex128(nil), x...)); err != nil {
		t.Fatal(err)
	}
	sched := ftfft.NewFaultSchedule(27,
		ftfft.Fault{Site: ftfft.SiteMessage, Rank: 2, Occurrence: 3, Index: -1, Mode: ftfft.AddConstant, Value: 6},
		ftfft.Fault{Site: ftfft.SiteParallelFFT1, Rank: 5, Occurrence: 2, Index: -1, Mode: ftfft.AddConstant, Value: 3},
	)
	tr, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(ftfft.OnlineABFTMemory), ftfft.WithInjector(sched))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, n)
	rep, err := tr.Inverse(bg, got, append([]complex128(nil), x...))
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if !sched.AllFired() || rep.Clean() {
		t.Fatalf("fired=%v rep=%+v", sched.AllFired(), rep)
	}
	if d := maxAbsDiff(got, want); d > 1e-9*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("inverse recovery diff %g (%+v)", d, rep)
	}
}

// TestForwardBatchBitIdentical: batched outputs must equal the unbatched
// ones bit-for-bit, for every executor kind.
func TestForwardBatchBitIdentical(t *testing.T) {
	const items = 6
	for _, tc := range []struct {
		name string
		opts []ftfft.Option
		n    int
	}{
		{"sequential", []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFTMemory)}, 512},
		{"parallel", []ftfft.Option{ftfft.WithRanks(4), ftfft.WithProtection(ftfft.OnlineABFTMemory)}, 1024},
		{"grid", []ftfft.Option{ftfft.WithShape(16, 32), ftfft.WithRanks(2), ftfft.WithProtection(ftfft.OnlineABFT)}, 512},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ftfft.New(tc.n, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			src := make([][]complex128, items)
			dstBatch := make([][]complex128, items)
			dstSingle := make([][]complex128, items)
			for i := range src {
				src[i] = workload.Uniform(int64(30+i), tc.n)
				dstBatch[i] = make([]complex128, tc.n)
				dstSingle[i] = make([]complex128, tc.n)
			}
			if _, err := tr.ForwardBatch(bg, dstBatch, src); err != nil {
				t.Fatal(err)
			}
			for i := range src {
				if _, err := tr.Forward(bg, dstSingle[i], src[i]); err != nil {
					t.Fatal(err)
				}
				for j := range dstSingle[i] {
					if dstBatch[i][j] != dstSingle[i][j] {
						t.Fatalf("item %d differs at %d", i, j)
					}
				}
			}
		})
	}
}

// TestUniformValidation: every executor must reject short buffers, aliased
// buffers, and mismatched batches at the API boundary.
func TestUniformValidation(t *testing.T) {
	seqT, err := ftfft.New(256)
	if err != nil {
		t.Fatal(err)
	}
	parT, err := ftfft.New(1024, ftfft.WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	gridT, err := ftfft.New(256, ftfft.WithShape(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		tr   ftfft.Transform
	}{
		{"seq", seqT}, {"parallel", parT}, {"grid", gridT},
	} {
		n := tc.tr.Len()
		buf := make([]complex128, n)
		short := make([]complex128, n-1)
		if _, err := tc.tr.Forward(bg, short, buf); err == nil {
			t.Errorf("%s: Forward accepted short dst", tc.name)
		}
		if _, err := tc.tr.Inverse(bg, buf, short); err == nil {
			t.Errorf("%s: Inverse accepted short src", tc.name)
		}
		if _, err := tc.tr.Forward(bg, buf, buf); err == nil ||
			!strings.Contains(err.Error(), "alias") {
			t.Errorf("%s: Forward accepted aliased buffers (err=%v)", tc.name, err)
		}
		if _, err := tc.tr.Inverse(bg, buf, buf); err == nil {
			t.Errorf("%s: Inverse accepted aliased buffers", tc.name)
		}
		if _, err := tc.tr.ForwardBatch(bg, [][]complex128{buf}, nil); err == nil {
			t.Errorf("%s: batch size mismatch accepted", tc.name)
		}
		if _, err := tc.tr.ForwardBatch(bg, [][]complex128{buf}, [][]complex128{buf}); err == nil {
			t.Errorf("%s: aliased batch item accepted", tc.name)
		}
	}
	// The deprecated shims route through the same boundary.
	p, _ := ftfft.NewPlan(256, ftfft.Options{})
	buf := make([]complex128, 256)
	if _, err := p.Forward(buf, buf); err == nil {
		t.Error("Plan.Forward accepted aliased buffers")
	}
	pp, _ := ftfft.NewParallelPlan(1024, 4, ftfft.ParallelOptions{})
	big := make([]complex128, 1024)
	if _, err := pp.Forward(big, big); err == nil {
		t.Error("ParallelPlan.Forward accepted aliased buffers")
	}
}

// TestCancellation: an already-canceled context must fail fast on every
// executor, and a mid-batch cancel must stop the batch.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	for _, opts := range [][]ftfft.Option{
		{ftfft.WithProtection(ftfft.OnlineABFTMemory)},
		{ftfft.WithRanks(4)},
		{ftfft.WithShape(16, 16)},
	} {
		n := 256
		tr, err := ftfft.New(n, opts...)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]complex128, n)
		src := workload.Uniform(40, n)
		if _, err := tr.Forward(ctx, dst, src); !errors.Is(err, context.Canceled) {
			t.Errorf("%T: want context.Canceled, got %v", tr, err)
		}
		if _, err := tr.Inverse(ctx, dst, src); !errors.Is(err, context.Canceled) {
			t.Errorf("%T inverse: want context.Canceled, got %v", tr, err)
		}
	}
}

// persistentFault corrupts every visit to one site on one rank — the fault
// model that defeats any retry budget and, before the poison-pill abort,
// deadlocked the peers of the failing rank (the ROADMAP's known hang).
type persistentFault struct {
	site ftfft.Site
	rank int
}

func (f *persistentFault) Visit(site ftfft.Site, rank int, data []complex128, n, stride int) bool {
	if site != f.site || rank != f.rank || n == 0 {
		return false
	}
	data[0] += 1e6
	return true
}

// TestParallelRankAbortReturnsWithinDeadline is the acceptance test for the
// ROADMAP open item: a parallel transform whose injector exhausts MaxRetries
// on one rank must return ErrUncorrectable promptly instead of deadlocking
// the other ranks in Recv.
func TestParallelRankAbortReturnsWithinDeadline(t *testing.T) {
	n, p := 4096, 8
	tr, err := ftfft.New(n, ftfft.WithRanks(p),
		ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithInjector(&persistentFault{site: ftfft.SiteParallelFFT1, rank: 3}),
		ftfft.WithMaxRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	src := workload.Uniform(41, n)
	dst := make([]complex128, n)
	done := make(chan error, 1)
	go func() {
		_, err := tr.Forward(bg, dst, src)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ftfft.ErrUncorrectable) {
			t.Fatalf("want ErrUncorrectable, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel transform deadlocked after rank abort")
	}
}

// TestParallelContextCancelUnblocksRecv: cancelling the context must unwind
// ranks parked in a transpose receive. A fault that stalls one rank forever
// cannot exist without an injector loop, so instead cancel concurrently with
// a normal run and only require that the call returns promptly.
func TestParallelContextCancelUnblocksRecv(t *testing.T) {
	n, p := 16384, 4
	tr, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		t.Fatal(err)
	}
	src := workload.Uniform(42, n)
	dst := make([]complex128, n)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := tr.Forward(ctx, dst, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// A deadline that expires mid-flight must surface DeadlineExceeded (or
	// complete cleanly if the transform won the race).
	ctx2, cancel2 := context.WithTimeout(bg, time.Microsecond)
	defer cancel2()
	if _, err := tr.Forward(ctx2, dst, src); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want nil or DeadlineExceeded, got %v", err)
	}
	// The plan must remain usable after cancellations.
	if _, err := tr.Forward(bg, dst, src); err != nil {
		t.Fatalf("plan poisoned by cancellation: %v", err)
	}
}

// TestInverseFaultRecovery drives scheduled faults through the sequential
// Inverse path (satellite: injection coverage for Inverse).
func TestInverseFaultRecovery(t *testing.T) {
	n := 1024
	x := workload.Uniform(43, n)
	want := dft.Inverse(x)
	sched := ftfft.NewFaultSchedule(44,
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 2, Index: -1, Mode: ftfft.AddConstant, Value: 9},
		ftfft.Fault{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Index: 77, Mode: ftfft.SetConstant, Value: -3},
	)
	tr, err := ftfft.New(n, ftfft.WithProtection(ftfft.OnlineABFTMemory), ftfft.WithInjector(sched))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, n)
	rep, err := tr.Inverse(bg, got, append([]complex128(nil), x...))
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if !sched.AllFired() {
		t.Fatal("faults did not fire through the inverse path")
	}
	if rep.Clean() {
		t.Fatalf("expected recovery activity, got clean report")
	}
	if d := maxAbsDiff(got, want); d > 1e-7*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("inverse output wrong after recovery: %g (%+v)", d, rep)
	}
}

// TestPlanConvolveReusesPlan: the plan-level Convolve must match the
// package-level helper bit-for-bit and stay reusable call after call.
func TestPlanConvolveReusesPlan(t *testing.T) {
	n := 256
	a := workload.Uniform(45, n)
	b := workload.GaussianPulse(n, n/2, 8)
	want, _, err := ftfft.Convolve(a, b, ftfft.Options{Protection: ftfft.OnlineABFTMemory})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ftfft.NewPlan(n, ftfft.Options{Protection: ftfft.OnlineABFTMemory})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]complex128, n)
	for round := 0; round < 3; round++ {
		rep, err := p.Convolve(out, a, b)
		if err != nil || !rep.Clean() {
			t.Fatalf("round %d: err=%v rep=%+v", round, err, rep)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("round %d: plan-level convolve differs at %d", round, i)
			}
		}
	}
	if _, err := p.Convolve(out[:10], a, b); err == nil {
		t.Fatal("short convolve dst accepted")
	}
}
