package ftfft_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ftfft"
	"ftfft/internal/dft"
)

// realSizes spans the even sizes the real path supports: the n=2 degenerate
// case, powers of two, and mixed-radix halves, up to 2^12.
var realSizes = []int{2, 4, 8, 16, 24, 64, 120, 256, 1000, 1024, 4096}

// TestRealMatchesReference is the real half of the PR 6 property matrix:
// NewReal against the O(n²) real reference DFT and a forward∘inverse round
// trip, across even sizes and every protection level.
func TestRealMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, prot := range fuzzProtections {
		for _, n := range realSizes {
			tr, err := ftfft.NewReal(n, ftfft.WithProtection(prot))
			if err != nil {
				if n >= 8 && n%4 == 0 {
					t.Fatalf("n=%d prot=%v: %v", n, prot, err)
				}
				continue // online schemes reject tiny/prime half lengths
			}
			if tr.Len() != n || tr.SpectrumLen() != n/2+1 || tr.Protection() != prot {
				t.Fatalf("n=%d: accessors wrong: %d %d %v", n, tr.Len(), tr.SpectrumLen(), tr.Protection())
			}
			src := make([]float64, n)
			for i := range src {
				src[i] = rng.Float64()*2 - 1
			}
			want := dft.RealTransform(src)
			got := make([]complex128, tr.SpectrumLen())
			rep, err := tr.Forward(bg, got, src)
			if err != nil {
				t.Fatalf("n=%d prot=%v: Forward: %v", n, prot, err)
			}
			if !rep.Clean() {
				t.Fatalf("n=%d prot=%v: fault activity on a fault-free run: %+v", n, prot, rep)
			}
			tol := 1e-10 * float64(n) * (1 + maxAbs(want))
			if d := maxAbsDiff(got, want); d > tol {
				t.Fatalf("n=%d prot=%v: spectrum diverged from reference by %g (tol %g)", n, prot, d, tol)
			}
			back := make([]float64, n)
			if _, err := tr.Inverse(bg, back, got); err != nil {
				t.Fatalf("n=%d prot=%v: Inverse: %v", n, prot, err)
			}
			for i := range src {
				if d := math.Abs(back[i] - src[i]); d > tol {
					t.Fatalf("n=%d prot=%v: round trip sample %d off by %g (tol %g)", n, prot, i, d, tol)
				}
			}
		}
	}
}

// TestRealFaultInjection drives injected faults through the public real path:
// the inner complex transform's ABFT must detect and correct them, and the
// report must show the activity.
func TestRealFaultInjection(t *testing.T) {
	const n = 512
	src := make([]float64, n)
	rng := rand.New(rand.NewSource(23))
	for i := range src {
		src[i] = rng.Float64()*2 - 1
	}
	want := dft.RealTransform(src)
	cases := map[string]struct {
		prot  ftfft.Protection
		fault ftfft.Fault
	}{
		"online-arith": {
			ftfft.OnlineABFT,
			ftfft.Fault{Site: ftfft.SiteSubFFT2, Rank: ftfft.AnyRank, Index: 2, Mode: ftfft.AddConstant, Value: 25},
		},
		"online-memory": {
			ftfft.OnlineABFTMemory,
			ftfft.Fault{Site: ftfft.SiteIntermediateMemory, Rank: ftfft.AnyRank, Index: 7, Mode: ftfft.SetConstant, Value: 4},
		},
		"offline-restart": {
			ftfft.OfflineABFT,
			ftfft.Fault{Site: ftfft.SiteFullFFT, Rank: ftfft.AnyRank, Index: 1, Mode: ftfft.AddConstant, Value: 30},
		},
	}
	for name, tc := range cases {
		sched := ftfft.NewFaultSchedule(5, tc.fault)
		tr, err := ftfft.NewReal(n, ftfft.WithProtection(tc.prot), ftfft.WithInjector(sched))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := make([]complex128, tr.SpectrumLen())
		rep, err := tr.Forward(bg, got, src)
		if err != nil {
			t.Fatalf("%s: Forward under fault: %v", name, err)
		}
		if rep.Clean() {
			t.Fatalf("%s: injected fault left no report trace: %+v", name, rep)
		}
		tol := 1e-9 * float64(n) * (1 + maxAbs(want))
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("%s: fault not corrected: spectrum off by %g (tol %g)", name, d, tol)
		}
	}
}

// TestRealRejectsOptions pins NewReal's option contract: the real path is
// sequential 1-D, so geometry/parallelism options are construction errors.
func TestRealRejectsOptions(t *testing.T) {
	bad := map[string][]ftfft.Option{
		"ranks":     {ftfft.WithRanks(4)},
		"dims":      {ftfft.WithDims(16, 16)},
		"shape":     {ftfft.WithShape(16, 16)},
		"workers":   {ftfft.WithWorkers(2)},
		"transport": {ftfft.WithRanks(2), ftfft.WithTransport(nil)},
	}
	for name, opts := range bad {
		if _, err := ftfft.NewReal(256, opts...); err == nil {
			t.Errorf("%s: option accepted by NewReal", name)
		}
	}
	if _, err := ftfft.NewReal(255); err == nil {
		t.Error("odd size accepted by NewReal")
	}
	if _, err := ftfft.NewReal(0); err == nil {
		t.Error("zero size accepted by NewReal")
	}
}

// TestRealConcurrent exercises the context pool: concurrent Forward calls on
// one plan must each produce the correct spectrum.
func TestRealConcurrent(t *testing.T) {
	const n = 1024
	tr, err := ftfft.NewReal(n, ftfft.WithProtection(ftfft.OnlineABFT))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	src := make([]float64, n)
	for i := range src {
		src[i] = rng.Float64()*2 - 1
	}
	want := dft.RealTransform(src)
	tol := 1e-10 * float64(n) * (1 + maxAbs(want))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make([]complex128, tr.SpectrumLen())
			for it := 0; it < 10; it++ {
				if _, err := tr.Forward(bg, got, src); err != nil {
					t.Errorf("concurrent Forward: %v", err)
					return
				}
				if d := maxAbsDiff(got, want); d > tol {
					t.Errorf("concurrent Forward diverged by %g", d)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRealAllocs pins the steady-state allocation contract of the real path:
// zero allocs/op unprotected, and for protected schemes exact parity with
// the same-protection complex transform of the inner (half) size — the
// pack/untangle wrapper itself must never allocate. (The protected complex
// path allocates its per-call checksum vectors by design; that overhead is
// part of what the paper measures and is unchanged here.)
func TestRealAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	const n = 1024
	for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OnlineABFTMemory} {
		tr, err := ftfft.NewReal(n, ftfft.WithProtection(prot))
		if err != nil {
			t.Fatal(err)
		}
		src := make([]float64, n)
		for i := range src {
			src[i] = float64(i%13) - 6
		}
		spec := make([]complex128, tr.SpectrumLen())
		back := make([]float64, n)
		if _, err := tr.Forward(bg, spec, src); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Inverse(bg, back, spec); err != nil {
			t.Fatal(err)
		}

		// Budget: what the inner-size complex transform allocates per call
		// under the same protection (0 for None).
		inner, err := ftfft.New(n/2, ftfft.WithProtection(prot))
		if err != nil {
			t.Fatal(err)
		}
		csrc := make([]complex128, n/2)
		cdst := make([]complex128, n/2)
		if _, err := inner.Forward(bg, cdst, csrc); err != nil {
			t.Fatal(err)
		}
		budget := testing.AllocsPerRun(20, func() {
			if _, err := inner.Forward(bg, cdst, csrc); err != nil {
				t.Fatal(err)
			}
		})
		if prot == ftfft.None && budget != 0 {
			t.Fatalf("complex baseline lost its 0 allocs/op: %v", budget)
		}

		fwd := testing.AllocsPerRun(20, func() {
			if _, err := tr.Forward(bg, spec, src); err != nil {
				t.Fatal(err)
			}
		})
		if fwd > budget {
			t.Errorf("prot=%v: Forward %v allocs/op, inner complex budget %v", prot, fwd, budget)
		}
		inv := testing.AllocsPerRun(20, func() {
			if _, err := tr.Inverse(bg, back, spec); err != nil {
				t.Fatal(err)
			}
		})
		if inv > budget {
			t.Errorf("prot=%v: Inverse %v allocs/op, inner complex budget %v", prot, inv, budget)
		}
	}
}
