package ftfft_test

import (
	"testing"

	"ftfft"
	"ftfft/internal/dft"
	"ftfft/internal/workload"
)

// direct2D is the O((rc)²) reference 2-D DFT.
func direct2D(x []complex128, rows, cols int) []complex128 {
	// Rows first…
	tmp := make([]complex128, rows*cols)
	for r := 0; r < rows; r++ {
		copy(tmp[r*cols:], dft.Transform(x[r*cols:(r+1)*cols]))
	}
	// …then columns.
	out := make([]complex128, rows*cols)
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = tmp[r*cols+c]
		}
		X := dft.Transform(col)
		for r := 0; r < rows; r++ {
			out[r*cols+c] = X[r]
		}
	}
	return out
}

func Test2DForwardMatchesDirect(t *testing.T) {
	for _, shape := range []struct{ rows, cols int }{
		{16, 16}, {8, 32}, {64, 16},
	} {
		x := workload.Uniform(int64(shape.rows), shape.rows*shape.cols)
		want := direct2D(x, shape.rows, shape.cols)
		for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OnlineABFTMemory} {
			p, err := ftfft.NewPlan2D(shape.rows, shape.cols, ftfft.Options{Protection: prot})
			if err != nil {
				t.Fatalf("%dx%d %v: %v", shape.rows, shape.cols, prot, err)
			}
			dst := make([]complex128, len(x))
			rep, err := p.Forward(dst, append([]complex128(nil), x...))
			if err != nil || !rep.Clean() {
				t.Fatalf("%dx%d %v: err=%v rep=%+v", shape.rows, shape.cols, prot, err, rep)
			}
			n := float64(len(x))
			if d := maxAbsDiff(dst, want); d > 1e-8*n*(1+maxAbs(want)) {
				t.Errorf("%dx%d %v: diff %g", shape.rows, shape.cols, prot, d)
			}
		}
	}
}

func Test2DInverseRoundTrip(t *testing.T) {
	rows, cols := 32, 64
	x := workload.Normal(4, rows*cols)
	p, err := ftfft.NewPlan2D(rows, cols, ftfft.Options{Protection: ftfft.OnlineABFTMemory})
	if err != nil {
		t.Fatal(err)
	}
	X := make([]complex128, rows*cols)
	y := make([]complex128, rows*cols)
	if _, err := p.Forward(X, x); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Inverse(y, X); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(y, x); d > 1e-9*float64(rows*cols)*(1+maxAbs(x)) {
		t.Fatalf("2-D round trip diff %g", d)
	}
}

func Test2DFaultRecovery(t *testing.T) {
	rows, cols := 32, 32
	x := workload.Uniform(5, rows*cols)
	want := direct2D(x, rows, cols)
	sched := ftfft.NewFaultSchedule(6,
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 7, Index: -1, Mode: ftfft.AddConstant, Value: 5},
		ftfft.Fault{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Occurrence: 3, Index: -1, Mode: ftfft.SetConstant, Value: 9},
	)
	p, err := ftfft.NewPlan2D(rows, cols, ftfft.Options{Protection: ftfft.OnlineABFTMemory, Injector: sched})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, rows*cols)
	rep, err := p.Forward(dst, append([]complex128(nil), x...))
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if !sched.AllFired() || rep.Clean() {
		t.Fatalf("fired=%v rep=%+v", sched.AllFired(), rep)
	}
	n := float64(rows * cols)
	if d := maxAbsDiff(dst, want); d > 1e-7*n*(1+maxAbs(want)) {
		t.Fatalf("2-D recovery diff %g (%+v)", d, rep)
	}
}

// Test2DInverseFaultRecovery drives scheduled faults through the 2-D
// inverse path: detection must be reported and the repaired output must
// match a clean reference within round-off tolerance.
func Test2DInverseFaultRecovery(t *testing.T) {
	rows, cols := 32, 32
	x := workload.Uniform(9, rows*cols)
	clean, err := ftfft.NewPlan2D(rows, cols, ftfft.Options{Protection: ftfft.OnlineABFTMemory})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, rows*cols)
	if _, err := clean.Inverse(want, append([]complex128(nil), x...)); err != nil {
		t.Fatal(err)
	}
	sched := ftfft.NewFaultSchedule(10,
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 5, Index: -1, Mode: ftfft.AddConstant, Value: 4},
		ftfft.Fault{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Occurrence: 2, Index: -1, Mode: ftfft.SetConstant, Value: 11},
	)
	p, err := ftfft.NewPlan2D(rows, cols, ftfft.Options{Protection: ftfft.OnlineABFTMemory, Injector: sched})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, rows*cols)
	rep, err := p.Inverse(got, append([]complex128(nil), x...))
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if !sched.AllFired() || rep.Clean() {
		t.Fatalf("fired=%v rep=%+v", sched.AllFired(), rep)
	}
	n := float64(rows * cols)
	if d := maxAbsDiff(got, want); d > 1e-7*n*(1+maxAbs(want)) {
		t.Fatalf("2-D inverse recovery diff %g (%+v)", d, rep)
	}
}

func Test2DValidation(t *testing.T) {
	if _, err := ftfft.NewPlan2D(0, 8, ftfft.Options{}); err == nil {
		t.Fatal("zero rows accepted")
	}
	p, _ := ftfft.NewPlan2D(8, 8, ftfft.Options{})
	if r, c := p.Shape(); r != 8 || c != 8 {
		t.Fatalf("Shape = %d,%d", r, c)
	}
	if _, err := p.Forward(make([]complex128, 10), make([]complex128, 64)); err == nil {
		t.Fatal("short dst accepted")
	}
}
