package ftfft

import (
	"context"
	"fmt"

	"ftfft/internal/exec"
	"ftfft/internal/mpi"
	"ftfft/internal/parallel"
)

// Transport is the wire a parallel Transform's ranks communicate over. The
// default (no WithTransport option) is a per-plan in-process channel matrix
// with the zero-copy shared-memory fast path; MessageOnlyTransport forces
// the explicit message-passing paths over the same in-process wire, and
// ListenHub opens a socket wire whose ranks 1..p-1 are worker OS processes
// (each running ServeWorker).
type Transport = mpi.Transport

// Hub is the root process's side of a socket-backed distributed world: rank
// 0 runs in the caller's process, the remaining ranks are worker processes
// that dialed in. Pass it to New via WithTransport; call Close when the
// Transform is retired — workers observe the shutdown and exit cleanly.
// InjectWireFaults installs a hook that corrupts serialized payload bytes in
// flight (wire-level soft errors, which the §5 block checksums repair on
// receipt).
type Hub = mpi.HubTransport

// ListenHub opens the root side of a distributed world for ranks ranks on
// network ("unix" or "tcp") and addr, returning immediately. Start ranks-1
// worker processes (ServeWorker, or `ftfft -worker -connect addr`); the
// handshake — accepting the workers, assigning each its rank in connection
// order, and shipping them the plan geometry and protection parameters —
// completes inside New, which therefore blocks until every worker has
// dialed in (bounded by a 120 s handshake timeout).
func ListenHub(network, addr string, ranks int) (*Hub, error) {
	return mpi.ListenHub(network, addr, ranks)
}

// ListenMeshHub is ListenHub with the peer mesh enabled: after the handshake
// the hub hands every worker its peers' listen addresses, workers dial each
// other directly (lower rank dials higher, exactly one connection per pair),
// and worker↔worker transpose frames travel point-to-point instead of taking
// two hops through the hub. The hub connection remains the control channel
// (abort, shutdown) and the relay fallback: a worker whose peer listener or
// peer dial fails (bounded by a 5 s deadline) logs the degradation and keeps
// running star-topology through the hub — mesh setup can slow a world down,
// never wedge it. Observe the split with Hub.WireStats.
func ListenMeshHub(network, addr string, ranks int) (*Hub, error) {
	return mpi.ListenMeshHub(network, addr, ranks)
}

// WireStats is a point-in-time snapshot of a distributed wire's traffic
// split: data frames/bytes sent peer-direct versus relayed through the hub,
// the number of live peer connections, and the high-water mark of epochs
// (pipelined transforms) simultaneously in flight on the world. Hub, ShmHub
// and the worker transports expose it via their WireStats method; on the shm
// wire every frame counts as direct (the rings are already a mesh).
type WireStats = mpi.WireStats

// ShmHub is the root process's side of a same-host shared-memory world: rank
// 0 runs in the caller's process, the remaining ranks are worker processes
// attached to the same memory-mapped ring file. Like Hub it is passed to New
// via WithTransport and Closed when the Transform is retired (which also
// removes the ring file); InjectWireFaults corrupts serialized payload bytes
// in the rings, the same wire-level fault site the socket hub exposes.
type ShmHub = mpi.ShmHubTransport

// ListenShmHub opens the root side of a same-host shared-memory world for
// ranks ranks, backed by per-rank-pair ring buffers in a memory-mapped file
// at path (which must not exist — it is created here and removed on Close).
// Start ranks-1 worker processes on the same path (ServeWorker with network
// "shm", or `ftfft -worker -transport shm -connect path`); the handshake —
// sizing the rings from the plan geometry, publishing it in the file header,
// and waiting for every worker to claim a rank — completes inside New, which
// therefore blocks until all workers attach (bounded by a 120 s timeout).
//
// Unlike the socket wire, the shared-memory world is a full mesh: every rank
// pair has its own ring, so worker↔worker traffic never relays through the
// root. Frames are serialized directly into the destination ring and copied
// out exactly once on receipt — no per-message syscalls or kernel copies.
func ListenShmHub(path string, ranks int) (*ShmHub, error) {
	return mpi.CreateShmHub(path, ranks)
}

// MessageOnlyTransport is an in-process channel wire for ranks ranks with
// the shared-memory fast path masked: rank bodies must use the explicit
// root-rank scatter/gather message exchanges, exactly as over sockets, while
// staying in one process. Its outputs are bit-identical to the default
// transport's — the transport-purity guarantee — which makes it the
// reference wire for distributed tests and the honest baseline for
// transport benchmarks.
func MessageOnlyTransport(ranks int) Transport {
	return mpi.MessageOnly(mpi.NewChanTransport(ranks))
}

// WithTransport runs the parallel 1-D transform's ranks over an explicit
// wire instead of the per-plan in-process default. Requires WithRanks(p) ≥ 2
// matching the transport's world size, and composes with every protection
// level that has a parallel formulation. A transport is a physical resource:
// the plan builds exactly one rank world over it, so concurrent calls on the
// Transform serialize, and a transform error that poisons the world (rank
// failure, lost connection, cancellation) retires the Transform — subsequent
// calls fail fast with the original cause.
func WithTransport(t Transport) Option {
	return func(c *config) { c.transport = t }
}

// WithoutPeerMesh makes a ServeWorker join relay-only: it advertises no peer
// listener and declines peer connections, so all of its traffic relays
// through the hub even under a ListenMeshHub root. The mesh protocol
// tolerates the mix — peers that cannot reach this worker fall back to the
// hub per pair — which makes the option useful for pinning a worker behind a
// NAT or for exercising the relay-fallback path deliberately. Only
// ServeWorker accepts it.
func WithoutPeerMesh() Option {
	return func(c *config) { c.noPeerMesh = true }
}

// ServeWorker runs this process as one rank of a distributed world: it dials
// the hub at network/addr (retrying while the listener comes up), completes
// the handshake — which assigns the rank and delivers the root plan's
// geometry and protection parameters, so both sides provably run the same
// scheme — and serves its slice of every transform the root initiates.
// Network "shm" attaches to the shared-memory world at the ring-file path
// addr (see ListenShmHub) instead of dialing a socket.
//
// ServeWorker returns nil when the root closes the hub (clean shutdown) and
// the wire or transform failure otherwise. Accepted options: WithInjector
// (worker-local fault injection), WithWorkers / WithExecutor (this process's
// dispatch budget), WithoutPeerMesh (decline peer connections under a mesh
// hub); geometry and protection options are rejected — they belong to the
// root.
func ServeWorker(ctx context.Context, network, addr string, opts ...Option) error {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.ranks != 0 || c.dimsSet || c.rows != 0 || c.cols != 0 || c.protection != None ||
		c.etaScale != 0 || c.maxRetries != 0 || c.transport != nil {
		return fmt.Errorf("ftfft: ServeWorker takes its geometry and protection from the hub handshake; only WithInjector / WithWorkers / WithExecutor / WithoutPeerMesh apply")
	}
	// The executor options get New's validation, not a silent fallback.
	if c.workers < 0 {
		return fmt.Errorf("ftfft: invalid worker count %d", c.workers)
	}
	if c.workers > 0 && c.executorSet {
		return fmt.Errorf("ftfft: invalid executor options: WithWorkers and WithExecutor are mutually exclusive")
	}
	pool := exec.Default()
	switch {
	case c.executorSet:
		if c.executor == nil {
			return fmt.Errorf("ftfft: invalid executor: WithExecutor requires a non-nil Executor")
		}
		pool = c.executor.pool
	case c.workers > 0:
		pool = exec.New(c.workers)
		defer pool.Close()
	}
	var tr mpi.Transport
	var meta mpi.WorldMeta
	if network == "shm" {
		wt, m, err := mpi.DialShmWorker(addr)
		if err != nil {
			return err
		}
		defer wt.Close()
		tr, meta = wt, m
	} else {
		dial := mpi.DialWorker
		if c.noPeerMesh {
			dial = mpi.DialWorkerNoMesh
		}
		wt, m, err := dial(network, addr)
		if err != nil {
			return err
		}
		defer wt.Close()
		tr, meta = wt, m
	}
	pl, err := parallel.NewPlan(meta.N, meta.P, parallel.Config{
		Protected:  meta.Protected,
		Optimized:  meta.Optimized,
		Injector:   c.injector,
		EtaScale:   meta.EtaScale,
		MaxRetries: meta.MaxRetries,
		Executor:   pool,
		Transport:  tr,
	})
	if err != nil {
		return err
	}
	return pl.Serve(ctx)
}
