// Benchmarks regenerating the paper's evaluation, one family per table or
// figure, plus micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The figure-level comparisons read off overheads as ratios between the
// benchmarks of one family, exactly as the figures compare bars.
package ftfft_test

import (
	"context"
	"fmt"
	"testing"

	"ftfft"
	"ftfft/internal/checksum"
	"ftfft/internal/core"
	"ftfft/internal/fault"
	"ftfft/internal/fft"
	"ftfft/internal/parallel"
	"ftfft/internal/workload"
)

const benchN = 1 << 16 // sequential benchmark size (paper: 2^25..2^28)

// ---------------------------------------------------------------- Fig 7(a)
// Fault-free overhead, computational FT: compare each scheme's ns/op with
// Fig7a_FFTW's.

func benchScheme(b *testing.B, n int, cfg core.Config) {
	b.Helper()
	src := workload.Uniform(int64(n), n)
	tr, err := core.New(n, cfg)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]complex128, n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Transform(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a_FFTW(b *testing.B) {
	benchScheme(b, benchN, core.Config{Scheme: core.Plain})
}
func BenchmarkFig7a_Offline(b *testing.B) {
	benchScheme(b, benchN, core.Config{Scheme: core.Offline, Variant: core.Naive})
}
func BenchmarkFig7a_OptOffline(b *testing.B) {
	benchScheme(b, benchN, core.Config{Scheme: core.Offline, Variant: core.Optimized})
}
func BenchmarkFig7a_CFTOOnline(b *testing.B) {
	benchScheme(b, benchN, core.Config{Scheme: core.Online, Variant: core.Naive})
}
func BenchmarkFig7a_OptOnline(b *testing.B) {
	benchScheme(b, benchN, core.Config{Scheme: core.Online, Variant: core.Optimized})
}

// ---------------------------------------------------------------- Fig 7(b)
// Fault-free overhead, computational + memory FT.

func BenchmarkFig7b_Offline(b *testing.B) {
	benchScheme(b, benchN, core.Config{Scheme: core.Offline, Variant: core.Naive, MemoryFT: true})
}
func BenchmarkFig7b_OptOffline(b *testing.B) {
	benchScheme(b, benchN, core.Config{Scheme: core.Offline, Variant: core.Optimized, MemoryFT: true})
}
func BenchmarkFig7b_Online(b *testing.B) {
	benchScheme(b, benchN, core.Config{Scheme: core.Online, Variant: core.Naive, MemoryFT: true})
}
func BenchmarkFig7b_OptOnline(b *testing.B) {
	benchScheme(b, benchN, core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true})
}

// ----------------------------------------------------------------- Table 1
// Execution time with faults: the offline scheme pays a full restart per
// memory fault; the online scheme recovers in O(√N·log√N).

func benchSchemeWithFaults(b *testing.B, n int, cfg core.Config, faults func() []fault.Fault) {
	b.Helper()
	src := workload.Uniform(int64(n), n)
	dst := make([]complex128, n)
	in := make([]complex128, n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(in, src)
		c := cfg
		c.Injector = fault.NewSchedule(int64(i), faults()...)
		tr, err := core.New(n, c)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := tr.Transform(dst, in); err != nil {
			b.Fatal(err)
		}
	}
}

func oneMem() []fault.Fault {
	return []fault.Fault{{Site: fault.SiteInputMemory, Rank: -1, Index: -1, Mode: fault.SetConstant, Value: 7}}
}
func oneComp() []fault.Fault {
	return []fault.Fault{{Site: fault.SiteSubFFT1, Rank: -1, Occurrence: 2, Index: -1, Mode: fault.AddConstant, Value: 3}}
}

func BenchmarkTable1_OptOffline_1m(b *testing.B) {
	benchSchemeWithFaults(b, benchN, core.Config{Scheme: core.Offline, Variant: core.Optimized, MemoryFT: true}, oneMem)
}
func BenchmarkTable1_OptOnline_1c(b *testing.B) {
	benchSchemeWithFaults(b, benchN, core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true}, oneComp)
}
func BenchmarkTable1_OptOnline_1m1c(b *testing.B) {
	benchSchemeWithFaults(b, benchN, core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true},
		func() []fault.Fault { return append(oneMem(), oneComp()...) })
}
func BenchmarkTable1_OptOnline_1m2c(b *testing.B) {
	benchSchemeWithFaults(b, benchN, core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true},
		func() []fault.Fault {
			return append(append(oneMem(), oneComp()...),
				fault.Fault{Site: fault.SiteSubFFT2, Rank: -1, Occurrence: 4, Index: -1, Mode: fault.AddConstant, Value: -2})
		})
}

// ------------------------------------------------------------- Fig 8(a)/(b)
// Parallel strong and weak scaling: FFTW / FT-FFTW / opt-FFTW / opt-FT-FFTW.

func benchParallel(b *testing.B, n, p int, cfg parallel.Config) {
	b.Helper()
	src := workload.Uniform(int64(n+p), n)
	pl, err := parallel.NewPlan(n, p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]complex128, n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Transform(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8a_Strong(b *testing.B) {
	const n = 1 << 18 // paper: 2^26
	for _, p := range []int{2, 4, 8} {
		for _, v := range []struct {
			name string
			cfg  parallel.Config
		}{
			{"FFTW", parallel.Config{}},
			{"FTFFTW", parallel.Config{Protected: true}},
			{"optFFTW", parallel.Config{Optimized: true}},
			{"optFTFFTW", parallel.Config{Protected: true, Optimized: true}},
		} {
			b.Run(fmt.Sprintf("p%d/%s", p, v.name), func(b *testing.B) {
				benchParallel(b, n, p, v.cfg)
			})
		}
	}
}

func BenchmarkFig8b_Weak(b *testing.B) {
	const base = 1 << 15 // per-rank size (paper: 2^23 per core)
	for _, p := range []int{2, 4, 8} {
		for _, v := range []struct {
			name string
			cfg  parallel.Config
		}{
			{"FFTW", parallel.Config{}},
			{"optFTFFTW", parallel.Config{Protected: true, Optimized: true}},
		} {
			b.Run(fmt.Sprintf("p%d/%s", p, v.name), func(b *testing.B) {
				benchParallel(b, base*p, p, v.cfg)
			})
		}
	}
}

// --------------------------------------------------------------- Table 2/3
// Parallel execution with fault mixes ≈ fault-free (timely recovery).

func benchParallelWithFaults(b *testing.B, n, p int, faults func() []fault.Fault) {
	b.Helper()
	src := workload.Uniform(int64(n), n)
	dst := make([]complex128, n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := parallel.Config{Protected: true, Optimized: true}
		if faults != nil {
			cfg.Injector = fault.NewSchedule(int64(i), faults()...)
		}
		pl, err := parallel.NewPlan(n, p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := pl.Transform(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

func table2Mix() []fault.Fault {
	return []fault.Fault{
		{Site: fault.SiteMessage, Rank: 0, Occurrence: 2, Index: -1, Mode: fault.AddConstant, Value: 5},
		{Site: fault.SiteMessage, Rank: 1, Occurrence: 3, Index: -1, Mode: fault.AddConstant, Value: -4},
		{Site: fault.SiteParallelFFT1, Rank: 0, Occurrence: 2, Index: -1, Mode: fault.AddConstant, Value: 3},
		{Site: fault.SiteParallelFFT2, Rank: 1, Occurrence: 4, Index: -1, Mode: fault.AddConstant, Value: 6},
	}
}

func BenchmarkTable2_OptFTFFTW_0(b *testing.B) {
	benchParallelWithFaults(b, 1<<18, 4, nil)
}
func BenchmarkTable2_OptFTFFTW_2m2c(b *testing.B) {
	benchParallelWithFaults(b, 1<<18, 4, table2Mix)
}
func BenchmarkTable3_OptFTFFTW_Weak_2m2c(b *testing.B) {
	benchParallelWithFaults(b, (1<<15)*4, 4, table2Mix)
}

// ----------------------------------------------------------------- Table 4
// Round-off probe: the cost of one protected sub-FFT checksum round-trip
// (the quantity whose max/estimate Table 4 reports).

func BenchmarkTable4_ChecksumRoundoffProbe(b *testing.B) {
	m := 1 << 8
	plan := fft.MustPlan(m, fft.Forward)
	cm := checksum.CheckVector(m)
	x := workload.Uniform(4, m)
	out := make([]complex128, m)
	var sink complex128
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx := checksum.Dot(cm, x)
		plan.Execute(out, x)
		sink = checksum.DotOmega3(out) - cx
	}
	_ = sink
}

// ----------------------------------------------------------------- Table 5
// Detectability probe: one offline-scale vs one online-scale verification.

func BenchmarkTable5_OfflineVerification(b *testing.B) {
	n := benchN
	x := workload.Uniform(5, n)
	ra := checksum.CheckVector(n)
	var sink complex128
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = checksum.Dot(ra, x)
	}
	_ = sink
}

func BenchmarkTable5_OnlineVerification(b *testing.B) {
	m := 1 << 8
	x := workload.Uniform(6, m)
	cm := checksum.CheckVector(m)
	var sink complex128
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = checksum.Dot(cm, x)
	}
	_ = sink
}

// ----------------------------------------------------------------- Table 6
// One full bit-flip injection + recovery round through the public API.

func BenchmarkTable6_BitFlipRecovery(b *testing.B) {
	n := 1 << 14
	x := workload.Uniform(7, n)
	dst := make([]complex128, n)
	in := make([]complex128, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(in, x)
		sched := ftfft.NewFaultSchedule(int64(i), ftfft.Fault{
			Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Index: -1,
			Mode: ftfft.BitFlip, Bit: 53,
		})
		plan, err := ftfft.NewPlan(n, ftfft.Options{Protection: ftfft.OnlineABFTMemory, Injector: sched})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := plan.Forward(dst, in); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------ Batch steady state
// ForwardBatch amortizes pooled execution contexts across many transforms;
// compare ns per transform against the equivalent loop of Forward calls.

func benchBatch(b *testing.B, items int, opts ...ftfft.Option) {
	b.Helper()
	const n = 1 << 12
	tr, err := ftfft.New(n, opts...)
	if err != nil {
		b.Fatal(err)
	}
	src := make([][]complex128, items)
	dst := make([][]complex128, items)
	for i := range src {
		src[i] = workload.Uniform(int64(i+1), n)
		dst[i] = make([]complex128, n)
	}
	ctx := context.Background()
	b.SetBytes(int64(16 * n * items))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ForwardBatch(ctx, dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

func benchUnbatched(b *testing.B, items int, opts ...ftfft.Option) {
	b.Helper()
	const n = 1 << 12
	tr, err := ftfft.New(n, opts...)
	if err != nil {
		b.Fatal(err)
	}
	src := make([][]complex128, items)
	dst := make([][]complex128, items)
	for i := range src {
		src[i] = workload.Uniform(int64(i+1), n)
		dst[i] = make([]complex128, n)
	}
	ctx := context.Background()
	b.SetBytes(int64(16 * n * items))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range src {
			if _, err := tr.Forward(ctx, dst[j], src[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatch_Seq_OnlineMemory_x32(b *testing.B) {
	benchBatch(b, 32, ftfft.WithProtection(ftfft.OnlineABFTMemory))
}
func BenchmarkBatch_Seq_OnlineMemory_x32_Unbatched(b *testing.B) {
	benchUnbatched(b, 32, ftfft.WithProtection(ftfft.OnlineABFTMemory))
}
func BenchmarkBatch_Parallel4_OnlineMemory_x16(b *testing.B) {
	benchBatch(b, 16, ftfft.WithRanks(4), ftfft.WithProtection(ftfft.OnlineABFTMemory))
}

// ------------------------------------------------------- Substrate microbench

func BenchmarkFFTEngine(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			p := fft.MustPlan(n, fft.Forward)
			x := workload.Uniform(1, n)
			dst := make([]complex128, n)
			b.SetBytes(int64(16 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Execute(dst, x)
			}
		})
	}
}

func BenchmarkFFTInPlaceRadix2(b *testing.B) {
	n := 1 << 14
	p := fft.MustPlan(n, fft.Forward)
	x := workload.Uniform(2, n)
	buf := make([]complex128, n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.ExecuteInPlace(buf)
	}
}

func BenchmarkCheckVectorOptimized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		checksum.CheckVector(benchN)
	}
}

func BenchmarkCheckVectorTrig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		checksum.CheckVectorTrig(benchN)
	}
}

func BenchmarkDotOmega3(b *testing.B) {
	x := workload.Uniform(3, benchN)
	var sink complex128
	b.SetBytes(int64(16 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = checksum.DotOmega3(x)
	}
	_ = sink
}

// --------------------------------------------- Real-input vs complex kernels

// BenchmarkKernelRFFT transforms n real samples through the packed
// half-length real path; BenchmarkKernelComplexSameLength transforms the
// same n samples as zero-imaginary complex data. The pair prices what the
// real path saves (about half the transform work and memory traffic) under
// no protection and under the flagship scheme.
func BenchmarkKernelRFFT(b *testing.B) {
	for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OnlineABFTMemory} {
		b.Run(prot.String(), func(b *testing.B) {
			tr, err := ftfft.NewReal(benchN, ftfft.WithProtection(prot))
			if err != nil {
				b.Fatal(err)
			}
			src := make([]float64, benchN)
			for i, z := range workload.Uniform(3, benchN) {
				src[i] = real(z)
			}
			spec := make([]complex128, tr.SpectrumLen())
			ctx := context.Background()
			b.SetBytes(int64(8 * benchN))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Forward(ctx, spec, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKernelComplexSameLength(b *testing.B) {
	for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OnlineABFTMemory} {
		b.Run(prot.String(), func(b *testing.B) {
			tr, err := ftfft.New(benchN, ftfft.WithProtection(prot))
			if err != nil {
				b.Fatal(err)
			}
			src := make([]complex128, benchN)
			for i, z := range workload.Uniform(3, benchN) {
				src[i] = complex(real(z), 0)
			}
			dst := make([]complex128, benchN)
			ctx := context.Background()
			b.SetBytes(int64(8 * benchN))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Forward(ctx, dst, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
