package ftfft

import (
	"fmt"
)

// Plan2D computes protected 2-D DFTs (row-column decomposition) of a fixed
// rows×cols shape. Every 1-D pass runs under the configured protection, so
// the online scheme's timely-detection property extends to the 2-D case:
// an error in any row or column transform is caught and repaired before the
// next pass consumes it. This is the natural composition of the paper's
// scheme for the multi-dimensional transforms FFTW users actually run.
//
// A Plan2D is not safe for concurrent use.
type Plan2D struct {
	rows, cols int
	rowPlan    *Plan
	colPlan    *Plan
	col        []complex128
	colOut     []complex128
}

// NewPlan2D creates a plan for rows×cols transforms (row-major data).
func NewPlan2D(rows, cols int, opts Options) (*Plan2D, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("ftfft: invalid 2-D shape %d×%d", rows, cols)
	}
	rp, err := NewPlan(cols, opts)
	if err != nil {
		return nil, fmt.Errorf("ftfft: row plan: %w", err)
	}
	cp, err := NewPlan(rows, opts)
	if err != nil {
		return nil, fmt.Errorf("ftfft: column plan: %w", err)
	}
	return &Plan2D{
		rows: rows, cols: cols,
		rowPlan: rp, colPlan: cp,
		col:    make([]complex128, rows),
		colOut: make([]complex128, rows),
	}, nil
}

// Shape returns (rows, cols).
func (p *Plan2D) Shape() (rows, cols int) { return p.rows, p.cols }

// Forward computes the 2-D forward DFT of src into dst, both row-major of
// length rows·cols and non-overlapping. The aggregate Report sums the
// fault-tolerance activity of all 1-D passes.
func (p *Plan2D) Forward(dst, src []complex128) (Report, error) {
	return p.transform(dst, src, func(pl *Plan, d, s []complex128) (Report, error) {
		return pl.Forward(d, s)
	})
}

// Inverse computes the 2-D inverse DFT (1/(rows·cols) normalization).
func (p *Plan2D) Inverse(dst, src []complex128) (Report, error) {
	return p.transform(dst, src, func(pl *Plan, d, s []complex128) (Report, error) {
		return pl.Inverse(d, s)
	})
}

func (p *Plan2D) transform(dst, src []complex128, apply func(*Plan, []complex128, []complex128) (Report, error)) (Report, error) {
	var total Report
	n := p.rows * p.cols
	if len(dst) < n || len(src) < n {
		return total, fmt.Errorf("ftfft: 2-D buffers too short for %d×%d", p.rows, p.cols)
	}
	// Pass 1: transform every row src → dst.
	for r := 0; r < p.rows; r++ {
		rep, err := apply(p.rowPlan, dst[r*p.cols:(r+1)*p.cols], src[r*p.cols:(r+1)*p.cols])
		total.Add(rep)
		if err != nil {
			return total, fmt.Errorf("ftfft: row %d: %w", r, err)
		}
	}
	// Pass 2: transform every column of dst in place (gather/scatter).
	for c := 0; c < p.cols; c++ {
		for r := 0; r < p.rows; r++ {
			p.col[r] = dst[r*p.cols+c]
		}
		rep, err := apply(p.colPlan, p.colOut, p.col)
		total.Add(rep)
		if err != nil {
			return total, fmt.Errorf("ftfft: column %d: %w", c, err)
		}
		for r := 0; r < p.rows; r++ {
			dst[r*p.cols+c] = p.colOut[r]
		}
	}
	return total, nil
}
