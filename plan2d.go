package ftfft

import (
	"context"
	"fmt"
)

// Plan2D computes protected 2-D DFTs (row-column decomposition) of a fixed
// rows×cols shape.
//
// Deprecated: use New(rows*cols, WithDims(rows, cols), ...), which adds
// cancellation, batching, worker-pool dispatch (WithRanks) and arbitrary
// rank via WithDims. A Plan2D is now a thin shim over the same N-D engine.
type Plan2D struct {
	t *ndTransform
}

// NewPlan2D creates a plan for rows×cols transforms (row-major data).
//
// Deprecated: use New(rows*cols, WithDims(rows, cols), ...).
func NewPlan2D(rows, cols int, opts Options) (*Plan2D, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("ftfft: invalid 2-D shape %d×%d", rows, cols)
	}
	t, err := newNDTransform(config{
		protection: opts.Protection,
		dims:       []int{rows, cols},
		injector:   opts.Injector,
		etaScale:   opts.EtaScale,
		maxRetries: opts.MaxRetries,
	})
	if err != nil {
		return nil, err
	}
	return &Plan2D{t: t}, nil
}

// Shape returns (rows, cols).
func (p *Plan2D) Shape() (rows, cols int) { return p.t.Shape() }

// Forward computes the 2-D forward DFT of src into dst, both row-major of
// length rows·cols and non-overlapping. The aggregate Report sums the
// fault-tolerance activity of all 1-D passes.
func (p *Plan2D) Forward(dst, src []complex128) (Report, error) {
	return p.t.Forward(context.Background(), dst, src)
}

// Inverse computes the 2-D inverse DFT (1/(rows·cols) normalization).
func (p *Plan2D) Inverse(dst, src []complex128) (Report, error) {
	return p.t.Inverse(context.Background(), dst, src)
}
