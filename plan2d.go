package ftfft

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ftfft/internal/exec"
)

// grid2D is the 2-D executor: row-column decomposition where every 1-D pass
// runs under the configured protection, so the online scheme's
// timely-detection property extends to the 2-D case — an error in any row
// or column transform is caught and repaired before the next pass consumes
// it. With WithRanks the independent row (then column) transforms are
// dispatched as bounded-executor task groups of that width instead of the
// serial gather/scatter loop; each slot draws its own pooled 1-D execution
// context, so the outputs are bit-identical to the serial schedule.
type grid2D struct {
	rows, cols, workers int
	prot                Protection
	ex                  *exec.Pool
	rowT                *seqTransform // cols-point transforms (pass 1)
	colT                *seqTransform // rows-point transforms (pass 2)

	mu   sync.Mutex
	free []*gridCtx // pooled per-call slot workspaces
}

// gridCtx is one in-flight call's workspace: a column gather/scatter buffer
// pair per dispatch slot.
type gridCtx struct {
	slots []gridSlot
}

type gridSlot struct {
	col, out []complex128
}

// maxPooledGrid bounds how many idle grid contexts a plan retains.
const maxPooledGrid = 4

func newGrid2D(c config) (*grid2D, error) {
	workers := c.ranks
	if workers < 1 {
		workers = 1
	}
	rowT, err := newSeqTransform(c.cols, c)
	if err != nil {
		return nil, fmt.Errorf("ftfft: row plan: %w", err)
	}
	colT, err := newSeqTransform(c.rows, c)
	if err != nil {
		return nil, fmt.Errorf("ftfft: column plan: %w", err)
	}
	ex := c.pool
	if ex == nil {
		ex = exec.Default()
	}
	g := &grid2D{rows: c.rows, cols: c.cols, workers: workers, prot: c.protection, ex: ex, rowT: rowT, colT: colT}
	g.free = append(g.free, g.newCtx())
	return g, nil
}

func (g *grid2D) newCtx() *gridCtx {
	gc := &gridCtx{slots: make([]gridSlot, g.workers)}
	for i := range gc.slots {
		gc.slots[i].col = make([]complex128, g.rows)
		gc.slots[i].out = make([]complex128, g.rows)
	}
	return gc
}

func (g *grid2D) getCtx() *gridCtx {
	g.mu.Lock()
	if k := len(g.free); k > 0 {
		gc := g.free[k-1]
		g.free[k-1] = nil
		g.free = g.free[:k-1]
		g.mu.Unlock()
		return gc
	}
	g.mu.Unlock()
	return g.newCtx()
}

func (g *grid2D) putCtx(gc *gridCtx) {
	g.mu.Lock()
	if len(g.free) < maxPooledGrid {
		g.free = append(g.free, gc)
	}
	g.mu.Unlock()
}

func (g *grid2D) Len() int                { return g.rows * g.cols }
func (g *grid2D) Shape() (rows, cols int) { return g.rows, g.cols }
func (g *grid2D) Ranks() int              { return g.workers }
func (g *grid2D) Protection() Protection  { return g.prot }

func (g *grid2D) Forward(ctx context.Context, dst, src []complex128) (Report, error) {
	return g.apply(ctx, dst, src, (*seqTransform).Forward)
}

func (g *grid2D) Inverse(ctx context.Context, dst, src []complex128) (Report, error) {
	return g.apply(ctx, dst, src, (*seqTransform).Inverse)
}

func (g *grid2D) ForwardBatch(ctx context.Context, dst, src [][]complex128) (Report, error) {
	if err := checkBatch(g.Len(), dst, src); err != nil {
		return Report{}, err
	}
	// A plan with dispatch width (WithRanks) fans each item's row/column
	// passes out already, so items run serially; a serial grid instead
	// batches across items, bounded by the grid-context pool.
	itemWidth := 1
	if g.workers == 1 {
		itemWidth = min(runtime.GOMAXPROCS(0), maxPooledGrid)
	}
	return runIndexed(ctx, g.ex, len(dst), itemWidth, "batch item", func(ctx context.Context, _, i int) (Report, error) {
		return g.Forward(ctx, dst[i], src[i])
	})
}

type applyFn func(*seqTransform, context.Context, []complex128, []complex128) (Report, error)

func (g *grid2D) apply(ctx context.Context, dst, src []complex128, op applyFn) (Report, error) {
	if err := checkArgs(g.Len(), dst, src); err != nil {
		return Report{}, err
	}
	gc := g.getCtx()
	// Pass 1: transform every row src → dst, one executor task group.
	total, err := runIndexed(ctx, g.ex, g.rows, g.workers, "row", func(ctx context.Context, _, r int) (Report, error) {
		return op(g.rowT, ctx, dst[r*g.cols:(r+1)*g.cols], src[r*g.cols:(r+1)*g.cols])
	})
	if err == nil {
		// Pass 2: transform every column of dst in place (gather/scatter
		// through each slot's private buffers).
		var rep Report
		rep, err = runIndexed(ctx, g.ex, g.cols, g.workers, "column", func(ctx context.Context, w, c int) (Report, error) {
			slot := &gc.slots[w]
			for r := 0; r < g.rows; r++ {
				slot.col[r] = dst[r*g.cols+c]
			}
			rep, err := op(g.colT, ctx, slot.out, slot.col)
			if err != nil {
				return rep, err
			}
			for r := 0; r < g.rows; r++ {
				dst[r*g.cols+c] = slot.out[r]
			}
			return rep, nil
		})
		total.Add(rep)
	}
	g.putCtx(gc)
	return total, err
}

// Plan2D computes protected 2-D DFTs (row-column decomposition) of a fixed
// rows×cols shape.
//
// Deprecated: use New(rows*cols, WithShape(rows, cols), ...), which adds
// cancellation, batching and worker-pool dispatch (WithRanks).
type Plan2D struct {
	g *grid2D
}

// NewPlan2D creates a plan for rows×cols transforms (row-major data).
//
// Deprecated: use New(rows*cols, WithShape(rows, cols), ...).
func NewPlan2D(rows, cols int, opts Options) (*Plan2D, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("ftfft: invalid 2-D shape %d×%d", rows, cols)
	}
	g, err := newGrid2D(config{
		protection: opts.Protection,
		rows:       rows,
		cols:       cols,
		injector:   opts.Injector,
		etaScale:   opts.EtaScale,
		maxRetries: opts.MaxRetries,
	})
	if err != nil {
		return nil, err
	}
	return &Plan2D{g: g}, nil
}

// Shape returns (rows, cols).
func (p *Plan2D) Shape() (rows, cols int) { return p.g.Shape() }

// Forward computes the 2-D forward DFT of src into dst, both row-major of
// length rows·cols and non-overlapping. The aggregate Report sums the
// fault-tolerance activity of all 1-D passes.
func (p *Plan2D) Forward(dst, src []complex128) (Report, error) {
	return p.g.Forward(context.Background(), dst, src)
}

// Inverse computes the 2-D inverse DFT (1/(rows·cols) normalization).
func (p *Plan2D) Inverse(dst, src []complex128) (Report, error) {
	return p.g.Inverse(context.Background(), dst, src)
}
