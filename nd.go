package ftfft

import (
	"context"
	"fmt"
	"runtime"

	"ftfft/internal/exec"
	"ftfft/internal/nd"
)

// ndTransform is the N-dimensional executor: the internal/nd axis-pass
// engine behind the unified contract. Every 1-D line of every axis pass
// runs under the configured protection, so the online scheme's
// timely-detection property — an error is caught and repaired before the
// next pass consumes it — extends to any rank. With WithRanks the tiles of
// each pass are dispatched as bounded-executor task groups of that width;
// scheduling never changes the arithmetic, so outputs are bit-identical to
// the serial schedule.
type ndTransform struct {
	dims    []int
	n       int
	workers int
	prot    Protection
	pl      *nd.Plan
	ex      *exec.Pool
}

func newNDTransform(c config) (*ndTransform, error) {
	cfg, err := c.protection.coreConfig()
	if err != nil {
		return nil, err
	}
	cfg.Injector = c.injector
	cfg.EtaScale = c.etaScale
	cfg.MaxRetries = c.maxRetries
	workers := c.ranks
	if workers < 1 {
		workers = 1
	}
	ex := c.pool
	if ex == nil {
		ex = exec.Default()
	}
	pl, err := nd.New(c.dims, nd.Config{Core: cfg, Workers: workers, Pool: ex})
	if err != nil {
		return nil, fmt.Errorf("ftfft: %w", err)
	}
	applyTileTuning(pl, &c)
	return &ndTransform{
		dims:    pl.Dims(),
		n:       pl.Len(),
		workers: workers,
		prot:    c.protection,
		pl:      pl,
		ex:      ex,
	}, nil
}

func (t *ndTransform) Len() int    { return t.n }
func (t *ndTransform) Dims() []int { return append([]int(nil), t.dims...) }
func (t *ndTransform) Shape() (rows, cols int) {
	return t.dims[0], t.n / t.dims[0]
}
func (t *ndTransform) Ranks() int             { return t.workers }
func (t *ndTransform) Protection() Protection { return t.prot }

func (t *ndTransform) Forward(ctx context.Context, dst, src []complex128) (Report, error) {
	if err := checkArgs(t.n, dst, src); err != nil {
		return Report{}, err
	}
	return t.pl.Forward(ctx, dst, src)
}

func (t *ndTransform) Inverse(ctx context.Context, dst, src []complex128) (Report, error) {
	if err := checkArgs(t.n, dst, src); err != nil {
		return Report{}, err
	}
	return t.pl.Inverse(ctx, dst, src)
}

func (t *ndTransform) ForwardBatch(ctx context.Context, dst, src [][]complex128) (Report, error) {
	if err := checkBatch(t.n, dst, src); err != nil {
		return Report{}, err
	}
	// A plan with dispatch width (WithRanks) fans each item's axis passes
	// out already, so items run serially; a serial plan instead batches
	// across items, bounded by the call-context pool's actual cap.
	itemWidth := 1
	if t.workers == 1 {
		_, poolCap := t.pl.PooledContexts()
		itemWidth = min(runtime.GOMAXPROCS(0), poolCap)
	}
	return runIndexed(ctx, t.ex, len(dst), itemWidth, "batch item", func(ctx context.Context, _, i int) (Report, error) {
		return t.Forward(ctx, dst[i], src[i])
	})
}
