package ftfft

import (
	"ftfft/internal/parallel"
)

// ParallelOptions configures a ParallelPlan.
type ParallelOptions struct {
	// Protected enables the online ABFT scheme across ranks (FT-FFTW);
	// false runs the plain six-step parallel FFT (FFTW).
	Protected bool
	// Optimized enables the §6 optimizations — communication-computation
	// overlap (Algorithm 3) and fused verification passes (opt-FFTW /
	// opt-FT-FFTW).
	Optimized bool
	// Injector corrupts data at fault sites, including messages in
	// transit. It must be safe for concurrent use (fault.Schedule is).
	Injector Injector
	// EtaScale scales detection thresholds; 0 means 1.
	EtaScale float64
	// MaxRetries caps per-unit recomputations; 0 means 3.
	MaxRetries int
}

// ParallelPlan computes protected forward DFTs with the paper's §5 six-step
// in-place parallel algorithm. Ranks are goroutines over an in-process
// message-passing runtime; every transposed block travels with weighted
// checksums, FFT1 sub-transforms carry dual-use input checksums, the twiddle
// stage is DMR-protected, and FFT2 runs the in-place two/three-layer
// protected transform (with a DMR middle layer when N/p = r·k²).
type ParallelPlan struct {
	pl *parallel.Plan
}

// NewParallelPlan creates a plan for n-point transforms over ranks workers.
// Geometry requirements: ranks² must divide n (so transposes exchange equal
// blocks) and n/ranks must factor as k·r·k² with small r — powers of two
// always qualify.
func NewParallelPlan(n, ranks int, opts ParallelOptions) (*ParallelPlan, error) {
	pl, err := parallel.NewPlan(n, ranks, parallel.Config{
		Protected:  opts.Protected,
		Optimized:  opts.Optimized,
		Injector:   opts.Injector,
		EtaScale:   opts.EtaScale,
		MaxRetries: opts.MaxRetries,
	})
	if err != nil {
		return nil, err
	}
	return &ParallelPlan{pl: pl}, nil
}

// N returns the global transform size.
func (p *ParallelPlan) N() int { return p.pl.N() }

// Ranks returns the number of workers.
func (p *ParallelPlan) Ranks() int { return p.pl.P() }

// Forward computes the forward DFT of src into dst (both length N). Rank j
// owns the slices [j·N/p, (j+1)·N/p) of both arrays, mirroring the
// distributed layout.
func (p *ParallelPlan) Forward(dst, src []complex128) (Report, error) {
	return p.pl.Transform(dst, src)
}
