package ftfft

import (
	"context"
	"fmt"
	"sync"

	"ftfft/internal/parallel"
)

// parTransform is the parallel 1-D executor: the paper's §5 six-step
// in-place algorithm over simulated ranks, behind the unified contract.
// Forward delegates to the parallel plan; Inverse composes the conjugation
// identity around it, so the missing ParallelPlan.Inverse capability exists
// here without a dedicated inverse pipeline.
type parTransform struct {
	n, ranks int
	prot     Protection
	pl       *parallel.Plan
	window   int       // pinned ForwardBatch window; 0 means heuristic
	scratch  sync.Pool // of *[]complex128, conjugation staging for Inverse
}

// parallelConfig maps a Protection level onto the parallel scheme's
// (Protected, Optimized) axes. The parallel pipeline implements the online
// memory-protected scheme, so the offline levels have no parallel
// formulation and are rejected at plan time.
func parallelConfig(c config) (parallel.Config, error) {
	cfg := parallel.Config{
		Injector:   c.injector,
		EtaScale:   c.etaScale,
		MaxRetries: c.maxRetries,
		Executor:   c.pool,
		Transport:  c.transport,
	}
	switch c.protection {
	case None:
		cfg.Optimized = true // opt-FFTW: the best unprotected pipeline
	case OnlineABFT, OnlineABFTMemory:
		cfg.Protected, cfg.Optimized = true, true
	case OnlineABFTNaive, OnlineABFTMemoryNaive:
		cfg.Protected = true
	default:
		return cfg, fmt.Errorf("ftfft: protection %v has no parallel formulation (use an online level or None)", c.protection)
	}
	return cfg, nil
}

func newParTransform(n int, c config) (*parTransform, error) {
	cfg, err := parallelConfig(c)
	if err != nil {
		return nil, err
	}
	pl, err := parallel.NewPlan(n, c.ranks, cfg)
	if err != nil {
		return nil, err
	}
	t := &parTransform{n: n, ranks: c.ranks, prot: c.protection, pl: pl}
	if c.batchWindow > 0 {
		t.window = clampWindow(c.batchWindow, pl)
	} else {
		applyWindowTuning(t, &c)
	}
	t.scratch.New = func() any {
		buf := make([]complex128, n)
		return &buf
	}
	return t, nil
}

func (t *parTransform) Len() int                { return t.n }
func (t *parTransform) Dims() []int             { return []int{t.n} }
func (t *parTransform) Shape() (rows, cols int) { return 1, t.n }
func (t *parTransform) Ranks() int              { return t.ranks }
func (t *parTransform) Protection() Protection  { return t.prot }

func (t *parTransform) Forward(ctx context.Context, dst, src []complex128) (Report, error) {
	if err := checkArgs(t.n, dst, src); err != nil {
		return Report{}, err
	}
	return t.pl.TransformContext(ctx, dst, src)
}

func (t *parTransform) Inverse(ctx context.Context, dst, src []complex128) (Report, error) {
	if err := checkArgs(t.n, dst, src); err != nil {
		return Report{}, err
	}
	buf := t.scratch.Get().(*[]complex128)
	sc := *buf
	for i := 0; i < t.n; i++ {
		sc[i] = conj(src[i])
	}
	rep, err := t.pl.TransformContext(ctx, dst, sc)
	if err == nil {
		inv := complex(1/float64(t.n), 0)
		for i := 0; i < t.n; i++ {
			dst[i] = conj(dst[i]) * inv
		}
	}
	t.scratch.Put(buf)
	return rep, err
}

// maxBatchWorlds caps in-flight batch items on a parallel plan at the
// plan's execution-context (world) pool size, so batches never construct
// worlds the pool would immediately discard.
const maxBatchWorlds = 4

// ForwardBatch pipelines items through the executor: the caller's goroutine
// submits each item's rank group (parallel.Begin) and reaps completions in
// order through a small in-flight window. No per-item goroutines exist —
// concurrency comes from the executor admitting as many rank groups as its
// budget allows, and admission back-pressure paces the submission loop when
// it is saturated. The window is sized to the rank groups the executor can
// actually run at once (budget / local gang size, within the plan's
// in-flight bound), so a saturated batch holds no more worlds than it is
// using. A transport-backed plan pipelines through its epoch ring: up to
// MaxInflight items ride the wire at once, each on its own epoch, with
// reserve back-pressure (a Begin past the ring depth parks until the oldest
// item is reaped) instead of the old clamp to window = 1. WithBatchWindow or
// a measured-tuning wisdom hit pins the window instead of the heuristic.
func (t *parTransform) ForwardBatch(ctx context.Context, dst, src [][]complex128) (Report, error) {
	if err := checkBatch(t.n, dst, src); err != nil {
		return Report{}, err
	}
	window := t.window
	if window < 1 {
		window = min(maxBatchWorlds, t.pl.MaxInflight(), max(1, t.pl.Workers()/t.pl.Gang()))
	}
	return t.forwardBatchWindow(ctx, dst, src, window)
}

// forwardBatchWindow runs the pipelined batch loop at an explicit in-flight
// window; the tuner times candidate depths through it at plan build.
func (t *parTransform) forwardBatchWindow(ctx context.Context, dst, src [][]complex128, window int) (Report, error) {
	type pending struct {
		inv  *parallel.Invocation
		item int
	}
	var (
		total    Report
		firstErr error
		inflight []pending
	)
	reap := func(p pending) {
		rep, err := p.inv.Wait()
		total.Add(rep)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ftfft: batch item %d: %w", p.item, err)
		}
	}
	for i := range dst {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		inv, err := t.pl.Begin(ctx, dst[i], src[i])
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("ftfft: batch item %d: %w", i, err)
			}
			break
		}
		inflight = append(inflight, pending{inv, i})
		if len(inflight) >= window {
			head := inflight[0]
			inflight = inflight[1:]
			reap(head)
			if firstErr != nil {
				break
			}
		}
	}
	// Drain whatever is still in flight; in-order reaping means firstErr is
	// the lowest-index failure, matching the unbatched error contract.
	for _, p := range inflight {
		reap(p)
	}
	if firstErr != nil {
		return total, firstErr
	}
	return total, ctx.Err()
}

// ParallelOptions configures a ParallelPlan.
//
// Deprecated: use New with WithRanks; Protected/Optimized map onto
// WithProtection (None ↔ opt-FFTW, OnlineABFTMemory ↔ opt-FT-FFTW, the
// Naive levels ↔ the unoptimized pipelines).
type ParallelOptions struct {
	// Protected enables the online ABFT scheme across ranks (FT-FFTW);
	// false runs the plain six-step parallel FFT (FFTW).
	Protected bool
	// Optimized enables the §6 optimizations — communication-computation
	// overlap (Algorithm 3) and fused verification passes (opt-FFTW /
	// opt-FT-FFTW).
	Optimized bool
	// Injector corrupts data at fault sites, including messages in
	// transit. It must be safe for concurrent use (fault.Schedule is).
	Injector Injector
	// EtaScale scales detection thresholds; 0 means 1.
	EtaScale float64
	// MaxRetries caps per-unit recomputations; 0 means 3.
	MaxRetries int
}

// ParallelPlan computes protected forward DFTs with the paper's §5 six-step
// in-place parallel algorithm.
//
// Deprecated: use New with WithRanks, which adds Inverse, ForwardBatch and
// cancellation on the same pipeline.
type ParallelPlan struct {
	pl *parallel.Plan
}

// NewParallelPlan creates a plan for n-point transforms over ranks workers.
// Geometry requirements: ranks² must divide n (so transposes exchange equal
// blocks) and n/ranks must factor as k·r·k² with small r — powers of two
// always qualify.
//
// Deprecated: use New(n, WithRanks(ranks), ...).
func NewParallelPlan(n, ranks int, opts ParallelOptions) (*ParallelPlan, error) {
	pl, err := parallel.NewPlan(n, ranks, parallel.Config{
		Protected:  opts.Protected,
		Optimized:  opts.Optimized,
		Injector:   opts.Injector,
		EtaScale:   opts.EtaScale,
		MaxRetries: opts.MaxRetries,
	})
	if err != nil {
		return nil, err
	}
	return &ParallelPlan{pl: pl}, nil
}

// N returns the global transform size.
func (p *ParallelPlan) N() int { return p.pl.N() }

// Ranks returns the number of workers.
func (p *ParallelPlan) Ranks() int { return p.pl.P() }

// Forward computes the forward DFT of src into dst (both length N). Rank j
// owns the slices [j·N/p, (j+1)·N/p) of both arrays, mirroring the
// distributed layout.
func (p *ParallelPlan) Forward(dst, src []complex128) (Report, error) {
	if err := checkArgs(p.pl.N(), dst, src); err != nil {
		return Report{}, err
	}
	return p.pl.Transform(dst, src)
}
