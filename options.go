package ftfft

import (
	"ftfft/internal/exec"
	"ftfft/internal/mpi"
)

// Option configures New. Options compose: protection × geometry ×
// parallelism are independent axes, and every supported combination is
// reachable through one constructor.
type Option func(*config)

// config is the resolved option set.
type config struct {
	protection  Protection
	ranks       int
	rows, cols  int   // WithShape (kept separate from dims to detect conflicts)
	dims        []int // resolved N-D geometry; nil means 1-D
	dimsSet     bool  // WithDims was supplied (even with invalid arguments)
	injector    Injector
	etaScale    float64
	maxRetries  int
	workers     int       // WithWorkers; 0 means unset
	executor    *Executor // WithExecutor
	executorSet bool
	transport   mpi.Transport // WithTransport; nil means per-plan in-process wire
	noPeerMesh  bool          // WithoutPeerMesh; ServeWorker-only
	tuning      TuningMode    // WithTuning; TuneEstimate means heuristics
	batchWindow int           // WithBatchWindow; 0 means auto

	// pool is the resolved executor every layer dispatches on, filled in by
	// New; nil (the deprecated-shim path) falls back to exec.Default().
	pool *exec.Pool
}

// WithProtection selects the fault-tolerance scheme (default None).
func WithProtection(p Protection) Option {
	return func(c *config) { c.protection = p }
}

// WithRanks runs the transform over p simulated ranks. For a 1-D transform
// this is the paper's §5 six-step in-place parallel algorithm (p² must
// divide N); combined with WithDims or WithShape it sizes the worker pool
// the axis passes are dispatched over. p ≤ 1 means sequential execution.
func WithRanks(p int) Option {
	return func(c *config) { c.ranks = p }
}

// WithDims makes the transform N-dimensional over row-major
// dims[0]×dims[1]×…×dims[k-1] data: the transform runs as one protected
// 1-D axis pass per non-degenerate axis (innermost axis first), so the
// online scheme's timely-detection property holds between passes for any
// rank k ≥ 1. The planned size n must equal the product of the dims.
// Length-1 axes are accepted and skipped as identity passes.
func WithDims(dims ...int) Option {
	return func(c *config) {
		c.dims = append([]int(nil), dims...)
		c.dimsSet = true
	}
}

// WithShape makes the transform 2-D over row-major rows×cols data.
// It is shorthand for WithDims(rows, cols) (and mutually exclusive with
// WithDims); the planned size n must equal rows·cols.
func WithShape(rows, cols int) Option {
	return func(c *config) { c.rows, c.cols = rows, cols }
}

// WithInjector installs a fault injector, consulted at every fault site the
// protected transform visits. It must be safe for concurrent use when
// combined with WithRanks or ForwardBatch (Schedule is).
func WithInjector(inj Injector) Option {
	return func(c *config) { c.injector = inj }
}

// WithEtaScale scales the §8 round-off detection thresholds; 0 means 1.
// Raising it trades fault coverage for fewer false alarms.
func WithEtaScale(s float64) Option {
	return func(c *config) { c.etaScale = s }
}

// WithMaxRetries caps recomputation attempts per protected unit before the
// transform is declared uncorrectable; 0 means 3.
func WithMaxRetries(n int) Option {
	return func(c *config) { c.maxRetries = n }
}

// WithTuning selects the plan-time tuning policy (default TuneEstimate).
// Under TuneMeasured, New and NewReal time the legal candidates for each
// tunable plan choice on this host at plan build — kernel engine, Bluestein
// convolution length, nd tile size, ForwardBatch epoch window — and record
// the winners in the process-wide wisdom table (ExportWisdom/ImportWisdom);
// later builds of the same geometry hit the table instead of re-measuring.
// All measurement is confined to plan build: steady-state execution keeps
// its allocation and determinism contracts either way.
func WithTuning(m TuningMode) Option {
	return func(c *config) { c.tuning = m }
}

// WithBatchWindow pins a parallel plan's ForwardBatch epoch-pipelining
// window to k in-flight items (1 ≤ k ≤ 4); 0 (the default) keeps the
// automatic choice — the executor-budget heuristic, or the measured winner
// under WithTuning(TuneMeasured). Non-parallel New plans accept and ignore
// it, like WithRanks(1); NewReal rejects it with the other parallel options.
func WithBatchWindow(k int) Option {
	return func(c *config) { c.batchWindow = k }
}
