package ftfft_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftfft"
	"ftfft/internal/workload"
)

// TestBoundedConcurrency is the refactor's acceptance test: 64 concurrent
// callers hammering one WithRanks(4) plan must not multiply into 64·4 rank
// goroutines. With a private WithWorkers(8) executor the library may add at
// most the 8 budgeted workers (plus a small constant for runtime background
// goroutines) on top of the 64 caller goroutines — the pre-refactor dispatch
// peaked at ~64·4 extra.
func TestBoundedConcurrency(t *testing.T) {
	const (
		callers = 64
		ranks   = 4
		budget  = 8
		iters   = 10
		n       = 1024
	)
	tr, err := ftfft.New(n, ftfft.WithRanks(ranks), ftfft.WithWorkers(budget),
		ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		t.Fatal(err)
	}
	src := workload.Uniform(50, n)

	// Warm the plan once so lazily-built pool state doesn't skew the peak.
	warm := make([]complex128, n)
	if _, err := tr.Forward(bg, warm, src); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	var (
		running atomic.Int32
		peak    atomic.Int32
		wg      sync.WaitGroup
	)
	running.Store(1) // sampler sentinel: keep sampling until all callers exit
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		for running.Load() > 0 {
			g := int32(runtime.NumGoroutine())
			for {
				p := peak.Load()
				if g <= p || peak.CompareAndSwap(p, g) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for c := 0; c < callers; c++ {
		wg.Add(1)
		running.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer running.Add(-1)
			dst := make([]complex128, n)
			in := workload.Uniform(seed, n)
			for i := 0; i < iters; i++ {
				if _, err := tr.Forward(bg, dst, in); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(100 + c))
	}
	wg.Wait()
	running.Add(-1)
	<-sampleDone

	// base already counts this test's sampler and the runtime's background
	// goroutines; the budget plus a small constant (sampler, timer wheel,
	// GC workers that wake mid-run) is the allowance beyond the callers.
	const slack = 16
	limit := base + callers + budget + slack
	if p := int(peak.Load()); p > limit {
		t.Fatalf("goroutine peak %d exceeds bound %d (base %d + %d callers + %d workers + %d slack): dispatch is not budget-bounded",
			p, limit, base, callers, budget, slack)
	}
}

// TestExecutorDispatchBitIdentity: dispatch is not arithmetic. Whatever
// executor a plan draws — the process default, a 1-worker private pool (full
// serialization), a wide private pool, or a shared Executor — Forward and
// ForwardBatch outputs must be bit-identical across all of them, for the
// parallel, 2-D, and batch paths.
func TestExecutorDispatchBitIdentity(t *testing.T) {
	shared, err := ftfft.NewExecutor(3)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", shared.Workers())
	}
	for _, tc := range []struct {
		name string
		n    int
		opts []ftfft.Option
	}{
		{"parallel", 1024, []ftfft.Option{ftfft.WithRanks(4), ftfft.WithProtection(ftfft.OnlineABFTMemory)}},
		{"grid", 32 * 64, []ftfft.Option{ftfft.WithShape(32, 64), ftfft.WithRanks(4), ftfft.WithProtection(ftfft.OnlineABFT)}},
		{"nd3", 16 * 8 * 12, []ftfft.Option{ftfft.WithDims(16, 8, 12), ftfft.WithRanks(4), ftfft.WithProtection(ftfft.OnlineABFTMemory)}},
		{"seq", 512, []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFTMemory)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const items = 5
			src := make([][]complex128, items)
			for i := range src {
				src[i] = workload.Uniform(int64(60+i), tc.n)
			}
			// Reference: the default-executor plan, unbatched.
			ref, err := ftfft.New(tc.n, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]complex128, items)
			for i := range want {
				want[i] = make([]complex128, tc.n)
				if _, err := ref.Forward(bg, want[i], src[i]); err != nil {
					t.Fatal(err)
				}
			}
			for _, v := range []struct {
				name string
				opt  ftfft.Option
			}{
				{"workers1", ftfft.WithWorkers(1)},
				{"workers8", ftfft.WithWorkers(8)},
				{"shared", ftfft.WithExecutor(shared)},
			} {
				tr, err := ftfft.New(tc.n, append(append([]ftfft.Option{}, tc.opts...), v.opt)...)
				if err != nil {
					t.Fatal(err)
				}
				got := make([]complex128, tc.n)
				for i := range src {
					if _, err := tr.Forward(bg, got, src[i]); err != nil {
						t.Fatalf("%s: %v", v.name, err)
					}
					for j := range got {
						if got[j] != want[i][j] {
							t.Fatalf("%s: Forward item %d differs at %d: executor choice changed the arithmetic", v.name, i, j)
						}
					}
				}
				dstB := make([][]complex128, items)
				for i := range dstB {
					dstB[i] = make([]complex128, tc.n)
				}
				if _, err := tr.ForwardBatch(bg, dstB, src); err != nil {
					t.Fatalf("%s batch: %v", v.name, err)
				}
				for i := range dstB {
					for j := range dstB[i] {
						if dstB[i][j] != want[i][j] {
							t.Fatalf("%s: batch item %d differs at %d", v.name, i, j)
						}
					}
				}
			}
		})
	}
}

// TestSharedExecutorAcrossPlans: one Executor backing several plans of
// different kinds must serve interleaved concurrent traffic correctly.
func TestSharedExecutorAcrossPlans(t *testing.T) {
	ex, err := ftfft.NewExecutor(4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ftfft.New(1024, ftfft.WithRanks(4), ftfft.WithExecutor(ex))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := ftfft.New(16*16, ftfft.WithShape(16, 16), ftfft.WithRanks(2), ftfft.WithExecutor(ex))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for c := 0; c < 4; c++ {
		wg.Add(2)
		go func(seed int64) {
			defer wg.Done()
			src := workload.Uniform(seed, 1024)
			dst := make([]complex128, 1024)
			for i := 0; i < 5; i++ {
				if _, err := par.Forward(bg, dst, src); err != nil {
					errc <- fmt.Errorf("parallel: %w", err)
					return
				}
			}
		}(int64(70 + c))
		go func(seed int64) {
			defer wg.Done()
			src := workload.Uniform(seed, 256)
			dst := make([]complex128, 256)
			for i := 0; i < 5; i++ {
				if _, err := grid.Forward(bg, dst, src); err != nil {
					errc <- fmt.Errorf("grid: %w", err)
					return
				}
			}
		}(int64(80 + c))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestBatchCancellationStopsSubmission: a context canceled mid-batch must
// stop the submission pipeline on every executor kind and surface the
// cancellation.
func TestBatchCancellationStopsSubmission(t *testing.T) {
	for _, opts := range [][]ftfft.Option{
		{ftfft.WithRanks(4)},
		{ftfft.WithProtection(ftfft.OnlineABFTMemory)},
		{ftfft.WithShape(16, 16)},
	} {
		n := 256
		tr, err := ftfft.New(n, opts...)
		if err != nil {
			t.Fatal(err)
		}
		const items = 64
		src := make([][]complex128, items)
		dst := make([][]complex128, items)
		for i := range src {
			src[i] = workload.Uniform(int64(90+i), n)
			dst[i] = make([]complex128, n)
		}
		ctx, cancel := context.WithCancel(bg)
		cancel()
		if _, err := tr.ForwardBatch(ctx, dst, src); err == nil {
			t.Errorf("%T: canceled batch returned nil error", tr)
		}
	}
}
