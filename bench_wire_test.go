// The BenchmarkWire* family prices the transport seams of the distributed
// stack against each other on one machine:
//
//   - ChanShared   — the default in-process wire with the zero-copy
//     shared-memory scatter/gather fast path (the PR 4 baseline path);
//   - ChanMessage  — the same chan wire with the fast path masked, so the
//     explicit root-rank scatter/gather messages are priced on their own;
//   - UnixSocket   — the real byte-level codec over a Unix-domain socket
//     hub, worker ranks served in-process (goroutines, private executors),
//     so the delta over ChanMessage is serialization + kernel round trips,
//     not process-scheduling noise.
//
// bench.sh records the family; BENCH_PR5.json pins the chan-vs-socket
// trajectory point for this PR.
package ftfft_test

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"ftfft"
	"ftfft/internal/workload"
)

const (
	wireN = 1 << 14
	wireP = 4
)

func benchWireForward(b *testing.B, tr ftfft.Transform) {
	b.Helper()
	src := workload.Uniform(int64(wireN), wireN)
	dst := make([]complex128, wireN)
	ctx := context.Background()
	b.SetBytes(int64(16 * wireN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Forward(ctx, dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireChanShared_Parallel4(b *testing.B) {
	tr, err := ftfft.New(wireN, ftfft.WithRanks(wireP), ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		b.Fatal(err)
	}
	benchWireForward(b, tr)
}

func BenchmarkWireChanMessage_Parallel4(b *testing.B) {
	tr, err := ftfft.New(wireN, ftfft.WithRanks(wireP), ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithTransport(ftfft.MessageOnlyTransport(wireP)))
	if err != nil {
		b.Fatal(err)
	}
	benchWireForward(b, tr)
}

func BenchmarkWireUnixSocket_Parallel4(b *testing.B) {
	sock := filepath.Join(b.TempDir(), "bench.sock")
	hub, err := ftfft.ListenHub("unix", sock, wireP)
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 1; i < wireP; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Private single-worker executors: in-process worker ranks must
			// not compete for the shared pool's gang admission.
			if err := ftfft.ServeWorker(ctx, "unix", sock, ftfft.WithWorkers(1)); err != nil {
				b.Error(err)
			}
		}()
	}
	tr, err := ftfft.New(wireN, ftfft.WithRanks(wireP), ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithTransport(hub), ftfft.WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	benchWireForward(b, tr)
	b.StopTimer()
	hub.Close()
	wg.Wait()
}
