// The BenchmarkWire* family prices the transport seams of the distributed
// stack against each other on one machine:
//
//   - ChanShared   — the default in-process wire with the zero-copy
//     shared-memory scatter/gather fast path (the PR 4 baseline path);
//   - ChanMessage  — the same chan wire with the fast path masked, so the
//     explicit root-rank scatter/gather messages are priced on their own;
//   - UnixSocket   — the real byte-level codec over a Unix-domain socket
//     hub, worker ranks served in-process (goroutines, private executors),
//     so the delta over ChanMessage is serialization + kernel round trips,
//     not process-scheduling noise;
//   - Shm          — the same codec over the memory-mapped ring file, no
//     per-message syscalls or kernel copies: frames serialize straight into
//     the destination ring and are copied out once on receipt.
//
// bench.sh records the family; BENCH_PR8.json pins the chan-vs-socket-vs-shm
// trajectory point for this PR.
package ftfft_test

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"ftfft"
	"ftfft/internal/workload"
)

const (
	wireN = 1 << 14
	wireP = 4
)

func benchWireForward(b *testing.B, tr ftfft.Transform) {
	b.Helper()
	src := workload.Uniform(int64(wireN), wireN)
	dst := make([]complex128, wireN)
	ctx := context.Background()
	b.SetBytes(int64(16 * wireN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Forward(ctx, dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireChanShared_Parallel4(b *testing.B) {
	tr, err := ftfft.New(wireN, ftfft.WithRanks(wireP), ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		b.Fatal(err)
	}
	benchWireForward(b, tr)
}

func BenchmarkWireChanMessage_Parallel4(b *testing.B) {
	tr, err := ftfft.New(wireN, ftfft.WithRanks(wireP), ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithTransport(ftfft.MessageOnlyTransport(wireP)))
	if err != nil {
		b.Fatal(err)
	}
	benchWireForward(b, tr)
}

func BenchmarkWireUnixSocket_Parallel4(b *testing.B) {
	sock := filepath.Join(b.TempDir(), "bench.sock")
	hub, err := ftfft.ListenHub("unix", sock, wireP)
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 1; i < wireP; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Private single-worker executors: in-process worker ranks must
			// not compete for the shared pool's gang admission.
			if err := ftfft.ServeWorker(ctx, "unix", sock, ftfft.WithWorkers(1)); err != nil {
				b.Error(err)
			}
		}()
	}
	tr, err := ftfft.New(wireN, ftfft.WithRanks(wireP), ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithTransport(hub), ftfft.WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	benchWireForward(b, tr)
	b.StopTimer()
	hub.Close()
	wg.Wait()
}

func BenchmarkWireShm_Parallel4(b *testing.B) {
	ring := filepath.Join(b.TempDir(), "bench.ring")
	hub, err := ftfft.ListenShmHub(ring, wireP)
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 1; i < wireP; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ftfft.ServeWorker(ctx, "shm", ring, ftfft.WithWorkers(1)); err != nil {
				b.Error(err)
			}
		}()
	}
	tr, err := ftfft.New(wireN, ftfft.WithRanks(wireP), ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithTransport(hub), ftfft.WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	benchWireForward(b, tr)
	b.StopTimer()
	hub.Close()
	wg.Wait()
}

// benchWireBatch prices the epoch-pipelined batch path: batchItems transforms
// in flight per op, windowed by the epoch ring and the root's executor budget.
const batchItems = 8

func benchWireBatch(b *testing.B, tr ftfft.Transform) {
	b.Helper()
	src := make([][]complex128, batchItems)
	dst := make([][]complex128, batchItems)
	for i := range src {
		src[i] = workload.Uniform(int64(wireN+i), wireN)
		dst[i] = make([]complex128, wireN)
	}
	ctx := context.Background()
	b.SetBytes(int64(batchItems * 16 * wireN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ForwardBatch(ctx, dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSocketWorld opens a socket hub (mesh or star) with in-process worker
// ranks and returns the root transform plus a teardown func. rootWorkers
// sizes the root's private pool — and with it the pipelined batch window.
func benchSocketWorld(b *testing.B, mesh bool, rootWorkers, workerWorkers int) (ftfft.Transform, func()) {
	b.Helper()
	sock := filepath.Join(b.TempDir(), "bench.sock")
	listen := ftfft.ListenHub
	if mesh {
		listen = ftfft.ListenMeshHub
	}
	hub, err := listen("unix", sock, wireP)
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	for i := 1; i < wireP; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ftfft.ServeWorker(ctx, "unix", sock, ftfft.WithWorkers(workerWorkers)); err != nil {
				b.Error(err)
			}
		}()
	}
	tr, err := ftfft.New(wireN, ftfft.WithRanks(wireP), ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithTransport(hub), ftfft.WithWorkers(rootWorkers))
	if err != nil {
		b.Fatal(err)
	}
	return tr, func() {
		hub.Close()
		wg.Wait()
		cancel()
	}
}

// BenchmarkWireUnixMesh_Parallel4 is BenchmarkWireUnixSocket_Parallel4 under
// a mesh hub: worker↔worker transpose frames go point-to-point, cutting the
// relay hop (two syscall round trips through the hub) from every exchange.
func BenchmarkWireUnixMesh_Parallel4(b *testing.B) {
	tr, stop := benchSocketWorld(b, true, 1, 1)
	benchWireForward(b, tr)
	b.StopTimer()
	stop()
}

// The BenchmarkWireBatch* family prices ForwardBatch over the real wires:
// batch-of-8 at the family geometry, the root's 4 workers opening the epoch
// ring's full window, so per-item cost shows how much of the wait bubbles the
// pipeline fills. Star vs mesh isolates the relay hop under load.
func BenchmarkWireBatchUnixSocketStar_Parallel4(b *testing.B) {
	tr, stop := benchSocketWorld(b, false, 4, 2)
	benchWireBatch(b, tr)
	b.StopTimer()
	stop()
}

func BenchmarkWireBatchUnixSocketMesh_Parallel4(b *testing.B) {
	tr, stop := benchSocketWorld(b, true, 4, 2)
	benchWireBatch(b, tr)
	b.StopTimer()
	stop()
}

func BenchmarkWireBatchShm_Parallel4(b *testing.B) {
	ring := filepath.Join(b.TempDir(), "bench.ring")
	hub, err := ftfft.ListenShmHub(ring, wireP)
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 1; i < wireP; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ftfft.ServeWorker(ctx, "shm", ring, ftfft.WithWorkers(2)); err != nil {
				b.Error(err)
			}
		}()
	}
	tr, err := ftfft.New(wireN, ftfft.WithRanks(wireP), ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithTransport(hub), ftfft.WithWorkers(4))
	if err != nil {
		b.Fatal(err)
	}
	benchWireBatch(b, tr)
	b.StopTimer()
	hub.Close()
	wg.Wait()
}

// TestWireRecvAllocs pins the per-transform allocation budget of the message
// wires at the benchmark geometry. The chan wire's steady state allocates
// only the report roll-up; decode-in-place must keep the socket wire within
// a small constant of it (the PR 6 seed burned ~117 allocs/op on
// per-message decode buffers), and the shm wire likewise.
func TestWireRecvAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmark loops")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; budgets hold for normal builds")
	}
	for _, tc := range []struct {
		name   string
		budget int
		bench  func(*testing.B)
	}{
		// Budgets are ceilings with slack over the measured steady state
		// (chan ≈ 10, socket ≈ 36, shm ≈ 16 at 2^14, p = 4 — the remainder
		// is per-transform plan contexts, shared by every wire), far below
		// the pre-decode-in-place socket cost of ~117 plus one header
		// allocation per frame. PR 9's epoch-lane serve rotation cost one
		// launch + reservation + watcher per lane round (socket crept to
		// ~62); the prebuilt mpi.Lane / exec.FixedGang rotation recovered it.
		{"chan", 20, BenchmarkWireChanMessage_Parallel4},
		{"socket", 44, BenchmarkWireUnixSocket_Parallel4},
		{"shm", 24, BenchmarkWireShm_Parallel4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := testing.Benchmark(tc.bench)
			if got := res.AllocsPerOp(); got > int64(tc.budget) {
				t.Fatalf("%s wire allocates %d/op, budget %d", tc.name, got, tc.budget)
			}
			t.Logf("%s wire: %d allocs/op, %d B/op", tc.name, res.AllocsPerOp(), res.AllocedBytesPerOp())
		})
	}
}
