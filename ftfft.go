package ftfft

import (
	"context"
	"fmt"

	"ftfft/internal/core"
)

// Protection selects how a transform is guarded against soft errors.
type Protection int

const (
	// None performs a plain planned FFT with no fault tolerance — the
	// baseline the paper calls "FFTW".
	None Protection = iota
	// OfflineABFT verifies one weighted checksum after the whole transform
	// (Algorithm 1, optimized): errors are detected only at the end and
	// recovery is a full restart.
	OfflineABFT
	// OfflineABFTNaive is OfflineABFT without the §4/§7 optimizations
	// (trigonometric checksum-vector evaluation, unmerged verification).
	OfflineABFTNaive
	// OnlineABFT verifies every sub-transform of the two-layer
	// decomposition as it completes (Algorithm 2, optimized); arithmetic
	// errors are corrected by recomputing O(√N) work. Memory errors are
	// out of scope at this level.
	OnlineABFT
	// OnlineABFTNaive is the strawman online scheme of the paper's
	// introduction: offline ABFT applied verbatim to every sub-FFT.
	OnlineABFTNaive
	// OnlineABFTMemory is the flagship scheme (Fig. 3): online two-layer
	// ABFT plus memory-fault location and in-place correction, with the
	// dual-use checksums, verification postponing, incremental generation
	// and contiguous buffering optimizations.
	OnlineABFTMemory
	// OnlineABFTMemoryNaive is the Fig. 2 hierarchy: memory protection
	// before the §4 optimizations.
	OnlineABFTMemoryNaive
)

func (p Protection) String() string {
	switch p {
	case None:
		return "none"
	case OfflineABFT:
		return "offline"
	case OfflineABFTNaive:
		return "offline-naive"
	case OnlineABFT:
		return "online"
	case OnlineABFTNaive:
		return "online-naive"
	case OnlineABFTMemory:
		return "online-memory"
	case OnlineABFTMemoryNaive:
		return "online-memory-naive"
	default:
		return fmt.Sprintf("Protection(%d)", int(p))
	}
}

func (p Protection) coreConfig() (core.Config, error) {
	switch p {
	case None:
		return core.Config{Scheme: core.Plain}, nil
	case OfflineABFT:
		return core.Config{Scheme: core.Offline, Variant: core.Optimized}, nil
	case OfflineABFTNaive:
		return core.Config{Scheme: core.Offline, Variant: core.Naive}, nil
	case OnlineABFT:
		return core.Config{Scheme: core.Online, Variant: core.Optimized}, nil
	case OnlineABFTNaive:
		return core.Config{Scheme: core.Online, Variant: core.Naive}, nil
	case OnlineABFTMemory:
		return core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true}, nil
	case OnlineABFTMemoryNaive:
		return core.Config{Scheme: core.Online, Variant: core.Naive, MemoryFT: true}, nil
	default:
		return core.Config{}, fmt.Errorf("ftfft: unknown protection level %d", int(p))
	}
}

// Report summarizes the fault-tolerance activity of one transform: checksum
// mismatches detected, sub-FFT recomputations, memory elements repaired,
// DMR votes, and full restarts. A zero Report means a fault-free run.
type Report = core.Report

// ErrUncorrectable is returned when the retry budget was exhausted without
// producing a verified result.
var ErrUncorrectable = core.ErrUncorrectable

// Options configures a Plan.
//
// Deprecated: use New's functional options (WithProtection, WithInjector,
// WithEtaScale, WithMaxRetries).
type Options struct {
	// Protection selects the fault-tolerance scheme. Default None.
	Protection Protection
	// Injector, when non-nil, corrupts data at the scheme's fault sites —
	// the mechanism behind every fault-injection experiment. nil means no
	// injected faults (real soft errors are, of course, still detected).
	Injector Injector
	// EtaScale scales the §8 round-off detection thresholds; 0 means 1.
	// Raising it trades fault coverage for fewer false alarms.
	EtaScale float64
	// MaxRetries caps recomputation attempts per protected unit; 0 means 3.
	MaxRetries int
}

// Plan computes protected DFTs of one fixed size.
//
// Deprecated: use New, which returns the unified cancellable Transform.
// A Plan is now a thin shim over the same executor and is safe for
// concurrent use (Convolve excepted: it owns plan-level scratch).
type Plan struct {
	t      *seqTransform
	fa, fb []complex128 // Convolve spectra scratch, lazily sized
}

// NewPlan creates a plan for n-point transforms. Online protection levels
// require a composite n (the paper's two-layer decomposition); powers of two
// are ideal.
//
// Deprecated: use New(n, WithProtection(...), ...).
func NewPlan(n int, opts Options) (*Plan, error) {
	t, err := newSeqTransform(n, config{
		protection: opts.Protection,
		injector:   opts.Injector,
		etaScale:   opts.EtaScale,
		maxRetries: opts.MaxRetries,
	})
	if err != nil {
		return nil, err
	}
	return &Plan{t: t}, nil
}

// N returns the transform size.
func (p *Plan) N() int { return p.t.Len() }

// Forward computes X_j = Σ_t x_t·exp(-2πi·jt/N) from src into dst, both of
// length N and non-overlapping. When memory protection is active and an
// input memory fault is detected, src is repaired in place.
func (p *Plan) Forward(dst, src []complex128) (Report, error) {
	return p.t.Forward(context.Background(), dst, src)
}

// Inverse computes the inverse DFT (with 1/N normalization) under the same
// protection, via the conjugation identity IDFT(x) = conj(DFT(conj(x)))/N —
// so the entire ABFT machinery guards the inverse path too.
func (p *Plan) Inverse(dst, src []complex128) (Report, error) {
	return p.t.Inverse(context.Background(), dst, src)
}

// Convolve computes the circular convolution of a and b (each length N)
// into dst via three protected transforms, reusing the plan and its scratch
// spectra — the steady-state path for convolution-heavy workloads that the
// package-level Convolve helper routes through. dst may alias a or b.
func (p *Plan) Convolve(dst, a, b []complex128) (Report, error) {
	n := p.t.Len()
	if len(dst) < n || len(a) < n || len(b) < n {
		return Report{}, fmt.Errorf("ftfft: convolution buffers too short: dst=%d a=%d b=%d, need %d", len(dst), len(a), len(b), n)
	}
	if p.fa == nil {
		p.fa = make([]complex128, n)
		p.fb = make([]complex128, n)
	}
	var total Report
	rep, err := p.t.Forward(context.Background(), p.fa, a)
	total.Add(rep)
	if err != nil {
		return total, err
	}
	rep, err = p.t.Forward(context.Background(), p.fb, b)
	total.Add(rep)
	if err != nil {
		return total, err
	}
	for i := 0; i < n; i++ {
		p.fa[i] *= p.fb[i]
	}
	rep, err = p.t.Inverse(context.Background(), dst, p.fa)
	total.Add(rep)
	return total, err
}

// Forward is a one-shot convenience: it plans, transforms, and returns a
// fresh output slice. Transform-many workloads should plan once with New.
func Forward(x []complex128, opts Options) ([]complex128, Report, error) {
	p, err := NewPlan(len(x), opts)
	if err != nil {
		return nil, Report{}, err
	}
	dst := make([]complex128, len(x))
	rep, err := p.Forward(dst, x)
	return dst, rep, err
}

// Inverse is the one-shot inverse counterpart of Forward.
func Inverse(x []complex128, opts Options) ([]complex128, Report, error) {
	p, err := NewPlan(len(x), opts)
	if err != nil {
		return nil, Report{}, err
	}
	dst := make([]complex128, len(x))
	rep, err := p.Inverse(dst, x)
	return dst, rep, err
}

// Convolve returns the circular convolution of a and b (equal lengths) via
// three protected transforms. It routes through a plan-level Convolve;
// convolution-heavy workloads should hold a Plan and call its Convolve to
// amortize planning and scratch.
func Convolve(a, b []complex128, opts Options) ([]complex128, Report, error) {
	if len(a) != len(b) {
		return nil, Report{}, fmt.Errorf("ftfft: convolution operands differ in length: %d vs %d", len(a), len(b))
	}
	p, err := NewPlan(len(a), opts)
	if err != nil {
		return nil, Report{}, err
	}
	out := make([]complex128, len(a))
	rep, err := p.Convolve(out, a, b)
	return out, rep, err
}
