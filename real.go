package ftfft

import (
	"context"
	"fmt"
	"sync"

	"ftfft/internal/core"
)

// RealTransform is the real-input counterpart of Transform: protected
// forward and inverse transforms of n real samples, exchanging the stored
// half spectrum X_0..X_{n/2} (length SpectrumLen() = n/2+1; the upper half
// follows from conjugate symmetry X_{n-k} = conj(X_k) and is not stored).
//
// The implementation packs the n reals into an (n/2)-point complex vector,
// runs ONE protected complex transform of half the length, and untangles the
// spectrum in O(n) — roughly halving the work and memory traffic of
// transforming the same samples as zero-imaginary complex data. The inner
// complex transform carries the configured scheme's full ABFT machinery:
// every fault site is visited, verified and repaired exactly as in the
// complex path. The deterministic pack/untangle steps add no new fault
// sites.
//
// All methods are safe for concurrent use — concurrent calls draw separate
// execution contexts from an internal pool, and execution allocates nothing
// in steady state.
type RealTransform interface {
	// Forward computes the half spectrum of the n real samples in src into
	// dst (SpectrumLen() elements). X_0 and X_{n/2} are real by
	// construction. When memory protection is active, faults are repaired
	// in the packed staging copy; src itself is never modified.
	Forward(ctx context.Context, dst []complex128, src []float64) (Report, error)
	// Inverse computes the n real samples whose half spectrum is src
	// (SpectrumLen() elements; the imaginary parts of src[0] and
	// src[n/2] are ignored, as conjugate symmetry forces them to zero)
	// into dst, with 1/n normalization.
	Inverse(ctx context.Context, dst []float64, src []complex128) (Report, error)
	// Len returns the real transform length n.
	Len() int
	// SpectrumLen returns the stored half-spectrum length, n/2 + 1.
	SpectrumLen() int
	// Protection returns the configured fault-tolerance scheme.
	Protection() Protection
}

// NewReal plans an n-point protected real-input transform. n must be even;
// online protection levels additionally need a composite half length n/2 ≥ 4
// (the two-layer decomposition runs on the inner complex transform, so
// powers of two are ideal). Protection and tuning options compose exactly as
// with New; geometry and parallelism options (WithDims, WithShape,
// WithRanks, WithTransport, WithWorkers, WithExecutor, WithBatchWindow) do
// not apply to the 1-D real path and are rejected.
func NewReal(n int, opts ...Option) (RealTransform, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if err := c.validate(n); err != nil {
		return nil, err
	}
	switch {
	case c.ranks > 1:
		return nil, fmt.Errorf("ftfft: invalid real-transform options: WithRanks does not apply to NewReal")
	case c.dimsSet || c.rows != 0 || c.cols != 0:
		return nil, fmt.Errorf("ftfft: invalid real-transform options: WithDims/WithShape do not apply to NewReal")
	case c.transport != nil:
		return nil, fmt.Errorf("ftfft: invalid real-transform options: WithTransport does not apply to NewReal")
	case c.workers > 0 || c.executorSet:
		return nil, fmt.Errorf("ftfft: invalid real-transform options: WithWorkers/WithExecutor do not apply to NewReal")
	case c.batchWindow > 0:
		return nil, fmt.Errorf("ftfft: invalid real-transform options: WithBatchWindow does not apply to NewReal")
	}
	cfg, err := c.protection.coreConfig()
	if err != nil {
		return nil, err
	}
	cfg.Injector = c.injector
	cfg.EtaScale = c.etaScale
	cfg.MaxRetries = c.maxRetries
	applyCoreTuning(n, &cfg, &c, true)
	r := &realTransform{n: n, prot: c.protection, cfg: cfg}
	// Build the first context eagerly: it validates n against the scheme.
	rc, err := core.NewReal(n, cfg)
	if err != nil {
		return nil, err
	}
	r.free = append(r.free, rc)
	return r, nil
}

// realTransform is the sequential real-input executor: a pool of core real
// transformers (one drawn per in-flight call) behind the RealTransform
// contract, mirroring the complex seqTransform.
type realTransform struct {
	n    int
	prot Protection
	cfg  core.Config

	mu   sync.Mutex
	free []*core.RealTransformer
}

func (r *realTransform) getCtx() (*core.RealTransformer, error) {
	r.mu.Lock()
	if k := len(r.free); k > 0 {
		rc := r.free[k-1]
		r.free[k-1] = nil
		r.free = r.free[:k-1]
		r.mu.Unlock()
		return rc, nil
	}
	r.mu.Unlock()
	return core.NewReal(r.n, r.cfg)
}

func (r *realTransform) putCtx(rc *core.RealTransformer) {
	r.mu.Lock()
	if len(r.free) < maxPooledSeq {
		r.free = append(r.free, rc)
	}
	r.mu.Unlock()
}

func (r *realTransform) Len() int               { return r.n }
func (r *realTransform) SpectrumLen() int       { return r.n/2 + 1 }
func (r *realTransform) Protection() Protection { return r.prot }

func (r *realTransform) Forward(ctx context.Context, dst []complex128, src []float64) (Report, error) {
	if len(dst) < r.SpectrumLen() || len(src) < r.n {
		return Report{}, fmt.Errorf("ftfft: real-transform buffers too short: dst=%d src=%d, need %d and %d", len(dst), len(src), r.SpectrumLen(), r.n)
	}
	rc, err := r.getCtx()
	if err != nil {
		return Report{}, err
	}
	rep, err := rc.TransformContext(ctx, dst, src)
	r.putCtx(rc)
	return rep, err
}

func (r *realTransform) Inverse(ctx context.Context, dst []float64, src []complex128) (Report, error) {
	if len(dst) < r.n || len(src) < r.SpectrumLen() {
		return Report{}, fmt.Errorf("ftfft: real-transform buffers too short: dst=%d src=%d, need %d and %d", len(dst), len(src), r.n, r.SpectrumLen())
	}
	rc, err := r.getCtx()
	if err != nil {
		return Report{}, err
	}
	rep, err := rc.InverseContext(ctx, dst, src)
	r.putCtx(rc)
	return rep, err
}
