// The BenchmarkContended* family measures throughput under heavy caller
// concurrency — the ROADMAP's serving scenario, where M simultaneous callers
// share one plan and the dispatch layer (not the arithmetic) decides whether
// the process degrades gracefully or thunders.
//
// Every benchmark drives contendedCallers concurrent goroutines through one
// shared plan via b.RunParallel, so ns/op is the per-transform latency the
// fleet observes at saturation. bench.sh records the family alongside the
// paper benchmarks; BENCH_PR3.json pins the before/after trajectory of the
// executor refactor.
package ftfft_test

import (
	"context"
	"runtime"
	"testing"

	"ftfft"
	"ftfft/internal/workload"
)

// contendedCallers is the fleet size: 64 concurrent callers per benchmark.
const contendedCallers = 64

// benchContendedForward hammers tr.Forward from contendedCallers goroutines.
func benchContendedForward(b *testing.B, tr ftfft.Transform) {
	b.Helper()
	n := tr.Len()
	ctx := context.Background()
	b.SetBytes(int64(16 * n))
	b.SetParallelism((contendedCallers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := workload.Uniform(int64(n), n)
		dst := make([]complex128, n)
		for pb.Next() {
			if _, err := tr.Forward(ctx, dst, src); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchContendedBatch hammers tr.ForwardBatch (items per call) from
// contendedCallers goroutines.
func benchContendedBatch(b *testing.B, tr ftfft.Transform, items int) {
	b.Helper()
	n := tr.Len()
	ctx := context.Background()
	b.SetBytes(int64(16 * n * items))
	b.SetParallelism((contendedCallers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := make([][]complex128, items)
		dst := make([][]complex128, items)
		for i := range src {
			src[i] = workload.Uniform(int64(n+i), n)
			dst[i] = make([]complex128, n)
		}
		for pb.Next() {
			if _, err := tr.ForwardBatch(ctx, dst, src); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkContendedSeq_OnlineMemory(b *testing.B) {
	tr, err := ftfft.New(1<<12, ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		b.Fatal(err)
	}
	benchContendedForward(b, tr)
}

func BenchmarkContendedParallel4_OnlineMemory(b *testing.B) {
	tr, err := ftfft.New(1<<12, ftfft.WithRanks(4), ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		b.Fatal(err)
	}
	benchContendedForward(b, tr)
}

func BenchmarkContendedParallel4_FFTW(b *testing.B) {
	tr, err := ftfft.New(1<<12, ftfft.WithRanks(4))
	if err != nil {
		b.Fatal(err)
	}
	benchContendedForward(b, tr)
}

func BenchmarkContendedGrid2D_OnlineMemory(b *testing.B) {
	tr, err := ftfft.New(64*64, ftfft.WithShape(64, 64), ftfft.WithRanks(4),
		ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		b.Fatal(err)
	}
	benchContendedForward(b, tr)
}

func BenchmarkContendedBatch8_Seq_OnlineMemory(b *testing.B) {
	tr, err := ftfft.New(1<<12, ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		b.Fatal(err)
	}
	benchContendedBatch(b, tr, 8)
}

func BenchmarkContendedBatch8_Parallel4(b *testing.B) {
	tr, err := ftfft.New(1<<12, ftfft.WithRanks(4), ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		b.Fatal(err)
	}
	benchContendedBatch(b, tr, 8)
}
