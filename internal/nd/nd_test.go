package nd

import (
	"context"
	"math/cmplx"
	"math/rand"
	"testing"

	"ftfft/internal/core"
	"ftfft/internal/dft"
)

var bg = context.Background()

func randomVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

// axisReference applies the O(len²) reference DFT along every axis,
// innermost first — the schedule the engine must reproduce.
func axisReference(x []complex128, dims []int, inverse bool) []complex128 {
	out := append([]complex128(nil), x...)
	inner := 1
	for a := len(dims) - 1; a >= 0; a-- {
		length := dims[a]
		if length == 1 {
			continue
		}
		line := make([]complex128, length)
		outer := len(x) / (length * inner)
		for o := 0; o < outer; o++ {
			for t := 0; t < inner; t++ {
				base := o*length*inner + t
				for r := 0; r < length; r++ {
					line[r] = out[base+r*inner]
				}
				var X []complex128
				if inverse {
					X = dft.Inverse(line)
				} else {
					X = dft.Transform(line)
				}
				for r := 0; r < length; r++ {
					out[base+r*inner] = X[r]
				}
			}
		}
		inner *= length
	}
	return out
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func maxAbs(a []complex128) float64 {
	var m float64
	for _, v := range a {
		if d := cmplx.Abs(v); d > m {
			m = d
		}
	}
	return m
}

// onlineCompatible reports whether every non-degenerate axis admits the
// online scheme's two-layer decomposition.
func onlineCompatible(dims []int) bool {
	for _, d := range dims {
		if d == 1 {
			continue
		}
		if _, _, err := core.Split(d); err != nil {
			return false
		}
	}
	return true
}

var testShapes = [][]int{
	{64},
	{8, 16},
	{16, 8},
	{4, 8, 8},
	{8, 1, 8},
	{1, 64},
	{64, 1},
	{2, 4, 4, 4},
	{4, 4, 4},
}

func TestForwardMatchesAxisReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dims := range testShapes {
		for _, cfg := range []core.Config{
			{Scheme: core.Plain},
			{Scheme: core.Offline, Variant: core.Optimized, MemoryFT: true},
			{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true},
		} {
			if cfg.Scheme == core.Online && !onlineCompatible(dims) {
				continue
			}
			p, err := New(dims, Config{Core: cfg})
			if err != nil {
				t.Fatalf("%v %v: %v", dims, cfg.Scheme, err)
			}
			x := randomVec(rng, p.Len())
			want := axisReference(x, dims, false)
			dst := make([]complex128, p.Len())
			rep, err := p.Forward(bg, dst, append([]complex128(nil), x...))
			if err != nil || !rep.Clean() {
				t.Fatalf("%v %v: err=%v rep=%+v", dims, cfg.Scheme, err, rep)
			}
			tol := 1e-9 * float64(p.Len()) * (1 + maxAbs(want))
			if d := maxAbsDiff(dst, want); d > tol {
				t.Errorf("%v %v: forward diff %g > %g", dims, cfg.Scheme, d, tol)
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range testShapes {
		for _, cfg := range []core.Config{
			{Scheme: core.Plain},
			{Scheme: core.Offline, Variant: core.Naive},
			{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true},
		} {
			if cfg.Scheme == core.Online && !onlineCompatible(dims) {
				continue
			}
			p, err := New(dims, Config{Core: cfg})
			if err != nil {
				t.Fatal(err)
			}
			x := randomVec(rng, p.Len())
			X := make([]complex128, p.Len())
			back := make([]complex128, p.Len())
			if _, err := p.Forward(bg, X, append([]complex128(nil), x...)); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Inverse(bg, back, X); err != nil {
				t.Fatal(err)
			}
			tol := 1e-9 * float64(p.Len()) * (1 + maxAbs(x))
			if d := maxAbsDiff(back, x); d > tol {
				t.Errorf("%v %v: round trip diff %g > %g", dims, cfg.Scheme, d, tol)
			}
		}
	}
}

// TestTilingAndWidthBitIdentity: the tile schedule and the dispatch width
// are pure scheduling choices — outputs must be bit-identical across them.
func TestTilingAndWidthBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dims := []int{16, 8, 12}
	cfg := core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true}
	ref, err := New(dims, Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	x := randomVec(rng, ref.Len())
	want := make([]complex128, ref.Len())
	if _, err := ref.Forward(bg, want, append([]complex128(nil), x...)); err != nil {
		t.Fatal(err)
	}
	for _, c := range []Config{
		{Core: cfg, Workers: 4},
		{Core: cfg, Workers: 3, TileElems: 16}, // force many tiny tiles
		{Core: cfg, TileElems: 1},              // one line per tile, serial
		{Core: cfg, Workers: 16, TileElems: 1 << 20},
	} {
		p, err := New(dims, c)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, p.Len())
		if _, err := p.Forward(bg, got, append([]complex128(nil), x...)); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d tile=%d: element %d differs: scheduling changed the arithmetic",
					c.Workers, c.TileElems, i)
			}
		}
	}
}

func TestDegenerateAllOnes(t *testing.T) {
	p, err := New([]int{1, 1, 1}, Config{Core: core.Config{Scheme: core.Online, Variant: core.Optimized}})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, 1)
	if _, err := p.Forward(bg, dst, []complex128{42i}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 42i {
		t.Fatalf("identity transform produced %v", dst[0])
	}
}

func TestNewValidation(t *testing.T) {
	cfg := Config{Core: core.Config{Scheme: core.Plain}}
	if _, err := New(nil, cfg); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := New([]int{4, 0}, cfg); err == nil {
		t.Error("zero axis accepted")
	}
	if _, err := New([]int{4, -4}, cfg); err == nil {
		t.Error("negative axis accepted")
	}
	// Online protection needs composite axis lengths ≥ 4.
	if _, err := New([]int{2, 32}, Config{Core: core.Config{Scheme: core.Online}}); err == nil {
		t.Error("online scheme accepted a 2-point axis")
	}
}

func TestPooledContextCap(t *testing.T) {
	p, err := New([]int{8, 8}, Config{Core: core.Config{Scheme: core.Plain}, MaxPooled: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A burst of concurrent calls must not pin more than the cap.
	const burst = 16
	done := make(chan error, burst)
	gate := make(chan struct{})
	for i := 0; i < burst; i++ {
		go func(seed int64) {
			<-gate
			rng := rand.New(rand.NewSource(seed))
			dst := make([]complex128, p.Len())
			_, err := p.Forward(bg, dst, randomVec(rng, p.Len()))
			done <- err
		}(int64(i))
	}
	close(gate)
	for i := 0; i < burst; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	free, capacity := p.PooledContexts()
	if capacity != 2 || free > capacity {
		t.Fatalf("freelist retains %d contexts, cap is %d (want cap 2)", free, capacity)
	}
}
