// Package nd is the N-dimensional geometry engine: it plans a protected
// transform over an arbitrary row-major shape dims[0]×dims[1]×…×dims[k-1] as
// a sequence of 1-D axis passes, the direct generalization of the paper's
// row-column decomposition. Every 1-D line transform runs under the
// configured protection scheme, so the online ABFT property — errors are
// detected and repaired before the next pass consumes them — holds for any
// number of axes.
//
// Pass order is innermost axis first (the contiguous lines), then outward.
// The first pass reads the caller's src and writes dst; every later pass
// transforms dst in place, line by line, using the core engine's strided
// execution — no per-line gather/scatter copies. Non-contiguous passes are
// cache-blocked: the lines of one pass that are adjacent in memory are
// grouped into tiles whose working set fits the tile budget (≈ L2), so the
// cache lines fetched while walking one strided line are reused by the
// whole tile instead of evicted between lines.
//
// Passes dispatch as bounded-executor task groups (one task per tile), so
// N-D transforms share the process-wide worker budget with every other
// dispatch mechanism, and outputs are bit-identical regardless of that
// budget: lines are independent, and each line's arithmetic is fixed by the
// core engine.
package nd

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ftfft/internal/core"
	"ftfft/internal/exec"
)

// Config parameterizes a Plan beyond its shape.
type Config struct {
	// Core is the per-line protection configuration; one core transformer
	// of each distinct axis length is built per dispatch slot.
	Core core.Config
	// Workers is the dispatch width of each axis pass; ≤ 1 means serial.
	Workers int
	// Pool is the executor passes dispatch on; nil means exec.Default().
	Pool *exec.Pool
	// MaxPooled caps the per-call context freelist (0 means
	// DefaultMaxPooled): a burst of M concurrent calls never pins more than
	// MaxPooled workspaces once it drains.
	MaxPooled int
	// TileElems overrides the tile working-set target in complex128
	// elements (0 means DefaultTileElems). Tests use it to force multi-tile
	// schedules on small shapes; the autotuner sweeps TileLadder.
	TileElems int
}

// DefaultMaxPooled is the default per-call context freelist cap.
const DefaultMaxPooled = 4

// DefaultTileElems is the tile working-set target: 1<<12 complex128 = 64
// KiB, sized to sit comfortably inside L2 (and close to L1) so the cache
// lines of one tile survive all of a protected scheme's passes over its
// strided lines — the checksum sweeps re-read each line several times, and
// oversized tiles measurably lose that reuse. The value was picked by
// BenchmarkTileSize on one host; measured tuning sweeps the same TileLadder
// per shape instead of trusting this constant.
const DefaultTileElems = 1 << 12

// TileLadder returns the TileElems candidates the autotuner measures — the
// L1/L2-scaled ladder BenchmarkTileSize sweeps (32 KiB … 1 MiB working sets
// around the DefaultTileElems pick), shared so the benchmark, the default,
// and the tuner cannot drift apart.
func TileLadder() []int {
	return []int{1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 16}
}

// pass is one planned axis pass. Lines along axis a are indexed by
// (outer, t): the line's first element sits at outer·length·inner + t, and
// its elements are stride (= inner) apart. Lines with consecutive t are
// adjacent in memory; block of them form one cache tile.
type pass struct {
	length int // points per line (the axis size)
	lenIdx int // transformer index (per distinct axis length)
	stride int // element stride within a line; == inner
	outer  int // number of line groups
	inner  int // adjacent lines per group (1 for the contiguous axis)
	block  int // lines per tile, 1..inner
	tiles  int // tiles per group: ceil(inner/block)
}

// Plan executes protected N-D transforms of one fixed shape. Plans are safe
// for concurrent use: each in-flight call draws a pooled context holding the
// per-slot core transformers and scratch.
type Plan struct {
	dims    []int
	n       int
	workers int
	pool    *exec.Pool
	cfg     core.Config
	offline bool // Offline restarts re-read src: in-place passes must stage
	passes  []pass
	lens    []int // distinct axis lengths, parallel to slot.tr
	maxLen  int

	maxPooled int
	mu        sync.Mutex
	free      []*callCtx
}

// callCtx is one in-flight call's workspace: one slot per dispatch width.
type callCtx struct {
	slots []slot
}

// slot is one dispatch slot's private state: a core transformer per
// distinct axis length (transformers are not concurrency-safe) and a
// scratch line for inverse conjugation staging and offline in-place passes.
type slot struct {
	tr      []*core.Transformer
	scratch []complex128
}

// New plans a protected transform over the row-major shape dims.
func New(dims []int, cfg Config) (*Plan, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("nd: empty shape")
	}
	n := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("nd: invalid axis length %d", d)
		}
		if n > math.MaxInt/d {
			return nil, fmt.Errorf("nd: shape product overflows")
		}
		n *= d
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	pool := cfg.Pool
	if pool == nil {
		pool = exec.Default()
	}
	maxPooled := cfg.MaxPooled
	if maxPooled <= 0 {
		maxPooled = DefaultMaxPooled
	}
	tileElems := cfg.TileElems
	if tileElems <= 0 {
		tileElems = DefaultTileElems
	}
	p := &Plan{
		dims:      append([]int(nil), dims...),
		n:         n,
		workers:   workers,
		pool:      pool,
		cfg:       cfg.Core,
		offline:   cfg.Core.Scheme == core.Offline,
		maxPooled: maxPooled,
	}
	// Plan the passes innermost-axis-first. Length-1 axes are identity
	// transforms and are skipped entirely (the first executed pass copies
	// src into dst as a side effect of transforming every line).
	lenIdx := map[int]int{}
	inner := 1
	for a := len(dims) - 1; a >= 0; a-- {
		length := dims[a]
		if length == 1 {
			continue
		}
		li, seen := lenIdx[length]
		if !seen {
			li = len(p.lens)
			lenIdx[length] = li
			p.lens = append(p.lens, length)
			p.maxLen = max(p.maxLen, length)
		}
		p.passes = append(p.passes, pass{
			length: length,
			lenIdx: li,
			stride: inner,
			outer:  n / (length * inner),
			inner:  inner,
		})
		inner *= length
	}
	p.Retile(tileElems)
	// Build the first context eagerly: it validates every axis length
	// against the protection scheme and pre-warms the pool.
	cc, err := p.newCtx()
	if err != nil {
		return nil, err
	}
	p.free = append(p.free, cc)
	return p, nil
}

// Retile recomputes every pass's cache blocking for a new tile working-set
// target (≤ 0 means DefaultTileElems). Blocking only groups independent
// lines — it never changes any line's arithmetic — so outputs are
// bit-identical across tile sizes; the autotuner exploits that to sweep
// TileLadder on the finished plan at build time. Not safe to call
// concurrently with transforms.
func (p *Plan) Retile(tileElems int) {
	if tileElems <= 0 {
		tileElems = DefaultTileElems
	}
	for i := range p.passes {
		ps := &p.passes[i]
		block := max(1, tileElems/ps.length)
		block = min(block, ps.inner)
		ps.block = block
		ps.tiles = (ps.inner + block - 1) / block
	}
}

// Dims returns a copy of the planned shape.
func (p *Plan) Dims() []int { return append([]int(nil), p.dims...) }

// Len returns the total number of points per transform.
func (p *Plan) Len() int { return p.n }

// Workers returns the per-pass dispatch width.
func (p *Plan) Workers() int { return p.workers }

// PooledContexts reports how many idle call contexts the plan currently
// retains and the configured freelist cap the count never exceeds.
func (p *Plan) PooledContexts() (free, capacity int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free), p.maxPooled
}

func (p *Plan) newCtx() (*callCtx, error) {
	cc := &callCtx{slots: make([]slot, p.workers)}
	for s := range cc.slots {
		cc.slots[s].tr = make([]*core.Transformer, len(p.lens))
		for li, length := range p.lens {
			tr, err := core.New(length, p.cfg)
			if err != nil {
				return nil, fmt.Errorf("nd: axis length %d: %w", length, err)
			}
			cc.slots[s].tr[li] = tr
		}
		cc.slots[s].scratch = make([]complex128, p.maxLen)
	}
	return cc, nil
}

func (p *Plan) getCtx() (*callCtx, error) {
	p.mu.Lock()
	if k := len(p.free); k > 0 {
		cc := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		p.mu.Unlock()
		return cc, nil
	}
	p.mu.Unlock()
	return p.newCtx()
}

// putCtx returns a context to the pool. Core transformers rewrite all
// working state per call, so contexts are reusable even after a failed
// transform; overflow beyond the cap is dropped for the collector.
func (p *Plan) putCtx(cc *callCtx) {
	p.mu.Lock()
	if len(p.free) < p.maxPooled {
		p.free = append(p.free, cc)
	}
	p.mu.Unlock()
}

// Forward computes the forward N-D DFT of src into dst (both row-major of
// length Len(), non-overlapping; the caller validates that contract).
func (p *Plan) Forward(ctx context.Context, dst, src []complex128) (core.Report, error) {
	return p.apply(ctx, dst, src, false)
}

// Inverse computes the inverse N-D DFT with 1/Len() normalization, applying
// the conjugation identity per axis line so every pass stays protected.
func (p *Plan) Inverse(ctx context.Context, dst, src []complex128) (core.Report, error) {
	return p.apply(ctx, dst, src, true)
}

func (p *Plan) apply(ctx context.Context, dst, src []complex128, inverse bool) (core.Report, error) {
	dst = dst[:p.n]
	src = src[:p.n]
	cc, err := p.getCtx()
	if err != nil {
		return core.Report{}, err
	}
	var total core.Report
	in := src
	for pi := range p.passes {
		rep, err := p.runPass(ctx, cc, &p.passes[pi], dst, in, inverse)
		total.Add(rep)
		if err != nil {
			p.putCtx(cc)
			return total, err
		}
		in = dst
	}
	if len(p.passes) == 0 {
		// Every axis is degenerate: the N-D DFT is the identity.
		copy(dst, src)
	}
	p.putCtx(cc)
	return total, nil
}

// runPass executes one axis pass: a task group of cache tiles, at most
// p.workers concurrent, each tile walking its adjacent lines serially. The
// serial path (width 1) runs inline with no dispatch and no allocation —
// the steady state of serial N-D transforms.
func (p *Plan) runPass(ctx context.Context, cc *callCtx, ps *pass, dst, src []complex128, inverse bool) (core.Report, error) {
	tasks := ps.outer * ps.tiles
	width := min(p.workers, tasks)
	if width <= 1 {
		var total core.Report
		for task := 0; task < tasks; task++ {
			if err := ctx.Err(); err != nil {
				return total, err
			}
			rep, err := p.runTile(ctx, &cc.slots[0], ps, dst, src, inverse, task)
			total.Add(rep)
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	reps := make([]core.Report, width)
	err := p.pool.Run(ctx, tasks, width, func(ctx context.Context, slot, task int) error {
		rep, err := p.runTile(ctx, &cc.slots[slot], ps, dst, src, inverse, task)
		reps[slot].Add(rep)
		return err
	})
	var total core.Report
	for i := range reps {
		total.Add(reps[i])
	}
	return total, err
}

// runTile transforms the adjacent lines of one cache tile.
func (p *Plan) runTile(ctx context.Context, sl *slot, ps *pass, dst, src []complex128, inverse bool, task int) (core.Report, error) {
	tr := sl.tr[ps.lenIdx]
	o := task / ps.tiles
	t0 := (task % ps.tiles) * ps.block
	t1 := min(t0+ps.block, ps.inner)
	base := o*ps.length*ps.inner + t0
	var total core.Report
	for t := t0; t < t1; t++ {
		rep, err := p.line(ctx, sl, tr, ps, dst[base:], src[base:], inverse)
		total.Add(rep)
		if err != nil {
			return total, fmt.Errorf("nd: axis line (len %d, offset %d): %w", ps.length, base, err)
		}
		base++
	}
	return total, nil
}

// line runs one protected 1-D transform along an axis line. dl and sl are
// the line's views into the full arrays (first element at index 0, elements
// ps.stride apart); on every pass after the first they alias the same
// memory.
func (p *Plan) line(ctx context.Context, slt *slot, tr *core.Transformer, ps *pass, dl, sl []complex128, inverse bool) (core.Report, error) {
	length, stride := ps.length, ps.stride
	if inverse {
		// Conjugation identity per line: conj-gather into contiguous
		// scratch, transform scratch → strided dst, conj-and-scale in
		// place. Bit-identical to gathering the line and running the 1-D
		// inverse path, and — because the input is staged — alias-safe for
		// every scheme.
		scratch := slt.scratch[:length]
		for r := 0; r < length; r++ {
			v := sl[r*stride]
			scratch[r] = complex(real(v), -imag(v))
		}
		rep, err := tr.TransformStrided(ctx, dl, scratch, stride, 1)
		if err != nil {
			return rep, err
		}
		inv := complex(1/float64(length), 0)
		for r := 0; r < length; r++ {
			v := dl[r*stride]
			dl[r*stride] = complex(real(v), -imag(v)) * inv
		}
		return rep, nil
	}
	if p.offline && &dl[0] == &sl[0] {
		// The offline scheme's restart path re-reads its input after dst
		// was written, so an in-place line is staged through scratch first
		// (one gather, no scatter — stage 2 still writes dst directly).
		scratch := slt.scratch[:length]
		for r := 0; r < length; r++ {
			scratch[r] = sl[r*stride]
		}
		return tr.TransformStrided(ctx, dl, scratch, stride, 1)
	}
	return tr.TransformStrided(ctx, dl, sl, stride, stride)
}
