package nd

import (
	"testing"

	"ftfft/internal/core"
)

// BenchmarkTileSize probes the column-pass tile budget on a 512×512 grid:
// the protected schemes make several passes over each strided line, so the
// sweet spot is where one tile's cache lines survive all of them. The swept
// sizes are exactly TileLadder() — the candidates the autotuner measures and
// the set DefaultTileElems was picked from — plus the degenerate tile=1
// (per-line dispatch) as the no-blocking baseline.
func BenchmarkTileSize(b *testing.B) {
	const rows, cols = 512, 512
	for _, cfg := range []struct {
		name string
		core core.Config
	}{
		{"plain", core.Config{Scheme: core.Plain}},
		{"online-mem", core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true}},
	} {
		for _, tile := range append([]int{1}, TileLadder()...) {
			b.Run(cfg.name+"/"+itoa(tile), func(b *testing.B) {
				p, err := New([]int{rows, cols}, Config{Core: cfg.core, TileElems: tile})
				if err != nil {
					b.Fatal(err)
				}
				src := make([]complex128, rows*cols)
				for i := range src {
					src[i] = complex(float64(i%17)-8, float64(i%13)-6)
				}
				dst := make([]complex128, rows*cols)
				b.SetBytes(int64(16 * rows * cols))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.Forward(bg, dst, src); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
