// Package checksum implements the checksum algebra the ABFT schemes are
// built on (paper §2.2, §3.2, §4.1, §4.3):
//
//   - the computational checksum vector r = (ω₃⁰, ω₃¹, …, ω₃^{N-1}) with
//     ω₃ = -1/2 + (√3/2)i, shown by Wang & Jha to be a valid ABFT encoding
//     for FFT;
//   - the closed-form input checksum vector rA, (rA)_j = (1-ω₃^N)/(1-ω₃ω_N^j),
//     which replaces per-element trigonometric evaluation (§7.1.1);
//   - one-pass weighted checksum pairs (d₁, d₂) = (Σ wⱼxⱼ, Σ j·wⱼxⱼ) used as
//     the modified memory checksums r′₁ = rA and (r′₂)ⱼ = j·(rA)ⱼ (§4.1);
//   - single-error location and correction from checksum differences;
//   - incremental (scatter-accumulated) checksum generation for the second
//     ABFT layer (§4.3).
//
// All strided variants exist because the decomposed sub-FFT inputs are
// non-contiguous (§4.4).
package checksum

import (
	"math"
	"math/cmplx"
)

// Omega3 returns ω₃^k, the powers of the first cube root of unity
// ω₃ = -1/2 + (√3/2)i chosen by the paper.
func Omega3(k int) complex128 {
	k %= 3
	if k < 0 {
		k += 3
	}
	switch k {
	case 0:
		return 1
	case 1:
		return omega3
	default:
		return omega3sq
	}
}

var (
	omega3   = complex(-0.5, math.Sqrt(3)/2)
	omega3sq = complex(-0.5, -math.Sqrt(3)/2)
)

// Weights returns the computational checksum vector r of length n:
// r_j = ω₃^j.
func Weights(n int) []complex128 {
	w := make([]complex128, n)
	for j := 0; j < n; j++ {
		w[j] = Omega3(j)
	}
	return w
}

// CheckVector returns the input checksum vector rA for an n-point forward
// DFT (A_{jt} = ω_n^{jt}, ω_n = exp(-2πi/n)) in closed form:
//
//	(rA)_j = Σ_t (ω₃·ω_n^j)^t = (1 - ω₃^n) / (1 - ω₃·ω_n^j)
//
// This is the paper's optimized 27N-operation path (§7.1.1): the
// trigonometric functions are replaced by incremental complex
// multiplications, re-synchronized from Sincos every resyncStep elements to
// bound phase drift at ~resyncStep·ε.
func CheckVector(n int) []complex128 {
	return checkVectorSigned(n, -1, false)
}

// CheckVectorTrig is the naive evaluation of the same closed form with one
// trigonometric call per element — the expensive path the un-optimized
// offline scheme pays for (Fig. 7's first bar vs second bar).
func CheckVectorTrig(n int) []complex128 {
	return checkVectorSigned(n, -1, true)
}

// CheckVectorInverse is CheckVector for the unscaled inverse kernel
// A_{jt} = ω_n^{-jt}.
func CheckVectorInverse(n int) []complex128 {
	return checkVectorSigned(n, +1, false)
}

// resyncStep bounds the incremental rotation drift: |error| ≲ resyncStep·ε.
const resyncStep = 64

// degenerateGuard: below this |1-q| the weight is large and ill-conditioned
// (error amplified by 1/|den|²), so q is recomputed trigonometrically for
// that element. This keeps the optimized path's accuracy at the trig path's
// level exactly where it matters for detection thresholds.
const degenerateGuard = 0.05

func checkVectorSigned(n, sign int, trig bool) []complex128 {
	out := make([]complex128, n)
	num := 1 - Omega3(n)
	step := unit(sign, 1, n) // ω_n^{sign}
	var q complex128
	for j := 0; j < n; j++ {
		if trig || j%resyncStep == 0 {
			q = omega3 * unit(sign, j, n)
		} else {
			q *= step
		}
		den := 1 - q
		if a := cmplx.Abs(den); a < degenerateGuard {
			q = omega3 * unit(sign, j, n)
			den = 1 - q
			if cmplx.Abs(den) < 1e-9 {
				// Degenerate geometric ratio q == 1: the sum is exactly
				// n. Only possible when 3 | n.
				out[j] = complex(float64(n), 0)
				continue
			}
		}
		out[j] = num / den
	}
	return out
}

// unit returns exp(sign·2πi·k/n) with k reduced to the symmetric range.
func unit(sign, k, n int) complex128 {
	k %= n
	if 2*k > n {
		k -= n
	} else if 2*k <= -n {
		k += n
	}
	ang := float64(sign) * 2 * math.Pi * float64(k) / float64(n)
	s, c := math.Sincos(ang)
	return complex(c, s)
}

// Dot returns Σ w_j·x_j. len(w) must be ≥ len(x).
func Dot(w, x []complex128) complex128 {
	var sum complex128
	for j, v := range x {
		sum += w[j] * v
	}
	return sum
}

// DotStrided returns Σ_{j<n} w_j·x[j·stride].
func DotStrided(w, x []complex128, n, stride int) complex128 {
	var sum complex128
	for j := 0; j < n; j++ {
		sum += w[j] * x[j*stride]
	}
	return sum
}

// DotOmega3 returns Σ ω₃^j·x_j using the merged-factor evaluation the paper
// credits for reducing CCV to two complex multiplications (§7.1.1): bucket
// the elements by j mod 3, then rX = S₀ + ω₃·S₁ + ω₃²·S₂.
func DotOmega3(x []complex128) complex128 {
	var s0, s1, s2 complex128
	j := 0
	n := len(x)
	for ; j+3 <= n; j += 3 {
		s0 += x[j]
		s1 += x[j+1]
		s2 += x[j+2]
	}
	switch n - j {
	case 2:
		s1 += x[j+1]
		fallthrough
	case 1:
		s0 += x[j]
	}
	return s0 + omega3*s1 + omega3sq*s2
}

// DotOmega3Strided is DotOmega3 over x[0], x[stride], ..., x[(n-1)*stride].
func DotOmega3Strided(x []complex128, n, stride int) complex128 {
	var s0, s1, s2 complex128
	idx := 0
	for j := 0; j < n; j++ {
		switch j % 3 {
		case 0:
			s0 += x[idx]
		case 1:
			s1 += x[idx]
		default:
			s2 += x[idx]
		}
		idx += stride
	}
	return s0 + omega3*s1 + omega3sq*s2
}

// Pair is a weighted checksum pair protecting a block against a single
// corrupted element: D1 = Σ wⱼxⱼ locates nothing by itself but detects, and
// D2 = Σ j·wⱼxⱼ divides against D1 to locate (§3.2 with the §4.1 weights).
type Pair struct {
	D1 complex128
	D2 complex128
}

// GeneratePair computes the checksum pair of x under weights w in one pass.
func GeneratePair(w, x []complex128) Pair {
	var d1, d2 complex128
	for j, v := range x {
		t := w[j] * v
		d1 += t
		d2 += complex(float64(j), 0) * t
	}
	return Pair{d1, d2}
}

// GeneratePairStrided computes the pair over x[0], x[stride], ….
func GeneratePairStrided(w, x []complex128, n, stride int) Pair {
	var d1, d2 complex128
	idx := 0
	for j := 0; j < n; j++ {
		t := w[j] * x[idx]
		d1 += t
		d2 += complex(float64(j), 0) * t
		idx += stride
	}
	return Pair{d1, d2}
}

// Sub returns the component-wise difference p - q.
func (p Pair) Sub(q Pair) Pair { return Pair{p.D1 - q.D1, p.D2 - q.D2} }

// Locate recovers the index of a single corrupted element from the checksum
// differences d = stored - recomputed: j = Re(d.D2/d.D1) rounded to the
// nearest integer. ok is false when d.D1 is too small to divide by (no
// detectable corruption) or when the quotient is not close to a real
// integer in [0, n) — the "wrong indexing" failure mode of Table 6.
func Locate(d Pair, n int) (j int, ok bool) {
	if cmplx.Abs(d.D1) == 0 {
		return 0, false
	}
	q := d.D2 / d.D1
	jf := real(q)
	j = int(math.Round(jf))
	if j < 0 || j >= n {
		return j, false
	}
	// The imaginary part and the rounding residue are pure round-off when a
	// genuine single error is present; reject gross inconsistency.
	if math.Abs(imag(q)) > 0.45 || math.Abs(jf-float64(j)) > 0.45 {
		return j, false
	}
	return j, true
}

// CorrectSingle verifies block x (contiguous) against the stored pair and, on
// mismatch, locates and repairs a single corrupted element in place.
// It returns the corrected index, whether a correction was applied, and
// whether the block now verifies. tol bounds |ΔD1| treated as round-off.
func CorrectSingle(w, x []complex128, stored Pair, tol float64) (idx int, corrected, ok bool) {
	cur := GeneratePair(w, x)
	d := stored.Sub(cur)
	if cmplx.Abs(d.D1) <= tol {
		return 0, false, true
	}
	j, located := Locate(d, len(x))
	if !located {
		return j, false, false
	}
	// Correction: Δx_j = ΔD1 / w_j.
	x[j] += d.D1 / w[j]
	// Verify the repair.
	cur = GeneratePair(w, x)
	d = stored.Sub(cur)
	return j, true, cmplx.Abs(d.D1) <= tol
}

// CorrectSingleStrided is CorrectSingle over a strided block.
func CorrectSingleStrided(w, x []complex128, n, stride int, stored Pair, tol float64) (idx int, corrected, ok bool) {
	cur := GeneratePairStrided(w, x, n, stride)
	d := stored.Sub(cur)
	if cmplx.Abs(d.D1) <= tol {
		return 0, false, true
	}
	j, located := Locate(d, n)
	if !located {
		return j, false, false
	}
	x[j*stride] += d.D1 / w[j]
	cur = GeneratePairStrided(w, x, n, stride)
	d = stored.Sub(cur)
	return j, true, cmplx.Abs(d.D1) <= tol
}

// Accumulator builds the second-layer input checksums incrementally (§4.3):
// the two-layer intermediate is a k×m matrix whose column j feeds the j-th
// k-point FFT; as each verified m-point FFT output row lands, AddRow folds it
// into every column's pair, so the intermediate is never re-read with stride
// for checksum generation.
type Accumulator struct {
	w   []complex128 // weights indexed by row (position within a column)
	cs1 []complex128 // one D1 slot per column
	cs2 []complex128 // one D2 slot per column
}

// NewAccumulator creates an accumulator for cols columns whose column entries
// are weighted by w (len(w) = number of rows).
func NewAccumulator(w []complex128, cols int) *Accumulator {
	return &Accumulator{
		w:   w,
		cs1: make([]complex128, cols),
		cs2: make([]complex128, cols),
	}
}

// AddRow folds row index i (length = cols) into all column checksums.
func (a *Accumulator) AddRow(i int, row []complex128) {
	wi := a.w[i]
	iwi := complex(float64(i), 0) * wi
	for j, v := range row {
		a.cs1[j] += wi * v
		a.cs2[j] += iwi * v
	}
}

// Column returns the accumulated pair for column j.
func (a *Accumulator) Column(j int) Pair { return Pair{a.cs1[j], a.cs2[j]} }

// Reset zeroes all column checksums for reuse.
func (a *Accumulator) Reset() {
	for j := range a.cs1 {
		a.cs1[j] = 0
		a.cs2[j] = 0
	}
}
