package checksum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"ftfft/internal/dft"
	"ftfft/internal/fft"
)

func randomVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestOmega3Algebra(t *testing.T) {
	w := Omega3(1)
	if cmplx.Abs(w*w*w-1) > 1e-15 {
		t.Fatalf("ω₃³ != 1: %v", w*w*w)
	}
	if cmplx.Abs(1+w+w*w) > 1e-15 {
		t.Fatalf("1+ω₃+ω₃² != 0: %v", 1+w+w*w)
	}
	for k := -6; k <= 6; k++ {
		want := cmplx.Pow(w, complex(float64(((k%3)+3)%3), 0))
		if cmplx.Abs(Omega3(k)-want) > 1e-14 {
			t.Fatalf("Omega3(%d) = %v, want %v", k, Omega3(k), want)
		}
	}
}

func TestCheckVectorMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8, 9, 12, 16, 27, 64, 128} {
		closed := CheckVector(n)
		naive := dft.CheckVectorNaive(n)
		for j := 0; j < n; j++ {
			if cmplx.Abs(closed[j]-naive[j]) > 1e-9*float64(n) {
				t.Fatalf("n=%d j=%d: closed %v naive %v", n, j, closed[j], naive[j])
			}
		}
	}
}

func TestCheckVectorTrigMatchesIncremental(t *testing.T) {
	// The incremental (optimized) path must agree with the per-element
	// trigonometric path to near machine precision even past resyncStep.
	for _, n := range []int{1 << 10, 1 << 14, 3000} {
		a := CheckVector(n)
		b := CheckVectorTrig(n)
		for j := 0; j < n; j++ {
			if cmplx.Abs(a[j]-b[j]) > 1e-10 {
				t.Fatalf("n=%d j=%d: incremental %v trig %v", n, j, a[j], b[j])
			}
		}
	}
}

func TestCheckVectorDegenerateDenominator(t *testing.T) {
	// When 3 | n there is a j with ω₃·ω_n^j == 1; the sum must be exactly n.
	for _, n := range []int{3, 6, 9, 12, 24} {
		closed := CheckVector(n)
		naive := dft.CheckVectorNaive(n)
		found := false
		for j := 0; j < n; j++ {
			if cmplx.Abs(closed[j]-complex(float64(n), 0)) < 1e-9*float64(n) {
				found = true
			}
			if cmplx.Abs(closed[j]-naive[j]) > 1e-9*float64(n) {
				t.Fatalf("n=%d j=%d mismatch: %v vs %v", n, j, closed[j], naive[j])
			}
		}
		if !found {
			t.Fatalf("n=%d: expected one degenerate entry equal to n", n)
		}
	}
}

// TestChecksumIdentity is the load-bearing ABFT identity: r·(Ax) = (rA)·x.
func TestChecksumIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 243, 256} {
		x := randomVec(rng, n)
		X := dft.Transform(x)
		lhs := DotOmega3(X)           // r·X
		rhs := Dot(CheckVector(n), x) // (rA)·x
		scale := 1 + cmplx.Abs(lhs)
		if cmplx.Abs(lhs-rhs) > 1e-8*float64(n)*scale {
			t.Fatalf("n=%d: r·X=%v (rA)·x=%v", n, lhs, rhs)
		}
	}
}

func TestChecksumIdentityInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 16, 64} {
		x := randomVec(rng, n)
		p := fft.MustPlan(n, fft.Inverse)
		X := make([]complex128, n)
		p.Execute(X, x)
		lhs := DotOmega3(X)
		rhs := Dot(CheckVectorInverse(n), x)
		if cmplx.Abs(lhs-rhs) > 1e-8*float64(n)*(1+cmplx.Abs(lhs)) {
			t.Fatalf("n=%d inverse identity: %v vs %v", n, lhs, rhs)
		}
	}
}

func TestChecksumDetectsCorruptedOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	x := randomVec(rng, n)
	X := dft.Transform(x)
	in := Dot(CheckVector(n), x)
	// Uncorrupted: matches.
	if cmplx.Abs(DotOmega3(X)-in) > 1e-7*float64(n) {
		t.Fatal("clean output should verify")
	}
	// Corrupt any single element: must not match.
	for _, j := range []int{0, 1, 63, 127} {
		bad := append([]complex128(nil), X...)
		bad[j] += 1e-3
		if cmplx.Abs(DotOmega3(bad)-in) < 1e-4 {
			t.Fatalf("corruption at %d went undetected", j)
		}
	}
}

func TestDotOmega3MatchesDot(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x := randomVec(rng, n)
		w := Weights(n)
		return cmplx.Abs(DotOmega3(x)-Dot(w, x)) <= 1e-10*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDotOmega3StridedMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := randomVec(rng, 600)
	for _, c := range []struct{ n, stride int }{{10, 3}, {100, 6}, {1, 5}, {7, 85}} {
		gathered := make([]complex128, c.n)
		for i := range gathered {
			gathered[i] = base[i*c.stride]
		}
		a := DotOmega3Strided(base, c.n, c.stride)
		b := DotOmega3(gathered)
		if cmplx.Abs(a-b) > 1e-11*float64(c.n) {
			t.Fatalf("n=%d stride=%d: %v vs %v", c.n, c.stride, a, b)
		}
	}
}

func TestDotStridedMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomVec(rng, 512)
	w := Weights(64)
	gathered := make([]complex128, 64)
	for i := range gathered {
		gathered[i] = base[i*8]
	}
	if d := cmplx.Abs(DotStrided(w, base, 64, 8) - Dot(w, gathered)); d > 1e-11 {
		t.Fatalf("strided dot mismatch: %g", d)
	}
}

func TestLocateAndCorrectProperty(t *testing.T) {
	// For any single corruption the pair must locate and correct exactly.
	// n divisible by 3 is excluded: there the numerator 1-ω₃^n vanishes and
	// rA is zero almost everywhere, so it cannot serve as a weight vector.
	// The paper's FFT sizes are powers of two, where this never happens.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		for n%3 == 0 {
			n++
		}
		w := CheckVector(n) // realistic weights: the modified checksums use rA
		x := randomVec(rng, n)
		stored := GeneratePair(w, x)
		j := rng.Intn(n)
		delta := complex(rng.NormFloat64()*10, rng.NormFloat64()*10)
		if cmplx.Abs(delta) < 1e-3 {
			delta += 1
		}
		x[j] += delta
		idx, corrected, ok := CorrectSingle(w, x, stored, 1e-9*float64(n))
		if !ok || !corrected || idx != j {
			return false
		}
		// Value must be restored to round-off.
		cur := GeneratePair(w, x)
		return cmplx.Abs(stored.D1-cur.D1) <= 1e-8*float64(n)*(1+cmplx.Abs(stored.D1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectSingleNoError(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 64
	w := CheckVector(n)
	x := randomVec(rng, n)
	stored := GeneratePair(w, x)
	idx, corrected, ok := CorrectSingle(w, x, stored, 1e-10*float64(n))
	if corrected || !ok {
		t.Fatalf("clean block mis-handled: idx=%d corrected=%v ok=%v", idx, corrected, ok)
	}
}

func TestCorrectSingleStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, stride := 32, 5
	base := randomVec(rng, n*stride)
	w := CheckVector(n)
	stored := GeneratePairStrided(w, base, n, stride)
	j := 11
	orig := base[j*stride]
	base[j*stride] = 42
	idx, corrected, ok := CorrectSingleStrided(w, base, n, stride, stored, 1e-10*float64(n))
	if !ok || !corrected || idx != j {
		t.Fatalf("strided correction failed: idx=%d corrected=%v ok=%v", idx, corrected, ok)
	}
	if cmplx.Abs(base[j*stride]-orig) > 1e-9 {
		t.Fatalf("value not restored: %v vs %v", base[j*stride], orig)
	}
}

func TestLocateRejectsGarbage(t *testing.T) {
	// Two simultaneous corruptions generally produce an inconsistent
	// quotient; Locate must not confidently return a wrong index for a
	// quotient with a large imaginary part.
	d := Pair{complex(1, 0), complex(3.2, 2.9)}
	if _, ok := Locate(d, 10); ok {
		t.Fatal("accepted a quotient with large imaginary part")
	}
	if _, ok := Locate(Pair{0, 1}, 10); ok {
		t.Fatal("accepted zero D1")
	}
	if _, ok := Locate(Pair{1, complex(20, 0)}, 10); ok {
		t.Fatal("accepted out-of-range index")
	}
}

func TestAccumulatorMatchesDirectPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows, cols := 16, 24
	w := CheckVector(rows)
	mat := make([][]complex128, rows)
	for i := range mat {
		mat[i] = randomVec(rng, cols)
	}
	acc := NewAccumulator(w, cols)
	for i, row := range mat {
		acc.AddRow(i, row)
	}
	for j := 0; j < cols; j++ {
		col := make([]complex128, rows)
		for i := 0; i < rows; i++ {
			col[i] = mat[i][j]
		}
		want := GeneratePair(w, col)
		got := acc.Column(j)
		if cmplx.Abs(got.D1-want.D1) > 1e-10*float64(rows) ||
			cmplx.Abs(got.D2-want.D2) > 1e-9*float64(rows*rows) {
			t.Fatalf("column %d: got %+v want %+v", j, got, want)
		}
	}
	acc.Reset()
	for j := 0; j < cols; j++ {
		if p := acc.Column(j); p.D1 != 0 || p.D2 != 0 {
			t.Fatalf("Reset left column %d non-zero", j)
		}
	}
}

func TestAccumulatorDetectsIntermediateCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows, cols := 8, 8
	w := CheckVector(rows)
	mat := make([][]complex128, rows)
	acc := NewAccumulator(w, cols)
	for i := range mat {
		mat[i] = randomVec(rng, cols)
		acc.AddRow(i, mat[i])
	}
	// Corrupt one matrix cell after accumulation ("memory fault between
	// the first part and the second part").
	ci, cj := 3, 5
	mat[ci][cj] += 7
	col := make([]complex128, rows)
	for i := 0; i < rows; i++ {
		col[i] = mat[i][cj]
	}
	idx, corrected, ok := CorrectSingle(w, col, acc.Column(cj), 1e-9)
	if !ok || !corrected || idx != ci {
		t.Fatalf("accumulated checksum failed to repair: idx=%d corrected=%v ok=%v", idx, corrected, ok)
	}
}

func TestWeightsLength(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		if got := len(Weights(n)); got != n {
			t.Fatalf("Weights(%d) length %d", n, got)
		}
	}
}

func TestGeneratePairMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 40
	w := CheckVector(n)
	x := randomVec(rng, n)
	p := GeneratePair(w, x)
	var d1, d2 complex128
	for j := n - 1; j >= 0; j-- { // reverse order: different summation order
		d1 += w[j] * x[j]
		d2 += complex(float64(j), 0) * w[j] * x[j]
	}
	if cmplx.Abs(p.D1-d1) > 1e-10*float64(n) || cmplx.Abs(p.D2-d2) > 1e-9*float64(n*n) {
		t.Fatalf("pair mismatch: %+v vs (%v,%v)", p, d1, d2)
	}
}

func TestLocatePrecisionNearBoundary(t *testing.T) {
	// Single error at the first and last index must locate exactly.
	rng := rand.New(rand.NewSource(11))
	n := 100
	w := CheckVector(n)
	for _, j := range []int{0, n - 1} {
		x := randomVec(rng, n)
		stored := GeneratePair(w, x)
		x[j] += 5
		d := stored.Sub(GeneratePair(w, x))
		got, ok := Locate(d, n)
		if !ok || got != j {
			t.Fatalf("boundary locate failed for j=%d: got %d ok=%v", j, got, ok)
		}
	}
	_ = math.Pi
}
