package core

import (
	"fmt"
	"math"
)

// Split factors n into m·k with m ≥ k > 1, both as close to √n as possible —
// the "highest level of decomposition" the online scheme is built on (§3.1).
// It fails for n < 4 and for prime n, where no two-layer decomposition
// exists (the offline scheme still applies there).
func Split(n int) (m, k int, err error) {
	if n < 4 {
		return 0, 0, fmt.Errorf("core: size %d too small for a two-layer decomposition", n)
	}
	root := int(math.Sqrt(float64(n)))
	for d := root; d >= 2; d-- {
		if n%d == 0 {
			return n / d, d, nil
		}
	}
	return 0, 0, fmt.Errorf("core: size %d is prime; the online scheme needs a composite size", n)
}

// twiddleTable builds the k×m inter-layer twiddle table for n = m·k:
// entry i·m+j holds ω_n^{i·j} for i ∈ [0,k), j ∈ [0,m). Rows are generated
// by incremental rotation with periodic trigonometric resynchronization.
func twiddleTable(n, m, k int) []complex128 {
	tab := make([]complex128, k*m)
	for i := 0; i < k; i++ {
		row := tab[i*m : (i+1)*m]
		step := omegaN(n, i)
		w := complex(1, 0)
		for j := 0; j < m; j++ {
			if j%64 == 0 {
				w = omegaN(n, i*j)
			}
			row[j] = w
			w *= step
		}
	}
	return tab
}

// omegaN returns ω_n^k = exp(-2πik/n) with symmetric argument reduction.
func omegaN(n, k int) complex128 {
	k %= n
	if 2*k > n {
		k -= n
	} else if 2*k <= -n {
		k += n
	}
	ang := -2 * math.Pi * float64(k) / float64(n)
	s, c := math.Sincos(ang)
	return complex(c, s)
}
