package core

import (
	"ftfft/internal/checksum"
	"ftfft/internal/fault"
)

// onlineComp implements Algorithm 2 — the online two-layer ABFT scheme with
// computational fault tolerance only. Every m-point and k-point sub-FFT is
// verified the moment it completes, and a mismatch triggers an immediate
// recomputation of just that sub-FFT (O(√N·log√N) instead of a full
// restart). The twiddle multiplication is protected by DMR.
//
// The Naive variant is the strawman of the paper's introduction: it applies
// the offline recipe to each decomposed sub-FFT independently, so it
// re-derives the checksum vector trigonometrically for every sub-FFT call,
// reads the non-contiguous inputs twice (once for the checksum, once for the
// transform) without gathering, and runs the twiddle stage as a separate
// row-wise pass. The Optimized variant computes each checksum vector once
// (under DMR), gathers sub-inputs into contiguous buffers (§4.4), and fuses
// the twiddle multiplication into the column gather.
func (t *Transformer) onlineComp(dst, src []complex128, th Thresholds) (Report, error) {
	var rep Report
	naive := t.cfg.Variant == Naive
	m, k := t.m, t.k
	ds, ss := t.ds, t.ss
	inj := t.cfg.Injector

	// Memory sites are visited even though this scheme does not check them
	// (§3.1 protects computation only; §3.2 adds the memory checks).
	fault.Visit(inj, fault.SiteInputMemory, 0, src, t.n, ss)

	// ---- Stage 1: k m-point sub-FFTs over stride-k sub-vectors ----
	var cm []complex128
	if !naive {
		cm = t.dmrCheckVector(m, &rep)
	}
	for i := 0; i < k; i++ {
		if err := t.canceled(); err != nil {
			return rep, err
		}
		row := t.work[i*m : (i+1)*m]
		var cx complex128
		if naive {
			// Re-derived per call; strided double read of the input.
			cm = checksum.CheckVectorTrig(m)
			cx = checksum.DotStrided(cm, src[i*ss:], m, k*ss)
		} else {
			gather(t.bufA[:m], src[i*ss:], m, k*ss)
			cx = checksum.Dot(cm, t.bufA[:m])
		}
		ok := false
		for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
			if naive {
				t.planM.ExecuteStrided(row, src[i*ss:], k*ss)
			} else {
				t.planM.Execute(row, t.bufA[:m])
			}
			fault.Visit(inj, fault.SiteSubFFT1, 0, row, m, 1)
			if ccvPass(checksum.DotOmega3(row), cx, th.Eta1, m) {
				ok = true
				break
			}
			rep.Detections++
			rep.CompRecomputations++
		}
		if !ok {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
	}

	fault.Visit(inj, fault.SiteIntermediateMemory, 0, t.work, t.n, 1)

	// ---- Twiddle multiplication (DMR) + Stage 2: m k-point sub-FFTs ----
	var ck []complex128
	if naive {
		// Separate row-wise twiddle pass over the whole intermediate.
		for i := 0; i < k; i++ {
			row := t.work[i*m : (i+1)*m]
			t.dmrTwiddle(t.bufB[:m], row, t.twiddle[i*m:], 1, &rep)
			copy(row, t.bufB[:m])
		}
	} else {
		ck = t.dmrCheckVector(k, &rep)
	}

	for j := 0; j < m; j++ {
		if err := t.canceled(); err != nil {
			return rep, err
		}
		var cx2 complex128
		var in []complex128 // the verified post-twiddle sub-input
		if naive {
			ck = checksum.CheckVectorTrig(k)
			cx2 = checksum.DotStrided(ck, t.work[j:], k, m)
			in = nil
		} else {
			gather(t.bufA[:k], t.work[j:], k, m)
			t.dmrTwiddle(t.bufB[:k], t.bufA[:k], t.twiddle[j:], m, &rep)
			cx2 = checksum.Dot(ck, t.bufB[:k])
			in = t.bufB[:k]
		}
		ok := false
		for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
			if naive {
				t.planK.ExecuteStrided(t.bufC[:k], t.work[j:], m)
			} else {
				t.planK.Execute(t.bufC[:k], in)
			}
			fault.Visit(inj, fault.SiteSubFFT2, 0, t.bufC[:k], k, 1)
			if ccvPass(checksum.DotOmega3(t.bufC[:k]), cx2, th.Eta2, k) {
				ok = true
				break
			}
			rep.Detections++
			rep.CompRecomputations++
		}
		if !ok {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
		scatter(dst[j*ds:], t.bufC[:k], k, m*ds)
	}
	fault.Visit(inj, fault.SiteOutputMemory, 0, dst, t.n, ds)
	return rep, nil
}
