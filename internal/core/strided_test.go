package core

import (
	"context"
	"math/rand"
	"testing"
)

// stridedConfigs enumerates every scheme × variant × memory-protection
// combination the Transformer implements.
var stridedConfigs = []struct {
	name string
	cfg  Config
}{
	{"plain", Config{Scheme: Plain}},
	{"offline-naive", Config{Scheme: Offline, Variant: Naive}},
	{"offline-opt", Config{Scheme: Offline, Variant: Optimized}},
	{"offline-naive-mem", Config{Scheme: Offline, Variant: Naive, MemoryFT: true}},
	{"offline-opt-mem", Config{Scheme: Offline, Variant: Optimized, MemoryFT: true}},
	{"online-naive", Config{Scheme: Online, Variant: Naive}},
	{"online-opt", Config{Scheme: Online, Variant: Optimized}},
	{"online-naive-mem", Config{Scheme: Online, Variant: Naive, MemoryFT: true}},
	{"online-opt-mem", Config{Scheme: Online, Variant: Optimized, MemoryFT: true}},
}

// embed scatters the logical vector x into a fresh array of stride s, with
// deterministic garbage in the gaps so any accidental read of a non-line
// element corrupts the result visibly.
func embed(x []complex128, s int) []complex128 {
	buf := make([]complex128, (len(x)-1)*s+1)
	for i := range buf {
		buf[i] = complex(1e6+float64(i), -1e6)
	}
	for j, v := range x {
		buf[j*s] = v
	}
	return buf
}

// TestTransformStridedBitIdentical is the contract the N-D axis passes are
// built on: for every scheme, transforming a strided line must produce
// bit-identical results to gathering the line, transforming contiguously,
// and scattering the output — including the derived detection thresholds.
func TestTransformStridedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{36, 64, 100} {
		x := randomVec(rng, n)
		for _, tc := range stridedConfigs {
			ref, err := New(n, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]complex128, n)
			if rep, err := ref.Transform(want, append([]complex128(nil), x...)); err != nil || !rep.Clean() {
				t.Fatalf("n=%d %s: contiguous: err=%v rep=%+v", n, tc.name, err, rep)
			}
			for _, strides := range [][2]int{{1, 1}, {3, 1}, {1, 4}, {2, 3}} {
				ds, ss := strides[0], strides[1]
				tr, err := New(n, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				src := embed(x, ss)
				dst := make([]complex128, (n-1)*ds+1)
				rep, err := tr.TransformStrided(context.Background(), dst, src, ds, ss)
				if err != nil || !rep.Clean() {
					t.Fatalf("n=%d %s ds=%d ss=%d: err=%v rep=%+v", n, tc.name, ds, ss, err, rep)
				}
				for j := 0; j < n; j++ {
					if dst[j*ds] != want[j] {
						t.Fatalf("n=%d %s ds=%d ss=%d: element %d differs: %v vs %v",
							n, tc.name, ds, ss, j, dst[j*ds], want[j])
					}
				}
			}
		}
	}
}

// TestTransformStridedInPlaceLine covers the aliased form the in-place axis
// passes of an N-D transform use: dst and src are the same strided line.
// Every scheme except Offline must support it (Offline's restart re-reads
// the input, so N-D offline passes stage aliased lines first).
func TestTransformStridedInPlaceLine(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const n, s = 64, 5
	x := randomVec(rng, n)
	for _, tc := range stridedConfigs {
		if tc.cfg.Scheme == Offline {
			continue
		}
		ref, err := New(n, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, n)
		if _, err := ref.Transform(want, append([]complex128(nil), x...)); err != nil {
			t.Fatal(err)
		}
		tr, err := New(n, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		line := embed(x, s)
		rep, err := tr.TransformStrided(context.Background(), line, line, s, s)
		if err != nil || !rep.Clean() {
			t.Fatalf("%s: in-place line: err=%v rep=%+v", tc.name, err, rep)
		}
		for j := 0; j < n; j++ {
			if line[j*s] != want[j] {
				t.Fatalf("%s: in-place element %d differs: %v vs %v", tc.name, j, line[j*s], want[j])
			}
		}
	}
}

// TestTransformStridedValidation pins the strided entry point's argument
// audit.
func TestTransformStridedValidation(t *testing.T) {
	tr, err := New(16, Config{Scheme: Plain})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]complex128, 64)
	ctx := context.Background()
	if _, err := tr.TransformStrided(ctx, buf, buf, 0, 1); err == nil {
		t.Error("zero dst stride accepted")
	}
	if _, err := tr.TransformStrided(ctx, buf, buf, 1, -2); err == nil {
		t.Error("negative src stride accepted")
	}
	if _, err := tr.TransformStrided(ctx, make([]complex128, 16), buf, 4, 1); err == nil {
		t.Error("short strided dst accepted")
	}
	if _, err := tr.TransformStrided(ctx, buf, make([]complex128, 16), 1, 4); err == nil {
		t.Error("short strided src accepted")
	}
}
