package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ftfft/internal/checksum"
	"ftfft/internal/fault"
	"ftfft/internal/fft"
	"ftfft/internal/roundoff"
)

// ErrUncorrectable is returned when a transform exhausted its retry budget
// without producing a verified result; the output must not be trusted.
var ErrUncorrectable = errors.New("core: fault could not be corrected within the retry budget")

// Transformer executes protected (or plain) forward FFTs of a fixed size.
// It owns all working storage, so a Transformer is NOT safe for concurrent
// use; create one per goroutine. The FFT plans and twiddle tables are built
// once here ("plan time", as FFTW does), while checksum vectors are computed
// inside Transform — they are part of the fault-tolerance overhead the paper
// measures.
type Transformer struct {
	n, m, k int
	cfg     Config

	planM *fft.Plan
	planK *fft.Plan

	// twiddle[i*m+j] = ω_n^{i·j}: the inter-layer twiddle table.
	twiddle []complex128

	// work is the k×m row-major intermediate (W).
	work []complex128
	// bufA/bufB/bufC are gather / twiddled-input / sub-FFT-output buffers
	// of length max(m, k).
	bufA, bufB, bufC []complex128

	// Per-sub-FFT checksum pair storage, reused across calls.
	inPairs  []checksum.Pair // k entries (stage-1 sub-inputs)
	rowPairs []checksum.Pair // k entries (intermediate rows, Fig. 2)
	colPairs []checksum.Pair // m entries (intermediate columns)
	outPairs []checksum.Pair // m entries (output column groups, Fig. 2)

	// ctx is the in-flight TransformContext's cancellation context, checked
	// at sub-FFT boundaries; nil between calls.
	ctx context.Context

	// ds/ss are the in-flight call's dst and src element strides (1 for the
	// contiguous entry points). Like ctx they are call-scoped state: every
	// scheme indexes the caller's arrays through them, so the same protected
	// pipeline serves contiguous vectors and non-contiguous axis lines.
	ds, ss int
}

// canceled reports the in-flight context's cancellation cause, if any. It is
// checked once per sub-FFT (O(√N) work between checks), so cancellation
// latency stays far below any per-transform deadline.
func (t *Transformer) canceled() error {
	if t.ctx == nil {
		return nil
	}
	return t.ctx.Err()
}

// New builds a Transformer for n-point forward transforms under cfg.
// Online schemes need a composite n ≥ 4; Plain and Offline accept any n the
// FFT engine accepts.
func New(n int, cfg Config) (*Transformer, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: invalid size %d", n)
	}
	t := &Transformer{n: n, cfg: cfg}
	var err error
	t.m, t.k, err = Split(n)
	if err != nil {
		if cfg.Scheme == Online {
			return nil, err
		}
		// Plain/Offline on indivisible sizes: degenerate single-layer
		// "decomposition" m=n, k=1.
		t.m, t.k = n, 1
	}
	if t.planM, err = fft.NewPlanConfig(t.m, fft.Forward, cfg.planConfig()); err != nil {
		return nil, err
	}
	if t.planK, err = fft.NewPlanConfig(t.k, fft.Forward, cfg.planConfig()); err != nil {
		return nil, err
	}
	t.twiddle = twiddleTable(n, t.m, t.k)
	t.work = make([]complex128, n)
	bufLen := t.m
	if t.k > bufLen {
		bufLen = t.k
	}
	t.bufA = make([]complex128, bufLen)
	t.bufB = make([]complex128, bufLen)
	t.bufC = make([]complex128, bufLen)
	t.inPairs = make([]checksum.Pair, t.k)
	t.rowPairs = make([]checksum.Pair, t.k)
	t.colPairs = make([]checksum.Pair, t.m)
	t.outPairs = make([]checksum.Pair, t.m)
	return t, nil
}

// N returns the transform size.
func (t *Transformer) N() int { return t.n }

// Layout returns the two-layer decomposition (m, k) with n = m·k.
func (t *Transformer) Layout() (m, k int) { return t.m, t.k }

// Transform computes the forward DFT of src into dst under the configured
// protection scheme. dst and src must each have length N and must not
// overlap. When memory protection is enabled and an input memory fault is
// detected, src is repaired in place (that is the scheme's defining
// behaviour). The returned Report is valid even when an error is returned.
func (t *Transformer) Transform(dst, src []complex128) (Report, error) {
	return t.TransformContext(context.Background(), dst, src)
}

// TransformContext is Transform with cancellation: ctx is checked at every
// sub-FFT boundary, and a canceled transform returns ctx.Err() with dst in
// an unspecified state.
func (t *Transformer) TransformContext(ctx context.Context, dst, src []complex128) (Report, error) {
	if len(dst) < t.n || len(src) < t.n {
		return Report{}, fmt.Errorf("core: buffers too short: dst=%d src=%d need %d", len(dst), len(src), t.n)
	}
	return t.TransformStrided(ctx, dst[:t.n], src[:t.n], 1, 1)
}

// TransformStrided computes the forward DFT of the strided logical vector
// src[0], src[srcStride], …, src[(N-1)·srcStride] into dst[0], dst[dstStride],
// …, under the configured protection — the entry point N-dimensional axis
// passes use to transform non-contiguous lines without a gather/scatter
// round trip. The arithmetic is bit-identical to gathering the line into a
// contiguous buffer, calling TransformContext, and scattering the result:
// only the addressing changes, never the operation order.
//
// dst and src may address the same strided line (the in-place axis passes of
// an N-D transform): every scheme except Offline fully consumes the input
// before the first output element is written. The Offline scheme's restart
// path re-reads src after dst was written, so offline callers must stage an
// aliased input into a private buffer first.
func (t *Transformer) TransformStrided(ctx context.Context, dst, src []complex128, dstStride, srcStride int) (Report, error) {
	if dstStride < 1 || srcStride < 1 {
		return Report{}, fmt.Errorf("core: invalid strides dst=%d src=%d", dstStride, srcStride)
	}
	if need := (t.n-1)*dstStride + 1; len(dst) < need {
		return Report{}, fmt.Errorf("core: dst too short for stride %d: %d < %d", dstStride, len(dst), need)
	}
	if need := (t.n-1)*srcStride + 1; len(src) < need {
		return Report{}, fmt.Errorf("core: src too short for stride %d: %d < %d", srcStride, len(src), need)
	}
	t.ctx, t.ds, t.ss = ctx, dstStride, srcStride
	defer func() { t.ctx, t.ds, t.ss = nil, 0, 0 }()
	switch t.cfg.Scheme {
	case Plain:
		// Memory fault sites are visited even unprotected — faults are
		// physical events that strike whether or not anyone checks. This
		// is what the Table 6 "NoCorrection" row measures.
		fault.Visit(t.cfg.Injector, fault.SiteInputMemory, 0, src, t.n, t.ss)
		if err := t.plain(dst, src); err != nil {
			return Report{}, err
		}
		fault.Visit(t.cfg.Injector, fault.SiteFullFFT, 0, dst, t.n, t.ds)
		fault.Visit(t.cfg.Injector, fault.SiteOutputMemory, 0, dst, t.n, t.ds)
		return Report{}, nil
	case Offline:
		return t.offline(dst, src, t.thresholds(src))
	case Online:
		th := t.thresholds(src)
		if t.cfg.MemoryFT {
			if t.cfg.Variant == Optimized {
				return t.onlineMemOpt(dst, src, th)
			}
			return t.onlineMemNaive(dst, src, th)
		}
		return t.onlineComp(dst, src, th)
	default:
		return Report{}, fmt.Errorf("core: unknown scheme %d", t.cfg.Scheme)
	}
}

// thresholds derives the η values for this input, unless overridden.
func (t *Transformer) thresholds(src []complex128) Thresholds {
	if t.cfg.Thresholds != nil {
		return *t.cfg.Thresholds
	}
	// Sample the input RMS (≤1024 probes) — O(N/stride) so the derivation
	// itself adds no measurable overhead. Probe positions are chosen in
	// logical coordinates, so a strided call samples the same elements (and
	// derives bit-identical thresholds) as the contiguous equivalent.
	stride := t.n / 1024
	if stride < 1 {
		stride = 1
	}
	probes := t.n / stride
	sigma0 := roundoff.RMSStrided(src, probes, stride*t.ss)
	if sigma0 == 0 {
		sigma0 = 1
	}
	s := t.cfg.etaScale()
	sigmaMid := sigma0 * sqrtF(t.m)
	return Thresholds{
		Eta1:        s * roundoff.EtaStage1(t.m, sigma0),
		Eta2:        s * roundoff.EtaStage2(t.k, t.m, sigma0),
		EtaOffline:  s * roundoff.EtaOffline(t.n, sigma0),
		EtaMemCross: s * roundoff.EtaAccumulated(t.k, sigmaMid*maxWeight(t.k)),
		EtaMemOut:   s * roundoff.EtaAccumulated(t.n, sigma0*sqrtF(t.n)),
	}
}

func sqrtF(n int) float64 { return math.Sqrt(float64(n)) }

// maxWeight bounds |(rA)_j| for an n-point check vector: ≈ √3·3n/(2π),
// clamped below by 1.
func maxWeight(n int) float64 {
	w := 0.827 * float64(n)
	if w < 1 {
		return 1
	}
	return w
}

// plain is the unprotected two-layer baseline ("FFTW" in the figures). The
// twiddle multiplication is fused into the column gather exactly as in the
// optimized protected path, so scheme comparisons isolate checksum cost.
func (t *Transformer) plain(dst, src []complex128) error {
	m, k := t.m, t.k
	ds, ss := t.ds, t.ss
	for i := 0; i < k; i++ {
		if err := t.canceled(); err != nil {
			return err
		}
		gather(t.bufA[:m], src[i*ss:], m, k*ss)
		t.planM.Execute(t.work[i*m:(i+1)*m], t.bufA[:m])
	}
	for j := 0; j < m; j++ {
		if err := t.canceled(); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			t.bufB[i] = t.work[i*m+j] * t.twiddle[i*m+j]
		}
		t.planK.Execute(t.bufC[:k], t.bufB[:k])
		scatter(dst[j*ds:], t.bufC[:k], k, m*ds)
	}
	return nil
}

// gather copies the strided elements src[0], src[stride], … into dst[0..n-1].
func gather(dst, src []complex128, n, stride int) {
	idx := 0
	for j := 0; j < n; j++ {
		dst[j] = src[idx]
		idx += stride
	}
}

// scatter copies dst[j*stride] = src[j] for j in [0, n).
func scatter(dst, src []complex128, n, stride int) {
	idx := 0
	for j := 0; j < n; j++ {
		dst[idx] = src[j]
		idx += stride
	}
}
