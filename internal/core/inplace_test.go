package core

import (
	"math/rand"
	"testing"

	"ftfft/internal/dft"
	"ftfft/internal/fault"
)

func TestSplitInPlace(t *testing.T) {
	cases := []struct{ n, k, r int }{
		{4, 2, 1}, {16, 4, 1}, {64, 8, 1}, {256, 16, 1}, {1024, 32, 1},
		{8, 2, 2}, {32, 4, 2}, {128, 8, 2}, {512, 16, 2}, {2048, 32, 2},
		{36, 6, 1}, {72, 6, 2}, {100, 10, 1},
	}
	for _, c := range cases {
		k, r, err := splitInPlace(c.n)
		if err != nil {
			t.Fatalf("splitInPlace(%d): %v", c.n, err)
		}
		if k != c.k || r != c.r {
			t.Errorf("splitInPlace(%d) = (k=%d,r=%d), want (k=%d,r=%d)", c.n, k, r, c.k, c.r)
		}
		if k*r*k != c.n {
			t.Errorf("splitInPlace(%d): %d·%d·%d != n", c.n, k, r, k)
		}
	}
	if _, _, err := splitInPlace(6); err == nil {
		t.Error("splitInPlace(6) should fail")
	}
}

func TestInPlaceMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 16, 64, 256, 1024, 8, 32, 128, 512, 2048, 100} {
		for _, protect := range []bool{false, true} {
			cfg := Config{Scheme: Plain}
			if protect {
				cfg = Config{Scheme: Online, Variant: Optimized, MemoryFT: true}
			}
			tr, err := NewInPlace(n, cfg)
			if err != nil {
				t.Fatalf("NewInPlace(%d): %v", n, err)
			}
			x := randomVec(rng, n)
			want := dft.Transform(x)
			buf := append([]complex128(nil), x...)
			rep, err := tr.Transform(buf)
			if err != nil {
				t.Fatalf("n=%d protect=%v: %v (%+v)", n, protect, err, rep)
			}
			if protect && !rep.Clean() {
				t.Errorf("n=%d: fault-free protected run not clean: %+v", n, rep)
			}
			tol := 1e-8 * float64(n) * (1 + maxAbs(want))
			if d := maxAbsDiff(buf, want); d > tol {
				t.Errorf("n=%d protect=%v: diff %g > %g", n, protect, d, tol)
			}
		}
	}
}

func TestInPlaceDestroysInput(t *testing.T) {
	// The defining property: the buffer is overwritten.
	rng := rand.New(rand.NewSource(2))
	n := 256
	tr, _ := NewInPlace(n, Config{Scheme: Online, Variant: Optimized})
	x := randomVec(rng, n)
	buf := append([]complex128(nil), x...)
	if _, err := tr.Transform(buf); err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range buf {
		if buf[i] == x[i] {
			same++
		}
	}
	if same > n/8 {
		t.Fatalf("input mostly unchanged (%d/%d): not in place?", same, n)
	}
}

func TestInPlaceComputationalFaultRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{256, 512} { // r = 1 and r = 2 shapes
		x := randomVec(rng, n)
		want := dft.Transform(x)
		for occ := 1; occ <= 5; occ += 2 {
			sched := fault.NewSchedule(int64(occ), fault.Fault{
				Site: fault.SiteParallelFFT2, Rank: -1, Occurrence: occ * 3,
				Index: -1, Mode: fault.AddConstant, Value: 4,
			})
			tr, err := NewInPlace(n, Config{
				Scheme: Online, Variant: Optimized, MemoryFT: true, Injector: sched,
			})
			if err != nil {
				t.Fatal(err)
			}
			buf := append([]complex128(nil), x...)
			rep, err := tr.Transform(buf)
			if err != nil {
				t.Fatalf("n=%d occ=%d: %v (%+v)", n, occ, err, rep)
			}
			if !sched.AllFired() {
				t.Fatalf("n=%d occ=%d: fault did not fire", n, occ)
			}
			if rep.Clean() {
				t.Fatalf("n=%d occ=%d: fault fired but report clean", n, occ)
			}
			tol := 1e-7 * float64(n) * (1 + maxAbs(want))
			if d := maxAbsDiff(buf, want); d > tol {
				t.Fatalf("n=%d occ=%d: diff %g (%+v)", n, occ, d, rep)
			}
		}
	}
}

func TestInPlaceIntermediateMemoryFaultRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{256, 512} {
		x := randomVec(rng, n)
		want := dft.Transform(x)
		sched := fault.NewSchedule(5, fault.Fault{
			Site: fault.SiteIntermediateMemory, Rank: -1, Index: n / 3,
			Mode: fault.AddConstant, Value: 11,
		})
		tr, err := NewInPlace(n, Config{
			Scheme: Online, Variant: Optimized, MemoryFT: true, Injector: sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		buf := append([]complex128(nil), x...)
		rep, err := tr.Transform(buf)
		if err != nil {
			t.Fatalf("n=%d: %v (%+v)", n, err, rep)
		}
		if !sched.AllFired() || rep.MemCorrections == 0 {
			t.Fatalf("n=%d: fired=%v rep=%+v", n, sched.AllFired(), rep)
		}
		tol := 1e-7 * float64(n) * (1 + maxAbs(want))
		if d := maxAbsDiff(buf, want); d > tol {
			t.Fatalf("n=%d: diff %g", n, d)
		}
	}
}

func TestInPlaceTwiddleFaultRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 512
	x := randomVec(rng, n)
	want := dft.Transform(x)
	sched := fault.NewSchedule(6, fault.Fault{
		Site: fault.SiteTwiddle, Rank: -1, Occurrence: 2, Index: -1,
		Mode: fault.AddConstant, Value: 2,
	})
	tr, _ := NewInPlace(n, Config{
		Scheme: Online, Variant: Optimized, MemoryFT: true, Injector: sched,
	})
	buf := append([]complex128(nil), x...)
	rep, err := tr.Transform(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.AllFired() || rep.TwiddleCorrections == 0 {
		t.Fatalf("fired=%v rep=%+v", sched.AllFired(), rep)
	}
	if d := maxAbsDiff(buf, want); d > 1e-7*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("diff %g", d)
	}
}

func TestInPlaceShapeAccessors(t *testing.T) {
	tr, _ := NewInPlace(512, Config{Scheme: Online, Variant: Optimized})
	if tr.N() != 512 {
		t.Fatalf("N = %d", tr.N())
	}
	k, r := tr.Shape()
	if k != 16 || r != 2 {
		t.Fatalf("Shape = (%d,%d), want (16,2)", k, r)
	}
	tr.SetRank(3)
	if tr.rank != 3 {
		t.Fatal("SetRank did not stick")
	}
}

func TestInPlaceShortBuffer(t *testing.T) {
	tr, _ := NewInPlace(64, Config{Scheme: Plain})
	if _, err := tr.Transform(make([]complex128, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
}
