package core

import (
	"math"
	"math/cmplx"
)

// ccvPass decides a computational checksum verification: the difference
// |rX − cx| must stay within the distribution-derived η *plus* a relative
// round-off floor proportional to the compared magnitudes. The floor matters
// when the data in a block is far larger than the global input RMS the η was
// derived from (for instance after an unprotected memory corruption): the
// comparison must then still accept the mathematically consistent checksums
// instead of spinning on a permanent false positive.
func ccvPass(rX, cx complex128, eta float64, blockSize int) bool {
	floor := 64 * math.Exp2(-52) * math.Sqrt(float64(blockSize)) * (cmplx.Abs(rX) + cmplx.Abs(cx))
	return cmplx.Abs(rX-cx) <= eta+floor
}
