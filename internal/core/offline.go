package core

import (
	"math/cmplx"

	"ftfft/internal/checksum"
	"ftfft/internal/fault"
)

// offline implements Algorithm 1, in both variants and with optional memory
// protection (the Table 1 "Opt-Offline" rows):
//
//   - Naive: the input checksum vector rA is evaluated trigonometrically,
//     the output checksum uses an explicitly materialized weight vector, and
//     memory protection uses the classic r₁ = (1,…,1), r₂ = (0,1,…,n-1)
//     checksums computed in two separate passes.
//   - Optimized: rA uses the incremental closed form (§7.1.1), the output
//     checksum uses the merged ω₃-bucket evaluation, and the memory
//     checksums are the §4.1 dual-use pair (r′₁ = rA, r′₂ = j·rA) computed
//     in the same pass as the computational checksum.
//
// Any error — wherever it struck — surfaces only at the final verification,
// and recovery is a full restart; with memory protection the input is first
// re-verified and repaired so the restart starts from clean data.
func (t *Transformer) offline(dst, src []complex128, th Thresholds) (Report, error) {
	var rep Report
	naive := t.cfg.Variant == Naive
	ds, ss := t.ds, t.ss

	// Input checksum vector generation.
	var ra []complex128
	if naive {
		ra = checksum.CheckVectorTrig(t.n)
	} else {
		ra = checksum.CheckVector(t.n)
	}

	// Computational input checksum, fused with memory checksum generation
	// in the optimized variant.
	var cx complex128
	var inPair checksum.Pair
	var naiveOnes, naiveIdx complex128 // classic memory checksums (naive)
	if t.cfg.MemoryFT && !naive {
		inPair = checksum.GeneratePairStrided(ra, src, t.n, ss)
		cx = inPair.D1 // dual use (§4.1)
	} else {
		cx = checksum.DotStrided(ra, src, t.n, ss)
		if t.cfg.MemoryFT {
			// Classic checksums, deliberately in two extra passes.
			for j := 0; j < t.n; j++ {
				naiveOnes += src[j*ss]
			}
			for j := 0; j < t.n; j++ {
				naiveIdx += complex(float64(j), 0) * src[j*ss]
			}
		}
	}

	// The input now rests in memory until the computation reads it.
	fault.Visit(t.cfg.Injector, fault.SiteInputMemory, 0, src, t.n, ss)

	// Naive CCV materializes the weight vector; optimized uses DotOmega3.
	var rWeights []complex128
	if naive {
		rWeights = checksum.Weights(t.n)
	}

	for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
		if err := t.plain(dst, src); err != nil {
			return rep, err
		}
		fault.Visit(t.cfg.Injector, fault.SiteFullFFT, 0, dst, t.n, ds)
		fault.Visit(t.cfg.Injector, fault.SiteOutputMemory, 0, dst, t.n, ds)

		var rX complex128
		if naive {
			rX = checksum.DotStrided(rWeights, dst, t.n, ds)
		} else {
			rX = checksum.DotOmega3Strided(dst, t.n, ds)
		}
		if ccvPass(rX, cx, th.EtaOffline, t.n) {
			return rep, nil
		}
		rep.Detections++

		if t.cfg.MemoryFT {
			// Re-verify the input; repair it if the mismatch came from a
			// memory fault, then restart from clean data.
			if naive {
				var curOnes, curIdx complex128
				for j := 0; j < t.n; j++ {
					curOnes += src[j*ss]
				}
				for j := 0; j < t.n; j++ {
					curIdx += complex(float64(j), 0) * src[j*ss]
				}
				d := checksum.Pair{D1: naiveOnes - curOnes, D2: naiveIdx - curIdx}
				if cmplx.Abs(d.D1) > 0 {
					if j, ok := checksum.Locate(d, t.n); ok {
						src[j*ss] += d.D1
						rep.MemCorrections++
						cx = checksum.DotStrided(ra, src, t.n, ss)
					}
				}
			} else {
				cur := checksum.GeneratePairStrided(ra, src, t.n, ss)
				d := inPair.Sub(cur)
				if cmplx.Abs(d.D1) > th.EtaMemOut {
					if j, ok := checksum.Locate(d, t.n); ok {
						src[j*ss] += d.D1 / ra[j]
						rep.MemCorrections++
						cur = checksum.GeneratePairStrided(ra, src, t.n, ss)
						inPair = cur
						cx = cur.D1
					}
				}
			}
		}
		rep.FullRestarts++
	}
	rep.Uncorrectable = true
	return rep, ErrUncorrectable
}
