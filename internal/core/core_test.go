package core

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"ftfft/internal/dft"
)

func randomVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func maxAbs(a []complex128) float64 {
	var m float64
	for _, v := range a {
		if d := cmplx.Abs(v); d > m {
			m = d
		}
	}
	return m
}

// allConfigs enumerates every protection configuration.
func allConfigs() []Config {
	return []Config{
		{Scheme: Plain},
		{Scheme: Offline, Variant: Naive},
		{Scheme: Offline, Variant: Optimized},
		{Scheme: Offline, Variant: Naive, MemoryFT: true},
		{Scheme: Offline, Variant: Optimized, MemoryFT: true},
		{Scheme: Online, Variant: Naive},
		{Scheme: Online, Variant: Optimized},
		{Scheme: Online, Variant: Naive, MemoryFT: true},
		{Scheme: Online, Variant: Optimized, MemoryFT: true},
	}
}

func cfgName(c Config) string {
	name := c.Scheme.String() + "/" + c.Variant.String()
	if c.MemoryFT {
		name += "/mem"
	}
	return name
}

func TestSplit(t *testing.T) {
	cases := []struct{ n, m, k int }{
		{4, 2, 2}, {16, 4, 4}, {64, 8, 8}, {128, 16, 8}, {1 << 15, 256, 128},
		{12, 4, 3}, {100, 10, 10}, {1000, 40, 25},
	}
	for _, c := range cases {
		m, k, err := Split(c.n)
		if err != nil {
			t.Fatalf("Split(%d): %v", c.n, err)
		}
		if m != c.m || k != c.k {
			t.Errorf("Split(%d) = (%d,%d), want (%d,%d)", c.n, m, k, c.m, c.k)
		}
		if m*k != c.n || m < k {
			t.Errorf("Split(%d) invariant broken: %d×%d", c.n, m, k)
		}
	}
	for _, n := range []int{1, 2, 3, 7, 13, 97} {
		if _, _, err := Split(n); err == nil {
			t.Errorf("Split(%d) should fail", n)
		}
	}
}

func TestTwiddleTable(t *testing.T) {
	n, m, k := 48, 8, 6
	tab := twiddleTable(n, m, k)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			want := dft.Omega(n, i*j)
			if cmplx.Abs(tab[i*m+j]-want) > 1e-12 {
				t.Fatalf("tw[%d,%d] = %v, want %v", i, j, tab[i*m+j], want)
			}
		}
	}
}

// TestAllSchemesMatchDFT is the core correctness matrix: every scheme on
// every size must agree with the direct DFT in fault-free runs, with a clean
// report.
func TestAllSchemesMatchDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 16, 64, 100, 256, 1024} {
		x := randomVec(rng, n)
		want := dft.Transform(x)
		tol := 1e-8 * float64(n) * (1 + maxAbs(want))
		for _, cfg := range allConfigs() {
			tr, err := New(n, cfg)
			if err != nil {
				t.Fatalf("n=%d %s: New: %v", n, cfgName(cfg), err)
			}
			dst := make([]complex128, n)
			src := append([]complex128(nil), x...)
			rep, err := tr.Transform(dst, src)
			if err != nil {
				t.Fatalf("n=%d %s: Transform: %v (report %+v)", n, cfgName(cfg), err, rep)
			}
			if !rep.Clean() {
				t.Errorf("n=%d %s: fault-free run reported activity: %+v", n, cfgName(cfg), rep)
			}
			if d := maxAbsDiff(dst, want); d > tol {
				t.Errorf("n=%d %s: diff %g > %g", n, cfgName(cfg), d, tol)
			}
		}
	}
}

// TestFaultFreeNoFalsePositives runs many fault-free transforms checking the
// thresholds never fire (the Table 4 throughput property).
func TestFaultFreeNoFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 4096
	for _, cfg := range allConfigs() {
		tr, err := New(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]complex128, n)
		for run := 0; run < 20; run++ {
			src := randomVec(rng, n)
			rep, err := tr.Transform(dst, src)
			if err != nil {
				t.Fatalf("%s run %d: %v", cfgName(cfg), run, err)
			}
			if !rep.Clean() {
				t.Fatalf("%s run %d: false positive: %+v", cfgName(cfg), run, rep)
			}
		}
	}
}

func TestTransformNormalInput(t *testing.T) {
	// N(0,1) inputs (the other Table 4 distribution).
	rng := rand.New(rand.NewSource(3))
	n := 1024
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := dft.Transform(x)
	for _, cfg := range allConfigs() {
		tr, _ := New(n, cfg)
		dst := make([]complex128, n)
		src := append([]complex128(nil), x...)
		if rep, err := tr.Transform(dst, src); err != nil || !rep.Clean() {
			t.Fatalf("%s: err=%v rep=%+v", cfgName(cfg), err, rep)
		}
		if d := maxAbsDiff(dst, want); d > 1e-8*float64(n)*(1+maxAbs(want)) {
			t.Errorf("%s: diff %g", cfgName(cfg), d)
		}
	}
}

func TestOnlineRequiresComposite(t *testing.T) {
	if _, err := New(97, Config{Scheme: Online}); err == nil {
		t.Fatal("online scheme must reject prime sizes")
	}
	// Plain and offline fall back to a single layer.
	for _, s := range []Scheme{Plain, Offline} {
		tr, err := New(97, Config{Scheme: s, Variant: Optimized})
		if err != nil {
			t.Fatalf("scheme %v on prime size: %v", s, err)
		}
		rng := rand.New(rand.NewSource(4))
		x := randomVec(rng, 97)
		want := dft.Transform(x)
		dst := make([]complex128, 97)
		if _, err := tr.Transform(dst, x); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(dst, want); d > 1e-8*(1+maxAbs(want))*97 {
			t.Errorf("scheme %v prime size diff %g", s, d)
		}
	}
}

func TestBufferLengthValidation(t *testing.T) {
	tr, _ := New(16, Config{Scheme: Plain})
	short := make([]complex128, 8)
	full := make([]complex128, 16)
	if _, err := tr.Transform(short, full); err == nil {
		t.Fatal("short dst accepted")
	}
	if _, err := tr.Transform(full, short); err == nil {
		t.Fatal("short src accepted")
	}
}

func TestReportAddAndClean(t *testing.T) {
	var r Report
	if !r.Clean() {
		t.Fatal("zero report should be clean")
	}
	r.Add(Report{Detections: 2, MemCorrections: 1})
	r.Add(Report{CompRecomputations: 3, Uncorrectable: true})
	if r.Detections != 2 || r.MemCorrections != 1 || r.CompRecomputations != 3 || !r.Uncorrectable {
		t.Fatalf("bad accumulation: %+v", r)
	}
	if r.Clean() {
		t.Fatal("non-zero report should not be clean")
	}
}

func TestSchemeAgreementProperty(t *testing.T) {
	// All schemes produce (numerically) the same output for the same input.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns := []int{16, 36, 64, 144, 256}
		n := ns[rng.Intn(len(ns))]
		x := randomVec(rng, n)
		ref := make([]complex128, n)
		trPlain, _ := New(n, Config{Scheme: Plain})
		if _, err := trPlain.Transform(ref, x); err != nil {
			return false
		}
		for _, cfg := range allConfigs()[1:] {
			tr, err := New(n, cfg)
			if err != nil {
				return false
			}
			dst := make([]complex128, n)
			src := append([]complex128(nil), x...)
			if _, err := tr.Transform(dst, src); err != nil {
				return false
			}
			if maxAbsDiff(dst, ref) > 1e-8*float64(n)*(1+maxAbs(ref)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutAccessors(t *testing.T) {
	tr, _ := New(128, Config{Scheme: Online, Variant: Optimized})
	if tr.N() != 128 {
		t.Fatalf("N = %d", tr.N())
	}
	m, k := tr.Layout()
	if m*k != 128 || m < k {
		t.Fatalf("Layout = %d,%d", m, k)
	}
}
