package core

import (
	"context"
	"fmt"
	"math"

	"ftfft/internal/checksum"
	"ftfft/internal/fault"
	"ftfft/internal/fft"
	"ftfft/internal/roundoff"
)

// InPlaceTransformer executes protected forward FFTs that overwrite their
// input — the regime of the parallel scheme (§5), where restart-based
// recovery is impossible because the original input is destroyed as soon as
// the first layer completes (Fig. 5). Protection therefore follows Fig. 4:
// every sub-FFT keeps its gathered input as a backup until its output
// verifies, memory between layers is covered by incrementally accumulated
// checksums, and when n = r·k² (r small, 2 or 8 for power-of-two sizes) the
// extra middle layer of r-point FFTs is protected by DMR rather than ABFT.
//
// Decomposition (n = N2·N1 with N2 = k, N1 = r·k):
//
//	layer A: N1 k-point FFTs over stride-N1 sub-vectors   (ABFT)
//	twiddle ω_n^{n1·j2}
//	layer B, per contiguous N1-block:
//	    r == 1: one k-point FFT                            (ABFT)
//	    r != 1: k r-point FFTs (DMR) + twiddle (DMR) + r k-point FFTs (ABFT)
//	local adjustment to natural output order
//
// An InPlaceTransformer is not safe for concurrent use.
type InPlaceTransformer struct {
	n, k, r, n1 int // n = k·n1, n1 = r·k
	cfg         Config
	rank        int // rank tag passed to the injector (parallel use)

	planK *fft.Plan
	planR *fft.Plan

	ckv []complex128 // CheckVector(k): stage checksum weights
	cn1 []complex128 // CheckVector(n1): block memory-pair weights
	crv []complex128 // CheckVector(r), r > 1

	// twA[n1*?]: layer-A twiddles ω_n^{n1·j2}; twB: intra-block twiddles
	// ω_{n1}^{n1'·j2'} for the r ≠ 1 case.
	twA []complex128 // n entries: twA[j2*n1+i1] multiplies block j2 elem i1
	twB []complex128 // n1 entries (r != 1)

	bufA, bufB, bufC []complex128 // k-sized work buffers
	rbuf1, rbuf2     []complex128 // r-sized DMR buffers
	adjust           []complex128 // n-sized buffer for the final reorder
	blockPairs       []checksum.Pair
}

// NewInPlace builds an in-place protected transformer for size n, which must
// be expressible as k·(r·k) with k ≥ 2 and 1 ≤ r ≤ maxSmallRadix. For
// power-of-two n this always holds with r ∈ {1, 2}.
func NewInPlace(n int, cfg Config) (*InPlaceTransformer, error) {
	k, r, err := splitInPlace(n)
	if err != nil {
		return nil, err
	}
	t := &InPlaceTransformer{n: n, k: k, r: r, n1: r * k, cfg: cfg}
	if t.planK, err = fft.NewPlanConfig(k, fft.Forward, cfg.planConfig()); err != nil {
		return nil, err
	}
	if r > 1 {
		if t.planR, err = fft.NewPlanConfig(r, fft.Forward, cfg.planConfig()); err != nil {
			return nil, err
		}
		t.crv = checksum.CheckVector(r)
		t.twB = make([]complex128, t.n1)
		for i1 := 0; i1 < k; i1++ {
			for j2 := 0; j2 < r; j2++ {
				t.twB[j2*k+i1] = omegaN(t.n1, i1*j2)
			}
		}
	}
	t.ckv = checksum.CheckVector(k)
	t.cn1 = checksum.CheckVector(t.n1)
	t.twA = make([]complex128, n)
	for j2 := 0; j2 < k; j2++ {
		for i1 := 0; i1 < t.n1; i1++ {
			t.twA[j2*t.n1+i1] = omegaN(n, i1*j2)
		}
	}
	t.bufA = make([]complex128, k)
	t.bufB = make([]complex128, k)
	t.bufC = make([]complex128, k)
	if r > 1 {
		t.rbuf1 = make([]complex128, r)
		t.rbuf2 = make([]complex128, r)
	}
	t.adjust = make([]complex128, n)
	t.blockPairs = make([]checksum.Pair, k)
	return t, nil
}

// maxSmallRadix bounds the DMR-protected middle layer.
const maxSmallRadix = 16

// splitInPlace finds n = k·r·k with r minimal (preferring r = 1).
func splitInPlace(n int) (k, r int, err error) {
	for rr := 1; rr <= maxSmallRadix; rr++ {
		if n%rr != 0 {
			continue
		}
		q := n / rr
		kk := int(math.Round(math.Sqrt(float64(q))))
		for d := kk; d >= 2; d-- {
			if d*d == q {
				return d, rr, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("core: size %d is not k·r·k² with small r; no in-place plan", n)
}

// SetRank tags injector visits with a parallel rank.
func (t *InPlaceTransformer) SetRank(rank int) { t.rank = rank }

// N returns the transform size.
func (t *InPlaceTransformer) N() int { return t.n }

// Shape returns the (k, r) decomposition with n = k·(r·k).
func (t *InPlaceTransformer) Shape() (k, r int) { return t.k, t.r }

// Transform computes the forward DFT of buf in place. The input is
// destroyed even when an error is returned.
func (t *InPlaceTransformer) Transform(buf []complex128) (Report, error) {
	return t.TransformContext(context.Background(), buf)
}

// TransformContext is Transform with cancellation, checked at every layer-A
// sub-FFT and layer-B block boundary. A canceled transform returns ctx.Err()
// with buf in an unspecified (already overwritten) state.
func (t *InPlaceTransformer) TransformContext(ctx context.Context, buf []complex128) (Report, error) {
	var rep Report
	if len(buf) < t.n {
		return rep, fmt.Errorf("core: buffer too short: %d < %d", len(buf), t.n)
	}
	buf = buf[:t.n]
	th := t.inPlaceThresholds(buf)
	inj := t.cfg.Injector
	n1, k, r := t.n1, t.k, t.r
	protect := t.cfg.Scheme != Plain

	fault.Visit(inj, fault.SiteInputMemory, t.rank, buf, t.n, 1)

	// ---- Layer A: n1 k-point FFTs over stride-n1 sub-vectors ----
	for i := range t.blockPairs {
		t.blockPairs[i] = checksum.Pair{}
	}
	for i1 := 0; i1 < n1; i1++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		sub := buf[i1:]
		gather(t.bufA, sub, k, n1) // bufA doubles as the Fig. 4 input backup
		var cx complex128
		if protect {
			cx = checksum.Dot(t.ckv, t.bufA)
		}
		ok := !protect
		for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
			t.planK.Execute(t.bufC, t.bufA)
			if !protect {
				break
			}
			fault.Visit(inj, fault.SiteParallelFFT2, t.rank, t.bufC, k, 1)
			if ccvPass(checksum.DotOmega3(t.bufC), cx, th.Eta1, k) {
				ok = true
				break
			}
			rep.Detections++
			// Input backup still intact: verify it to disambiguate.
			cur := checksum.Dot(t.ckv, t.bufA)
			if !ccvPass(cur, cx, th.Eta1, k) {
				// The backup itself took a memory hit after CCG; it is
				// still pre-overwrite, so re-gather from buf.
				gather(t.bufA, sub, k, n1)
				cx = checksum.Dot(t.ckv, t.bufA)
				rep.MemCorrections++
				continue
			}
			rep.CompRecomputations++
		}
		if !ok {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
		// Overwrite in place; fold each element into its destination
		// block's memory pair (incremental CMCG, §4.3).
		idx := i1
		wrow := t.cn1[i1]
		iw := complex(float64(i1), 0) * wrow
		for j2 := 0; j2 < k; j2++ {
			v := t.bufC[j2]
			buf[idx] = v
			t.blockPairs[j2].D1 += wrow * v
			t.blockPairs[j2].D2 += iw * v
			idx += n1
		}
	}

	fault.Visit(inj, fault.SiteIntermediateMemory, t.rank, buf, t.n, 1)

	// ---- Layer B: per contiguous n1-block ----
	for j2 := 0; j2 < k; j2++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		block := buf[j2*n1 : (j2+1)*n1]
		if protect {
			// CMCV of the block against the accumulated pair.
			idx, corrected, ok := checksum.CorrectSingleStrided(
				t.cn1, block, n1, 1, t.blockPairs[j2], th.EtaMemCross)
			if corrected {
				rep.Detections++
				rep.MemCorrections++
				_ = idx
			}
			if !ok {
				rep.Uncorrectable = true
				return rep, ErrUncorrectable
			}
		}
		// Layer-A twiddle ω_n^{i1·j2}, DMR-protected.
		t.dmrTwiddleInPlace(block, t.twA[j2*n1:(j2+1)*n1], &rep, protect)

		if r == 1 {
			if !t.blockFFTK(block, 0, 1, th, &rep, protect) {
				return rep, ErrUncorrectable
			}
			continue
		}

		// r != 1: k r-point FFTs (stride k) under DMR …
		for i1 := 0; i1 < k; i1++ {
			t.dmrSmallFFT(block[i1:], k, &rep, protect)
		}
		// … intra-block twiddle ω_{n1}^{i1·j2'} (DMR) …
		t.dmrTwiddleInPlace(block, t.twB, &rep, protect)
		// … and r contiguous k-point FFTs under ABFT.
		for j2p := 0; j2p < r; j2p++ {
			if !t.blockFFTK(block, j2p*k, 1, th, &rep, protect) {
				return rep, ErrUncorrectable
			}
		}
	}

	// ---- Local adjustment to natural order ----
	// Position j2·n1 + j2'·k + j1' holds X_{(j1'·r + j2')·k + j2}
	// (r = 1: position j2·k + j1 holds X_{j1·k + j2}).
	t.localAdjust(buf)

	fault.Visit(inj, fault.SiteOutputMemory, t.rank, buf, t.n, 1)
	return rep, nil
}

// blockFFTK transforms block[off], block[off+stride], … (k elements) in
// place with ABFT protection, keeping the gathered input as backup.
func (t *InPlaceTransformer) blockFFTK(block []complex128, off, stride int, th Thresholds, rep *Report, protect bool) bool {
	gather(t.bufA, block[off:], t.k, stride)
	var cx complex128
	if protect {
		cx = checksum.Dot(t.ckv, t.bufA)
	}
	ok := !protect
	for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
		t.planK.Execute(t.bufC, t.bufA)
		if !protect {
			break
		}
		fault.Visit(t.cfg.Injector, fault.SiteParallelFFT2, t.rank, t.bufC, t.k, 1)
		if ccvPass(checksum.DotOmega3(t.bufC), cx, th.Eta2, t.k) {
			ok = true
			break
		}
		rep.Detections++
		cur := checksum.Dot(t.ckv, t.bufA)
		if !ccvPass(cur, cx, th.Eta2, t.k) {
			gather(t.bufA, block[off:], t.k, stride)
			cx = checksum.Dot(t.ckv, t.bufA)
			rep.MemCorrections++
			continue
		}
		rep.CompRecomputations++
	}
	if !ok {
		rep.Uncorrectable = true
		return false
	}
	scatter(block[off:], t.bufC, t.k, stride)
	return true
}

// dmrSmallFFT runs the r-point FFT over sub[0], sub[stride], … twice and
// compares, with a third run breaking ties — the middle-layer DMR of Fig. 6.
func (t *InPlaceTransformer) dmrSmallFFT(sub []complex128, stride int, rep *Report, protect bool) {
	t.planR.ExecuteStrided(t.rbuf1, sub, stride)
	if protect {
		fault.Visit(t.cfg.Injector, fault.SiteParallelFFT2, t.rank, t.rbuf1, t.r, 1)
		t.planR.ExecuteStrided(t.rbuf2, sub, stride)
		for i := 0; i < t.r; i++ {
			if t.rbuf1[i] != t.rbuf2[i] {
				rep.Detections++
				t.planR.ExecuteStrided(t.rbuf1, sub, stride)
				if t.rbuf1[i] != t.rbuf2[i] {
					// Third run agreed with neither… deterministic
					// recomputation means it agrees with the clean run.
					t.rbuf1[i] = t.rbuf2[i]
				}
				rep.CompRecomputations++
				break
			}
		}
	}
	scatter(sub, t.rbuf1, t.r, stride)
}

// dmrTwiddleInPlace multiplies block element-wise by tw with DMR. The
// original values are needed for the recheck, so the products are staged
// through bufA-sized chunks.
func (t *InPlaceTransformer) dmrTwiddleInPlace(block, tw []complex128, rep *Report, protect bool) {
	if !protect {
		for i := range block {
			block[i] *= tw[i]
		}
		return
	}
	for off := 0; off < len(block); off += t.k {
		end := off + t.k
		if end > len(block) {
			end = len(block)
		}
		chunk := block[off:end]
		twc := tw[off:end]
		dst := t.bufB[:len(chunk)]
		for i := range chunk {
			dst[i] = chunk[i] * twc[i]
		}
		fault.Visit(t.cfg.Injector, fault.SiteTwiddle, t.rank, dst, len(chunk), 1)
		for i := range chunk {
			v2 := chunk[i] * twc[i]
			if dst[i] != v2 {
				rep.Detections++
				v3 := chunk[i] * twc[i]
				if v2 == v3 {
					dst[i] = v2
				}
				rep.TwiddleCorrections++
			}
		}
		copy(chunk, dst)
	}
}

// localAdjust permutes the computed spectrum into natural order. For r = 1
// this is an in-place square transpose; otherwise it routes through the
// plan-owned buffer (the adjustment is folded into communication in the
// parallel scheme, so this buffer exists only for standalone use).
func (t *InPlaceTransformer) localAdjust(buf []complex128) {
	k, r, n1 := t.k, t.r, t.n1
	if r == 1 {
		for j2 := 0; j2 < k; j2++ {
			for j1 := j2 + 1; j1 < k; j1++ {
				buf[j2*k+j1], buf[j1*k+j2] = buf[j1*k+j2], buf[j2*k+j1]
			}
		}
		return
	}
	for j2 := 0; j2 < k; j2++ {
		for j2p := 0; j2p < r; j2p++ {
			for j1p := 0; j1p < k; j1p++ {
				t.adjust[(j1p*r+j2p)*k+j2] = buf[j2*n1+j2p*k+j1p]
			}
		}
	}
	copy(buf, t.adjust)
}

// inPlaceThresholds mirrors Transformer.thresholds for the in-place layout.
func (t *InPlaceTransformer) inPlaceThresholds(buf []complex128) Thresholds {
	if t.cfg.Thresholds != nil {
		return *t.cfg.Thresholds
	}
	stride := len(buf) / 1024
	if stride < 1 {
		stride = 1
	}
	sigma0 := roundoff.RMSStrided(buf, len(buf)/stride, stride)
	if sigma0 == 0 {
		sigma0 = 1
	}
	s := t.cfg.etaScale()
	sigmaMid := sigma0 * math.Sqrt(float64(t.k))
	return Thresholds{
		Eta1:        s * roundoff.EtaStage1(t.k, sigma0),
		Eta2:        s * roundoff.EtaStage2(t.k, t.n1, sigma0),
		EtaMemCross: s * roundoff.EtaAccumulated(t.n1, sigmaMid*maxWeight(t.n1)),
		EtaMemOut:   s * roundoff.EtaAccumulated(t.n, sigma0*math.Sqrt(float64(t.n))),
	}
}
