package core

import (
	"math/cmplx"

	"ftfft/internal/checksum"
	"ftfft/internal/fault"
)

// onlineMemNaive implements the Fig. 2 hierarchy: online ABFT with memory
// fault tolerance, before the §4 optimizations. The computational machinery
// is shared with the optimized scheme (checksum vectors computed once,
// gathered buffers), but the memory protocol is the expensive one the paper
// starts from:
//
//   - classic checksums r₁ = (1,…,1), r₂ = (0,…,n-1) computed in two
//     separate passes per block;
//   - an explicit MCV before every sub-FFT (the §4.2 optimization postpones
//     these into the CCVs);
//   - at the layer boundary, every intermediate row is re-verified and every
//     column checksum regenerated from scratch — "each element is verified
//     twice" — instead of the §4.3 incremental generation;
//   - output column-group checksums verified in a final strided pass.
func (t *Transformer) onlineMemNaive(dst, src []complex128, th Thresholds) (Report, error) {
	var rep Report
	m, k := t.m, t.k
	ds, ss := t.ds, t.ss
	inj := t.cfg.Injector

	cm := t.dmrCheckVector(m, &rep)

	// MCG for every stage-1 sub-input: classic checksums, two strided
	// passes each.
	for i := 0; i < k; i++ {
		t.inPairs[i] = classicPairStridedTwoPass(src[i*ss:], m, k*ss)
	}
	fault.Visit(inj, fault.SiteInputMemory, 0, src, t.n, ss)

	// ---- Stage 1 ----
	for i := 0; i < k; i++ {
		if err := t.canceled(); err != nil {
			return rep, err
		}
		// MCV before use; repair single memory errors in place.
		if !t.verifyClassicStrided(src[i*ss:], m, k*ss, &t.inPairs[i], &rep) {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
		gather(t.bufA[:m], src[i*ss:], m, k*ss)
		cx := checksum.Dot(cm, t.bufA[:m])
		row := t.work[i*m : (i+1)*m]
		ok := false
		for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
			t.planM.Execute(row, t.bufA[:m])
			fault.Visit(inj, fault.SiteSubFFT1, 0, row, m, 1)
			if ccvPass(checksum.DotOmega3(row), cx, th.Eta1, m) {
				ok = true
				break
			}
			rep.Detections++
			rep.CompRecomputations++
		}
		if !ok {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
		// MCG of the produced row.
		t.rowPairs[i] = classicPairTwoPass(row)
	}

	fault.Visit(inj, fault.SiteIntermediateMemory, 0, t.work, t.n, 1)

	// ---- Layer boundary: verify rows, regenerate column checksums ----
	for i := 0; i < k; i++ {
		row := t.work[i*m : (i+1)*m]
		if !t.verifyClassic(row, &t.rowPairs[i], &rep) {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
	}
	for j := 0; j < m; j++ {
		t.colPairs[j] = classicPairStridedTwoPass(t.work[j:], k, m)
	}

	// ---- Stage 2 ----
	ck := t.dmrCheckVector(k, &rep)
	for j := 0; j < m; j++ {
		if err := t.canceled(); err != nil {
			return rep, err
		}
		if !t.verifyClassicStrided(t.work[j:], k, m, &t.colPairs[j], &rep) {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
		gather(t.bufA[:k], t.work[j:], k, m)
		t.dmrTwiddle(t.bufB[:k], t.bufA[:k], t.twiddle[j:], m, &rep)
		cx2 := checksum.Dot(ck, t.bufB[:k])
		ok := false
		for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
			t.planK.Execute(t.bufC[:k], t.bufB[:k])
			fault.Visit(inj, fault.SiteSubFFT2, 0, t.bufC[:k], k, 1)
			if ccvPass(checksum.DotOmega3(t.bufC[:k]), cx2, th.Eta2, k) {
				ok = true
				break
			}
			rep.Detections++
			rep.CompRecomputations++
		}
		if !ok {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
		scatter(dst[j*ds:], t.bufC[:k], k, m*ds)
		t.outPairs[j] = classicPairTwoPass(t.bufC[:k])
	}

	fault.Visit(inj, fault.SiteOutputMemory, 0, dst, t.n, ds)

	// ---- Final MCV over the output column groups ----
	for j := 0; j < m; j++ {
		if !t.verifyClassicStrided(dst[j*ds:], k, m*ds, &t.outPairs[j], &rep) {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
	}
	return rep, nil
}

// onlineMemOpt implements the Fig. 3 optimized hierarchy:
//
//   - CMCG (§4.1/§4.4): one contiguous sweep over the input accumulates a
//     modified checksum pair per stage-1 sub-FFT, whose D1 *is* the
//     computational input checksum;
//   - verification postponing (§4.2): no MCV before the m-point FFTs — the
//     CCV afterwards detects both fault classes, and on mismatch the input
//     pair disambiguates memory from computational faults;
//   - incremental generation (§4.3): stage-2 input pairs accumulate as each
//     verified row is produced, so the intermediate is never re-read for
//     checksum generation;
//   - the final output is protected by one whole-array pair accumulated at
//     scatter time and verified in a single contiguous sweep, with located
//     single errors repaired in place (second-level recovery recomputes the
//     affected column from the intact intermediate).
func (t *Transformer) onlineMemOpt(dst, src []complex128, th Thresholds) (Report, error) {
	var rep Report
	m, k := t.m, t.k
	ds, ss := t.ds, t.ss
	inj := t.cfg.Injector

	cm := t.dmrCheckVector(m, &rep)
	ck := t.dmrCheckVector(k, &rep)

	// ---- CMCG: one sweep over the input in logical order ----
	for i := range t.inPairs[:k] {
		t.inPairs[i] = checksum.Pair{}
	}
	for idx := 0; idx < t.n; idx++ {
		v := src[idx*ss]
		i := idx % k // owning sub-FFT
		j := idx / k // position within it
		w := cm[j] * v
		t.inPairs[i].D1 += w
		t.inPairs[i].D2 += complex(float64(j), 0) * w
	}
	fault.Visit(inj, fault.SiteInputMemory, 0, src, t.n, ss)

	acc := checksum.NewAccumulator(ck, m)
	var outPair checksum.Pair

	// ---- Stage 1 with postponed MCV ----
	for i := 0; i < k; i++ {
		if err := t.canceled(); err != nil {
			return rep, err
		}
		gather(t.bufA[:m], src[i*ss:], m, k*ss)
		cx := t.inPairs[i].D1
		row := t.work[i*m : (i+1)*m]
		ok := false
		for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
			t.planM.Execute(row, t.bufA[:m])
			fault.Visit(inj, fault.SiteSubFFT1, 0, row, m, 1)
			if ccvPass(checksum.DotOmega3(row), cx, th.Eta1, m) {
				ok = true
				break
			}
			rep.Detections++
			// Postponed MCV: was it the input or the computation?
			cur := checksum.GeneratePair(cm, t.bufA[:m])
			d := t.inPairs[i].Sub(cur)
			if cmplx.Abs(d.D1) > th.Eta1 {
				// Memory fault in the input: locate, repair the gathered
				// buffer and the resident input, and recompute.
				if jj, located := checksum.Locate(d, m); located {
					t.bufA[jj] += d.D1 / cm[jj]
					src[(i+jj*k)*ss] = t.bufA[jj]
					rep.MemCorrections++
					continue
				}
				rep.Uncorrectable = true
				return rep, ErrUncorrectable
			}
			rep.CompRecomputations++
		}
		if !ok {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
		acc.AddRow(i, row) // §4.3 incremental stage-2 checksums
	}

	fault.Visit(inj, fault.SiteIntermediateMemory, 0, t.work, t.n, 1)

	// ---- Stage 2: CMCV & TM & CCG fused per column ----
	for j := 0; j < m; j++ {
		if err := t.canceled(); err != nil {
			return rep, err
		}
		gather(t.bufA[:k], t.work[j:], k, m)
		// CMCV against the incrementally accumulated pair; repairs single
		// corrupted intermediate elements.
		idx, corrected, ok := checksum.CorrectSingle(ck, t.bufA[:k], acc.Column(j), th.EtaMemCross)
		if corrected {
			rep.Detections++
			rep.MemCorrections++
			t.work[j+idx*m] = t.bufA[idx]
		}
		if !ok {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
		t.dmrTwiddle(t.bufB[:k], t.bufA[:k], t.twiddle[j:], m, &rep)
		cx2 := checksum.Dot(ck, t.bufB[:k])
		okFFT := false
		for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
			t.planK.Execute(t.bufC[:k], t.bufB[:k])
			fault.Visit(inj, fault.SiteSubFFT2, 0, t.bufC[:k], k, 1)
			if ccvPass(checksum.DotOmega3(t.bufC[:k]), cx2, th.Eta2, k) {
				okFFT = true
				break
			}
			rep.Detections++
			// Disambiguate: if the twiddled buffer changed since CCG, the
			// local buffer took a memory hit — rebuild it from the (still
			// verified) intermediate; otherwise recompute the FFT.
			if cmplx.Abs(checksum.Dot(ck, t.bufB[:k])-cx2) > th.Eta2 {
				gather(t.bufA[:k], t.work[j:], k, m)
				t.dmrTwiddle(t.bufB[:k], t.bufA[:k], t.twiddle[j:], m, &rep)
				cx2 = checksum.Dot(ck, t.bufB[:k])
				rep.MemCorrections++
				continue
			}
			rep.CompRecomputations++
		}
		if !okFFT {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
		// Scatter and fold into the whole-output pair. Checksum weights use
		// the logical index, so strided outputs stay bit-identical.
		idxOut := j
		for j1 := 0; j1 < k; j1++ {
			v := t.bufC[j1]
			dst[idxOut*ds] = v
			w := checksum.Omega3(idxOut) * v
			outPair.D1 += w
			outPair.D2 += complex(float64(idxOut), 0) * w
			idxOut += m
		}
	}

	fault.Visit(inj, fault.SiteOutputMemory, 0, dst, t.n, ds)

	// ---- Final CMCV over the whole output ----
	for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
		var cur checksum.Pair
		for g := 0; g < t.n; g++ {
			w := checksum.Omega3(g) * dst[g*ds]
			cur.D1 += w
			cur.D2 += complex(float64(g), 0) * w
		}
		d := outPair.Sub(cur)
		if cmplx.Abs(d.D1) <= th.EtaMemOut {
			return rep, nil
		}
		rep.Detections++
		if g, located := checksum.Locate(d, t.n); located {
			dst[g*ds] += d.D1 / checksum.Omega3(g)
			rep.MemCorrections++
			continue
		}
		// Locate failed (e.g. two hits in the same array): second-level
		// recovery is possible because the intermediate is intact, but a
		// multi-error repair is out of the single-fault model — recompute
		// the whole second stage.
		if !t.recomputeStage2(dst, ck, &outPair, th, &rep) {
			rep.Uncorrectable = true
			return rep, ErrUncorrectable
		}
	}
	rep.Uncorrectable = true
	return rep, ErrUncorrectable
}

// recomputeStage2 re-runs the whole second layer from the intact
// intermediate, rebuilding the output pair. Used as second-level recovery
// when the final output verification cannot locate a single repairable
// element.
func (t *Transformer) recomputeStage2(dst []complex128, ck []complex128, outPair *checksum.Pair, th Thresholds, rep *Report) bool {
	m, k := t.m, t.k
	ds := t.ds
	*outPair = checksum.Pair{}
	for j := 0; j < m; j++ {
		gather(t.bufA[:k], t.work[j:], k, m)
		t.dmrTwiddle(t.bufB[:k], t.bufA[:k], t.twiddle[j:], m, rep)
		cx2 := checksum.Dot(ck, t.bufB[:k])
		ok := false
		for attempt := 0; attempt <= t.cfg.maxRetries(); attempt++ {
			t.planK.Execute(t.bufC[:k], t.bufB[:k])
			if ccvPass(checksum.DotOmega3(t.bufC[:k]), cx2, th.Eta2, k) {
				ok = true
				break
			}
			rep.Detections++
			rep.CompRecomputations++
		}
		if !ok {
			return false
		}
		idxOut := j
		for j1 := 0; j1 < k; j1++ {
			v := t.bufC[j1]
			dst[idxOut*ds] = v
			w := checksum.Omega3(idxOut) * v
			outPair.D1 += w
			outPair.D2 += complex(float64(idxOut), 0) * w
			idxOut += m
		}
	}
	rep.CompRecomputations++
	return true
}

// classicPairTwoPass computes the classic memory checksums S₁ = Σ x_j and
// S₂ = Σ j·x_j in two separate passes, as the un-optimized scheme does.
func classicPairTwoPass(x []complex128) checksum.Pair {
	var s1 complex128
	for _, v := range x {
		s1 += v
	}
	var s2 complex128
	for j, v := range x {
		s2 += complex(float64(j), 0) * v
	}
	return checksum.Pair{D1: s1, D2: s2}
}

// classicPairStridedTwoPass is classicPairTwoPass over a strided block.
func classicPairStridedTwoPass(x []complex128, n, stride int) checksum.Pair {
	var s1 complex128
	idx := 0
	for j := 0; j < n; j++ {
		s1 += x[idx]
		idx += stride
	}
	var s2 complex128
	idx = 0
	for j := 0; j < n; j++ {
		s2 += complex(float64(j), 0) * x[idx]
		idx += stride
	}
	return checksum.Pair{D1: s1, D2: s2}
}

// verifyClassic recomputes the classic pair of x (same order as generation,
// so the comparison is exact in the fault-free case) and repairs a single
// corrupted element in place. It returns false when repair failed.
func (t *Transformer) verifyClassic(x []complex128, stored *checksum.Pair, rep *Report) bool {
	cur := classicPairTwoPass(x)
	d := stored.Sub(cur)
	if d.D1 == 0 && d.D2 == 0 {
		return true
	}
	rep.Detections++
	j, ok := checksum.Locate(d, len(x))
	if !ok {
		return false
	}
	x[j] += d.D1
	rep.MemCorrections++
	// The repair rounds (x'_j + Δ ≠ x_j bitwise), so the re-verification
	// tolerates round-off relative to the correction magnitude.
	tol := 1e-9 * (1 + cmplx.Abs(stored.D1) + cmplx.Abs(d.D1))
	cur = classicPairTwoPass(x)
	d = stored.Sub(cur)
	return cmplx.Abs(d.D1) <= tol
}

// verifyClassicStrided is verifyClassic over a strided block.
func (t *Transformer) verifyClassicStrided(x []complex128, n, stride int, stored *checksum.Pair, rep *Report) bool {
	cur := classicPairStridedTwoPass(x, n, stride)
	d := stored.Sub(cur)
	if d.D1 == 0 && d.D2 == 0 {
		return true
	}
	rep.Detections++
	j, ok := checksum.Locate(d, n)
	if !ok {
		return false
	}
	x[j*stride] += d.D1
	rep.MemCorrections++
	tol := 1e-9 * (1 + cmplx.Abs(stored.D1) + cmplx.Abs(d.D1))
	cur = classicPairStridedTwoPass(x, n, stride)
	d = stored.Sub(cur)
	return cmplx.Abs(d.D1) <= tol
}
