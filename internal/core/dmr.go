package core

import (
	"ftfft/internal/checksum"
	"ftfft/internal/fault"
)

// dmrCheckVector computes the input checksum vector rA of size n with double
// modular redundancy, as Algorithm 2 prescribes: the vector is computed
// twice and compared; a disagreement triggers a third computation and a
// majority vote. The fault model (§3.2) assumes faults do not strike during
// checksum generation itself, so no injection site is visited here — the DMR
// cost is what matters for the overhead measurements.
func (t *Transformer) dmrCheckVector(n int, rep *Report) []complex128 {
	a := checksum.CheckVector(n)
	b := checksum.CheckVector(n)
	for i := range a {
		if a[i] != b[i] {
			rep.Detections++
			c := checksum.CheckVector(n)
			// Majority vote: the recomputation is deterministic, so the
			// third run agrees with whichever copy was clean.
			if b[i] == c[i] {
				a[i] = b[i]
			}
			rep.TwiddleCorrections++
			break
		}
	}
	return a
}

// dmrTwiddle computes dst[i] = src[i] · tw[i·twStride] for i in [0, len(dst))
// with DMR: first pass computes, the injector may strike the result, the
// second pass recomputes and compares, and any mismatch is resolved by a
// third computation with majority voting (§3.1).
func (t *Transformer) dmrTwiddle(dst, src, tw []complex128, twStride int, rep *Report) {
	n := len(dst)
	ti := 0
	for i := 0; i < n; i++ {
		dst[i] = src[i] * tw[ti]
		ti += twStride
	}
	fault.Visit(t.cfg.Injector, fault.SiteTwiddle, 0, dst, n, 1)
	ti = 0
	for i := 0; i < n; i++ {
		v2 := src[i] * tw[ti]
		if dst[i] != v2 {
			rep.Detections++
			v3 := src[i] * tw[ti]
			if v2 == v3 {
				dst[i] = v2
			}
			rep.TwiddleCorrections++
		}
		ti += twStride
	}
}
