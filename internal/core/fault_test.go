package core

import (
	"errors"
	"math/rand"
	"testing"

	"ftfft/internal/dft"
	"ftfft/internal/fault"
)

// protectedConfigs enumerates the fault-tolerant configurations.
func protectedConfigs(memOnly bool) []Config {
	all := allConfigs()[1:]
	if !memOnly {
		return all
	}
	var out []Config
	for _, c := range all {
		if c.MemoryFT {
			out = append(out, c)
		}
	}
	return out
}

// runWithFaults executes one protected transform of size n with the given
// schedule and verifies (a) the fault actually fired, (b) the transform
// recovered, and (c) the output matches the reference.
func runWithFaults(t *testing.T, n int, cfg Config, sched *fault.Schedule, wantDetect bool) Report {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	x := randomVec(rng, n)
	want := dft.Transform(x)

	cfg.Injector = sched
	tr, err := New(n, cfg)
	if err != nil {
		t.Fatalf("%s: New: %v", cfgName(cfg), err)
	}
	dst := make([]complex128, n)
	src := append([]complex128(nil), x...)
	rep, err := tr.Transform(dst, src)
	if err != nil {
		t.Fatalf("%s: Transform failed: %v (report %+v)", cfgName(cfg), err, rep)
	}
	if !sched.AllFired() {
		t.Fatalf("%s: scheduled fault did not fire (records %d)", cfgName(cfg), len(sched.Records()))
	}
	if wantDetect && rep.Clean() {
		t.Fatalf("%s: fault fired but report is clean", cfgName(cfg))
	}
	tol := 1e-7 * float64(n) * (1 + maxAbs(want))
	if d := maxAbsDiff(dst, want); d > tol {
		t.Fatalf("%s: output corrupted after recovery: diff %g > %g (report %+v)",
			cfgName(cfg), d, tol, rep)
	}
	return rep
}

func TestComputationalFaultStage1Recovered(t *testing.T) {
	n := 1024
	for _, cfg := range protectedConfigs(false) {
		site := fault.SiteSubFFT1
		occ := 2
		if cfg.Scheme == Offline {
			site = fault.SiteFullFFT
			occ = 1 // the offline scheme visits this site once per attempt
		}
		sched := fault.NewSchedule(1, fault.Fault{
			Site: site, Rank: -1, Occurrence: occ, Index: 5,
			Mode: fault.AddConstant, Value: 1.5,
		})
		rep := runWithFaults(t, n, cfg, sched, true)
		if cfg.Scheme == Online && rep.CompRecomputations == 0 {
			t.Errorf("%s: expected a sub-FFT recomputation, got %+v", cfgName(cfg), rep)
		}
		if cfg.Scheme == Offline && rep.FullRestarts == 0 {
			t.Errorf("%s: expected a full restart, got %+v", cfgName(cfg), rep)
		}
	}
}

func TestComputationalFaultStage2Recovered(t *testing.T) {
	n := 1024
	for _, cfg := range protectedConfigs(false) {
		if cfg.Scheme != Online {
			continue
		}
		sched := fault.NewSchedule(2, fault.Fault{
			Site: fault.SiteSubFFT2, Rank: -1, Occurrence: 7, Index: -1,
			Mode: fault.AddConstant, Value: -2.25,
		})
		rep := runWithFaults(t, n, cfg, sched, true)
		if rep.CompRecomputations == 0 {
			t.Errorf("%s: expected recomputation, got %+v", cfgName(cfg), rep)
		}
	}
}

func TestTwiddleFaultCorrectedByDMR(t *testing.T) {
	n := 1024
	for _, cfg := range protectedConfigs(false) {
		if cfg.Scheme != Online {
			continue
		}
		sched := fault.NewSchedule(3, fault.Fault{
			Site: fault.SiteTwiddle, Rank: -1, Occurrence: 3, Index: -1,
			Mode: fault.AddConstant, Value: 3.5,
		})
		rep := runWithFaults(t, n, cfg, sched, true)
		if rep.TwiddleCorrections == 0 {
			t.Errorf("%s: expected a DMR correction, got %+v", cfgName(cfg), rep)
		}
	}
}

func TestInputMemoryFaultRecovered(t *testing.T) {
	n := 1024
	for _, cfg := range protectedConfigs(true) {
		sched := fault.NewSchedule(4, fault.Fault{
			Site: fault.SiteInputMemory, Rank: -1, Index: 137,
			Mode: fault.SetConstant, Value: 42,
		})
		rep := runWithFaults(t, n, cfg, sched, true)
		if rep.MemCorrections == 0 {
			t.Errorf("%s: expected a memory correction, got %+v", cfgName(cfg), rep)
		}
	}
}

func TestIntermediateMemoryFaultRecovered(t *testing.T) {
	n := 1024
	for _, cfg := range protectedConfigs(true) {
		if cfg.Scheme != Online {
			continue // the offline scheme has no intermediate site
		}
		sched := fault.NewSchedule(5, fault.Fault{
			Site: fault.SiteIntermediateMemory, Rank: -1, Index: 600,
			Mode: fault.AddConstant, Value: 17,
		})
		rep := runWithFaults(t, n, cfg, sched, true)
		if rep.MemCorrections == 0 {
			t.Errorf("%s: expected a memory correction, got %+v", cfgName(cfg), rep)
		}
	}
}

func TestOutputMemoryFaultRecovered(t *testing.T) {
	n := 1024
	for _, cfg := range protectedConfigs(true) {
		if cfg.Scheme != Online {
			continue
		}
		sched := fault.NewSchedule(6, fault.Fault{
			Site: fault.SiteOutputMemory, Rank: -1, Index: 1001,
			Mode: fault.AddConstant, Value: -9,
		})
		rep := runWithFaults(t, n, cfg, sched, true)
		if rep.MemCorrections == 0 && rep.CompRecomputations == 0 {
			t.Errorf("%s: expected recovery activity, got %+v", cfgName(cfg), rep)
		}
	}
}

// TestPaperFaultMixes reproduces the Table 1 fault mixes (1c, 1m+1c, 1m+2c)
// on the optimized online scheme.
func TestPaperFaultMixes(t *testing.T) {
	n := 4096
	cfg := Config{Scheme: Online, Variant: Optimized, MemoryFT: true}
	mixes := map[string][]fault.Fault{
		"1c": {
			{Site: fault.SiteSubFFT1, Rank: -1, Occurrence: 4, Index: 3, Mode: fault.AddConstant, Value: 2},
		},
		"1m+1c": {
			{Site: fault.SiteInputMemory, Rank: -1, Index: 77, Mode: fault.SetConstant, Value: 5},
			{Site: fault.SiteSubFFT2, Rank: -1, Occurrence: 9, Index: 2, Mode: fault.AddConstant, Value: 2},
		},
		"1m+2c": {
			{Site: fault.SiteIntermediateMemory, Rank: -1, Index: 1234, Mode: fault.AddConstant, Value: 4},
			{Site: fault.SiteSubFFT1, Rank: -1, Occurrence: 11, Index: 0, Mode: fault.AddConstant, Value: 2},
			{Site: fault.SiteSubFFT2, Rank: -1, Occurrence: 30, Index: 1, Mode: fault.AddConstant, Value: -3},
		},
	}
	for name, faults := range mixes {
		sched := fault.NewSchedule(7, faults...)
		rep := runWithFaults(t, n, cfg, sched, true)
		if rep.Detections < len(faults)-1 {
			t.Errorf("mix %s: only %d detections for %d faults: %+v", name, rep.Detections, len(faults), rep)
		}
	}
}

// TestCompOnlySchemesIgnoreMemoryFaults documents the scope boundary: without
// MemoryFT, faults striking resident data are not in the fault model and the
// output is silently wrong — exactly why §3.2 exists.
func TestCompOnlySchemesIgnoreMemoryFaults(t *testing.T) {
	n := 1024
	rng := rand.New(rand.NewSource(8))
	x := randomVec(rng, n)
	want := dft.Transform(x)
	cfg := Config{Scheme: Online, Variant: Optimized, MemoryFT: false}
	sched := fault.NewSchedule(9, fault.Fault{
		Site: fault.SiteInputMemory, Rank: -1, Index: 100,
		Mode: fault.SetConstant, Value: 1000,
	})
	cfg.Injector = sched
	tr, _ := New(n, cfg)
	dst := make([]complex128, n)
	src := append([]complex128(nil), x...)
	if _, err := tr.Transform(dst, src); err != nil {
		t.Fatal(err)
	}
	if !sched.AllFired() {
		t.Fatal("fault did not fire")
	}
	if maxAbsDiff(dst, want) < 1 {
		t.Fatal("memory fault should have corrupted an unprotected run")
	}
}

// TestRetryBudgetExhaustion: a fault that re-fires on every recomputation
// must eventually surface as ErrUncorrectable rather than looping forever.
type alwaysCorrupt struct{ site fault.Site }

func (a alwaysCorrupt) Visit(site fault.Site, rank int, data []complex128, n, stride int) bool {
	if site != a.site || n == 0 {
		return false
	}
	data[0] += 100
	return true
}

func TestRetryBudgetExhaustion(t *testing.T) {
	n := 256
	for _, cfg := range []Config{
		{Scheme: Online, Variant: Optimized, Injector: alwaysCorrupt{fault.SiteSubFFT1}, MaxRetries: 2},
		{Scheme: Offline, Variant: Optimized, Injector: alwaysCorrupt{fault.SiteFullFFT}, MaxRetries: 2},
	} {
		tr, err := New(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(10))
		src := randomVec(rng, n)
		dst := make([]complex128, n)
		rep, err := tr.Transform(dst, src)
		if !errors.Is(err, ErrUncorrectable) {
			t.Fatalf("%s: want ErrUncorrectable, got %v", cfgName(cfg), err)
		}
		if !rep.Uncorrectable {
			t.Fatalf("%s: report not marked uncorrectable: %+v", cfgName(cfg), rep)
		}
	}
}

// TestBitFlipFaultsTable6Style injects single high-bit flips into the input
// (the Table 6 fault model) and checks the optimized online scheme repairs
// them.
func TestBitFlipFaultsTable6Style(t *testing.T) {
	n := 1024
	cfg := Config{Scheme: Online, Variant: Optimized, MemoryFT: true}
	for _, bit := range []int{52, 55, 58, 61} {
		sched := fault.NewSchedule(int64(bit), fault.Fault{
			Site: fault.SiteInputMemory, Rank: -1, Index: -1,
			Mode: fault.BitFlip, Bit: bit,
		})
		rep := runWithFaults(t, n, cfg, sched, true)
		if rep.MemCorrections == 0 {
			t.Errorf("bit %d: expected a memory correction, got %+v", bit, rep)
		}
	}
}

func TestOfflineMemoryFaultCostsARestart(t *testing.T) {
	// The Table 1 signature: Opt-Offline pays a full restart for one memory
	// fault, while Opt-Online repairs it without restarting anything.
	n := 4096
	schedOff := fault.NewSchedule(11, fault.Fault{
		Site: fault.SiteInputMemory, Rank: -1, Index: 1000, Mode: fault.SetConstant, Value: 3,
	})
	repOff := runWithFaults(t, n, Config{Scheme: Offline, Variant: Optimized, MemoryFT: true}, schedOff, true)
	if repOff.FullRestarts == 0 {
		t.Errorf("offline: expected full restart, got %+v", repOff)
	}
	schedOn := fault.NewSchedule(11, fault.Fault{
		Site: fault.SiteInputMemory, Rank: -1, Index: 1000, Mode: fault.SetConstant, Value: 3,
	})
	repOn := runWithFaults(t, n, Config{Scheme: Online, Variant: Optimized, MemoryFT: true}, schedOn, true)
	if repOn.FullRestarts != 0 {
		t.Errorf("online: should not need a full restart: %+v", repOn)
	}
}
