// Package core implements the paper's primary contribution: offline and
// online algorithm-based fault tolerance for FFT, with and without memory
// protection, in their naive and optimized variants.
//
// The sequential schemes all share the same two-layer Cooley-Tukey substrate
// (paper Eq. 2 with N = m·k): k m-point sub-FFTs over stride-k sub-vectors,
// a twiddle multiplication, and m k-point sub-FFTs over the columns of the
// k×m intermediate. What differs between schemes is where checksums are
// generated and verified:
//
//   - Offline (Algorithm 1): one input checksum vector of size N, one
//     verification after the whole transform; errors force a full restart.
//   - Online (Algorithm 2): per-sub-FFT checksums at both layers with the
//     twiddle stage under DMR; errors are detected right after the sub-FFT
//     they strike and recovered by recomputing O(√N) work.
//   - MemoryFT adds the §3.2 weighted location/correction checksums, in the
//     Fig. 2 hierarchy (naive) or the Fig. 3 optimized hierarchy (CMCG/CMCV
//     dual-use checksums, verification postponing, incremental generation,
//     contiguous buffering).
package core

import (
	"ftfft/internal/fault"
	"ftfft/internal/fft"
)

// Scheme selects the protection protocol.
type Scheme int

const (
	// Plain is the unprotected baseline ("FFTW" in the figures): the same
	// two-layer substrate with no checksum work at all.
	Plain Scheme = iota
	// Offline is Algorithm 1: verify once, after the transform.
	Offline
	// Online is Algorithm 2: verify every sub-FFT as it completes.
	Online
)

func (s Scheme) String() string {
	switch s {
	case Plain:
		return "plain"
	case Offline:
		return "offline"
	case Online:
		return "online"
	default:
		return "unknown-scheme"
	}
}

// Variant selects between the paper's naive formulation of a scheme and the
// §4/§7 optimized one.
type Variant int

const (
	// Naive pays the costs the paper's optimizations remove: trigonometric
	// checksum-vector evaluation, non-contiguous double reads, per-call
	// checksum-vector regeneration, and (with MemoryFT) the Fig. 2 protocol
	// that generates and verifies every intermediate element twice.
	Naive Variant = iota
	// Optimized applies §4.1–§4.4: closed-form incremental rA, dual-use
	// modified checksums, verification postponing, incremental generation,
	// and contiguous gather buffers.
	Optimized
)

func (v Variant) String() string {
	if v == Naive {
		return "naive"
	}
	return "optimized"
}

// Config parameterizes a Transformer.
type Config struct {
	Scheme  Scheme
	Variant Variant
	// MemoryFT enables the §3.2 memory-fault protection on top of the
	// computational protection.
	MemoryFT bool
	// Injector, when non-nil, is consulted at every fault site; nil means
	// fault-free execution.
	Injector fault.Injector
	// Thresholds overrides the automatically derived detection thresholds.
	Thresholds *Thresholds
	// EtaScale multiplies all automatically derived thresholds
	// (experiments use it to trade throughput against coverage). 0 means 1.
	EtaScale float64
	// BatchSize is s, the number of second-layer k-point FFTs processed
	// per batch (Fig. 2/3). 0 means a cache-friendly default.
	BatchSize int
	// MaxRetries caps recomputation attempts per protected unit before the
	// transform is declared uncorrectable. 0 means 3.
	MaxRetries int
	// Kernel forces the fft execution engine for the sub-FFT plans; the zero
	// value (fft.KernelAuto) keeps the planner's heuristic. Set by the
	// autotuner under measured tuning.
	Kernel fft.Kernel
	// ConvLen, when non-nil, chooses the Bluestein convolution length per
	// leaf size for the sub-FFT plans (see fft.PlanConfig.ConvLen); nil keeps
	// the heuristic chooser.
	ConvLen func(leaf int) int
}

// planConfig is the fft-level knob view of the Config.
func (c Config) planConfig() fft.PlanConfig {
	return fft.PlanConfig{Kernel: c.Kernel, ConvLen: c.ConvLen}
}

func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 8
}

func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 3
}

func (c Config) etaScale() float64 {
	if c.EtaScale > 0 {
		return c.EtaScale
	}
	return 1
}

// Thresholds holds the η values of §8. Zero values are filled from the
// round-off model at Transform time using the measured input RMS.
type Thresholds struct {
	// Eta1 guards first-layer (m-point) computational verifications.
	Eta1 float64
	// Eta2 guards second-layer (k-point) computational verifications.
	Eta2 float64
	// EtaOffline guards the single offline verification.
	EtaOffline float64
	// EtaMemCross guards memory verifications whose recomputation uses a
	// different summation order than generation (the Fig. 3 incremental
	// checksums); same-order verifications compare exactly.
	EtaMemCross float64
	// EtaMemOut guards the final whole-output verification.
	EtaMemOut float64
}

// Report summarizes what a protected transform observed and did.
type Report struct {
	// Detections counts checksum mismatches observed (before recovery).
	Detections int
	// CompRecomputations counts sub-FFT (online) re-executions.
	CompRecomputations int
	// MemCorrections counts elements located and repaired in place.
	MemCorrections int
	// TwiddleCorrections counts DMR mismatches resolved by re-execution.
	TwiddleCorrections int
	// FullRestarts counts whole-transform re-runs (offline scheme).
	FullRestarts int
	// Uncorrectable is set when MaxRetries was exhausted; the output must
	// not be trusted.
	Uncorrectable bool
}

// Add accumulates r2 into r.
func (r *Report) Add(r2 Report) {
	r.Detections += r2.Detections
	r.CompRecomputations += r2.CompRecomputations
	r.MemCorrections += r2.MemCorrections
	r.TwiddleCorrections += r2.TwiddleCorrections
	r.FullRestarts += r2.FullRestarts
	r.Uncorrectable = r.Uncorrectable || r2.Uncorrectable
}

// Clean reports whether no fault activity of any kind was recorded.
func (r *Report) Clean() bool {
	return r.Detections == 0 && r.CompRecomputations == 0 && r.MemCorrections == 0 &&
		r.TwiddleCorrections == 0 && r.FullRestarts == 0 && !r.Uncorrectable
}
