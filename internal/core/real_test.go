package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ftfft/internal/dft"
	"ftfft/internal/fault"
)

func realConfigs() map[string]Config {
	return map[string]Config{
		"plain":         {Scheme: Plain},
		"offline":       {Scheme: Offline, Variant: Optimized},
		"online":        {Scheme: Online, Variant: Optimized},
		"online-memory": {Scheme: Online, Variant: Optimized, MemoryFT: true},
	}
}

// TestRealTransformerMatchesReference checks the packed half-length real path
// against the O(n²) real reference DFT, and the inverse against a perfect
// round trip, across even sizes and protection schemes.
func TestRealTransformerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, cfg := range realConfigs() {
		for _, n := range []int{2, 4, 8, 16, 24, 64, 200, 256, 1024} {
			r, err := NewReal(n, cfg)
			if err != nil {
				if cfg.Scheme == Online && (n/2 < 4 || isPrimeT(n/2)) {
					continue // online needs a composite inner size
				}
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			src := make([]float64, n)
			for i := range src {
				src[i] = rng.Float64()*2 - 1
			}
			want := dft.RealTransform(src)
			got := make([]complex128, r.SpectrumLen())
			rep, err := r.TransformContext(context.Background(), got, src)
			if err != nil {
				t.Fatalf("%s n=%d: forward: %v", name, n, err)
			}
			if !rep.Clean() {
				t.Fatalf("%s n=%d: fault activity on a fault-free run: %+v", name, n, rep)
			}
			tol := 1e-10 * float64(n) * (1 + maxAbsC(want))
			for i := range want {
				if d := cAbs(got[i] - want[i]); d > tol {
					t.Fatalf("%s n=%d: spectrum[%d] off by %g (tol %g)", name, n, i, d, tol)
				}
			}
			if imag(got[0]) != 0 || imag(got[n/2]) != 0 {
				t.Fatalf("%s n=%d: X_0/X_{n/2} not purely real: %v %v", name, n, got[0], got[n/2])
			}
			back := make([]float64, n)
			if _, err := r.InverseContext(context.Background(), back, got); err != nil {
				t.Fatalf("%s n=%d: inverse: %v", name, n, err)
			}
			for i := range src {
				if d := math.Abs(back[i] - src[i]); d > tol {
					t.Fatalf("%s n=%d: round trip sample %d off by %g (tol %g)", name, n, i, d, tol)
				}
			}
		}
	}
}

// TestRealTransformerFaults injects arithmetic and memory faults at the inner
// complex transform's sites and checks the protected real path detects and
// corrects them — the half-length trick must not weaken the scheme.
func TestRealTransformerFaults(t *testing.T) {
	const n = 512 // inner size 256 = 16×16
	src := make([]float64, n)
	rng := rand.New(rand.NewSource(11))
	for i := range src {
		src[i] = rng.Float64()*2 - 1
	}
	want := dft.RealTransform(src)

	cases := map[string]struct {
		cfg   Config
		fault fault.Fault
	}{
		"online-arithmetic": {
			Config{Scheme: Online, Variant: Optimized},
			fault.Fault{Site: fault.SiteSubFFT1, Rank: -1, Index: 3, Mode: fault.AddConstant, Value: 40},
		},
		"online-memory": {
			Config{Scheme: Online, Variant: Optimized, MemoryFT: true},
			fault.Fault{Site: fault.SiteInputMemory, Rank: -1, Index: 5, Mode: fault.SetConstant, Value: 9},
		},
	}
	for name, tc := range cases {
		cfg := tc.cfg
		cfg.Injector = fault.NewSchedule(1, tc.fault)
		r, err := NewReal(n, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := make([]complex128, r.SpectrumLen())
		rep, err := r.TransformContext(context.Background(), got, src)
		if err != nil {
			t.Fatalf("%s: forward under fault: %v", name, err)
		}
		if rep.Clean() {
			t.Fatalf("%s: injected fault left no trace in the report: %+v", name, rep)
		}
		tol := 1e-9 * float64(n) * (1 + maxAbsC(want))
		for i := range want {
			if d := cAbs(got[i] - want[i]); d > tol {
				t.Fatalf("%s: spectrum[%d] not corrected: off by %g (tol %g)", name, i, d, tol)
			}
		}
	}
}

// TestNewRealRejects pins the construction contract.
func TestNewRealRejects(t *testing.T) {
	if _, err := NewReal(7, Config{Scheme: Plain}); err == nil {
		t.Error("odd size accepted")
	}
	if _, err := NewReal(0, Config{Scheme: Plain}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewReal(6, Config{Scheme: Online, Variant: Optimized}); err == nil {
		t.Error("online with prime inner size accepted")
	}
}

func isPrimeT(n int) bool {
	if n < 2 {
		return true
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func maxAbsC(a []complex128) float64 {
	m := 0.0
	for _, z := range a {
		if v := cAbs(z); v > m {
			m = v
		}
	}
	return m
}

func cAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }
