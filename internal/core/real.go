package core

import (
	"context"
	"fmt"
)

// RealTransformer computes protected real-input transforms via the classic
// half-length trick: the 2m real samples are packed into an m-point complex
// vector z_t = x_{2t} + i·x_{2t+1}, one protected m-point complex transform
// produces Z, and an O(n) untangling recovers the half spectrum
// X_0..X_m (the upper half is determined by conjugate symmetry,
// X_{n-k} = conj(X_k), and is not stored).
//
// Protection semantics: the inner complex transform carries the full ABFT
// machinery — every fault site of the configured scheme is visited and
// repaired exactly as in the complex path, over half the points. The
// pack/untangle steps are deterministic O(n) arithmetic with no new fault
// sites; they sit outside the protected region the paper's schemes model
// (like the caller's own data movement).
//
// Like Transformer, a RealTransformer owns its working storage and is NOT
// safe for concurrent use; create one per goroutine.
type RealTransformer struct {
	n  int // real length (even)
	m  int // n/2 — the inner complex transform size
	tr *Transformer

	// tw[k] = ω_n^k for k in [0, m/2]: the untangling twiddles. The inverse
	// path uses their conjugates.
	tw []complex128

	packed []complex128 // packed input / retangled spectrum, length m
	spec   []complex128 // inner transform output, length m
}

// NewReal builds a RealTransformer for n-point real transforms under cfg.
// n must be even and ≥ 2; online schemes additionally need the half length
// n/2 to be composite and ≥ 4 (the two-layer decomposition runs on the
// inner complex transform).
func NewReal(n int, cfg Config) (*RealTransformer, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("core: real transforms need an even size ≥ 2, got %d", n)
	}
	m := n / 2
	tr, err := New(m, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: real transform of %d points (inner size %d): %w", n, m, err)
	}
	r := &RealTransformer{n: n, m: m, tr: tr}
	r.tw = make([]complex128, m/2+1)
	for k := range r.tw {
		r.tw[k] = omegaN(n, k)
	}
	r.packed = make([]complex128, m)
	r.spec = make([]complex128, m)
	return r, nil
}

// N returns the real transform length.
func (r *RealTransformer) N() int { return r.n }

// SpectrumLen returns the stored half-spectrum length, n/2 + 1.
func (r *RealTransformer) SpectrumLen() int { return r.m + 1 }

// TransformContext computes the half spectrum X_0..X_{n/2} of the real src
// into dst. dst needs SpectrumLen() elements; src needs N(). X_0 and X_{n/2}
// are real (zero imaginary part by construction).
func (r *RealTransformer) TransformContext(ctx context.Context, dst []complex128, src []float64) (Report, error) {
	if len(dst) < r.m+1 || len(src) < r.n {
		return Report{}, fmt.Errorf("core: real transform buffers too short: dst=%d src=%d, need %d and %d", len(dst), len(src), r.m+1, r.n)
	}
	for t := 0; t < r.m; t++ {
		r.packed[t] = complex(src[2*t], src[2*t+1])
	}
	rep, err := r.tr.TransformContext(ctx, r.spec, r.packed)
	if err != nil {
		return rep, err
	}
	r.untangle(dst)
	return rep, nil
}

// untangle recovers X_0..X_m from the packed spectrum Z in r.spec. With
// A = Z_k and B = conj(Z_{m-k}), the even/odd sub-spectra are
// E_k = (A+B)/2 and O_k = -i·(A-B)/2, and X_k = E_k + ω_n^k·O_k,
// X_{m-k} = conj(E_k - ω_n^k·O_k). The self-paired k = m/2 entry satisfies
// both identities at once, so the loop runs through it unguarded.
func (r *RealTransformer) untangle(dst []complex128) {
	m := r.m
	z0 := r.spec[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[m] = complex(real(z0)-imag(z0), 0)
	for k := 1; 2*k <= m; k++ {
		a := r.spec[k]
		b := conjc(r.spec[m-k])
		u := (a + b) * 0.5
		hd := (a - b) * 0.5
		v := r.tw[k] * complex(imag(hd), -real(hd)) // ω_n^k · (-i·(A-B)/2)
		dst[k] = u + v
		dst[m-k] = conjc(u - v)
	}
}

// InverseContext computes the n real samples whose half spectrum is src:
// dst_t = (1/n)·Σ_j X_j·ω_n^{-jt} with X extended by conjugate symmetry.
// src needs SpectrumLen() elements (only X_0..X_{n/2}; the imaginary parts
// of X_0 and X_{n/2} are ignored, as conjugate symmetry forces them to
// zero); dst needs N(). The inner protected transform runs through the same
// conjugation identity the complex inverse path uses, so the ABFT machinery
// guards the inverse too.
func (r *RealTransformer) InverseContext(ctx context.Context, dst []float64, src []complex128) (Report, error) {
	if len(dst) < r.n || len(src) < r.m+1 {
		return Report{}, fmt.Errorf("core: real inverse buffers too short: dst=%d src=%d, need %d and %d", len(dst), len(src), r.n, r.m+1)
	}
	m := r.m
	// Retangle into conj(Z) directly (the conjugation-identity inverse
	// transforms conj(Z)): E_k = (A+B)/2, O_k = conj(ω_n^k)·(A-B)/2 with
	// A = X_k, B = conj(X_{m-k}); Z_k = E_k + i·O_k and
	// Z_{m-k} = conj(E_k) + i·conj(O_k).
	e0 := (real(src[0]) + real(src[m])) * 0.5
	o0 := (real(src[0]) - real(src[m])) * 0.5
	r.packed[0] = complex(e0, -o0) // conj(E_0 + i·O_0)
	for k := 1; 2*k <= m; k++ {
		a := src[k]
		b := conjc(src[m-k])
		e := (a + b) * 0.5
		o := conjc(r.tw[k]) * (a - b) * 0.5
		r.packed[k] = conjc(e + complex(-imag(o), real(o))) // conj(E + i·O)
		r.packed[m-k] = e + complex(imag(o), -real(o))      // conj(Z_{m-k}) = E - i·O
	}
	rep, err := r.tr.TransformContext(ctx, r.spec, r.packed)
	if err != nil {
		return rep, err
	}
	// z = conj(F(conj(Z)))/m; unpack x_{2t} = Re z_t, x_{2t+1} = Im z_t.
	inv := 1 / float64(m)
	for t := 0; t < m; t++ {
		dst[2*t] = real(r.spec[t]) * inv
		dst[2*t+1] = -imag(r.spec[t]) * inv
	}
	return rep, nil
}

func conjc(z complex128) complex128 { return complex(real(z), -imag(z)) }
