// Package exec is the shared, bounded execution runtime beneath every
// concurrency mechanism in the library: simulated-MPI rank fan-out
// (internal/mpi, internal/parallel), 2-D row/column pass dispatch, and
// ForwardBatch item scheduling all draw their goroutines from one Pool
// instead of spawning their own.
//
// The design goal is the serving scenario: M simultaneous callers sharing
// plans must not multiply into M·p runnable goroutines. A Pool holds a fixed
// budget of worker permits; worker goroutines are spawned lazily, parked
// when idle, and reused across tasks, so the process-wide goroutine count
// attributable to a pool stays within its budget regardless of caller count.
// Callers that arrive when the budget is exhausted queue in admission order
// instead of thundering the scheduler.
//
// Two submission shapes cover every use in the library:
//
//   - Run executes n independent items with bounded width. The calling
//     goroutine always participates, so Run makes progress even at
//     saturation and nested Runs degrade to inline execution instead of
//     deadlocking.
//   - Gang atomically admits n co-scheduled tasks that may block on each
//     other (communicating ranks). Atomic admission prevents the partial-
//     gang deadlock where two fan-outs each hold half their workers.
//
// Every task runs with panic containment (a panicking task surfaces as a
// *PanicError instead of killing the process) and receives the submitter's
// context for cancellation.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is a bounded work-queue executor. The zero value is not usable; use
// New or Default. A Pool is safe for concurrent use and never shrinks: idle
// workers stay parked (budget-bounded) so steady-state dispatch reuses warm
// goroutines instead of spawning.
type Pool struct {
	workers int

	mu      sync.Mutex
	avail   int           // free worker permits
	idle    []chan func() // parked worker mailboxes
	spawned int           // live worker goroutines (running + parked)
	waiters []*waiter     // FIFO admission queue (gang acquisitions)
	closed  bool          // Close called: workers exit instead of parking
}

// waiter is one queued admission request for need permits.
type waiter struct {
	need  int
	ready chan struct{}
}

// New creates a pool with a fixed budget of workers goroutines (values < 1
// are clamped to 1). Workers are spawned lazily on first use and retained
// parked for the pool's lifetime.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers, avail: workers}
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide pool, sized to runtime.GOMAXPROCS(0) at
// first use. Every plan that is not given a private pool dispatches here, so
// the whole process shares one worker budget.
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = New(runtime.GOMAXPROCS(0))
	})
	return defaultPool
}

// Workers returns the pool's worker budget.
func (p *Pool) Workers() int { return p.workers }

// PanicError is a contained task panic: the recovered value and the stack of
// the panicking task, surfaced as an ordinary error by Run or Gang.Wait.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: task panicked: %v\n%s", e.Value, e.Stack)
}

// protect invokes fn with panic containment.
func protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// ---------------------------------------------------------------- admission

// acquire blocks until need permits are free (FIFO among acquirers) or ctx
// is canceled. need is clamped by callers to ≤ workers.
func (p *Pool) acquire(ctx context.Context, need int) error {
	p.mu.Lock()
	if len(p.waiters) == 0 && p.avail >= need {
		p.avail -= need
		p.mu.Unlock()
		return nil
	}
	w := &waiter{need: need, ready: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		granted := true
		for i, q := range p.waiters {
			if q == w {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				granted = false
				break
			}
		}
		if granted {
			// The grant raced the cancellation: hand the permits straight
			// back so the queue keeps moving.
			p.avail += need
			p.grantLocked()
		}
		p.mu.Unlock()
		return ctx.Err()
	}
}

// tryAcquire takes one permit without queueing. It fails when the pool is
// exhausted or when gangs are waiting (best-effort helpers must not starve
// queued admissions).
func (p *Pool) tryAcquire() bool {
	p.mu.Lock()
	ok := len(p.waiters) == 0 && p.avail > 0
	if ok {
		p.avail--
	}
	p.mu.Unlock()
	return ok
}

// grantLocked admits queued waiters in FIFO order while permits suffice.
// Head-of-line blocking is deliberate: it guarantees large gangs are not
// starved by a stream of small acquisitions.
func (p *Pool) grantLocked() {
	for len(p.waiters) > 0 && p.avail >= p.waiters[0].need {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.avail -= w.need
		close(w.ready)
	}
}

// release returns n permits and wakes admissible waiters.
func (p *Pool) release(n int) {
	p.mu.Lock()
	p.avail += n
	p.grantLocked()
	p.mu.Unlock()
}

// ---------------------------------------------------------------- dispatch

// dispatch hands fn to a parked worker, spawning one only when none is
// parked. The caller must hold one permit; the worker releases it when fn
// returns and then parks for reuse.
func (p *Pool) dispatch(fn func()) {
	p.mu.Lock()
	if k := len(p.idle); k > 0 {
		ch := p.idle[k-1]
		p.idle[k-1] = nil
		p.idle = p.idle[:k-1]
		p.mu.Unlock()
		ch <- fn
		return
	}
	p.spawned++
	p.mu.Unlock()
	ch := make(chan func(), 1)
	ch <- fn
	go p.worker(ch)
}

// worker is one pooled goroutine: run a task, release its permit, park —
// or exit instead of parking once the pool is closed.
func (p *Pool) worker(ch chan func()) {
	for fn := range ch {
		fn()
		p.mu.Lock()
		if p.closed {
			p.spawned--
			p.avail++
			p.grantLocked()
			p.mu.Unlock()
			return
		}
		p.idle = append(p.idle, ch)
		p.avail++
		p.grantLocked()
		p.mu.Unlock()
	}
}

// Close releases the pool's parked worker goroutines and stops future
// parking: workers finishing in-flight tasks exit instead of idling, so a
// discarded private pool reclaims its goroutines. Close is idempotent and
// non-blocking; the pool stays usable afterwards (dispatch reverts to
// spawn-per-task, trading reuse for reclaimability), so callers racing a
// Close remain correct.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.spawned -= len(idle)
	p.mu.Unlock()
	for _, ch := range idle {
		close(ch)
	}
}

// Spawned reports how many worker goroutines the pool has ever started
// (running + parked) — by construction never more than Workers().
func (p *Pool) Spawned() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spawned
}

// --------------------------------------------------------------- task groups

// groupRun is the shared state of one Run call.
type groupRun struct {
	ctx     context.Context
	fn      func(ctx context.Context, slot, item int) error
	items   int
	next    atomic.Int64
	failed  atomic.Bool
	errs    []error
	errItem []int
}

// loop drains items on one slot until exhaustion, failure, or cancellation.
func (r *groupRun) loop(slot int) {
	for {
		if r.failed.Load() || r.ctx.Err() != nil {
			return
		}
		i := int(r.next.Add(1)) - 1
		if i >= r.items {
			return
		}
		if err := protect(func() error { return r.fn(r.ctx, slot, i) }); err != nil {
			r.errs[slot], r.errItem[slot] = err, i
			r.failed.Store(true)
			return
		}
	}
}

// Run executes items 0..n-1 through fn with at most width concurrent
// executions, each holding an exclusive slot in [0, width) — callers hand
// each slot private scratch. The calling goroutine always participates
// (slot 0), so Run completes even when the pool is saturated and nested
// Runs degrade to inline execution instead of deadlocking; slots 1..width-1
// are staffed by idle pool workers on a best-effort basis.
//
// The first failing item (lowest index) determines the returned error;
// contained panics surface as *PanicError. Later items may be skipped after
// a failure. ctx is observed before each item and passed through to fn; a
// cancellation with no item failure returns ctx.Err().
func (p *Pool) Run(ctx context.Context, n, width int, fn func(ctx context.Context, slot, item int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if width > n {
		width = n
	}
	if width < 1 {
		width = 1
	}
	r := &groupRun{ctx: ctx, fn: fn, items: n, errs: make([]error, width), errItem: make([]int, width)}
	var wg sync.WaitGroup
	for s := 1; s < width; s++ {
		if !p.tryAcquire() {
			break
		}
		wg.Add(1)
		slot := s
		p.dispatch(func() {
			defer wg.Done()
			r.loop(slot)
		})
	}
	r.loop(0)
	wg.Wait()
	firstItem, firstErr := n, error(nil)
	for s := range r.errs {
		if r.errs[s] != nil && r.errItem[s] < firstItem {
			firstItem, firstErr = r.errItem[s], r.errs[s]
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// --------------------------------------------------------------------- gangs

// Gang is one admitted co-scheduled task group; Wait joins it.
type Gang struct {
	wg       sync.WaitGroup
	mu       sync.Mutex
	firstErr error
	firstIdx int
}

// record keeps the lowest-index task error.
func (g *Gang) record(i int, err error) {
	if err == nil {
		return
	}
	g.mu.Lock()
	if g.firstErr == nil || i < g.firstIdx {
		g.firstErr, g.firstIdx = err, i
	}
	g.mu.Unlock()
}

// Wait blocks until every gang task has returned and reports the first
// (lowest-index) task error; contained panics surface as *PanicError.
func (g *Gang) Wait() error {
	g.wg.Wait()
	return g.firstErr
}

// Reservation is an admitted-but-not-yet-started gang: its permits are
// held, so Launch cannot block. Reserving before building per-call state
// (worlds, workspaces) keeps expensive resources out of the admission queue
// — a caller waiting for permits holds nothing.
type Reservation struct {
	p    *Pool
	n    int // gang size
	cost int // permits held = min(n, budget)
	used bool
}

// Reserve atomically admits a gang of n co-scheduled tasks without starting
// it. Admission blocks, FIFO among gangs, until min(n, Workers()) permits
// are free; an error is returned only when ctx is canceled while waiting.
// The reservation must be consumed by exactly one Launch or Cancel.
//
// When n exceeds the pool budget the surplus tasks will run on transient
// goroutines for the gang's duration — co-scheduling is a correctness
// requirement, so an oversized gang trades the strict budget for progress.
// The goroutine bound therefore holds whenever gang sizes stay ≤ Workers().
//
// Reserve must not be called from inside a pool task: a worker blocking in
// gang admission while holding its own permit can deadlock the pool.
// Admission is caller-side only in this library (plan Forward/ForwardBatch
// entry points).
func (p *Pool) Reserve(ctx context.Context, n int) (*Reservation, error) {
	if n < 1 {
		return nil, fmt.Errorf("exec: invalid gang size %d", n)
	}
	cost := min(n, p.workers)
	if err := p.acquire(ctx, cost); err != nil {
		return nil, err
	}
	return &Reservation{p: p, n: n, cost: cost}, nil
}

// Cancel releases an unused reservation's permits.
func (r *Reservation) Cancel() {
	if r.used {
		return
	}
	r.used = true
	r.p.release(r.cost)
}

// ReserveInto is Reserve writing into a caller-owned Reservation — the
// steady-state admission path for serve loops that re-admit the same gang
// every round: no per-round reservation allocation. r must not be an
// admitted-but-unconsumed reservation (its permits would leak); a zero or
// already-consumed value is reusable.
func (p *Pool) ReserveInto(ctx context.Context, n int, r *Reservation) error {
	if n < 1 {
		return fmt.Errorf("exec: invalid gang size %d", n)
	}
	cost := min(n, p.workers)
	if err := p.acquire(ctx, cost); err != nil {
		return err
	}
	*r = Reservation{p: p, n: n, cost: cost}
	return nil
}

// Launch consumes the reservation and starts fn(ctx, 0..n-1) — tasks that
// may block on one another, all running concurrently — returning the handle
// to join. It never blocks: the permits are already held.
func (r *Reservation) Launch(ctx context.Context, fn func(ctx context.Context, i int) error) *Gang {
	if r.used {
		panic("exec: reservation already consumed")
	}
	r.used = true
	g := &Gang{}
	g.wg.Add(r.n)
	for i := 0; i < r.n; i++ {
		i := i
		body := func() {
			defer g.wg.Done()
			g.record(i, protect(func() error { return fn(ctx, i) }))
		}
		if i < r.cost {
			r.p.dispatch(body)
		} else {
			go body()
		}
	}
	return g
}

// FixedGang is a reusable gang for loops that launch the same n-task fan-out
// round after round (the epoch-lane serve rotation): every closure is built
// once at construction, so a steady-state LaunchReserved/Wait round allocates
// nothing. A FixedGang is single-flight — after LaunchReserved, no further
// launch until Wait returns — and not safe for concurrent launches.
type FixedGang struct {
	p      *Pool
	n      int
	bodies []func() // prebuilt dispatch bodies, one per task

	wg       sync.WaitGroup
	mu       sync.Mutex
	firstErr error
	firstIdx int
}

// NewFixedGang prebuilds a reusable gang of n tasks running fn(0..n-1).
// Launch it with (*FixedGang).LaunchReserved on a reservation of the same
// size from the same pool.
func (p *Pool) NewFixedGang(n int, fn func(i int) error) *FixedGang {
	if n < 1 {
		panic(fmt.Sprintf("exec: invalid gang size %d", n))
	}
	g := &FixedGang{p: p, n: n, bodies: make([]func(), n)}
	for i := 0; i < n; i++ {
		i := i
		errFn := func() error { return fn(i) }
		g.bodies[i] = func() {
			defer g.wg.Done()
			if err := protect(errFn); err != nil {
				g.mu.Lock()
				if g.firstErr == nil || i < g.firstIdx {
					g.firstErr, g.firstIdx = err, i
				}
				g.mu.Unlock()
			}
		}
	}
	return g
}

// LaunchReserved consumes the reservation and starts one round of the gang's
// prebuilt tasks. The reservation must come from the gang's pool with the
// gang's size; like Reservation.Launch it never blocks, and tasks beyond the
// reservation's permit count run on transient goroutines.
func (g *FixedGang) LaunchReserved(r *Reservation) {
	if r.used {
		panic("exec: reservation already consumed")
	}
	if r.p != g.p || r.n != g.n {
		panic("exec: reservation does not match fixed gang")
	}
	r.used = true
	g.firstErr, g.firstIdx = nil, 0
	g.wg.Add(g.n)
	for i, body := range g.bodies {
		if i < r.cost {
			g.p.dispatch(body)
		} else {
			go body()
		}
	}
}

// Wait joins the in-flight round and reports its first (lowest-index) task
// error; contained panics surface as *PanicError. The gang is reusable once
// Wait returns.
func (g *FixedGang) Wait() error {
	g.wg.Wait()
	return g.firstErr
}
