package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var bg = context.Background()

// gang is the test shorthand for the production gang path: Reserve, Launch,
// join.
func gang(p *Pool, ctx context.Context, n int, fn func(context.Context, int) error) error {
	res, err := p.Reserve(ctx, n)
	if err != nil {
		return err
	}
	return res.Launch(ctx, fn).Wait()
}

// gangAsync is Reserve + Launch without the join.
func gangAsync(p *Pool, ctx context.Context, n int, fn func(context.Context, int) error) (*Gang, error) {
	res, err := p.Reserve(ctx, n)
	if err != nil {
		return nil, err
	}
	return res.Launch(ctx, fn), nil
}

func TestRunExecutesAllItems(t *testing.T) {
	p := New(4)
	const n = 100
	var done [n]atomic.Bool
	err := p.Run(bg, n, 4, func(_ context.Context, slot, item int) error {
		if slot < 0 || slot >= 4 {
			t.Errorf("slot %d out of range", slot)
		}
		if done[item].Swap(true) {
			t.Errorf("item %d executed twice", item)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("item %d never executed", i)
		}
	}
}

func TestRunSlotExclusive(t *testing.T) {
	// Two executions must never share a slot concurrently: each slot guards
	// private scratch in the callers.
	p := New(8)
	var inSlot [8]atomic.Int32
	err := p.Run(bg, 200, 8, func(_ context.Context, slot, _ int) error {
		if inSlot[slot].Add(1) != 1 {
			t.Errorf("slot %d shared concurrently", slot)
		}
		time.Sleep(time.Microsecond)
		inSlot[slot].Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	p := New(4)
	sentinel := errors.New("boom")
	later := errors.New("later")
	err := p.Run(bg, 50, 4, func(_ context.Context, _, item int) error {
		switch item {
		case 7:
			return sentinel
		case 30:
			// Give item 7 time to fail first so index ordering, not timing,
			// decides (items are claimed in order, so 7 starts before 30).
			time.Sleep(5 * time.Millisecond)
			return later
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want first-by-index error, got %v", err)
	}
}

func TestRunNestedDoesNotDeadlock(t *testing.T) {
	// Saturate a 1-worker pool with nested Runs: caller-runs must keep
	// making progress inline.
	p := New(1)
	var count atomic.Int32
	err := p.Run(bg, 4, 4, func(ctx context.Context, _, _ int) error {
		return p.Run(ctx, 4, 4, func(context.Context, int, int) error {
			count.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 16 {
		t.Fatalf("ran %d inner items, want 16", count.Load())
	}
}

func TestRunPanicContained(t *testing.T) {
	p := New(2)
	err := p.Run(bg, 4, 2, func(_ context.Context, _, item int) error {
		if item == 2 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured: %+v", pe)
	}
}

func TestRunContextCanceled(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(bg)
	var ran atomic.Int32
	err := p.Run(ctx, 100, 1, func(context.Context, int, int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n >= 100 {
		t.Fatalf("cancellation did not stop the group (ran %d)", n)
	}
}

func TestGangCoScheduled(t *testing.T) {
	// Gang members must all run concurrently: each blocks until every other
	// member has arrived (the rank-communication pattern).
	p := New(4)
	var wg sync.WaitGroup
	wg.Add(4)
	err := gang(p, bg, 4, func(context.Context, int) error {
		wg.Done()
		wg.Wait() // deadlocks unless all 4 are live simultaneously
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGangOversizedStillCoScheduled(t *testing.T) {
	// A gang larger than the budget must still co-schedule (transient
	// overflow goroutines) rather than deadlock.
	p := New(2)
	var wg sync.WaitGroup
	wg.Add(6)
	err := gang(p, bg, 6, func(context.Context, int) error {
		wg.Done()
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGangFirstErrorByIndex(t *testing.T) {
	p := New(4)
	e1, e3 := errors.New("one"), errors.New("three")
	err := gang(p, bg, 4, func(_ context.Context, i int) error {
		switch i {
		case 1:
			time.Sleep(5 * time.Millisecond)
			return e1
		case 3:
			return e3 // fails first in time, loses by index
		}
		return nil
	})
	if !errors.Is(err, e1) {
		t.Fatalf("want lowest-index error, got %v", err)
	}
}

func TestGangPanicContained(t *testing.T) {
	p := New(2)
	err := gang(p, bg, 2, func(_ context.Context, i int) error {
		if i == 1 {
			panic(i)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
}

func TestGangAdmissionBoundsConcurrency(t *testing.T) {
	// With a budget of 4, two gangs of 3 cannot run together: admission is
	// atomic, so the second gang waits for the first to finish.
	p := New(4)
	var live, peak atomic.Int32
	task := func(context.Context, int) error {
		if l := live.Add(1); l > peak.Load() {
			peak.Store(l)
		}
		time.Sleep(2 * time.Millisecond)
		live.Add(-1)
		return nil
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := gang(p, bg, 3, task); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if peak.Load() > 4 {
		t.Fatalf("peak %d concurrent gang tasks, budget 4 (partial admission?)", peak.Load())
	}
}

func TestGangAdmissionFIFOCancel(t *testing.T) {
	// A canceled waiter must leave the queue without wedging later gangs.
	p := New(2)
	release := make(chan struct{})
	hold, err := gangAsync(p, bg, 2, func(context.Context, int) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	if _, err := gangAsync(p, ctx, 2, func(context.Context, int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from admission, got %v", err)
	}
	close(release)
	if err := hold.Wait(); err != nil {
		t.Fatal(err)
	}
	// The queue must still admit after the cancellation.
	if err := gang(p, bg, 2, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnBoundedAndReused(t *testing.T) {
	p := New(3)
	for round := 0; round < 10; round++ {
		if err := p.Run(bg, 30, 3, func(context.Context, int, int) error {
			time.Sleep(10 * time.Microsecond)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Spawned(); s > 3 {
		t.Fatalf("spawned %d workers, budget 3", s)
	}
}

func TestCloseReleasesWorkersAndStaysUsable(t *testing.T) {
	p := New(3)
	if err := p.Run(bg, 12, 3, func(context.Context, int, int) error {
		time.Sleep(10 * time.Microsecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.Spawned() == 0 {
		t.Fatal("no workers spawned before Close")
	}
	p.Close()
	p.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for p.Spawned() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("workers not reclaimed after Close: %d still live", p.Spawned())
		}
		time.Sleep(time.Millisecond)
	}
	// The pool must remain fully usable after Close (spawn-per-task).
	var ran atomic.Int32
	if err := p.Run(bg, 8, 3, func(context.Context, int, int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 8 {
		t.Fatalf("post-Close Run executed %d/8 items", ran.Load())
	}
	if err := gang(p, bg, 3, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidGangSize(t *testing.T) {
	p := New(2)
	if _, err := p.Reserve(bg, 0); err == nil {
		t.Fatal("gang size 0 accepted")
	}
}
