//go:build race

package parallel

// raceEnabled reports whether the race detector is instrumenting this build;
// its allocations make AllocsPerRun assertions meaningless.
const raceEnabled = true
