package parallel

import (
	"ftfft/internal/checksum"
	"ftfft/internal/core"
	"ftfft/internal/mpi"
)

// rankState is one rank's reusable workspace: every buffer the six-step
// pipeline touches, sized once at plan build time so the steady-state hot
// path performs no allocation. A rankState is owned by exactly one rank
// goroutine for the duration of a Transform.
type rankState struct {
	comm  *mpi.Comm
	fft2  *core.InPlaceTransformer // q-point protected FFT2, rank-tagged
	sched []int                    // all-to-all peer visit order

	local []complex128 // q: the rank's working vector
	recv  []complex128 // q: transpose landing zone (swapped with local)

	rb1, rb2 []complex128 // b: pipelined-transpose double buffers
	blockBuf []complex128 // b: blocking-transpose receive buffer

	pairs  []checksum.Pair // b: FFT1 dual-use input checksum pairs (CMCG)
	bufOut []complex128    // p: FFT1 sub-FFT output staging
	chunk  []complex128    // min(q,1024): DMR twiddle staging
}

// execCtx bundles everything one Transform invocation needs that cannot be
// shared between concurrent invocations: the mpi.World (transport and
// in-flight payload pool), the per-rank workspaces and transformers, and the
// per-rank report slots. Contexts are pooled on the Plan, so back-to-back
// Transforms reuse one context and concurrent Transforms each get their own.
type execCtx struct {
	world *mpi.World
	ranks []*rankState

	seq *core.InPlaceTransformer // p == 1 fallback transformer

	reports []core.Report
}

// coreConfig derives the FFT2 / sequential-fallback configuration from the
// plan's protection settings.
func (pl *Plan) coreConfig() core.Config {
	if !pl.cfg.Protected {
		return core.Config{Scheme: core.Plain}
	}
	return core.Config{
		Scheme: core.Online, Variant: core.Optimized, MemoryFT: true,
		Injector: pl.cfg.Injector, EtaScale: pl.cfg.EtaScale, MaxRetries: pl.cfg.MaxRetries,
	}
}

// newCtx builds a complete execution context: world, endpoints, per-rank
// transformers and workspaces. All construction-time work lives here.
func (pl *Plan) newCtx() (*execCtx, error) {
	ec := &execCtx{}
	if pl.p == 1 {
		tr, err := core.NewInPlace(pl.n, pl.coreConfig())
		if err != nil {
			return nil, err
		}
		ec.seq = tr
		return ec, nil
	}
	ec.world = mpi.NewWorld(pl.p, pl.cfg.Injector)
	ec.ranks = make([]*rankState, pl.p)
	ec.reports = make([]core.Report, pl.p)
	for r := 0; r < pl.p; r++ {
		fft2, err := core.NewInPlace(pl.q, pl.coreConfig())
		if err != nil {
			return nil, err
		}
		fft2.SetRank(r)
		ec.ranks[r] = &rankState{
			comm:     ec.world.Endpoint(r),
			fft2:     fft2,
			sched:    mpi.TransposeSchedule(r, pl.p),
			local:    make([]complex128, pl.q),
			recv:     make([]complex128, pl.q),
			rb1:      make([]complex128, pl.b),
			rb2:      make([]complex128, pl.b),
			blockBuf: make([]complex128, pl.b),
			pairs:    make([]checksum.Pair, pl.b),
			bufOut:   make([]complex128, pl.p),
			chunk:    make([]complex128, min(pl.q, 1024)),
		}
	}
	return ec, nil
}

// maxPooledCtx bounds how many idle execution contexts a plan retains; it
// caps steady-state memory at maxPooledCtx concurrent-Transform footprints.
const maxPooledCtx = 4

// getCtx pops a pooled context or builds a fresh one. An explicit freelist
// (not a sync.Pool) is used so the steady-state single-caller path is
// deterministically allocation-free across garbage collections.
func (pl *Plan) getCtx() (*execCtx, error) {
	pl.mu.Lock()
	if k := len(pl.free); k > 0 {
		ec := pl.free[k-1]
		pl.free[k-1] = nil
		pl.free = pl.free[:k-1]
		pl.mu.Unlock()
		return ec, nil
	}
	pl.mu.Unlock()
	return pl.newCtx()
}

// putCtx returns a cleanly finished context to the pool. Contexts that saw
// an error are dropped instead (their world may hold undelivered messages).
func (pl *Plan) putCtx(ec *execCtx) {
	pl.mu.Lock()
	if len(pl.free) < maxPooledCtx {
		pl.free = append(pl.free, ec)
	}
	pl.mu.Unlock()
}

// PooledContexts reports how many idle execution contexts the plan retains
// and the freelist cap; a burst of concurrent Transforms never pins more
// than the cap once it drains. Exposed for the context-pool bound tests.
func (pl *Plan) PooledContexts() (free, capacity int) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.free), maxPooledCtx
}
