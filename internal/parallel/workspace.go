package parallel

import (
	"context"
	"fmt"

	"ftfft/internal/checksum"
	"ftfft/internal/core"
	"ftfft/internal/mpi"
)

// rankState is one rank's reusable workspace: every buffer the six-step
// pipeline touches, sized once at plan build time so the steady-state hot
// path performs no allocation. A rankState is owned by exactly one rank
// goroutine for the duration of a Transform.
type rankState struct {
	comm  *mpi.Comm
	fft2  *core.InPlaceTransformer // q-point protected FFT2, rank-tagged
	sched []int                    // all-to-all peer visit order

	// shared grants the zero-copy fast path: the transport lets this rank
	// read/write the caller's slices directly. dist marks a world whose
	// ranks span several processes (reports must travel to the root).
	// Both are capabilities of the world's transport, resolved at build.
	shared bool
	dist   bool

	local []complex128 // q: the rank's working vector
	recv  []complex128 // q: transpose landing zone (swapped with local)

	rb1, rb2 []complex128 // b: pipelined-transpose double buffers
	blockBuf []complex128 // b: blocking-transpose receive buffer

	pairs  []checksum.Pair // b: FFT1 dual-use input checksum pairs (CMCG)
	bufOut []complex128    // p: FFT1 sub-FFT output staging
	chunk  []complex128    // min(q,1024): DMR twiddle staging

	// Message-mode buffers, absent on the shared fast path: out stages the
	// rank's output slice for the explicit gather (non-root ranks only);
	// repBuf carries the encoded per-rank Report to the root of a
	// distributed world.
	out    []complex128
	repBuf []complex128
}

// execCtx bundles everything one Transform invocation needs that cannot be
// shared between concurrent invocations: the per-rank workspaces and
// transformers, the per-rank report slots, and the rank endpoints into the
// mpi.World. Contexts are pooled on the Plan, so back-to-back Transforms
// reuse one context and concurrent Transforms each get their own. An
// in-process context owns a private world; over an explicit Transport the
// plan builds one world and an epoch ring of contexts sharing it — each
// slot's endpoints stamp a distinct epoch per transform, so up to epochRing
// transforms pipeline over the wire without their messages crossing.
type execCtx struct {
	world *mpi.World
	ranks []*rankState // indexed by rank; nil for ranks local to other processes

	seq *core.InPlaceTransformer // p == 1 fallback transformer

	reports []core.Report
}

// coreConfig derives the FFT2 / sequential-fallback configuration from the
// plan's protection settings.
func (pl *Plan) coreConfig() core.Config {
	if !pl.cfg.Protected {
		return core.Config{Scheme: core.Plain}
	}
	return core.Config{
		Scheme: core.Online, Variant: core.Optimized, MemoryFT: true,
		Injector: pl.cfg.Injector, EtaScale: pl.cfg.EtaScale, MaxRetries: pl.cfg.MaxRetries,
	}
}

// newWorld builds the plan's single world over its explicit Transport and
// completes the wire handshake: remote workers get the metadata they need to
// build the identical plan.
func (pl *Plan) newWorld() (*mpi.World, error) {
	w := mpi.NewWorldTransport(pl.p, pl.cfg.Injector, pl.cfg.Transport)
	if wc, ok := pl.cfg.Transport.(mpi.WorldConfigurer); ok {
		if err := wc.ConfigureWorld(mpi.WorldMeta{
			N: pl.n, P: pl.p,
			Protected: pl.cfg.Protected, Optimized: pl.cfg.Optimized,
			EtaScale: pl.cfg.EtaScale, MaxRetries: pl.cfg.MaxRetries,
		}); err != nil {
			return nil, fmt.Errorf("parallel: transport handshake: %w", err)
		}
	}
	return w, nil
}

// newCtx builds a complete execution context: world, endpoints, per-rank
// transformers and workspaces — for the ranks that live in this process.
// All construction-time work lives here.
func (pl *Plan) newCtx() (*execCtx, error) {
	if pl.p == 1 {
		tr, err := core.NewInPlace(pl.n, pl.coreConfig())
		if err != nil {
			return nil, err
		}
		return &execCtx{seq: tr}, nil
	}
	return pl.newCtxOn(mpi.NewWorldTransport(pl.p, pl.cfg.Injector, pl.cfg.Transport))
}

// newCtxOn builds an execution context's rank endpoints and workspaces over
// an existing world. Ring slots of a transport plan all pass the same world:
// each slot gets fresh endpoints (mpi.NewEndpoint), so concurrent slots hold
// independent epoch stamps while sharing the world's matching state.
func (pl *Plan) newCtxOn(world *mpi.World) (*execCtx, error) {
	ec := &execCtx{world: world}
	shared := ec.world.Shared()
	dist := ec.world.Distributed()
	ec.ranks = make([]*rankState, pl.p)
	ec.reports = make([]core.Report, pl.p)
	for _, r := range ec.world.LocalRanks() {
		fft2, err := core.NewInPlace(pl.q, pl.coreConfig())
		if err != nil {
			return nil, err
		}
		fft2.SetRank(r)
		rs := &rankState{
			comm:     ec.world.NewEndpoint(r),
			fft2:     fft2,
			sched:    mpi.TransposeSchedule(r, pl.p),
			shared:   shared,
			dist:     dist,
			local:    make([]complex128, pl.q),
			recv:     make([]complex128, pl.q),
			rb1:      make([]complex128, pl.b),
			rb2:      make([]complex128, pl.b),
			blockBuf: make([]complex128, pl.b),
			pairs:    make([]checksum.Pair, pl.b),
			bufOut:   make([]complex128, pl.p),
			chunk:    make([]complex128, min(pl.q, 1024)),
		}
		if !shared {
			if r != 0 {
				rs.out = make([]complex128, pl.q)
			}
			rs.repBuf = make([]complex128, reportWords)
		}
		ec.ranks[r] = rs
	}
	return ec, nil
}

// maxPooledCtx bounds how many idle execution contexts a plan retains; it
// caps steady-state memory at maxPooledCtx concurrent-Transform footprints.
const maxPooledCtx = 4

// epochRing is the depth of a transport plan's execution-context ring: how
// many epoch-tagged transforms can pipeline over the one wire at once. Kept
// a power of two so the u32 epoch counter wraps onto the same lane schedule
// (epoch mod epochRing stays consistent across the wrap).
const epochRing = 4

// getCtx pops a pooled context or builds a fresh one. An explicit freelist
// (not a sync.Pool) is used so the steady-state single-caller path is
// deterministically allocation-free across garbage collections. Plans over
// an explicit Transport draw from the fixed epoch ring instead: the wire is
// a physical resource, so callers past the ring depth queue here until a
// slot is reaped.
func (pl *Plan) getCtx(ctx context.Context) (*execCtx, error) {
	if pl.ring != nil {
		select {
		case ec := <-pl.ring:
			return ec, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	pl.mu.Lock()
	if k := len(pl.free); k > 0 {
		ec := pl.free[k-1]
		pl.free[k-1] = nil
		pl.free = pl.free[:k-1]
		pl.mu.Unlock()
		return ec, nil
	}
	pl.mu.Unlock()
	return pl.newCtx()
}

// finishCtx returns a context after an invocation. Cleanly finished contexts
// go back to the pool; ones whose world aborted are dropped (the world may
// hold undelivered messages) — except transport ring slots, which are always
// returned so later callers fail fast on the dead wire instead of blocking
// forever on an empty ring.
func (pl *Plan) finishCtx(ec *execCtx, clean bool) {
	if pl.ring != nil {
		pl.ring <- ec
		return
	}
	if !clean {
		return
	}
	pl.mu.Lock()
	if len(pl.free) < maxPooledCtx {
		pl.free = append(pl.free, ec)
	}
	pl.mu.Unlock()
}

// PooledContexts reports how many idle execution contexts the plan retains
// and the pool cap (the epoch-ring depth for transport plans); a burst of
// concurrent Transforms never pins more than the cap once it drains.
// Exposed for the context-pool bound tests.
func (pl *Plan) PooledContexts() (free, capacity int) {
	if pl.ring != nil {
		return len(pl.ring), epochRing
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.free), maxPooledCtx
}
