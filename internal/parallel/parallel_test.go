package parallel

import (
	"context"
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"ftfft/internal/core"
	"ftfft/internal/dft"
	"ftfft/internal/fault"
)

func randomVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func maxAbs(a []complex128) float64 {
	var m float64
	for _, v := range a {
		if d := cmplx.Abs(v); d > m {
			m = d
		}
	}
	return m
}

// geometries that satisfy p² | n and q = n/p in-place-splittable.
var geoms = []struct{ n, p int }{
	{64, 2},    // q=32: k=4,r=2
	{256, 2},   // q=128: k=8,r=2
	{256, 4},   // q=64: k=8,r=1
	{1024, 4},  // q=256: k=16,r=1
	{4096, 8},  // q=512: k=16,r=2
	{4096, 16}, // q=256
	{1024, 2},
}

func TestPlanGeometryValidation(t *testing.T) {
	if _, err := NewPlan(100, 3, Config{}); err == nil {
		t.Error("3 does not divide 100")
	}
	if _, err := NewPlan(32, 8, Config{}); err == nil {
		t.Error("q=4 not divisible by p=8; plan must be rejected")
	}
	if _, err := NewPlan(0, 0, Config{}); err == nil {
		t.Error("zero ranks accepted")
	}
	for _, g := range geoms {
		if _, err := NewPlan(g.n, g.p, Config{}); err != nil {
			t.Errorf("NewPlan(%d,%d): %v", g.n, g.p, err)
		}
	}
}

func TestParallelMatchesDFTAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range geoms {
		x := randomVec(rng, g.n)
		want := dft.Transform(x)
		tol := 1e-8 * float64(g.n) * (1 + maxAbs(want))
		for _, cfg := range []Config{
			{},                                 // FFTW
			{Optimized: true},                  // opt-FFTW
			{Protected: true},                  // FT-FFTW
			{Protected: true, Optimized: true}, // opt-FT-FFTW
		} {
			pl, err := NewPlan(g.n, g.p, cfg)
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", g.n, g.p, err)
			}
			dst := make([]complex128, g.n)
			src := append([]complex128(nil), x...)
			rep, err := pl.Transform(dst, src)
			if err != nil {
				t.Fatalf("n=%d p=%d prot=%v opt=%v: %v (%+v)", g.n, g.p, cfg.Protected, cfg.Optimized, err, rep)
			}
			if cfg.Protected && !rep.Clean() {
				t.Errorf("n=%d p=%d opt=%v: fault-free run not clean: %+v", g.n, g.p, cfg.Optimized, rep)
			}
			if d := maxAbsDiff(dst, want); d > tol {
				t.Errorf("n=%d p=%d prot=%v opt=%v: diff %g > %g", g.n, g.p, cfg.Protected, cfg.Optimized, d, tol)
			}
		}
	}
}

func TestParallelSingleRankFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 256
	x := randomVec(rng, n)
	want := dft.Transform(x)
	for _, protected := range []bool{false, true} {
		pl, err := NewPlan(n, 1, Config{Protected: protected})
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]complex128, n)
		if _, err := pl.Transform(dst, x); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(dst, want); d > 1e-8*float64(n)*(1+maxAbs(want)) {
			t.Errorf("p=1 protected=%v: diff %g", protected, d)
		}
	}
}

func TestMessageFaultCorrectedInTransit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, p := 1024, 4
	x := randomVec(rng, n)
	want := dft.Transform(x)
	for _, optimized := range []bool{false, true} {
		sched := fault.NewSchedule(7, fault.Fault{
			Site: fault.SiteMessage, Rank: 2, Occurrence: 2, Index: -1,
			Mode: fault.AddConstant, Value: 8,
		})
		pl, err := NewPlan(n, p, Config{Protected: true, Optimized: optimized, Injector: sched})
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]complex128, n)
		src := append([]complex128(nil), x...)
		rep, err := pl.Transform(dst, src)
		if err != nil {
			t.Fatalf("opt=%v: %v (%+v)", optimized, err, rep)
		}
		if !sched.AllFired() {
			t.Fatalf("opt=%v: fault did not fire", optimized)
		}
		if rep.MemCorrections == 0 {
			t.Errorf("opt=%v: expected in-transit correction, got %+v", optimized, rep)
		}
		if d := maxAbsDiff(dst, want); d > 1e-7*float64(n)*(1+maxAbs(want)) {
			t.Errorf("opt=%v: diff %g", optimized, d)
		}
	}
}

func TestFFT1ComputationalFaultRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, p := 1024, 4
	x := randomVec(rng, n)
	want := dft.Transform(x)
	sched := fault.NewSchedule(8, fault.Fault{
		Site: fault.SiteParallelFFT1, Rank: 1, Occurrence: 5, Index: -1,
		Mode: fault.AddConstant, Value: 3,
	})
	pl, _ := NewPlan(n, p, Config{Protected: true, Optimized: true, Injector: sched})
	dst := make([]complex128, n)
	src := append([]complex128(nil), x...)
	rep, err := pl.Transform(dst, src)
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if !sched.AllFired() || rep.CompRecomputations == 0 {
		t.Fatalf("fired=%v rep=%+v", sched.AllFired(), rep)
	}
	if d := maxAbsDiff(dst, want); d > 1e-7*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("diff %g", d)
	}
}

func TestFFT2FaultRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, p := 4096, 8
	x := randomVec(rng, n)
	want := dft.Transform(x)
	sched := fault.NewSchedule(9, fault.Fault{
		Site: fault.SiteParallelFFT2, Rank: 5, Occurrence: 11, Index: -1,
		Mode: fault.AddConstant, Value: -6,
	})
	pl, _ := NewPlan(n, p, Config{Protected: true, Optimized: true, Injector: sched})
	dst := make([]complex128, n)
	src := append([]complex128(nil), x...)
	rep, err := pl.Transform(dst, src)
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if !sched.AllFired() || rep.Clean() {
		t.Fatalf("fired=%v rep=%+v", sched.AllFired(), rep)
	}
	if d := maxAbsDiff(dst, want); d > 1e-7*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("diff %g", d)
	}
}

// TestPaperTable2FaultMix reproduces the Table 2/3 mixes: two memory and two
// computational faults spread across ranks, all recovered with negligible
// extra work.
func TestPaperTable2FaultMix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, p := 4096, 8
	x := randomVec(rng, n)
	want := dft.Transform(x)
	sched := fault.NewSchedule(10,
		fault.Fault{Site: fault.SiteMessage, Rank: 0, Occurrence: 3, Index: -1, Mode: fault.AddConstant, Value: 5},
		fault.Fault{Site: fault.SiteMessage, Rank: 6, Occurrence: 7, Index: -1, Mode: fault.AddConstant, Value: -4},
		fault.Fault{Site: fault.SiteParallelFFT1, Rank: 3, Occurrence: 2, Index: -1, Mode: fault.AddConstant, Value: 2},
		fault.Fault{Site: fault.SiteParallelFFT2, Rank: 7, Occurrence: 4, Index: -1, Mode: fault.AddConstant, Value: 9},
	)
	pl, _ := NewPlan(n, p, Config{Protected: true, Optimized: true, Injector: sched})
	dst := make([]complex128, n)
	src := append([]complex128(nil), x...)
	rep, err := pl.Transform(dst, src)
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if sched.FiredCount() != 4 {
		t.Fatalf("only %d/4 faults fired", sched.FiredCount())
	}
	if rep.Detections < 3 {
		t.Errorf("expected ≥3 detections, got %+v", rep)
	}
	if d := maxAbsDiff(dst, want); d > 1e-7*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("diff %g (%+v)", d, rep)
	}
}

func TestUnprotectedSilentlyCorrupts(t *testing.T) {
	// Sanity: the same transit fault without protection corrupts the output.
	rng := rand.New(rand.NewSource(7))
	n, p := 1024, 4
	x := randomVec(rng, n)
	want := dft.Transform(x)
	sched := fault.NewSchedule(11, fault.Fault{
		Site: fault.SiteMessage, Rank: 2, Occurrence: 2, Index: 0,
		Mode: fault.SetConstant, Value: 999,
	})
	pl, _ := NewPlan(n, p, Config{Protected: false, Injector: sched})
	dst := make([]complex128, n)
	src := append([]complex128(nil), x...)
	if _, err := pl.Transform(dst, src); err != nil {
		t.Fatal(err)
	}
	if !sched.AllFired() {
		t.Fatal("fault did not fire")
	}
	if maxAbsDiff(dst, want) < 1 {
		t.Fatal("unprotected run should have been corrupted")
	}
}

// stuckRank corrupts every FFT1 visit on one rank, guaranteeing the retry
// budget is exhausted there while the other ranks run clean.
type stuckRank struct{ rank int }

func (f *stuckRank) Visit(site fault.Site, rank int, data []complex128, n, stride int) bool {
	if site != fault.SiteParallelFFT1 || rank != f.rank || n == 0 {
		return false
	}
	data[0] += 1e6
	return true
}

// TestRankAbortPropagates: when one rank exhausts MaxRetries, the whole
// Transform must return its ErrUncorrectable (poison-pill broadcast) with
// every peer unwound — no goroutine left blocked in Recv.
func TestRankAbortPropagates(t *testing.T) {
	n, p := 4096, 8
	pl, err := NewPlan(n, p, Config{
		Protected: true, Optimized: true,
		Injector: &stuckRank{rank: 5}, MaxRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	src := randomVec(rng, n)
	dst := make([]complex128, n)
	done := make(chan error, 1)
	go func() {
		_, err := pl.Transform(dst, src)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, core.ErrUncorrectable) {
			t.Fatalf("want ErrUncorrectable, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Transform deadlocked after rank failure")
	}
	// The plan must still work once the persistent fault stops firing.
	clean, err := NewPlan(n, p, Config{Protected: true, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Transform(dst, src); err != nil {
		t.Fatal(err)
	}
}

// TestTransformContextCancel: a pre-canceled context fails fast; a cancel
// racing a clean run either cancels or completes, and never poisons the
// plan for later transforms.
func TestTransformContextCancel(t *testing.T) {
	n, p := 1024, 4
	pl, err := NewPlan(n, p, Config{Protected: true, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	src := randomVec(rng, n)
	dst := make([]complex128, n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pl.TransformContext(ctx, dst, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for i := 0; i < 3; i++ {
		ctx2, cancel2 := context.WithCancel(context.Background())
		go cancel2()
		if _, err := pl.TransformContext(ctx2, dst, src); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("want nil or Canceled, got %v", err)
		}
	}
	if _, err := pl.Transform(dst, src); err != nil {
		t.Fatalf("plan unusable after cancellations: %v", err)
	}
	want := dft.Transform(src)
	if d := maxAbsDiff(dst, want); d > 1e-8*float64(n)*(1+maxAbs(want)) {
		t.Fatalf("post-cancel transform wrong: %g", d)
	}
}
