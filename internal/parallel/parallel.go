// Package parallel implements the paper's §5–§6: the six-step 1-D parallel
// in-place FFT and its online ABFT protection, on top of the in-process
// message-passing runtime (internal/mpi).
//
// Data layout, for N = p·q (q = N/p local points, b = q/p block size):
//
//	start   rank j owns x[j·q : (j+1)·q]
//	tran1   rank j sends its block i to rank i  →  rank i holds
//	        local[n2·b + t] = x[n2·q + i·b + t]           (n1 = i·b+t, n2)
//	FFT1    b p-point FFTs over n2 (stride b), in place
//	tran2   rank i sends block j2 to rank j2    →  rank j2 holds
//	        local[n1] = Y_{n1}(j2) for all n1             (contiguous)
//	TM      local[n1] ·= ω_N^{n1·j2}                      (DMR)
//	FFT2    one q-point in-place FFT (core.InPlaceTransformer: two layers,
//	        or three with a DMR middle layer when q = r·k², Fig. 5/6)
//	tran3   rank j2 sends block b′ to rank b′   →  local adjust
//	        out[t·p + j2] = block_{j2}[t]                 (strided scatter)
//
// Protection (Fig. 6): every transposed block travels with its two weighted
// checksums and is verified (and single-element-repaired) on receipt; FFT1
// sub-FFTs carry dual-use input checksums generated in one contiguous sweep;
// the twiddle stage is DMR; FFT2 uses the in-place protected transformer.
// The optimized variant pipelines checksum generation and verification with
// communication (Algorithm 3) and fuses the MCV+TM+CMCG passes.
package parallel

import (
	"fmt"
	"math/cmplx"
	"sync"

	"ftfft/internal/checksum"
	"ftfft/internal/core"
	"ftfft/internal/fault"
	"ftfft/internal/fft"
	"ftfft/internal/mpi"
	"ftfft/internal/roundoff"
)

// Config parameterizes a parallel plan.
type Config struct {
	// Protected enables the online ABFT scheme (FT-FFTW); false is the
	// plain parallel FFT (FFTW).
	Protected bool
	// Optimized enables the §6 optimizations: communication-computation
	// overlap in the transposes and fused verification passes. It applies
	// to both protected and unprotected runs (opt-FFTW / opt-FT-FFTW).
	Optimized bool
	// Injector corrupts data at fault sites (including messages in
	// transit). Safe for concurrent use across ranks.
	Injector fault.Injector
	// EtaScale scales all detection thresholds; 0 means 1.
	EtaScale float64
	// MaxRetries caps per-unit recomputations; 0 means 3.
	MaxRetries int
}

// Plan executes protected parallel forward FFTs of a fixed size on a fixed
// number of ranks.
type Plan struct {
	n, p, q, b int
	cfg        Config
}

// NewPlan validates the geometry: p must divide n, p must divide q = n/p,
// and q must admit an in-place decomposition (k·r·k).
func NewPlan(n, p int, cfg Config) (*Plan, error) {
	if p < 1 {
		return nil, fmt.Errorf("parallel: need at least one rank, got %d", p)
	}
	if n%p != 0 {
		return nil, fmt.Errorf("parallel: size %d not divisible by %d ranks", n, p)
	}
	q := n / p
	if q%p != 0 {
		return nil, fmt.Errorf("parallel: local size %d not divisible by %d (need p² | n)", q, p)
	}
	if p > 1 {
		if _, err := fft.NewPlan(p, fft.Forward); err != nil {
			return nil, err
		}
	}
	// Validate that FFT2 has an in-place plan.
	if _, err := core.NewInPlace(q, core.Config{Scheme: core.Plain}); err != nil {
		return nil, err
	}
	return &Plan{n: n, p: p, q: q, b: q / p, cfg: cfg}, nil
}

// N returns the global transform size; P the number of ranks.
func (pl *Plan) N() int { return pl.n }

// P returns the number of ranks.
func (pl *Plan) P() int { return pl.p }

// Transform computes the forward DFT of src into dst using p ranks.
// src and dst have length N; rank j reads src[j·q:(j+1)·q] and writes
// dst[j·q:(j+1)·q] (shared-memory stand-ins for the distributed arrays).
func (pl *Plan) Transform(dst, src []complex128) (core.Report, error) {
	if len(dst) < pl.n || len(src) < pl.n {
		return core.Report{}, fmt.Errorf("parallel: buffers too short for size %d", pl.n)
	}
	if pl.p == 1 {
		return pl.sequentialFallback(dst, src)
	}
	reports := make([]core.Report, pl.p)
	var mu sync.Mutex
	err := mpi.Run(pl.p, pl.cfg.Injector, func(c *mpi.Comm) error {
		rep, err := pl.rankBody(c, dst, src)
		mu.Lock()
		reports[c.Rank()] = rep
		mu.Unlock()
		return err
	})
	var total core.Report
	for _, r := range reports {
		total.Add(r)
	}
	return total, err
}

// sequentialFallback handles p = 1 with the in-place transformer.
func (pl *Plan) sequentialFallback(dst, src []complex128) (core.Report, error) {
	cfg := core.Config{Scheme: core.Plain}
	if pl.cfg.Protected {
		cfg = core.Config{
			Scheme: core.Online, Variant: core.Optimized, MemoryFT: true,
			Injector: pl.cfg.Injector, EtaScale: pl.cfg.EtaScale, MaxRetries: pl.cfg.MaxRetries,
		}
	}
	tr, err := core.NewInPlace(pl.n, cfg)
	if err != nil {
		return core.Report{}, err
	}
	copy(dst[:pl.n], src[:pl.n])
	return tr.Transform(dst[:pl.n])
}

const (
	tagTran1 = 1
	tagTran2 = 2
	tagTran3 = 3
)

// rankBody is the per-rank six-step pipeline.
func (pl *Plan) rankBody(c *mpi.Comm, dst, src []complex128) (core.Report, error) {
	var rep core.Report
	p, q, b := pl.p, pl.q, pl.b
	rank := c.Rank()

	local := make([]complex128, q)
	recvBuf := make([]complex128, q)
	copy(local, src[rank*q:(rank+1)*q])

	sigma0 := roundoff.RMSStrided(local, minInt(q, 512), maxInt(1, q/512))
	if sigma0 == 0 {
		sigma0 = 1
	}
	etaScale := pl.cfg.EtaScale
	if etaScale == 0 {
		etaScale = 1
	}

	// ---- Transpose 1 ----
	if err := pl.transpose(c, local, recvBuf, tagTran1, &rep, nil); err != nil {
		return rep, err
	}
	local, recvBuf = recvBuf, local

	// ---- FFT1: b p-point FFTs over stride b, in place, protected ----
	if err := pl.fft1(c, local, sigma0, etaScale, &rep); err != nil {
		return rep, err
	}

	// ---- Transpose 2 ----
	if err := pl.transpose(c, local, recvBuf, tagTran2, &rep, nil); err != nil {
		return rep, err
	}
	local, recvBuf = recvBuf, local

	// ---- Twiddle ω_N^{n1·rank} (DMR) ----
	pl.twiddleLocal(c, local, &rep)

	// ---- FFT2: q-point in-place (two- or three-layer protected) ----
	coreCfg := core.Config{Scheme: core.Plain}
	if pl.cfg.Protected {
		coreCfg = core.Config{
			Scheme: core.Online, Variant: core.Optimized, MemoryFT: true,
			Injector: pl.cfg.Injector, EtaScale: pl.cfg.EtaScale, MaxRetries: pl.cfg.MaxRetries,
		}
	}
	fft2, err := core.NewInPlace(q, coreCfg)
	if err != nil {
		return rep, err
	}
	fft2.SetRank(rank)
	r2, err := fft2.Transform(local)
	rep.Add(r2)
	if err != nil {
		return rep, err
	}

	// ---- Transpose 3 + local adjustment ----
	out := dst[rank*q : (rank+1)*q]
	err = pl.transpose(c, local, nil, tagTran3, &rep, func(srcRank int, block []complex128) {
		// out[t·p + srcRank] = block[t]: interleave by origin rank.
		idx := srcRank
		for t := 0; t < b; t++ {
			out[idx] = block[t]
			idx += p
		}
	})
	return rep, err
}

// transpose performs the all-to-all block exchange. Blocks carry weighted
// checksums when the plan is protected; receivers verify and repair single
// corrupted elements. With cfg.Optimized the exchange is pipelined
// (Algorithm 3): while waiting for peer i's block, peer i+1's send is
// already posted and peer i-1's block is being verified and processed.
//
// If process is nil, the incoming block from rank s lands at dest[s·b:(s+1)·b];
// otherwise process(s, block) consumes it (dest may then be nil).
func (pl *Plan) transpose(c *mpi.Comm, send, dest []complex128, tag int, rep *core.Report, process func(int, []complex128)) error {
	p, b := pl.p, pl.b
	rank := c.Rank()
	sched := mpi.TransposeSchedule(rank, p)
	w := checksum.Weights(b)

	makeCS := func(block []complex128) *[2]complex128 {
		if !pl.cfg.Protected {
			return nil
		}
		pr := checksum.GeneratePair(w, block)
		return &[2]complex128{pr.D1, pr.D2}
	}
	handle := func(s int, block []complex128, cs [2]complex128, hasCS bool) error {
		if pl.cfg.Protected && hasCS {
			stored := checksum.Pair{D1: cs[0], D2: cs[1]}
			cur := checksum.GeneratePair(w, block)
			d := stored.Sub(cur)
			// Same data, same summation order: clean transfers compare
			// exactly; any difference is a transit/memory corruption.
			if d.D1 != 0 || d.D2 != 0 {
				rep.Detections++
				j, ok := checksum.Locate(d, b)
				if !ok {
					return fmt.Errorf("parallel: rank %d: unrecoverable corruption in block from %d", rank, s)
				}
				block[j] += d.D1 / w[j]
				rep.MemCorrections++
			}
		}
		if process != nil {
			process(s, block)
		} else {
			copy(dest[s*b:(s+1)*b], block)
		}
		return nil
	}

	if !pl.cfg.Optimized {
		// Blocking transpose: send everything, then drain in order.
		for _, dstRank := range sched {
			blk := send[dstRank*b : (dstRank+1)*b]
			c.Send(dstRank, tag, blk, makeCS(blk))
		}
		buf := make([]complex128, b)
		for _, s := range sched {
			cs, has := c.Recv(s, tag, buf)
			if err := handle(s, buf, cs, has); err != nil {
				return err
			}
		}
		return nil
	}

	// Pipelined transpose (Algorithm 3): double-buffered receives; checksum
	// generation for the next send and verification of the previous block
	// overlap the in-flight exchange.
	rb1 := make([]complex128, b)
	rb2 := make([]complex128, b)
	var prevReq *mpi.RecvRequest
	var prevSrc int
	prevBuf := rb1
	nextBuf := rb2
	for i, peer := range sched {
		blk := send[peer*b : (peer+1)*b]
		cs := makeCS(blk) // generated while the previous exchange is in flight
		c.Isend(peer, tag, blk, cs)
		req := c.Irecv(peer, tag, nextBuf)
		if prevReq != nil {
			pcs, phas := prevReq.Wait()
			if err := handle(prevSrc, prevBuf, pcs, phas); err != nil {
				return err
			}
		}
		prevReq, prevSrc = req, peer
		prevBuf, nextBuf = nextBuf, prevBuf
		_ = i
	}
	pcs, phas := prevReq.Wait()
	return handle(prevSrc, prevBuf, pcs, phas)
}

// fft1 runs the b p-point sub-FFTs over stride b, in place, with dual-use
// input checksums generated in one contiguous sweep and Fig. 4 backup-based
// recovery.
func (pl *Plan) fft1(c *mpi.Comm, local []complex128, sigma0, etaScale float64, rep *core.Report) error {
	p, b := pl.p, pl.b
	rank := c.Rank()
	plan, err := fft.NewPlan(p, fft.Forward)
	if err != nil {
		return err
	}
	if !pl.cfg.Protected {
		bufIn := make([]complex128, p)
		bufOut := make([]complex128, p)
		for t := 0; t < b; t++ {
			gatherStride(bufIn, local[t:], p, b)
			plan.Execute(bufOut, bufIn)
			scatterStride(local[t:], bufOut, p, b)
		}
		return nil
	}

	cp := checksum.CheckVector(p)
	eta := etaScale * roundoff.EtaStage1(p, sigma0)
	maxRetries := pl.cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	}

	// CMCG: contiguous sweep accumulating one pair per sub-FFT.
	pairs := make([]checksum.Pair, b)
	for idx, v := range local {
		n2 := idx / b
		t := idx % b
		wv := cp[n2] * v
		pairs[t].D1 += wv
		pairs[t].D2 += complex(float64(n2), 0) * wv
	}

	bufIn := make([]complex128, p)
	bufOut := make([]complex128, p)
	for t := 0; t < b; t++ {
		gatherStride(bufIn, local[t:], p, b)
		cx := pairs[t].D1
		ok := false
		for attempt := 0; attempt <= maxRetries; attempt++ {
			plan.Execute(bufOut, bufIn)
			fault.Visit(pl.cfg.Injector, fault.SiteParallelFFT1, rank, bufOut, p, 1)
			diff := cmplx.Abs(checksum.DotOmega3(bufOut) - cx)
			floor := relFloor(p, checksum.DotOmega3(bufOut), cx)
			if diff <= eta+floor {
				ok = true
				break
			}
			rep.Detections++
			// Postponed MCV: disambiguate input memory vs computation.
			cur := checksum.GeneratePair(cp, bufIn)
			d := pairs[t].Sub(cur)
			if cmplx.Abs(d.D1) > eta {
				if jj, located := checksum.Locate(d, p); located {
					bufIn[jj] += d.D1 / cp[jj]
					rep.MemCorrections++
					continue
				}
				return fmt.Errorf("parallel: rank %d: unrecoverable FFT1 input corruption", rank)
			}
			rep.CompRecomputations++
		}
		if !ok {
			return fmt.Errorf("parallel: rank %d: FFT1 retries exhausted", rank)
		}
		scatterStride(local[t:], bufOut, p, b)
	}
	return nil
}

// twiddleLocal applies local[n1] ·= ω_N^{n1·rank} with DMR when protected.
func (pl *Plan) twiddleLocal(c *mpi.Comm, local []complex128, rep *core.Report) {
	rank := c.Rank()
	tw := make([]complex128, pl.q)
	for n1 := 0; n1 < pl.q; n1++ {
		tw[n1] = omegaN(pl.n, n1*rank)
	}
	if !pl.cfg.Protected {
		for i := range local {
			local[i] *= tw[i]
		}
		return
	}
	chunk := make([]complex128, minInt(pl.q, 1024))
	for off := 0; off < pl.q; off += len(chunk) {
		end := minInt(off+len(chunk), pl.q)
		cpart := chunk[:end-off]
		for i := range cpart {
			cpart[i] = local[off+i] * tw[off+i]
		}
		fault.Visit(pl.cfg.Injector, fault.SiteTwiddle, rank, cpart, len(cpart), 1)
		for i := range cpart {
			v2 := local[off+i] * tw[off+i]
			if cpart[i] != v2 {
				rep.Detections++
				v3 := local[off+i] * tw[off+i]
				if v2 == v3 {
					cpart[i] = v2
				}
				rep.TwiddleCorrections++
			}
		}
		copy(local[off:end], cpart)
	}
}

func relFloor(n int, a, b complex128) float64 {
	return 64 * 2.220446049250313e-16 * sqrtf(n) * (cmplx.Abs(a) + cmplx.Abs(b))
}

func sqrtf(n int) float64 {
	x := float64(n)
	if x <= 0 {
		return 0
	}
	// Newton is overkill; use the obvious.
	return mathSqrt(x)
}

func gatherStride(dst, src []complex128, n, stride int) {
	idx := 0
	for j := 0; j < n; j++ {
		dst[j] = src[idx]
		idx += stride
	}
}

func scatterStride(dst, src []complex128, n, stride int) {
	idx := 0
	for j := 0; j < n; j++ {
		dst[idx] = src[j]
		idx += stride
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
