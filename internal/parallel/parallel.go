// Package parallel implements the paper's §5–§6: the six-step 1-D parallel
// in-place FFT and its online ABFT protection, on top of the message-passing
// runtime (internal/mpi).
//
// The algorithm layer is transport-pure: a rank body touches only its own
// preallocated workspace and its World endpoints. Input reaches rank j
// through an explicit root-rank scatter and its output returns through a
// gather (both checksum-protected), so the same rank body runs unchanged
// whether the wire is the in-process channel matrix or sockets between OS
// processes (Plan.Serve drives remote ranks). The one concession to speed is
// capability-gated, not assumed: a transport granting mpi.SharedMemory (the
// in-process default) lets ranks copy their slices of the caller's arrays
// directly, skipping the scatter/gather messages bit-identically.
//
// Data layout, for N = p·q (q = N/p local points, b = q/p block size):
//
//	start   rank j owns x[j·q : (j+1)·q]
//	tran1   rank j sends its block i to rank i  →  rank i holds
//	        local[n2·b + t] = x[n2·q + i·b + t]           (n1 = i·b+t, n2)
//	FFT1    b p-point FFTs over n2 (stride b), in place
//	tran2   rank i sends block j2 to rank j2    →  rank j2 holds
//	        local[n1] = Y_{n1}(j2) for all n1             (contiguous)
//	TM      local[n1] ·= ω_N^{n1·j2}                      (DMR)
//	FFT2    one q-point in-place FFT (core.InPlaceTransformer: two layers,
//	        or three with a DMR middle layer when q = r·k², Fig. 5/6)
//	tran3   rank j2 sends block b′ to rank b′   →  local adjust
//	        out[t·p + j2] = block_{j2}[t]                 (strided scatter)
//
// Protection (Fig. 6): every transposed block travels with its two weighted
// checksums and is verified (and single-element-repaired) on receipt; FFT1
// sub-FFTs carry dual-use input checksums generated in one contiguous sweep;
// the twiddle stage is DMR; FFT2 uses the in-place protected transformer.
// The optimized variant pipelines checksum generation and verification with
// communication (Algorithm 3) and fuses the MCV+TM+CMCG passes.
//
// Plans follow the plan-once/execute-many contract: NewPlan precomputes the
// FFT sub-plans, twiddle tables, checksum weight vectors, the message-passing
// world and every per-rank buffer; Transform itself submits one co-scheduled
// rank group to the bounded executor (internal/exec) and allocates nothing
// else. Plans are safe for concurrent use — concurrent Transforms draw
// separate execution contexts from an internal pool and queue for executor
// admission instead of multiplying goroutines.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sync"
	"sync/atomic"

	"ftfft/internal/checksum"
	"ftfft/internal/core"
	"ftfft/internal/exec"
	"ftfft/internal/fault"
	"ftfft/internal/fft"
	"ftfft/internal/mpi"
	"ftfft/internal/roundoff"
)

// Config parameterizes a parallel plan.
type Config struct {
	// Protected enables the online ABFT scheme (FT-FFTW); false is the
	// plain parallel FFT (FFTW).
	Protected bool
	// Optimized enables the §6 optimizations: communication-computation
	// overlap in the transposes and fused verification passes. It applies
	// to both protected and unprotected runs (opt-FFTW / opt-FT-FFTW).
	Optimized bool
	// Injector corrupts data at fault sites (including messages in
	// transit). Safe for concurrent use across ranks.
	Injector fault.Injector
	// EtaScale scales all detection thresholds; 0 means 1.
	EtaScale float64
	// MaxRetries caps per-unit recomputations; 0 means 3.
	MaxRetries int
	// Executor is the bounded pool the rank fan-out is dispatched on; nil
	// means the process-wide exec.Default().
	Executor *exec.Pool
	// Transport selects the wire the rank world communicates over. nil
	// builds a fresh in-process channel wire per execution context (the
	// zero-copy shared-memory fast path). A non-nil transport is a physical
	// resource — the plan builds exactly one world over it — but up to
	// epochRing transforms pipeline through it concurrently, each tagged
	// with a distinct epoch so their messages never interleave; socket
	// transports additionally place only a subset of ranks in this process
	// (the rest run in worker processes driving Plan.Serve).
	Transport mpi.Transport
}

// Plan executes protected parallel forward FFTs of a fixed size on a fixed
// number of ranks. All derived state — FFT sub-plans, twiddle tables,
// checksum weight vectors, the communicator and per-rank workspaces — is
// built once here and reused by every Transform.
type Plan struct {
	n, p, q, b int
	cfg        Config
	ex         *exec.Pool // rank fan-out executor (never nil)
	gang       int        // local rank count = executor gang size per Transform

	fftP     *fft.Plan    // p-point FFT1 sub-plan (nil when p == 1)
	weightsB []complex128 // checksum.Weights(b): transpose block weights
	weightsQ []complex128 // checksum.Weights(q): scatter/gather slice weights (message mode)
	weightsR []complex128 // checksum.Weights(reportWords): report message weights (message mode)
	checkP   []complex128 // checksum.CheckVector(p): FFT1 input weights
	twiddle  []complex128 // [rank·q + n1] = ω_N^{n1·rank}, all p ranks

	mu   sync.Mutex
	free []*execCtx // idle execution contexts (see workspace.go)

	// ring holds the epoch-ring contexts of a plan built over an explicit
	// Transport (nil otherwise): epochRing slots sharing the plan's single
	// world, each drawing a fresh epoch per transform so up to epochRing
	// transforms pipeline over one wire. See getCtx.
	ring     chan *execCtx
	epochSeq atomic.Uint32 // next epoch a transport-backed Begin assigns
}

// NewPlan validates the geometry — p must divide n, p must divide q = n/p,
// and q must admit an in-place decomposition (k·r·k) — then precomputes all
// derived state: sub-plans, twiddle tables, checksum vectors, the
// message-passing world and per-rank workspaces.
func NewPlan(n, p int, cfg Config) (*Plan, error) {
	if p < 1 {
		return nil, fmt.Errorf("parallel: need at least one rank, got %d", p)
	}
	if n%p != 0 {
		return nil, fmt.Errorf("parallel: size %d not divisible by %d ranks", n, p)
	}
	q := n / p
	if q%p != 0 {
		return nil, fmt.Errorf("parallel: local size %d not divisible by %d (need p² | n)", q, p)
	}
	pl := &Plan{n: n, p: p, q: q, b: q / p, cfg: cfg, ex: cfg.Executor, gang: p}
	if pl.ex == nil {
		pl.ex = exec.Default()
	}
	if cfg.Transport != nil {
		if p < 2 {
			return nil, fmt.Errorf("parallel: an explicit transport needs at least 2 ranks, got %d", p)
		}
		// 0 means the wire cannot report its size; anything else must match.
		if ws, ok := cfg.Transport.(interface{ WorldSize() int }); ok && ws.WorldSize() != 0 && ws.WorldSize() != p {
			return nil, fmt.Errorf("parallel: plan has %d ranks but the transport carries %d", p, ws.WorldSize())
		}
		if rp, ok := cfg.Transport.(mpi.RankPlacement); ok {
			pl.gang = len(rp.LocalRanks())
		}
	}
	if p > 1 {
		var err error
		if pl.fftP, err = fft.NewPlan(p, fft.Forward); err != nil {
			return nil, err
		}
		pl.weightsB = checksum.Weights(pl.b)
		pl.checkP = checksum.CheckVector(p)
		pl.twiddle = twiddleTable(n, p, q)
		if cfg.Transport != nil && cfg.Protected {
			// Message-mode scatter/gather slices and report frames travel
			// with their own checksum pairs, like every other protected
			// block — a transit fault on any message is detectable.
			pl.weightsQ = checksum.Weights(q)
			pl.weightsR = checksum.Weights(reportWords)
		}
	}
	if cfg.Transport != nil {
		// One world per transport wire, epochRing contexts over it: the wire
		// handshake runs here, so plan construction blocks until the remote
		// workers have dialed in; each ring slot then carries its own per-rank
		// workspaces and endpoints, and concurrent transforms pipeline through
		// distinct epochs instead of serializing on one context.
		world, err := pl.newWorld()
		if err != nil {
			return nil, err
		}
		pl.ring = make(chan *execCtx, epochRing)
		for i := 0; i < epochRing; i++ {
			ec, err := pl.newCtxOn(world)
			if err != nil {
				return nil, err
			}
			pl.ring <- ec
		}
		return pl, nil
	}
	// Build the first execution context eagerly: it validates the FFT2
	// decomposition of q and pre-warms the pool, so the first Transform is
	// already on the steady-state path.
	ec, err := pl.newCtx()
	if err != nil {
		return nil, err
	}
	pl.free = append(pl.free, ec)
	return pl, nil
}

// twiddleTable precomputes ω_N^{n1·rank} for every rank: row r (length q)
// holds the twiddle stage's multipliers for rank r. Rows are generated by
// incremental rotation, re-synchronized trigonometrically every 8 elements:
// the ≤7-multiply drift (~1.5e-15) stays at the FFT pipeline's own
// round-off level while the one-time build pays an eighth of the Sincos
// calls of exact evaluation.
func twiddleTable(n, p, q int) []complex128 {
	tab := make([]complex128, p*q)
	for rank := 0; rank < p; rank++ {
		row := tab[rank*q : (rank+1)*q]
		step := omegaN(n, rank)
		var w complex128
		for n1 := 0; n1 < q; n1++ {
			if n1%8 == 0 {
				w = omegaN(n, n1*rank)
			}
			row[n1] = w
			w *= step
		}
	}
	return tab
}

// Workers returns the worker budget of the executor the plan dispatches on.
func (pl *Plan) Workers() int { return pl.ex.Workers() }

// MaxInflight reports how many transforms can be in flight on the plan at
// once: the epoch-ring depth for a transport-backed plan (its ring slots
// pipeline over the one wire, each on its own epoch), the context-pool cap
// otherwise. Batch drivers size their reap window by this — a Begin past the
// bound parks until a slot is reaped.
func (pl *Plan) MaxInflight() int {
	if pl.ring != nil {
		return epochRing
	}
	return maxPooledCtx
}

// Gang returns the executor admission a single transform reserves: the count
// of ranks local to this process (p in-process, usually 1 for a socket root).
func (pl *Plan) Gang() int { return pl.gang }

// N returns the global transform size; P the number of ranks.
func (pl *Plan) N() int { return pl.n }

// P returns the number of ranks.
func (pl *Plan) P() int { return pl.p }

// Transform computes the forward DFT of src into dst using p ranks.
// src and dst have length N and belong to the root rank's process; every
// other rank works on a private q-point slice, distributed by an explicit
// root-rank scatter and collected by a gather — unless the transport grants
// shared memory, in which case rank j reads src[j·q:(j+1)·q] and writes
// dst[j·q:(j+1)·q] directly (the in-process zero-copy fast path).
//
// Transform is safe for concurrent use; each invocation draws a pooled
// execution context, so the steady-state cost of a call is the p rank
// goroutines and nothing else.
func (pl *Plan) Transform(dst, src []complex128) (core.Report, error) {
	return pl.TransformContext(context.Background(), dst, src)
}

// TransformContext is Transform with cancellation. A canceled context aborts
// the execution context's communicator, so ranks parked in a transpose
// receive unwind immediately; compute-bound stages observe the cancellation
// at their next sub-FFT boundary. The same abort path fires when any rank
// fails (e.g. exhausts its retry budget): its peers return the failing
// rank's error instead of deadlocking in Recv.
func (pl *Plan) TransformContext(ctx context.Context, dst, src []complex128) (core.Report, error) {
	if pl.p == 1 {
		// Direct path keeps the sequential steady state allocation-free.
		if len(dst) < pl.n || len(src) < pl.n {
			return core.Report{}, fmt.Errorf("parallel: buffers too short for size %d", pl.n)
		}
		if err := ctx.Err(); err != nil {
			return core.Report{}, err
		}
		return pl.runSeq(ctx, dst, src)
	}
	inv, err := pl.Begin(ctx, dst, src)
	if err != nil {
		return core.Report{}, err
	}
	return inv.Wait()
}

// runSeq is the single-rank fallback: one in-place protected transform on a
// pooled context, no communicator, no executor round-trip.
func (pl *Plan) runSeq(ctx context.Context, dst, src []complex128) (core.Report, error) {
	ec, err := pl.getCtx(ctx)
	if err != nil {
		return core.Report{}, err
	}
	copy(dst[:pl.n], src[:pl.n])
	rep, err := ec.seq.TransformContext(ctx, dst[:pl.n])
	pl.finishCtx(ec, err == nil)
	return rep, err
}

// Invocation is one in-flight parallel transform: the execution context it
// drew and the rank task group launched on the executor. Begin/Wait exist so
// batch drivers can pipeline several invocations — the executor's admission
// queue, not per-item goroutines, provides the concurrency.
type Invocation struct {
	pl *Plan
	ec *execCtx
	l  *mpi.Launch

	// epoched marks a transport-backed invocation: it drew an epoch in Begin
	// and must close it (world.EpochEnd) in Wait.
	epoched bool

	// p == 1 fast path: the transform completed synchronously in Begin.
	done bool
	rep  core.Report
	err  error
}

// Begin validates the call, reserves executor admission for the rank group,
// draws an execution context, and launches the fan-out. It blocks while the
// executor is saturated (admission is FIFO, so callers drain in arrival
// order) and returns once the ranks are running; join with Wait.
//
// Order matters: admission is reserved before the execution context is
// drawn, so a caller queueing at a saturated executor holds no world — the
// plan's context pool serves the gangs actually running, not the line
// waiting to run. An admission-time cancellation returns ctx.Err() with no
// context consumed.
func (pl *Plan) Begin(ctx context.Context, dst, src []complex128) (*Invocation, error) {
	if len(dst) < pl.n || len(src) < pl.n {
		return nil, fmt.Errorf("parallel: buffers too short for size %d", pl.n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if pl.p == 1 {
		inv := &Invocation{pl: pl, done: true}
		inv.rep, inv.err = pl.runSeq(ctx, dst, src)
		return inv, nil
	}
	res, err := pl.ex.Reserve(ctx, pl.gang)
	if err != nil {
		return nil, err
	}
	ec, err := pl.getCtx(ctx)
	if err != nil {
		res.Cancel()
		return nil, err
	}
	if cause := ec.world.AbortCause(); cause != nil {
		// A transport-backed world is permanent; once its wire died, every
		// later Transform fails fast with the root cause.
		pl.finishCtx(ec, false)
		res.Cancel()
		return nil, fmt.Errorf("parallel: world is dead: %w", cause)
	}
	inv := &Invocation{pl: pl, ec: ec}
	if pl.ring != nil {
		// Assign this transform the next epoch and stamp it on the slot's
		// endpoints: its frames match only against this epoch's receives, so
		// a later transform's scatter can overtake an earlier gather on the
		// wire without crossing streams. Epochs count up in Begin order —
		// remote serve lanes expect exactly that sequence.
		epoch := pl.epochSeq.Add(1) - 1
		for _, r := range ec.world.LocalRanks() {
			ec.ranks[r].comm.SetEpoch(epoch)
		}
		ec.world.EpochBegin()
		inv.epoched = true
	}
	inv.l = ec.world.LaunchReserved(ctx, res, func(c *mpi.Comm) error {
		rank := c.Rank()
		rep, err := pl.rankBody(ctx, ec.ranks[rank], dst, src)
		ec.reports[rank] = rep
		// A non-nil return is the poison-pill broadcast (LaunchReserved
		// aborts the world), so peers blocked on this rank's blocks return
		// the root cause instead of hanging.
		return err
	})
	return inv, nil
}

// Wait joins the rank group and aggregates the per-rank reports. A cleanly
// finished context returns to the plan's pool; one that aborted (rank
// failure or cancellation) is discarded, since its world may hold
// undelivered messages.
func (inv *Invocation) Wait() (core.Report, error) {
	if inv.done {
		return inv.rep, inv.err
	}
	pl, ec := inv.pl, inv.ec
	firstErr := inv.l.Wait()
	if inv.epoched {
		ec.world.EpochEnd()
	}
	var total core.Report
	for r := 0; r < pl.p; r++ {
		total.Add(ec.reports[r])
	}
	if firstErr == nil {
		// A world aborted by a cancel that raced completion is dropped
		// (finishCtx keeps transport ring slots either way); the finished
		// results are still valid.
		pl.finishCtx(ec, !ec.world.Aborted())
		return total, nil
	}
	// Prefer the root cause over the abort echoes the other ranks report.
	if cause := ec.world.AbortCause(); cause != nil {
		firstErr = cause
	}
	pl.finishCtx(ec, false)
	return total, firstErr
}

// Serve runs this process's ranks of a distributed world: for every
// transform the root process initiates, the local rank bodies run their
// slice of the six-step pipeline — blocked in the scatter receive between
// transforms — until the root shuts the wire down (Serve returns nil) or a
// rank fails (Serve returns the cause, after the abort has been propagated
// to every process). The plan must have been built over an explicit
// Transport whose placement puts at least one rank here; it must mirror the
// root's geometry and scheme exactly, which is what the wire handshake's
// WorldMeta guarantees.
//
// Serve runs epochRing concurrent lanes, mirroring the root's epoch ring:
// lane s handles epochs s, s+R, s+2R, … (the root assigns epochs to
// transforms sequentially), so transform k+1's scatter is consumed while
// transform k's gather drains. Lanes reserve executor admission in strict
// epoch order (a turn token circulates lane→lane), so a small executor
// degrades gracefully to the old serial schedule: the lane holding the one
// admission slot is always the lane whose epoch the root is driving.
func (pl *Plan) Serve(ctx context.Context) error {
	if pl.cfg.Transport == nil || pl.p == 1 {
		return fmt.Errorf("parallel: Serve needs a plan over an explicit multi-rank transport")
	}
	lanes := make([]*execCtx, 0, epochRing)
	for i := 0; i < epochRing; i++ {
		ec, err := pl.getCtx(ctx)
		if err != nil {
			for _, held := range lanes {
				pl.finishCtx(held, false)
			}
			return err
		}
		lanes = append(lanes, ec)
	}
	turns := make([]chan struct{}, len(lanes))
	for i := range turns {
		turns[i] = make(chan struct{}, 1)
	}
	turns[0] <- struct{}{} // epoch 0 reserves first
	// One cancellation watcher for the whole serve loop: the lanes share one
	// world and one ctx, so per-round watchers (PR 9) were pure allocation.
	stopWatch := lanes[0].world.WatchContext(ctx)
	defer stopWatch()
	var wg sync.WaitGroup
	errs := make([]error, len(lanes))
	for s, ec := range lanes {
		wg.Add(1)
		go func(s int, ec *execCtx) {
			defer wg.Done()
			defer pl.finishCtx(ec, false)
			next := turns[(s+1)%len(turns)]
			errs[s] = pl.serveLane(ctx, ec, uint32(s), uint32(len(lanes)), turns[s], next)
		}(s, ec)
	}
	wg.Wait()
	// The lanes share one world, so a failure anywhere aborts them all; the
	// root cause beats the per-lane echoes, and a clean goodbye is success.
	if cause := lanes[0].world.AbortCause(); cause != nil && !errors.Is(cause, mpi.ErrShutdown) {
		return cause
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// serveLane is one Serve lane: it runs this process's rank bodies for epochs
// epoch, epoch+stride, epoch+2·stride, … until shutdown (nil), cancellation,
// or a world abort (the cause). turn gates executor admission: the lane
// reserves only when the token says its epoch is next, then passes the token
// on, so admission order matches epoch order and a lane can never starve the
// lane whose epoch the root is actually driving. A lane that exits without
// passing the token leaves its peers parked on turn — safe, because every
// exit path below has closed the world or canceled ctx, and the peers select
// on both.
func (pl *Plan) serveLane(ctx context.Context, ec *execCtx, epoch, stride uint32, turn, next chan struct{}) error {
	// The lane's rank fan-out is identical every round, so the gang and every
	// rank-body closure are prebuilt once here and the round loop below runs
	// allocation-free: reservation into a stack slot, prebuilt launch, wait.
	// Cancellation unwinds through Serve's world-level WatchContext.
	lane := ec.world.NewLane(pl.ex, func(c *mpi.Comm) error {
		_, err := pl.rankBody(ctx, ec.ranks[c.Rank()], nil, nil)
		return err
	})
	var res exec.Reservation
	for {
		select {
		case <-turn:
		case <-ctx.Done():
			return ctx.Err()
		case <-ec.world.Done():
			if err := ec.world.AbortCause(); !errors.Is(err, mpi.ErrShutdown) {
				return err
			}
			return nil
		}
		if err := pl.ex.ReserveInto(ctx, pl.gang, &res); err != nil {
			return err
		}
		next <- struct{}{}
		for _, r := range ec.world.LocalRanks() {
			ec.ranks[r].comm.SetEpoch(epoch)
		}
		ec.world.EpochBegin()
		lane.Launch(&res)
		err := lane.Wait()
		ec.world.EpochEnd()
		if err != nil {
			if errors.Is(err, mpi.ErrShutdown) {
				return nil
			}
			if cause := ec.world.AbortCause(); cause != nil && !errors.Is(err, cause) {
				return cause
			}
			return err
		}
		epoch += stride
	}
}

const (
	tagTran1   = 1
	tagTran2   = 2
	tagTran3   = 3
	tagScatter = 4 // root → rank: the rank's q-point input slice
	tagGather  = 5 // rank → root: the rank's q-point output slice
	tagReport  = 6 // rank → root: encoded per-rank Report (distributed worlds)
)

// rankBody is the per-rank six-step pipeline, running entirely out of the
// rank's preallocated workspace plus its World endpoints — the algorithm
// layer is transport-pure. Only the root rank (rank 0, in the caller's
// process) touches the caller's dst/src slices; every other rank receives
// its input slice in an explicit root-rank scatter and returns its output in
// an explicit gather, both checksum-protected when the plan is. When the
// transport grants the SharedMemory capability (the in-process chan wire),
// ranks skip the exchange and copy their slices directly — the zero-copy
// fast path, chosen by capability, never assumed. ctx is checked between
// stages (the communication stages additionally unwind via the world abort).
func (pl *Plan) rankBody(ctx context.Context, rs *rankState, dst, src []complex128) (core.Report, error) {
	var rep core.Report
	q := pl.q
	rank := rs.comm.Rank()

	local, recvBuf := rs.local, rs.recv
	if rs.shared {
		copy(local, src[rank*q:(rank+1)*q])
	} else if err := pl.scatterInput(rs, local, src, &rep); err != nil {
		return rep, err
	}

	sigma0 := roundoff.RMSStrided(local, min(q, 512), max(1, q/512))
	if sigma0 == 0 {
		sigma0 = 1
	}
	etaScale := pl.cfg.EtaScale
	if etaScale == 0 {
		etaScale = 1
	}

	// ---- Transpose 1 ----
	if err := pl.transpose(rs, local, recvBuf, nil, tagTran1, &rep); err != nil {
		return rep, err
	}
	local, recvBuf = recvBuf, local

	// ---- FFT1: b p-point FFTs over stride b, in place, protected ----
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if err := pl.fft1(rs, local, sigma0, etaScale, &rep); err != nil {
		return rep, err
	}

	// ---- Transpose 2 ----
	if err := pl.transpose(rs, local, recvBuf, nil, tagTran2, &rep); err != nil {
		return rep, err
	}
	local = recvBuf

	// ---- Twiddle ω_N^{n1·rank} (DMR) ----
	pl.twiddleLocal(rs, local, &rep)

	// ---- FFT2: q-point in-place (two- or three-layer protected) ----
	r2, err := rs.fft2.TransformContext(ctx, local)
	rep.Add(r2)
	if err != nil {
		return rep, err
	}

	// ---- Transpose 3 + local adjustment ----
	// The root writes its slice of the output in place either way; non-root
	// ranks write the caller's dst directly only on the shared fast path.
	out := rs.out
	if rs.shared || rank == 0 {
		out = dst[rank*q : (rank+1)*q]
	}
	if err := pl.transpose(rs, local, nil, out, tagTran3, &rep); err != nil {
		return rep, err
	}
	if !rs.shared {
		if err := pl.gatherOutput(rs, out, dst, &rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// scatterInput is the explicit input distribution of message mode: the root
// rank sends every peer its q-point slice of src; peers receive into their
// local workspace. Protected plans attach a checksum pair to each slice and
// verify (single-element-repairing) on receipt — an input slice corrupted on
// the wire is healed before the pipeline consumes it.
func (pl *Plan) scatterInput(rs *rankState, local, src []complex128, rep *core.Report) error {
	c := rs.comm
	q := pl.q
	if c.Rank() == 0 {
		for j := 1; j < pl.p; j++ {
			blk := src[j*q : (j+1)*q]
			if pl.weightsQ != nil {
				c.IsendPair(j, tagScatter, blk, pl.weightsQ)
			} else {
				c.Send(j, tagScatter, blk, nil)
			}
		}
		copy(local, src[:q])
		return nil
	}
	cs, has, cur, err := c.IrecvPair(0, tagScatter, local, pl.weightsQ).WaitPair()
	if err != nil {
		return err
	}
	return pl.verifySlice(c.Rank(), 0, local, pl.weightsQ, cs, has, cur, rep)
}

// gatherOutput is the explicit output collection of message mode: every
// non-root rank sends its finished q-point slice to the root, which writes
// it (after checksum verification) straight into the caller's dst. In a
// distributed world the non-root ranks also ship their Reports, so the
// caller's aggregate accounting covers remote fault activity.
func (pl *Plan) gatherOutput(rs *rankState, out, dst []complex128, rep *core.Report) error {
	c := rs.comm
	q := pl.q
	if c.Rank() != 0 {
		if pl.weightsQ != nil {
			c.IsendPair(0, tagGather, out, pl.weightsQ)
		} else {
			c.Send(0, tagGather, out, nil)
		}
		if rs.dist {
			encodeReport(rs.repBuf, *rep)
			if pl.weightsR != nil {
				c.IsendPair(0, tagReport, rs.repBuf, pl.weightsR)
			} else {
				c.Send(0, tagReport, rs.repBuf, nil)
			}
		}
		return nil
	}
	for j := 1; j < pl.p; j++ {
		slot := dst[j*q : (j+1)*q]
		cs, has, cur, err := c.IrecvPair(j, tagGather, slot, pl.weightsQ).WaitPair()
		if err != nil {
			return err
		}
		if err := pl.verifySlice(0, j, slot, pl.weightsQ, cs, has, cur, rep); err != nil {
			return err
		}
	}
	if rs.dist {
		for j := 1; j < pl.p; j++ {
			cs, has, cur, err := c.IrecvPair(j, tagReport, rs.repBuf, pl.weightsR).WaitPair()
			if err != nil {
				return err
			}
			if err := pl.verifySlice(0, j, rs.repBuf, pl.weightsR, cs, has, cur, rep); err != nil {
				return err
			}
			rep.Add(decodeReport(rs.repBuf))
		}
	}
	return nil
}

// verifySlice checks a received scatter/gather/report message against its
// carried checksums, repairing a single corrupted element in place. cur is
// the receiver-side pair, computed during the fused decode sweep
// (mpi.WaitPair) — bit-identical to a separate checksum.GeneratePair pass.
func (pl *Plan) verifySlice(rank, from int, slice, weights []complex128, cs [2]complex128, hasCS bool, cur checksum.Pair, rep *core.Report) error {
	if weights == nil || !hasCS {
		return nil
	}
	stored := checksum.Pair{D1: cs[0], D2: cs[1]}
	d := stored.Sub(cur)
	if d.D1 == 0 && d.D2 == 0 {
		return nil
	}
	rep.Detections++
	j, ok := checksum.Locate(d, len(weights))
	if !ok {
		rep.Uncorrectable = true
		return fmt.Errorf("parallel: rank %d: unrecoverable corruption in slice from %d: %w", rank, from, core.ErrUncorrectable)
	}
	slice[j] += d.D1 / weights[j]
	rep.MemCorrections++
	return nil
}

// reportWords is the encoded size of a core.Report on the wire: five
// counters plus the uncorrectable flag, one real-valued word each.
const reportWords = 6

// encodeReport serializes rep into buf (length reportWords). Counters ride
// in real parts; float64 holds every realistic count exactly.
func encodeReport(buf []complex128, rep core.Report) {
	buf[0] = complex(float64(rep.Detections), 0)
	buf[1] = complex(float64(rep.CompRecomputations), 0)
	buf[2] = complex(float64(rep.MemCorrections), 0)
	buf[3] = complex(float64(rep.TwiddleCorrections), 0)
	buf[4] = complex(float64(rep.FullRestarts), 0)
	buf[5] = 0
	if rep.Uncorrectable {
		buf[5] = 1
	}
}

// decodeReport is the inverse of encodeReport. Counters round rather than
// truncate: a report frame repaired in transit restores its values to within
// rounding of the exact integers, not necessarily bit-exactly.
func decodeReport(buf []complex128) core.Report {
	return core.Report{
		Detections:         int(math.Round(real(buf[0]))),
		CompRecomputations: int(math.Round(real(buf[1]))),
		MemCorrections:     int(math.Round(real(buf[2]))),
		TwiddleCorrections: int(math.Round(real(buf[3]))),
		FullRestarts:       int(math.Round(real(buf[4]))),
		Uncorrectable:      real(buf[5]) != 0,
	}
}

// deliver verifies (and single-element-repairs) a received block, then
// either scatters it with stride p into scatterOut (transpose 3's fused
// local adjustment) or copies it to its slot in dest. cur is the
// receiver-side pair from the fused decode sweep (mpi.WaitPair).
func (pl *Plan) deliver(rank, s int, block []complex128, cs [2]complex128, hasCS bool, cur checksum.Pair, dest, scatterOut []complex128, rep *core.Report) error {
	b := pl.b
	if pl.cfg.Protected && hasCS {
		stored := checksum.Pair{D1: cs[0], D2: cs[1]}
		d := stored.Sub(cur)
		// Same data, same summation order: clean transfers compare
		// exactly; any difference is a transit/memory corruption.
		if d.D1 != 0 || d.D2 != 0 {
			rep.Detections++
			j, ok := checksum.Locate(d, b)
			if !ok {
				rep.Uncorrectable = true
				return fmt.Errorf("parallel: rank %d: unrecoverable corruption in block from %d: %w", rank, s, core.ErrUncorrectable)
			}
			block[j] += d.D1 / pl.weightsB[j]
			rep.MemCorrections++
		}
	}
	if scatterOut != nil {
		// scatterOut[t·p + s] = block[t]: interleave by origin rank.
		idx := s
		for t := 0; t < b; t++ {
			scatterOut[idx] = block[t]
			idx += pl.p
		}
	} else {
		copy(dest[s*b:(s+1)*b], block)
	}
	return nil
}

// transpose performs the all-to-all block exchange. Blocks carry weighted
// checksums when the plan is protected; receivers verify and repair single
// corrupted elements. With cfg.Optimized the exchange is pipelined
// (Algorithm 3): while waiting for peer i's block, peer i+1's send is
// already posted and peer i-1's block is being verified and processed.
//
// If scatterOut is nil, the incoming block from rank s lands at
// dest[s·b:(s+1)·b]; otherwise it is strided into scatterOut (dest may then
// be nil).
func (pl *Plan) transpose(rs *rankState, send, dest, scatterOut []complex128, tag int, rep *core.Report) error {
	b := pl.b
	c := rs.comm
	rank := c.Rank()
	sched := rs.sched

	// Protected blocks fuse §5 checksum generation into the send-side payload
	// capture and verification into the receive-side decode (mpi.IsendPair /
	// WaitPair): one pass over each block where the separate-pass scheme took
	// two, with bit-identical checksum values.
	var wB []complex128
	if pl.cfg.Protected {
		wB = pl.weightsB
	}

	if !pl.cfg.Optimized {
		// Blocking transpose: send everything, then drain in order.
		for _, dstRank := range sched {
			blk := send[dstRank*b : (dstRank+1)*b]
			if wB != nil {
				c.IsendPair(dstRank, tag, blk, wB)
			} else {
				c.Send(dstRank, tag, blk, nil)
			}
		}
		buf := rs.blockBuf
		for _, s := range sched {
			cs, has, cur, err := c.IrecvPair(s, tag, buf, wB).WaitPair()
			if err != nil {
				return err
			}
			if err := pl.deliver(rank, s, buf, cs, has, cur, dest, scatterOut, rep); err != nil {
				return err
			}
		}
		return nil
	}

	// Pipelined transpose (Algorithm 3): double-buffered receives; checksum
	// generation for the next send and verification of the previous block
	// overlap the in-flight exchange.
	prevBuf, nextBuf := rs.rb1, rs.rb2
	var prevReq *mpi.RecvRequest
	var prevSrc int
	for _, peer := range sched {
		blk := send[peer*b : (peer+1)*b]
		// Checksum generated while the previous exchange is in flight.
		if wB != nil {
			c.IsendPair(peer, tag, blk, wB)
		} else {
			c.Isend(peer, tag, blk, nil)
		}
		req := c.IrecvPair(peer, tag, nextBuf, wB)
		if prevReq != nil {
			pcs, phas, pcur, err := prevReq.WaitPair()
			if err != nil {
				return err
			}
			if err := pl.deliver(rank, prevSrc, prevBuf, pcs, phas, pcur, dest, scatterOut, rep); err != nil {
				return err
			}
		}
		prevReq, prevSrc = req, peer
		prevBuf, nextBuf = nextBuf, prevBuf
	}
	pcs, phas, pcur, err := prevReq.WaitPair()
	if err != nil {
		return err
	}
	return pl.deliver(rank, prevSrc, prevBuf, pcs, phas, pcur, dest, scatterOut, rep)
}

// fft1 runs the b p-point sub-FFTs over stride b, in place, with dual-use
// input checksums generated in one contiguous sweep and Fig. 4 backup-based
// recovery. Sub-FFT inputs are read directly from the strided local vector
// (no gather): the strided data itself is the Fig. 4 backup, verified and
// repaired in place on a checksum mismatch.
func (pl *Plan) fft1(rs *rankState, local []complex128, sigma0, etaScale float64, rep *core.Report) error {
	p, b := pl.p, pl.b
	rank := rs.comm.Rank()
	plan := pl.fftP
	bufOut := rs.bufOut
	if !pl.cfg.Protected {
		for t := 0; t < b; t++ {
			plan.ExecuteStrided(bufOut, local[t:], b)
			scatterStride(local[t:], bufOut, p, b)
		}
		return nil
	}

	cp := pl.checkP
	eta := etaScale * roundoff.EtaStage1(p, sigma0)
	maxRetries := pl.cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	}

	// CMCG: contiguous sweep accumulating one pair per sub-FFT.
	pairs := rs.pairs
	for i := range pairs {
		pairs[i] = checksum.Pair{}
	}
	for idx, v := range local {
		n2 := idx / b
		t := idx % b
		wv := cp[n2] * v
		pairs[t].D1 += wv
		pairs[t].D2 += complex(float64(n2), 0) * wv
	}

	for t := 0; t < b; t++ {
		cx := pairs[t].D1
		ok := false
		for attempt := 0; attempt <= maxRetries; attempt++ {
			plan.ExecuteStrided(bufOut, local[t:], b)
			fault.Visit(pl.cfg.Injector, fault.SiteParallelFFT1, rank, bufOut, p, 1)
			outSum := checksum.DotOmega3(bufOut)
			diff := cmplx.Abs(outSum - cx)
			floor := relFloor(p, outSum, cx)
			if diff <= eta+floor {
				ok = true
				break
			}
			rep.Detections++
			// Postponed MCV: disambiguate input memory vs computation.
			cur := checksum.GeneratePairStrided(cp, local[t:], p, b)
			d := pairs[t].Sub(cur)
			if cmplx.Abs(d.D1) > eta {
				if jj, located := checksum.Locate(d, p); located {
					local[t+jj*b] += d.D1 / cp[jj]
					rep.MemCorrections++
					continue
				}
				rep.Uncorrectable = true
				return fmt.Errorf("parallel: rank %d: unrecoverable FFT1 input corruption: %w", rank, core.ErrUncorrectable)
			}
			rep.CompRecomputations++
		}
		if !ok {
			rep.Uncorrectable = true
			return fmt.Errorf("parallel: rank %d: FFT1 retries exhausted: %w", rank, core.ErrUncorrectable)
		}
		scatterStride(local[t:], bufOut, p, b)
	}
	return nil
}

// twiddleLocal applies local[n1] ·= ω_N^{n1·rank} with DMR when protected,
// using the plan's precomputed twiddle row for this rank.
func (pl *Plan) twiddleLocal(rs *rankState, local []complex128, rep *core.Report) {
	rank := rs.comm.Rank()
	tw := pl.twiddle[rank*pl.q : (rank+1)*pl.q]
	if !pl.cfg.Protected {
		for i := range local {
			local[i] *= tw[i]
		}
		return
	}
	chunk := rs.chunk
	for off := 0; off < pl.q; off += len(chunk) {
		end := min(off+len(chunk), pl.q)
		cpart := chunk[:end-off]
		for i := range cpart {
			cpart[i] = local[off+i] * tw[off+i]
		}
		fault.Visit(pl.cfg.Injector, fault.SiteTwiddle, rank, cpart, len(cpart), 1)
		for i := range cpart {
			v2 := local[off+i] * tw[off+i]
			if cpart[i] != v2 {
				rep.Detections++
				v3 := local[off+i] * tw[off+i]
				if v2 == v3 {
					cpart[i] = v2
				}
				rep.TwiddleCorrections++
			}
		}
		copy(local[off:end], cpart)
	}
}

func relFloor(n int, a, b complex128) float64 {
	return 64 * 2.220446049250313e-16 * math.Sqrt(float64(n)) * (cmplx.Abs(a) + cmplx.Abs(b))
}

func scatterStride(dst, src []complex128, n, stride int) {
	idx := 0
	for j := 0; j < n; j++ {
		dst[idx] = src[j]
		idx += stride
	}
}
