package parallel

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"ftfft/internal/core"
	"ftfft/internal/exec"
	"ftfft/internal/fault"
	"ftfft/internal/mpi"
)

// TestMessageOnlyBitIdentical is the transport-purity proof for the chan
// wire: with the shared-memory fast path masked (explicit root-rank
// scatter/gather messages over the same in-process transport), every
// variant's output is bit-for-bit the shared-path output.
func TestMessageOnlyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, g := range []struct{ n, p int }{{256, 4}, {1024, 4}, {4096, 8}} {
		x := randomVec(rng, g.n)
		for _, cfg := range []Config{
			{},
			{Optimized: true},
			{Protected: true},
			{Protected: true, Optimized: true},
		} {
			shared, err := NewPlan(g.n, g.p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			msgCfg := cfg
			msgCfg.Transport = mpi.MessageOnly(mpi.NewChanTransport(g.p))
			msg, err := NewPlan(g.n, g.p, msgCfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]complex128, g.n)
			got := make([]complex128, g.n)
			if _, err := shared.Transform(want, x); err != nil {
				t.Fatalf("shared n=%d p=%d prot=%v opt=%v: %v", g.n, g.p, cfg.Protected, cfg.Optimized, err)
			}
			// Two rounds over the message wire: steady-state reuse of the
			// exclusive context must stay bit-identical too.
			for round := 0; round < 2; round++ {
				rep, err := msg.Transform(got, x)
				if err != nil {
					t.Fatalf("message n=%d p=%d prot=%v opt=%v: %v", g.n, g.p, cfg.Protected, cfg.Optimized, err)
				}
				if cfg.Protected && !rep.Clean() {
					t.Fatalf("fault-free message run not clean: %+v", rep)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d p=%d prot=%v opt=%v round %d: outputs differ at %d: %v vs %v",
							g.n, g.p, cfg.Protected, cfg.Optimized, round, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// startSocketWorld spins up a p-rank Unix-socket world inside this test
// process: the returned hub hosts rank 0; p-1 goroutines dial in and serve
// plans configured by the handshake, each on a private executor (separate
// single-rank gangs block on each other, so sharing one saturated pool
// would deadlock — real deployments run them in separate processes). With
// mesh, the hub is a ListenMeshHub and the workers dial each other directly.
func startSocketWorld(t *testing.T, p int, mesh bool, workerInj func(rank int) fault.Injector) (*mpi.HubTransport, *sync.WaitGroup) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "world.sock")
	listen := mpi.ListenHub
	if mesh {
		listen = mpi.ListenMeshHub
	}
	hub, err := listen("unix", sock, p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i < p; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, meta, err := mpi.DialWorker("unix", sock)
			if err != nil {
				t.Errorf("worker dial: %v", err)
				return
			}
			defer tr.Close()
			var inj fault.Injector
			if workerInj != nil {
				inj = workerInj(tr.Rank())
			}
			pl, err := NewPlan(meta.N, meta.P, Config{
				Protected: meta.Protected, Optimized: meta.Optimized,
				EtaScale: meta.EtaScale, MaxRetries: meta.MaxRetries,
				Injector: inj, Transport: tr, Executor: exec.New(1),
			})
			if err != nil {
				t.Errorf("worker plan: %v", err)
				return
			}
			if err := pl.Serve(context.Background()); err != nil {
				t.Errorf("worker rank %d serve: %v", tr.Rank(), err)
			}
		}()
	}
	return hub, &wg
}

// startShmWorld spins up a p-rank shared-memory world inside this test
// process, the ring-file twin of startSocketWorld: the hub hosts rank 0 and
// p-1 goroutines attach as workers, so the mmap rings, record framing, and
// fused checksum sweeps run under the race detector.
func startShmWorld(t *testing.T, p int, workerInj func(rank int) fault.Injector) (*mpi.ShmHubTransport, *sync.WaitGroup) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "world.ring")
	hub, err := mpi.CreateShmHub(path, p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i < p; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, meta, err := mpi.DialShmWorker(path)
			if err != nil {
				t.Errorf("worker attach: %v", err)
				return
			}
			defer tr.Close()
			var inj fault.Injector
			if workerInj != nil {
				inj = workerInj(tr.Rank())
			}
			pl, err := NewPlan(meta.N, meta.P, Config{
				Protected: meta.Protected, Optimized: meta.Optimized,
				EtaScale: meta.EtaScale, MaxRetries: meta.MaxRetries,
				Injector: inj, Transport: tr, Executor: exec.New(1),
			})
			if err != nil {
				t.Errorf("worker plan: %v", err)
				return
			}
			if err := pl.Serve(context.Background()); err != nil {
				t.Errorf("worker rank %d serve: %v", tr.Rank(), err)
			}
		}()
	}
	return hub, &wg
}

// wireWorld abstracts the two real multi-endpoint wires (sockets, shm rings)
// so the bit-identity and corruption-repair contracts run over both.
type wireWorld interface {
	mpi.Transport
	InjectWireFaults(mpi.WireFault)
	Close() error
}

// startWireWorld dispatches on the wire name CI and the test matrix use:
// "socket" is the star relay, "mesh" the peer-dialed socket mesh, "shm" the
// memory-mapped rings.
func startWireWorld(t *testing.T, wire string, p int) (wireWorld, *sync.WaitGroup) {
	t.Helper()
	if wire == "shm" {
		return startShmWorld(t, p, nil)
	}
	return startSocketWorld(t, p, wire == "mesh", nil)
}

// TestSocketTransportBitIdentical runs the protected-optimized pipeline over
// real Unix-domain sockets and over the shared-memory rings (worker ranks
// served in-process, so the wire — codec, relay or rings, handshake — is
// exercised under the race detector) and demands bit-for-bit the output of
// the equivalent message-only chan run, with and without injected faults,
// across repeated transforms on one world.
func TestSocketTransportBitIdentical(t *testing.T) {
	const n, p = 4096, 4
	rng := rand.New(rand.NewSource(33))
	x := randomVec(rng, n)

	// Faults pinned to rank 0 (the hub process): the message-fault strikes a
	// scatter/transpose payload that a remote rank must verify and repair,
	// and the FFT1 fault exercises recomputation — occurrence counting is
	// per (site, rank), so the reference run sees the identical sequence.
	mkSched := func() *fault.Schedule {
		return fault.NewSchedule(5,
			fault.Fault{Site: fault.SiteMessage, Rank: 0, Occurrence: 2, Index: -1, Mode: fault.AddConstant, Value: 7},
			fault.Fault{Site: fault.SiteMessage, Rank: 0, Occurrence: 6, Index: -1, Mode: fault.AddConstant, Value: -3},
			fault.Fault{Site: fault.SiteParallelFFT1, Rank: 0, Occurrence: 4, Index: -1, Mode: fault.AddConstant, Value: 2},
		)
	}

	for _, wire := range []string{"socket", "mesh", "shm"} {
		for _, faulty := range []bool{false, true} {
			name := wire + "/clean"
			if faulty {
				name = wire + "/faulty"
			}
			t.Run(name, func(t *testing.T) {
				cfg := Config{Protected: true, Optimized: true}
				var refSched, wireSched *fault.Schedule
				if faulty {
					refSched, wireSched = mkSched(), mkSched()
				}

				refCfg := cfg
				refCfg.Transport = mpi.MessageOnly(mpi.NewChanTransport(p))
				if refSched != nil {
					refCfg.Injector = refSched
				}
				ref, err := NewPlan(n, p, refCfg)
				if err != nil {
					t.Fatal(err)
				}

				hub, wg := startWireWorld(t, wire, p)
				wireCfg := cfg
				wireCfg.Transport = hub
				if wireSched != nil {
					wireCfg.Injector = wireSched
				}
				wpl, err := NewPlan(n, p, wireCfg)
				if err != nil {
					t.Fatal(err)
				}

				want := make([]complex128, n)
				got := make([]complex128, n)
				for round := 0; round < 3; round++ {
					wantRep, err := ref.Transform(want, x)
					if err != nil {
						t.Fatalf("round %d ref: %v", round, err)
					}
					gotRep, err := wpl.Transform(got, x)
					if err != nil {
						t.Fatalf("round %d %s: %v", round, wire, err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("round %d: %s output differs at %d: %v vs %v", round, wire, i, got[i], want[i])
						}
					}
					if gotRep != wantRep {
						t.Fatalf("round %d: reports differ: %s %+v vs ref %+v", round, wire, gotRep, wantRep)
					}
				}
				if faulty {
					if !refSched.AllFired() || !wireSched.AllFired() {
						t.Fatalf("faults did not all fire: ref=%v wire=%v", refSched.AllFired(), wireSched.AllFired())
					}
				}
				hub.Close()
				wg.Wait()
			})
		}
	}
}

// TestSocketWireCorruptionRepaired injects a fault below the codec — a bit
// flipped in the serialized payload bytes of an in-flight frame (socket
// buffer or shm ring alike) — and demands the §5 block checksums detect and
// repair it: the ABFT protects the wire representation itself, not just the
// in-memory arrays.
func TestSocketWireCorruptionRepaired(t *testing.T) {
	const n, p = 1024, 4
	rng := rand.New(rand.NewSource(44))
	x := randomVec(rng, n)

	clean, err := NewPlan(n, p, Config{Protected: true, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	if _, err := clean.Transform(want, x); err != nil {
		t.Fatal(err)
	}

	for _, wire := range []string{"socket", "mesh", "shm"} {
		t.Run(wire, func(t *testing.T) {
			hub, wg := startWireWorld(t, wire, p)
			defer func() { hub.Close(); wg.Wait() }()
			pl, err := NewPlan(n, p, Config{Protected: true, Optimized: true, Transport: hub, Executor: exec.New(1)})
			if err != nil {
				t.Fatal(err)
			}
			flips := 0
			hub.InjectWireFaults(func(dst, src, tag, epoch int, payload []byte) {
				// One mantissa-bit flip in the first outbound transpose payload.
				if flips == 0 && tag == tagTran1 && len(payload) >= 8 {
					payload[3] ^= 0x10
					flips++
				}
			})
			dst := make([]complex128, n)
			rep, err := pl.Transform(dst, x)
			if err != nil {
				t.Fatalf("%v (%+v)", err, rep)
			}
			if flips != 1 {
				t.Fatalf("wire fault did not fire (flips=%d)", flips)
			}
			if rep.Detections == 0 || rep.MemCorrections == 0 {
				t.Fatalf("wire corruption not detected/repaired: %+v", rep)
			}
			if d := maxAbsDiff(dst, want); d > 1e-7*float64(n)*(1+maxAbs(want)) {
				t.Fatalf("repaired output off by %g", d)
			}
		})
	}
}

// TestSocketWorkerFailurePropagates: a worker rank that exhausts its retry
// budget must poison the whole distributed world — the root's Transform
// returns an error instead of hanging, and later Transforms fail fast.
func TestSocketWorkerFailurePropagates(t *testing.T) {
	const n, p = 1024, 4
	rng := rand.New(rand.NewSource(55))
	x := randomVec(rng, n)

	// Workers get a persistent FFT1 corruption on rank 2; Serve exits with
	// the failure, so silence the per-worker error check via a local world.
	sock := filepath.Join(t.TempDir(), "world.sock")
	hub, err := mpi.ListenHub("unix", sock, p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, p)
	for i := 1; i < p; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, meta, err := mpi.DialWorker("unix", sock)
			if err != nil {
				t.Error(err)
				return
			}
			defer tr.Close()
			pl, err := NewPlan(meta.N, meta.P, Config{
				Protected: meta.Protected, Optimized: meta.Optimized,
				MaxRetries: meta.MaxRetries,
				Injector:   &stuckRank{rank: 2},
				Transport:  tr, Executor: exec.New(1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			workerErrs[tr.Rank()] = pl.Serve(context.Background())
		}()
	}
	pl, err := NewPlan(n, p, Config{Protected: true, Optimized: true, MaxRetries: 2, Transport: hub, Executor: exec.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, n)
	if _, err := pl.Transform(dst, x); err == nil {
		t.Fatal("transform over a failing worker rank succeeded")
	}
	// The dead wire must fail fast, not hang.
	if _, err := pl.Transform(dst, x); err == nil {
		t.Fatal("transform on a dead world succeeded")
	}
	hub.Close()
	wg.Wait()
	if workerErrs[2] == nil || !errors.Is(workerErrs[2], core.ErrUncorrectable) {
		t.Fatalf("failing worker should report its own cause, got %v", workerErrs[2])
	}
}
