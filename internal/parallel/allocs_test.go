package parallel

import (
	"testing"

	"ftfft/internal/dft"
)

// TestTransformAllocs is the zero-allocation steady-state regression test:
// after plan build, a sequential (p = 1) Plain transform must not allocate
// at all, and a parallel transform may allocate only the O(p) cost of
// spawning its rank goroutines.
func TestTransformAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	const n = 1024
	src := make([]complex128, n)
	dst := make([]complex128, n)
	for i := range src {
		src[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}

	t.Run("sequential", func(t *testing.T) {
		pl, err := NewPlan(n, 1, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Warm up once so lazy pool paths settle.
		if _, err := pl.Transform(dst, src); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := pl.Transform(dst, src); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("sequential Plain Transform: %v allocs/op, want 0", allocs)
		}
	})

	for _, tc := range []struct {
		name string
		p    int
		cfg  Config
	}{
		{"p2/plain", 2, Config{}},
		{"p2/protected-opt", 2, Config{Protected: true, Optimized: true}},
		{"p4/plain", 4, Config{}},
		{"p4/protected", 4, Config{Protected: true}},
		{"p4/optimized", 4, Config{Optimized: true}},
		{"p4/protected-opt", 4, Config{Protected: true, Optimized: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := NewPlan(n, tc.p, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pl.Transform(dst, src); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := pl.Transform(dst, src); err != nil {
					t.Fatal(err)
				}
			})
			// Budget: goroutine spawn and its closure per rank, plus slack
			// for runtime-internal bookkeeping. Everything else — plans,
			// twiddles, checksum vectors, buffers, the mpi world and its
			// message payloads — must come from the plan.
			budget := float64(4*tc.p + 4)
			if allocs > budget {
				t.Errorf("parallel Transform p=%d: %v allocs/op, want ≤ %v (goroutine spawn only)",
					tc.p, allocs, budget)
			}
		})
	}
}

// TestTransformRepeatable guards against stale workspace state: two
// back-to-back Transforms on one plan must produce bit-identical, correct
// output, for every protection variant, including interleaved use of two
// distinct plans sharing nothing.
func TestTransformRepeatable(t *testing.T) {
	const n, p = 1024, 4
	src := make([]complex128, n)
	for i := range src {
		src[i] = complex(float64((i*31)%17)-8, float64((i*7)%13)-6)
	}
	want := dft.Transform(src)
	tol := 1e-8 * float64(n) * (1 + maxAbs(want))

	for _, cfg := range []Config{
		{},
		{Optimized: true},
		{Protected: true},
		{Protected: true, Optimized: true},
	} {
		pl, err := NewPlan(n, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dst1 := make([]complex128, n)
		dst2 := make([]complex128, n)
		if _, err := pl.Transform(dst1, src); err != nil {
			t.Fatalf("prot=%v opt=%v first: %v", cfg.Protected, cfg.Optimized, err)
		}
		if _, err := pl.Transform(dst2, src); err != nil {
			t.Fatalf("prot=%v opt=%v second: %v", cfg.Protected, cfg.Optimized, err)
		}
		for i := range dst1 {
			if dst1[i] != dst2[i] {
				t.Fatalf("prot=%v opt=%v: outputs differ at %d: %v vs %v (stale workspace state)",
					cfg.Protected, cfg.Optimized, i, dst1[i], dst2[i])
			}
		}
		if d := maxAbsDiff(dst1, want); d > tol {
			t.Fatalf("prot=%v opt=%v: diff %g > %g", cfg.Protected, cfg.Optimized, d, tol)
		}
	}
}

// TestTransformConcurrent exercises the execution-context pool: concurrent
// Transforms on one plan must not interfere.
func TestTransformConcurrent(t *testing.T) {
	const n, p = 256, 2
	src := make([]complex128, n)
	for i := range src {
		src[i] = complex(float64(i%11)-5, float64(i%3)-1)
	}
	want := dft.Transform(src)
	tol := 1e-8 * float64(n) * (1 + maxAbs(want))

	pl, err := NewPlan(n, p, Config{Protected: true, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			dst := make([]complex128, n)
			for it := 0; it < 10; it++ {
				if _, err := pl.Transform(dst, src); err != nil {
					errc <- err
					return
				}
				if d := maxAbsDiff(dst, want); d > tol {
					errc <- errTooFar(d)
					return
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

type errTooFar float64

func (e errTooFar) Error() string { return "concurrent transform diverged" }
