package parallel

import "math"

// omegaN returns ω_n^k = exp(-2πik/n) with symmetric argument reduction.
func omegaN(n, k int) complex128 {
	k %= n
	if 2*k > n {
		k -= n
	} else if 2*k <= -n {
		k += n
	}
	ang := -2 * math.Pi * float64(k) / float64(n)
	s, c := math.Sincos(ang)
	return complex(c, s)
}
