package roundoff

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ftfft/internal/checksum"
	"ftfft/internal/fft"
)

func TestSigmaEps(t *testing.T) {
	want := math.Sqrt(0.21) / (1 << 52)
	if got := SigmaEps(); math.Abs(got-want) > want*1e-12 {
		t.Fatalf("SigmaEps = %g, want %g", got, want)
	}
}

func TestNoiseSigmaMonotonicInSize(t *testing.T) {
	prev := 0.0
	for _, m := range []int{2, 4, 16, 256, 4096} {
		s := SubFFTNoiseSigma(m, 1)
		if s <= prev {
			t.Fatalf("SubFFTNoiseSigma not increasing at m=%d: %g <= %g", m, s, prev)
		}
		prev = s
	}
	if SubFFTNoiseSigma(1, 1) != 0 {
		t.Fatal("m=1 should have zero FFT round-off")
	}
}

func TestNoiseSigmaScalesWithSigma0(t *testing.T) {
	a := SubFFTNoiseSigma(1024, 1)
	b := SubFFTNoiseSigma(1024, 2)
	if math.Abs(b-2*a) > 1e-20 {
		t.Fatalf("σ_e should be linear in σ₀: %g vs %g", b, 2*a)
	}
}

func TestPhi(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.841344746},
		{2, 0.977249868},
		{3, 0.998650102},
		{-1, 0.158655254},
	}
	for _, c := range cases {
		if got := Phi(c.z); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Phi(%g) = %g, want %g", c.z, got, c.want)
		}
	}
}

func TestThroughputModel(t *testing.T) {
	// η = 3√Nσ gives the paper's 0.997 theoretical throughput.
	n := 1 << 20
	sigma := 1.7e-13
	eta := 3 * math.Sqrt(float64(n)) * sigma
	got := Throughput(eta, n, sigma)
	if math.Abs(got-0.99731) > 1e-3 {
		t.Fatalf("throughput at 3σ = %g, want ≈0.997", got)
	}
	// Larger η → throughput → 1; zero η → 1/2.
	if Throughput(100*eta, n, sigma) < got {
		t.Fatal("throughput must increase with η")
	}
	if h := Throughput(0, n, sigma); math.Abs(h-0.5) > 1e-12 {
		t.Fatalf("throughput at η=0 = %g, want 0.5", h)
	}
	if Throughput(1, n, 0) != 1 {
		t.Fatal("zero σ must give throughput 1")
	}
}

func TestRMS(t *testing.T) {
	x := []complex128{complex(3, 4), complex(-3, 4), complex(0, 5), complex(5, 0)}
	if got := RMS(x); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMS = %g", got)
	}
	if RMS(nil) != 0 {
		t.Fatal("RMS(nil) should be 0")
	}
	base := make([]complex128, 12)
	for i := range base {
		base[i] = complex(float64(i), 0)
	}
	gathered := []complex128{base[0], base[4], base[8]}
	if math.Abs(RMSStrided(base, 3, 4)-RMS(gathered)) > 1e-12 {
		t.Fatal("RMSStrided mismatch")
	}
	if RMSStrided(base, 0, 4) != 0 {
		t.Fatal("RMSStrided n=0 should be 0")
	}
}

// TestEtaBoundsRealRoundoff is the calibration test: for fault-free
// sub-FFTs the observed checksum difference must stay below the η the
// analysis prescribes, and η must not be absurdly loose (it must still
// catch a 1e-6 injected error, cf. Table 5's online row).
func TestEtaBoundsRealRoundoff(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{256, 1024, 4096} {
		sigma0 := 1 / math.Sqrt(3) // U(-1,1) per-component deviation
		eta := EtaStage1(m, sigma0)
		plan := fft.MustPlan(m, fft.Forward)
		ra := checksum.CheckVector(m)
		out := make([]complex128, m)
		var maxDiff float64
		for run := 0; run < 50; run++ {
			x := make([]complex128, m)
			for i := range x {
				x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			}
			cx := checksum.Dot(ra, x)
			plan.Execute(out, x)
			rX := checksum.DotOmega3(out)
			if d := cmplx.Abs(rX - cx); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > eta {
			t.Errorf("m=%d: observed round-off %g exceeds η %g", m, maxDiff, eta)
		}
		if eta > 1e-6 {
			t.Errorf("m=%d: η %g too loose to detect 1e-6 errors", m, eta)
		}
	}
}

func TestEtaStage2LargerThanStage1(t *testing.T) {
	// Stage-2 inputs are √m larger, so η₂ > η₁ for comparable sizes.
	m, k := 1024, 1024
	if EtaStage2(k, m, 1) <= EtaStage1(m, 1) {
		t.Fatal("η₂ should exceed η₁ for equal sizes")
	}
}

func TestEtaMemoryPositiveAndTight(t *testing.T) {
	eta := EtaMemory(4096, 1)
	if eta <= 0 || eta > 1e-6 {
		t.Fatalf("EtaMemory = %g out of sane range", eta)
	}
}
