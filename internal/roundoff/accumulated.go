package roundoff

import "math"

// EtaAccumulated returns the threshold for comparing two evaluations of the
// same weighted sum over n terms of per-component deviation sigma computed
// in *different* summation orders (the Fig. 3 incremental checksums and the
// final whole-output verification). Partial sums random-walk to ≈√n·|x| and
// every addition injects ≈ε·|partial|, so the cross-order difference is
// bounded by ≈ε·n^{3/2}·σ; the 3σ rule with a factor-2 guard gives:
//
//	η = 6·ε·n^{3/2}·σ
func EtaAccumulated(n int, sigma float64) float64 {
	nf := float64(n)
	return 6 * math.Exp2(-MantissaBits) * nf * math.Sqrt(nf) * sigma
}
