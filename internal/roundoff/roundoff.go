// Package roundoff implements the paper's round-off analysis (§8): estimates
// of the checksum-difference magnitude caused purely by floating-point
// rounding, the η detection thresholds derived from them, and the throughput
// model used to predict the false-alarm rate.
//
// Conventions follow Weinstein (1969) and Gentleman & Sande (1966), as the
// paper does: σ_ε² = 0.21·2^{-2t} with t the mantissa width (52 for
// float64), and the FFT noise-to-signal ratio σ_E²/σ_X² = 2σ_ε²·log₂N.
package roundoff

import "math"

// MantissaBits is t for IEEE-754 binary64.
const MantissaBits = 52

// SigmaEps returns σ_ε, the rms error of one rounded floating-point
// multiply/add: σ_ε² = 0.21·2^{-2t} (Gentleman & Sande's measurement).
func SigmaEps() float64 {
	return math.Sqrt(0.21) * math.Exp2(-MantissaBits)
}

// SubFFTNoiseSigma returns σ_e, the standard deviation of the round-off
// error of one output element of an m-point FFT whose inputs are zero-mean
// with standard deviation sigma0 (per element, per real/imaginary part):
//
//	σ_e = sqrt(2·m·σ₀²·σ_ε²·log₂m)
//
// (output variance m·σ₀² times the Weinstein noise-to-signal ratio).
func SubFFTNoiseSigma(m int, sigma0 float64) float64 {
	if m < 2 {
		return 0
	}
	return math.Sqrt(2 * float64(m) * sigma0 * sigma0 * SigmaEps() * SigmaEps() * math.Log2(float64(m)))
}

// ChecksumNoiseSigma returns σ_roe, the paper's upper-bound estimate for the
// standard deviation of the checksum difference |rX − (rA)x| of an m-point
// sub-FFT: the m-term checksum summation amplifies the per-element round-off
// by at most m (§8.1, "we use the upper-bound m·σ_e").
func ChecksumNoiseSigma(m int, sigma0 float64) float64 {
	return float64(m) * SubFFTNoiseSigma(m, sigma0)
}

// WeightConditioningSigma bounds the checksum error caused by the
// ill-conditioned entries of the closed-form rA vector. Near j ≈ n/3 the
// denominator 1-ω₃ω_n^j is as small as ≈2π/(3n), so the weight is O(n) and
// its floating-point error is amplified to ≈√3·2ε·(3n/2π)² ≈ 0.79·ε·n².
// Multiplied by a typical |x_j| ≈ 1.5σ₀ this dominates the fault-free
// checksum difference for large n — and is precisely why the offline scheme
// (one n-sized unit) can only detect errors orders of magnitude larger than
// the online scheme (two √n-sized units); cf. the paper's Table 5.
func WeightConditioningSigma(n int, sigma0 float64) float64 {
	nf := float64(n)
	return 1.2 * math.Exp2(-MantissaBits) * nf * nf * sigma0
}

// EtaStage1 returns η₁ for the first-layer m-point FFTs whose inputs have
// per-component deviation sigma0: the paper's 3·√m·σ_roe term plus the
// weight-conditioning floor.
func EtaStage1(m int, sigma0 float64) float64 {
	return 3 * (math.Sqrt(float64(m))*ChecksumNoiseSigma(m, sigma0) + WeightConditioningSigma(m, sigma0))
}

// EtaStage2 returns η₂ for the second-layer k-point FFTs.
// Their inputs are first-layer outputs, with deviation √m·σ₀.
func EtaStage2(k, m int, sigma0 float64) float64 {
	s := math.Sqrt(float64(m)) * sigma0
	return 3 * (math.Sqrt(float64(k))*ChecksumNoiseSigma(k, s) + WeightConditioningSigma(k, s))
}

// EtaOffline returns the threshold for the single offline verification of an
// n-point FFT (the whole transform treated as one protected unit).
func EtaOffline(n int, sigma0 float64) float64 {
	return 3 * (math.Sqrt(float64(n))*ChecksumNoiseSigma(n, sigma0) + WeightConditioningSigma(n, sigma0))
}

// EtaMemory returns the threshold for a weighted memory-checksum comparison
// over m elements of deviation sigma0 (§8.2): the summation's precision loss
// has deviation ≈ m·σ₀·σ_ε; we keep the 3σ rule with a √m guard consistent
// with the computational thresholds.
func EtaMemory(m int, sigma0 float64) float64 {
	return 3 * math.Sqrt(float64(m)) * float64(m) * sigma0 * SigmaEps() * 64
}

// Phi is the standard normal CDF.
func Phi(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// Throughput returns the paper's §8 model of expected throughput (fraction
// of fault-free runs not flagged as faulty) for threshold eta when the
// checksum difference has deviation sigma over an N-point unit:
//
//	throughput = 1 / (3 − 2Φ(η/(√N·σ)))
func Throughput(eta float64, n int, sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	z := eta / (math.Sqrt(float64(n)) * sigma)
	return 1 / (3 - 2*Phi(z))
}

// RMS returns the root-mean-square of the real and imaginary components of
// x — the empirical σ₀ fed into the η formulas when the input distribution
// is not known a priori.
func RMS(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(sum / float64(2*len(x)))
}

// RMSStrided is RMS over x[0], x[stride], ….
func RMSStrided(x []complex128, n, stride int) float64 {
	if n == 0 {
		return 0
	}
	var sum float64
	for j := 0; j < n; j++ {
		v := x[j*stride]
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(sum / float64(2*n))
}
