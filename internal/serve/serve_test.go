package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftfft/internal/core"
	"ftfft/internal/mpi"
)

// stubTransform is a deterministic fake plan: Forward negates, Inverse
// halves. delay simulates a slow transform; fail forces an error.
type stubTransform struct {
	calls atomic.Int64
	delay time.Duration
	fail  error
	rep   core.Report
}

func (s *stubTransform) Forward(ctx context.Context, dst, src []complex128) (core.Report, error) {
	s.calls.Add(1)
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return core.Report{}, ctx.Err()
		}
	}
	if s.fail != nil {
		return s.rep, s.fail
	}
	for i, v := range src {
		dst[i] = -v
	}
	return s.rep, nil
}

func (s *stubTransform) Inverse(ctx context.Context, dst, src []complex128) (core.Report, error) {
	s.calls.Add(1)
	for i, v := range src {
		dst[i] = v / 2
	}
	return s.rep, nil
}

type stubReal struct{}

func (stubReal) Forward(ctx context.Context, dst []complex128, src []float64) (core.Report, error) {
	for k := range dst {
		dst[k] = complex(src[k%len(src)], float64(k))
	}
	return core.Report{}, nil
}

func (stubReal) Inverse(ctx context.Context, dst []float64, src []complex128) (core.Report, error) {
	for i := range dst {
		dst[i] = real(src[i%len(src)]) + float64(i)
	}
	return core.Report{}, nil
}

// stubConfig returns a server config whose builders hand out stub plans,
// recording every build in builds.
func stubConfig(builds *atomic.Int64, tweak func(*stubTransform)) Config {
	return Config{
		NewTransform: func(n int, dims []int, protection byte) (Transformer, error) {
			if builds != nil {
				builds.Add(1)
			}
			st := &stubTransform{}
			if tweak != nil {
				tweak(st)
			}
			return st, nil
		},
		NewReal: func(n int, protection byte) (RealTransformer, error) {
			if builds != nil {
				builds.Add(1)
			}
			return stubReal{}, nil
		},
	}
}

func listenStub(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Listen("unix", filepath.Join(t.TempDir(), "s.sock"), cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialStub(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().Network(), s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testInput(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i)+0.5, -float64(i)*0.25)
	}
	return x
}

func TestServeEndToEnd(t *testing.T) {
	s := listenStub(t, stubConfig(nil, nil))
	c := dialStub(t, s)

	const n = 32
	src := testInput(n)
	dst := make([]complex128, n)
	rep, err := c.Do(context.Background(), Request{Op: mpi.OpForward, N: n, Data: src}, dst, nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if rep != (core.Report{}) {
		t.Fatalf("clean request came back with report %+v", rep)
	}
	for i := range dst {
		if dst[i] != -src[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], -src[i])
		}
	}

	// Inverse shares the forward plan; real ops get their own.
	rep, err = c.Do(context.Background(), Request{Op: mpi.OpInverse, N: n, Data: src}, dst, nil)
	if err != nil || dst[3] != src[3]/2 {
		t.Fatalf("inverse: %v (dst[3]=%v)", err, dst[3])
	}
	_ = rep

	rsrc := make([]float64, n)
	for i := range rsrc {
		rsrc[i] = float64(i) * 1.5
	}
	spec := make([]complex128, n/2+1)
	if _, err := c.Do(context.Background(), Request{Op: mpi.OpRealForward, N: n, Real: rsrc}, spec, nil); err != nil {
		t.Fatalf("real forward: %v", err)
	}
	if spec[5] != complex(rsrc[5], 5) {
		t.Fatalf("spec[5] = %v", spec[5])
	}
	rdst := make([]float64, n)
	if _, err := c.Do(context.Background(), Request{Op: mpi.OpRealInverse, N: n, Data: spec[:n/2+1]}, nil, rdst); err != nil {
		t.Fatalf("real inverse: %v", err)
	}

	if builds, _, size := s.CacheStats(); builds != 2 || size != 2 {
		t.Fatalf("cache stats after 4 requests over 2 plans: builds=%d size=%d", builds, size)
	}
}

// TestPlanCacheLRU drives the cache directly: bounds hold under churn and
// recency governs eviction.
func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(3)
	built := 0
	get := func(n int) *planEntry {
		key := planKey{n: n}
		e, err := c.get(key, func() (*planEntry, error) {
			built++
			return newPlanEntry(key, &stubTransform{}, nil), nil
		})
		if err != nil {
			t.Fatalf("get(%d): %v", n, err)
		}
		return e
	}

	get(2)
	get(4)
	get(8)
	if built != 3 {
		t.Fatalf("3 distinct keys built %d plans", built)
	}
	e2 := get(2) // hit: 2 becomes MRU
	if built != 3 {
		t.Fatalf("hit rebuilt: %d builds", built)
	}
	get(16) // evicts LRU = 4
	if _, _, size := c.stats(); size != 3 {
		t.Fatalf("cache size %d, want 3", size)
	}
	get(2) // still cached (was MRU before 16)
	if built != 4 {
		t.Fatalf("expected 4 builds, got %d", built)
	}
	get(4) // evicted: rebuilds
	if built != 5 {
		t.Fatalf("evicted key did not rebuild: %d builds", built)
	}
	if e2b := get(2); e2b != e2 {
		t.Fatalf("key 2 rebuilt despite recency")
	}
	if _, ev, size := c.stats(); size != 3 || ev < 2 {
		t.Fatalf("after churn: size=%d evictions=%d", size, ev)
	}

	// Sustained churn over many more keys than capacity.
	for round := 0; round < 4; round++ {
		for n := 1; n <= 32; n++ {
			get(n * 2)
		}
	}
	if _, _, size := c.stats(); size != 3 {
		t.Fatalf("churn grew the cache to %d entries", size)
	}
}

// TestPlanCacheHitNoAllocs pins the acceptance criterion: the cache-hit
// path allocates no per-request plan state.
func TestPlanCacheHitNoAllocs(t *testing.T) {
	c := newPlanCache(4)
	key := planKey{n: 64}
	if _, err := c.get(key, func() (*planEntry, error) {
		return newPlanEntry(key, &stubTransform{}, nil), nil
	}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		e, err := c.get(key, func() (*planEntry, error) {
			t.Error("hit path invoked the builder")
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		s := e.getScratch()
		e.putScratch(s)
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocated %.1f times per request", allocs)
	}
}

func TestServeConcurrentClients(t *testing.T) {
	var builds atomic.Int64
	s := listenStub(t, stubConfig(&builds, nil))

	const clients, reqs = 8, 20
	sizes := []int{16, 32, 64}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(s.Addr().Network(), s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < reqs; r++ {
				n := sizes[(ci+r)%len(sizes)]
				src := testInput(n)
				dst := make([]complex128, n)
				if _, err := c.Do(context.Background(), Request{Op: mpi.OpForward, N: n, Data: src}, dst, nil); err != nil {
					errs <- fmt.Errorf("client %d req %d: %w", ci, r, err)
					return
				}
				for i := range dst {
					if dst[i] != -src[i] {
						errs <- fmt.Errorf("client %d req %d: dst[%d] = %v", ci, r, i, dst[i])
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All clients share plans through the cache: at most one build per
	// size per concurrent first-request race, far fewer than one per call.
	if b := builds.Load(); b > int64(len(sizes)*clients) || b < int64(len(sizes)) {
		t.Fatalf("%d plan builds for %d sizes", b, len(sizes))
	}
}

// corruptElements returns a wire-fault hook flipping bits in k distinct
// payload elements on every apply-th request (1 = every request).
func corruptElements(k int, fired *atomic.Int64) func([]byte) {
	return func(payload []byte) {
		if fired != nil {
			fired.Add(1)
		}
		for e := 0; e < k; e++ {
			off := e * 16 * (len(payload) / (16 * k))
			payload[off] ^= 0x40
			payload[off+7] ^= 0x01
		}
	}
}

func TestServeWireFaultRepaired(t *testing.T) {
	s := listenStub(t, stubConfig(nil, nil))
	c := dialStub(t, s)

	const n = 64
	src := testInput(n)
	want := make([]complex128, n)
	for i := range want {
		want[i] = -src[i]
	}

	c.InjectWireFaults(corruptElements(1, nil))
	dst := make([]complex128, n)
	rep, err := c.Do(context.Background(), Request{Op: mpi.OpForward, N: n, Data: src}, dst, nil)
	if err != nil {
		t.Fatalf("corrupted request not repaired: %v", err)
	}
	if rep.Detections != 1 || rep.MemCorrections != 1 || rep.Uncorrectable {
		t.Fatalf("repair report %+v", rep)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("repaired output differs at %d: %v vs %v", i, dst[i], want[i])
		}
	}
}

func TestServeWireFaultUncorrectable(t *testing.T) {
	s := listenStub(t, stubConfig(nil, nil))
	c := dialStub(t, s)

	const n = 64
	c.InjectWireFaults(corruptElements(2, nil))
	dst := make([]complex128, n)
	rep, err := c.Do(context.Background(), Request{Op: mpi.OpForward, N: n, Data: testInput(n)}, dst, nil)
	if !errors.Is(err, core.ErrUncorrectable) {
		t.Fatalf("2-element corruption: err = %v, want ErrUncorrectable", err)
	}
	if !rep.Uncorrectable {
		t.Fatalf("reject report %+v lacks Uncorrectable", rep)
	}

	// The connection survives a rejected request.
	c.InjectWireFaults(nil)
	src := testInput(n)
	if _, err := c.Do(context.Background(), Request{Op: mpi.OpForward, N: n, Data: src}, dst, nil); err != nil {
		t.Fatalf("clean request after reject: %v", err)
	}
}

func TestServeTransformFailure(t *testing.T) {
	s := listenStub(t, stubConfig(nil, func(st *stubTransform) {
		st.fail = fmt.Errorf("scheme exhausted: %w", core.ErrUncorrectable)
		st.rep = core.Report{Detections: 3, Uncorrectable: true}
	}))
	c := dialStub(t, s)

	const n = 16
	dst := make([]complex128, n)
	_, err := c.Do(context.Background(), Request{Op: mpi.OpForward, N: n, Data: testInput(n)}, dst, nil)
	if !errors.Is(err, core.ErrUncorrectable) {
		t.Fatalf("uncorrectable transform: err = %v", err)
	}
}

func TestServeInvalidRequests(t *testing.T) {
	s := listenStub(t, stubConfig(nil, nil))
	c := dialStub(t, s)
	dst := make([]complex128, 64)
	rdst := make([]float64, 64)
	bg := context.Background()

	cases := []Request{
		{Op: mpi.OpForward, N: 8, Data: testInput(4)},                    // payload/n mismatch
		{Op: mpi.OpForward, N: 8, Dims: []int{3, 2}, Data: testInput(8)}, // dims product
		{Op: mpi.OpRealForward, N: 7, Real: make([]float64, 7)},          // odd real size
		{Op: mpi.ServeOp(99), N: 8, Data: testInput(8)},                  // unknown op
		{Op: mpi.OpForward, N: 0},                                        // empty
	}
	for i, req := range cases {
		if _, err := c.Do(bg, req, dst, rdst); err == nil {
			t.Fatalf("case %d accepted: %+v", i, req)
		}
	}

	// The connection stays usable after every rejected request.
	src := testInput(16)
	if _, err := c.Do(bg, Request{Op: mpi.OpForward, N: 16, Data: src}, dst, nil); err != nil {
		t.Fatalf("clean request after rejects: %v", err)
	}
}

// TestServeMalformedFrames drives a raw connection past the handshake and
// then writes hostile bytes: the server must drop the connection without
// panicking, and stay healthy for other clients.
func TestServeMalformedFrames(t *testing.T) {
	s := listenStub(t, stubConfig(nil, nil))

	hostile := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		make([]byte, 200), // zero frame type
		func() []byte { // oversized element count
			b, _ := mpi.AppendServeRequest(nil, &mpi.ServeRequest{ID: 1, Op: mpi.OpForward, N: 4, Data: make([]complex128, 4)})
			b[16], b[17], b[18] = 0xff, 0xff, 0xff
			return b
		}(),
	}
	for i, garbage := range hostile {
		conn, err := net.Dial(s.Addr().Network(), s.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if _, err := conn.Write(mpi.AppendServeHello(nil)); err != nil {
			t.Fatalf("hello: %v", err)
		}
		welcome := make([]byte, 64)
		if _, err := conn.Read(welcome); err != nil {
			t.Fatalf("welcome: %v", err)
		}
		conn.Write(garbage)
		// The server must close the connection (read returns EOF/err),
		// not hang or crash.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 64)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()
		_ = i
	}

	// A well-behaved client still gets service.
	c := dialStub(t, s)
	dst := make([]complex128, 8)
	if _, err := c.Do(context.Background(), Request{Op: mpi.OpForward, N: 8, Data: testInput(8)}, dst, nil); err != nil {
		t.Fatalf("server unhealthy after hostile frames: %v", err)
	}
}

func TestServeGracefulDrain(t *testing.T) {
	s := listenStub(t, stubConfig(nil, func(st *stubTransform) { st.delay = 100 * time.Millisecond }))
	c := dialStub(t, s)

	const n = 16
	src := testInput(n)
	dst := make([]complex128, n)
	inflight := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), Request{Op: mpi.OpForward, N: n, Data: src}, dst, nil)
		inflight <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the request reach the slow transform

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request did not survive the drain: %v", err)
	}
	for i := range dst {
		if dst[i] != -src[i] {
			t.Fatalf("drained response corrupt at %d", i)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// New connections are refused after drain.
	if _, err := Dial(s.Addr().Network(), s.Addr().String()); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}

func TestClientContextCancel(t *testing.T) {
	s := listenStub(t, stubConfig(nil, func(st *stubTransform) { st.delay = 80 * time.Millisecond }))
	c := dialStub(t, s)

	const n = 16
	dst := make([]complex128, n)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Do(ctx, Request{Op: mpi.OpForward, N: n, Data: testInput(n)}, dst, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled call returned %v", err)
	}
	if time.Since(start) > 60*time.Millisecond {
		t.Fatalf("cancellation took %v", time.Since(start))
	}

	// The late response for the canceled id is discarded; the connection
	// keeps working.
	src := testInput(n)
	if _, err := c.Do(context.Background(), Request{Op: mpi.OpForward, N: n, Data: src}, dst, nil); err != nil {
		t.Fatalf("request after cancel: %v", err)
	}
	if dst[2] != -src[2] {
		t.Fatalf("post-cancel response wrong: %v", dst[2])
	}
}

// TestVerifyFloats exercises the real-payload checksum algebra directly:
// repairable single-pair corruption and unrepairable double corruption.
func TestVerifyFloats(t *testing.T) {
	const pairs = 16
	w := testWeights(pairs)
	x := make([]float64, 2*pairs)
	for i := range x {
		x[i] = math.Sqrt(float64(i) + 1)
	}
	stored := floatPair(w, x)
	cs := [2]complex128{stored.D1, stored.D2}

	var rep core.Report
	if err := verifyFloatsPair(w, x, cs, floatPair(w, x), &rep); err != nil || rep.Detections != 0 {
		t.Fatalf("clean verify: %v %+v", err, rep)
	}

	orig := append([]float64(nil), x...)
	x[6] += 3.25 // corrupt pair 3
	rep = core.Report{}
	if err := verifyFloatsPair(w, x, cs, floatPair(w, x), &rep); err != nil {
		t.Fatalf("single corruption not repaired: %v", err)
	}
	if rep.Detections != 1 || rep.MemCorrections != 1 {
		t.Fatalf("repair report %+v", rep)
	}
	for i := range x {
		if math.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], orig[i])
		}
	}

	x[6] += 1.5
	x[20] -= 2.5
	rep = core.Report{}
	if err := verifyFloatsPair(w, x, cs, floatPair(w, x), &rep); !errors.Is(err, core.ErrUncorrectable) {
		t.Fatalf("double corruption: %v", err)
	}
}

func testWeights(n int) []complex128 {
	e := newPlanEntry(planKey{n: 2 * n, real: true}, nil, stubReal{})
	return e.wPairs
}
