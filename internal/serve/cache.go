// cache.go implements the server's bounded plan cache: transform plans are
// expensive to build (twiddle tables, checksum weight vectors, protection
// scaffolding), so the server keeps the most recently used ones, keyed by
// the full geometry+scheme identity (n, dims, protection, real/complex).
// The cache is a plain LRU — a map for the hit path, an intrusive
// doubly-linked list for recency — bounded so a hostile or merely diverse
// request mix cannot grow plan state without limit. Entries evicted while a
// request is still executing on them stay valid (the entry is unhooked, not
// destroyed); they are simply no longer findable and fall to the collector
// when the last request finishes.
//
// Each entry also owns the per-plan wire-checksum weight vectors and a
// small freelist of scratch output buffers, so the cache-hit path allocates
// no per-request plan state: the plan, the weights, and (steady-state) the
// destination buffer are all reused.
package serve

import (
	"sync"

	"ftfft/internal/checksum"
	"ftfft/internal/mpi"
)

// planKey is the cache identity: every field that changes the built plan or
// the wire checksum algebra. The dims array is fixed-size so the key is
// comparable without allocation. epoch is the Config.PlanEpoch sample at
// lookup time (0 without one): a wisdom import changes what a freshly built
// plan would choose, so plans from different epochs must not share an entry.
type planKey struct {
	n     int
	dims  [mpi.MaxServeDims]int32
	epoch uint64
	prot  byte
	real  bool
}

// scratch is one request's output buffers, recycled through the owning
// entry's freelist.
type scratch struct {
	c []complex128
	f []float64
}

// planEntry is one cached plan plus its wire-protection state. Exactly one
// of t / rt is set, matching key.real.
type planEntry struct {
	key planKey

	t  Transformer
	rt RealTransformer

	// Wire checksum weights. Complex plans: wC over the n-element payload.
	// Real plans: wPairs over the n/2 sample pairs of a float64 payload,
	// wSpec over the n/2+1 spectrum bins.
	wC     []complex128
	wPairs []complex128
	wSpec  []complex128

	bufs chan *scratch

	prev, next *planEntry
}

// newPlanEntry builds the protection state around a freshly built plan.
func newPlanEntry(key planKey, t Transformer, rt RealTransformer) *planEntry {
	e := &planEntry{key: key, t: t, rt: rt, bufs: make(chan *scratch, scratchPerPlan)}
	if key.real {
		e.wPairs = checksum.Weights(key.n / 2)
		e.wSpec = checksum.Weights(key.n/2 + 1)
	} else {
		e.wC = checksum.Weights(key.n)
	}
	return e
}

// scratchPerPlan bounds each entry's buffer freelist; beyond it, concurrent
// requests for one plan fall back to allocating (and the extras are dropped
// on return, not hoarded).
const scratchPerPlan = 8

func (e *planEntry) getScratch() *scratch {
	select {
	case s := <-e.bufs:
		return s
	default:
	}
	s := &scratch{}
	if e.key.real {
		s.c = make([]complex128, e.key.n/2+1)
		s.f = make([]float64, e.key.n)
	} else {
		s.c = make([]complex128, e.key.n)
	}
	return s
}

func (e *planEntry) putScratch(s *scratch) {
	select {
	case e.bufs <- s:
	default:
	}
}

// planCache is the bounded LRU described in the file comment.
type planCache struct {
	mu        sync.Mutex
	cap       int
	m         map[planKey]*planEntry
	root      planEntry // sentinel: root.next = MRU, root.prev = LRU
	builds    int
	evictions int
}

func newPlanCache(capacity int) *planCache {
	c := &planCache{cap: capacity, m: make(map[planKey]*planEntry, capacity)}
	c.root.next = &c.root
	c.root.prev = &c.root
	return c
}

func (c *planCache) unhook(e *planEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (c *planCache) pushFront(e *planEntry) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}

// get returns the cached entry for key, building (via build) and inserting
// it on a miss. The builder runs outside the cache lock — a slow plan build
// must not stall hits on other keys — so two concurrent first requests for
// one key may both build; the loser's entry is discarded in favor of the
// winner's.
func (c *planCache) get(key planKey, build func() (*planEntry, error)) (*planEntry, error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.unhook(e)
		c.pushFront(e)
		c.mu.Unlock()
		return e, nil
	}
	c.mu.Unlock()

	e, err := build()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.builds++
	if raced, ok := c.m[key]; ok {
		return raced, nil
	}
	c.m[key] = e
	c.pushFront(e)
	if len(c.m) > c.cap {
		lru := c.root.prev
		c.unhook(lru)
		delete(c.m, lru.key)
		c.evictions++
	}
	return e, nil
}

// stats reports lifetime build and eviction counts plus the current size.
func (c *planCache) stats() (builds, evictions, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds, c.evictions, len(c.m)
}
