// client.go implements the service client: one connection multiplexing any
// number of concurrent in-flight requests, each matched to its response by
// the frame's request id. Requests travel with §5 block checksums attached;
// responses are verified (and single-element-repaired) on receipt, so the
// wire is protected in both directions independently of whatever transform
// scheme the server runs.
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"ftfft/internal/checksum"
	"ftfft/internal/core"
	"ftfft/internal/mpi"
)

// ErrClientClosed is returned by calls issued (or still in flight) after
// Close, or after the connection failed.
var ErrClientClosed = errors.New("serve: client closed")

// Request is one transform submission. N is the logical transform size;
// exactly one of Data / Real carries the payload, matching Op.
type Request struct {
	Op         mpi.ServeOp
	Protection byte
	N          int
	Dims       []int
	Data       []complex128
	Real       []float64
}

// call is one in-flight request's rendezvous state.
type call struct {
	dst  []complex128
	rdst []float64
	rep  core.Report
	err  error
	done chan struct{}
}

// Client is a connection to a serve.Server. It is safe for concurrent use;
// requests from many goroutines interleave on the single connection and
// responses are dispatched back by id.
type Client struct {
	c        net.Conn
	br       *bufio.Reader
	maxElems int

	wmu sync.Mutex
	enc []byte

	mu      sync.Mutex
	pending map[int]*call
	nextID  int
	err     error // terminal: set once the read loop exits

	wfMu sync.Mutex
	wf   func(payload []byte)

	weightsMu sync.Mutex
	weights   map[int][]complex128

	readDone  chan struct{}
	closeOnce sync.Once
}

// Dial connects to a server at network/addr and completes the service
// handshake.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s %s: %w", network, addr, err)
	}
	c := &Client{
		c:        conn,
		br:       bufio.NewReader(conn),
		pending:  make(map[int]*call),
		weights:  make(map[int][]complex128),
		readDone: make(chan struct{}),
	}
	if err := c.write(func(buf []byte) []byte { return mpi.AppendServeHello(buf) }); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: hello: %w", err)
	}
	f, body, err := mpi.ReadServeFrame(c.br, nil, 0)
	if err != nil || f.Type != mpi.ServeFrameHello {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake (frame type %d): %v", f.Type, err)
	}
	c.maxElems, err = mpi.DecodeServeWelcome(body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// MaxElems returns the per-request element limit the server advertised.
func (c *Client) MaxElems() int { return c.maxElems }

// InjectWireFaults installs a hook over the serialized element payload of
// every outgoing request — the wire-level fault site, below the codec,
// which the §5 checksums must detect and repair server-side. A nil hook
// removes it.
func (c *Client) InjectWireFaults(f func(payload []byte)) {
	c.wfMu.Lock()
	c.wf = f
	c.wfMu.Unlock()
}

func (c *Client) getWireFault() func(payload []byte) {
	c.wfMu.Lock()
	defer c.wfMu.Unlock()
	return c.wf
}

// write serializes one frame into the connection-owned encode buffer and
// writes it, mutex-serialized against concurrent senders.
func (c *Client) write(build func(buf []byte) []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.enc = build(c.enc[:0])
	_, err := c.c.Write(c.enc)
	return err
}

// weightsFor returns the cached checksum weight vector of length n.
func (c *Client) weightsFor(n int) []complex128 {
	c.weightsMu.Lock()
	defer c.weightsMu.Unlock()
	w, ok := c.weights[n]
	if !ok {
		w = checksum.Weights(n)
		c.weights[n] = w
	}
	return w
}

// Do submits req and blocks until the response arrives, ctx is canceled, or
// the connection fails. The transformed payload is written into dst
// (complex results: Forward, Inverse, RealForward) or rdst (RealInverse),
// which must be sized for the op's output. The returned report aggregates
// the server's transform report with any wire-level repairs performed on
// either side.
func (c *Client) Do(ctx context.Context, req Request, dst []complex128, rdst []float64) (core.Report, error) {
	if err := c.checkRequest(req, dst, rdst); err != nil {
		return core.Report{}, err
	}

	wreq := mpi.ServeRequest{
		Op:         req.Op,
		Protection: req.Protection,
		N:          req.N,
		Dims:       req.Dims,
		Data:       req.Data,
		Real:       req.Real,
		HasCS:      true,
	}
	// Attach the §5 request checksums: over the complex payload directly,
	// or over the real payload viewed as adjacent sample pairs.
	var pr checksum.Pair
	if req.Real != nil {
		pr = floatPair(c.weightsFor(req.N/2), req.Real)
	} else {
		pr = checksum.GeneratePair(c.weightsFor(len(req.Data)), req.Data)
	}
	wreq.CS = [2]complex128{pr.D1, pr.D2}

	cl := &call{dst: dst, rdst: rdst, done: make(chan struct{})}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return core.Report{}, err
	}
	c.nextID++
	id := c.nextID
	wreq.ID = id
	c.pending[id] = cl
	c.mu.Unlock()

	wf := c.getWireFault()
	err := func() error {
		c.wmu.Lock()
		defer c.wmu.Unlock()
		frame, payloadOff := mpi.AppendServeRequest(c.enc[:0], &wreq)
		c.enc = frame
		if wf != nil {
			wf(frame[payloadOff:])
		}
		_, werr := c.c.Write(frame)
		return werr
	}()
	if err != nil {
		c.forget(id)
		return core.Report{}, fmt.Errorf("serve: sending request: %w", err)
	}

	select {
	case <-cl.done:
		return cl.rep, cl.err
	case <-ctx.Done():
		c.forget(id)
		return core.Report{}, ctx.Err()
	case <-c.readDone:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return core.Report{}, err
	}
}

// checkRequest validates a submission against the op's structural
// invariants and the server's advertised element limit, so malformed calls
// fail fast client-side instead of travelling.
func (c *Client) checkRequest(req Request, dst []complex128, rdst []float64) error {
	if req.N < 1 {
		return fmt.Errorf("serve: transform size %d", req.N)
	}
	var elems int
	switch req.Op {
	case mpi.OpForward, mpi.OpInverse:
		if len(req.Data) != req.N || req.Real != nil {
			return fmt.Errorf("serve: %s wants a %d-element complex payload", req.Op, req.N)
		}
		if len(dst) < req.N {
			return fmt.Errorf("serve: %s destination of %d elements, want %d", req.Op, len(dst), req.N)
		}
		elems = len(req.Data)
	case mpi.OpRealForward:
		if req.N%2 != 0 || len(req.Real) != req.N || req.Data != nil {
			return fmt.Errorf("serve: real-forward wants an even-length real payload of %d samples", req.N)
		}
		if len(dst) < req.N/2+1 {
			return fmt.Errorf("serve: real-forward destination of %d bins, want %d", len(dst), req.N/2+1)
		}
		elems = req.N / 2
	case mpi.OpRealInverse:
		if req.N%2 != 0 || len(req.Data) != req.N/2+1 || req.Real != nil {
			return fmt.Errorf("serve: real-inverse wants a %d-bin spectrum payload", req.N/2+1)
		}
		if len(rdst) < req.N {
			return fmt.Errorf("serve: real-inverse destination of %d samples, want %d", len(rdst), req.N)
		}
		elems = len(req.Data)
	default:
		return fmt.Errorf("serve: unknown op %d", byte(req.Op))
	}
	if c.maxElems > 0 && elems > c.maxElems {
		return fmt.Errorf("serve: payload of %d elements exceeds the server's limit %d", elems, c.maxElems)
	}
	return nil
}

// forget deregisters a canceled or failed call; a late response for its id
// is discarded by the read loop.
func (c *Client) forget(id int) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// take claims the pending call for id, or nil if it was canceled.
func (c *Client) take(id int) *call {
	c.mu.Lock()
	cl := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	return cl
}

// readLoop drains the connection, dispatching responses and error frames to
// their pending calls. It exits — failing every remaining call — on
// connection loss, protocol violation, or a server goodbye.
func (c *Client) readLoop() {
	var body []byte
	var f mpi.ServeFrame
	var err error
	for {
		f, body, err = mpi.ReadServeFrame(c.br, body, c.maxElems)
		if err != nil {
			c.fail(fmt.Errorf("serve: connection lost: %w", err))
			return
		}
		switch f.Type {
		case mpi.ServeFrameResponse:
			cl := c.take(f.ID)
			if cl == nil {
				continue // canceled: discard the late response
			}
			c.finish(cl, f, body)
		case mpi.ServeFrameError:
			cl := c.take(f.ID)
			if cl == nil {
				continue
			}
			msg, uncorrectable, unavailable := mpi.DecodeServeError(f, body)
			switch {
			case uncorrectable:
				cl.err = fmt.Errorf("serve: rejected: %s: %w", msg, core.ErrUncorrectable)
				cl.rep.Uncorrectable = true
			case unavailable:
				cl.err = fmt.Errorf("%w: %s", ErrUnavailable, msg)
			default:
				cl.err = errors.New("serve: rejected: " + msg)
			}
			close(cl.done)
		case mpi.ServeFrameGoodbye:
			c.fail(ErrClientClosed)
			return
		default:
			c.fail(fmt.Errorf("serve: unexpected frame type %d from server", f.Type))
			return
		}
	}
}

// finish decodes a response into its call's destination buffers, verifies
// the response-side wire checksums (repairing a single corrupted element),
// and completes the call.
func (c *Client) finish(cl *call, f mpi.ServeFrame, body []byte) {
	defer close(cl.done)
	resp, err := mpi.DecodeServeResponseInto(f, body, cl.dst, cl.rdst)
	if err != nil {
		cl.err = err
		return
	}
	cl.rep = fromServeReport(resp.Report)
	if resp.HasCS {
		if resp.Real != nil {
			err = verifyFloats(c.weightsFor(len(resp.Real)/2), resp.Real, resp.CS, &cl.rep)
		} else {
			err = verifyComplex(c.weightsFor(len(resp.Data)), resp.Data, resp.CS, &cl.rep)
		}
		if err != nil {
			cl.err = err
			return
		}
	}
	if resp.Report.Uncorrectable {
		cl.err = fmt.Errorf("serve: response flagged uncorrectable: %w", core.ErrUncorrectable)
	}
}

// fail poisons the client: every pending and future call returns err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[int]*call)
	c.mu.Unlock()
	for _, cl := range pending {
		cl.err = err
		close(cl.done)
	}
	close(c.readDone)
}

// Close sends a goodbye and tears the connection down. In-flight calls fail
// with ErrClientClosed. Idempotent.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		if c.err == nil {
			c.err = ErrClientClosed
		}
		c.mu.Unlock()
		c.write(mpi.AppendServeGoodbye)
		c.c.Close()
		<-c.readDone // read loop exits on the closed conn, failing pending calls
	})
	return nil
}
