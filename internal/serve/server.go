// Package serve implements FFT-as-a-service: a long-lived server that
// accepts transform requests over the framed codec of internal/mpi and
// answers with the transformed payload plus the aggregated fault-tolerance
// report — or an explicit error frame when the request (or its transform)
// was corrupted beyond repair. It is the paper's ABFT contract extended to
// the wire: a response is repaired or rejected, never silently wrong.
//
// Three layers of protection compose per request:
//
//  1. Wire §5 block checksums: the client attaches a weighted checksum pair
//     to the request payload; the server verifies it on receipt, repairing
//     a single corrupted element in place. The response travels the same
//     way, verified (and single-element-repaired) by the client.
//  2. Transform ABFT: the plan runs whatever protection scheme the request
//     names, and its core.Report rides back as response metadata.
//  3. Repair-or-reject: an uncorrectable payload or transform failure
//     produces an error frame carrying the cause, flagged so the client
//     surfaces core.ErrUncorrectable.
//
// Concurrency: each connection gets one reader goroutine; every admitted
// request gets a handler goroutine bounded by the MaxInFlight semaphore
// (excess requests queue in the kernel's socket buffers — QPS bursts
// degrade by queuing, not goroutine explosion), and actual transform
// execution is admitted FIFO through the shared internal/exec pool. Plans
// are multiplexed across clients through the bounded LRU plan cache.
//
// The package does not import the public ftfft package (which wraps it) —
// plan construction is injected through Config.NewTransform/NewReal, and
// the Transformer/RealTransformer interfaces match the public Transform/
// RealTransform method sets exactly.
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/cmplx"
	"net"
	"sync"

	"ftfft/internal/checksum"
	"ftfft/internal/core"
	"ftfft/internal/exec"
	"ftfft/internal/mpi"
)

// Transformer is the subset of the public Transform interface the server
// drives; any ftfft.Transform satisfies it.
type Transformer interface {
	Forward(ctx context.Context, dst, src []complex128) (core.Report, error)
	Inverse(ctx context.Context, dst, src []complex128) (core.Report, error)
}

// RealTransformer is the subset of the public RealTransform interface the
// server drives; any ftfft.RealTransform satisfies it.
type RealTransformer interface {
	Forward(ctx context.Context, dst []complex128, src []float64) (core.Report, error)
	Inverse(ctx context.Context, dst []float64, src []complex128) (core.Report, error)
}

// ErrUnavailable is returned for requests refused while the server drains.
var ErrUnavailable = errors.New("serve: server unavailable (draining)")

// Config parameterizes a Server. NewTransform and NewReal are required:
// they build the plan for a cache miss (the public package injects
// ftfft.New / ftfft.NewReal here, keeping this package free of an upward
// import).
type Config struct {
	// NewTransform builds a complex plan for n total elements with the
	// given geometry (nil dims = 1-D) and protection scheme.
	NewTransform func(n int, dims []int, protection byte) (Transformer, error)
	// NewReal builds a real-input plan for n samples (n even).
	NewReal func(n int, protection byte) (RealTransformer, error)

	// PlanEpoch, when non-nil, is sampled per request and folded into the
	// plan-cache key. The public package injects the wisdom epoch here:
	// importing or forgetting tuning wisdom bumps it, so plans built under
	// old wisdom age out of rotation instead of being served alongside
	// plans that made different tuned choices.
	PlanEpoch func() uint64

	// PlanCache bounds the number of cached plans (default 64).
	PlanCache int
	// MaxInFlight bounds concurrently executing requests (default
	// 2×workers, minimum 4).
	MaxInFlight int
	// MaxElems bounds one request's payload in complex128-equivalent
	// elements (default 1<<20, 16 MiB).
	MaxElems int
	// Workers sizes a server-owned exec pool; 0 uses the process-wide
	// shared pool.
	Workers int
}

// Server is one listening FFT service instance.
type Server struct {
	cfg      Config
	ln       net.Listener
	cache    *planCache
	pool     *exec.Pool
	ownPool  bool
	maxElems int
	sem      chan struct{}

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	conns    map[*serverConn]struct{}
	draining bool
	reqWG    sync.WaitGroup // in-flight request handlers
	connWG   sync.WaitGroup // connection reader goroutines + accept loop

	weightsMu sync.Mutex
	weightsN  map[int][]complex128 // checksum weights by length, for fused decode

	closeOnce sync.Once
}

// weightsFor returns the cached checksum weight vector of length n — the
// fused request-decode sweep's weight source. checksum.Weights is
// deterministic, so these are bit-identical to the plan entries' vectors.
func (s *Server) weightsFor(n int) []complex128 {
	s.weightsMu.Lock()
	defer s.weightsMu.Unlock()
	w, ok := s.weightsN[n]
	if !ok {
		w = checksum.Weights(n)
		s.weightsN[n] = w
	}
	return w
}

// Listen opens a server on network ("unix" or "tcp") and addr and starts
// accepting clients. Use Addr to recover the bound address.
func Listen(network, addr string, cfg Config) (*Server, error) {
	if cfg.NewTransform == nil || cfg.NewReal == nil {
		return nil, fmt.Errorf("serve: Config must provide NewTransform and NewReal builders")
	}
	if cfg.PlanCache <= 0 {
		cfg.PlanCache = 64
	}
	if cfg.MaxElems <= 0 {
		cfg.MaxElems = 1 << 20
	}
	pool, own := exec.Default(), false
	if cfg.Workers > 0 {
		pool, own = exec.New(cfg.Workers), true
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = max(4, 2*pool.Workers())
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s %s: %w", network, addr, err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		cache:    newPlanCache(cfg.PlanCache),
		pool:     pool,
		ownPool:  own,
		maxElems: cfg.MaxElems,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		conns:    make(map[*serverConn]struct{}),
		weightsN: make(map[int][]complex128),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.connWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// CacheStats reports the plan cache's lifetime builds and evictions and its
// current size — observability for tests and operators.
func (s *Server) CacheStats() (builds, evictions, size int) { return s.cache.stats() }

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain or shutdown
		}
		sc := &serverConn{c: c, br: bufio.NewReader(c)}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[sc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(sc)
	}
}

// serverConn is one client connection: a buffered reader owned by the
// reader goroutine and mutex-serialized frame writes shared by the handler
// goroutines, with a connection-owned encode buffer so steady-state
// responses allocate nothing.
type serverConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	enc []byte
}

func (sc *serverConn) writeFrame(build func(buf []byte) []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.enc = build(sc.enc[:0])
	_, err := sc.c.Write(sc.enc)
	return err
}

// writeResponsePair serializes and writes resp with the §5 response
// checksums generated during the payload serialization sweep (fused encode,
// bit-identical to a separate GeneratePair pass over the payload).
func (sc *serverConn) writeResponsePair(resp *mpi.ServeResponse, w []complex128) error {
	return sc.writeFrame(func(buf []byte) []byte {
		frame, _ := mpi.AppendServeResponsePair(buf, resp, w)
		return frame
	})
}

func (sc *serverConn) writeError(id int, uncorrectable, unavailable bool, msg string) error {
	return sc.writeFrame(func(buf []byte) []byte {
		return mpi.AppendServeError(buf, id, uncorrectable, unavailable, msg)
	})
}

// serveConn runs one connection: handshake, then a read loop that admits
// requests through the in-flight semaphore and hands them to handler
// goroutines. A protocol violation (bad handshake, malformed frame,
// oversized payload) terminates the connection; per-request problems answer
// with error frames and keep it alive.
func (s *Server) serveConn(sc *serverConn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
		sc.c.Close()
	}()

	f, body, err := mpi.ReadServeFrame(sc.br, nil, s.maxElems)
	if err != nil || f.Type != mpi.ServeFrameHello || !mpi.IsServeHello(body) {
		return
	}
	if err := sc.writeFrame(func(buf []byte) []byte {
		return mpi.AppendServeWelcome(buf, s.maxElems)
	}); err != nil {
		return
	}

	for {
		f, body, err = mpi.ReadServeFrame(sc.br, body, s.maxElems)
		if err != nil {
			return
		}
		switch f.Type {
		case mpi.ServeFrameRequest:
			// Fused decode: the §5 receiver-side pair is computed during the
			// single payload-decode pass, so execute's verification needs no
			// second sweep over the payload.
			req, cur, curOK, derr := mpi.DecodeServeRequestPair(f, body, s.weightsFor)
			if derr != nil {
				if sc.writeError(f.ID, false, false, derr.Error()) != nil {
					return
				}
				continue
			}
			if !s.admit() {
				req.Release()
				if sc.writeError(f.ID, false, true, ErrUnavailable.Error()) != nil {
					return
				}
				continue
			}
			go s.handle(sc, req, cur, curOK)
		case mpi.ServeFrameGoodbye:
			return
		default:
			return // hello mid-stream or a response from a client: protocol violation
		}
	}
}

// admit blocks on the in-flight semaphore (the QPS-burst backpressure
// point: while every handler slot is busy, connection read loops stall here
// and further requests queue in the kernel) and registers the request with
// the drain waitgroup. It refuses — returning false — when the server is
// draining or closed.
func (s *Server) admit() bool {
	select {
	case s.sem <- struct{}{}:
	case <-s.ctx.Done():
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		<-s.sem
		return false
	}
	s.reqWG.Add(1)
	return true
}

// handle runs one admitted request to completion: execute, then answer
// with a response or error frame. cur is the fused-decode checksum pair of
// the request payload (curOK false when the request carried none).
func (s *Server) handle(sc *serverConn, req *mpi.ServeRequest, cur checksum.Pair, curOK bool) {
	defer s.reqWG.Done()
	defer func() { <-s.sem }()
	id, op := req.ID, req.Op
	resp, entry, scr, err := s.execute(s.ctx, req, cur, curOK)
	req.Release()
	if err != nil {
		sc.writeError(id, errors.Is(err, core.ErrUncorrectable), false, err.Error())
		return
	}
	sc.writeResponsePair(&resp, entry.respWeights(op))
	entry.putScratch(scr)
}

// respWeights returns the checksum weight vector matching the response
// payload of op: the spectrum weights for a real forward, the sample-pair
// weights for a real inverse, the n-element weights otherwise.
func (e *planEntry) respWeights(op mpi.ServeOp) []complex128 {
	switch op {
	case mpi.OpRealForward:
		return e.wSpec
	case mpi.OpRealInverse:
		return e.wPairs
	default:
		return e.wC
	}
}

// keyOf builds the cache key for a validated request, stamping the current
// plan epoch so wisdom changes rotate cached plans out.
func (s *Server) keyOf(req *mpi.ServeRequest) planKey {
	key := planKey{n: req.N, prot: req.Protection}
	if s.cfg.PlanEpoch != nil {
		key.epoch = s.cfg.PlanEpoch()
	}
	switch req.Op {
	case mpi.OpRealForward, mpi.OpRealInverse:
		key.real = true
	}
	for i, d := range req.Dims {
		key.dims[i] = int32(d)
	}
	return key
}

// validate enforces the request's structural invariants before any plan is
// built: op known, geometry consistent, payload length matching the op.
func (s *Server) validate(req *mpi.ServeRequest) error {
	if req.N < 1 || req.N > s.maxElems {
		return fmt.Errorf("serve: transform size %d outside [1,%d]", req.N, s.maxElems)
	}
	if len(req.Dims) > 0 {
		prod := 1
		for _, d := range req.Dims {
			if d < 1 {
				return fmt.Errorf("serve: non-positive dim %d", d)
			}
			if prod > s.maxElems/d {
				return fmt.Errorf("serve: dims product overflows the %d-element bound", s.maxElems)
			}
			prod *= d
		}
		if prod != req.N {
			return fmt.Errorf("serve: dims %v product %d != n %d", req.Dims, prod, req.N)
		}
	}
	switch req.Op {
	case mpi.OpForward, mpi.OpInverse:
		if len(req.Data) != req.N {
			return fmt.Errorf("serve: %s payload of %d elements, want %d", req.Op, len(req.Data), req.N)
		}
	case mpi.OpRealForward:
		if req.N%2 != 0 {
			return fmt.Errorf("serve: real transform size %d must be even", req.N)
		}
		if len(req.Dims) > 0 {
			return fmt.Errorf("serve: real transforms are 1-D")
		}
		if len(req.Real) != req.N {
			return fmt.Errorf("serve: real payload of %d samples, want %d", len(req.Real), req.N)
		}
	case mpi.OpRealInverse:
		if req.N%2 != 0 {
			return fmt.Errorf("serve: real transform size %d must be even", req.N)
		}
		if len(req.Dims) > 0 {
			return fmt.Errorf("serve: real transforms are 1-D")
		}
		if len(req.Data) != req.N/2+1 {
			return fmt.Errorf("serve: spectrum payload of %d bins, want %d", len(req.Data), req.N/2+1)
		}
	default:
		return fmt.Errorf("serve: unknown op %d", byte(req.Op))
	}
	return nil
}

// build constructs the plan entry for a cache miss.
func (s *Server) build(req *mpi.ServeRequest, key planKey) (*planEntry, error) {
	if key.real {
		rt, err := s.cfg.NewReal(req.N, req.Protection)
		if err != nil {
			return nil, err
		}
		return newPlanEntry(key, nil, rt), nil
	}
	t, err := s.cfg.NewTransform(req.N, req.Dims, req.Protection)
	if err != nil {
		return nil, err
	}
	return newPlanEntry(key, t, nil), nil
}

// execute runs one request end to end: validate, plan lookup, wire-checksum
// verify/repair, pool-admitted transform. On success the response payload
// aliases the returned scratch, which the caller returns to the entry after
// the response is written (response checksums are generated by the fused
// serialization sweep in writeResponsePair). cur is the fused-decode pair of
// the request payload; when curOK is false (no weights were available at
// decode time) the pair is recomputed here.
func (s *Server) execute(ctx context.Context, req *mpi.ServeRequest, cur checksum.Pair, curOK bool) (mpi.ServeResponse, *planEntry, *scratch, error) {
	fail := func(err error) (mpi.ServeResponse, *planEntry, *scratch, error) {
		return mpi.ServeResponse{}, nil, nil, err
	}
	if err := s.validate(req); err != nil {
		return fail(err)
	}
	key := s.keyOf(req)
	e, err := s.cache.get(key, func() (*planEntry, error) { return s.build(req, key) })
	if err != nil {
		return fail(fmt.Errorf("serve: building plan: %w", err))
	}

	// Wire-level §5 verification of the request payload: repair a single
	// corrupted element, reject anything worse. The receiver-side pair was
	// already computed by the fused decode sweep.
	var rep core.Report
	if req.HasCS {
		if req.Real != nil {
			if !curOK {
				cur = floatPair(e.wPairs, req.Real)
			}
			err = verifyFloatsPair(e.wPairs, req.Real, req.CS, cur, &rep)
		} else {
			w := e.wC
			if key.real {
				w = e.wSpec // real-inverse request: spectrum payload
			}
			if !curOK {
				cur = checksum.GeneratePair(w, req.Data)
			}
			err = verifyComplexPair(w, req.Data, req.CS, cur, &rep)
		}
		if err != nil {
			return fail(fmt.Errorf("%w (request payload, %d detected)", err, rep.Detections))
		}
	}

	scr := e.getScratch()
	res, err := s.pool.Reserve(ctx, 1)
	if err != nil {
		e.putScratch(scr)
		return fail(fmt.Errorf("serve: admission: %w", err))
	}
	var trep core.Report
	g := res.Launch(ctx, func(ctx context.Context, _ int) error {
		var terr error
		switch req.Op {
		case mpi.OpForward:
			trep, terr = e.t.Forward(ctx, scr.c, req.Data)
		case mpi.OpInverse:
			trep, terr = e.t.Inverse(ctx, scr.c, req.Data)
		case mpi.OpRealForward:
			trep, terr = e.rt.Forward(ctx, scr.c, req.Real)
		case mpi.OpRealInverse:
			trep, terr = e.rt.Inverse(ctx, scr.f, req.Data)
		}
		return terr
	})
	err = g.Wait()
	rep.Add(trep)
	if err != nil {
		e.putScratch(scr)
		return fail(fmt.Errorf("serve: transform failed after %d detections, %d corrections: %w",
			rep.Detections, rep.MemCorrections, err))
	}

	// Response checksums are generated by writeResponsePair's fused
	// serialization sweep over this payload, with respWeights(req.Op).
	resp := mpi.ServeResponse{ID: req.ID, Report: toServeReport(rep)}
	if req.Op == mpi.OpRealInverse {
		resp.Real = scr.f
	} else {
		resp.Data = scr.c
	}
	return resp, e, scr, nil
}

// Shutdown drains the server gracefully: the listener closes, requests not
// yet admitted are refused with unavailable error frames, in-flight
// requests finish and their responses are written, then every connection
// gets a goodbye frame and closes. ctx bounds the wait for in-flight work;
// on expiry the remaining handlers are cut off by a hard close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.ln.Close()

	drained := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	s.closeConns(err == nil)
	s.cancel()
	s.connWG.Wait()
	if s.ownPool {
		s.pool.Close()
	}
	return err
}

// Close shuts the server down immediately: in-flight requests are abandoned
// (their connections close under them). Idempotent, as is Shutdown after
// Close.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.ln.Close()
		s.cancel()
		s.closeConns(false)
		s.connWG.Wait()
		if s.ownPool {
			s.pool.Close()
		}
	})
	return nil
}

// closeConns sends each live connection a goodbye (when polite) and closes
// it, unblocking its reader goroutine.
func (s *Server) closeConns(polite bool) {
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		if polite {
			sc.writeFrame(mpi.AppendServeGoodbye)
		}
		sc.c.Close()
	}
}

// toServeReport converts the aggregated core report to its wire form.
func toServeReport(r core.Report) mpi.ServeReport {
	return mpi.ServeReport{
		Detections:         r.Detections,
		CompRecomputations: r.CompRecomputations,
		MemCorrections:     r.MemCorrections,
		TwiddleCorrections: r.TwiddleCorrections,
		FullRestarts:       r.FullRestarts,
		Uncorrectable:      r.Uncorrectable,
	}
}

// fromServeReport converts a wire report back to the core form.
func fromServeReport(r mpi.ServeReport) core.Report {
	return core.Report{
		Detections:         r.Detections,
		CompRecomputations: r.CompRecomputations,
		MemCorrections:     r.MemCorrections,
		TwiddleCorrections: r.TwiddleCorrections,
		FullRestarts:       r.FullRestarts,
		Uncorrectable:      r.Uncorrectable,
	}
}

// verifyComplexPair checks a complex payload against its carried checksum
// pair, repairing a single corrupted element in place (the §5 single-error
// algebra: j = Re(ΔD2/ΔD1), x[j] += ΔD1/w[j]). cur is the receiver-side
// pair, computed by the fused decode sweep (or a separate GeneratePair pass
// — the two are bit-identical); both ends generate it with the same weights
// in the same summation order, so a clean transfer compares exactly and any
// difference is transit or memory corruption.
//
// The pair is a single-error-correcting code, so a multi-element corruption
// can alias to a plausible single-error syndrome and mis-locate. The repair
// is therefore re-verified: the recomputed pair must cancel against the
// stored one down to round-off, or the payload is rejected — the
// repair-or-reject contract, never a silently mis-repaired payload the
// algebra could have caught.
func verifyComplexPair(w, x []complex128, cs [2]complex128, cur checksum.Pair, rep *core.Report) error {
	stored := checksum.Pair{D1: cs[0], D2: cs[1]}
	d := stored.Sub(cur)
	if d.D1 == 0 && d.D2 == 0 {
		return nil
	}
	rep.Detections++
	j, ok := checksum.Locate(d, len(x))
	if ok {
		x[j] += d.D1 / w[j]
		if residualOK(stored, checksum.GeneratePair(w, x)) {
			rep.MemCorrections++
			return nil
		}
	}
	rep.Uncorrectable = true
	return fmt.Errorf("serve: unrecoverable payload corruption: %w", core.ErrUncorrectable)
}

// verifyFloatsPair is verifyComplexPair over a float64 payload viewed as
// len(w) adjacent sample pairs; a repair heals one pair.
func verifyFloatsPair(w []complex128, x []float64, cs [2]complex128, cur checksum.Pair, rep *core.Report) error {
	stored := checksum.Pair{D1: cs[0], D2: cs[1]}
	d := stored.Sub(cur)
	if d.D1 == 0 && d.D2 == 0 {
		return nil
	}
	rep.Detections++
	j, ok := checksum.Locate(d, len(w))
	if ok {
		z := complex(x[2*j], x[2*j+1]) + d.D1/w[j]
		x[2*j], x[2*j+1] = real(z), imag(z)
		if residualOK(stored, floatPair(w, x)) {
			rep.MemCorrections++
			return nil
		}
	}
	rep.Uncorrectable = true
	return fmt.Errorf("serve: unrecoverable payload corruption: %w", core.ErrUncorrectable)
}

// residualOK reports whether a post-repair checksum pair matches the stored
// one down to round-off. A genuine single-element repair cancels exactly up
// to the one rounding in w[j]·(ΔD1/w[j]); a mis-located repair leaves the
// other corrupted element's contribution behind, far above this bound.
func residualOK(stored, cur checksum.Pair) bool {
	const rel = 1e-9
	return cmplx.Abs(stored.D1-cur.D1) <= rel*(cmplx.Abs(stored.D1)+cmplx.Abs(cur.D1)+1) &&
		cmplx.Abs(stored.D2-cur.D2) <= rel*(cmplx.Abs(stored.D2)+cmplx.Abs(cur.D2)+1)
}

// floatPair is checksum.GeneratePair over a float64 vector viewed as
// len(w) complex sample pairs. Client and server share this exact
// summation order, so clean transfers compare exactly.
func floatPair(w []complex128, x []float64) checksum.Pair {
	var d1, d2 complex128
	for j := range w {
		t := w[j] * complex(x[2*j], x[2*j+1])
		d1 += t
		d2 += complex(float64(j), 0) * t
	}
	return checksum.Pair{D1: d1, D2: d2}
}
