package workload

import (
	"math"
	"math/cmplx"
	"testing"

	"ftfft/internal/dft"
)

func TestUniformRangeAndDeterminism(t *testing.T) {
	a := Uniform(1, 1000)
	b := Uniform(1, 1000)
	c := Uniform(2, 1000)
	diff := false
	for i := range a {
		if real(a[i]) < -1 || real(a[i]) > 1 || imag(a[i]) < -1 || imag(a[i]) > 1 {
			t.Fatalf("sample %d out of range: %v", i, a[i])
		}
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestNormalMoments(t *testing.T) {
	x := Normal(3, 20000)
	var mean, varr float64
	for _, v := range x {
		mean += real(v)
	}
	mean /= float64(len(x))
	for _, v := range x {
		d := real(v) - mean
		varr += d * d
	}
	varr /= float64(len(x))
	if math.Abs(mean) > 0.05 || math.Abs(varr-1) > 0.1 {
		t.Fatalf("mean=%g var=%g", mean, varr)
	}
}

func TestTonesSpectrum(t *testing.T) {
	n := 256
	x := Tones(4, n, 0, Tone{Bin: 10, Amplitude: 2})
	X := dft.Transform(x)
	// A real cosine at bin 10 puts energy n·A/2 at bins 10 and n-10.
	want := float64(n) // 256·2/2
	if cmplx.Abs(X[10]) < want*0.99 || cmplx.Abs(X[246]) < want*0.99 {
		t.Fatalf("tone energy misplaced: |X[10]|=%g |X[246]|=%g", cmplx.Abs(X[10]), cmplx.Abs(X[246]))
	}
	for j := 0; j < n; j++ {
		if j == 10 || j == 246 {
			continue
		}
		if cmplx.Abs(X[j]) > 1e-9*float64(n) {
			t.Fatalf("leakage at bin %d: %g", j, cmplx.Abs(X[j]))
		}
	}
}

func TestImpulseTrain(t *testing.T) {
	x := ImpulseTrain(16, 4)
	count := 0
	for _, v := range x {
		if v == 1 {
			count++
		} else if v != 0 {
			t.Fatal("unexpected value")
		}
	}
	if count != 4 {
		t.Fatalf("expected 4 impulses, got %d", count)
	}
}

func TestGaussianPulsePeak(t *testing.T) {
	x := GaussianPulse(64, 32, 4)
	if real(x[32]) != 1 {
		t.Fatalf("peak = %v", x[32])
	}
	if real(x[0]) > 1e-10 {
		t.Fatalf("tail too heavy: %v", x[0])
	}
}
