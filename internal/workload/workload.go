// Package workload generates the deterministic input vectors used by tests,
// examples and the paper-reproduction experiments: the U(-1,1) and N(0,1)
// distributions of §9, plus structured signals (tones, chirps, impulse
// trains) for the application examples.
package workload

import (
	"math"
	"math/rand"
)

// Uniform returns n complex samples with real and imaginary parts drawn
// independently from U(-1,1) — the paper's primary evaluation input.
func Uniform(seed int64, n int) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

// Normal returns n complex samples with components drawn from N(0,1).
func Normal(seed int64, n int) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// Tone is one sinusoidal component of a synthetic signal.
type Tone struct {
	// Bin is the DFT bin the tone lands on (cycles per record).
	Bin int
	// Amplitude scales the tone.
	Amplitude float64
	// Phase offsets the tone, in radians.
	Phase float64
}

// Tones synthesizes n real-valued samples composed of the given tones plus
// zero-mean Gaussian noise of the given standard deviation.
func Tones(seed int64, n int, noise float64, tones ...Tone) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for t := 0; t < n; t++ {
		var v float64
		for _, tn := range tones {
			v += tn.Amplitude * math.Cos(2*math.Pi*float64(tn.Bin)*float64(t)/float64(n)+tn.Phase)
		}
		if noise > 0 {
			v += noise * rng.NormFloat64()
		}
		x[t] = complex(v, 0)
	}
	return x
}

// ImpulseTrain returns n samples with unit impulses every period samples —
// a wide, flat spectrum that exercises every output bin.
func ImpulseTrain(n, period int) []complex128 {
	x := make([]complex128, n)
	for t := 0; t < n; t += period {
		x[t] = 1
	}
	return x
}

// GaussianPulse returns a Gaussian envelope centered at c with width sigma,
// useful as a convolution kernel in the examples.
func GaussianPulse(n, c int, sigma float64) []complex128 {
	x := make([]complex128, n)
	for t := 0; t < n; t++ {
		d := float64(t - c)
		x[t] = complex(math.Exp(-d*d/(2*sigma*sigma)), 0)
	}
	return x
}
