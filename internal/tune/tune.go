// Package tune is the plan-time autotuner: the FFTW-style measured planner
// beneath the public WithTuning option. Every performance-critical choice a
// plan makes — flat vs recursive kernel, Bluestein convolution length, nd
// tile size, ForwardBatch epoch window — is a knob with a small legal
// candidate set; under measured tuning the plan builder times the candidates
// on the host and the winner is remembered in a process-wide bounded wisdom
// table, exportable as a versioned checksummed byte blob so a fleet tunes
// once on a canary and ships the file.
//
// Determinism contract: wisdom stores *choices*, not timings. Two plans
// built from the same wisdom table make identical choices and therefore
// produce bit-identical outputs — measurement noise can change which
// candidate wins on a given run, never what a recorded winner computes.
// Estimate-mode plans ignore wisdom entirely, so the default heuristics stay
// bit-identical to their pre-tuning behavior.
package tune

import "sync"

// Mode is the planner's tuning policy.
type Mode uint8

const (
	// Estimate keeps the analytic heuristics and ignores wisdom entirely —
	// the default, bit-identical to untuned behavior.
	Estimate Mode = iota
	// Measured times the legal candidates for each knob at plan build and
	// records the winners as wisdom; subsequent builds hit the table.
	Measured
	// Wisdom consults the table but never measures on a miss (falling back
	// to the heuristics) — the serve-side policy: a service applies imported
	// wisdom deterministically without pausing a request to benchmark.
	Wisdom
)

// Knob identifies one tunable plan choice.
type Knob uint8

const (
	// KnobKernel is the fft engine choice (flat vs recursive) for the
	// sub-FFT plans; value is the fft.Kernel constant (1 flat, 2 recursive).
	KnobKernel Knob = 1 + iota
	// KnobConv is the Bluestein convolution length, keyed by leaf size
	// (an engine property: every plan sharing the leaf shares the choice);
	// value is the chosen length m ≥ 2·leaf−1.
	KnobConv
	// KnobTile is the nd cache-tile working set in complex128 elements,
	// keyed by the transform shape; value is the TileElems choice.
	KnobTile
	// KnobWindow is the ForwardBatch epoch-pipelining window for parallel
	// plans; value is the window depth (1, 2 or 4).
	KnobWindow

	knobEnd // one past the last valid knob
)

// MaxDims bounds the dims a wisdom key can carry, matching the serve wire's
// dimension cap (mpi.MaxServeDims); higher-rank shapes simply go untuned.
const MaxDims = 8

// Key identifies one knob instance: the knob plus the plan geometry it was
// measured under. The zero Dims array means a 1-D (or shape-free) key.
type Key struct {
	Knob   Knob
	Real   bool
	Scheme uint8 // protection scheme ordinal; 0 for engine-level knobs
	N      int64
	Dims   [MaxDims]int32
}

// KeyFor assembles a wisdom key, folding a dims slice into the fixed array.
// ok is false when the shape has more than MaxDims axes — such plans go
// untuned rather than aliasing another key.
func KeyFor(knob Knob, n int, dims []int, scheme uint8, real bool) (k Key, ok bool) {
	if len(dims) > MaxDims {
		return Key{}, false
	}
	k = Key{Knob: knob, Real: real, Scheme: scheme, N: int64(n)}
	for i, d := range dims {
		k.Dims[i] = int32(d)
	}
	return k, true
}

// keyLess is the canonical wisdom ordering: the order Export writes and
// Import demands, making the wire encoding of any accepted table unique.
func keyLess(a, b Key) bool {
	if a.Knob != b.Knob {
		return a.Knob < b.Knob
	}
	if a.Real != b.Real {
		return !a.Real
	}
	if a.Scheme != b.Scheme {
		return a.Scheme < b.Scheme
	}
	if a.N != b.N {
		return a.N < b.N
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return a.Dims[i] < b.Dims[i]
		}
	}
	return false
}

// DefaultCap is the wisdom table's entry cap: far above any realistic plan
// mix (a few knobs per distinct geometry) while bounding a pathological
// caller the way the fft kernel cache bounds plan tables.
const DefaultCap = 512

// Table is a bounded wisdom table. The zero value is not usable; use
// NewTable. All methods are safe for concurrent use.
type Table struct {
	mu    sync.Mutex
	cap   int
	m     map[Key]int64
	order []Key // insertion order, for FIFO eviction past cap
	epoch uint64
}

// NewTable creates a wisdom table holding at most cap entries (values < 1
// get DefaultCap).
func NewTable(cap int) *Table {
	if cap < 1 {
		cap = DefaultCap
	}
	return &Table{cap: cap, m: make(map[Key]int64)}
}

// Lookup returns the recorded choice for k.
func (t *Table) Lookup(k Key) (int64, bool) {
	t.mu.Lock()
	v, ok := t.m[k]
	t.mu.Unlock()
	return v, ok
}

// Record stores a measured winner. Values ≤ 0 are ignored (no knob has a
// non-positive choice). When the table is full the oldest entry is evicted,
// mirroring the fft kernel cache's bound.
func (t *Table) Record(k Key, v int64) {
	if v <= 0 {
		return
	}
	t.mu.Lock()
	if _, exists := t.m[k]; !exists {
		if len(t.order) >= t.cap {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.m, oldest)
		}
		t.order = append(t.order, k)
	}
	t.m[k] = v
	t.mu.Unlock()
}

// Len reports the current entry count.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Epoch returns the table's import generation. Plan caches keyed on it
// cannot serve a plan tuned under different wisdom: Import and Forget bump
// the epoch, Record does not (local measurement refines, it cannot conflict
// with a cached plan's own build-time choices).
func (t *Table) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Forget clears the table and bumps the epoch.
func (t *Table) Forget() {
	t.mu.Lock()
	t.m = make(map[Key]int64)
	t.order = nil
	t.epoch++
	t.mu.Unlock()
}

// global is the process-wide table behind the public ftfft wisdom API.
var global = NewTable(DefaultCap)

// Lookup consults the process-wide table.
func Lookup(k Key) (int64, bool) { return global.Lookup(k) }

// Record stores into the process-wide table.
func Record(k Key, v int64) { global.Record(k, v) }

// Epoch returns the process-wide table's import generation.
func Epoch() uint64 { return global.Epoch() }

// Forget clears the process-wide table.
func Forget() { global.Forget() }

// Export serializes the process-wide table.
func Export() []byte { return global.Export() }

// Import merges a wisdom blob into the process-wide table.
func Import(data []byte) error { return global.Import(data) }
