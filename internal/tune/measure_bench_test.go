package tune

import (
	"fmt"
	"testing"

	"ftfft/internal/fft"
)

// BenchmarkConv4099 times a pure-Bluestein 4099-point transform at every
// legal convolution length — the exact ladder MeasureConv sweeps
// (fft.ConvCandidates, shared with the convCost heuristic). One
// sub-benchmark per candidate makes the heuristic's miss visible in the
// dated JSON trajectory next to the tuner's measured winner.
func BenchmarkConv4099(b *testing.B) {
	const leaf = 4099
	src := make([]complex128, leaf)
	for i := range src {
		src[i] = complex(float64(i%17)-8, float64(i%13)-6)
	}
	dst := make([]complex128, leaf)
	for _, m := range fft.ConvCandidates(leaf) {
		m := m
		b.Run(fmt.Sprintf("m%d", m), func(b *testing.B) {
			p, err := fft.NewPlanConfig(leaf, fft.Forward, fft.PlanConfig{ConvLen: func(int) int { return m }})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Execute(dst, src)
			}
		})
	}
}
