package tune

import (
	"time"

	"ftfft/internal/fft"
)

// Iters returns the deterministic measurement iteration count for an n-point
// candidate: enough repetitions to lift one sample well above timer
// granularity, capped so tuning a large plan stays in the low milliseconds.
// The count depends only on n — never on the clock — so a tuning sweep runs
// the same work on every host; only which candidate wins varies, and the
// winner is pinned by exporting wisdom.
func Iters(n int) int {
	const budget = 1 << 21 // ~2M points of work per sample
	if n < 1 {
		n = 1
	}
	it := budget / n
	if it < 3 {
		return 3
	}
	if it > 64 {
		return 64
	}
	return it
}

// Measure times fn over iters iterations — after one untimed warmup that
// faults in pooled scratch and table caches — and returns the best-of-two
// per-iteration cost; the min is robust against scheduler preemption.
// Timing only ever picks which deterministic candidate wins (outputs are
// fixed per candidate), so clock noise can never leak into results.
func Measure(iters int, fn func()) time.Duration {
	if iters < 1 {
		iters = 1
	}
	fn()
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < 2; rep++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best / time.Duration(iters)
}

// MeasureConv times a leaf-point pure-Bluestein forward transform for every
// legal convolution length (fft.ConvCandidates — the same ladder the
// convCost heuristic scores) and returns the fastest, or 0 when leaf is not
// a Bluestein leaf size. The candidate plans are transient: measurement cost
// is confined to plan build, and the winner is rebuilt into the caller's
// plan, so nothing measured leaks into steady state.
func MeasureConv(leaf int) int {
	if leaf < 2 || fft.BluesteinLeaf(leaf) != leaf {
		return 0
	}
	cands := fft.ConvCandidates(leaf)
	iters := Iters(cands[len(cands)-1])
	src := make([]complex128, leaf)
	for i := range src {
		src[i] = complex(float64(i%17)-8, float64(i%13)-6)
	}
	dst := make([]complex128, leaf)
	best, bestT := 0, time.Duration(0)
	for _, m := range cands {
		m := m
		p, err := fft.NewPlanConfig(leaf, fft.Forward, fft.PlanConfig{ConvLen: func(int) int { return m }})
		if err != nil {
			continue
		}
		d := Measure(iters, func() { p.Execute(dst, src) })
		if best == 0 || d < bestT {
			best, bestT = m, d
		}
	}
	return best
}
