package tune

import (
	"bytes"
	"fmt"
	"testing"

	"ftfft/internal/fft"
)

// sampleKeys covers every knob and key shape: engine-level (no scheme, no
// dims), scheme-keyed 1-D, real-input, and multi-dim up to the MaxDims cap.
func sampleKeys() []Key {
	ks := []Key{
		{Knob: KnobKernel, N: 4096, Scheme: 2},
		{Knob: KnobKernel, N: 4096, Scheme: 2, Real: true},
		{Knob: KnobConv, N: 4099},
		{Knob: KnobConv, N: 40961},
		{Knob: KnobWindow, N: 1 << 14, Scheme: 2},
	}
	if k, ok := KeyFor(KnobTile, 512*512, []int{512, 512}, 1, false); ok {
		ks = append(ks, k)
	}
	if k, ok := KeyFor(KnobTile, 1<<18, []int{64, 64, 64}, 2, false); ok {
		ks = append(ks, k)
	}
	if k, ok := KeyFor(KnobTile, 256, []int{2, 2, 2, 2, 2, 2, 2, 2}, 0, false); ok {
		ks = append(ks, k)
	}
	return ks
}

// TestWisdomRoundTrip is the export∘import identity property: a table's
// entries survive the wire byte-exactly across every key shape, and the
// re-export of an imported blob reproduces it bit for bit.
func TestWisdomRoundTrip(t *testing.T) {
	src := NewTable(0)
	for i, k := range sampleKeys() {
		src.Record(k, int64(1000+i))
	}
	blob := src.Export()

	dst := NewTable(0)
	if err := dst.Import(blob); err != nil {
		t.Fatalf("Import: %v", err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("imported %d entries, want %d", dst.Len(), src.Len())
	}
	for i, k := range sampleKeys() {
		v, ok := dst.Lookup(k)
		if !ok || v != int64(1000+i) {
			t.Fatalf("key %+v: got (%d, %v), want (%d, true)", k, v, ok, 1000+i)
		}
	}
	if again := dst.Export(); !bytes.Equal(again, blob) {
		t.Fatalf("re-export differs: %d bytes vs %d", len(again), len(blob))
	}
}

// TestWisdomKeyForOverflow pins that shapes beyond MaxDims go untuned
// instead of aliasing a truncated key.
func TestWisdomKeyForOverflow(t *testing.T) {
	dims := make([]int, MaxDims+1)
	for i := range dims {
		dims[i] = 2
	}
	if _, ok := KeyFor(KnobTile, 1<<(MaxDims+1), dims, 0, false); ok {
		t.Fatal("KeyFor accepted a shape beyond MaxDims")
	}
}

// TestWisdomImportRejects pins the reject paths: corrupted checksum, bad
// magic, truncation, non-canonical order, trailing bytes.
func TestWisdomImportRejects(t *testing.T) {
	src := NewTable(0)
	for i, k := range sampleKeys() {
		src.Record(k, int64(1+i))
	}
	blob := src.Export()
	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:10],
		"truncated": blob[:len(blob)-9],
		"trailing":  append(append([]byte{}, blob...), 0),
	}
	flipped := append([]byte{}, blob...)
	flipped[len(flipped)/2] ^= 1
	cases["bitflip"] = flipped
	badMagic := append([]byte{}, blob...)
	badMagic[0] ^= 0xff
	cases["magic"] = badMagic
	for name, data := range cases {
		if err := NewTable(0).Import(data); err == nil {
			t.Errorf("%s: Import accepted a malformed blob", name)
		}
	}
}

// TestWisdomEpoch pins the epoch contract: Import and Forget bump it,
// Record does not — serve plan caches keyed on the epoch must not churn
// under local measurement, only under wisdom changes.
func TestWisdomEpoch(t *testing.T) {
	tb := NewTable(0)
	e0 := tb.Epoch()
	tb.Record(Key{Knob: KnobConv, N: 4099}, 16384)
	if tb.Epoch() != e0 {
		t.Fatal("Record bumped the epoch")
	}
	blob := tb.Export()
	if err := tb.Import(blob); err != nil {
		t.Fatal(err)
	}
	if tb.Epoch() != e0+1 {
		t.Fatalf("Import epoch: got %d, want %d", tb.Epoch(), e0+1)
	}
	tb.Forget()
	if tb.Epoch() != e0+2 {
		t.Fatalf("Forget epoch: got %d, want %d", tb.Epoch(), e0+2)
	}
	if tb.Len() != 0 {
		t.Fatal("Forget left entries behind")
	}
}

// TestWisdomTableBounded mirrors the fft kernel-cache eviction tests: the
// table never exceeds its cap, the oldest entry is evicted first, and an
// oversized import is rejected whole.
func TestWisdomTableBounded(t *testing.T) {
	const cap = 8
	tb := NewTable(cap)
	for i := 0; i < 3*cap; i++ {
		tb.Record(Key{Knob: KnobConv, N: int64(100 + i)}, int64(1+i))
		if tb.Len() > cap {
			t.Fatalf("table grew to %d entries, cap %d", tb.Len(), cap)
		}
	}
	if tb.Len() != cap {
		t.Fatalf("table holds %d entries, want %d", tb.Len(), cap)
	}
	if _, ok := tb.Lookup(Key{Knob: KnobConv, N: 100}); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := tb.Lookup(Key{Knob: KnobConv, N: int64(100 + 3*cap - 1)}); !ok {
		t.Fatal("newest entry missing")
	}

	big := NewTable(0)
	for i := 0; i < cap+1; i++ {
		big.Record(Key{Knob: KnobConv, N: int64(100 + i)}, 1)
	}
	if err := tb.Import(big.Export()); err == nil {
		t.Fatal("Import accepted a blob larger than the table cap")
	}
}

// TestMeasureConvLegal pins that the measured winner is always a legal
// candidate (m ≥ 2·leaf−1 from the shared ladder) and that non-Bluestein
// sizes are refused — the tuner can pick a different winner than the
// heuristic but never an illegal one.
func TestMeasureConvLegal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timing sweeps")
	}
	const leaf = 4099
	m := MeasureConv(leaf)
	if m == 0 {
		t.Fatal("MeasureConv(4099) returned nothing")
	}
	legal := false
	for _, c := range fft.ConvCandidates(leaf) {
		if c == m {
			legal = true
		}
	}
	if !legal {
		t.Fatalf("winner %d is not in ConvCandidates(%d) = %v", m, leaf, fft.ConvCandidates(leaf))
	}
	if m < 2*leaf-1 {
		t.Fatalf("winner %d < 2n-1 = %d", m, 2*leaf-1)
	}
	for _, n := range []int{16, 1024, 3 * 1024} {
		if got := MeasureConv(n); got != 0 {
			t.Errorf("MeasureConv(%d) = %d, want 0 (no Bluestein leaf)", n, got)
		}
	}
}

// TestItersDeterministic pins that measurement work depends only on n.
func TestItersDeterministic(t *testing.T) {
	for _, n := range []int{1, 64, 4099, 1 << 14, 1 << 22} {
		a, b := Iters(n), Iters(n)
		if a != b || a < 1 {
			t.Fatalf("Iters(%d): %d then %d", n, a, b)
		}
	}
	if Iters(16) != 64 {
		t.Fatalf("small-n iteration cap: got %d, want 64", Iters(16))
	}
	if Iters(1<<30) != 3 {
		t.Fatalf("large-n iteration floor: got %d, want 3", Iters(1<<30))
	}
}

func ExampleTable() {
	tb := NewTable(0)
	k, _ := KeyFor(KnobConv, 4099, nil, 0, false)
	tb.Record(k, 16384)
	blob := tb.Export()

	fresh := NewTable(0)
	_ = fresh.Import(blob)
	v, ok := fresh.Lookup(k)
	fmt.Println(v, ok)
	// Output: 16384 true
}
