package tune

import (
	"bytes"
	"testing"
)

// FuzzWisdomDecode is the wisdom decoder's robustness contract, mirroring
// the serve wire's FuzzFrameDecode: arbitrary bytes never panic the
// importer, and any blob it accepts is canonical — importing it into a
// fresh table and re-exporting reproduces the input bit for bit.
func FuzzWisdomDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FTWS"))
	empty := NewTable(0)
	f.Add(empty.Export())
	seeded := NewTable(0)
	for i, k := range sampleKeys() {
		seeded.Record(k, int64(1+i))
	}
	f.Add(seeded.Export())
	// A deliberately near-miss blob: valid prefix, flipped tail.
	blob := seeded.Export()
	if len(blob) > 4 {
		blob[len(blob)-4] ^= 0x40
	}
	f.Add(blob)

	f.Fuzz(func(t *testing.T, data []byte) {
		tb := NewTable(0)
		if err := tb.Import(data); err != nil {
			return // rejected is always fine; not panicking is the contract
		}
		again := tb.Export()
		if !bytes.Equal(again, data) {
			t.Fatalf("accepted blob is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(again))
		}
	})
}
