package tune

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// Wisdom wire format (little-endian), versioned and checksummed like the
// serve wire's frames:
//
//	magic   [4]byte  "FTWS"
//	version uint16   (currently 1)
//	count   uint32   entries that follow, ≤ the table cap
//	entry × count:
//	    knob   uint8   KnobKernel..KnobWindow
//	    flags  uint8   bit0 = real-input plan; other bits reserved (zero)
//	    scheme uint8   protection scheme ordinal
//	    ndims  uint8   encoded dims (trailing zero dims trimmed), ≤ MaxDims
//	    n      uint64  transform size / leaf size (≥ 1)
//	    dims   uint32 × ndims (each ≥ 1; dims[ndims-1] ≠ 0 — canonical)
//	    value  uint64  the recorded choice (≥ 1)
//	checksum uint64   FNV-64a of every preceding byte
//
// Entries are sorted in the canonical key order and must be strictly
// increasing, so every accepted blob has exactly one byte representation:
// importing it into a fresh table and re-exporting reproduces the input
// bit for bit (the FuzzWisdomDecode contract, mirroring FuzzFrameDecode).
const (
	wisdomVersion = 1
	flagReal      = 1 << 0
)

var wisdomMagic = [4]byte{'F', 'T', 'W', 'S'}

// Export serializes the table's entries in canonical order.
func (t *Table) Export() []byte {
	t.mu.Lock()
	keys := make([]Key, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	vals := make([]int64, len(keys))
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	for i, k := range keys {
		vals[i] = t.m[k]
	}
	t.mu.Unlock()

	buf := make([]byte, 0, 10+len(keys)*(12+4*MaxDims+8))
	buf = append(buf, wisdomMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, wisdomVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for i, k := range keys {
		ndims := MaxDims
		for ndims > 0 && k.Dims[ndims-1] == 0 {
			ndims--
		}
		flags := byte(0)
		if k.Real {
			flags |= flagReal
		}
		buf = append(buf, byte(k.Knob), flags, k.Scheme, byte(ndims))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k.N))
		for d := 0; d < ndims; d++ {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(k.Dims[d]))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(vals[i]))
	}
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// Import validates a wisdom blob and merges its entries into the table,
// bumping the epoch so plan caches keyed on it cannot mix plans tuned under
// different wisdom. A malformed blob is rejected whole — no partial merge.
func (t *Table) Import(data []byte) error {
	const header = 4 + 2 + 4
	if len(data) < header+8 {
		return fmt.Errorf("tune: wisdom blob too short (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return fmt.Errorf("tune: wisdom checksum mismatch")
	}
	if [4]byte(body[:4]) != wisdomMagic {
		return fmt.Errorf("tune: bad wisdom magic")
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != wisdomVersion {
		return fmt.Errorf("tune: unsupported wisdom version %d", v)
	}
	count := binary.LittleEndian.Uint32(body[6:])
	if int(count) > t.cap {
		return fmt.Errorf("tune: wisdom blob holds %d entries, table cap is %d", count, t.cap)
	}
	off := header
	keys := make([]Key, 0, count)
	vals := make([]int64, 0, count)
	for e := uint32(0); e < count; e++ {
		if len(body)-off < 12 {
			return fmt.Errorf("tune: wisdom entry %d truncated", e)
		}
		knob, flags, scheme, ndims := Knob(body[off]), body[off+1], body[off+2], int(body[off+3])
		n := int64(binary.LittleEndian.Uint64(body[off+4:]))
		off += 12
		if knob < KnobKernel || knob >= knobEnd {
			return fmt.Errorf("tune: wisdom entry %d: unknown knob %d", e, knob)
		}
		if flags&^byte(flagReal) != 0 {
			return fmt.Errorf("tune: wisdom entry %d: reserved flag bits set", e)
		}
		if ndims > MaxDims {
			return fmt.Errorf("tune: wisdom entry %d: %d dims exceeds %d", e, ndims, MaxDims)
		}
		if n < 1 {
			return fmt.Errorf("tune: wisdom entry %d: invalid size %d", e, n)
		}
		if len(body)-off < 4*ndims+8 {
			return fmt.Errorf("tune: wisdom entry %d truncated", e)
		}
		k := Key{Knob: knob, Real: flags&flagReal != 0, Scheme: scheme, N: n}
		for d := 0; d < ndims; d++ {
			dim := int32(binary.LittleEndian.Uint32(body[off:]))
			off += 4
			if dim < 1 {
				return fmt.Errorf("tune: wisdom entry %d: invalid dim %d", e, dim)
			}
			k.Dims[d] = dim
		}
		v := int64(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		if v < 1 {
			return fmt.Errorf("tune: wisdom entry %d: invalid value %d", e, v)
		}
		if len(keys) > 0 && !keyLess(keys[len(keys)-1], k) {
			return fmt.Errorf("tune: wisdom entry %d out of canonical order", e)
		}
		keys = append(keys, k)
		vals = append(vals, v)
	}
	if off != len(body) {
		return fmt.Errorf("tune: %d trailing bytes after wisdom entries", len(body)-off)
	}
	t.mu.Lock()
	for i, k := range keys {
		if _, exists := t.m[k]; !exists {
			if len(t.order) >= t.cap {
				oldest := t.order[0]
				t.order = t.order[1:]
				delete(t.m, oldest)
			}
			t.order = append(t.order, k)
		}
		t.m[k] = vals[i]
	}
	t.epoch++
	t.mu.Unlock()
	return nil
}
