// Package dft implements the discrete Fourier transform directly from its
// O(N²) definition. It is the ground truth against which every FFT path and
// every fault-tolerance scheme in this repository is validated, and it also
// provides the "naive" trigonometric evaluation of the input checksum vector
// used by the un-optimized offline ABFT scheme (Fig. 7, first bar).
package dft

import "math"

// Omega returns ω_N^k = exp(-2πik/N), the N-th principal root of unity raised
// to the k-th power. k may be negative or exceed N.
func Omega(n, k int) complex128 {
	// Reduce k to (-n/2, n/2] so the angle stays small, sin/cos stay
	// accurate, and Omega(n,-k) is the exact conjugate of Omega(n,k).
	k %= n
	if 2*k > n {
		k -= n
	} else if 2*k <= -n {
		k += n
	}
	ang := -2 * math.Pi * float64(k) / float64(n)
	s, c := math.Sincos(ang)
	return complex(c, s)
}

// OmegaInv returns ω_N^{-k} = exp(+2πik/N).
func OmegaInv(n, k int) complex128 {
	return Omega(n, -k)
}

// Transform computes the forward DFT of src into a freshly allocated slice:
//
//	X_j = Σ_{n=0}^{N-1} x_n ω_N^{jn}
func Transform(src []complex128) []complex128 {
	n := len(src)
	dst := make([]complex128, n)
	for j := 0; j < n; j++ {
		var sum complex128
		for t := 0; t < n; t++ {
			sum += src[t] * Omega(n, j*t)
		}
		dst[j] = sum
	}
	return dst
}

// Inverse computes the inverse DFT of src into a freshly allocated slice:
//
//	x_n = (1/N) Σ_{j=0}^{N-1} X_j ω_N^{-jn}
func Inverse(src []complex128) []complex128 {
	n := len(src)
	dst := make([]complex128, n)
	scale := complex(1/float64(n), 0)
	for t := 0; t < n; t++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += src[j] * OmegaInv(n, j*t)
		}
		dst[t] = sum * scale
	}
	return dst
}

// RealTransform computes the forward DFT of a real input directly from the
// definition, returning the stored half spectrum X_0..X_{n/2} of length
// n/2+1 (the upper half follows from conjugate symmetry X_{n-k} = conj(X_k)).
// n must be even. It is the ground truth for the packed real-input FFT path.
func RealTransform(src []float64) []complex128 {
	n := len(src)
	dst := make([]complex128, n/2+1)
	for j := 0; j <= n/2; j++ {
		var sum complex128
		for t := 0; t < n; t++ {
			sum += complex(src[t], 0) * Omega(n, j*t)
		}
		dst[j] = sum
	}
	return dst
}

// RealInverse computes the n real samples whose half spectrum is spec
// (length n/2+1), directly from the inverse-DFT definition with the upper
// half reconstructed by conjugate symmetry.
func RealInverse(spec []complex128, n int) []float64 {
	dst := make([]float64, n)
	for t := 0; t < n; t++ {
		var sum complex128
		for j := 0; j <= n/2; j++ {
			x := spec[j]
			sum += x * OmegaInv(n, j*t)
			if j != 0 && 2*j != n {
				sum += complex(real(x), -imag(x)) * OmegaInv(n, (n-j)*t)
			}
		}
		dst[t] = real(sum) / float64(n)
	}
	return dst
}

// TransformStrided computes the forward DFT of the n strided elements
// src[0], src[stride], ..., src[(n-1)*stride] into dst[0..n-1].
// It is the reference for the decomposed sub-FFT paths.
func TransformStrided(dst, src []complex128, n, stride int) {
	for j := 0; j < n; j++ {
		var sum complex128
		for t := 0; t < n; t++ {
			sum += src[t*stride] * Omega(n, j*t)
		}
		dst[j] = sum
	}
}

// CheckVectorNaive evaluates the input checksum vector rA for an n-point DFT
// by direct summation with per-element trigonometric calls:
//
//	(rA)_j = Σ_{t=0}^{n-1} ω_3^t ω_n^{tj}
//
// This is the expensive path the paper's naive offline scheme pays for; the
// optimized schemes use checksum.CheckVector (closed form) instead.
func CheckVectorNaive(n int) []complex128 {
	out := make([]complex128, n)
	for j := 0; j < n; j++ {
		var sum complex128
		for t := 0; t < n; t++ {
			sum += omega3(t) * Omega(n, t*j)
		}
		out[j] = sum
	}
	return out
}

// omega3 returns ω_3^k where ω_3 = -1/2 + (√3/2)i = exp(+2πi/3), the first
// cube root of unity as chosen by the paper (following Wang & Jha). The same
// constant is defined in internal/checksum; it is duplicated here so that the
// reference package has no dependencies.
func omega3(k int) complex128 {
	k %= 3
	if k < 0 {
		k += 3
	}
	const half = 0.5
	sqrt3half := math.Sqrt(3) / 2
	switch k {
	case 0:
		return 1
	case 1:
		return complex(-half, sqrt3half)
	default:
		return complex(-half, -sqrt3half)
	}
}
