package dft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestOmegaBasics(t *testing.T) {
	cases := []struct {
		n, k int
		want complex128
	}{
		{4, 0, 1},
		{4, 1, complex(0, -1)},
		{4, 2, -1},
		{4, 3, complex(0, 1)},
		{4, 4, 1},
		{4, -1, complex(0, 1)},
		{2, 1, -1},
		{8, 2, complex(0, -1)},
	}
	for _, c := range cases {
		got := Omega(c.n, c.k)
		if !approxEqual(got, c.want, 1e-15) {
			t.Errorf("Omega(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestOmegaPeriodicity(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for k := -2 * n; k <= 2*n; k++ {
			a := Omega(n, k)
			b := Omega(n, k+n)
			if !approxEqual(a, b, 1e-14) {
				t.Fatalf("Omega(%d,%d) != Omega(%d,%d): %v vs %v", n, k, n, k+n, a, b)
			}
		}
	}
}

func TestOmegaInvIsConjugate(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for k := 0; k < n; k++ {
			if !approxEqual(OmegaInv(n, k), cmplx.Conj(Omega(n, k)), 1e-15) {
				t.Fatalf("OmegaInv(%d,%d) != conj(Omega)", n, k)
			}
		}
	}
}

func TestTransformImpulse(t *testing.T) {
	// DFT of the unit impulse is the all-ones vector.
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16} {
		x := make([]complex128, n)
		x[0] = 1
		X := Transform(x)
		for j, v := range X {
			if !approxEqual(v, 1, 1e-12) {
				t.Fatalf("n=%d: X[%d] = %v, want 1", n, j, v)
			}
		}
	}
}

func TestTransformConstant(t *testing.T) {
	// DFT of the all-ones vector is N at bin 0 and 0 elsewhere.
	for _, n := range []int{1, 2, 3, 4, 6, 8, 15} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = 1
		}
		X := Transform(x)
		if !approxEqual(X[0], complex(float64(n), 0), 1e-10*float64(n)) {
			t.Fatalf("n=%d: X[0] = %v, want %d", n, X[0], n)
		}
		for j := 1; j < n; j++ {
			if !approxEqual(X[j], 0, 1e-10*float64(n)) {
				t.Fatalf("n=%d: X[%d] = %v, want 0", n, j, X[j])
			}
		}
	}
}

func TestTransformSingleTone(t *testing.T) {
	// x_n = ω_N^{-fn} has DFT N·δ_{j,f}.
	n, f := 16, 3
	x := make([]complex128, n)
	for i := range x {
		x[i] = OmegaInv(n, f*i)
	}
	X := Transform(x)
	for j := range X {
		want := complex128(0)
		if j == f {
			want = complex(float64(n), 0)
		}
		if !approxEqual(X[j], want, 1e-11) {
			t.Fatalf("X[%d] = %v, want %v", j, X[j], want)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 8, 12, 31, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := Inverse(Transform(x))
		for i := range x {
			if !approxEqual(x[i], y[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d round trip mismatch at %d: %v vs %v", n, i, x[i], y[i])
			}
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	// DFT(a·x + b·y) = a·DFT(x) + b·DFT(y)
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		a := complex(r.NormFloat64(), r.NormFloat64())
		b := complex(r.NormFloat64(), r.NormFloat64())
		x := make([]complex128, n)
		y := make([]complex128, n)
		z := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			y[i] = complex(r.NormFloat64(), r.NormFloat64())
			z[i] = a*x[i] + b*y[i]
		}
		X, Y, Z := Transform(x), Transform(y), Transform(z)
		for j := 0; j < n; j++ {
			if !approxEqual(Z[j], a*X[j]+b*Y[j], 1e-9*float64(n)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Σ|x|² = (1/N) Σ|X|²
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(48)
		x := make([]complex128, n)
		var ein float64
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			ein += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		X := Transform(x)
		var eout float64
		for _, v := range X {
			eout += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(ein-eout/float64(n)) <= 1e-8*(1+ein)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformStridedMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	buf := make([]complex128, 60)
	for i := range buf {
		buf[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for _, c := range []struct{ n, stride int }{{5, 3}, {4, 15}, {12, 5}, {1, 7}, {60, 1}} {
		gathered := make([]complex128, c.n)
		for i := 0; i < c.n; i++ {
			gathered[i] = buf[i*c.stride]
		}
		want := Transform(gathered)
		got := make([]complex128, c.n)
		TransformStrided(got, buf, c.n, c.stride)
		for i := range want {
			if !approxEqual(got[i], want[i], 1e-10*float64(c.n)) {
				t.Fatalf("n=%d stride=%d mismatch at %d", c.n, c.stride, i)
			}
		}
	}
}

func TestCheckVectorNaiveGeometricSum(t *testing.T) {
	// (rA)_j must equal the geometric sum Σ_t (ω3 ω_n^j)^t; cross-check
	// against fresh accumulation in a different order.
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		ra := CheckVectorNaive(n)
		for j := 0; j < n; j++ {
			q := omega3(1) * Omega(n, j)
			term := complex128(1)
			var sum complex128
			for t := 0; t < n; t++ {
				sum += term
				term *= q
			}
			if !approxEqual(ra[j], sum, 1e-11*float64(n)) {
				t.Fatalf("n=%d j=%d: %v vs %v", n, j, ra[j], sum)
			}
		}
	}
}

func TestOmega3IsCubeRoot(t *testing.T) {
	w := omega3(1)
	if !approxEqual(w*w*w, 1, 1e-15) {
		t.Fatalf("ω3³ = %v, want 1", w*w*w)
	}
	if !approxEqual(w, complex(-0.5, math.Sqrt(3)/2), 1e-15) {
		t.Fatalf("ω3 = %v, want -1/2+√3/2 i", w)
	}
	if !approxEqual(omega3(2), cmplx.Conj(w), 1e-15) {
		t.Fatalf("ω3² should be conj(ω3)")
	}
	if !approxEqual(omega3(-1), omega3(2), 1e-15) {
		t.Fatalf("negative powers should wrap")
	}
}

// TestRealReferenceConsistent checks the real-input reference against the
// complex one on complexified data, and its inverse as an exact round trip —
// the real FFT paths are validated against these functions, so they must
// themselves agree with the definition.
func TestRealReferenceConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{2, 4, 6, 8, 10, 16, 30, 64} {
		src := make([]float64, n)
		csrc := make([]complex128, n)
		for i := range src {
			src[i] = rng.Float64()*2 - 1
			csrc[i] = complex(src[i], 0)
		}
		full := Transform(csrc)
		half := RealTransform(src)
		if len(half) != n/2+1 {
			t.Fatalf("n=%d: half spectrum length %d", n, len(half))
		}
		for j := range half {
			if !approxEqual(half[j], full[j], 1e-10*float64(n)) {
				t.Fatalf("n=%d: RealTransform[%d] = %v, complex reference %v", n, j, half[j], full[j])
			}
		}
		back := RealInverse(half, n)
		for i := range src {
			if math.Abs(back[i]-src[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d: RealInverse round trip sample %d off by %g", n, i, back[i]-src[i])
			}
		}
	}
}
