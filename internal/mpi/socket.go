// socket.go implements the multi-process wire: a hub-and-spoke socket
// transport (Unix-domain by default, TCP optionally) carrying the framed
// codec of wire.go.
//
// Topology: the root process listens (HubTransport, rank 0); each worker
// process dials in (WorkerTransport, one rank per process, assigned in
// connection order). Worker↔worker messages relay through the hub at the
// byte level — the hub forwards the serialized frame without decoding the
// payload. A star keeps connection management trivial (p-1 sockets, one
// listener) at the cost of one extra hop for worker pairs; on one machine
// over Unix sockets that hop is cheap, and the transport seam leaves room
// for a full mesh later without touching the layers above.
//
// Lifecycle and failure:
//
//   - handshake: worker sends a hello frame (protocol magic); the hub
//     responds — once the plan is built and ConfigureWorld runs — with a
//     config frame carrying the worker's rank and the WorldMeta, so every
//     process constructs the identical plan.
//   - abort: a world abort in any process broadcasts an abort frame; the hub
//     relays worker-originated aborts to the other workers. A lost
//     connection aborts the world with the connection error. Either way,
//     every rank parked in a receive unwinds with a cause instead of
//     deadlocking — the in-process poison-pill contract, extended over the
//     wire.
//   - shutdown: Hub.Close sends a goodbye frame; workers record ErrShutdown
//     so serve loops exit cleanly.
//
// Fault injection: InjectWireFaults installs a hook that may mutate the
// serialized payload bytes of outgoing data frames — soft errors on the wire
// itself, below the codec, which the §5 block checksums must detect and
// repair on receipt.
package mpi

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// WireFault may corrupt the serialized payload of an outgoing data frame:
// payload is the count×16-byte little-endian element region (checksums and
// header excluded). Install with InjectWireFaults.
type WireFault func(dst, src, tag int, payload []byte)

// handshakeTimeout bounds the accept/hello/config exchange; a worker that
// never completes its handshake fails the hub instead of hanging it forever.
const handshakeTimeout = 120 * time.Second

// dialRetryInterval paces DialWorker's connection attempts while the hub's
// listener is not up yet.
const dialRetryInterval = 25 * time.Millisecond

// teardownFlushTimeout bounds the abort/goodbye writes (and, transitively,
// any in-flight data write wedged on a dead peer's full socket buffer —
// setting the deadline forces it to error out and release the write mutex).
// Without it, a frozen worker could block PropagateAbort or Hub.Close
// forever, violating the "abort unblocks everything" contract.
const teardownFlushTimeout = 5 * time.Second

// wireConn is one framed socket: mutex-serialized writes with a
// connection-owned encode buffer, so concurrent senders interleave whole
// frames and steady-state sends allocate nothing. Data frames go out as
// vectored writes — header+checksums in a small fixed prefix, the element
// payload in its own buffer, handed to the kernel as one writev — so the
// payload is never copied a second time to coalesce it with the header.
// The buffered reader is owned by the connection too — handshake and read
// loop must share it, or bytes buffered by one would be invisible to the
// other.
type wireConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	mu   sync.Mutex
	enc  []byte
	pre  [frameHeaderLen + checksumLen]byte
	vec  [2][]byte
	bufs net.Buffers
}

func newWireConn(c net.Conn) *wireConn {
	return &wireConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

// writeData encodes and writes m as one data frame, applying wf (if any) to
// the serialized payload region first. Header and checksums are encoded into
// the fixed prefix, elements into the reusable payload buffer, and both go
// down in a single vectored write.
func (wc *wireConn) writeData(dst, src int, m Message, wf WireFault) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	h := frameHeader{typ: frameData, tag: m.Tag, src: src, dst: dst, count: len(m.Data)}
	pre := wc.pre[:frameHeaderLen]
	if m.HasCS {
		h.flags = flagHasCS
		pre = wc.pre[:frameHeaderLen+checksumLen]
		putComplex(pre, frameHeaderLen, m.CS[0])
		putComplex(pre, frameHeaderLen+elemLen, m.CS[1])
	}
	putHeader(pre, h)
	// The payload slab comes from the shared size-classed pool rather than a
	// per-connection buffer: connections that once carried a large frame no
	// longer pin a max-sized slab forever (the BENCH_PR7 bytes_per_op creep),
	// and idle slabs are reclaimable by the GC through sync.Pool.
	rb := getWireBuf(len(m.Data) * elemLen)
	payload := rb.data
	for i, z := range m.Data {
		putComplex(payload, i*elemLen, z)
	}
	if wf != nil && len(payload) > 0 {
		wf(dst, src, m.Tag, payload)
	}
	err := wc.writeVectored(pre, payload)
	putWireBuf(rb)
	return err
}

// writeVectored sends prefix+payload as one writev syscall, bypassing the
// buffered writer — safe because every write path flushes before releasing
// the connection mutex, so bw is always empty here. WriteTo consumes the
// net.Buffers slice by advancing its pointer, so the slice header is rebuilt
// from the connection-owned backing array each call — the steady-state send
// path stays allocation-free.
func (wc *wireConn) writeVectored(pre, payload []byte) error {
	wc.vec[0], wc.vec[1] = pre, payload
	wc.bufs = net.Buffers(wc.vec[:])
	_, err := wc.bufs.WriteTo(wc.c)
	wc.vec[0], wc.vec[1] = nil, nil
	return err
}

// writeControl writes one control frame.
func (wc *wireConn) writeControl(typ byte, payload []byte) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	wc.enc = encodeControlFrame(wc.enc, typ, payload)
	if _, err := wc.bw.Write(wc.enc); err != nil {
		return err
	}
	return wc.bw.Flush()
}

// writeRaw relays an already-serialized frame (header + body) verbatim, as
// one vectored write (the relay hot path: worker↔worker frames through the
// hub are forwarded without a coalescing copy).
func (wc *wireConn) writeRaw(hdr, body []byte) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.writeVectored(hdr, body)
}

// RemoteAbortError is an abort cause relayed over the wire from another
// process; Msg is the originating process's rendered error.
type RemoteAbortError struct{ Msg string }

func (e *RemoteAbortError) Error() string { return "mpi: remote abort: " + e.Msg }

// HubTransport is the root process's side of the socket wire: rank 0 lives
// here, ranks 1..p-1 are worker processes dialed in through the listener.
type HubTransport struct {
	p        int
	ln       net.Listener
	conns    []*wireConn    // by worker rank; conns[0] is nil (the hub itself)
	inbox    []chan Message // local rank 0's inbox, indexed by src
	maxElems int

	w         *World
	accepted  bool
	started   bool
	wfMu      sync.Mutex
	wireFault WireFault
	remote    atomic.Bool // the poison pill arrived over the wire
	closing   atomic.Bool // deliberate shutdown: connection losses are expected
	closeOnce sync.Once
}

// ListenHub opens the root side of a p-rank socket world on network
// ("unix" or "tcp") and addr. It returns immediately; the p-1 worker
// connections are accepted when the plan built over this transport runs its
// handshake (ConfigureWorld). Use Addr to recover the bound address (useful
// with "tcp" and a ":0" listen address).
func ListenHub(network, addr string, p int) (*HubTransport, error) {
	if p < 2 {
		return nil, fmt.Errorf("mpi: a socket world needs at least 2 ranks, got %d", p)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: listen %s %s: %w", network, addr, err)
	}
	t := &HubTransport{p: p, ln: ln, conns: make([]*wireConn, p)}
	t.inbox = newInboxRow(p)
	return t, nil
}

// newInboxRow builds one local rank's inbox: a channel per source rank.
// Socket transports host exactly one rank per process, so a single row —
// not a p×p matrix — is all the process can ever receive into.
func newInboxRow(p int) []chan Message {
	inbox := make([]chan Message, p)
	for src := 0; src < p; src++ {
		inbox[src] = make(chan Message, 64)
	}
	return inbox
}

// Addr returns the listener's bound address.
func (t *HubTransport) Addr() net.Addr { return t.ln.Addr() }

// WorldSize returns the number of ranks the hub was opened for.
func (t *HubTransport) WorldSize() int { return t.p }

// LocalRanks implements RankPlacement: the hub hosts rank 0.
func (t *HubTransport) LocalRanks() []int { return []int{0} }

// Bind implements WorldBinder.
func (t *HubTransport) Bind(w *World) { t.w = w }

// InjectWireFaults installs a hook over outgoing serialized payloads — the
// wire-level fault site. A nil hook removes it.
func (t *HubTransport) InjectWireFaults(f WireFault) {
	t.wfMu.Lock()
	t.wireFault = f
	t.wfMu.Unlock()
}

func (t *HubTransport) getWireFault() WireFault {
	t.wfMu.Lock()
	defer t.wfMu.Unlock()
	return t.wireFault
}

// ConfigureWorld completes the handshake: it accepts the p-1 worker
// connections (bounded by handshakeTimeout), assigns ranks in connection
// order, ships each worker its rank and the job metadata, and starts the
// connection readers. Called once, at plan-build time.
func (t *HubTransport) ConfigureWorld(meta WorldMeta) error {
	if t.w == nil {
		return fmt.Errorf("mpi: hub transport not bound to a world")
	}
	if meta.P != t.p {
		return fmt.Errorf("mpi: plan has %d ranks but the hub was opened for %d", meta.P, t.p)
	}
	if t.started {
		return fmt.Errorf("mpi: hub transport already configured (one world per transport)")
	}
	if err := t.acceptWorkers(); err != nil {
		return err
	}
	cfgDone := time.Now().Add(handshakeTimeout)
	for r := 1; r < t.p; r++ {
		wc := t.conns[r]
		wc.c.SetWriteDeadline(cfgDone)
		if err := wc.writeControl(frameConfig, encodeConfig(r, meta)); err != nil {
			return fmt.Errorf("mpi: configuring worker rank %d: %w", r, err)
		}
		wc.c.SetWriteDeadline(time.Time{})
	}
	t.maxElems = meta.N
	t.started = true
	for r := 1; r < t.p; r++ {
		go t.readLoop(r)
	}
	return nil
}

// acceptWorkers accepts and hello-validates the p-1 worker connections.
func (t *HubTransport) acceptWorkers() error {
	if t.accepted {
		return nil
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := t.ln.(deadliner); ok {
		d.SetDeadline(time.Now().Add(handshakeTimeout))
		defer d.SetDeadline(time.Time{})
	}
	for r := 1; r < t.p; r++ {
		c, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("mpi: accepting worker %d/%d: %w", r, t.p-1, err)
		}
		wc := newWireConn(c)
		c.SetReadDeadline(time.Now().Add(handshakeTimeout))
		h, body, err := readFrame(wc.br, nil, t.p, 0)
		if err != nil || h.typ != frameHello || !bytes.Equal(body, []byte(wireMagic)) {
			c.Close()
			return fmt.Errorf("mpi: worker %d handshake failed (type %d, %q): %v", r, h.typ, body, err)
		}
		c.SetReadDeadline(time.Time{})
		t.conns[r] = wc
	}
	t.accepted = true
	return nil
}

// readLoop drains one worker connection: local deliveries carry the frame's
// serialized element bytes into the inbox in a pooled buffer (decoded into
// the posted receive buffer by RecvRequest — decode-in-place), frames for
// other workers relay verbatim, aborts poison the world.
func (t *HubTransport) readLoop(src int) {
	r := t.conns[src].br
	var body []byte
	hdr := make([]byte, frameHeaderLen)
	for {
		h, err := readHeader(r, hdr, t.p, t.maxElems)
		if err != nil {
			t.connLost(src, err)
			return
		}
		if h.typ == frameData && h.dst == 0 {
			if h.src != src {
				t.connLost(src, fmt.Errorf("mpi: worker %d forged src %d", src, h.src))
				return
			}
			m, err := readDataBody(r, h)
			if err != nil {
				t.connLost(src, err)
				return
			}
			if !deliver(t.inbox[h.src], m, t.w.done) {
				putWireBuf(m.rb)
				return
			}
			continue
		}
		b, err := readBody(r, body, h)
		body = b
		if err != nil {
			t.connLost(src, err)
			return
		}
		switch h.typ {
		case frameData:
			if h.src != src {
				t.connLost(src, fmt.Errorf("mpi: worker %d forged src %d", src, h.src))
				return
			}
			if t.conns[h.dst] != nil {
				var hdr [frameHeaderLen]byte
				putHeader(hdr[:], h)
				if err := t.conns[h.dst].writeRaw(hdr[:], body); err != nil {
					t.connLost(h.dst, err)
					return
				}
			}
		case frameAbort:
			t.remote.Store(true)
			cause := &RemoteAbortError{Msg: string(body)}
			// Relay the pill to the other workers before poisoning locally
			// (Abort's propagation is suppressed for wire-originated pills).
			for r2 := 1; r2 < t.p; r2++ {
				if r2 != src && t.conns[r2] != nil {
					t.conns[r2].writeControl(frameAbort, body)
				}
			}
			t.w.Abort(cause)
			return
		default:
			// Goodbye/hello/config frames are meaningless from a worker.
		}
	}
}

// connLost poisons the world when a connection dies mid-run; a loss after
// abort or a deliberate Close is the expected teardown and stays quiet.
func (t *HubTransport) connLost(rank int, err error) {
	if t.closing.Load() || t.w.Aborted() {
		return
	}
	t.w.Abort(fmt.Errorf("mpi: connection to rank %d lost: %w", rank, err))
}

// deliver pushes m into an inbox channel, giving up when the world aborts.
// On false the payload ownership stays with the caller (Isend recycles what
// a transport reports undelivered; readLoops recycle what they decoded).
func deliver(ch chan Message, m Message, abort <-chan struct{}) bool {
	select {
	case ch <- m:
		return true
	case <-abort:
		return false
	}
}

// Send implements Transport: rank-0 loopback lands in the inbox; anything
// else is serialized onto the worker's socket. The pooled payload is
// recycled only on success (the bytes are the copy then) — a false return
// leaves ownership with the caller, per the Transport contract.
func (t *HubTransport) Send(dst, src int, m Message, abort <-chan struct{}) bool {
	if dst == 0 {
		return deliver(t.inbox[src], m, abort)
	}
	select {
	case <-abort:
		return false
	default:
	}
	if err := t.conns[dst].writeData(dst, src, m, t.getWireFault()); err != nil {
		t.connLost(dst, err)
		return false
	}
	if m.pb != nil {
		payloads.Put(m.pb)
	}
	return true
}

// Recv implements Transport for the hub's local rank (dst is always 0).
func (t *HubTransport) Recv(dst, src int, abort <-chan struct{}) (Message, bool) {
	select {
	case m := <-t.inbox[src]:
		return m, true
	case <-abort:
		return Message{}, false
	}
}

// PropagateAbort implements AbortPropagator: broadcast the pill to every
// worker, unless it arrived from the wire (the originator already did).
// The writes are deadline-bounded — a worker wedged with a full socket
// buffer must not be able to block the abort (the deadline also errors out
// any data write currently stuck on that conn, releasing its mutex); a
// worker the pill cannot reach sees the connection error instead.
func (t *HubTransport) PropagateAbort(cause error) {
	if t.remote.Load() {
		return
	}
	payload := []byte(cause.Error())
	deadline := time.Now().Add(teardownFlushTimeout)
	for r := 1; r < t.p; r++ {
		if t.conns[r] != nil {
			t.conns[r].c.SetWriteDeadline(deadline)
			t.conns[r].writeControl(frameAbort, payload)
		}
	}
}

// Close shuts the world down cleanly: a goodbye frame tells each worker's
// serve loop to exit, then the sockets and listener close, and the bound
// world (if any) is poisoned with ErrShutdown — a Close racing an in-flight
// transform unwinds the root rank out of its receives instead of leaving it
// parked forever. Idempotent.
func (t *HubTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closing.Store(true)
		t.remote.Store(true) // suppress the abort broadcast: goodbye is the signal
		deadline := time.Now().Add(teardownFlushTimeout)
		for r := 1; r < t.p; r++ {
			if t.conns[r] != nil {
				// The deadline bounds the goodbye AND forces out any write
				// wedged on this conn (releasing its mutex), so Close cannot
				// hang behind a dead worker.
				t.conns[r].c.SetWriteDeadline(deadline)
				t.conns[r].writeControl(frameGoodbye, nil)
				t.conns[r].c.Close()
			}
		}
		t.ln.Close()
		if t.w != nil {
			t.w.Abort(ErrShutdown)
		}
	})
	return nil
}

// WorkerTransport is one worker process's side of the socket wire: exactly
// one rank lives here, with a single connection to the hub that carries
// every message (the hub relays worker↔worker traffic).
type WorkerTransport struct {
	p, rank  int
	wc       *wireConn
	inbox    []chan Message // this rank's inbox, indexed by src
	maxElems int

	w         *World
	wfMu      sync.Mutex
	wireFault WireFault
	remote    atomic.Bool
	shutdown  atomic.Bool
	closeOnce sync.Once
}

// DialWorker connects to a hub at network/addr, retrying while the listener
// comes up (bounded by handshakeTimeout), and completes the handshake: it
// sends the protocol hello, then blocks until the hub assigns this process a
// rank and ships the job metadata. The returned transport hosts exactly that
// rank; build the matching plan from meta and serve it.
func DialWorker(network, addr string) (*WorkerTransport, WorldMeta, error) {
	deadline := time.Now().Add(handshakeTimeout)
	var c net.Conn
	var err error
	for {
		c, err = net.Dial(network, addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, WorldMeta{}, fmt.Errorf("mpi: dialing hub %s %s: %w", network, addr, err)
		}
		time.Sleep(dialRetryInterval)
	}
	wc := newWireConn(c)
	c.SetDeadline(deadline)
	if err := wc.writeControl(frameHello, []byte(wireMagic)); err != nil {
		c.Close()
		return nil, WorldMeta{}, fmt.Errorf("mpi: hello: %w", err)
	}
	h, body, err := readFrame(wc.br, nil, 1, 0)
	if err != nil || h.typ != frameConfig {
		c.Close()
		return nil, WorldMeta{}, fmt.Errorf("mpi: waiting for hub config (type %d): %v", h.typ, err)
	}
	rank, meta, err := decodeConfig(body)
	if err != nil {
		c.Close()
		return nil, WorldMeta{}, err
	}
	c.SetDeadline(time.Time{})
	t := &WorkerTransport{p: meta.P, rank: rank, wc: wc, maxElems: meta.N}
	t.inbox = newInboxRow(meta.P)
	return t, meta, nil
}

// Rank returns the rank the hub assigned this process.
func (t *WorkerTransport) Rank() int { return t.rank }

// WorldSize returns the number of ranks in the world.
func (t *WorkerTransport) WorldSize() int { return t.p }

// LocalRanks implements RankPlacement: one rank per worker process.
func (t *WorkerTransport) LocalRanks() []int { return []int{t.rank} }

// InjectWireFaults installs a hook over outgoing serialized payloads.
func (t *WorkerTransport) InjectWireFaults(f WireFault) {
	t.wfMu.Lock()
	t.wireFault = f
	t.wfMu.Unlock()
}

func (t *WorkerTransport) getWireFault() WireFault {
	t.wfMu.Lock()
	defer t.wfMu.Unlock()
	return t.wireFault
}

// Bind implements WorldBinder and starts the connection reader.
func (t *WorkerTransport) Bind(w *World) {
	t.w = w
	go t.readLoop()
}

// readLoop drains the hub connection into the local rank's inbox. Data
// frames carry their serialized element bytes in a pooled buffer and are
// decoded directly into the posted receive buffer (decode-in-place).
func (t *WorkerTransport) readLoop() {
	r := t.wc.br
	var body []byte
	hdr := make([]byte, frameHeaderLen)
	for {
		h, err := readHeader(r, hdr, t.p, t.maxElems)
		if err != nil {
			if !t.shutdown.Load() && !t.w.Aborted() {
				t.w.Abort(fmt.Errorf("mpi: hub connection lost: %w", err))
			}
			return
		}
		if h.typ == frameData && h.dst == t.rank {
			m, err := readDataBody(r, h)
			if err != nil {
				t.w.Abort(err)
				return
			}
			if !deliver(t.inbox[h.src], m, t.w.done) {
				putWireBuf(m.rb)
				return
			}
			continue
		}
		b, err := readBody(r, body, h)
		body = b
		if err != nil {
			if !t.shutdown.Load() && !t.w.Aborted() {
				t.w.Abort(fmt.Errorf("mpi: hub connection lost: %w", err))
			}
			return
		}
		switch h.typ {
		case frameData:
			// Misrouted (dst is another rank); drop.
		case frameAbort:
			t.remote.Store(true)
			t.w.Abort(&RemoteAbortError{Msg: string(body)})
			return
		case frameGoodbye:
			t.remote.Store(true)
			t.shutdown.Store(true)
			t.w.Abort(ErrShutdown)
			return
		}
	}
}

// Send implements Transport: self-sends land in the inbox, everything else
// goes to the hub, which routes on the frame's dst field.
func (t *WorkerTransport) Send(dst, src int, m Message, abort <-chan struct{}) bool {
	if dst == t.rank {
		return deliver(t.inbox[src], m, abort)
	}
	select {
	case <-abort:
		return false
	default:
	}
	if err := t.wc.writeData(dst, src, m, t.getWireFault()); err != nil {
		if !t.shutdown.Load() && !t.w.Aborted() {
			t.w.Abort(fmt.Errorf("mpi: hub connection lost: %w", err))
		}
		return false
	}
	if m.pb != nil {
		payloads.Put(m.pb)
	}
	return true
}

// Recv implements Transport for the worker's local rank (dst == Rank()).
func (t *WorkerTransport) Recv(dst, src int, abort <-chan struct{}) (Message, bool) {
	select {
	case m := <-t.inbox[src]:
		return m, true
	case <-abort:
		return Message{}, false
	}
}

// PropagateAbort implements AbortPropagator: tell the hub (which relays to
// the other workers), unless the pill came from the wire. Deadline-bounded
// like the hub's broadcast, so a wedged hub conn cannot block the abort.
func (t *WorkerTransport) PropagateAbort(cause error) {
	if t.remote.Load() {
		return
	}
	t.wc.c.SetWriteDeadline(time.Now().Add(teardownFlushTimeout))
	t.wc.writeControl(frameAbort, []byte(cause.Error()))
}

// Close tears the hub connection down. Idempotent.
func (t *WorkerTransport) Close() error {
	t.closeOnce.Do(func() { t.wc.c.Close() })
	return nil
}
