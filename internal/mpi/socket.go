// socket.go implements the multi-process wire: a hub-and-spoke socket
// transport (Unix-domain by default, TCP optionally) carrying the framed
// codec of wire.go, optionally upgraded to a full worker mesh.
//
// Topology: the root process listens (HubTransport, rank 0); each worker
// process dials in (WorkerTransport, one rank per process, assigned in
// connection order). Under ListenHub, worker↔worker messages relay through
// the hub at the byte level — the hub forwards the serialized frame without
// decoding the payload. Under ListenMeshHub, each worker opens its own peer
// listener and advertises it in the hello; once the handshake completes the
// hub hands every worker the full address list (framePeers) and workers dial
// each other directly — deterministically, lower rank dials higher, so
// exactly one connection exists per pair — and worker↔worker data frames go
// point-to-point. The hub connection remains the control channel (abort,
// goodbye) and the per-pair fallback: a peer that cannot be dialed within
// meshDialTimeout, or whose connection later dies, degrades that pair to the
// hub relay with a logged note instead of failing the world.
//
// Lifecycle and failure:
//
//   - handshake: worker sends a hello frame (protocol magic); the hub
//     responds — once the plan is built and ConfigureWorld runs — with a
//     config frame carrying the worker's rank and the WorldMeta, so every
//     process constructs the identical plan.
//   - abort: a world abort in any process broadcasts an abort frame; the hub
//     relays worker-originated aborts to the other workers. A lost
//     connection aborts the world with the connection error. Either way,
//     every rank parked in a receive unwinds with a cause instead of
//     deadlocking — the in-process poison-pill contract, extended over the
//     wire.
//   - shutdown: Hub.Close sends a goodbye frame; workers record ErrShutdown
//     so serve loops exit cleanly.
//
// Fault injection: InjectWireFaults installs a hook that may mutate the
// serialized payload bytes of outgoing data frames — soft errors on the wire
// itself, below the codec, which the §5 block checksums must detect and
// repair on receipt.
package mpi

import (
	"bufio"
	"bytes"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// WireFault may corrupt the serialized payload of an outgoing data frame:
// payload is the count×16-byte little-endian element region (checksums and
// header excluded), epoch the frame's transform round (0 outside pipelined
// batches). Install with InjectWireFaults.
type WireFault func(dst, src, tag, epoch int, payload []byte)

// handshakeTimeout bounds the accept/hello/config exchange; a worker that
// never completes its handshake fails the hub instead of hanging it forever.
const handshakeTimeout = 120 * time.Second

// dialRetryInterval paces DialWorker's connection attempts while the hub's
// listener is not up yet.
const dialRetryInterval = 25 * time.Millisecond

// meshDialTimeout bounds one worker's dial + peer-hello exchange to another
// worker's advertised listener, the same way abort/goodbye writes are
// bounded: an unreachable or black-holed peer address costs at most this long
// before the pair degrades to the hub relay. A var so tests can shorten it.
var meshDialTimeout = 5 * time.Second

// meshLogf reports mesh degradations (unreachable peer, lost peer conn) —
// the world keeps running over the relay, so these are log lines, not
// errors. Swappable for tests.
var meshLogf = log.Printf

// meshSockSeq disambiguates per-process Unix peer-listener socket paths when
// several workers share one process (in-process benches and tests).
var meshSockSeq atomic.Uint32

// wireCounters aggregates a transport's data-frame traffic. Direct frames
// went over a single-hop connection (hub↔worker leg, or a worker↔worker mesh
// conn); relayed frames took — or, on the hub, were forwarded along — the
// two-hop worker↔hub↔worker path. Snapshot with WireStats.
type wireCounters struct {
	framesDirect, bytesDirect   atomic.Int64
	framesRelayed, bytesRelayed atomic.Int64
}

func (c *wireCounters) add(direct bool, frameBytes int) {
	if direct {
		c.framesDirect.Add(1)
		c.bytesDirect.Add(int64(frameBytes))
	} else {
		c.framesRelayed.Add(1)
		c.bytesRelayed.Add(int64(frameBytes))
	}
}

func (c *wireCounters) snapshot() WireStats {
	return WireStats{
		FramesDirect:  c.framesDirect.Load(),
		BytesDirect:   c.bytesDirect.Load(),
		FramesRelayed: c.framesRelayed.Load(),
		BytesRelayed:  c.bytesRelayed.Load(),
	}
}

// dataFrameBytes is the on-wire size of a data frame carrying m.
func dataFrameBytes(m Message) int {
	n := frameHeaderLen + len(m.Data)*elemLen
	if m.HasCS {
		n += checksumLen
	}
	return n
}

// teardownFlushTimeout bounds the abort/goodbye writes (and, transitively,
// any in-flight data write wedged on a dead peer's full socket buffer —
// setting the deadline forces it to error out and release the write mutex).
// Without it, a frozen worker could block PropagateAbort or Hub.Close
// forever, violating the "abort unblocks everything" contract.
const teardownFlushTimeout = 5 * time.Second

// wireConn is one framed socket: mutex-serialized writes with a
// connection-owned encode buffer, so concurrent senders interleave whole
// frames and steady-state sends allocate nothing. Data frames go out as
// vectored writes — header+checksums in a small fixed prefix, the element
// payload in its own buffer, handed to the kernel as one writev — so the
// payload is never copied a second time to coalesce it with the header.
// The buffered reader is owned by the connection too — handshake and read
// loop must share it, or bytes buffered by one would be invisible to the
// other.
type wireConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	mu   sync.Mutex
	enc  []byte
	pre  [frameHeaderLen + checksumLen]byte
	vec  [2][]byte
	bufs net.Buffers
}

func newWireConn(c net.Conn) *wireConn {
	return &wireConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

// writeData encodes and writes m as one data frame, applying wf (if any) to
// the serialized payload region first. Header and checksums are encoded into
// the fixed prefix, elements into the reusable payload buffer, and both go
// down in a single vectored write.
func (wc *wireConn) writeData(dst, src int, m Message, wf WireFault) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	h := frameHeader{typ: frameData, tag: m.Tag, src: src, dst: dst, count: len(m.Data), epoch: m.Epoch}
	pre := wc.pre[:frameHeaderLen]
	if m.HasCS {
		h.flags = flagHasCS
		pre = wc.pre[:frameHeaderLen+checksumLen]
		putComplex(pre, frameHeaderLen, m.CS[0])
		putComplex(pre, frameHeaderLen+elemLen, m.CS[1])
	}
	putHeader(pre, h)
	// The payload slab comes from the shared size-classed pool rather than a
	// per-connection buffer: connections that once carried a large frame no
	// longer pin a max-sized slab forever (the BENCH_PR7 bytes_per_op creep),
	// and idle slabs are reclaimable by the GC through sync.Pool.
	rb := getWireBuf(len(m.Data) * elemLen)
	payload := rb.data
	for i, z := range m.Data {
		putComplex(payload, i*elemLen, z)
	}
	if wf != nil && len(payload) > 0 {
		wf(dst, src, m.Tag, int(m.Epoch), payload)
	}
	err := wc.writeVectored(pre, payload)
	putWireBuf(rb)
	return err
}

// writeVectored sends prefix+payload as one writev syscall, bypassing the
// buffered writer — safe because every write path flushes before releasing
// the connection mutex, so bw is always empty here. WriteTo consumes the
// net.Buffers slice by advancing its pointer, so the slice header is rebuilt
// from the connection-owned backing array each call — the steady-state send
// path stays allocation-free.
func (wc *wireConn) writeVectored(pre, payload []byte) error {
	wc.vec[0], wc.vec[1] = pre, payload
	wc.bufs = net.Buffers(wc.vec[:])
	_, err := wc.bufs.WriteTo(wc.c)
	wc.vec[0], wc.vec[1] = nil, nil
	return err
}

// writeControl writes one control frame.
func (wc *wireConn) writeControl(typ byte, payload []byte) error {
	return wc.writeControlFrom(typ, 0, payload)
}

// writeControlFrom writes one control frame with an explicit src rank —
// the peer-hello exchange identifies the sending worker through it.
func (wc *wireConn) writeControlFrom(typ byte, src int, payload []byte) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	total := frameHeaderLen + len(payload)
	if cap(wc.enc) < total {
		wc.enc = make([]byte, total)
	}
	wc.enc = wc.enc[:total]
	putHeader(wc.enc, frameHeader{typ: typ, src: src, count: len(payload)})
	copy(wc.enc[frameHeaderLen:], payload)
	if _, err := wc.bw.Write(wc.enc); err != nil {
		return err
	}
	return wc.bw.Flush()
}

// writeRaw relays an already-serialized frame (header + body) verbatim, as
// one vectored write (the relay hot path: worker↔worker frames through the
// hub are forwarded without a coalescing copy).
func (wc *wireConn) writeRaw(hdr, body []byte) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.writeVectored(hdr, body)
}

// RemoteAbortError is an abort cause relayed over the wire from another
// process; Msg is the originating process's rendered error.
type RemoteAbortError struct{ Msg string }

func (e *RemoteAbortError) Error() string { return "mpi: remote abort: " + e.Msg }

// HubTransport is the root process's side of the socket wire: rank 0 lives
// here, ranks 1..p-1 are worker processes dialed in through the listener.
type HubTransport struct {
	p        int
	ln       net.Listener
	conns    []*wireConn    // by worker rank; conns[0] is nil (the hub itself)
	inbox    []chan Message // local rank 0's inbox, indexed by src
	maxElems int

	// mesh marks a hub opened with ListenMeshHub: the handshake collects each
	// worker's advertised peer-listener address and broadcasts the list, so
	// workers dial each other directly. peerAddrOverride is a test hook that
	// rewrites an advertised address before broadcast (black-hole tests).
	mesh             bool
	peerAddrs        []string // by worker rank; "" = worker did not advertise
	peerAddrOverride func(rank int, addr string) string

	stats wireCounters

	w         *World
	accepted  bool
	started   bool
	wfMu      sync.Mutex
	wireFault WireFault
	remote    atomic.Bool // the poison pill arrived over the wire
	closing   atomic.Bool // deliberate shutdown: connection losses are expected
	closeOnce sync.Once
}

// ListenHub opens the root side of a p-rank socket world on network
// ("unix" or "tcp") and addr. It returns immediately; the p-1 worker
// connections are accepted when the plan built over this transport runs its
// handshake (ConfigureWorld). Use Addr to recover the bound address (useful
// with "tcp" and a ":0" listen address).
func ListenHub(network, addr string, p int) (*HubTransport, error) {
	if p < 2 {
		return nil, fmt.Errorf("mpi: a socket world needs at least 2 ranks, got %d", p)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: listen %s %s: %w", network, addr, err)
	}
	t := &HubTransport{p: p, ln: ln, conns: make([]*wireConn, p), peerAddrs: make([]string, p)}
	t.inbox = newInboxRow(p)
	return t, nil
}

// ListenMeshHub is ListenHub with the worker mesh enabled: the handshake
// hands every worker its peers' advertised listen addresses, workers dial
// each other directly (lower rank dials higher — exactly one connection per
// pair), and worker↔worker data frames skip the hub relay. Workers that
// advertise no listener, or whose peers prove unreachable within the dial
// deadline, fall back to the relay per pair; the hub connection stays the
// abort/goodbye control channel regardless.
func ListenMeshHub(network, addr string, p int) (*HubTransport, error) {
	t, err := ListenHub(network, addr, p)
	if err != nil {
		return nil, err
	}
	t.mesh = true
	return t, nil
}

// newInboxRow builds one local rank's inbox: a channel per source rank.
// Socket transports host exactly one rank per process, so a single row —
// not a p×p matrix — is all the process can ever receive into.
func newInboxRow(p int) []chan Message {
	inbox := make([]chan Message, p)
	for src := 0; src < p; src++ {
		inbox[src] = make(chan Message, 64)
	}
	return inbox
}

// Addr returns the listener's bound address.
func (t *HubTransport) Addr() net.Addr { return t.ln.Addr() }

// WorldSize returns the number of ranks the hub was opened for.
func (t *HubTransport) WorldSize() int { return t.p }

// LocalRanks implements RankPlacement: the hub hosts rank 0.
func (t *HubTransport) LocalRanks() []int { return []int{0} }

// Bind implements WorldBinder.
func (t *HubTransport) Bind(w *World) { t.w = w }

// InjectWireFaults installs a hook over outgoing serialized payloads — the
// wire-level fault site. A nil hook removes it.
func (t *HubTransport) InjectWireFaults(f WireFault) {
	t.wfMu.Lock()
	t.wireFault = f
	t.wfMu.Unlock()
}

func (t *HubTransport) getWireFault() WireFault {
	t.wfMu.Lock()
	defer t.wfMu.Unlock()
	return t.wireFault
}

// ConfigureWorld completes the handshake: it accepts the p-1 worker
// connections (bounded by handshakeTimeout), assigns ranks in connection
// order, ships each worker its rank and the job metadata, and starts the
// connection readers. Called once, at plan-build time.
func (t *HubTransport) ConfigureWorld(meta WorldMeta) error {
	if t.w == nil {
		return fmt.Errorf("mpi: hub transport not bound to a world")
	}
	if meta.P != t.p {
		return fmt.Errorf("mpi: plan has %d ranks but the hub was opened for %d", meta.P, t.p)
	}
	if t.started {
		return fmt.Errorf("mpi: hub transport already configured (one world per transport)")
	}
	if err := t.acceptWorkers(); err != nil {
		return err
	}
	cfgDone := time.Now().Add(handshakeTimeout)
	for r := 1; r < t.p; r++ {
		wc := t.conns[r]
		wc.c.SetWriteDeadline(cfgDone)
		if err := wc.writeControl(frameConfig, encodeConfig(r, meta)); err != nil {
			return fmt.Errorf("mpi: configuring worker rank %d: %w", r, err)
		}
		wc.c.SetWriteDeadline(time.Time{})
	}
	if t.mesh {
		peers := t.encodePeerList()
		for r := 1; r < t.p; r++ {
			wc := t.conns[r]
			wc.c.SetWriteDeadline(cfgDone)
			if err := wc.writeControl(framePeers, peers); err != nil {
				return fmt.Errorf("mpi: sending peer list to rank %d: %w", r, err)
			}
			wc.c.SetWriteDeadline(time.Time{})
		}
	}
	t.maxElems = meta.N
	t.started = true
	for r := 1; r < t.p; r++ {
		go t.readLoop(r)
	}
	return nil
}

// encodePeerList renders the advertised worker listener addresses as the
// framePeers payload: one "rank addr\n" line per advertising worker. Workers
// that sent a bare hello are simply absent — their pairs stay on the relay.
func (t *HubTransport) encodePeerList() []byte {
	var b strings.Builder
	for r := 1; r < t.p; r++ {
		addr := t.peerAddrs[r]
		if t.peerAddrOverride != nil {
			addr = t.peerAddrOverride(r, addr)
		}
		if addr == "" {
			continue
		}
		b.WriteString(strconv.Itoa(r))
		b.WriteByte(' ')
		b.WriteString(addr)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// acceptWorkers accepts and hello-validates the p-1 worker connections.
func (t *HubTransport) acceptWorkers() error {
	if t.accepted {
		return nil
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := t.ln.(deadliner); ok {
		d.SetDeadline(time.Now().Add(handshakeTimeout))
		defer d.SetDeadline(time.Time{})
	}
	for r := 1; r < t.p; r++ {
		c, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("mpi: accepting worker %d/%d: %w", r, t.p-1, err)
		}
		wc := newWireConn(c)
		c.SetReadDeadline(time.Now().Add(handshakeTimeout))
		h, body, err := readFrame(wc.br, nil, t.p, 0)
		// The hello is the magic alone (relay-only worker) or the magic, a
		// NUL, and the worker's advertised peer-listener address.
		if err != nil || h.typ != frameHello || !bytes.HasPrefix(body, []byte(wireMagic)) {
			c.Close()
			return fmt.Errorf("mpi: worker %d handshake failed (type %d, %q): %v", r, h.typ, body, err)
		}
		if rest := body[len(wireMagic):]; len(rest) > 1 && rest[0] == 0 {
			t.peerAddrs[r] = string(rest[1:])
		} else if len(rest) != 0 {
			c.Close()
			return fmt.Errorf("mpi: worker %d handshake failed: malformed hello %q", r, body)
		}
		c.SetReadDeadline(time.Time{})
		t.conns[r] = wc
	}
	t.accepted = true
	return nil
}

// readLoop drains one worker connection: local deliveries carry the frame's
// serialized element bytes into the inbox in a pooled buffer (decoded into
// the posted receive buffer by RecvRequest — decode-in-place), frames for
// other workers relay verbatim, aborts poison the world.
func (t *HubTransport) readLoop(src int) {
	r := t.conns[src].br
	var body []byte
	hdr := make([]byte, frameHeaderLen)
	for {
		h, err := readHeader(r, hdr, t.p, t.maxElems)
		if err != nil {
			t.connLost(src, err)
			return
		}
		if h.typ == frameData && h.dst == 0 {
			if h.src != src {
				t.connLost(src, fmt.Errorf("mpi: worker %d forged src %d", src, h.src))
				return
			}
			m, err := readDataBody(r, h)
			if err != nil {
				t.connLost(src, err)
				return
			}
			if !deliver(t.inbox[h.src], m, t.w.done) {
				putWireBuf(m.rb)
				return
			}
			continue
		}
		b, err := readBody(r, body, h)
		body = b
		if err != nil {
			t.connLost(src, err)
			return
		}
		switch h.typ {
		case frameData:
			if h.src != src {
				t.connLost(src, fmt.Errorf("mpi: worker %d forged src %d", src, h.src))
				return
			}
			if t.conns[h.dst] != nil {
				var hdr [frameHeaderLen]byte
				putHeader(hdr[:], h)
				if err := t.conns[h.dst].writeRaw(hdr[:], body); err != nil {
					t.connLost(h.dst, err)
					return
				}
				t.stats.add(false, frameHeaderLen+len(body))
			}
		case frameAbort:
			t.remote.Store(true)
			cause := &RemoteAbortError{Msg: string(body)}
			// Relay the pill to the other workers before poisoning locally
			// (Abort's propagation is suppressed for wire-originated pills).
			for r2 := 1; r2 < t.p; r2++ {
				if r2 != src && t.conns[r2] != nil {
					t.conns[r2].writeControl(frameAbort, body)
				}
			}
			t.w.Abort(cause)
			return
		default:
			// Goodbye/hello/config frames are meaningless from a worker.
		}
	}
}

// connLost poisons the world when a connection dies mid-run; a loss after
// abort or a deliberate Close is the expected teardown and stays quiet.
func (t *HubTransport) connLost(rank int, err error) {
	if t.closing.Load() || t.w.Aborted() {
		return
	}
	t.w.Abort(fmt.Errorf("mpi: connection to rank %d lost: %w", rank, err))
}

// deliver pushes m into an inbox channel, giving up when the world aborts.
// On false the payload ownership stays with the caller (Isend recycles what
// a transport reports undelivered; readLoops recycle what they decoded).
func deliver(ch chan Message, m Message, abort <-chan struct{}) bool {
	select {
	case ch <- m:
		return true
	case <-abort:
		return false
	}
}

// Send implements Transport: rank-0 loopback lands in the inbox; anything
// else is serialized onto the worker's socket. The pooled payload is
// recycled only on success (the bytes are the copy then) — a false return
// leaves ownership with the caller, per the Transport contract.
func (t *HubTransport) Send(dst, src int, m Message, abort <-chan struct{}) bool {
	if dst == 0 {
		return deliver(t.inbox[src], m, abort)
	}
	select {
	case <-abort:
		return false
	default:
	}
	if err := t.conns[dst].writeData(dst, src, m, t.getWireFault()); err != nil {
		t.connLost(dst, err)
		return false
	}
	t.stats.add(true, dataFrameBytes(m))
	if m.pb != nil {
		payloads.Put(m.pb)
	}
	return true
}

// Recv implements Transport for the hub's local rank (dst is always 0).
func (t *HubTransport) Recv(dst, src int, abort <-chan struct{}) (Message, bool) {
	select {
	case m := <-t.inbox[src]:
		return m, true
	case <-abort:
		return Message{}, false
	}
}

// SerializesInline implements InlineSerializer: a send's payload is fully
// encoded onto the socket before Send returns, so worlds over this wire skip
// the pooled defensive copy.
func (t *HubTransport) SerializesInline() bool { return true }

// PeerMesh reports whether this hub was opened with ListenMeshHub.
func (t *HubTransport) PeerMesh() bool { return t.mesh }

// WireStats snapshots the hub's traffic counters: direct frames are rank 0's
// own sends to workers, relayed frames the worker↔worker traffic it
// forwarded (zero in steady state once a mesh is fully established).
func (t *HubTransport) WireStats() WireStats {
	s := t.stats.snapshot()
	if t.w != nil {
		s.MaxEpochsInFlight = t.w.EpochHighWater()
	}
	return s
}

// PropagateAbort implements AbortPropagator: broadcast the pill to every
// worker, unless it arrived from the wire (the originator already did).
// The writes are deadline-bounded — a worker wedged with a full socket
// buffer must not be able to block the abort (the deadline also errors out
// any data write currently stuck on that conn, releasing its mutex); a
// worker the pill cannot reach sees the connection error instead.
func (t *HubTransport) PropagateAbort(cause error) {
	if t.remote.Load() {
		return
	}
	payload := []byte(cause.Error())
	deadline := time.Now().Add(teardownFlushTimeout)
	for r := 1; r < t.p; r++ {
		if t.conns[r] != nil {
			t.conns[r].c.SetWriteDeadline(deadline)
			t.conns[r].writeControl(frameAbort, payload)
		}
	}
}

// Close shuts the world down cleanly: a goodbye frame tells each worker's
// serve loop to exit, then the sockets and listener close, and the bound
// world (if any) is poisoned with ErrShutdown — a Close racing an in-flight
// transform unwinds the root rank out of its receives instead of leaving it
// parked forever. Idempotent.
func (t *HubTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closing.Store(true)
		t.remote.Store(true) // suppress the abort broadcast: goodbye is the signal
		deadline := time.Now().Add(teardownFlushTimeout)
		for r := 1; r < t.p; r++ {
			if t.conns[r] != nil {
				// The deadline bounds the goodbye AND forces out any write
				// wedged on this conn (releasing its mutex), so Close cannot
				// hang behind a dead worker.
				t.conns[r].c.SetWriteDeadline(deadline)
				t.conns[r].writeControl(frameGoodbye, nil)
				t.conns[r].c.Close()
			}
		}
		t.ln.Close()
		if t.w != nil {
			t.w.Abort(ErrShutdown)
		}
	})
	return nil
}

// WorkerTransport is one worker process's side of the socket wire: exactly
// one rank lives here, with a connection to the hub that carries control
// traffic and any message without a better route. Under a mesh hub the
// worker additionally owns a peer listener and direct connections to its
// peers; worker↔worker data frames prefer those and fall back to the hub
// relay per pair.
type WorkerTransport struct {
	p, rank  int
	wc       *wireConn
	inbox    []chan Message // this rank's inbox, indexed by src
	maxElems int
	network  string

	// meshLn is this worker's peer listener (nil when mesh participation is
	// disabled); peers[s] holds the direct connection to worker s, nil while
	// unestablished or after a fallback to the relay.
	meshLn net.Listener
	peers  []atomic.Pointer[wireConn]

	stats wireCounters

	w         *World
	wfMu      sync.Mutex
	wireFault WireFault
	remote    atomic.Bool
	shutdown  atomic.Bool
	closing   atomic.Bool
	closeOnce sync.Once
}

// DialWorker connects to a hub at network/addr, retrying while the listener
// comes up (bounded by handshakeTimeout), and completes the handshake: it
// sends the protocol hello — advertising a freshly opened peer listener, so
// a mesh hub can introduce this worker to its peers — then blocks until the
// hub assigns this process a rank and ships the job metadata. The returned
// transport hosts exactly that rank; build the matching plan from meta and
// serve it.
func DialWorker(network, addr string) (*WorkerTransport, WorldMeta, error) {
	return dialWorker(network, addr, true)
}

// DialWorkerNoMesh is DialWorker without mesh participation: the worker
// advertises no peer listener, so all of its worker↔worker traffic relays
// through the hub even under a mesh hub. Exists for heterogeneous fleets
// (a worker behind a one-way reachable network) and for exercising the
// relay fallback deliberately.
func DialWorkerNoMesh(network, addr string) (*WorkerTransport, WorldMeta, error) {
	return dialWorker(network, addr, false)
}

func dialWorker(network, addr string, mesh bool) (*WorkerTransport, WorldMeta, error) {
	deadline := time.Now().Add(handshakeTimeout)
	var c net.Conn
	var err error
	for {
		c, err = net.Dial(network, addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, WorldMeta{}, fmt.Errorf("mpi: dialing hub %s %s: %w", network, addr, err)
		}
		time.Sleep(dialRetryInterval)
	}
	wc := newWireConn(c)
	var meshLn net.Listener
	hello := []byte(wireMagic)
	if mesh {
		// Best-effort: a worker that cannot open a listener still joins the
		// world, it just stays on the relay for every pair.
		if ln, advert, err := listenPeer(network, c); err == nil {
			meshLn = ln
			hello = append(append(hello, 0), advert...)
		} else {
			meshLogf("mpi: peer listener unavailable (%v); worker joins relay-only", err)
		}
	}
	c.SetDeadline(deadline)
	if err := wc.writeControl(frameHello, hello); err != nil {
		c.Close()
		closeIfOpen(meshLn)
		return nil, WorldMeta{}, fmt.Errorf("mpi: hello: %w", err)
	}
	h, body, err := readFrame(wc.br, nil, 1, 0)
	if err != nil || h.typ != frameConfig {
		c.Close()
		closeIfOpen(meshLn)
		return nil, WorldMeta{}, fmt.Errorf("mpi: waiting for hub config (type %d): %v", h.typ, err)
	}
	rank, meta, err := decodeConfig(body)
	if err != nil {
		c.Close()
		closeIfOpen(meshLn)
		return nil, WorldMeta{}, err
	}
	c.SetDeadline(time.Time{})
	t := &WorkerTransport{p: meta.P, rank: rank, wc: wc, maxElems: meta.N, network: network, meshLn: meshLn}
	t.inbox = newInboxRow(meta.P)
	t.peers = make([]atomic.Pointer[wireConn], meta.P)
	return t, meta, nil
}

func closeIfOpen(ln net.Listener) {
	if ln != nil {
		ln.Close()
	}
}

// listenPeer opens this worker's peer listener on the same network family it
// reached the hub over, returning the address to advertise. Unix listeners
// get a per-process temp socket path; TCP listeners bind an ephemeral port
// and advertise it at the host address the worker used to reach the hub
// (the address it is provably reachable at on that network).
func listenPeer(network string, hub net.Conn) (net.Listener, string, error) {
	if network == "unix" {
		path := filepath.Join(os.TempDir(),
			fmt.Sprintf("ftfft-mesh-%d-%d.sock", os.Getpid(), meshSockSeq.Add(1)))
		ln, err := net.Listen(network, path)
		if err != nil {
			return nil, "", err
		}
		return ln, path, nil
	}
	ln, err := net.Listen(network, ":0")
	if err != nil {
		return nil, "", err
	}
	host, _, err := net.SplitHostPort(hub.LocalAddr().String())
	if err != nil || host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	_, port, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, "", err
	}
	return ln, net.JoinHostPort(host, port), nil
}

// Rank returns the rank the hub assigned this process.
func (t *WorkerTransport) Rank() int { return t.rank }

// WorldSize returns the number of ranks in the world.
func (t *WorkerTransport) WorldSize() int { return t.p }

// LocalRanks implements RankPlacement: one rank per worker process.
func (t *WorkerTransport) LocalRanks() []int { return []int{t.rank} }

// InjectWireFaults installs a hook over outgoing serialized payloads.
func (t *WorkerTransport) InjectWireFaults(f WireFault) {
	t.wfMu.Lock()
	t.wireFault = f
	t.wfMu.Unlock()
}

func (t *WorkerTransport) getWireFault() WireFault {
	t.wfMu.Lock()
	defer t.wfMu.Unlock()
	return t.wireFault
}

// Bind implements WorldBinder and starts the connection reader, plus the
// peer-accept loop when this worker advertises a mesh listener. (Peers dial
// only after receiving the hub's framePeers broadcast, which this worker's
// own read loop also consumes — both strictly after Bind, so the listener's
// kernel backlog covers the gap.)
func (t *WorkerTransport) Bind(w *World) {
	t.w = w
	if t.meshLn != nil {
		go t.acceptPeers()
	}
	go t.readLoop()
}

// acceptPeers accepts direct connections from lower-ranked peers until the
// mesh listener closes.
func (t *WorkerTransport) acceptPeers() {
	for {
		c, err := t.meshLn.Accept()
		if err != nil {
			return
		}
		go t.handlePeerConn(c)
	}
}

// handlePeerConn validates one inbound peer connection: a peer hello naming
// a lower rank, answered with our own hello as the ack. Both legs are
// deadline-bounded; a connection that stalls or misidentifies itself is
// dropped (its owner falls back to the relay), never fatal.
func (t *WorkerTransport) handlePeerConn(c net.Conn) {
	pc := newWireConn(c)
	c.SetDeadline(time.Now().Add(meshDialTimeout))
	h, body, err := readFrame(pc.br, nil, t.p, 0)
	if err != nil || h.typ != framePeerHello || !bytes.Equal(body, []byte(wireMagic)) ||
		h.src < 1 || h.src >= t.p || h.src >= t.rank {
		c.Close()
		return
	}
	if err := pc.writeControlFrom(framePeerHello, t.rank, []byte(wireMagic)); err != nil {
		c.Close()
		return
	}
	c.SetDeadline(time.Time{})
	if !t.peers[h.src].CompareAndSwap(nil, pc) {
		c.Close() // duplicate dial; exactly one conn per pair
		return
	}
	go t.peerReadLoop(h.src, pc)
}

// startMesh parses the hub's framePeers payload and dials every advertised
// peer with a rank above ours (the deterministic dialer side). Dials run
// concurrently and deadline-bounded; an unreachable peer logs a fallback
// note and leaves that pair on the hub relay.
func (t *WorkerTransport) startMesh(peers string) {
	for _, line := range strings.Split(peers, "\n") {
		rankStr, addr, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		s, err := strconv.Atoi(rankStr)
		if err != nil || s <= t.rank || s >= t.p || addr == "" {
			continue
		}
		go t.dialPeer(s, addr)
	}
}

// dialPeer establishes the direct connection to higher-ranked peer s.
func (t *WorkerTransport) dialPeer(s int, addr string) {
	c, err := net.DialTimeout(t.network, addr, meshDialTimeout)
	if err != nil {
		meshLogf("mpi: rank %d: peer rank %d unreachable at %s (%v); using hub relay for this pair", t.rank, s, addr, err)
		return
	}
	pc := newWireConn(c)
	c.SetDeadline(time.Now().Add(meshDialTimeout))
	if err := pc.writeControlFrom(framePeerHello, t.rank, []byte(wireMagic)); err != nil {
		c.Close()
		meshLogf("mpi: rank %d: peer hello to rank %d failed (%v); using hub relay for this pair", t.rank, s, err)
		return
	}
	h, body, err := readFrame(pc.br, nil, t.p, 0)
	if err != nil || h.typ != framePeerHello || h.src != s || !bytes.Equal(body, []byte(wireMagic)) {
		c.Close()
		meshLogf("mpi: rank %d: peer rank %d handshake failed (type %d, %v); using hub relay for this pair", t.rank, s, h.typ, err)
		return
	}
	c.SetDeadline(time.Time{})
	if !t.peers[s].CompareAndSwap(nil, pc) {
		c.Close()
		return
	}
	go t.peerReadLoop(s, pc)
}

// peerReadLoop drains one direct peer connection. Only data frames addressed
// to this rank from that peer are legal; anything else — including a read
// error — drops the connection back to the relay, never aborting the world
// (the hub connection is the world's failure channel).
func (t *WorkerTransport) peerReadLoop(src int, pc *wireConn) {
	hdr := make([]byte, frameHeaderLen)
	for {
		h, err := readHeader(pc.br, hdr, t.p, t.maxElems)
		if err != nil {
			t.dropPeer(src, pc, err)
			return
		}
		if h.typ != frameData || h.dst != t.rank || h.src != src {
			t.dropPeer(src, pc, fmt.Errorf("mpi: unexpected peer frame type %d %d→%d", h.typ, h.src, h.dst))
			return
		}
		m, err := readDataBody(pc.br, h)
		if err != nil {
			t.dropPeer(src, pc, err)
			return
		}
		if !deliver(t.inbox[h.src], m, t.w.done) {
			putWireBuf(m.rb)
			return
		}
	}
}

// dropPeer retires a direct peer connection; subsequent traffic for the pair
// relays through the hub. Quiet during shutdown/abort teardown.
func (t *WorkerTransport) dropPeer(src int, pc *wireConn, err error) {
	if !t.peers[src].CompareAndSwap(pc, nil) {
		return
	}
	pc.c.Close()
	if t.closing.Load() || t.shutdown.Load() || (t.w != nil && t.w.Aborted()) {
		return
	}
	meshLogf("mpi: rank %d: peer conn to rank %d lost (%v); falling back to hub relay", t.rank, src, err)
}

// readLoop drains the hub connection into the local rank's inbox. Data
// frames carry their serialized element bytes in a pooled buffer and are
// decoded directly into the posted receive buffer (decode-in-place).
func (t *WorkerTransport) readLoop() {
	r := t.wc.br
	var body []byte
	hdr := make([]byte, frameHeaderLen)
	for {
		h, err := readHeader(r, hdr, t.p, t.maxElems)
		if err != nil {
			if !t.shutdown.Load() && !t.w.Aborted() {
				t.w.Abort(fmt.Errorf("mpi: hub connection lost: %w", err))
			}
			return
		}
		if h.typ == frameData && h.dst == t.rank {
			m, err := readDataBody(r, h)
			if err != nil {
				t.w.Abort(err)
				return
			}
			if !deliver(t.inbox[h.src], m, t.w.done) {
				putWireBuf(m.rb)
				return
			}
			continue
		}
		b, err := readBody(r, body, h)
		body = b
		if err != nil {
			if !t.shutdown.Load() && !t.w.Aborted() {
				t.w.Abort(fmt.Errorf("mpi: hub connection lost: %w", err))
			}
			return
		}
		switch h.typ {
		case frameData:
			// Misrouted (dst is another rank); drop.
		case framePeers:
			// A worker without a peer listener (DialWorkerNoMesh, or a failed
			// listen) is relay-only in both directions: it must not dial out
			// either, or its outbound traffic would bypass the relay contract.
			if t.meshLn != nil {
				t.startMesh(string(body))
			}
		case frameAbort:
			t.remote.Store(true)
			t.w.Abort(&RemoteAbortError{Msg: string(body)})
			return
		case frameGoodbye:
			t.remote.Store(true)
			t.shutdown.Store(true)
			t.w.Abort(ErrShutdown)
			return
		}
	}
}

// Send implements Transport: self-sends land in the inbox; a frame for a
// peer with an established direct connection goes point-to-point; everything
// else goes to the hub, which routes on the frame's dst field. A failed peer
// write retires that connection and retries over the relay — only the hub
// connection's failure aborts the world.
func (t *WorkerTransport) Send(dst, src int, m Message, abort <-chan struct{}) bool {
	if dst == t.rank {
		return deliver(t.inbox[src], m, abort)
	}
	select {
	case <-abort:
		return false
	default:
	}
	if pc := t.peers[dst].Load(); pc != nil {
		if err := pc.writeData(dst, src, m, t.getWireFault()); err == nil {
			t.stats.add(true, dataFrameBytes(m))
			if m.pb != nil {
				payloads.Put(m.pb)
			}
			return true
		} else {
			t.dropPeer(dst, pc, err)
		}
	}
	if err := t.wc.writeData(dst, src, m, t.getWireFault()); err != nil {
		if !t.shutdown.Load() && !t.w.Aborted() {
			t.w.Abort(fmt.Errorf("mpi: hub connection lost: %w", err))
		}
		return false
	}
	t.stats.add(dst == 0, dataFrameBytes(m))
	if m.pb != nil {
		payloads.Put(m.pb)
	}
	return true
}

// SerializesInline implements InlineSerializer (see HubTransport).
func (t *WorkerTransport) SerializesInline() bool { return true }

// PeerMesh reports whether this worker advertises a peer listener.
func (t *WorkerTransport) PeerMesh() bool { return t.meshLn != nil }

// InMesh reports whether the direct connection to peer rank s is currently
// established (false = that pair is on the hub relay).
func (t *WorkerTransport) InMesh(s int) bool {
	return s >= 0 && s < t.p && t.peers[s].Load() != nil
}

// WireStats snapshots this worker's traffic counters: direct frames went
// over a peer connection or straight to rank 0, relayed frames took the
// two-hop path through the hub.
func (t *WorkerTransport) WireStats() WireStats {
	s := t.stats.snapshot()
	for i := range t.peers {
		if t.peers[i].Load() != nil {
			s.PeerConns++
		}
	}
	if t.w != nil {
		s.MaxEpochsInFlight = t.w.EpochHighWater()
	}
	return s
}

// Recv implements Transport for the worker's local rank (dst == Rank()).
func (t *WorkerTransport) Recv(dst, src int, abort <-chan struct{}) (Message, bool) {
	select {
	case m := <-t.inbox[src]:
		return m, true
	case <-abort:
		return Message{}, false
	}
}

// PropagateAbort implements AbortPropagator: tell the hub (which relays to
// the other workers), unless the pill came from the wire. Deadline-bounded
// like the hub's broadcast, so a wedged hub conn cannot block the abort.
func (t *WorkerTransport) PropagateAbort(cause error) {
	if t.remote.Load() {
		return
	}
	t.wc.c.SetWriteDeadline(time.Now().Add(teardownFlushTimeout))
	t.wc.writeControl(frameAbort, []byte(cause.Error()))
}

// Close tears the hub connection, the peer listener and every direct peer
// connection down. Idempotent.
func (t *WorkerTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closing.Store(true)
		closeIfOpen(t.meshLn)
		for i := range t.peers {
			if pc := t.peers[i].Load(); pc != nil {
				pc.c.Close()
			}
		}
		t.wc.c.Close()
	})
	return nil
}
