// fused_test.go pins the fused checksum sweeps to the reference separate-
// pass implementation: generating the §5 pair inside the serialization copy
// (IsendPair, AppendServe*Pair) and inside the decode loop (WaitPair,
// DecodeServe*Pair) must produce bit-for-bit the values of
// checksum.GeneratePair run as its own pass — same element order, same
// rounding, on every wire.
package mpi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ftfft/internal/checksum"
)

// pairBitsEqual compares two checksum pairs at the bit level (the fused
// guarantee is representation equality, not numeric closeness).
func pairBitsEqual(a, b checksum.Pair) bool {
	eq := func(x, y complex128) bool {
		return math.Float64bits(real(x)) == math.Float64bits(real(y)) &&
			math.Float64bits(imag(x)) == math.Float64bits(imag(y))
	}
	return eq(a.D1, b.D1) && eq(a.D2, b.D2)
}

// refFloatPair is the reference two-pass checksum of a real payload viewed
// as adjacent sample pairs, in GeneratePair's exact accumulation order.
func refFloatPair(w []complex128, x []float64) checksum.Pair {
	var d1, d2 complex128
	for j := range w {
		t := w[j] * complex(x[2*j], x[2*j+1])
		d1 += t
		d2 += complex(float64(j), 0) * t
	}
	return checksum.Pair{D1: d1, D2: d2}
}

func randomComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// TestIsendPairBitIdenticalChan pins the fused rank-wire sweeps over the
// in-process chan transport: the sender-side pair rides as the message
// checksum, and the receiver-side pair from WaitPair's fused copy equals a
// separate GeneratePair pass over the received buffer, bit for bit.
func TestIsendPairBitIdenticalChan(t *testing.T) {
	const n = 257
	rng := rand.New(rand.NewSource(3))
	data := randomComplex(rng, n)
	w := checksum.Weights(n)
	want := checksum.GeneratePair(w, data)

	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			c.IsendPair(1, 5, data, w)
			return nil
		}
		buf := make([]complex128, n)
		cs, has, pair, err := c.IrecvPair(0, 5, buf, w).WaitPair()
		if err != nil {
			return err
		}
		if !has || cs[0] != want.D1 || cs[1] != want.D2 {
			t.Errorf("sender-side fused pair %v,%v, want %v,%v", cs[0], cs[1], want.D1, want.D2)
		}
		if ref := checksum.GeneratePair(w, buf); !pairBitsEqual(pair, ref) {
			t.Errorf("receiver-side fused pair %+v, separate pass %+v", pair, ref)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIsendPairBitIdenticalShm runs the same pinning over the shared-memory
// wire, where the receive decodes serialized ring bytes in place — the fused
// decode sweep must still match the separate pass bit for bit.
func TestIsendPairBitIdenticalShm(t *testing.T) {
	const n = 63
	rng := rand.New(rand.NewSource(4))
	data := randomComplex(rng, n)
	w := checksum.Weights(n)
	want := checksum.GeneratePair(w, data)

	hub, hubW, _, workerWs := startShmWorld(t, 2, WorldMeta{N: 64, P: 2})
	defer hub.Close()
	hubW.Endpoint(0).IsendPair(1, 5, data, w)
	buf := make([]complex128, n)
	cs, has, pair, err := workerWs[0].Endpoint(1).IrecvPair(0, 5, buf, w).WaitPair()
	if err != nil {
		t.Fatal(err)
	}
	if !has || cs[0] != want.D1 || cs[1] != want.D2 {
		t.Fatalf("sender-side fused pair over shm %v,%v, want %v,%v", cs[0], cs[1], want.D1, want.D2)
	}
	if ref := checksum.GeneratePair(w, buf); !pairBitsEqual(pair, ref) {
		t.Fatalf("receiver-side fused pair over shm %+v, separate pass %+v", pair, ref)
	}
	for i := range buf {
		if buf[i] != data[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, buf[i], data[i])
		}
	}
}

// TestServeRequestPairBitIdentical pins the fused service-wire encode: the
// frame AppendServeRequestPair emits — checksums generated inside the
// serialization sweep — is byte-identical to AppendServeRequest fed the
// separate-pass checksums, and the fused decode recovers a current pair
// bit-identical to a separate pass over the decoded payload. Complex and
// real payloads both.
func TestServeRequestPairBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))

	t.Run("complex", func(t *testing.T) {
		const n = 64
		data := randomComplex(rng, n)
		w := checksum.Weights(n)
		req := ServeRequest{ID: 3, Op: OpForward, Protection: 5, N: n, Data: data}
		fused, _ := AppendServeRequestPair(nil, &req, w)

		ref := ServeRequest{ID: 3, Op: OpForward, Protection: 5, N: n, Data: data, HasCS: true}
		pair := checksum.GeneratePair(w, data)
		ref.CS = [2]complex128{pair.D1, pair.D2}
		sep, _ := AppendServeRequest(nil, &ref)
		if !bytes.Equal(fused, sep) {
			t.Fatal("fused-encode frame differs from separate-pass frame")
		}

		h, err := parseHeader(fused, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		sf := ServeFrame{Type: h.typ, Flags: h.flags, ID: h.tag, Count: h.count}
		dec, cur, curOK, err := DecodeServeRequestPair(sf, fused[frameHeaderLen:], func(int) []complex128 { return w })
		if err != nil {
			t.Fatal(err)
		}
		defer dec.Release()
		if !curOK {
			t.Fatal("fused decode did not produce a current pair")
		}
		if refCur := checksum.GeneratePair(w, dec.Data); !pairBitsEqual(cur, refCur) {
			t.Fatalf("fused decode pair %+v, separate pass %+v", cur, refCur)
		}
	})

	t.Run("real", func(t *testing.T) {
		const n = 64
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		w := checksum.Weights(n / 2)
		req := ServeRequest{ID: 4, Op: OpRealForward, N: n, Real: x}
		fused, _ := AppendServeRequestPair(nil, &req, w)

		ref := ServeRequest{ID: 4, Op: OpRealForward, N: n, Real: x, HasCS: true}
		pair := refFloatPair(w, x)
		ref.CS = [2]complex128{pair.D1, pair.D2}
		sep, _ := AppendServeRequest(nil, &ref)
		if !bytes.Equal(fused, sep) {
			t.Fatal("fused-encode real frame differs from separate-pass frame")
		}

		h, err := parseHeader(fused, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		sf := ServeFrame{Type: h.typ, Flags: h.flags, ID: h.tag, Count: h.count}
		dec, cur, curOK, err := DecodeServeRequestPair(sf, fused[frameHeaderLen:], func(int) []complex128 { return w })
		if err != nil {
			t.Fatal(err)
		}
		defer dec.Release()
		if !curOK {
			t.Fatal("fused real decode did not produce a current pair")
		}
		if refCur := refFloatPair(w, dec.Real); !pairBitsEqual(cur, refCur) {
			t.Fatalf("fused real decode pair %+v, separate pass %+v", cur, refCur)
		}
	})
}

// TestServeResponsePairBitIdentical is the response-side twin: fused encode
// equals separate-pass encode byte for byte, fused decode-into equals a
// separate pass over the destination buffer bit for bit.
func TestServeResponsePairBitIdentical(t *testing.T) {
	const n = 48
	rng := rand.New(rand.NewSource(6))
	data := randomComplex(rng, n)
	w := checksum.Weights(n)
	resp := ServeResponse{ID: 9, Report: ServeReport{Detections: 2, MemCorrections: 1}, Data: data}
	fused, _ := AppendServeResponsePair(nil, &resp, w)

	ref := ServeResponse{ID: 9, Report: ServeReport{Detections: 2, MemCorrections: 1}, Data: data, HasCS: true}
	pair := checksum.GeneratePair(w, data)
	ref.CS = [2]complex128{pair.D1, pair.D2}
	sep, _ := AppendServeResponse(nil, &ref)
	if !bytes.Equal(fused, sep) {
		t.Fatal("fused-encode response differs from separate-pass frame")
	}

	h, err := parseHeader(fused, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	sf := ServeFrame{Type: h.typ, Flags: h.flags, ID: h.tag, Count: h.count}
	dst := make([]complex128, n)
	dec, cur, curOK, err := DecodeServeResponseIntoPair(sf, fused[frameHeaderLen:], dst, nil, func(int) []complex128 { return w })
	if err != nil {
		t.Fatal(err)
	}
	if !dec.HasCS || !curOK {
		t.Fatalf("fused response decode lost checksums (hasCS=%v curOK=%v)", dec.HasCS, curOK)
	}
	if refCur := checksum.GeneratePair(w, dst); !pairBitsEqual(cur, refCur) {
		t.Fatalf("fused response decode pair %+v, separate pass %+v", cur, refCur)
	}
}
