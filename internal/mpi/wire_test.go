package mpi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randomPayload draws elements from the full float64 bit space — including
// NaN payloads, infinities, subnormals and negative zeros — because the
// wire's bit-for-bit guarantee is over bit patterns, not values.
func randomPayload(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(
			math.Float64frombits(rng.Uint64()),
			math.Float64frombits(rng.Uint64()),
		)
	}
	return out
}

// bitsEqual compares complex values by bit pattern (NaN != NaN under ==).
func bitsEqual(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

// TestDataFrameRoundTrip is the codec property test: for random tags, rank
// pairs, lengths, checksum presence and full-bit-space payloads, encode →
// parse → decode reproduces the message bit-for-bit.
func TestDataFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const p = 16
	var enc []byte
	for iter := 0; iter < 2000; iter++ {
		m := Message{
			Tag:   rng.Intn(1 << 20),
			Epoch: rng.Uint32(),
			Data:  randomPayload(rng, rng.Intn(64)),
		}
		if rng.Intn(2) == 0 {
			m.HasCS = true
			m.CS = [2]complex128{
				complex(math.Float64frombits(rng.Uint64()), math.Float64frombits(rng.Uint64())),
				complex(math.Float64frombits(rng.Uint64()), math.Float64frombits(rng.Uint64())),
			}
		}
		src, dst := rng.Intn(p), rng.Intn(p)

		frame, payloadOff := encodeDataFrame(enc, dst, src, m)
		enc = frame
		if want := frameHeaderLen + len(m.Data)*elemLen + map[bool]int{true: checksumLen}[m.HasCS]; len(frame) != want {
			t.Fatalf("frame length %d, want %d", len(frame), want)
		}
		if payloadOff != len(frame)-len(m.Data)*elemLen {
			t.Fatalf("payload offset %d inconsistent with frame length %d", payloadOff, len(frame))
		}

		h, err := parseHeader(frame, p, 64)
		if err != nil {
			t.Fatalf("parseHeader: %v", err)
		}
		if h.typ != frameData || h.tag != m.Tag || h.src != src || h.dst != dst || h.count != len(m.Data) || h.epoch != m.Epoch {
			t.Fatalf("header mismatch: %+v vs tag=%d epoch=%d src=%d dst=%d n=%d", h, m.Tag, m.Epoch, src, dst, len(m.Data))
		}
		got, err := decodeDataBody(h, frame[frameHeaderLen:])
		if err != nil {
			t.Fatalf("decodeDataBody: %v", err)
		}
		if got.Tag != m.Tag || got.Epoch != m.Epoch || got.HasCS != m.HasCS || len(got.Data) != len(m.Data) {
			t.Fatalf("decoded message mismatch: %+v", got)
		}
		if m.HasCS && (!bitsEqual(got.CS[0], m.CS[0]) || !bitsEqual(got.CS[1], m.CS[1])) {
			t.Fatalf("checksums not bit-identical: %v vs %v", got.CS, m.CS)
		}
		for i := range m.Data {
			if !bitsEqual(got.Data[i], m.Data[i]) {
				t.Fatalf("element %d not bit-identical: %x vs %x",
					i, math.Float64bits(real(got.Data[i])), math.Float64bits(real(m.Data[i])))
			}
		}
		if got.pb != nil {
			payloads.Put(got.pb)
		}
	}
}

// TestControlFrameRoundTrip covers the config payload and control frames.
func TestControlFrameRoundTrip(t *testing.T) {
	meta := WorldMeta{N: 1 << 20, P: 8, Protected: true, Optimized: true, EtaScale: 2.5, MaxRetries: 7}
	for rank := 1; rank < meta.P; rank++ {
		frame := encodeControlFrame(nil, frameConfig, encodeConfig(rank, meta))
		h, err := parseHeader(frame, meta.P, 0)
		if err != nil {
			t.Fatal(err)
		}
		if h.typ != frameConfig || h.count != configPayloadLen {
			t.Fatalf("bad config header %+v", h)
		}
		gotRank, gotMeta, err := decodeConfig(frame[frameHeaderLen:])
		if err != nil {
			t.Fatal(err)
		}
		if gotRank != rank || gotMeta != meta {
			t.Fatalf("config round trip: rank %d meta %+v, want %d %+v", gotRank, gotMeta, rank, meta)
		}
	}
	if _, _, err := decodeConfig(encodeConfig(0, WorldMeta{N: 0, P: 4})); err == nil {
		t.Fatal("invalid config accepted")
	}
	abort := encodeControlFrame(nil, frameAbort, []byte("rank 3: retries exhausted"))
	h, err := parseHeader(abort, 4, 0)
	if err != nil || h.typ != frameAbort {
		t.Fatalf("abort header: %+v, %v", h, err)
	}
	if string(abort[frameHeaderLen:]) != "rank 3: retries exhausted" {
		t.Fatal("abort payload mangled")
	}
}

// TestParseHeaderRejectsGarbage pins the decoder's bounds: oversized
// payloads, out-of-range ranks, unknown types and flags all error out
// instead of allocating or panicking.
func TestParseHeaderRejectsGarbage(t *testing.T) {
	mk := func(mut func(b []byte)) []byte {
		frame, _ := encodeDataFrame(nil, 1, 0, Message{Tag: 7, Data: make([]complex128, 3)})
		mut(frame)
		return frame
	}
	cases := map[string][]byte{
		"short":      make([]byte, frameHeaderLen-1),
		"type":       mk(func(b []byte) { b[0] = 99 }),
		"flags":      mk(func(b []byte) { b[1] = 0x80 }),
		"reserved-a": mk(func(b []byte) { b[2] = 1 }),
		// Bytes 20–23 are the data-frame epoch since the PR 9 widening; on
		// every other frame type they are still reserved-zero.
		"epoch-on-control": func() []byte {
			f := encodeControlFrame(nil, frameAbort, []byte("x"))
			f[21] = 7
			return f
		}(),
		"src-range":    mk(func(b []byte) { b[8] = 200 }),
		"dst-range":    mk(func(b []byte) { b[12] = 200 }),
		"count-bound":  mk(func(b []byte) { b[16], b[17], b[18], b[19] = 0xff, 0xff, 0xff, 0x7f }),
		"control-huge": encodeControlFrame(nil, frameAbort, nil),
	}
	cases["control-huge"][16] = 0xff
	cases["control-huge"][18] = 0xff
	for name, frame := range cases {
		if _, err := parseHeader(frame, 4, 64); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadFrameShortBody: a frame whose stream ends mid-payload surfaces an
// error, not a hang or panic.
func TestReadFrameShortBody(t *testing.T) {
	frame, _ := encodeDataFrame(nil, 1, 0, Message{Tag: 1, Data: make([]complex128, 8)})
	_, _, err := readFrame(bytes.NewReader(frame[:len(frame)-5]), nil, 4, 64)
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
}
