// servewire.go extends the wire.go codec with the FFT-service frames: a
// client submits one transform as a request frame and receives either a
// response frame (the spectrum plus the aggregated fault-tolerance report)
// or an error frame (the repair-or-reject contract's "reject" arm). The
// service frames reuse wire.go's machinery wholesale — the 24-byte header
// with its tag field (the request id), the optional §5 block checksum pair,
// the bit-exact complex128 element encoding, and the bounds-validated
// parseHeader that never panics on hostile input.
//
// Request frame (type 6):
//
//	header      tag = request id, src = dst = 0, count = elements
//	            flags bit 0: checksums present; bit 1: real payload
//	            (count float64 samples instead of complex128 elements)
//	meta  40 B  u8 op, u8 protection, u8 ndims, u8 reserved,
//	            u32 n (logical transform size), 8 × u32 dims
//	[32 B]      2 × complex128 block checksums, when flags bit 0
//	payload     count × 16 B complex elements, or count × 8 B float64
//	            samples when flags bit 1
//
// Response frame (type 7): same shape with a 24-byte report meta block
// (five u32 fault-tolerance counters + flags) instead of the request meta.
//
// Error frame (type 8): control-sized; tag = request id, payload = the
// rendered error, flags bit 1 = uncorrectable (the ABFT reject), bit 2 =
// unavailable (server draining).
//
// Checksums for a real payload treat the (always even-length) float64
// vector as count/2 complex128 pairs, so the same single-element location
// and repair algebra covers both payload kinds; a "repair" then heals one
// adjacent sample pair.
package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"ftfft/internal/checksum"
)

// Service frame types, continuing the wire.go enum.
const (
	frameRequest  = 6 // client → server: one transform request
	frameResponse = 7 // server → client: spectrum + aggregated report
	frameError    = 8 // server → client: request rejected; payload is why
)

// Service frame flags. flagHasCS (bit 0) is shared with data frames.
const (
	// flagReal marks a request/response payload of float64 samples.
	flagReal = 2
	// flagUncorrectable marks an error frame as the ABFT reject: the
	// transform (or the request payload itself) was corrupted beyond the
	// schemes' repair capability.
	flagUncorrectable = 2
	// flagUnavailable marks an error frame sent while the server drains:
	// the request was refused before execution, not rejected by ABFT.
	flagUnavailable = 4
)

// ServeOp selects the transform a request runs.
type ServeOp byte

const (
	// OpForward is an n-point forward complex DFT.
	OpForward ServeOp = 1
	// OpInverse is an n-point inverse complex DFT (1/n normalization).
	OpInverse ServeOp = 2
	// OpRealForward is an RFFT: n real samples → n/2+1 spectrum bins.
	OpRealForward ServeOp = 3
	// OpRealInverse is an IRFFT: n/2+1 bins → n real samples.
	OpRealInverse ServeOp = 4
)

func (o ServeOp) String() string {
	switch o {
	case OpForward:
		return "forward"
	case OpInverse:
		return "inverse"
	case OpRealForward:
		return "real-forward"
	case OpRealInverse:
		return "real-inverse"
	default:
		return fmt.Sprintf("ServeOp(%d)", int(o))
	}
}

const (
	// MaxServeDims bounds the N-D geometry a request may carry; the fixed
	// meta block keeps payload sizes computable from the header alone.
	MaxServeDims = 8

	// ServeMagic is the service handshake payload (a hello frame from the
	// client; the server's welcome appends its element limit). Distinct
	// from the rank-world wireMagic so a worker dialing a server — or vice
	// versa — fails the handshake instead of misbehaving later.
	ServeMagic = "FTSRV/1"

	serveReqMetaLen  = 4 + 4 + 4*MaxServeDims // op/prot/ndims/res + n + dims
	serveRespMetaLen = 5*4 + 4                // five counters + flags word
)

// ServeReport is the wire form of a transform's fault-tolerance report: the
// aggregated core.Report counters a response carries as metadata, extended
// by the serve layer with any wire-level repairs it performed on the
// request payload.
type ServeReport struct {
	Detections         int
	CompRecomputations int
	MemCorrections     int
	TwiddleCorrections int
	FullRestarts       int
	Uncorrectable      bool
}

// ServeRequest is one decoded transform request. Exactly one of Data / Real
// is populated, matching Op. Dims is nil for 1-D requests.
type ServeRequest struct {
	ID         int // echoed as the response's ID (the frame tag)
	Op         ServeOp
	Protection byte
	N          int   // logical transform size
	Dims       []int // N-D geometry; nil means 1-D
	Data       []complex128
	Real       []float64
	CS         [2]complex128
	HasCS      bool

	pb  *payload      // pooled backing buffer behind Data
	fpb *floatPayload // pooled backing buffer behind Real
}

// Release recycles the request's pooled payload buffer. Call it once the
// payload has been consumed; Data/Real must not be used afterwards.
func (r *ServeRequest) Release() {
	if r.pb != nil {
		payloads.Put(r.pb)
		r.pb, r.Data = nil, nil
	}
	if r.fpb != nil {
		floatPayloads.Put(r.fpb)
		r.fpb, r.Real = nil, nil
	}
}

// ServeResponse is one transform response: the output payload plus the
// aggregated report. Exactly one of Data / Real is populated.
type ServeResponse struct {
	ID     int
	Report ServeReport
	Data   []complex128
	Real   []float64
	CS     [2]complex128
	HasCS  bool
}

// ServeFrame is one validated service-frame header, as returned by
// ReadServeFrame. Type is one of ServeFrameHello, ServeFrameRequest,
// ServeFrameResponse, ServeFrameError, ServeFrameGoodbye.
type ServeFrame struct {
	Type  byte
	Flags byte
	ID    int // the tag field: request id on request/response/error frames
	Count int
}

// Exported service frame types for ReadServeFrame dispatch.
const (
	ServeFrameHello    = frameHello
	ServeFrameRequest  = frameRequest
	ServeFrameResponse = frameResponse
	ServeFrameError    = frameError
	ServeFrameGoodbye  = frameGoodbye
)

// ReadServeFrame reads one complete service frame from r, reusing body
// (grown as needed). maxElems bounds request/response payloads in
// complex128-equivalent elements (a real payload of 2·maxElems float64
// samples occupies the same bytes). Like readFrame, it never panics on
// arbitrary input and never allocates beyond the validated payload size.
func ReadServeFrame(r io.Reader, body []byte, maxElems int) (ServeFrame, []byte, error) {
	h, body, err := readFrame(r, body, 1, maxElems)
	if err != nil {
		return ServeFrame{}, body, err
	}
	return ServeFrame{Type: h.typ, Flags: h.flags, ID: h.tag, Count: h.count}, body, nil
}

// serveElems returns the complex128-equivalent element count of a
// request/response frame (real payloads pack two samples per element).
func serveElems(flags byte, count int) int {
	if flags&flagReal != 0 {
		return (count + 1) / 2
	}
	return count
}

// AppendServeHello appends the client's handshake hello frame to buf.
func AppendServeHello(buf []byte) []byte {
	return append(buf, encodeControlFrame(nil, frameHello, []byte(ServeMagic))...)
}

// AppendServeWelcome appends the server's handshake reply: the magic plus
// the server's per-request element limit, which the client enforces on its
// own submissions.
func AppendServeWelcome(buf []byte, maxElems int) []byte {
	payload := make([]byte, len(ServeMagic)+4)
	copy(payload, ServeMagic)
	binary.LittleEndian.PutUint32(payload[len(ServeMagic):], uint32(maxElems))
	return append(buf, encodeControlFrame(nil, frameHello, payload)...)
}

// DecodeServeWelcome parses a server welcome payload.
func DecodeServeWelcome(body []byte) (maxElems int, err error) {
	if len(body) != len(ServeMagic)+4 || string(body[:len(ServeMagic)]) != ServeMagic {
		return 0, fmt.Errorf("mpi: not an FFT service (welcome %q)", body)
	}
	maxElems = int(binary.LittleEndian.Uint32(body[len(ServeMagic):]))
	if maxElems < 1 {
		return 0, fmt.Errorf("mpi: service welcome advertises element limit %d", maxElems)
	}
	return maxElems, nil
}

// IsServeHello reports whether a hello frame's payload carries the service
// magic (a client handshake, as opposed to a rank-world worker's hello).
func IsServeHello(body []byte) bool { return string(body) == ServeMagic }

// AppendServeGoodbye appends the drain/shutdown notice frame.
func AppendServeGoodbye(buf []byte) []byte {
	return append(buf, encodeControlFrame(nil, frameGoodbye, nil)...)
}

// putServeHeader encodes the shared header+meta prefix and returns buf
// grown to the full frame length with the header written; payload encoding
// continues at the returned offset.
func serveFrameSize(typ, flags byte, count int) int {
	h := frameHeader{typ: typ, flags: flags, count: count}
	return frameHeaderLen + h.payloadBytes()
}

// AppendServeRequest appends req as one request frame to buf and returns
// the extended buffer plus the offset of the serialized element payload
// (the wire-fault injection region, mirroring encodeDataFrame).
func AppendServeRequest(buf []byte, req *ServeRequest) (frame []byte, payloadOff int) {
	flags := byte(0)
	if req.HasCS {
		flags |= flagHasCS
	}
	count := len(req.Data)
	if req.Real != nil {
		flags |= flagReal
		count = len(req.Real)
	}
	start := len(buf)
	total := serveFrameSize(frameRequest, flags, count)
	buf = appendZeros(buf, total)
	b := buf[start:]
	putHeader(b, frameHeader{typ: frameRequest, flags: flags, tag: req.ID, count: count})
	off := frameHeaderLen
	b[off] = byte(req.Op)
	b[off+1] = req.Protection
	b[off+2] = byte(len(req.Dims))
	binary.LittleEndian.PutUint32(b[off+4:], uint32(req.N))
	for i, d := range req.Dims {
		binary.LittleEndian.PutUint32(b[off+8+4*i:], uint32(d))
	}
	off += serveReqMetaLen
	if req.HasCS {
		putComplex(b, off, req.CS[0])
		putComplex(b, off+elemLen, req.CS[1])
		off += checksumLen
	}
	payloadOff = start + off
	if flags&flagReal != 0 {
		for _, v := range req.Real {
			putFloat(b, off, v)
			off += 8
		}
	} else {
		for _, z := range req.Data {
			putComplex(b, off, z)
			off += elemLen
		}
	}
	return buf, payloadOff
}

// AppendServeRequestPair is AppendServeRequest with the §5 block-checksum
// pair generated during payload serialization — one fused pass produces both
// the wire bytes and the checksums, in checksum.GeneratePair's (complex) or
// the sample-pair (real) summation order exactly, so the attached pair is
// bit-identical to the separate-pass value. w must hold len(Data) weights
// for a complex payload or len(Real)/2 for a real one. req.CS and req.HasCS
// are set to the generated pair.
func AppendServeRequestPair(buf []byte, req *ServeRequest, w []complex128) (frame []byte, payloadOff int) {
	req.HasCS = true
	flags := byte(flagHasCS)
	count := len(req.Data)
	if req.Real != nil {
		flags |= flagReal
		count = len(req.Real)
	}
	start := len(buf)
	total := serveFrameSize(frameRequest, flags, count)
	buf = appendZeros(buf, total)
	b := buf[start:]
	putHeader(b, frameHeader{typ: frameRequest, flags: flags, tag: req.ID, count: count})
	off := frameHeaderLen
	b[off] = byte(req.Op)
	b[off+1] = req.Protection
	b[off+2] = byte(len(req.Dims))
	binary.LittleEndian.PutUint32(b[off+4:], uint32(req.N))
	for i, d := range req.Dims {
		binary.LittleEndian.PutUint32(b[off+8+4*i:], uint32(d))
	}
	off += serveReqMetaLen
	csOff := off
	off += checksumLen
	payloadOff = start + off
	var pr checksum.Pair
	if flags&flagReal != 0 {
		pr = putFloatsPair(b, off, req.Real, w)
	} else {
		pr = putComplexPair(b, off, req.Data, w)
	}
	req.CS = [2]complex128{pr.D1, pr.D2}
	putComplex(b, csOff, pr.D1)
	putComplex(b, csOff+elemLen, pr.D2)
	return buf, payloadOff
}

// putComplexPair serializes x at b[off:] while accumulating the §5 pair in
// checksum.GeneratePair's exact summation order — the fused encode sweep.
func putComplexPair(b []byte, off int, x, w []complex128) checksum.Pair {
	var d1, d2 complex128
	for j, z := range x {
		putComplex(b, off, z)
		off += elemLen
		t := w[j] * z
		d1 += t
		d2 += complex(float64(j), 0) * t
	}
	return checksum.Pair{D1: d1, D2: d2}
}

// putFloatsPair serializes x at b[off:] while accumulating the pair over
// adjacent sample pairs, in floatPair's exact summation order. len(x) must
// be ≥ 2·len(w); a trailing unpaired sample (never present on valid
// payloads) is serialized but not summed.
func putFloatsPair(b []byte, off int, x []float64, w []complex128) checksum.Pair {
	var d1, d2 complex128
	for j := range w {
		v0, v1 := x[2*j], x[2*j+1]
		putFloat(b, off, v0)
		putFloat(b, off+8, v1)
		off += 16
		t := w[j] * complex(v0, v1)
		d1 += t
		d2 += complex(float64(j), 0) * t
	}
	for k := 2 * len(w); k < len(x); k++ {
		putFloat(b, off, x[k])
		off += 8
	}
	return checksum.Pair{D1: d1, D2: d2}
}

// DecodeServeRequest materializes a request from a validated frame's body.
// The payload is drawn from the shared pool; call Release when done.
func DecodeServeRequest(f ServeFrame, body []byte) (*ServeRequest, error) {
	req, _, _, err := DecodeServeRequestPair(f, body, nil)
	return req, err
}

// DecodeServeRequestPair is DecodeServeRequest with the §5 verification
// sweep fused into the payload decode: when the frame carries checksums (and
// weightsFor is non-nil), the receiver-side pair is computed during the
// single decode pass, bit-identical to a separate GeneratePair (complex) or
// sample-pair (real) sweep over the decoded payload. weightsFor returns the
// cached weight vector for a given length — called with the element count
// for complex payloads, count/2 for real ones — and only when the frame
// carries checksums. curOK reports whether cur was computed.
func DecodeServeRequestPair(f ServeFrame, body []byte, weightsFor func(n int) []complex128) (req *ServeRequest, cur checksum.Pair, curOK bool, err error) {
	h := frameHeader{typ: f.Type, flags: f.Flags, tag: f.ID, count: f.Count}
	if f.Type != frameRequest || len(body) != h.payloadBytes() {
		return nil, cur, false, fmt.Errorf("mpi: request frame body %d bytes, want %d", len(body), h.payloadBytes())
	}
	if body[3] != 0 {
		return nil, cur, false, fmt.Errorf("mpi: request frame with nonzero reserved meta byte %#x", body[3])
	}
	req = &ServeRequest{
		ID:         f.ID,
		Op:         ServeOp(body[0]),
		Protection: body[1],
		N:          int(binary.LittleEndian.Uint32(body[4:])),
	}
	nd := int(body[2])
	if nd > MaxServeDims {
		return nil, cur, false, fmt.Errorf("mpi: request carries %d dims, limit %d", nd, MaxServeDims)
	}
	if nd > 0 {
		req.Dims = make([]int, nd)
		for i := range req.Dims {
			req.Dims[i] = int(binary.LittleEndian.Uint32(body[8+4*i:]))
		}
	}
	for i := nd; i < MaxServeDims; i++ {
		if binary.LittleEndian.Uint32(body[8+4*i:]) != 0 {
			return nil, cur, false, fmt.Errorf("mpi: request frame with nonzero unused dim slot %d", i)
		}
	}
	off := serveReqMetaLen
	if f.Flags&flagHasCS != 0 {
		req.CS[0] = getComplex(body, off)
		req.CS[1] = getComplex(body, off+elemLen)
		req.HasCS = true
		off += checksumLen
	}
	fuse := req.HasCS && weightsFor != nil
	if f.Flags&flagReal != 0 {
		req.fpb = getFloatPayload(f.Count)
		req.Real = req.fpb.data
		if fuse {
			cur = getFloatsPair(body, off, req.Real, weightsFor(f.Count/2))
			curOK = true
		} else {
			for i := range req.Real {
				req.Real[i] = getFloat(body, off)
				off += 8
			}
		}
	} else {
		req.pb = getPayload(f.Count)
		req.Data = req.pb.data
		if fuse {
			cur = getComplexPair(body, off, req.Data, weightsFor(f.Count))
			curOK = true
		} else {
			for i := range req.Data {
				req.Data[i] = getComplex(body, off)
				off += elemLen
			}
		}
	}
	return req, cur, curOK, nil
}

// getComplexPair decodes len(x) elements from body[off:] into x while
// accumulating the §5 pair in checksum.GeneratePair's exact summation order
// — the fused decode sweep.
func getComplexPair(body []byte, off int, x, w []complex128) checksum.Pair {
	var d1, d2 complex128
	for i := range x {
		z := getComplex(body, off)
		off += elemLen
		x[i] = z
		t := w[i] * z
		d1 += t
		d2 += complex(float64(i), 0) * t
	}
	return checksum.Pair{D1: d1, D2: d2}
}

// getFloatsPair decodes len(x) samples from body[off:] into x while
// accumulating the pair over adjacent sample pairs, in floatPair's exact
// summation order. A trailing unpaired sample (odd count — rejected later by
// request validation) is decoded but not summed.
func getFloatsPair(body []byte, off int, x []float64, w []complex128) checksum.Pair {
	var d1, d2 complex128
	for j := range w {
		v0 := getFloat(body, off)
		v1 := getFloat(body, off+8)
		off += 16
		x[2*j], x[2*j+1] = v0, v1
		t := w[j] * complex(v0, v1)
		d1 += t
		d2 += complex(float64(j), 0) * t
	}
	for k := 2 * len(w); k < len(x); k++ {
		x[k] = getFloat(body, off)
		off += 8
	}
	return checksum.Pair{D1: d1, D2: d2}
}

// AppendServeResponse appends resp as one response frame to buf, returning
// the extended buffer and the serialized element payload's offset.
func AppendServeResponse(buf []byte, resp *ServeResponse) (frame []byte, payloadOff int) {
	flags := byte(0)
	if resp.HasCS {
		flags |= flagHasCS
	}
	count := len(resp.Data)
	if resp.Real != nil {
		flags |= flagReal
		count = len(resp.Real)
	}
	start := len(buf)
	total := serveFrameSize(frameResponse, flags, count)
	buf = appendZeros(buf, total)
	b := buf[start:]
	putHeader(b, frameHeader{typ: frameResponse, flags: flags, tag: resp.ID, count: count})
	off := frameHeaderLen
	putCounter := func(v int) {
		binary.LittleEndian.PutUint32(b[off:], uint32(v))
		off += 4
	}
	putCounter(resp.Report.Detections)
	putCounter(resp.Report.CompRecomputations)
	putCounter(resp.Report.MemCorrections)
	putCounter(resp.Report.TwiddleCorrections)
	putCounter(resp.Report.FullRestarts)
	if resp.Report.Uncorrectable {
		b[off] = 1
	}
	off += 4
	if resp.HasCS {
		putComplex(b, off, resp.CS[0])
		putComplex(b, off+elemLen, resp.CS[1])
		off += checksumLen
	}
	payloadOff = start + off
	if flags&flagReal != 0 {
		for _, v := range resp.Real {
			putFloat(b, off, v)
			off += 8
		}
	} else {
		for _, z := range resp.Data {
			putComplex(b, off, z)
			off += elemLen
		}
	}
	return buf, payloadOff
}

// AppendServeResponsePair is AppendServeResponse with the §5 pair generated
// during payload serialization (the fused encode sweep; see
// AppendServeRequestPair for the bit-identity contract). w must hold
// len(Data) weights for a complex payload or len(Real)/2 for a real one.
// resp.CS and resp.HasCS are set to the generated pair.
func AppendServeResponsePair(buf []byte, resp *ServeResponse, w []complex128) (frame []byte, payloadOff int) {
	resp.HasCS = true
	flags := byte(flagHasCS)
	count := len(resp.Data)
	if resp.Real != nil {
		flags |= flagReal
		count = len(resp.Real)
	}
	start := len(buf)
	total := serveFrameSize(frameResponse, flags, count)
	buf = appendZeros(buf, total)
	b := buf[start:]
	putHeader(b, frameHeader{typ: frameResponse, flags: flags, tag: resp.ID, count: count})
	off := frameHeaderLen
	putCounter := func(v int) {
		binary.LittleEndian.PutUint32(b[off:], uint32(v))
		off += 4
	}
	putCounter(resp.Report.Detections)
	putCounter(resp.Report.CompRecomputations)
	putCounter(resp.Report.MemCorrections)
	putCounter(resp.Report.TwiddleCorrections)
	putCounter(resp.Report.FullRestarts)
	if resp.Report.Uncorrectable {
		b[off] = 1
	}
	off += 4
	csOff := off
	off += checksumLen
	payloadOff = start + off
	var pr checksum.Pair
	if flags&flagReal != 0 {
		pr = putFloatsPair(b, off, resp.Real, w)
	} else {
		pr = putComplexPair(b, off, resp.Data, w)
	}
	resp.CS = [2]complex128{pr.D1, pr.D2}
	putComplex(b, csOff, pr.D1)
	putComplex(b, csOff+elemLen, pr.D2)
	return buf, payloadOff
}

// DecodeServeResponseInto parses a response frame's body, writing the
// element payload directly into data (complex responses, len ≥ Count) or
// rdata (real responses, len ≥ Count) — the client decodes straight into
// the caller's destination buffer, allocation-free.
func DecodeServeResponseInto(f ServeFrame, body []byte, data []complex128, rdata []float64) (ServeResponse, error) {
	resp, _, _, err := DecodeServeResponseIntoPair(f, body, data, rdata, nil)
	return resp, err
}

// DecodeServeResponseIntoPair is DecodeServeResponseInto with the §5
// verification sweep fused into the payload decode (see
// DecodeServeRequestPair). weightsFor is called with the element count for
// complex payloads, count/2 for real ones, and only when the frame carries
// checksums; curOK reports whether cur was computed.
func DecodeServeResponseIntoPair(f ServeFrame, body []byte, data []complex128, rdata []float64, weightsFor func(n int) []complex128) (ServeResponse, checksum.Pair, bool, error) {
	var cur checksum.Pair
	h := frameHeader{typ: f.Type, flags: f.Flags, tag: f.ID, count: f.Count}
	if f.Type != frameResponse || len(body) != h.payloadBytes() {
		return ServeResponse{}, cur, false, fmt.Errorf("mpi: response frame body %d bytes, want %d", len(body), h.payloadBytes())
	}
	resp := ServeResponse{ID: f.ID}
	off := 0
	getCounter := func() int {
		v := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		return v
	}
	resp.Report.Detections = getCounter()
	resp.Report.CompRecomputations = getCounter()
	resp.Report.MemCorrections = getCounter()
	resp.Report.TwiddleCorrections = getCounter()
	resp.Report.FullRestarts = getCounter()
	switch binary.LittleEndian.Uint32(body[off:]) {
	case 0:
	case 1:
		resp.Report.Uncorrectable = true
	default:
		return ServeResponse{}, cur, false, fmt.Errorf("mpi: response frame with invalid report flags word")
	}
	off += 4
	if f.Flags&flagHasCS != 0 {
		resp.CS[0] = getComplex(body, off)
		resp.CS[1] = getComplex(body, off+elemLen)
		resp.HasCS = true
		off += checksumLen
	}
	fuse := resp.HasCS && weightsFor != nil
	curOK := false
	if f.Flags&flagReal != 0 {
		if len(rdata) < f.Count {
			return ServeResponse{}, cur, false, fmt.Errorf("mpi: real response of %d samples into buffer of %d", f.Count, len(rdata))
		}
		resp.Real = rdata[:f.Count]
		if fuse {
			cur = getFloatsPair(body, off, resp.Real, weightsFor(f.Count/2))
			curOK = true
		} else {
			for i := range resp.Real {
				resp.Real[i] = getFloat(body, off)
				off += 8
			}
		}
	} else {
		if len(data) < f.Count {
			return ServeResponse{}, cur, false, fmt.Errorf("mpi: response of %d elements into buffer of %d", f.Count, len(data))
		}
		resp.Data = data[:f.Count]
		if fuse {
			cur = getComplexPair(body, off, resp.Data, weightsFor(f.Count))
			curOK = true
		} else {
			for i := range resp.Data {
				resp.Data[i] = getComplex(body, off)
				off += elemLen
			}
		}
	}
	return resp, cur, curOK, nil
}

// AppendServeError appends an error frame: the reject arm of the service
// contract. uncorrectable marks an ABFT reject (the client surfaces
// core.ErrUncorrectable); unavailable marks a drain-time refusal.
func AppendServeError(buf []byte, id int, uncorrectable, unavailable bool, msg string) []byte {
	if len(msg) > maxControlPayload {
		msg = msg[:maxControlPayload]
	}
	flags := byte(0)
	if uncorrectable {
		flags |= flagUncorrectable
	}
	if unavailable {
		flags |= flagUnavailable
	}
	start := len(buf)
	buf = appendZeros(buf, frameHeaderLen+len(msg))
	b := buf[start:]
	putHeader(b, frameHeader{typ: frameError, flags: flags, tag: id, count: len(msg)})
	copy(b[frameHeaderLen:], msg)
	return buf
}

// DecodeServeError parses an error frame's body against its header flags.
func DecodeServeError(f ServeFrame, body []byte) (msg string, uncorrectable, unavailable bool) {
	return string(body), f.Flags&flagUncorrectable != 0, f.Flags&flagUnavailable != 0
}

// appendZeros extends buf by n zero bytes, reusing capacity when available.
func appendZeros(buf []byte, n int) []byte {
	start := len(buf)
	if cap(buf)-start >= n {
		buf = buf[:start+n]
		zero := buf[start:]
		for i := range zero {
			zero[i] = 0
		}
		return buf
	}
	return append(buf, make([]byte, n)...)
}

// floatPayload is a pooled real-sample buffer, the float64 counterpart of
// the complex payload pool.
type floatPayload struct {
	data []float64
}

var floatPayloads = sync.Pool{New: func() any { return new(floatPayload) }}

func getFloatPayload(n int) *floatPayload {
	pb := floatPayloads.Get().(*floatPayload)
	if cap(pb.data) < n {
		pb.data = make([]float64, n)
	}
	pb.data = pb.data[:n]
	return pb
}

// putFloat encodes v at buf[off:off+8].
func putFloat(buf []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
}

// getFloat decodes the float64 at buf[off:off+8].
func getFloat(buf []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
}
