package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ftfft/internal/fault"
)

func TestPointToPoint(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			data := []complex128{1, 2, 3}
			c.Send(1, 7, data, nil)
			return nil
		}
		buf := make([]complex128, 3)
		c.Recv(0, 7, buf)
		for i, want := range []complex128{1, 2, 3} {
			if buf[i] != want {
				return errors.New("payload mismatch")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []complex128{10}, nil)
			c.Send(1, 2, []complex128{20}, nil)
			return nil
		}
		b2 := make([]complex128, 1)
		b1 := make([]complex128, 1)
		c.Recv(0, 2, b2) // receive the later tag first
		c.Recv(0, 1, b1)
		if b1[0] != 10 || b2[0] != 20 {
			return errors.New("tag matching failed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChecksumsTravelWithMessage(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			cs := [2]complex128{complex(5, 0), complex(6, 0)}
			c.Send(1, 0, []complex128{1}, &cs)
			return nil
		}
		buf := make([]complex128, 1)
		cs, has, err := c.Recv(0, 0, buf)
		if err != nil {
			return err
		}
		if !has || cs[0] != 5 || cs[1] != 6 {
			return errors.New("checksums lost in transit")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			data := []complex128{1}
			req := c.Isend(1, 0, data, nil)
			data[0] = 999 // mutate after send; receiver must see 1
			_ = req
			return nil
		}
		buf := make([]complex128, 1)
		c.Recv(0, 0, buf)
		if buf[0] != 1 {
			return errors.New("send did not copy payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllExchange(t *testing.T) {
	p := 4
	err := Run(p, nil, func(c *Comm) error {
		// Rank r sends value r*10+dst to each dst.
		for _, dst := range TransposeSchedule(c.Rank(), p) {
			c.Send(dst, 3, []complex128{complex(float64(c.Rank()*10+dst), 0)}, nil)
		}
		for src := 0; src < p; src++ {
			buf := make([]complex128, 1)
			c.Recv(src, 3, buf)
			want := complex(float64(src*10+c.Rank()), 0)
			if buf[0] != want {
				return errors.New("all-to-all mismatch")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	p := 8
	counter := make(chan int, p*2)
	err := Run(p, nil, func(c *Comm) error {
		counter <- 1
		c.Barrier()
		// After the barrier every rank must have deposited its token.
		if len(counter) < p {
			return errors.New("barrier released early")
		}
		c.Barrier() // reusable
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransposeScheduleProperties(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 3, 6} {
		for r := 0; r < p; r++ {
			sched := TransposeSchedule(r, p)
			seen := make(map[int]bool)
			for _, dst := range sched {
				if dst < 0 || dst >= p || seen[dst] {
					t.Fatalf("p=%d rank=%d: bad schedule %v", p, r, sched)
				}
				seen[dst] = true
			}
			if sched[0] != r && p&(p-1) == 0 {
				t.Fatalf("p=%d rank=%d: XOR schedule should start with self", p, r)
			}
		}
	}
	// XOR schedules are pairwise: at step i, rank a talks to a^i which talks
	// back to a.
	p := 8
	for i := 0; i < p; i++ {
		for a := 0; a < p; a++ {
			b := TransposeSchedule(a, p)[i]
			if TransposeSchedule(b, p)[i] != a {
				t.Fatalf("XOR schedule not a pairing at step %d", i)
			}
		}
	}
}

func TestMessageFaultInjection(t *testing.T) {
	sched := fault.NewSchedule(1, fault.Fault{
		Site: fault.SiteMessage, Rank: 0, Index: 1, Mode: fault.AddConstant, Value: 9,
	})
	err := Run(2, sched, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []complex128{1, 2, 3}, nil)
			return nil
		}
		buf := make([]complex128, 3)
		c.Recv(0, 0, buf)
		if buf[1] != 11 {
			return errors.New("transit fault not applied")
		}
		if buf[0] != 1 || buf[2] != 3 {
			return errors.New("wrong elements corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.AllFired() {
		t.Fatal("fault did not fire")
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := Run(3, nil, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestAbortUnblocksRecv(t *testing.T) {
	sentinel := errors.New("rank 1 failed")
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 1 {
			// Fail without ever sending: rank 0 would block forever
			// without the poison pill.
			c.w.Abort(sentinel)
			return sentinel
		}
		buf := make([]complex128, 1)
		_, _, err := c.Recv(1, 0, buf)
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel abort cause, got %v", err)
	}
}

func TestAbortUnblocksBarrier(t *testing.T) {
	sentinel := errors.New("abort mid-barrier")
	err := Run(3, nil, func(c *Comm) error {
		if c.Rank() == 2 {
			c.w.Abort(sentinel)
			return sentinel
		}
		return c.Barrier()
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel abort cause, got %v", err)
	}
}

// TestRankPanicAbortsPeers: a panicking rank body must poison the world like
// any failing rank — its peers unwind out of blocked receives with the
// contained panic as the cause instead of deadlocking forever.
func TestRankPanicAbortsPeers(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- Run(2, nil, func(c *Comm) error {
			if c.Rank() == 1 {
				panic("rank body bug")
			}
			buf := make([]complex128, 1)
			_, _, err := c.Recv(1, 0, buf) // blocks forever without the abort
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("want contained panic as abort cause, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("panicking rank deadlocked its peer")
	}
}

func TestAbortNilCauseAndIdempotence(t *testing.T) {
	w := NewWorld(2, nil)
	w.Abort(nil)
	w.Abort(errors.New("second cause must lose"))
	if !w.Aborted() {
		t.Fatal("world not marked aborted")
	}
	_, _, err := w.Endpoint(0).Recv(1, 0, make([]complex128, 1))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	// Sends into an aborted world must not block or leak.
	w.Endpoint(1).Send(0, 0, make([]complex128, 1), nil)
}

func TestAbortedRecvDeliversPendingMatches(t *testing.T) {
	w := NewWorld(2, nil)
	w.Endpoint(0).Send(1, 5, []complex128{42}, nil)
	w.Abort(errors.New("late abort"))
	// The message was already queued; a racing Recv may return either the
	// payload or the abort error, but must never hang.
	buf := make([]complex128, 1)
	_, _, err := w.Endpoint(1).Recv(0, 5, buf)
	if err == nil && buf[0] != 42 {
		t.Fatalf("clean receive with wrong payload %v", buf[0])
	}
}

func TestEndpointValidation(t *testing.T) {
	w := NewWorld(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range endpoint should panic")
		}
	}()
	w.Endpoint(5)
}
