// shm.go implements the same-host shared-memory wire: every rank pair gets a
// single-producer/single-consumer ring buffer in one memory-mapped file, and
// frames — the exact wire.go codec socket transports speak — are serialized
// directly into the ring and copied out once into a pooled buffer on receipt.
// No sockets, no syscalls per message, no kernel copies: a send is a bounded
// ring reservation, an in-place serialization sweep (fused with the §5
// checksum generation upstream, in IsendPair), and one atomic tail store.
//
// Topology is a full mesh: rank r produces into ring(dst, r) for every dst
// and consumes rings (r, src) for every src, so worker↔worker traffic never
// relays through the root — unlike the socket wire, where the hub forwards.
//
// File layout (all little-endian, offsets fixed by shmHeader* constants):
//
//	[0, 4096)   header page: magic, p, state, rank-claim counter, ring size,
//	            job metadata (mirrors the frameConfig payload), and one
//	            attach flag per rank.
//	then p×p rings, ring(dst, src) at shmHeaderBytes +
//	            (dst*p+src)*(shmRingHdrBytes+ringBytes):
//	  +0    head  (u64, atomic; consumer-owned)
//	  +64   tail  (u64, atomic; producer-owned — its own cache line)
//	  +128  data  (ringBytes bytes of records)
//
// A record is 8-byte aligned: u32 frame length, u32 sequence number, the
// frame bytes (wire.go header + optional checksum block + elements), padding
// to the next 8-byte boundary. A frame that would straddle the ring edge is
// preceded by a wrap marker (length 0xFFFFFFFF): the consumer skips to the
// ring start. Sequence numbers are per-ring and monotonic; the consumer
// validates every record's (decodeShmRecord — fuzzed, never panics) so a
// corrupted or torn ring degrades into a world abort, not a crash.
//
// Lifecycle: CreateShmHub creates the file with state=created; workers
// (DialShmWorker) poll until the hub's ConfigureWorld — which sizes the
// rings from the job geometry, maps the file, publishes the metadata, and
// flips state to ready — then map it, claim a rank from the shared counter,
// and raise their attach flag. ConfigureWorld waits for all attach flags
// (bounded by handshakeTimeout), mirroring the socket hub's accept loop.
// Aborts broadcast mesh-wide as frameAbort records; Close sends goodbye
// frames, unmaps, and removes the file.
//
// Note SharedMemory() is false: the rings share frame bytes across
// processes, but the caller's input/output slices still live in one address
// space each, so the in-process direct-slice fast path does not apply —
// every transfer goes through the explicit (checksummed) message exchange,
// exactly as over sockets.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

const (
	// shmMagic opens the header page; a layout change bumps the version.
	shmMagic = "FTSHM/1\x00"

	// shmHeaderBytes is the header page size; rings start past it.
	shmHeaderBytes = 4096

	// shmRingHdrBytes holds one ring's head and tail counters on separate
	// cache lines, so producer and consumer stores don't false-share.
	shmRingHdrBytes = 128

	// shmRecHdrBytes prefixes every record: u32 frame length, u32 sequence.
	shmRecHdrBytes = 8

	// shmWrapMarker in a record's length field sends the consumer back to
	// the ring start (the frame would have straddled the edge).
	shmWrapMarker = ^uint32(0)

	// shmStateReady is the header state once ConfigureWorld has sized the
	// rings and published the job metadata; workers wait for it.
	shmStateReady = 1

	// shmMinRingBytes floors the ring size for tiny worlds.
	shmMinRingBytes = 1 << 16

	// shmSpinIters bounds the busy-spin (with Gosched) a parked producer or
	// consumer burns before escalating to timed sleeps.
	shmSpinIters = 4096
)

// Header page field offsets.
const (
	shmOffMagic      = 0  // 8 bytes
	shmOffP          = 8  // u32
	shmOffState      = 12 // u32, atomic
	shmOffClaimed    = 16 // u32, atomic rank-claim counter
	shmOffRingBytes  = 20 // u32
	shmOffN          = 24 // u64
	shmOffMaxRetries = 32 // u32
	shmOffFlags      = 36 // u32: bit0 protected, bit1 optimized
	shmOffEtaScale   = 40 // f64
	shmOffAttached   = 64 // u32 per rank, atomic
)

// shmU32 and shmU64 view a mapped offset as an atomically-accessed counter.
// Every use site is 4- (resp. 8-) byte aligned by construction: the mapping
// is page-aligned and all offsets are multiples of the access size.
func shmU32(mem []byte, off int) *uint32 { return (*uint32)(unsafe.Pointer(&mem[off])) }
func shmU64(mem []byte, off int) *uint64 { return (*uint64)(unsafe.Pointer(&mem[off])) }

// shmRingBytes sizes every ring from the job geometry: at least four of the
// largest data frame (a scatter/gather slice of N/P elements plus checksum
// block and record header), never smaller than the largest control frame,
// rounded up to a power of two.
func shmRingBytes(meta WorldMeta) int {
	q := meta.N / meta.P
	maxFrame := shmRecHdrBytes + frameHeaderLen + checksumLen + q*elemLen
	if ctl := shmRecHdrBytes + frameHeaderLen + maxControlPayload; ctl > maxFrame {
		maxFrame = ctl
	}
	rb := 8 * maxFrame
	if rb < shmMinRingBytes {
		rb = shmMinRingBytes
	}
	return 1 << bits.Len(uint(rb-1))
}

// shmFileSize is the full mapped length for a p-rank world.
func shmFileSize(p, ringBytes int) int64 {
	return int64(shmHeaderBytes) + int64(p)*int64(p)*int64(shmRingHdrBytes+ringBytes)
}

// shmEndpoint is the per-process core shared by hub and worker: the mapping,
// this process's rank, its inbox row, and the producer/consumer state over
// the rings it touches.
type shmEndpoint struct {
	path      string
	f         *os.File
	mem       []byte
	p         int
	rank      int
	ringBytes int
	maxElems  int
	inbox     []chan Message

	w         *World
	wfMu      sync.Mutex
	wireFault WireFault
	remote    atomic.Bool // the poison pill arrived over a ring
	shutdown  atomic.Bool // goodbye received: teardown is expected
	closing   atomic.Bool // deliberate local Close
	stop      chan struct{}
	readers   sync.WaitGroup
	closeOnce sync.Once

	sendMu []sync.Mutex // per-destination: PropagateAbort can race a data send
	seqOut []uint64     // next sequence per destination ring; guarded by sendMu

	stats wireCounters // every shm frame is peer-direct: the rings are a mesh
}

func (e *shmEndpoint) init(path string, f *os.File, p int) {
	e.path = path
	e.f = f
	e.p = p
	e.inbox = newInboxRow(p)
	e.stop = make(chan struct{})
	e.sendMu = make([]sync.Mutex, p)
	e.seqOut = make([]uint64, p)
}

// ringOff returns the byte offset of ring(dst, src)'s header.
func (e *shmEndpoint) ringOff(dst, src int) int {
	return shmHeaderBytes + (dst*e.p+src)*(shmRingHdrBytes+e.ringBytes)
}

func (e *shmEndpoint) ringHead(dst, src int) *uint64 {
	return shmU64(e.mem, e.ringOff(dst, src))
}

func (e *shmEndpoint) ringTail(dst, src int) *uint64 {
	return shmU64(e.mem, e.ringOff(dst, src)+64)
}

func (e *shmEndpoint) ringData(dst, src int) []byte {
	off := e.ringOff(dst, src) + shmRingHdrBytes
	return e.mem[off : off+e.ringBytes]
}

// Path returns the shared-memory file's path.
func (e *shmEndpoint) Path() string { return e.path }

// WorldSize returns the number of ranks in the world.
func (e *shmEndpoint) WorldSize() int { return e.p }

// LocalRanks implements RankPlacement: one rank per process.
func (e *shmEndpoint) LocalRanks() []int { return []int{e.rank} }

// SharedMemory reports false: the rings are shared, the callers' data slices
// are not — see the package comment at the top of this file.
func (e *shmEndpoint) SharedMemory() bool { return false }

// InjectWireFaults installs a hook over outgoing serialized payloads — the
// wire-level fault site, applied to the ring bytes before the frame is
// published. A nil hook removes it.
func (e *shmEndpoint) InjectWireFaults(f WireFault) {
	e.wfMu.Lock()
	e.wireFault = f
	e.wfMu.Unlock()
}

func (e *shmEndpoint) getWireFault() WireFault {
	e.wfMu.Lock()
	defer e.wfMu.Unlock()
	return e.wireFault
}

// shmPark escalates a failed poll: bounded Gosched spin first (the common
// case — the peer is actively producing), then short sleeps so an idle ring
// costs no CPU without adding more than a few hundred microseconds of
// wake-up latency.
func shmPark(spin *int) {
	*spin++
	switch {
	case *spin < shmSpinIters:
		runtime.Gosched()
	case *spin < 4*shmSpinIters:
		time.Sleep(50 * time.Microsecond)
	default:
		time.Sleep(500 * time.Microsecond)
	}
}

// reserveRecord blocks until ring(dst ← e.rank) has room for a frameLen-byte
// frame and stamps the record header, returning the frame's in-ring bytes
// and the total advance for the matching publishRecord. The record becomes
// visible to the consumer only at publish. Callers hold sendMu[dst].
//
// abort, when non-nil, cancels the wait (data sends); teardown writes pass a
// deadline instead, so the pill flushes even out of an aborted world.
func (e *shmEndpoint) reserveRecord(dst, frameLen int, abort <-chan struct{}, deadline time.Time) (frame []byte, advance uint64, err error) {
	rb := uint64(e.ringBytes)
	rec := (uint64(shmRecHdrBytes) + uint64(frameLen) + 7) &^ 7
	if rec > rb {
		return nil, 0, fmt.Errorf("mpi: shm frame of %d bytes exceeds the ring capacity %d", frameLen, e.ringBytes)
	}
	headP := e.ringHead(dst, e.rank)
	tailP := e.ringTail(dst, e.rank)
	data := e.ringData(dst, e.rank)
	tail := atomic.LoadUint64(tailP)
	pos := tail % rb
	var pad uint64
	if rb-pos < rec {
		pad = rb - pos // wrap: the record moves to the ring start
	}
	total := pad + rec
	spin := 0
	for rb-(tail-atomic.LoadUint64(headP)) < total {
		if abort != nil {
			select {
			case <-abort:
				return nil, 0, e.w.abortError()
			default:
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, 0, fmt.Errorf("mpi: shm ring %d←%d full past deadline", dst, e.rank)
		}
		shmPark(&spin)
	}
	if pad != 0 {
		binary.LittleEndian.PutUint32(data[pos:], shmWrapMarker)
		pos = 0
	}
	seq := e.seqOut[dst]
	e.seqOut[dst] = seq + 1
	binary.LittleEndian.PutUint32(data[pos:], uint32(frameLen))
	binary.LittleEndian.PutUint32(data[pos+4:], uint32(seq))
	return data[pos+shmRecHdrBytes : pos+shmRecHdrBytes+uint64(frameLen)], total, nil
}

// publishRecord makes the reserved record visible: one atomic tail store.
func (e *shmEndpoint) publishRecord(dst int, advance uint64) {
	tailP := e.ringTail(dst, e.rank)
	atomic.StoreUint64(tailP, atomic.LoadUint64(tailP)+advance)
}

// writeData serializes a data frame directly into the destination ring —
// header, checksum block, elements — applies the wire-fault hook to the
// in-ring payload bytes, and publishes.
func (e *shmEndpoint) writeData(dst, src int, m Message, wf WireFault) error {
	h := frameHeader{typ: frameData, tag: m.Tag, src: src, dst: dst, count: len(m.Data), epoch: m.Epoch}
	if m.HasCS {
		h.flags = flagHasCS
	}
	frameLen := frameHeaderLen + h.payloadBytes()
	e.sendMu[dst].Lock()
	defer e.sendMu[dst].Unlock()
	frame, advance, err := e.reserveRecord(dst, frameLen, e.w.done, time.Time{})
	if err != nil {
		return err
	}
	putHeader(frame, h)
	off := frameHeaderLen
	if m.HasCS {
		putComplex(frame, off, m.CS[0])
		putComplex(frame, off+elemLen, m.CS[1])
		off += checksumLen
	}
	payload := frame[off:]
	for i, z := range m.Data {
		putComplex(payload, i*elemLen, z)
	}
	if wf != nil && len(payload) > 0 {
		wf(dst, src, m.Tag, int(m.Epoch), payload)
	}
	e.publishRecord(dst, advance)
	return nil
}

// writeControl serializes a control frame (abort, goodbye) into the
// destination ring, deadline-bounded so teardown cannot wedge on a full
// ring whose consumer is gone.
func (e *shmEndpoint) writeControl(dst int, typ byte, payload []byte, deadline time.Time) error {
	if len(payload) > maxControlPayload {
		payload = payload[:maxControlPayload]
	}
	h := frameHeader{typ: typ, src: e.rank, dst: dst, count: len(payload)}
	frameLen := frameHeaderLen + len(payload)
	e.sendMu[dst].Lock()
	defer e.sendMu[dst].Unlock()
	frame, advance, err := e.reserveRecord(dst, frameLen, nil, deadline)
	if err != nil {
		return err
	}
	putHeader(frame, h)
	copy(frame[frameHeaderLen:], payload)
	e.publishRecord(dst, advance)
	return nil
}

// Send implements Transport: self-sends land in the inbox; everything else
// is serialized into the peer's ring. The pooled payload is recycled only on
// success — a false return leaves ownership with the caller, per the
// Transport contract.
func (e *shmEndpoint) Send(dst, src int, m Message, abort <-chan struct{}) bool {
	if dst == e.rank {
		return deliver(e.inbox[src], m, abort)
	}
	select {
	case <-abort:
		return false
	default:
	}
	if err := e.writeData(dst, src, m, e.getWireFault()); err != nil {
		if !e.shutdown.Load() && !e.w.Aborted() {
			e.w.Abort(fmt.Errorf("mpi: shm send to rank %d: %w", dst, err))
		}
		return false
	}
	e.stats.add(true, dataFrameBytes(m))
	if m.pb != nil {
		payloads.Put(m.pb)
	}
	return true
}

// SerializesInline implements InlineSerializer: writeData consumes the
// caller's slice synchronously (the in-ring serialization sweep finishes
// before Send returns), so Isend can skip the pooled staging copy.
func (e *shmEndpoint) SerializesInline() bool { return true }

// WireStats implements the stats capability: every shm frame travels
// peer-direct over its ring (the topology is already a mesh, with no relay
// to count).
func (e *shmEndpoint) WireStats() WireStats {
	s := e.stats.snapshot()
	if w := e.w; w != nil {
		s.MaxEpochsInFlight = w.EpochHighWater()
	}
	return s
}

// Recv implements Transport for this process's rank (dst == e.rank).
func (e *shmEndpoint) Recv(dst, src int, abort <-chan struct{}) (Message, bool) {
	select {
	case m := <-e.inbox[src]:
		return m, true
	case <-abort:
		return Message{}, false
	}
}

// PropagateAbort implements AbortPropagator: broadcast the pill directly to
// every peer ring (the mesh needs no relay), unless it arrived from a ring
// (the originator already broadcast it). Deadline-bounded per peer.
func (e *shmEndpoint) PropagateAbort(cause error) {
	if e.remote.Load() {
		return
	}
	payload := []byte(cause.Error())
	deadline := time.Now().Add(teardownFlushTimeout)
	for r := 0; r < e.p; r++ {
		if r != e.rank {
			e.writeControl(r, frameAbort, payload, deadline)
		}
	}
}

// stopped reports whether this endpoint's readers should exit: a local
// Close or a (terminally) aborted world.
func (e *shmEndpoint) stopped() bool {
	select {
	case <-e.stop:
		return true
	default:
	}
	if w := e.w; w != nil && w.Aborted() {
		return true
	}
	return false
}

// startReaders launches one consumer per peer ring.
func (e *shmEndpoint) startReaders() {
	for src := 0; src < e.p; src++ {
		if src == e.rank {
			continue
		}
		e.readers.Add(1)
		go e.readLoop(src)
	}
}

// readLoop consumes ring(e.rank, src): validate the record, copy the frame
// once into a pooled buffer, advance head (releasing the ring space), and
// deliver — the element bytes stay serialized until RecvRequest decodes them
// in place into the posted receive buffer.
func (e *shmEndpoint) readLoop(src int) {
	defer e.readers.Done()
	headP := e.ringHead(e.rank, src)
	tailP := e.ringTail(e.rank, src)
	data := e.ringData(e.rank, src)
	head := atomic.LoadUint64(headP)
	var seq uint32
	spin := 0
	for {
		tail := atomic.LoadUint64(tailP)
		if head == tail {
			if e.stopped() {
				return
			}
			shmPark(&spin)
			continue
		}
		spin = 0
		advance, wrap, h, body, err := decodeShmRecord(data, head, tail, seq, e.p, e.maxElems)
		if err != nil {
			e.ringLost(src, err)
			return
		}
		if wrap {
			head += advance
			atomic.StoreUint64(headP, head)
			continue
		}
		seq++
		switch h.typ {
		case frameData:
			if h.src != src || h.dst != e.rank {
				e.ringLost(src, fmt.Errorf("mpi: shm ring %d→%d carried frame %d→%d", src, e.rank, h.src, h.dst))
				return
			}
			// Copy out before advancing head: after the store the producer
			// may legitimately overwrite these bytes.
			rb := getWireBuf(len(body))
			copy(rb.data, body)
			head += advance
			atomic.StoreUint64(headP, head)
			m := Message{Tag: h.tag, Epoch: h.epoch, count: h.count, rb: rb}
			off := 0
			if h.flags&flagHasCS != 0 {
				m.CS[0] = getComplex(rb.data, 0)
				m.CS[1] = getComplex(rb.data, elemLen)
				m.HasCS = true
				off = checksumLen
			}
			m.raw = rb.data[off:]
			if !deliver(e.inbox[src], m, e.w.done) {
				putWireBuf(m.rb)
				return
			}
		case frameAbort:
			e.remote.Store(true)
			e.w.Abort(&RemoteAbortError{Msg: string(body)})
			return
		case frameGoodbye:
			e.remote.Store(true)
			e.shutdown.Store(true)
			e.w.Abort(ErrShutdown)
			return
		default:
			// Hello/config/service frames never travel over rings; skip.
			head += advance
			atomic.StoreUint64(headP, head)
		}
	}
}

// ringLost poisons the world on a corrupted or torn ring; quiet when the
// teardown already explains it.
func (e *shmEndpoint) ringLost(src int, err error) {
	if e.closing.Load() || e.shutdown.Load() || e.w.Aborted() {
		return
	}
	e.w.Abort(fmt.Errorf("mpi: shm ring %d→%d: %w", src, e.rank, err))
}

// unmap tears the mapping down after the readers have exited (they hold ring
// slices into it) and closes the file.
func (e *shmEndpoint) unmap() {
	if e.w != nil {
		e.w.Abort(ErrShutdown) // unblocks readers parked in deliver
	}
	close(e.stop)
	e.readers.Wait()
	if e.mem != nil {
		syscall.Munmap(e.mem)
		e.mem = nil
	}
	if e.f != nil {
		e.f.Close()
	}
}

// decodeShmRecord validates and parses the record at head in a ring's data
// region, against the published tail and the expected sequence number. It
// returns the total advance past the record, whether it was a wrap marker
// (no frame), and otherwise the parsed frame header and its body bytes
// (aliasing data — records never straddle the ring edge). Any byte pattern
// is safe: every field is bounds-checked before use, so hostile or torn ring
// contents produce an error, never a panic (FuzzShmFrame pins this).
func decodeShmRecord(data []byte, head, tail uint64, wantSeq uint32, p, maxElems int) (advance uint64, wrap bool, h frameHeader, body []byte, err error) {
	rb := uint64(len(data))
	if rb == 0 || rb%8 != 0 {
		return 0, false, h, nil, fmt.Errorf("ring size %d is not a positive multiple of 8", len(data))
	}
	if head > tail || tail-head > rb {
		return 0, false, h, nil, fmt.Errorf("counters head=%d tail=%d out of range", head, tail)
	}
	avail := tail - head
	pos := head % rb
	if pos%8 != 0 || avail < 4 {
		return 0, false, h, nil, fmt.Errorf("torn record at %d (%d bytes available)", pos, avail)
	}
	size := binary.LittleEndian.Uint32(data[pos:])
	if size == shmWrapMarker {
		advance = rb - pos
		if advance == 0 || advance > avail {
			return 0, false, h, nil, fmt.Errorf("wrap marker at %d overruns the published tail", pos)
		}
		return advance, true, h, nil, nil
	}
	if uint64(size) < frameHeaderLen || uint64(size) > rb-shmRecHdrBytes {
		return 0, false, h, nil, fmt.Errorf("frame length %d out of range", size)
	}
	rec := (uint64(shmRecHdrBytes) + uint64(size) + 7) &^ 7
	if rec > rb-pos {
		return 0, false, h, nil, fmt.Errorf("record at %d straddles the ring edge", pos)
	}
	if rec > avail {
		return 0, false, h, nil, fmt.Errorf("torn record at %d (%d of %d bytes published)", pos, avail, rec)
	}
	if seq := binary.LittleEndian.Uint32(data[pos+4:]); seq != wantSeq {
		return 0, false, h, nil, fmt.Errorf("sequence %d, want %d", seq, wantSeq)
	}
	h, err = parseHeader(data[pos+shmRecHdrBytes:pos+shmRecHdrBytes+frameHeaderLen], p, maxElems)
	if err != nil {
		return 0, false, h, nil, err
	}
	if want := h.payloadBytes(); int(size) != frameHeaderLen+want {
		return 0, false, h, nil, fmt.Errorf("frame length %d, header implies %d", size, frameHeaderLen+want)
	}
	body = data[pos+shmRecHdrBytes+frameHeaderLen : pos+shmRecHdrBytes+uint64(size)]
	return rec, false, h, body, nil
}

// ShmHubTransport is the root process's side of the shared-memory wire: rank
// 0 lives here; it creates the file, sizes the rings at plan-build time, and
// removes the file on Close.
type ShmHubTransport struct {
	shmEndpoint
	started bool
}

// CreateShmHub creates the shared-memory file for a p-rank world at path
// (which must not exist; it is removed again on Close) and returns
// immediately. The rings are sized and published when the plan built over
// this transport runs its handshake (ConfigureWorld); workers started on the
// same path (DialShmWorker, or `ftfft -worker -transport shm`) wait for
// that.
func CreateShmHub(path string, p int) (*ShmHubTransport, error) {
	if p < 2 {
		return nil, fmt.Errorf("mpi: a shm world needs at least 2 ranks, got %d", p)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("mpi: creating shm file: %w", err)
	}
	var hdr [shmHeaderBytes]byte
	copy(hdr[shmOffMagic:], shmMagic)
	binary.LittleEndian.PutUint32(hdr[shmOffP:], uint32(p))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("mpi: writing shm header: %w", err)
	}
	t := &ShmHubTransport{}
	t.init(path, f, p)
	t.rank = 0
	return t, nil
}

// Bind implements WorldBinder; the readers start in ConfigureWorld, once the
// rings exist.
func (t *ShmHubTransport) Bind(w *World) { t.w = w }

// ConfigureWorld completes the handshake: it sizes the rings from the job
// geometry, grows and maps the file, publishes the metadata (flipping the
// header state to ready), waits for every worker's attach flag (bounded by
// handshakeTimeout), and starts the ring readers. Called once, at plan-build
// time.
func (t *ShmHubTransport) ConfigureWorld(meta WorldMeta) error {
	if t.w == nil {
		return fmt.Errorf("mpi: shm hub transport not bound to a world")
	}
	if meta.P != t.p {
		return fmt.Errorf("mpi: plan has %d ranks but the shm hub was created for %d", meta.P, t.p)
	}
	if t.started {
		return fmt.Errorf("mpi: shm hub transport already configured (one world per transport)")
	}
	t.ringBytes = shmRingBytes(meta)
	size := shmFileSize(t.p, t.ringBytes)
	if err := t.f.Truncate(size); err != nil {
		return fmt.Errorf("mpi: sizing shm file to %d bytes: %w", size, err)
	}
	mem, err := syscall.Mmap(int(t.f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("mpi: mapping shm file: %w", err)
	}
	t.mem = mem
	t.maxElems = meta.N
	binary.LittleEndian.PutUint32(mem[shmOffRingBytes:], uint32(t.ringBytes))
	binary.LittleEndian.PutUint64(mem[shmOffN:], uint64(meta.N))
	binary.LittleEndian.PutUint32(mem[shmOffMaxRetries:], uint32(meta.MaxRetries))
	var flags uint32
	if meta.Protected {
		flags |= 1
	}
	if meta.Optimized {
		flags |= 2
	}
	binary.LittleEndian.PutUint32(mem[shmOffFlags:], flags)
	binary.LittleEndian.PutUint64(mem[shmOffEtaScale:], math.Float64bits(meta.EtaScale))
	atomic.StoreUint32(shmU32(mem, shmOffState), shmStateReady)
	deadline := time.Now().Add(handshakeTimeout)
	for r := 1; r < t.p; r++ {
		for atomic.LoadUint32(shmU32(mem, shmOffAttached+4*r)) == 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("mpi: worker rank %d did not attach within %v", r, handshakeTimeout)
			}
			time.Sleep(time.Millisecond)
		}
	}
	t.started = true
	t.startReaders()
	return nil
}

// Close shuts the world down cleanly: goodbye frames tell the workers' serve
// loops to exit, the bound world (if any) is poisoned with ErrShutdown, the
// mapping is released once the readers drain, and the file is removed.
// Idempotent.
func (t *ShmHubTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closing.Store(true)
		t.remote.Store(true) // suppress the abort broadcast: goodbye is the signal
		if t.mem != nil && t.started {
			deadline := time.Now().Add(teardownFlushTimeout)
			for r := 1; r < t.p; r++ {
				t.writeControl(r, frameGoodbye, nil, deadline)
			}
		}
		t.unmap()
		os.Remove(t.path)
	})
	return nil
}

// ShmWorkerTransport is one worker process's side of the shared-memory wire:
// exactly one rank lives here, claimed from the shared counter at attach.
type ShmWorkerTransport struct {
	shmEndpoint
}

// DialShmWorker attaches to the shared-memory world at path, polling while
// the hub creates and publishes it (bounded by handshakeTimeout), then
// claims the next free rank and raises its attach flag. The returned
// transport hosts exactly that rank; build the matching plan from meta and
// serve it.
func DialShmWorker(path string) (*ShmWorkerTransport, WorldMeta, error) {
	deadline := time.Now().Add(handshakeTimeout)
	var hdr [shmHeaderBytes]byte
	var f *os.File
	for {
		var err error
		f, err = os.OpenFile(path, os.O_RDWR, 0)
		if err == nil {
			if _, rerr := f.ReadAt(hdr[:], 0); rerr == nil &&
				string(hdr[shmOffMagic:shmOffMagic+len(shmMagic)]) == shmMagic &&
				binary.LittleEndian.Uint32(hdr[shmOffState:]) == shmStateReady {
				break
			}
			f.Close()
		}
		if time.Now().After(deadline) {
			return nil, WorldMeta{}, fmt.Errorf("mpi: shm world at %s not ready within %v", path, handshakeTimeout)
		}
		time.Sleep(dialRetryInterval)
	}
	p := int(binary.LittleEndian.Uint32(hdr[shmOffP:]))
	ringBytes := int(binary.LittleEndian.Uint32(hdr[shmOffRingBytes:]))
	if p < 2 || p > 1<<20 || ringBytes < shmMinRingBytes {
		f.Close()
		return nil, WorldMeta{}, fmt.Errorf("mpi: shm header has p=%d ringBytes=%d", p, ringBytes)
	}
	size := shmFileSize(p, ringBytes)
	if st, err := f.Stat(); err != nil || st.Size() != size {
		f.Close()
		return nil, WorldMeta{}, fmt.Errorf("mpi: shm file is %v bytes, layout wants %d", st.Size(), size)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, WorldMeta{}, fmt.Errorf("mpi: mapping shm file: %w", err)
	}
	rank := int(atomic.AddUint32(shmU32(mem, shmOffClaimed), 1))
	if rank >= p {
		syscall.Munmap(mem)
		f.Close()
		return nil, WorldMeta{}, fmt.Errorf("mpi: all %d worker ranks already claimed", p-1)
	}
	meta := WorldMeta{
		N:          int(binary.LittleEndian.Uint64(mem[shmOffN:])),
		P:          p,
		MaxRetries: int(binary.LittleEndian.Uint32(mem[shmOffMaxRetries:])),
		EtaScale:   math.Float64frombits(binary.LittleEndian.Uint64(mem[shmOffEtaScale:])),
	}
	flags := binary.LittleEndian.Uint32(mem[shmOffFlags:])
	meta.Protected = flags&1 != 0
	meta.Optimized = flags&2 != 0
	t := &ShmWorkerTransport{}
	t.init(path, f, p)
	t.rank = rank
	t.ringBytes = ringBytes
	t.maxElems = meta.N
	t.mem = mem
	atomic.StoreUint32(shmU32(mem, shmOffAttached+4*rank), 1)
	return t, meta, nil
}

// Rank returns the rank this process claimed at attach.
func (t *ShmWorkerTransport) Rank() int { return t.rank }

// Bind implements WorldBinder and starts the ring readers.
func (t *ShmWorkerTransport) Bind(w *World) {
	t.w = w
	t.startReaders()
}

// Close releases the mapping (after the readers drain; the hub owns the
// file's lifetime). Idempotent.
func (t *ShmWorkerTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closing.Store(true)
		t.unmap()
	})
	return nil
}
