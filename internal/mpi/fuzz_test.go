package mpi

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode feeds arbitrary byte streams to the frame decoder: it must
// never panic, never allocate beyond the validated payload bound, and — when
// it does accept a data frame — produce a message it can re-encode to the
// identical bytes (decode∘encode is the identity on valid frames).
func FuzzFrameDecode(f *testing.F) {
	seed, _ := encodeDataFrame(nil, 2, 1, Message{
		Tag:  3,
		Data: []complex128{1 + 2i, -3.5i, 0},
		CS:   [2]complex128{4, 5i}, HasCS: true,
	})
	f.Add(seed)
	f.Add(encodeControlFrame(nil, frameAbort, []byte("boom")))
	f.Add(encodeControlFrame(nil, frameConfig, encodeConfig(1, WorldMeta{N: 64, P: 4})))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, frameHeaderLen+8))
	// Service frames: request (complex and real payloads), response, error.
	reqSeed, _ := AppendServeRequest(nil, &ServeRequest{
		ID: 7, Op: OpForward, Protection: 5, N: 4,
		Data: []complex128{1, 2i, -3, 4 + 4i},
		CS:   [2]complex128{1 + 2i, 3}, HasCS: true,
	})
	f.Add(reqSeed)
	realSeed, _ := AppendServeRequest(nil, &ServeRequest{
		ID: 8, Op: OpRealForward, Protection: 0, N: 4,
		Real: []float64{1, -2, 3, -4},
	})
	f.Add(realSeed)
	respSeed, _ := AppendServeResponse(nil, &ServeResponse{
		ID: 7, Report: ServeReport{Detections: 1, MemCorrections: 1},
		Data: []complex128{5, 6i}, CS: [2]complex128{7, 8i}, HasCS: true,
	})
	f.Add(respSeed)
	f.Add(AppendServeError(nil, 9, true, false, "uncorrectable"))

	const p, maxElems = 8, 1 << 10
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		var body []byte
		for {
			h, b, err := readFrame(r, body, p, maxElems)
			body = b
			if err != nil {
				return
			}
			switch h.typ {
			case frameData:
				m, err := decodeDataBody(h, body)
				if err != nil {
					t.Fatalf("validated data frame failed decode: %v", err)
				}
				// decode∘encode must be the identity on accepted frames:
				// compare header and body against a fresh encode (the codec
				// rejects nonzero reserved fields and parses the data-frame
				// epoch into the message, so the original header is fully
				// determined by the parsed fields).
				re, _ := encodeDataFrame(nil, h.dst, h.src, m)
				var hdr [frameHeaderLen]byte
				putHeader(hdr[:], h)
				if !bytes.Equal(re[:frameHeaderLen], hdr[:]) || !bytes.Equal(re[frameHeaderLen:], body) {
					t.Fatalf("re-encode of decoded frame differs")
				}
				if m.pb != nil {
					payloads.Put(m.pb)
				}
			case frameConfig:
				decodeConfig(body) // must not panic on any payload
			case frameRequest:
				sf := ServeFrame{Type: h.typ, Flags: h.flags, ID: h.tag, Count: h.count}
				req, err := DecodeServeRequest(sf, body)
				if err != nil {
					// Meta-level rejects (ndims beyond the limit) are valid
					// decoder outcomes on arbitrary bytes.
					continue
				}
				// decode∘encode must be the identity on accepted requests.
				re, _ := AppendServeRequest(nil, req)
				var hdr [frameHeaderLen]byte
				putHeader(hdr[:], h)
				if !bytes.Equal(re[:frameHeaderLen], hdr[:]) || !bytes.Equal(re[frameHeaderLen:], body) {
					t.Fatalf("re-encode of decoded request frame differs")
				}
				req.Release()
			case frameResponse:
				sf := ServeFrame{Type: h.typ, Flags: h.flags, ID: h.tag, Count: h.count}
				data := make([]complex128, h.count)
				rdata := make([]float64, h.count)
				resp, err := DecodeServeResponseInto(sf, body, data, rdata)
				if err != nil {
					// Report flags-word rejects are valid decoder outcomes
					// on arbitrary bytes.
					continue
				}
				re, _ := AppendServeResponse(nil, &resp)
				var hdr [frameHeaderLen]byte
				putHeader(hdr[:], h)
				if !bytes.Equal(re[:frameHeaderLen], hdr[:]) || !bytes.Equal(re[frameHeaderLen:], body) {
					t.Fatalf("re-encode of decoded response frame differs")
				}
			case frameError:
				sf := ServeFrame{Type: h.typ, Flags: h.flags, ID: h.tag, Count: h.count}
				DecodeServeError(sf, body) // must not panic on any payload
			}
		}
	})
}

// FuzzShmFrame feeds arbitrary ring bytes and counter states to the
// shared-memory record decoder: whatever another process scribbled into the
// mapping — torn records, hostile lengths, runaway counters, misaligned
// heads — must come back as an error or a validated record, never a panic.
// Accepted records must stay inside the published region and re-parse to the
// same frame header (the decoder aliases, it does not copy).
func FuzzShmFrame(f *testing.F) {
	seedHdr := frameHeader{typ: frameData, flags: flagHasCS, tag: 3, src: 1, dst: 0, count: 2}
	seed := make([]byte, 256)
	seed[0] = byte(frameHeaderLen + checksumLen + 2*elemLen)
	seed[4] = 5 // seq
	putHeader(seed[shmRecHdrBytes:], seedHdr)
	f.Add(seed, uint64(0), uint64(96), uint32(5))
	wrap := make([]byte, 64)
	wrap[0], wrap[1], wrap[2], wrap[3] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(wrap, uint64(0), uint64(64), uint32(0))
	f.Add([]byte{}, uint64(0), uint64(0), uint32(0))
	f.Add(bytes.Repeat([]byte{0xA5}, 128), uint64(1<<40), uint64(1<<40+64), uint32(9))

	const p, maxElems = 8, 1 << 10
	f.Fuzz(func(t *testing.T, data []byte, head, tail uint64, seq uint32) {
		advance, isWrap, h, body, err := decodeShmRecord(data, head, tail, seq, p, maxElems)
		if err != nil {
			return
		}
		if advance == 0 || advance > uint64(len(data)) || advance > tail-head {
			t.Fatalf("accepted advance %d outside ring of %d (published %d)", advance, len(data), tail-head)
		}
		if isWrap {
			return
		}
		// The body must sit inside the record the advance spans, and the
		// header must re-encode to the bytes the decoder validated.
		if uint64(shmRecHdrBytes+frameHeaderLen+len(body)) > advance+7 {
			t.Fatalf("body of %d bytes overruns the %d-byte record", len(body), advance)
		}
		var hdr [frameHeaderLen]byte
		putHeader(hdr[:], h)
		pos := head % uint64(len(data))
		if !bytes.Equal(hdr[:], data[pos+shmRecHdrBytes:pos+shmRecHdrBytes+frameHeaderLen]) {
			t.Fatalf("accepted header does not re-encode to the ring bytes")
		}
	})
}
