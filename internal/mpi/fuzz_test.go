package mpi

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode feeds arbitrary byte streams to the frame decoder: it must
// never panic, never allocate beyond the validated payload bound, and — when
// it does accept a data frame — produce a message it can re-encode to the
// identical bytes (decode∘encode is the identity on valid frames).
func FuzzFrameDecode(f *testing.F) {
	seed, _ := encodeDataFrame(nil, 2, 1, Message{
		Tag:  3,
		Data: []complex128{1 + 2i, -3.5i, 0},
		CS:   [2]complex128{4, 5i}, HasCS: true,
	})
	f.Add(seed)
	f.Add(encodeControlFrame(nil, frameAbort, []byte("boom")))
	f.Add(encodeControlFrame(nil, frameConfig, encodeConfig(1, WorldMeta{N: 64, P: 4})))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, frameHeaderLen+8))

	const p, maxElems = 8, 1 << 10
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		var body []byte
		for {
			h, b, err := readFrame(r, body, p, maxElems)
			body = b
			if err != nil {
				return
			}
			switch h.typ {
			case frameData:
				m, err := decodeDataBody(h, body)
				if err != nil {
					t.Fatalf("validated data frame failed decode: %v", err)
				}
				// decode∘encode must be the identity on accepted frames:
				// compare header and body against a fresh encode (the codec
				// rejects nonzero reserved fields, so the original header is
				// fully determined by the parsed fields).
				re, _ := encodeDataFrame(nil, h.dst, h.src, m)
				var hdr [frameHeaderLen]byte
				putHeader(hdr[:], h)
				if !bytes.Equal(re[:frameHeaderLen], hdr[:]) || !bytes.Equal(re[frameHeaderLen:], body) {
					t.Fatalf("re-encode of decoded frame differs")
				}
				if m.pb != nil {
					payloads.Put(m.pb)
				}
			case frameConfig:
				decodeConfig(body) // must not panic on any payload
			}
		}
	})
}
