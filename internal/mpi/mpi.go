// Package mpi is the message-passing substrate for the parallel FT-FFT
// scheme — the stand-in for MPI on TIANHE-2. Ranks are goroutines inside one
// process; point-to-point messages are copied through buffered channels with
// tag matching, so the semantics the paper's Algorithm 3 relies on hold:
//
//   - Isend returns after the payload is captured (buffered send);
//   - Irecv posts a receive that Wait completes, matching (source, tag);
//   - messages carry the two per-block checksums of §5 so receivers can
//     detect and repair single corrupted elements without retransmission;
//   - an optional fault.Injector corrupts payloads in transit
//     (fault.SiteMessage), emulating link soft errors;
//   - World.Abort is the poison-pill broadcast: a rank that fails
//     mid-collective poisons the world so every blocked receive and barrier
//     returns the abort cause instead of deadlocking — this is how a rank
//     that exhausts its retry budget surfaces as an error to its peers, and
//     how context cancellation reaches ranks parked in Recv.
//
// The runtime is deliberately simple but honest about data movement: every
// send copies its payload, as a NIC would. The copy lands in a pooled buffer
// that is recycled once the matching receive completes, so a World in steady
// state moves data without allocating.
//
// A World is built once and reused across any number of communication
// rounds (the plan-once/execute-many contract): endpoints are created at
// construction and Endpoint returns the same *Comm for a given rank every
// time. A Comm must only ever be used by one goroutine at a time.
//
// Rank bodies are launched as co-scheduled task groups on the shared bounded
// executor (internal/exec) via World.Launch, not as raw goroutines, so M
// concurrent transforms draw from one worker budget instead of spawning M·p
// goroutines. The wire itself sits behind the Transport interface. The
// default is the in-process channel matrix; the socket transports (wire.go,
// socket.go) carry the same tagged messages between OS processes through a
// byte-level framed codec, so the tag-matching, checksum, and abort machinery
// above the wire is identical either way. Optional capability interfaces on
// the transport (SharedMemory, RankPlacement, WorldBinder, WorldConfigurer,
// AbortPropagator) let the layers above choose fast paths — e.g. the
// in-process wire keeps zero-copy direct-slice scatter/gather — without the
// algorithm ever assuming shared memory.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"ftfft/internal/checksum"
	"ftfft/internal/exec"
	"ftfft/internal/fault"
)

// ErrAborted is returned from receives that were unblocked by a world abort
// when no more specific cause was recorded.
var ErrAborted = errors.New("mpi: world aborted")

// ErrShutdown is the abort cause recorded when the root process shuts a
// distributed world down cleanly (goodbye frame): worker serve loops treat it
// as a normal exit, not a failure.
var ErrShutdown = errors.New("mpi: world shut down")

// payload is a pooled message body. Boxing the slice keeps the sync.Pool
// round-trip allocation-free (the pool stores the same *payload forever).
type payload struct {
	data []complex128
}

// payloads is the process-wide message-body pool, shared by every world and
// transport so payloads can be recycled wherever a message terminates: at the
// matching receive (in-process delivery) or right after serialization (socket
// sends).
var payloads = sync.Pool{New: func() any { return new(payload) }}

// getPayload returns a pooled buffer holding exactly n elements.
func getPayload(n int) *payload {
	pb := payloads.Get().(*payload)
	if cap(pb.data) < n {
		pb.data = make([]complex128, n)
	}
	pb.data = pb.data[:n]
	return pb
}

// Message is one tagged payload in flight between two ranks. Data aliases a
// pooled buffer when the message originated in this process; transports must
// treat it as read-only and deliver messages from one source in send order.
type Message struct {
	Tag int
	// Epoch stamps the transform round the message belongs to, so several
	// rounds can be in flight on one world at once: receives match on
	// (src, tag, epoch), and the wire codec carries the epoch in the frame
	// header. Exactly one message exists per (src, dst, tag, epoch), which is
	// what makes the matching order-tolerant across path and round switches.
	Epoch uint32
	Data  []complex128
	CS    [2]complex128 // per-block checksums (D1, D2); zero when unused
	HasCS bool

	// pb is the pooled backing buffer, recycled when the matching receive
	// completes; nil for messages materialized by an external transport.
	pb *payload

	// raw, when non-nil, holds the message's count elements still in their
	// serialized wire form (count × 16 little-endian bytes): socket and
	// shared-memory read loops hand frames over undecoded, and the matching
	// receive decodes the bytes directly into its destination buffer
	// (decode-in-place) instead of materializing an intermediate complex128
	// slice. rb is the pooled byte buffer backing raw, recycled at the
	// receive like pb.
	raw   []byte
	count int
	rb    *wireBuf
}

// Transport moves tagged messages between ranks — the wire beneath the
// World. The in-process default is the buffered channel matrix
// (chanTransport); the socket transports carry the same messages between OS
// processes. Implementations must be safe for concurrent use by all ranks
// and must unblock any blocked operation when abort fires.
type Transport interface {
	// Send delivers m from src to dst, reporting false when the world
	// aborted before the message could be accepted.
	Send(dst, src int, m Message, abort <-chan struct{}) bool
	// Recv blocks until the next message from src to dst arrives, reporting
	// ok = false when abort fires first. Messages from one src must be
	// delivered in send order; tag matching happens above the transport.
	Recv(dst, src int, abort <-chan struct{}) (m Message, ok bool)
}

// SharedMemory is an optional Transport capability: a transport whose ranks
// all live in the caller's address space — and whose deliveries are exact
// copies — reports true, allowing the algorithm layer to expose caller
// slices directly to rank bodies (zero-copy scatter/gather) instead of
// exchanging root-rank messages. The fast path is chosen by this capability,
// never assumed.
type SharedMemory interface {
	SharedMemory() bool
}

// IsShared reports whether t grants the zero-copy shared-memory fast path.
func IsShared(t Transport) bool {
	s, ok := t.(SharedMemory)
	return ok && s.SharedMemory()
}

// RankPlacement is an optional Transport capability for wires spanning
// several OS processes: LocalRanks lists the ranks whose bodies run in this
// process. Transports without it are fully local (all ranks).
type RankPlacement interface {
	LocalRanks() []int
}

// PeerMesh is an optional Transport capability: a wire whose worker
// processes hold (or establish) direct point-to-point connections to each
// other reports true — worker↔worker frames travel one hop instead of
// relaying through the hub. The hub connection remains the control channel
// (abort, goodbye) and the per-pair relay fallback either way.
type PeerMesh interface {
	PeerMesh() bool
}

// IsMesh reports whether t grants direct worker↔worker delivery.
func IsMesh(t Transport) bool {
	m, ok := t.(PeerMesh)
	return ok && m.PeerMesh()
}

// InlineSerializer is an optional Transport capability: Send fully consumes
// the message payload before returning (serializing it onto the wire or into
// a ring), never retaining a reference. A World over such a wire skips the
// pooled defensive payload copy in Isend/IsendPair — the caller's slice is
// handed to Send directly — when no transit-fault injector is armed and the
// send is not a self-delivery (self-sends are queued, so they still copy).
type InlineSerializer interface {
	SerializesInline() bool
}

func isInline(t Transport) bool {
	s, ok := t.(InlineSerializer)
	return ok && s.SerializesInline()
}

// WireStats is a point-in-time snapshot of a transport's traffic counters,
// exposed by the socket and shared-memory wires so topology wins (mesh vs
// relay) are observable rather than inferred. Counters cover data frames
// only; control traffic is noise at steady state.
type WireStats struct {
	// FramesDirect / BytesDirect count data frames this process sent over a
	// direct connection (peer mesh conn, shm ring, or a hub-adjacent leg).
	FramesDirect int64
	BytesDirect  int64
	// FramesRelayed / BytesRelayed count data frames that took the two-hop
	// hub relay: on workers, frames sent via the hub conn for another worker;
	// on the hub, frames it forwarded between workers.
	FramesRelayed int64
	BytesRelayed  int64
	// PeerConns is the number of live direct peer connections (mesh wires).
	PeerConns int
	// MaxEpochsInFlight is the bound world's high-water mark of concurrently
	// active transform epochs (0 when no world is bound).
	MaxEpochsInFlight int
}

// WorldBinder is an optional Transport capability: Bind is called exactly
// once, when a World is built over the transport, handing it the world whose
// aborts and inboxes it must serve. Socket transports start their connection
// readers here.
type WorldBinder interface {
	Bind(w *World)
}

// WorldMeta is the job description a root process ships to remote workers
// during the connection handshake, so every process builds the identical
// plan: the global geometry plus the protection-scheme parameters.
type WorldMeta struct {
	N, P       int
	Protected  bool
	Optimized  bool
	EtaScale   float64
	MaxRetries int
}

// WorldConfigurer is an optional Transport capability: ConfigureWorld is
// called once at plan-build time with the job metadata. The hub transport
// completes the worker handshake here (it blocks until every worker has
// connected, then ships each one the metadata).
type WorldConfigurer interface {
	ConfigureWorld(meta WorldMeta) error
}

// AbortPropagator is an optional Transport capability: PropagateAbort
// broadcasts the world's poison pill to remote processes, so an abort in one
// process unwinds ranks parked in receives everywhere. It must be
// best-effort and non-blocking with respect to correctness — local abort has
// already happened when it is called.
type AbortPropagator interface {
	PropagateAbort(cause error)
}

// chanTransport is the default in-process wire: a p×p matrix of deeply
// buffered channels, so sends never block in this model.
type chanTransport struct {
	inbox [][]chan Message // inbox[dst][src]
}

// NewChanTransport creates the in-process channel-matrix wire for p ranks —
// the transport NewWorld uses by default. It grants the shared-memory fast
// path; wrap it in MessageOnly to force the explicit message-passing paths
// over the same wire.
func NewChanTransport(p int) Transport { return newChanTransport(p) }

func newChanTransport(p int) *chanTransport {
	t := &chanTransport{inbox: make([][]chan Message, p)}
	for dst := 0; dst < p; dst++ {
		t.inbox[dst] = make([]chan Message, p)
		for src := 0; src < p; src++ {
			t.inbox[dst][src] = make(chan Message, 64)
		}
	}
	return t
}

// SharedMemory grants the zero-copy direct-slice fast path: every rank of a
// chan world lives in the caller's address space.
func (t *chanTransport) SharedMemory() bool { return true }

// WorldSize returns the rank count the wire was built for, so plan
// construction can reject a geometry mismatch instead of indexing out of
// range at transform time.
func (t *chanTransport) WorldSize() int { return len(t.inbox) }

// messageOnly masks every capability of the wrapped transport, exposing only
// the raw Send/Recv wire: rank bodies must use explicit message exchanges.
// It exists so tests and benchmarks can prove the algorithm layer is
// transport-pure — bit-identical over the chan wire with the shared-memory
// fast path disabled.
type messageOnly struct {
	tr Transport
}

// MessageOnly wraps t, hiding its optional capabilities (shared memory,
// placement, binding). Intended for the in-process chan transport. The
// world-size safety check is not a capability and passes through.
func MessageOnly(t Transport) Transport { return &messageOnly{tr: t} }

func (t *messageOnly) Send(dst, src int, m Message, abort <-chan struct{}) bool {
	return t.tr.Send(dst, src, m, abort)
}

func (t *messageOnly) Recv(dst, src int, abort <-chan struct{}) (Message, bool) {
	return t.tr.Recv(dst, src, abort)
}

// WorldSize forwards the wrapped wire's rank count (0 = unknown): masking
// capabilities must not mask the construction-time geometry validation.
func (t *messageOnly) WorldSize() int {
	if ws, ok := t.tr.(interface{ WorldSize() int }); ok {
		return ws.WorldSize()
	}
	return 0
}

func (t *chanTransport) Send(dst, src int, m Message, abort <-chan struct{}) bool {
	select {
	case t.inbox[dst][src] <- m:
		return true
	case <-abort:
		return false
	}
}

func (t *chanTransport) Recv(dst, src int, abort <-chan struct{}) (Message, bool) {
	select {
	case m := <-t.inbox[dst][src]:
		return m, true
	case <-abort:
		return Message{}, false
	}
}

// World owns the endpoints of a p-rank communicator and the abort state
// layered over its Transport.
type World struct {
	p      int
	tr     Transport
	inj    fault.Injector
	local  []int // ranks whose bodies run in this process (placement capability)
	shared bool  // transport grants the shared-memory fast path
	inline bool  // transport serializes sends before returning (InlineSerializer)

	barrier   *barrier
	endpoints []*Comm

	// mail holds the per-(dst,src) matching state shared by every endpoint of
	// a rank: with epoch pipelining several Comms (one per in-flight epoch)
	// receive from the same transport stream, so unmatched messages are
	// parked centrally and waiters are woken on every deposit.
	mail []mailbox

	// Epoch accounting: how many transform epochs are live on this world
	// right now, and the high-water mark (surfaced through WireStats).
	epochMu    sync.Mutex
	epochsLive int
	epochsHigh int

	// Abort support: the poison-pill broadcast that turns a stuck
	// collective into an error. abortErr is written exactly once, before
	// done is closed, so any reader that observed the closed channel sees
	// the recorded cause.
	done      chan struct{}
	abortOnce sync.Once
	abortErr  error
}

// mailbox is one (dst, src) lane's unmatched-message queue. At most one
// goroutine pulls from the transport at a time (pulling); the rest wait on
// the condition variable and re-scan on every deposit, so a message pulled by
// one epoch's endpoint but destined for another is found without a second
// transport read racing the first.
type mailbox struct {
	mu      sync.Mutex
	cond    sync.Cond
	pending []Message
	pulling bool
}

// NewWorld creates a communicator with p ranks over the default in-process
// channel transport. inj, when non-nil, corrupts message payloads in transit.
func NewWorld(p int, inj fault.Injector) *World {
	return NewWorldTransport(p, inj, nil)
}

// NewWorldTransport creates a communicator over an explicit transport; a nil
// tr selects the in-process channel matrix. The transport's optional
// capabilities are resolved here: rank placement (which bodies this process
// runs), the shared-memory fast path, and world binding (socket transports
// start their readers once they know whose inboxes they feed).
func NewWorldTransport(p int, inj fault.Injector, tr Transport) *World {
	if p < 1 {
		panic("mpi: world size must be ≥ 1")
	}
	if tr == nil {
		tr = newChanTransport(p)
	}
	w := &World{p: p, tr: tr, inj: inj, done: make(chan struct{})}
	w.shared = IsShared(tr)
	w.inline = isInline(tr)
	if pl, ok := tr.(RankPlacement); ok {
		w.local = append([]int(nil), pl.LocalRanks()...)
	}
	if w.local == nil {
		w.local = make([]int, p)
		for r := range w.local {
			w.local[r] = r
		}
	}
	for _, r := range w.local {
		if r < 0 || r >= p {
			panic(fmt.Sprintf("mpi: local rank %d out of range [0,%d)", r, p))
		}
	}
	// The barrier is a local collective: it spans the ranks of this process.
	w.barrier = newBarrier(len(w.local))
	w.mail = make([]mailbox, p*p)
	for i := range w.mail {
		w.mail[i].cond.L = &w.mail[i].mu
	}
	w.endpoints = make([]*Comm, p)
	for r := 0; r < p; r++ {
		w.endpoints[r] = &Comm{w: w, rank: r}
	}
	if b, ok := tr.(WorldBinder); ok {
		b.Bind(w)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// LocalRanks returns the ranks whose bodies this process runs — all of them
// for an in-process world, this process's slice of a distributed one.
func (w *World) LocalRanks() []int { return w.local }

// Shared reports whether the transport grants the zero-copy shared-memory
// fast path (direct access to the caller's slices from rank bodies).
func (w *World) Shared() bool { return w.shared }

// Distributed reports whether some ranks of this world live in other
// processes.
func (w *World) Distributed() bool { return len(w.local) < w.p }

// Abort poisons the world: every blocked or future receive and barrier wait
// returns cause (ErrAborted when cause is nil) instead of waiting forever.
// The first cause wins; later calls are no-ops. A rank that fails
// mid-collective calls Abort so its peers unwind instead of deadlocking —
// the poison-pill broadcast the blocking substrate otherwise lacks.
func (w *World) Abort(cause error) {
	w.abortOnce.Do(func() {
		if cause == nil {
			cause = ErrAborted
		}
		w.abortErr = cause
		close(w.done)
		w.barrier.abort()
		// Distributed worlds broadcast the poison pill over the wire too, so
		// ranks in other processes unwind with the same cause.
		if ap, ok := w.tr.(AbortPropagator); ok {
			ap.PropagateAbort(cause)
		}
	})
}

// Done returns a channel closed when the world aborts (or shuts down):
// callers staging work outside a Comm operation select on it to unwind.
func (w *World) Done() <-chan struct{} { return w.done }

// Aborted reports whether the world has been poisoned.
func (w *World) Aborted() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// AbortCause returns the recorded abort cause, or nil if the world has not
// been aborted.
func (w *World) AbortCause() error {
	select {
	case <-w.done:
		return w.abortErr
	default:
		return nil
	}
}

// abortError returns the recorded cause; it must only be called after
// observing the closed done channel.
func (w *World) abortError() error { return w.abortErr }

// Comm is one rank's endpoint. A Comm must be used by a single goroutine —
// but several Comms for the same rank (one per in-flight epoch, see
// NewEndpoint) may operate concurrently: matching state lives on the World.
type Comm struct {
	w     *World
	rank  int
	epoch uint32 // stamp on sends, filter on receives; see SetEpoch
	// freeReqs recycles completed RecvRequests (single-goroutine freelist).
	freeReqs []*RecvRequest
}

// Rank returns this endpoint's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.w.p }

// SetEpoch pins the endpoint to a transform epoch: every subsequent send is
// stamped with e and every receive matches only messages stamped e. Epoch
// pipelining drivers call this once per round before launching rank bodies;
// endpoints left at the zero epoch interoperate with pre-epoch peers.
func (c *Comm) SetEpoch(e uint32) { c.epoch = e }

// Epoch returns the endpoint's current epoch stamp.
func (c *Comm) Epoch() uint32 { return c.epoch }

// Run launches body on p ranks of a fresh world as one executor task group
// and waits for all of them; the first error (lowest rank) is returned.
// Callers that transform repeatedly should instead hold a World and drive
// its persistent Endpoints through Launch.
func Run(p int, inj fault.Injector, body func(c *Comm) error) error {
	w := NewWorld(p, inj)
	l, err := w.Launch(context.Background(), nil, body)
	if err != nil {
		return err
	}
	return l.Wait()
}

// Launch is one in-flight rank fan-out: the executor gang running the rank
// bodies plus the context watcher that converts a cancellation into the
// world's poison-pill abort.
type Launch struct {
	g           *exec.Gang
	stop        chan struct{}
	watcherDone chan struct{}
}

// Launch runs body on every rank of the world that is local to this process,
// as one co-scheduled task group on ex (nil means the process-wide
// exec.Default()). The ranks are admitted atomically — never partially — so
// co-blocking rank bodies cannot deadlock against another caller's partial
// fan-out, and the pool's budget bounds the process-wide rank-goroutine
// count no matter how many callers contend. In a distributed world the
// remote ranks' bodies run in their own processes (their serve loops), so
// the gang here is only this process's slice.
//
// A rank body that returns an error poisons the world (the poison-pill
// broadcast, relayed over the wire for distributed worlds), so its peers
// unwind out of blocked receives and barriers; ctx cancellation fires the
// same abort. Launch returns once the group is admitted and started; join it
// with Wait. The only error returned here is a ctx cancellation during
// admission, with the world left untouched.
func (w *World) Launch(ctx context.Context, ex *exec.Pool, body func(c *Comm) error) (*Launch, error) {
	if ex == nil {
		ex = exec.Default()
	}
	res, err := ex.Reserve(ctx, len(w.local))
	if err != nil {
		return nil, err
	}
	return w.LaunchReserved(ctx, res, body), nil
}

// LaunchReserved is Launch on a pre-admitted executor reservation (which
// must have been made for exactly this world's local rank count). It never
// blocks: callers reserve first, then build or draw per-call state, then
// launch — so expensive state is never held while queueing for admission.
func (w *World) LaunchReserved(ctx context.Context, res *exec.Reservation, body func(c *Comm) error) *Launch {
	g := res.Launch(ctx, func(_ context.Context, i int) error {
		err := runRankBody(body, w.endpoints[w.local[i]])
		if err != nil {
			w.Abort(err)
		}
		return err
	})
	l := &Launch{g: g}
	if done := ctx.Done(); done != nil {
		l.stop = make(chan struct{})
		l.watcherDone = make(chan struct{})
		go func() {
			defer close(l.watcherDone)
			select {
			case <-done:
				w.Abort(ctx.Err())
			case <-l.stop:
			}
		}()
	}
	return l
}

// runRankBody invokes body with panic containment INSIDE the abort wrapper:
// a panicking rank must poison the world like any failing rank, or its peers
// would block in Recv forever while the executor's own containment (which
// sits outside this wrapper) quietly records the panic.
func runRankBody(body func(c *Comm) error, c *Comm) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mpi: rank %d: %w", c.Rank(),
				&exec.PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	return body(c)
}

// Lane is a reusable launch slot for a serve loop that re-runs the same rank
// fan-out round after round: the executor gang and every rank-body closure
// are prebuilt at construction, so a steady-state Launch/Wait round allocates
// nothing (PR 9's per-round Launch burned a gang, closures, and a watcher
// goroutine per epoch). A Lane is single-flight: Launch must not be called
// again until Wait returns. Lanes do not watch a context — serve loops that
// need cancellation install one WatchContext for the whole loop instead of
// one watcher per round.
type Lane struct {
	fg *exec.FixedGang
}

// NewLane prebuilds a reusable fan-out of body over this world's local ranks
// on ex (nil means exec.Default()). As with Launch, a rank body that fails or
// panics poisons the world so its peers unwind.
func (w *World) NewLane(ex *exec.Pool, body func(c *Comm) error) *Lane {
	if ex == nil {
		ex = exec.Default()
	}
	return &Lane{fg: ex.NewFixedGang(len(w.local), func(i int) error {
		err := runRankBody(body, w.endpoints[w.local[i]])
		if err != nil {
			w.Abort(err)
		}
		return err
	})}
}

// Launch starts one round on a pre-admitted reservation, which must have been
// made on the lane's pool for this world's local rank count. It never blocks;
// join the round with Wait.
func (ln *Lane) Launch(res *exec.Reservation) { ln.fg.LaunchReserved(res) }

// Wait joins the in-flight round and returns the lowest-rank error; the
// world's AbortCause usually carries the root failure when peers report abort
// echoes. The lane is reusable once Wait returns.
func (ln *Lane) Wait() error { return ln.fg.Wait() }

// WatchContext converts a cancellation of ctx into the world's poison-pill
// abort for as long as the watch is installed — the per-Launch watcher
// hoisted to once per serve loop. The returned stop func halts and joins the
// watcher (idempotent); call it before reusing the world under a different
// context, so a late cancel cannot poison a later round.
func (w *World) WatchContext(ctx context.Context) (stop func()) {
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		select {
		case <-done:
			w.Abort(ctx.Err())
		case <-quit:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-finished
		})
	}
}

// Wait joins the rank group and stops the cancellation watcher (joining it
// too, so a late cancel cannot poison a world after its reuse). It returns
// the lowest-rank error; the world's AbortCause usually carries the root
// failure when peers report abort echoes.
func (l *Launch) Wait() error {
	err := l.g.Wait()
	if l.stop != nil {
		close(l.stop)
		<-l.watcherDone
	}
	return err
}

// Endpoint returns rank r's Comm. Repeated calls return the same endpoint;
// the world-level matching state persists across communication rounds.
func (w *World) Endpoint(r int) *Comm {
	if r < 0 || r >= w.p {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, w.p))
	}
	return w.endpoints[r]
}

// NewEndpoint returns a fresh Comm for rank r, independent of the cached
// Endpoint(r) and of any other NewEndpoint comm. Distinct endpoints for one
// rank may run concurrently as long as each is pinned to its own epoch
// (SetEpoch): matching is per (src, tag, epoch) through the world's shared
// mailboxes, so rounds in flight simultaneously never steal each other's
// messages. This is what the epoch-pipelined execution ring is built from.
func (w *World) NewEndpoint(r int) *Comm {
	if r < 0 || r >= w.p {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, w.p))
	}
	return &Comm{w: w, rank: r}
}

// EpochBegin records a transform epoch going live on this world; EpochEnd
// retires it. The running count's high-water mark is surfaced through the
// transports' WireStats, making pipelining depth observable.
func (w *World) EpochBegin() {
	w.epochMu.Lock()
	w.epochsLive++
	if w.epochsLive > w.epochsHigh {
		w.epochsHigh = w.epochsLive
	}
	w.epochMu.Unlock()
}

// EpochEnd retires one live epoch recorded by EpochBegin.
func (w *World) EpochEnd() {
	w.epochMu.Lock()
	w.epochsLive--
	w.epochMu.Unlock()
}

// EpochHighWater returns the maximum number of epochs ever simultaneously
// live on this world.
func (w *World) EpochHighWater() int {
	w.epochMu.Lock()
	defer w.epochMu.Unlock()
	return w.epochsHigh
}

// recvMatch blocks until a message stamped (src → dst, tag, epoch) is
// available, reporting ok = false when the world aborts first. At most one
// goroutine per (dst, src) lane reads the transport at a time; others park on
// the lane's condition variable and re-scan the parked queue on every
// deposit, so a frame pulled by one epoch's endpoint reaches the endpoint
// actually waiting for it. Exactly one message exists per (src, dst, tag,
// epoch), so the matching is order-tolerant.
func (w *World) recvMatch(dst, src int, epoch uint32, tag int) (Message, bool) {
	mb := &w.mail[dst*w.p+src]
	mb.mu.Lock()
	for {
		q := mb.pending
		for i := range q {
			if q[i].Tag == tag && q[i].Epoch == epoch {
				m := q[i]
				mb.pending = append(q[:i], q[i+1:]...)
				mb.mu.Unlock()
				return m, true
			}
		}
		if mb.pulling {
			mb.cond.Wait()
			continue
		}
		mb.pulling = true
		mb.mu.Unlock()
		m, ok := w.tr.Recv(dst, src, w.done)
		mb.mu.Lock()
		mb.pulling = false
		if !ok {
			// Abort: wake every parked waiter; each will retry the pull and
			// observe the poisoned world immediately.
			mb.cond.Broadcast()
			mb.mu.Unlock()
			return Message{}, false
		}
		if m.Tag == tag && m.Epoch == epoch {
			mb.cond.Broadcast()
			mb.mu.Unlock()
			return m, true
		}
		mb.pending = append(mb.pending, m)
		mb.cond.Broadcast()
	}
}

// SendRequest tracks an in-flight send.
type SendRequest struct{ done bool }

// sendDone is the completed send: buffered sends finish inside Isend, so one
// immutable request serves every send without allocating.
var sendDone = &SendRequest{done: true}

// RecvRequest tracks a posted receive. Wait must be called exactly once per
// posted receive; after Wait returns, the request is recycled and must not
// be touched again.
type RecvRequest struct {
	c     *Comm
	src   int
	tag   int
	buf   []complex128
	w     []complex128 // fused §5 weights (IrecvPair); nil for plain receives
	cs    [2]complex128
	pair  checksum.Pair
	hasCS bool
	done  bool
}

// Isend sends len(data) elements of data to dst under tag, copying the
// payload into a pooled buffer (and letting the world's injector corrupt the
// copy in transit) before handing it to the transport. cs carries the
// optional block checksums.
//
// Over a transport that serializes inline (InlineSerializer), the pooled copy
// is skipped: the caller's slice rides straight into the wire encoder, which
// finishes with it before Send returns. The fast path is disabled when a
// transit-fault injector is armed (it must corrupt a copy, never the caller's
// memory) and for self-sends (queued locally, so the payload must outlive the
// call).
func (c *Comm) Isend(dst, tag int, data []complex128, cs *[2]complex128) *SendRequest {
	if c.w.inline && c.w.inj == nil && dst != c.rank {
		m := Message{Tag: tag, Epoch: c.epoch, Data: data}
		if cs != nil {
			m.CS = *cs
			m.HasCS = true
		}
		c.w.tr.Send(dst, c.rank, m, c.w.done)
		return sendDone
	}
	pb := getPayload(len(data))
	copy(pb.data, data)
	// The wire is where transit faults strike.
	fault.Visit(c.w.inj, fault.SiteMessage, c.rank, pb.data, len(pb.data), 1)
	m := Message{Tag: tag, Epoch: c.epoch, Data: pb.data, pb: pb}
	if cs != nil {
		m.CS = *cs
		m.HasCS = true
	}
	if !c.w.tr.Send(dst, c.rank, m, c.w.done) {
		// Aborted world: the receiver is unwinding, drop the payload.
		payloads.Put(pb)
	}
	return sendDone
}

// IsendPair is Isend with the §5 block-checksum pair generated during the
// payload capture — one fused pass over data produces both the wire copy and
// the checksums, instead of a checksum.GeneratePair sweep followed by a
// copy. The summation order matches GeneratePair exactly, so the attached
// pair is bit-identical to the separate-pass value; w must have len(data)
// weights. The pair is computed over the caller's data before the transit
// fault injector touches the copy, so a wire fault is detectable downstream.
// On the inline-serializing fast path (see Isend) the sweep is read-only:
// the checksums accumulate in the same order, and the wire encoder performs
// the only copy.
func (c *Comm) IsendPair(dst, tag int, data, w []complex128) *SendRequest {
	if c.w.inline && c.w.inj == nil && dst != c.rank {
		var d1, d2 complex128
		for j, v := range data {
			t := w[j] * v
			d1 += t
			d2 += complex(float64(j), 0) * t
		}
		m := Message{Tag: tag, Epoch: c.epoch, Data: data, CS: [2]complex128{d1, d2}, HasCS: true}
		c.w.tr.Send(dst, c.rank, m, c.w.done)
		return sendDone
	}
	pb := getPayload(len(data))
	var d1, d2 complex128
	for j, v := range data {
		pb.data[j] = v
		t := w[j] * v
		d1 += t
		d2 += complex(float64(j), 0) * t
	}
	fault.Visit(c.w.inj, fault.SiteMessage, c.rank, pb.data, len(pb.data), 1)
	m := Message{Tag: tag, Epoch: c.epoch, Data: pb.data, pb: pb, CS: [2]complex128{d1, d2}, HasCS: true}
	if !c.w.tr.Send(dst, c.rank, m, c.w.done) {
		payloads.Put(pb)
	}
	return sendDone
}

// Send is a blocking send (buffered, so it completes immediately).
func (c *Comm) Send(dst, tag int, data []complex128, cs *[2]complex128) {
	c.Isend(dst, tag, data, cs)
}

// Irecv posts a receive of exactly len(buf) elements from src under tag.
// Completion happens in Wait.
func (c *Comm) Irecv(src, tag int, buf []complex128) *RecvRequest {
	return c.IrecvPair(src, tag, buf, nil)
}

// IrecvPair is Irecv with a fused §5 verification sweep: completion computes
// the weighted checksum pair over the received elements during the single
// decode/copy pass (bit-identical to checksum.GeneratePair(w, buf) over the
// completed buffer), so the receiver can compare it against the carried pair
// without a second pass over the payload. Join with WaitPair. w must have
// len(buf) weights; nil degrades to a plain Irecv.
func (c *Comm) IrecvPair(src, tag int, buf, w []complex128) *RecvRequest {
	var r *RecvRequest
	if k := len(c.freeReqs); k > 0 {
		r = c.freeReqs[k-1]
		c.freeReqs = c.freeReqs[:k-1]
	} else {
		r = new(RecvRequest)
	}
	*r = RecvRequest{c: c, src: src, tag: tag, buf: buf, w: w}
	return r
}

// complete lands the matched message in the receive buffer — decoding raw
// wire bytes directly into it, or copying an in-process payload — fused,
// when the receive posted weights, with the §5 pair generation over the
// received elements. The pooled backing buffer (bytes or complex128s) is
// recycled, the request returns to the freelist, and the carried checksums
// are recorded.
func (r *RecvRequest) complete(m Message) {
	if m.raw != nil {
		n := min(len(r.buf), m.count)
		if r.w != nil && n == len(r.buf) && len(r.w) >= n {
			var d1, d2 complex128
			for i := 0; i < n; i++ {
				z := getComplex(m.raw, i*elemLen)
				r.buf[i] = z
				t := r.w[i] * z
				d1 += t
				d2 += complex(float64(i), 0) * t
			}
			r.pair = checksum.Pair{D1: d1, D2: d2}
		} else {
			for i := 0; i < n; i++ {
				r.buf[i] = getComplex(m.raw, i*elemLen)
			}
			if r.w != nil {
				r.pair = checksum.GeneratePair(r.w, r.buf)
			}
		}
		putWireBuf(m.rb)
	} else {
		if r.w != nil && len(m.Data) >= len(r.buf) && len(r.w) >= len(r.buf) {
			var d1, d2 complex128
			for i := range r.buf {
				z := m.Data[i]
				r.buf[i] = z
				t := r.w[i] * z
				d1 += t
				d2 += complex(float64(i), 0) * t
			}
			r.pair = checksum.Pair{D1: d1, D2: d2}
		} else {
			copy(r.buf, m.Data)
			if r.w != nil {
				r.pair = checksum.GeneratePair(r.w, r.buf)
			}
		}
		if m.pb != nil {
			payloads.Put(m.pb)
		}
	}
	r.cs, r.hasCS, r.done = m.CS, m.HasCS, true
	r.c.freeReqs = append(r.c.freeReqs, r)
}

// Wait completes the receive, returning the sender's block checksums (if
// any). It blocks until a matching message arrives or the world is aborted,
// in which case the abort cause is returned and the receive buffer is left
// untouched. Wait must be called at most once per posted receive: completion
// returns the request to the endpoint's freelist for reuse by a later Irecv.
func (r *RecvRequest) Wait() (cs [2]complex128, hasCS bool, err error) {
	cs, hasCS, _, err = r.WaitPair()
	return cs, hasCS, err
}

// WaitPair is Wait, additionally returning the locally computed §5 pair of a
// receive posted with IrecvPair (the fused verification sweep). The pair is
// meaningful only on a successful completion of a weighted receive; plain
// Irecv receives return a zero pair.
func (r *RecvRequest) WaitPair() (cs [2]complex128, hasCS bool, pair checksum.Pair, err error) {
	if r.done {
		return r.cs, r.hasCS, r.pair, nil
	}
	c := r.c
	m, ok := c.w.recvMatch(c.rank, r.src, c.epoch, r.tag)
	if !ok {
		// Drain-then-abort would race the sender; the abort cause
		// already carries the root failure, so just unwind. The
		// request is recycled like a completed one.
		err := c.w.abortError()
		r.done = true
		c.freeReqs = append(c.freeReqs, r)
		return cs, false, pair, err
	}
	r.complete(m)
	return r.cs, r.hasCS, r.pair, nil
}

// Recv is a blocking receive. It returns the abort cause if the world is
// poisoned while waiting.
func (c *Comm) Recv(src, tag int, buf []complex128) (cs [2]complex128, hasCS bool, err error) {
	return c.Irecv(src, tag, buf).Wait()
}

// Barrier blocks until every rank has entered it (or the world is aborted,
// in which case the abort cause is returned).
func (c *Comm) Barrier() error {
	if c.w.barrier.await() {
		return nil
	}
	return c.w.abortError()
}

// barrier is a reusable p-party barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	count   int
	phase   int
	aborted bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await returns true on a normal barrier release, false on abort.
func (b *barrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return false
	}
	phase := b.phase
	b.count++
	if b.count == b.p {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return true
	}
	for phase == b.phase && !b.aborted {
		b.cond.Wait()
	}
	return !b.aborted
}

// abort releases every waiter with failure.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// TransposeSchedule returns the order in which rank visits its peers during
// an all-to-all: for power-of-two p the XOR pairing (every step is a
// disjoint pairing, the classic contention-free schedule), otherwise the
// cyclic shift (rank+i) mod p.
func TransposeSchedule(rank, p int) []int {
	sched := make([]int, p)
	if p&(p-1) == 0 {
		for i := 0; i < p; i++ {
			sched[i] = rank ^ i
		}
		return sched
	}
	for i := 0; i < p; i++ {
		sched[i] = (rank + i) % p
	}
	return sched
}
