// Package mpi is the message-passing substrate for the parallel FT-FFT
// scheme — the stand-in for MPI on TIANHE-2. Ranks are goroutines inside one
// process; point-to-point messages are copied through buffered channels with
// tag matching, so the semantics the paper's Algorithm 3 relies on hold:
//
//   - Isend returns after the payload is captured (buffered send);
//   - Irecv posts a receive that Wait completes, matching (source, tag);
//   - messages carry the two per-block checksums of §5 so receivers can
//     detect and repair single corrupted elements without retransmission;
//   - an optional fault.Injector corrupts payloads in transit
//     (fault.SiteMessage), emulating link soft errors;
//   - World.Abort is the poison-pill broadcast: a rank that fails
//     mid-collective poisons the world so every blocked receive and barrier
//     returns the abort cause instead of deadlocking — this is how a rank
//     that exhausts its retry budget surfaces as an error to its peers, and
//     how context cancellation reaches ranks parked in Recv.
//
// The runtime is deliberately simple but honest about data movement: every
// send copies its payload, as a NIC would. The copy lands in a pooled buffer
// that is recycled once the matching receive completes, so a World in steady
// state moves data without allocating.
//
// A World is built once and reused across any number of communication
// rounds (the plan-once/execute-many contract): endpoints are created at
// construction and Endpoint returns the same *Comm for a given rank every
// time. A Comm must only ever be used by one goroutine at a time.
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"ftfft/internal/fault"
)

// ErrAborted is returned from receives that were unblocked by a world abort
// when no more specific cause was recorded.
var ErrAborted = errors.New("mpi: world aborted")

// payload is a pooled message body. Boxing the slice keeps the sync.Pool
// round-trip allocation-free (the pool stores the same *payload forever).
type payload struct {
	data []complex128
}

// message is one tagged payload in flight.
type message struct {
	tag   int
	buf   *payload
	cs    [2]complex128 // per-block checksums (D1, D2); zero when unused
	hasCS bool
}

// World owns the mailboxes of a p-rank communicator.
type World struct {
	p     int
	inbox [][]chan message // inbox[dst][src]
	inj   fault.Injector

	barrier   *barrier
	endpoints []*Comm
	payloads  sync.Pool // of *payload, recycled by completed receives

	// Abort support: the poison-pill broadcast that turns a stuck
	// collective into an error. abortErr is written exactly once, before
	// done is closed, so any reader that observed the closed channel sees
	// the recorded cause.
	done      chan struct{}
	abortOnce sync.Once
	abortErr  error
}

// NewWorld creates a communicator with p ranks. inj, when non-nil, corrupts
// message payloads in transit.
func NewWorld(p int, inj fault.Injector) *World {
	if p < 1 {
		panic("mpi: world size must be ≥ 1")
	}
	w := &World{p: p, inj: inj, barrier: newBarrier(p), done: make(chan struct{})}
	w.payloads.New = func() any { return new(payload) }
	w.inbox = make([][]chan message, p)
	for dst := 0; dst < p; dst++ {
		w.inbox[dst] = make([]chan message, p)
		for src := 0; src < p; src++ {
			// Deep buffering: sends never block in this in-process model.
			w.inbox[dst][src] = make(chan message, 64)
		}
	}
	w.endpoints = make([]*Comm, p)
	for r := 0; r < p; r++ {
		w.endpoints[r] = &Comm{w: w, rank: r, pending: make([][]message, p)}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// Abort poisons the world: every blocked or future receive and barrier wait
// returns cause (ErrAborted when cause is nil) instead of waiting forever.
// The first cause wins; later calls are no-ops. A rank that fails
// mid-collective calls Abort so its peers unwind instead of deadlocking —
// the poison-pill broadcast the blocking substrate otherwise lacks.
func (w *World) Abort(cause error) {
	w.abortOnce.Do(func() {
		if cause == nil {
			cause = ErrAborted
		}
		w.abortErr = cause
		close(w.done)
		w.barrier.abort()
	})
}

// Aborted reports whether the world has been poisoned.
func (w *World) Aborted() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// AbortCause returns the recorded abort cause, or nil if the world has not
// been aborted.
func (w *World) AbortCause() error {
	select {
	case <-w.done:
		return w.abortErr
	default:
		return nil
	}
}

// abortError returns the recorded cause; it must only be called after
// observing the closed done channel.
func (w *World) abortError() error { return w.abortErr }

// getPayload returns a pooled buffer holding exactly n elements.
func (w *World) getPayload(n int) *payload {
	pb := w.payloads.Get().(*payload)
	if cap(pb.data) < n {
		pb.data = make([]complex128, n)
	}
	pb.data = pb.data[:n]
	return pb
}

// Comm is one rank's endpoint. A Comm must be used by a single goroutine.
type Comm struct {
	w    *World
	rank int
	// pending holds messages popped while searching for a tag match.
	pending [][]message
	// freeReqs recycles completed RecvRequests (single-goroutine freelist).
	freeReqs []*RecvRequest
}

// Rank returns this endpoint's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.w.p }

// Run spawns body on p ranks of a fresh world and waits for all of them; the
// first non-nil error is returned. Callers that transform repeatedly should
// instead hold a World and drive its persistent Endpoints directly.
func Run(p int, inj fault.Injector, body func(c *Comm) error) error {
	w := NewWorld(p, inj)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(w.Endpoint(rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Endpoint returns rank r's Comm. Repeated calls return the same endpoint;
// its pending-message state persists across communication rounds.
func (w *World) Endpoint(r int) *Comm {
	if r < 0 || r >= w.p {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, w.p))
	}
	return w.endpoints[r]
}

// SendRequest tracks an in-flight send.
type SendRequest struct{ done bool }

// sendDone is the completed send: buffered sends finish inside Isend, so one
// immutable request serves every send without allocating.
var sendDone = &SendRequest{done: true}

// RecvRequest tracks a posted receive. Wait must be called exactly once per
// posted receive; after Wait returns, the request is recycled and must not
// be touched again.
type RecvRequest struct {
	c     *Comm
	src   int
	tag   int
	buf   []complex128
	cs    [2]complex128
	hasCS bool
	done  bool
}

// Isend sends len(data) elements of data to dst under tag, copying the
// payload into a pooled buffer (and letting the world's injector corrupt the
// copy in transit). It never blocks in this in-process model. cs carries the
// optional block checksums.
func (c *Comm) Isend(dst, tag int, data []complex128, cs *[2]complex128) *SendRequest {
	pb := c.w.getPayload(len(data))
	copy(pb.data, data)
	// The wire is where transit faults strike.
	fault.Visit(c.w.inj, fault.SiteMessage, c.rank, pb.data, len(pb.data), 1)
	m := message{tag: tag, buf: pb}
	if cs != nil {
		m.cs = *cs
		m.hasCS = true
	}
	select {
	case c.w.inbox[dst][c.rank] <- m:
	case <-c.w.done:
		// Aborted world: the receiver is unwinding, drop the payload.
		c.w.payloads.Put(pb)
	}
	return sendDone
}

// Send is a blocking send (buffered, so it completes immediately).
func (c *Comm) Send(dst, tag int, data []complex128, cs *[2]complex128) {
	c.Isend(dst, tag, data, cs)
}

// Irecv posts a receive of exactly len(buf) elements from src under tag.
// Completion happens in Wait.
func (c *Comm) Irecv(src, tag int, buf []complex128) *RecvRequest {
	var r *RecvRequest
	if k := len(c.freeReqs); k > 0 {
		r = c.freeReqs[k-1]
		c.freeReqs = c.freeReqs[:k-1]
	} else {
		r = new(RecvRequest)
	}
	*r = RecvRequest{c: c, src: src, tag: tag, buf: buf}
	return r
}

// complete copies the matched message into the receive buffer, recycles the
// payload and the request, and records the carried checksums.
func (r *RecvRequest) complete(m message) {
	copy(r.buf, m.buf.data)
	r.c.w.payloads.Put(m.buf)
	r.cs, r.hasCS, r.done = m.cs, m.hasCS, true
	r.c.freeReqs = append(r.c.freeReqs, r)
}

// Wait completes the receive, returning the sender's block checksums (if
// any). It blocks until a matching message arrives or the world is aborted,
// in which case the abort cause is returned and the receive buffer is left
// untouched. Wait must be called at most once per posted receive: completion
// returns the request to the endpoint's freelist for reuse by a later Irecv.
func (r *RecvRequest) Wait() (cs [2]complex128, hasCS bool, err error) {
	if r.done {
		return r.cs, r.hasCS, nil
	}
	c := r.c
	// First scan messages already popped for other tags.
	q := c.pending[r.src]
	for i, m := range q {
		if m.tag == r.tag {
			c.pending[r.src] = append(q[:i], q[i+1:]...)
			r.complete(m)
			return r.cs, r.hasCS, nil
		}
	}
	for {
		select {
		case m := <-c.w.inbox[c.rank][r.src]:
			if m.tag == r.tag {
				r.complete(m)
				return r.cs, r.hasCS, nil
			}
			c.pending[r.src] = append(c.pending[r.src], m)
		case <-c.w.done:
			// Drain-then-abort would race the sender; the abort cause
			// already carries the root failure, so just unwind. The
			// request is recycled like a completed one.
			err := c.w.abortError()
			r.done = true
			c.freeReqs = append(c.freeReqs, r)
			return cs, false, err
		}
	}
}

// Recv is a blocking receive. It returns the abort cause if the world is
// poisoned while waiting.
func (c *Comm) Recv(src, tag int, buf []complex128) (cs [2]complex128, hasCS bool, err error) {
	return c.Irecv(src, tag, buf).Wait()
}

// Barrier blocks until every rank has entered it (or the world is aborted,
// in which case the abort cause is returned).
func (c *Comm) Barrier() error {
	if c.w.barrier.await() {
		return nil
	}
	return c.w.abortError()
}

// barrier is a reusable p-party barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	count   int
	phase   int
	aborted bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await returns true on a normal barrier release, false on abort.
func (b *barrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return false
	}
	phase := b.phase
	b.count++
	if b.count == b.p {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return true
	}
	for phase == b.phase && !b.aborted {
		b.cond.Wait()
	}
	return !b.aborted
}

// abort releases every waiter with failure.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// TransposeSchedule returns the order in which rank visits its peers during
// an all-to-all: for power-of-two p the XOR pairing (every step is a
// disjoint pairing, the classic contention-free schedule), otherwise the
// cyclic shift (rank+i) mod p.
func TransposeSchedule(rank, p int) []int {
	sched := make([]int, p)
	if p&(p-1) == 0 {
		for i := 0; i < p; i++ {
			sched[i] = rank ^ i
		}
		return sched
	}
	for i := 0; i < p; i++ {
		sched[i] = (rank + i) % p
	}
	return sched
}
