package mpi

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// roundTripServe pushes one encoded frame through ReadServeFrame.
func roundTripServe(t *testing.T, frame []byte, maxElems int) (ServeFrame, []byte) {
	t.Helper()
	f, body, err := ReadServeFrame(bytes.NewReader(frame), nil, maxElems)
	if err != nil {
		t.Fatalf("ReadServeFrame: %v", err)
	}
	return f, body
}

func TestServeRequestRoundTrip(t *testing.T) {
	nan := math.Float64frombits(0x7ff8dead_beef0001)
	cases := []struct {
		name string
		req  ServeRequest
	}{
		{"complex", ServeRequest{
			ID: 41, Op: OpForward, Protection: 3, N: 4,
			Data: []complex128{1 + 2i, complex(nan, -0.0), 3, -4i},
		}},
		{"complex-cs", ServeRequest{
			ID: 42, Op: OpInverse, Protection: 5, N: 2,
			Data: []complex128{7, 8i},
			CS:   [2]complex128{complex(nan, 1), -2i}, HasCS: true,
		}},
		{"nd", ServeRequest{
			ID: 43, Op: OpForward, Protection: 1, N: 8,
			Dims: []int{2, 4},
			Data: make([]complex128, 8),
		}},
		{"real", ServeRequest{
			ID: 44, Op: OpRealForward, Protection: 2, N: 6,
			Real: []float64{1, -2, nan, math.Copysign(0, -1), 5, 6},
			CS:   [2]complex128{1, 2}, HasCS: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame, payloadOff := AppendServeRequest(nil, &tc.req)
			if payloadOff <= frameHeaderLen || payloadOff >= len(frame) {
				t.Fatalf("payload offset %d outside frame of %d bytes", payloadOff, len(frame))
			}
			f, body := roundTripServe(t, frame, 64)
			if f.Type != ServeFrameRequest || f.ID != tc.req.ID {
				t.Fatalf("frame header %+v", f)
			}
			got, err := DecodeServeRequest(f, body)
			if err != nil {
				t.Fatalf("DecodeServeRequest: %v", err)
			}
			defer got.Release()
			if got.Op != tc.req.Op || got.Protection != tc.req.Protection || got.N != tc.req.N {
				t.Fatalf("meta mismatch: got %+v", got)
			}
			if len(got.Dims) != len(tc.req.Dims) {
				t.Fatalf("dims %v, want %v", got.Dims, tc.req.Dims)
			}
			for i := range got.Dims {
				if got.Dims[i] != tc.req.Dims[i] {
					t.Fatalf("dims %v, want %v", got.Dims, tc.req.Dims)
				}
			}
			if got.HasCS != tc.req.HasCS || !bitsEqualPair(got.CS, tc.req.CS, tc.req.HasCS) {
				t.Fatalf("checksums %v, want %v", got.CS, tc.req.CS)
			}
			if len(got.Data) != len(tc.req.Data) || len(got.Real) != len(tc.req.Real) {
				t.Fatalf("payload lengths %d/%d, want %d/%d",
					len(got.Data), len(got.Real), len(tc.req.Data), len(tc.req.Real))
			}
			for i := range got.Data {
				if !bitsEqual(got.Data[i], tc.req.Data[i]) {
					t.Fatalf("data[%d] = %v, want %v (bit-exact)", i, got.Data[i], tc.req.Data[i])
				}
			}
			for i := range got.Real {
				if math.Float64bits(got.Real[i]) != math.Float64bits(tc.req.Real[i]) {
					t.Fatalf("real[%d] = %v, want %v (bit-exact)", i, got.Real[i], tc.req.Real[i])
				}
			}
		})
	}
}

func bitsEqualPair(a, b [2]complex128, has bool) bool {
	if !has {
		return true
	}
	return bitsEqual(a[0], b[0]) && bitsEqual(a[1], b[1])
}

func TestServeResponseRoundTrip(t *testing.T) {
	want := ServeResponse{
		ID: 77,
		Report: ServeReport{
			Detections: 2, CompRecomputations: 1, MemCorrections: 1,
			TwiddleCorrections: 3, FullRestarts: 1,
		},
		Data: []complex128{1 + 1i, complex(0, math.Inf(1)), -3},
		CS:   [2]complex128{9, -9i}, HasCS: true,
	}
	frame, _ := AppendServeResponse(nil, &want)
	f, body := roundTripServe(t, frame, 64)
	got, err := DecodeServeResponseInto(f, body, make([]complex128, f.Count), nil)
	if err != nil {
		t.Fatalf("DecodeServeResponseInto: %v", err)
	}
	if got.ID != want.ID || got.Report != want.Report || !got.HasCS {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range got.Data {
		if !bitsEqual(got.Data[i], want.Data[i]) {
			t.Fatalf("data[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}

	realResp := ServeResponse{
		ID:     78,
		Report: ServeReport{Uncorrectable: true},
		Real:   []float64{0.5, -1.5, 2.5, -3.5},
	}
	frame, _ = AppendServeResponse(nil, &realResp)
	f, body = roundTripServe(t, frame, 64)
	got, err = DecodeServeResponseInto(f, body, nil, make([]float64, f.Count))
	if err != nil {
		t.Fatalf("DecodeServeResponseInto(real): %v", err)
	}
	if !got.Report.Uncorrectable || len(got.Real) != 4 || got.Real[3] != -3.5 {
		t.Fatalf("real response: %+v", got)
	}
}

func TestServeErrorRoundTrip(t *testing.T) {
	frame := AppendServeError(nil, 13, true, false, "two corrupted elements")
	f, body := roundTripServe(t, frame, 64)
	if f.Type != ServeFrameError || f.ID != 13 {
		t.Fatalf("frame header %+v", f)
	}
	msg, unc, unavail := DecodeServeError(f, body)
	if msg != "two corrupted elements" || !unc || unavail {
		t.Fatalf("decoded %q unc=%v unavail=%v", msg, unc, unavail)
	}

	frame = AppendServeError(nil, 14, false, true, "draining")
	f, body = roundTripServe(t, frame, 64)
	_, unc, unavail = DecodeServeError(f, body)
	if unc || !unavail {
		t.Fatalf("drain error decoded unc=%v unavail=%v", unc, unavail)
	}

	// Oversized messages are truncated, never overflow the control bound.
	frame = AppendServeError(nil, 15, false, false, strings.Repeat("x", maxControlPayload+100))
	f, _ = roundTripServe(t, frame, 64)
	if f.Count != maxControlPayload {
		t.Fatalf("oversized error message count %d, want %d", f.Count, maxControlPayload)
	}
}

func TestServeHandshakeRoundTrip(t *testing.T) {
	f, body := roundTripServe(t, AppendServeHello(nil), 64)
	if f.Type != ServeFrameHello || !IsServeHello(body) {
		t.Fatalf("hello frame %+v payload %q", f, body)
	}

	f, body = roundTripServe(t, AppendServeWelcome(nil, 1<<20), 64)
	if f.Type != ServeFrameHello {
		t.Fatalf("welcome frame %+v", f)
	}
	limit, err := DecodeServeWelcome(body)
	if err != nil || limit != 1<<20 {
		t.Fatalf("welcome limit %d err %v", limit, err)
	}
	if _, err := DecodeServeWelcome([]byte("HTTP/1.1 400")); err == nil {
		t.Fatal("non-service welcome accepted")
	}

	f, _ = roundTripServe(t, AppendServeGoodbye(nil), 64)
	if f.Type != ServeFrameGoodbye {
		t.Fatalf("goodbye frame %+v", f)
	}
}

// TestServeFrameRejects drives hostile frames through the bounds-validated
// decoder: every one must fail cleanly, never panic.
func TestServeFrameRejects(t *testing.T) {
	valid, _ := AppendServeRequest(nil, &ServeRequest{
		ID: 1, Op: OpForward, Protection: 0, N: 2, Data: []complex128{1, 2},
	})
	mutate := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"oversized", mutate(func(b []byte) { b[16] = 0xff; b[17] = 0xff })}, // count field
		{"zero-count", mutate(func(b []byte) { b[16], b[17], b[18], b[19] = 0, 0, 0, 0 })},
		{"bad-flags", mutate(func(b []byte) { b[1] = 0x80 })},
		{"nonzero-src", mutate(func(b []byte) { b[8] = 1 })},
		{"truncated", valid[:len(valid)-3]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadServeFrame(bytes.NewReader(tc.frame), nil, 64); err == nil {
				t.Fatal("hostile frame accepted")
			}
		})
	}

	// Meta-level rejects: frame passes header validation, decode refuses.
	f, body := roundTripServe(t, valid, 64)
	metaCases := []struct {
		name string
		mut  func(b []byte)
	}{
		{"reserved-meta", func(b []byte) { b[3] = 1 }},
		{"too-many-dims", func(b []byte) { b[2] = MaxServeDims + 1 }},
		{"dirty-dim-slot", func(b []byte) { b[8+4*7] = 1 }},
	}
	for _, tc := range metaCases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), body...)
			tc.mut(b)
			if _, err := DecodeServeRequest(f, b); err == nil {
				t.Fatal("hostile request meta accepted")
			}
		})
	}
}
