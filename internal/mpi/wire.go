// wire.go is the byte-level message codec beneath the socket transports: a
// framed binary protocol carrying the same tagged, checksummed complex128
// payloads the in-process channel wire moves, plus the control frames a
// multi-process world needs (handshake, job metadata, abort, shutdown).
//
// Frame layout (all integers little-endian):
//
//	off  0  u8   type      (frameData, frameAbort, frameGoodbye, frameConfig, frameHello, framePeers, framePeerHello)
//	off  1  u8   flags     (bit 0: block checksums present)
//	off  2  u16  reserved  (0)
//	off  4  u32  tag
//	off  8  u32  src
//	off 12  u32  dst
//	off 16  u32  count     (data: complex128 elements; control: payload bytes)
//	off 20  u32  epoch     (data frames only; must be 0 on every other type)
//
// The epoch field is the protocol's one versioned widening: FTFFT/1 as
// originally shipped required offset 20 to be zero on every frame, so an old
// decoder confronted with a pipelined (nonzero-epoch) data frame rejects it
// loudly instead of silently mismatching transforms. Control and service
// frames keep the strict-zero rule, preserving the reserved space.
//
//	[32 bytes]     2 × complex128 block checksums, when flags bit 0
//	payload        count × 16 bytes (float64 re, float64 im bits) for
//	               data frames; count raw bytes for control frames
//
// complex128 elements are serialized as the IEEE-754 bit patterns of their
// real and imaginary parts, so a round trip is bit-exact for every value,
// including negative zeros, infinities and NaN payloads — the bit-for-bit
// equality guarantee between in-process and multi-process runs rests on
// this. Encode and decode work through pooled buffers so a steady-state
// exchange performs no per-message allocation.
package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
)

// Frame types. The service frames (6–8) live in servewire.go.
const (
	frameData    = 1 // a tagged rank-to-rank message
	frameAbort   = 2 // poison pill; payload is the cause, as UTF-8
	frameGoodbye = 3 // clean shutdown from the root process
	frameConfig  = 4 // hub → worker: rank assignment + WorldMeta
	frameHello   = 5 // worker → hub (or client → server): protocol magic

	// Mesh control frames (9–10): the hub hands each worker its peers'
	// advertised listen addresses; workers then dial each other directly and
	// identify themselves with a peer hello. Both are control frames (epoch
	// stays strict-zero) so a v1-era decoder rejects nothing it used to accept.
	framePeers     = 9  // hub → worker: newline-separated rank:addr list
	framePeerHello = 10 // worker → worker: dialing rank (src) introduces itself
)

const (
	frameHeaderLen = 24
	checksumLen    = 32 // 2 × complex128
	elemLen        = 16 // 1 × complex128

	// flagHasCS marks a data frame carrying the two §5 block checksums.
	flagHasCS = 1

	// wireMagic is the hello payload; a version bump changes the suffix.
	wireMagic = "FTFFT/1"

	// maxControlPayload bounds control-frame payloads (error strings,
	// metadata) so a corrupt or hostile peer cannot force a huge allocation.
	maxControlPayload = 1 << 16
)

// frameHeader is one decoded frame header.
type frameHeader struct {
	typ   byte
	flags byte
	tag   int
	src   int
	dst   int
	count int
	epoch uint32 // data frames only; zero on control/service frames
}

// putHeader encodes h into buf[:frameHeaderLen].
func putHeader(buf []byte, h frameHeader) {
	buf[0] = h.typ
	buf[1] = h.flags
	binary.LittleEndian.PutUint16(buf[2:], 0)
	binary.LittleEndian.PutUint32(buf[4:], uint32(h.tag))
	binary.LittleEndian.PutUint32(buf[8:], uint32(h.src))
	binary.LittleEndian.PutUint32(buf[12:], uint32(h.dst))
	binary.LittleEndian.PutUint32(buf[16:], uint32(h.count))
	binary.LittleEndian.PutUint32(buf[20:], h.epoch)
	_ = buf[frameHeaderLen-1]
}

// parseHeader decodes and validates buf[:frameHeaderLen]. maxElems bounds a
// data frame's element count (a world-size-derived limit); control frames
// are bounded by maxControlPayload. parseHeader never panics on arbitrary
// bytes — the fuzz target FuzzFrameDecode holds it to that.
func parseHeader(buf []byte, p, maxElems int) (frameHeader, error) {
	if len(buf) < frameHeaderLen {
		return frameHeader{}, fmt.Errorf("mpi: short frame header: %d bytes", len(buf))
	}
	h := frameHeader{
		typ:   buf[0],
		flags: buf[1],
		tag:   int(binary.LittleEndian.Uint32(buf[4:])),
		src:   int(binary.LittleEndian.Uint32(buf[8:])),
		dst:   int(binary.LittleEndian.Uint32(buf[12:])),
		count: int(binary.LittleEndian.Uint32(buf[16:])),
		epoch: binary.LittleEndian.Uint32(buf[20:]),
	}
	// Reserved fields must be zero: the codec is strict, so decode∘encode is
	// the identity on every accepted frame (no information the re-encoder
	// would silently drop) and the reserved space stays usable for future
	// protocol versions. Offset 20 was reserved in the original FTFFT/1 and is
	// now the data-frame epoch — the one deliberate widening — so nonzero
	// values stay rejected on every other frame type.
	if binary.LittleEndian.Uint16(buf[2:]) != 0 {
		return h, fmt.Errorf("mpi: nonzero reserved header fields")
	}
	if h.typ != frameData && h.epoch != 0 {
		return h, fmt.Errorf("mpi: nonzero epoch on non-data frame type %d", h.typ)
	}
	switch h.typ {
	case frameData:
		if h.src < 0 || h.src >= p || h.dst < 0 || h.dst >= p {
			return h, fmt.Errorf("mpi: data frame ranks %d→%d out of range [0,%d)", h.src, h.dst, p)
		}
		if h.count < 0 || h.count > maxElems {
			return h, fmt.Errorf("mpi: data frame payload %d elements exceeds limit %d", h.count, maxElems)
		}
		if h.flags&^flagHasCS != 0 {
			return h, fmt.Errorf("mpi: unknown data frame flags %#x", h.flags)
		}
	case frameAbort, frameGoodbye, frameConfig, frameHello, framePeers, framePeerHello:
		if h.count < 0 || h.count > maxControlPayload {
			return h, fmt.Errorf("mpi: control frame payload %d bytes exceeds limit %d", h.count, maxControlPayload)
		}
	case frameRequest, frameResponse:
		if h.src != 0 || h.dst != 0 {
			return h, fmt.Errorf("mpi: service frame with nonzero ranks %d→%d", h.src, h.dst)
		}
		if h.flags&^(flagHasCS|flagReal) != 0 {
			return h, fmt.Errorf("mpi: unknown service frame flags %#x", h.flags)
		}
		if h.count < 1 || serveElems(h.flags, h.count) > maxElems {
			return h, fmt.Errorf("mpi: service frame payload %d elements outside [1,%d]", h.count, maxElems)
		}
	case frameError:
		if h.src != 0 || h.dst != 0 {
			return h, fmt.Errorf("mpi: service frame with nonzero ranks %d→%d", h.src, h.dst)
		}
		if h.flags&^(flagUncorrectable|flagUnavailable) != 0 {
			return h, fmt.Errorf("mpi: unknown error frame flags %#x", h.flags)
		}
		if h.count < 0 || h.count > maxControlPayload {
			return h, fmt.Errorf("mpi: control frame payload %d bytes exceeds limit %d", h.count, maxControlPayload)
		}
	default:
		return h, fmt.Errorf("mpi: unknown frame type %d", h.typ)
	}
	return h, nil
}

// payloadBytes returns the number of bytes following the header for h.
func (h frameHeader) payloadBytes() int {
	n := h.count
	switch h.typ {
	case frameData:
		n *= elemLen
		if h.flags&flagHasCS != 0 {
			n += checksumLen
		}
	case frameRequest, frameResponse:
		if h.flags&flagReal != 0 {
			n *= 8
		} else {
			n *= elemLen
		}
		if h.flags&flagHasCS != 0 {
			n += checksumLen
		}
		if h.typ == frameRequest {
			n += serveReqMetaLen
		} else {
			n += serveRespMetaLen
		}
	}
	return n
}

// putComplex encodes z at buf[off:off+16].
func putComplex(buf []byte, off int, z complex128) {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(real(z)))
	binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(imag(z)))
}

// getComplex decodes the element at buf[off:off+16].
func getComplex(buf []byte, off int) complex128 {
	re := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
	im := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
	return complex(re, im)
}

// wireBuf is a pooled frame-byte buffer. Buffers are pooled by size class
// (power-of-two capacities), so a frame of any size aliases a recycled
// buffer of the next class up instead of allocating — the byte-level
// counterpart of the complex128 payload pool.
type wireBuf struct {
	data []byte
}

// wireBufMinShift is the smallest size class (64 bytes); classes above it
// double. Class i holds buffers of capacity 1 << (wireBufMinShift + i).
const (
	wireBufMinShift = 6
	wireBufClasses  = 26 // up to 2 GiB, far beyond any validated frame
)

var wireBufPools [wireBufClasses]sync.Pool

// wireBufClass returns the size class whose capacity holds n bytes.
func wireBufClass(n int) int {
	if n <= 1<<wireBufMinShift {
		return 0
	}
	return bits.Len(uint(n-1)) - wireBufMinShift
}

// getWireBuf returns a pooled byte buffer with at least n bytes of capacity,
// sliced to length n.
func getWireBuf(n int) *wireBuf {
	c := wireBufClass(n)
	wb, _ := wireBufPools[c].Get().(*wireBuf)
	if wb == nil {
		wb = &wireBuf{data: make([]byte, 1<<(wireBufMinShift+c))}
	}
	wb.data = wb.data[:n]
	return wb
}

// putWireBuf recycles a buffer into its size class. nil is a no-op, so
// callers can release unconditionally.
func putWireBuf(wb *wireBuf) {
	if wb == nil {
		return
	}
	wb.data = wb.data[:cap(wb.data)]
	wireBufPools[wireBufClass(len(wb.data))].Put(wb)
}

// readHeader reads and validates one frame header from r into the
// caller-owned scratch buffer (≥ frameHeaderLen bytes); see parseHeader for
// the bounds p and maxElems enforce. The scratch parameter exists because a
// function-local array would escape through the io.Reader interface call —
// one heap allocation per frame on the receive hot path — whereas a buffer
// hoisted outside the caller's read loop escapes once per connection.
func readHeader(r io.Reader, scratch []byte, p, maxElems int) (frameHeader, error) {
	hdr := scratch[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return frameHeader{}, err
	}
	return parseHeader(hdr, p, maxElems)
}

// readBody reads h's body into body (grown as needed) and returns it.
func readBody(r io.Reader, body []byte, h frameHeader) ([]byte, error) {
	nb := h.payloadBytes()
	if cap(body) < nb {
		body = make([]byte, nb)
	}
	body = body[:nb]
	_, err := io.ReadFull(r, body)
	return body, err
}

// readDataBody reads a data frame's body into a pooled buffer and returns a
// raw message: the checksums are split out, but the element bytes stay
// serialized, owned by the message, and are decoded directly into the
// destination workspace at the matching receive (decode-in-place) — the
// intermediate complex128 materialization and its copy are gone. The pooled
// buffer is recycled when the receive completes; a caller that cannot
// deliver m must release it with putWireBuf(m.rb).
func readDataBody(r io.Reader, h frameHeader) (Message, error) {
	rb := getWireBuf(h.payloadBytes())
	body := rb.data
	if _, err := io.ReadFull(r, body); err != nil {
		putWireBuf(rb)
		return Message{}, err
	}
	m := Message{Tag: h.tag, Epoch: h.epoch, count: h.count, rb: rb}
	off := 0
	if h.flags&flagHasCS != 0 {
		m.CS[0] = getComplex(body, 0)
		m.CS[1] = getComplex(body, elemLen)
		m.HasCS = true
		off = checksumLen
	}
	m.raw = body[off:]
	return m, nil
}

// encodeDataFrame serializes m as a data frame from src to dst into buf
// (grown as needed) and returns the full frame. The payload region starts at
// payloadOff, so wire-level fault hooks can corrupt the serialized elements
// without touching the header or checksums.
func encodeDataFrame(buf []byte, dst, src int, m Message) (frame []byte, payloadOff int) {
	h := frameHeader{typ: frameData, tag: m.Tag, src: src, dst: dst, count: len(m.Data), epoch: m.Epoch}
	if m.HasCS {
		h.flags = flagHasCS
	}
	total := frameHeaderLen + h.payloadBytes()
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	putHeader(buf, h)
	off := frameHeaderLen
	if m.HasCS {
		putComplex(buf, off, m.CS[0])
		putComplex(buf, off+elemLen, m.CS[1])
		off += checksumLen
	}
	payloadOff = off
	for _, z := range m.Data {
		putComplex(buf, off, z)
		off += elemLen
	}
	return buf, payloadOff
}

// decodeDataBody materializes a Message from a data frame's body (the bytes
// after the header), drawing the payload from the shared pool — the matching
// receive recycles it, exactly like an in-process send.
func decodeDataBody(h frameHeader, body []byte) (Message, error) {
	if len(body) != h.payloadBytes() {
		return Message{}, fmt.Errorf("mpi: data frame body %d bytes, want %d", len(body), h.payloadBytes())
	}
	m := Message{Tag: h.tag, Epoch: h.epoch}
	off := 0
	if h.flags&flagHasCS != 0 {
		m.CS[0] = getComplex(body, 0)
		m.CS[1] = getComplex(body, elemLen)
		m.HasCS = true
		off = checksumLen
	}
	pb := getPayload(h.count)
	for i := 0; i < h.count; i++ {
		pb.data[i] = getComplex(body, off)
		off += elemLen
	}
	m.Data, m.pb = pb.data, pb
	return m, nil
}

// encodeControlFrame serializes a control frame with a raw byte payload.
func encodeControlFrame(buf []byte, typ byte, payload []byte) []byte {
	total := frameHeaderLen + len(payload)
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	putHeader(buf, frameHeader{typ: typ, count: len(payload)})
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// configPayloadLen is the fixed size of a frameConfig payload:
// u32 rank, u32 p, u64 n, u8 scheme flags, 3 pad bytes, u32 maxRetries
// (full width — a truncated retry budget would silently diverge the worker's
// scheme from the root's), f64 eta.
const configPayloadLen = 4 + 4 + 8 + 1 + 3 + 4 + 8

// encodeConfig serializes the worker's rank assignment plus the job metadata.
func encodeConfig(rank int, meta WorldMeta) []byte {
	buf := make([]byte, configPayloadLen)
	binary.LittleEndian.PutUint32(buf[0:], uint32(rank))
	binary.LittleEndian.PutUint32(buf[4:], uint32(meta.P))
	binary.LittleEndian.PutUint64(buf[8:], uint64(meta.N))
	var flags byte
	if meta.Protected {
		flags |= 1
	}
	if meta.Optimized {
		flags |= 2
	}
	buf[16] = flags
	binary.LittleEndian.PutUint32(buf[20:], uint32(meta.MaxRetries))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(meta.EtaScale))
	return buf
}

// decodeConfig parses a frameConfig payload.
func decodeConfig(buf []byte) (rank int, meta WorldMeta, err error) {
	if len(buf) != configPayloadLen {
		return 0, meta, fmt.Errorf("mpi: config payload %d bytes, want %d", len(buf), configPayloadLen)
	}
	rank = int(binary.LittleEndian.Uint32(buf[0:]))
	meta.P = int(binary.LittleEndian.Uint32(buf[4:]))
	meta.N = int(binary.LittleEndian.Uint64(buf[8:]))
	meta.Protected = buf[16]&1 != 0
	meta.Optimized = buf[16]&2 != 0
	meta.MaxRetries = int(binary.LittleEndian.Uint32(buf[20:]))
	meta.EtaScale = math.Float64frombits(binary.LittleEndian.Uint64(buf[24:]))
	if meta.P < 1 || rank < 0 || rank >= meta.P || meta.N < 1 {
		return 0, meta, fmt.Errorf("mpi: config rank %d / p %d / n %d out of range", rank, meta.P, meta.N)
	}
	return rank, meta, nil
}

// readFrame reads one complete frame (header + body) from r, reusing body
// (grown as needed) as scratch for the header bytes too, so a caller that
// threads body through a read loop stays allocation-free in steady state.
// p and maxElems bound data frames; see parseHeader. It never panics on
// arbitrary input and never allocates beyond the declared (validated)
// payload size.
func readFrame(r io.Reader, body []byte, p, maxElems int) (frameHeader, []byte, error) {
	if cap(body) < frameHeaderLen {
		body = make([]byte, frameHeaderLen)
	}
	h, err := readHeader(r, body[:frameHeaderLen], p, maxElems)
	if err != nil {
		return h, body, err
	}
	b, err := readBody(r, body, h)
	return h, b, err
}
