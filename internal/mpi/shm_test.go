package mpi

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startShmWorld builds a p-rank shared-memory world inside this test
// process: the hub hosts rank 0 and the workers attach to the same ring
// file, so the mapping, record framing, and handshake are exactly what the
// real multi-process run exercises (the root package's distributed tests
// cover that). Workers are returned sorted by rank.
func startShmWorld(t *testing.T, p int, meta WorldMeta) (hub *ShmHubTransport, hubW *World, workers []*ShmWorkerTransport, workerWs []*World) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "world.ring")
	hub, err := CreateShmHub(path, p)
	if err != nil {
		t.Fatal(err)
	}
	hubW = NewWorldTransport(p, nil, hub)
	workers = make([]*ShmWorkerTransport, p)
	workerWs = make([]*World, p)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 1; i < p; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wt, m, err := DialShmWorker(path)
			if err != nil {
				t.Errorf("worker dial: %v", err)
				return
			}
			w := NewWorldTransport(m.P, nil, wt)
			mu.Lock()
			workers[wt.Rank()] = wt
			workerWs[wt.Rank()] = w
			mu.Unlock()
		}()
	}
	if err := hub.ConfigureWorld(meta); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return hub, hubW, workers[1:], workerWs[1:]
}

// TestShmPointToPoint sends checksummed payloads hub→worker and worker→hub
// through the rings and checks data, checksums, and tag matching survive.
func TestShmPointToPoint(t *testing.T) {
	hub, hubW, _, workerWs := startShmWorld(t, 2, WorldMeta{N: 64, P: 2})
	defer hub.Close()
	c0 := hubW.Endpoint(0)
	c1 := workerWs[0].Endpoint(1)

	data := []complex128{1 + 2i, -3, 4i}
	cs := [2]complex128{5, 6i}
	c0.Send(1, 7, data, &cs)
	buf := make([]complex128, 3)
	gotCS, has, err := c1.Recv(0, 7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !has || gotCS != cs {
		t.Fatalf("checksums lost in transit: %v has=%v", gotCS, has)
	}
	for i, want := range data {
		if buf[i] != want {
			t.Fatalf("payload[%d] = %v, want %v", i, buf[i], want)
		}
	}

	c1.Send(0, 9, []complex128{42}, nil)
	back := make([]complex128, 1)
	if _, _, err := c0.Recv(1, 9, back); err != nil {
		t.Fatal(err)
	}
	if back[0] != 42 {
		t.Fatalf("return payload %v", back[0])
	}
}

// TestShmRingWrap pushes far more traffic through one ring than it holds, so
// records wrap the ring edge many times; every payload must arrive intact
// and in order.
func TestShmRingWrap(t *testing.T) {
	hub, hubW, _, workerWs := startShmWorld(t, 2, WorldMeta{N: 64, P: 2})
	defer hub.Close()
	c0 := hubW.Endpoint(0)
	c1 := workerWs[0].Endpoint(1)

	const msgs = 4096 // ≫ ring capacity / max frame: many wraps
	rng := rand.New(rand.NewSource(11))
	sizes := make([]int, msgs)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(63)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A failed receive aborts the sender's world too, so the send loop
		// unparks instead of wedging the test on a full ring.
		defer func() {
			if t.Failed() {
				hubW.Abort(errors.New("receiver failed"))
			}
		}()
		buf := make([]complex128, 64)
		for i := 0; i < msgs; i++ {
			b := buf[:sizes[i]]
			if _, _, err := c1.Recv(0, i, b); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			for j := range b {
				if b[j] != complex(float64(i), float64(j)) {
					t.Errorf("msg %d elem %d = %v", i, j, b[j])
					return
				}
			}
		}
	}()
	data := make([]complex128, 64)
	for i := 0; i < msgs; i++ {
		b := data[:sizes[i]]
		for j := range b {
			b[j] = complex(float64(i), float64(j))
		}
		c0.Send(1, i, b, nil)
	}
	wg.Wait()
}

// TestShmAbortPropagates: poisoning one process's world must poison every
// other attached world with a RemoteAbortError carrying the cause.
func TestShmAbortPropagates(t *testing.T) {
	hub, hubW, _, workerWs := startShmWorld(t, 3, WorldMeta{N: 64, P: 3})
	defer hub.Close()
	workerWs[0].Abort(errors.New("boom at rank 1"))
	for name, w := range map[string]*World{"hub": hubW, "worker2": workerWs[1]} {
		deadline := time.Now().Add(10 * time.Second)
		for !w.Aborted() {
			if time.Now().After(deadline) {
				t.Fatalf("%s world not poisoned by remote abort", name)
			}
			time.Sleep(time.Millisecond)
		}
		var remote *RemoteAbortError
		if err := w.AbortCause(); !errors.As(err, &remote) || !strings.Contains(err.Error(), "boom at rank 1") {
			t.Fatalf("%s abort cause = %v", name, err)
		}
	}
}

// TestShmCloseShutsDownWorkers: the hub's Close sends goodbye frames — each
// worker world aborts with ErrShutdown (a clean exit for Plan.Serve) — and
// removes the ring file.
func TestShmCloseShutsDownWorkers(t *testing.T) {
	hub, _, workers, workerWs := startShmWorld(t, 3, WorldMeta{N: 64, P: 3})
	path := hub.Path()
	hub.Close()
	for i, w := range workerWs {
		deadline := time.Now().Add(10 * time.Second)
		for !w.Aborted() {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d world did not observe the goodbye", i+1)
			}
			time.Sleep(time.Millisecond)
		}
		if err := w.AbortCause(); !errors.Is(err, ErrShutdown) {
			t.Fatalf("worker %d abort cause = %v, want ErrShutdown", i+1, err)
		}
	}
	for _, wt := range workers {
		wt.Close()
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("ring file not removed on Close: %v", err)
	}
}

// TestShmRankExhaustion: a p-rank world admits exactly p-1 workers; a late
// attacher is turned away instead of corrupting the claim counter's world.
func TestShmRankExhaustion(t *testing.T) {
	hub, _, workers, _ := startShmWorld(t, 2, WorldMeta{N: 64, P: 2})
	defer hub.Close()
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	if _, _, err := DialShmWorker(hub.Path()); err == nil || !strings.Contains(err.Error(), "claimed") {
		t.Fatalf("extra worker attached: %v", err)
	}
}

// shmTestRecord hand-assembles one ring record for the decoder tests.
func shmTestRecord(ringBytes int, seq uint32, h frameHeader, payload []byte) (data []byte, tail uint64) {
	data = make([]byte, ringBytes)
	frameLen := frameHeaderLen + len(payload)
	putU32 := func(off int, v uint32) {
		data[off] = byte(v)
		data[off+1] = byte(v >> 8)
		data[off+2] = byte(v >> 16)
		data[off+3] = byte(v >> 24)
	}
	putU32(0, uint32(frameLen))
	putU32(4, seq)
	putHeader(data[shmRecHdrBytes:], h)
	copy(data[shmRecHdrBytes+frameHeaderLen:], payload)
	rec := (uint64(shmRecHdrBytes) + uint64(frameLen) + 7) &^ 7
	return data, rec
}

// TestDecodeShmRecord pins the ring record decoder: a well-formed record
// round-trips, and every malformed shape — torn publishes, bad sequence
// numbers, boundary-straddling records, header/length disagreements, wrap
// markers overrunning the tail — is rejected with an error, not a panic.
func TestDecodeShmRecord(t *testing.T) {
	const ringBytes = 512
	h := frameHeader{typ: frameAbort, src: 1, dst: 0, count: 4}
	data, tail := shmTestRecord(ringBytes, 3, h, []byte("boom"))

	adv, wrap, got, body, err := decodeShmRecord(data, 0, tail, 3, 4, 64)
	if err != nil || wrap || adv != tail {
		t.Fatalf("valid record: adv=%d wrap=%v err=%v", adv, wrap, err)
	}
	if got.typ != frameAbort || string(body) != "boom" {
		t.Fatalf("decoded %+v body %q", got, body)
	}

	for _, tc := range []struct {
		name             string
		head, tail       uint64
		seq              uint32
		mutate           func([]byte)
		wantErrSubstring string
	}{
		{"bad seq", 0, tail, 7, nil, "sequence"},
		{"torn record", 0, 4, 3, nil, "torn"},
		{"head past tail", tail, 0, 3, nil, "out of range"},
		{"runaway counters", 0, uint64(ringBytes) + 8, 3, nil, "out of range"},
		{"misaligned head", 4, tail + 4, 3, nil, "torn"},
		{"length out of range", 0, tail, 3, func(d []byte) { d[0], d[1] = 0xF0, 0xFF }, "out of range"},
		{"length below header", 0, tail, 3, func(d []byte) { d[0], d[1], d[2], d[3] = 1, 0, 0, 0 }, "out of range"},
		{"header/length mismatch", 0, tail, 3, func(d []byte) { d[0]++ }, "header implies"},
		{"wrap marker overruns tail", 0, 8, 3, func(d []byte) {
			d[0], d[1], d[2], d[3] = 0xFF, 0xFF, 0xFF, 0xFF
		}, "overruns"},
	} {
		d := append([]byte(nil), data...)
		if tc.mutate != nil {
			tc.mutate(d)
		}
		_, _, _, _, err := decodeShmRecord(d, tc.head, tc.tail, tc.seq, 4, 64)
		if err == nil || !strings.Contains(err.Error(), tc.wantErrSubstring) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErrSubstring)
		}
	}

	// A record that would straddle the ring edge must be refused even when
	// the counters claim it is published.
	big, bigTail := shmTestRecord(ringBytes, 0, h, []byte("boom"))
	copy(big[ringBytes-8:], big[:8]) // record header at the last slot
	if _, _, _, _, err := decodeShmRecord(big, uint64(ringBytes)-8, uint64(ringBytes)-8+bigTail, 0, 4, 64); err == nil || !strings.Contains(err.Error(), "straddles") {
		t.Errorf("straddling record: err = %v", err)
	}

	// A wrap marker inside the published region skips to the ring start.
	wrapData := make([]byte, ringBytes)
	wrapData[ringBytes-8] = 0xFF
	wrapData[ringBytes-7] = 0xFF
	wrapData[ringBytes-6] = 0xFF
	wrapData[ringBytes-5] = 0xFF
	adv, wrap, _, _, err = decodeShmRecord(wrapData, uint64(ringBytes)-8, uint64(ringBytes)+8, 5, 4, 64)
	if err != nil || !wrap || adv != 8 {
		t.Fatalf("wrap marker: adv=%d wrap=%v err=%v", adv, wrap, err)
	}
}
