package mpi

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startMeshWorld builds a p-rank Unix-socket world under a mesh hub inside
// this test process: the hub hosts rank 0, the workers dial in through the
// real handshake (hello + advertised peer listener, config, framePeers), so
// the peer-introduction protocol is exactly what a multi-process run
// exercises. dials[i] is the dial function for the i-th worker connection
// (nil entries mean DialWorker); results are indexed by assigned rank, so
// workers[0]/workerWs[0] correspond to rank 1. tweak (if non-nil) runs on the
// hub before the handshake — the black-hole test rewrites advertised peer
// addresses through it.
func startMeshWorld(t *testing.T, p int, tweak func(*HubTransport),
	dials []func(network, addr string) (*WorkerTransport, WorldMeta, error)) (hub *HubTransport, hubW *World, workers []*WorkerTransport, workerWs []*World) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "hub.sock")
	hub, err := ListenMeshHub("unix", sock, p)
	if err != nil {
		t.Fatal(err)
	}
	if tweak != nil {
		tweak(hub)
	}
	hubW = NewWorldTransport(p, nil, hub)
	workers = make([]*WorkerTransport, p)
	workerWs = make([]*World, p)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 1; i < p; i++ {
		dial := DialWorker
		if dials != nil && dials[i-1] != nil {
			dial = dials[i-1]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			wt, m, err := dial("unix", sock)
			if err != nil {
				t.Errorf("worker dial: %v", err)
				return
			}
			w := NewWorldTransport(m.P, nil, wt)
			mu.Lock()
			workers[wt.Rank()] = wt
			workerWs[wt.Rank()] = w
			mu.Unlock()
		}()
	}
	if err := hub.ConfigureWorld(WorldMeta{N: 64, P: p}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	t.Cleanup(func() {
		hub.Close()
		for _, wt := range workers[1:] {
			if wt != nil {
				wt.Close()
			}
		}
	})
	return hub, hubW, workers, workerWs
}

// waitInMesh polls until wt's direct connection to peer is established; mesh
// setup is asynchronous by design (early traffic relays through the hub).
func waitInMesh(t *testing.T, wt *WorkerTransport, peer int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !wt.InMesh(peer) {
		if time.Now().After(deadline) {
			t.Fatalf("rank %d never established a peer conn to rank %d", wt.Rank(), peer)
		}
		time.Sleep(time.Millisecond)
	}
}

// captureMeshLog swaps meshLogf for a recorder and returns (lines, restore).
// The returned lines func snapshots what has been logged so far.
func captureMeshLog() (lines func() []string, restore func()) {
	var mu sync.Mutex
	var got []string
	prev := meshLogf
	meshLogf = func(format string, args ...any) {
		mu.Lock()
		got = append(got, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	return func() []string {
			mu.Lock()
			defer mu.Unlock()
			return append([]string(nil), got...)
		}, func() {
			meshLogf = prev
		}
}

// TestMeshPeerDirect: under a mesh hub, workers exchange peer addresses and
// dial each other (lower rank dials higher, one connection per pair);
// worker↔worker payloads then travel point-to-point — the hub relays nothing
// — and every side's WireStats reflects the split.
func TestMeshPeerDirect(t *testing.T) {
	hub, hubW, workers, workerWs := startMeshWorld(t, 3, nil, nil)
	if !hub.PeerMesh() {
		t.Fatal("ListenMeshHub hub does not report PeerMesh")
	}
	for r := 1; r < 3; r++ {
		if !workers[r].PeerMesh() {
			t.Fatalf("rank %d advertises no peer listener under a mesh hub", r)
		}
	}
	waitInMesh(t, workers[1], 2)
	waitInMesh(t, workers[2], 1)

	// Worker↔worker both directions, with checksums, plus a hub leg each way.
	c0 := hubW.Endpoint(0)
	c1 := workerWs[1].Endpoint(1)
	c2 := workerWs[2].Endpoint(2)
	data := []complex128{1 + 2i, -3, 4i}
	cs := [2]complex128{5, 6i}
	c1.Send(2, 7, data, &cs)
	buf := make([]complex128, 3)
	gotCS, has, err := c2.Recv(1, 7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !has || gotCS != cs {
		t.Fatalf("checksums lost on the peer conn: %v has=%v", gotCS, has)
	}
	for i, want := range data {
		if buf[i] != want {
			t.Fatalf("payload[%d] = %v, want %v", i, buf[i], want)
		}
	}
	c2.Send(1, 8, []complex128{42}, nil)
	back := make([]complex128, 1)
	if _, _, err := c1.Recv(2, 8, back); err != nil || back[0] != 42 {
		t.Fatalf("reverse peer payload %v err %v", back[0], err)
	}
	c0.Send(1, 9, []complex128{9}, nil)
	if _, _, err := c1.Recv(0, 9, back); err != nil || back[0] != 9 {
		t.Fatalf("hub→worker payload %v err %v", back[0], err)
	}
	c1.Send(0, 10, []complex128{10}, nil)
	if _, _, err := c0.Recv(1, 10, back); err != nil || back[0] != 10 {
		t.Fatalf("worker→hub payload %v err %v", back[0], err)
	}

	for r := 1; r < 3; r++ {
		s := workers[r].WireStats()
		if s.FramesRelayed != 0 {
			t.Errorf("rank %d relayed %d frames despite an established mesh", r, s.FramesRelayed)
		}
		if s.FramesDirect == 0 {
			t.Errorf("rank %d sent no direct frames", r)
		}
		if s.PeerConns != 1 {
			t.Errorf("rank %d PeerConns = %d, want 1", r, s.PeerConns)
		}
	}
	hs := hub.WireStats()
	if hs.FramesRelayed != 0 {
		t.Errorf("hub relayed %d frames despite an established mesh", hs.FramesRelayed)
	}
	if hs.FramesDirect == 0 || hs.BytesDirect == 0 {
		t.Errorf("hub direct counters empty: %+v", hs)
	}
}

// TestMeshBlackHoleFallsBackToRelay: an advertised peer address that accepts
// the TCP/Unix connection but never answers the peer hello (a black hole)
// costs at most meshDialTimeout, logs the degradation, and leaves the pair on
// the hub relay — messages still arrive, through two hops.
func TestMeshBlackHoleFallsBackToRelay(t *testing.T) {
	prev := meshDialTimeout
	meshDialTimeout = 200 * time.Millisecond
	defer func() { meshDialTimeout = prev }()
	lines, restore := captureMeshLog()
	defer restore()

	// A listener whose connections are never served: dials complete (kernel
	// backlog), the peer hello is swallowed, no ack ever comes back.
	dir := t.TempDir()
	bh, err := net.Listen("unix", filepath.Join(dir, "blackhole.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer bh.Close()

	hub, _, workers, workerWs := startMeshWorld(t, 3, func(h *HubTransport) {
		h.peerAddrOverride = func(rank int, addr string) string {
			if rank == 2 && addr != "" {
				return bh.Addr().String()
			}
			return addr
		}
	}, nil)

	// Rank 1 (the dialer for the 1–2 pair) must give up within the deadline
	// and log the fallback.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var fellBack bool
		for _, l := range lines() {
			if strings.Contains(l, "using hub relay") {
				fellBack = true
			}
		}
		if fellBack {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no relay-fallback log within deadline; got %q", lines())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if workers[1].InMesh(2) {
		t.Fatal("rank 1 claims a peer conn to the black-holed rank 2")
	}

	// The pair still communicates — over the two-hop relay.
	c1 := workerWs[1].Endpoint(1)
	c2 := workerWs[2].Endpoint(2)
	c1.Send(2, 7, []complex128{3 + 4i}, nil)
	buf := make([]complex128, 1)
	if _, _, err := c2.Recv(1, 7, buf); err != nil || buf[0] != 3+4i {
		t.Fatalf("relayed payload %v err %v", buf[0], err)
	}
	if s := workers[1].WireStats(); s.FramesRelayed == 0 {
		t.Errorf("rank 1 stats count no relayed frames: %+v", s)
	}
	if hs := hub.WireStats(); hs.FramesRelayed == 0 {
		t.Errorf("hub forwarded no frames: %+v", hs)
	}
}

// TestMeshNoMeshWorkerStaysRelay: a DialWorkerNoMesh worker under a mesh hub
// neither accepts nor dials peer connections — all of its worker↔worker
// traffic takes the hub relay, in both directions, while the world stays
// fully functional.
func TestMeshNoMeshWorkerStaysRelay(t *testing.T) {
	hub, _, workers, workerWs := startMeshWorld(t, 3, nil,
		[]func(string, string) (*WorkerTransport, WorldMeta, error){DialWorker, DialWorkerNoMesh})

	// Rank assignment is connection order, so identify the relay-only worker
	// by what it advertises rather than by dial order.
	noMesh, meshed := 0, 0
	for r := 1; r < 3; r++ {
		if workers[r].PeerMesh() {
			meshed = r
		} else {
			noMesh = r
		}
	}
	if noMesh == 0 || meshed == 0 {
		t.Fatalf("expected one mesh and one relay-only worker, got PeerMesh %v/%v",
			workers[1].PeerMesh(), workers[2].PeerMesh())
	}

	// Exchange traffic both ways, then confirm no peer conn ever formed.
	cm := workerWs[meshed].Endpoint(meshed)
	cn := workerWs[noMesh].Endpoint(noMesh)
	cm.Send(noMesh, 7, []complex128{1i}, nil)
	buf := make([]complex128, 1)
	if _, _, err := cn.Recv(meshed, 7, buf); err != nil || buf[0] != 1i {
		t.Fatalf("mesh→no-mesh payload %v err %v", buf[0], err)
	}
	cn.Send(meshed, 8, []complex128{2i}, nil)
	if _, _, err := cm.Recv(noMesh, 8, buf); err != nil || buf[0] != 2i {
		t.Fatalf("no-mesh→mesh payload %v err %v", buf[0], err)
	}
	if workers[meshed].InMesh(noMesh) || workers[noMesh].InMesh(meshed) {
		t.Fatal("a peer conn formed to a relay-only worker")
	}
	if s := workers[noMesh].WireStats(); s.PeerConns != 0 || s.FramesRelayed == 0 {
		t.Errorf("relay-only worker stats %+v", s)
	}
	if hs := hub.WireStats(); hs.FramesRelayed < 2 {
		t.Errorf("hub relayed %d frames, want ≥ 2", hs.FramesRelayed)
	}
}

// TestMeshPeerLossFallsBack: a peer connection dying mid-run retires the pair
// to the hub relay — logged, never fatal — and traffic keeps flowing.
func TestMeshPeerLossFallsBack(t *testing.T) {
	lines, restore := captureMeshLog()
	defer restore()
	hub, _, workers, workerWs := startMeshWorld(t, 3, nil, nil)
	waitInMesh(t, workers[1], 2)
	waitInMesh(t, workers[2], 1)

	// Kill the established 1↔2 conn out from under both read loops.
	workers[1].peers[2].Load().c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for workers[1].InMesh(2) || workers[2].InMesh(1) {
		if time.Now().After(deadline) {
			t.Fatal("peer conn loss not observed")
		}
		time.Sleep(time.Millisecond)
	}
	var logged bool
	for _, l := range lines() {
		if strings.Contains(l, "falling back to hub relay") {
			logged = true
		}
	}
	if !logged {
		t.Errorf("peer loss not logged: %q", lines())
	}

	c1 := workerWs[1].Endpoint(1)
	c2 := workerWs[2].Endpoint(2)
	c1.Send(2, 7, []complex128{5}, nil)
	buf := make([]complex128, 1)
	if _, _, err := c2.Recv(1, 7, buf); err != nil || buf[0] != 5 {
		t.Fatalf("post-loss payload %v err %v", buf[0], err)
	}
	if hs := hub.WireStats(); hs.FramesRelayed == 0 {
		t.Error("hub relayed nothing after the peer conn loss")
	}
}
