// Package fault provides the deterministic soft-error injector used to
// evaluate every ABFT scheme in this repository. It mirrors the paper's own
// methodology (§9.2.2): a computational fault is simulated by adding a
// constant to an element produced by a computation, a memory fault by
// overwriting (or bit-flipping) an element at rest between phases, and a
// communication fault by corrupting a message in transit.
//
// Protected code declares injection *sites*; an Injector decides, per visit,
// whether to corrupt. Schedules are deterministic so experiments are
// reproducible, and every injection is recorded so tests can assert that a
// fault actually fired before claiming it was corrected.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Kind classifies a fault by the paper's taxonomy.
type Kind int

const (
	// Computational faults strike logic units during a computation.
	Computational Kind = iota
	// Memory faults strike data at rest between computations.
	Memory
	// Communication faults strike messages in transit (parallel scheme).
	Communication
)

func (k Kind) String() string {
	switch k {
	case Computational:
		return "computational"
	case Memory:
		return "memory"
	case Communication:
		return "communication"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Site identifies a point in a protected algorithm where faults can strike.
type Site int

const (
	// SiteSubFFT1 is the output of a first-layer (m-point) sub-FFT, before
	// its checksum verification.
	SiteSubFFT1 Site = iota
	// SiteSubFFT2 is the output of a second-layer (k-point) sub-FFT.
	SiteSubFFT2
	// SiteFullFFT is the output of a whole FFT (offline scheme, before the
	// single final verification).
	SiteFullFFT
	// SiteTwiddle is the result of the twiddle multiplication stage.
	SiteTwiddle
	// SiteInputMemory is the input array at rest, after input checksums
	// were generated but before the data is consumed.
	SiteInputMemory
	// SiteIntermediateMemory is the k×m intermediate at rest between the
	// two ABFT layers.
	SiteIntermediateMemory
	// SiteOutputMemory is the output array at rest after computation but
	// before the final verification.
	SiteOutputMemory
	// SiteMessage is a message payload in transit between ranks.
	SiteMessage
	// SiteParallelFFT1 is the output of a p-point sub-FFT in the parallel
	// scheme's FFT1 stage.
	SiteParallelFFT1
	// SiteParallelFFT2 is a sub-FFT output inside the parallel scheme's
	// FFT2 stage.
	SiteParallelFFT2
	numSites
)

var siteNames = [numSites]string{
	"subfft1", "subfft2", "fullfft", "twiddle", "input-memory",
	"intermediate-memory", "output-memory", "message", "parallel-fft1",
	"parallel-fft2",
}

func (s Site) String() string {
	if s >= 0 && int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("Site(%d)", int(s))
}

// Mode selects how an element is corrupted.
type Mode int

const (
	// AddConstant adds Value to the real part of the element — the paper's
	// computational-fault model.
	AddConstant Mode = iota
	// SetConstant overwrites the element with Value — the paper's
	// memory-fault model.
	SetConstant
	// BitFlip flips bit Bit (0..63) of the real part's IEEE-754
	// representation — the Table 6 fault model.
	BitFlip
)

func (m Mode) String() string {
	switch m {
	case AddConstant:
		return "add-constant"
	case SetConstant:
		return "set-constant"
	case BitFlip:
		return "bit-flip"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Fault describes one scheduled injection.
type Fault struct {
	Kind Kind
	Site Site
	// Occurrence selects the Occurrence-th visit (1-based) of Site on a
	// matching rank. Zero means the first visit.
	Occurrence int
	// Rank restricts injection to one rank in the parallel scheme;
	// -1 matches any rank (and the sequential scheme, which visits with
	// rank 0).
	Rank int
	// Index is the element to corrupt within the visited block; -1 picks a
	// deterministic pseudo-random index.
	Index int
	Mode  Mode
	// Value is the constant for AddConstant/SetConstant.
	Value float64
	// Bit is the bit position for BitFlip.
	Bit int
}

// Record logs an injection that actually happened.
type Record struct {
	Fault Fault
	Site  Site
	Rank  int
	Visit int
	Index int
	// Before and After are the corrupted element's value around injection.
	Before complex128
	After  complex128
}

// Injector decides at each site visit whether to corrupt the visited block.
// Implementations must be safe for concurrent use (the parallel scheme
// visits from many goroutines).
type Injector interface {
	// Visit may corrupt data in place. n and stride describe the logical
	// block layout inside data (element i lives at data[i*stride]); rank
	// is the visiting rank (0 in sequential code).
	Visit(site Site, rank int, data []complex128, n, stride int) bool
}

// Visit is a nil-safe convenience wrapper.
func Visit(inj Injector, site Site, rank int, data []complex128, n, stride int) bool {
	if inj == nil {
		return false
	}
	return inj.Visit(site, rank, data, n, stride)
}

// Schedule is the deterministic Injector used throughout the experiments.
type Schedule struct {
	mu      sync.Mutex
	faults  []Fault
	fired   []bool
	nFired  int
	allDone atomic.Bool
	visits  map[visitKey]int
	rng     *rand.Rand
	records []Record

	// Lock-free relevance filters: protected code visits sites on every
	// sub-operation from every rank, and taking the mutex on visits that
	// cannot possibly match a fault would serialize the parallel ranks and
	// distort the timing experiments.
	siteUnfired [numSites]atomic.Int32
	siteAnyRank [numSites]bool
	siteRanks   [numSites]map[int]bool
}

type visitKey struct {
	site Site
	rank int
}

// NewSchedule builds an injector that fires each fault exactly once at its
// scheduled visit. seed drives random index selection.
func NewSchedule(seed int64, faults ...Fault) *Schedule {
	s := &Schedule{
		faults: append([]Fault(nil), faults...),
		fired:  make([]bool, len(faults)),
		visits: make(map[visitKey]int),
		rng:    rand.New(rand.NewSource(seed)),
	}
	if len(faults) == 0 {
		s.allDone.Store(true)
	}
	s.rebuildFilters()
	return s
}

// rebuildFilters recomputes the lock-free relevance filters. Callers must
// hold s.mu (or be the constructor).
func (s *Schedule) rebuildFilters() {
	for i := range s.siteUnfired {
		s.siteUnfired[i].Store(0)
		s.siteAnyRank[i] = false
		s.siteRanks[i] = nil
	}
	for i, f := range s.faults {
		if f.Site < 0 || int(f.Site) >= int(numSites) {
			continue
		}
		if !s.fired[i] {
			s.siteUnfired[f.Site].Add(1)
		}
		if f.Rank < 0 {
			s.siteAnyRank[f.Site] = true
		} else {
			if s.siteRanks[f.Site] == nil {
				s.siteRanks[f.Site] = make(map[int]bool)
			}
			s.siteRanks[f.Site][f.Rank] = true
		}
	}
}

// Visit implements Injector.
func (s *Schedule) Visit(site Site, rank int, data []complex128, n, stride int) bool {
	if s == nil || n == 0 {
		return false
	}
	// Fast paths: all faults fired; no unfired fault at this site; or no
	// fault at this site can match the visiting rank. Occurrence counts
	// only matter for faults that could still match, so skipping the lock
	// here cannot change which visit a fault fires on.
	if s.allDone.Load() {
		return false
	}
	if site >= 0 && int(site) < int(numSites) {
		if s.siteUnfired[site].Load() == 0 {
			return false
		}
		if !s.siteAnyRank[site] && !s.siteRanks[site][rank] {
			return false
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Count this visit for the specific rank and for the any-rank key.
	s.visits[visitKey{site, rank}]++
	visit := s.visits[visitKey{site, rank}]
	injected := false
	for i, f := range s.faults {
		if s.fired[i] || f.Site != site {
			continue
		}
		if f.Rank >= 0 && f.Rank != rank {
			continue
		}
		occ := f.Occurrence
		if occ == 0 {
			occ = 1
		}
		if visit != occ {
			continue
		}
		idx := f.Index
		if idx < 0 || idx >= n {
			idx = s.rng.Intn(n)
		}
		pos := idx * stride
		before := data[pos]
		data[pos] = corrupt(before, f)
		s.fired[i] = true
		s.nFired++
		s.siteUnfired[f.Site].Add(-1)
		if s.nFired == len(s.faults) {
			s.allDone.Store(true)
		}
		s.records = append(s.records, Record{
			Fault: f, Site: site, Rank: rank, Visit: visit, Index: idx,
			Before: before, After: data[pos],
		})
		injected = true
	}
	return injected
}

func corrupt(v complex128, f Fault) complex128 {
	switch f.Mode {
	case AddConstant:
		return v + complex(f.Value, 0)
	case SetConstant:
		return complex(f.Value, 0)
	case BitFlip:
		bits := math.Float64bits(real(v))
		bits ^= 1 << uint(f.Bit&63)
		return complex(math.Float64frombits(bits), imag(v))
	default:
		return v
	}
}

// Records returns a copy of the injection log.
func (s *Schedule) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.records...)
}

// FiredCount reports how many scheduled faults have fired.
func (s *Schedule) FiredCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.fired {
		if f {
			n++
		}
	}
	return n
}

// AllFired reports whether every scheduled fault has fired.
func (s *Schedule) AllFired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.fired {
		if !f {
			return false
		}
	}
	return true
}

// Reset re-arms all faults and clears counters and records, so one schedule
// can be reused across benchmark iterations.
func (s *Schedule) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.fired {
		s.fired[i] = false
	}
	s.nFired = 0
	s.allDone.Store(false)
	s.visits = make(map[visitKey]int)
	s.records = s.records[:0]
	s.rebuildFilters()
}
