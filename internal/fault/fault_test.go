package fault

import (
	"math"
	"sync"
	"testing"
)

func block(n int) []complex128 {
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(float64(i), -float64(i))
	}
	return b
}

func TestScheduleFiresAtOccurrence(t *testing.T) {
	s := NewSchedule(1, Fault{
		Site: SiteSubFFT1, Occurrence: 3, Index: 2, Mode: AddConstant, Value: 10, Rank: -1,
	})
	data := block(8)
	if s.Visit(SiteSubFFT1, 0, data, 8, 1) {
		t.Fatal("fired on visit 1")
	}
	if s.Visit(SiteSubFFT1, 0, data, 8, 1) {
		t.Fatal("fired on visit 2")
	}
	if !s.Visit(SiteSubFFT1, 0, data, 8, 1) {
		t.Fatal("did not fire on visit 3")
	}
	if got := real(data[2]); got != 12 {
		t.Fatalf("data[2] = %g, want 12", got)
	}
	// Fires exactly once.
	if s.Visit(SiteSubFFT1, 0, data, 8, 1) {
		t.Fatal("fired twice")
	}
	if !s.AllFired() {
		t.Fatal("AllFired should be true")
	}
}

func TestScheduleSiteAndRankFiltering(t *testing.T) {
	s := NewSchedule(1,
		Fault{Site: SiteTwiddle, Rank: 2, Index: 0, Mode: SetConstant, Value: 99},
	)
	data := block(4)
	if s.Visit(SiteSubFFT1, 2, data, 4, 1) {
		t.Fatal("wrong site fired")
	}
	if s.Visit(SiteTwiddle, 1, data, 4, 1) {
		t.Fatal("wrong rank fired")
	}
	if !s.Visit(SiteTwiddle, 2, data, 4, 1) {
		t.Fatal("matching visit did not fire")
	}
	if data[0] != 99 {
		t.Fatalf("data[0] = %v, want 99", data[0])
	}
}

func TestPerRankVisitCountsAreIndependent(t *testing.T) {
	// Occurrence counts are per (site, rank): rank 1's second visit fires
	// even if rank 0 visited many times.
	s := NewSchedule(1, Fault{Site: SiteMessage, Rank: 1, Occurrence: 2, Index: 0, Mode: AddConstant, Value: 1})
	data := block(4)
	for i := 0; i < 5; i++ {
		s.Visit(SiteMessage, 0, data, 4, 1)
	}
	if s.Visit(SiteMessage, 1, data, 4, 1) {
		t.Fatal("rank 1 visit 1 fired")
	}
	if !s.Visit(SiteMessage, 1, data, 4, 1) {
		t.Fatal("rank 1 visit 2 did not fire")
	}
}

func TestStridedInjection(t *testing.T) {
	s := NewSchedule(1, Fault{Site: SiteInputMemory, Rank: -1, Index: 3, Mode: SetConstant, Value: 7})
	data := block(20)
	if !s.Visit(SiteInputMemory, 0, data, 5, 4) {
		t.Fatal("did not fire")
	}
	if data[12] != 7 { // logical index 3, stride 4
		t.Fatalf("data[12] = %v, want 7", data[12])
	}
}

func TestBitFlipMode(t *testing.T) {
	s := NewSchedule(1, Fault{Site: SiteOutputMemory, Rank: -1, Index: 0, Mode: BitFlip, Bit: 62})
	data := []complex128{complex(1.5, 2.5)}
	s.Visit(SiteOutputMemory, 0, data, 1, 1)
	wantBits := math.Float64bits(1.5) ^ (1 << 62)
	if got := math.Float64bits(real(data[0])); got != wantBits {
		t.Fatalf("real bits = %#x, want %#x", got, wantBits)
	}
	if imag(data[0]) != 2.5 {
		t.Fatal("imaginary part must be untouched")
	}
}

func TestRandomIndexIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		s := NewSchedule(seed, Fault{Site: SiteSubFFT1, Rank: -1, Index: -1, Mode: AddConstant, Value: 1})
		data := block(64)
		s.Visit(SiteSubFFT1, 0, data, 64, 1)
		recs := s.Records()
		if len(recs) != 1 {
			t.Fatalf("expected 1 record, got %d", len(recs))
		}
		return recs[0].Index
	}
	if run(42) != run(42) {
		t.Fatal("same seed produced different indices")
	}
}

func TestRecordsCaptureBeforeAfter(t *testing.T) {
	s := NewSchedule(1, Fault{Site: SiteSubFFT2, Rank: -1, Index: 1, Mode: AddConstant, Value: 3})
	data := block(4)
	s.Visit(SiteSubFFT2, 0, data, 4, 1)
	recs := s.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.Before != complex(1, -1) || r.After != complex(4, -1) || r.Index != 1 {
		t.Fatalf("bad record: %+v", r)
	}
}

func TestResetReArms(t *testing.T) {
	s := NewSchedule(1, Fault{Site: SiteSubFFT1, Rank: -1, Index: 0, Mode: AddConstant, Value: 1})
	data := block(2)
	if !s.Visit(SiteSubFFT1, 0, data, 2, 1) {
		t.Fatal("first fire failed")
	}
	s.Reset()
	if s.FiredCount() != 0 || len(s.Records()) != 0 {
		t.Fatal("Reset did not clear state")
	}
	if !s.Visit(SiteSubFFT1, 0, data, 2, 1) {
		t.Fatal("did not fire after Reset")
	}
}

func TestNilInjectorHelper(t *testing.T) {
	data := block(4)
	if Visit(nil, SiteSubFFT1, 0, data, 4, 1) {
		t.Fatal("nil injector fired")
	}
}

func TestConcurrentVisits(t *testing.T) {
	s := NewSchedule(1, Fault{Site: SiteMessage, Rank: -1, Occurrence: 50, Index: 0, Mode: AddConstant, Value: 1})
	var wg sync.WaitGroup
	fires := make(chan bool, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := block(4)
			for i := 0; i < 16; i++ {
				if s.Visit(SiteMessage, 0, data, 4, 1) {
					fires <- true
				}
			}
		}()
	}
	wg.Wait()
	close(fires)
	n := 0
	for range fires {
		n++
	}
	if n != 1 {
		t.Fatalf("fault fired %d times, want exactly 1", n)
	}
}

func TestStringers(t *testing.T) {
	if Computational.String() != "computational" || Memory.String() != "memory" ||
		Communication.String() != "communication" {
		t.Fatal("Kind.String broken")
	}
	if SiteSubFFT1.String() != "subfft1" || SiteMessage.String() != "message" {
		t.Fatal("Site.String broken")
	}
	if AddConstant.String() != "add-constant" || BitFlip.String() != "bit-flip" {
		t.Fatal("Mode.String broken")
	}
	if Kind(99).String() == "" || Site(99).String() == "" || Mode(99).String() == "" {
		t.Fatal("unknown values must still stringify")
	}
}

func TestOutOfRangeIndexFallsBackToRandom(t *testing.T) {
	s := NewSchedule(3, Fault{Site: SiteSubFFT1, Rank: -1, Index: 1000, Mode: AddConstant, Value: 1})
	data := block(8)
	if !s.Visit(SiteSubFFT1, 0, data, 8, 1) {
		t.Fatal("did not fire")
	}
	r := s.Records()[0]
	if r.Index < 0 || r.Index >= 8 {
		t.Fatalf("index %d out of range", r.Index)
	}
}
