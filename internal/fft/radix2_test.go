package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestRadix2CacheShared pins the sharing half of the bounded-cache contract:
// plans of the same (size, direction) share one immutable table set (the
// common pooled-context / per-rank case pays the O(n) build once), and the
// shared tables still produce the same transform as the recursive
// mixed-radix executor.
func TestRadix2CacheShared(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 8, 64, 256, 1024} {
		for _, sign := range []Sign{Forward, Inverse} {
			a := MustPlan(n, sign)
			b := MustPlan(n, sign)
			if a.r2 == nil || b.r2 == nil {
				t.Fatalf("n=%d: power-of-two plan missing its radix-2 state", n)
			}
			if a.r2 != b.r2 {
				t.Fatalf("n=%d sign=%d: same-key plans did not share cached tables", n, sign)
			}
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			}
			want := make([]complex128, n)
			a.Execute(want, x)
			got := append([]complex128(nil), x...)
			b.ExecuteInPlace(got)
			for i := range want {
				if d := cmplx.Abs(got[i] - want[i]); d > 1e-9*float64(n) {
					t.Fatalf("n=%d sign=%d: in-place differs at %d by %g", n, sign, i, d)
				}
			}
		}
	}
}

// TestRadix2CacheBounded pins the bound: a sweep over more distinct
// (size, direction) keys than the cap — exactly what grew the old
// process-global sync.Map forever — leaves the registry at or under
// maxRadix2Cache, with overflow plans owning private (but still correct)
// tables.
func TestRadix2CacheBounded(t *testing.T) {
	for k := 1; k <= 20; k++ {
		n := 1 << k
		for _, sign := range []Sign{Forward, Inverse} {
			p := MustPlan(n, sign)
			if len(p.r2.rev) != n || len(p.r2.wTable) != n/2 {
				t.Fatalf("n=%d: table sizes %d/%d", n, len(p.r2.rev), len(p.r2.wTable))
			}
		}
	}
	if got := radix2CacheEntries(); got > maxRadix2Cache {
		t.Fatalf("radix-2 cache grew to %d entries, cap is %d", got, maxRadix2Cache)
	}
	// Past the cap, plans still build working private tables.
	n := 1 << 21
	p := MustPlan(n, Forward)
	if p.r2 == nil || len(p.r2.rev) != n {
		t.Fatalf("overflow plan has no usable radix-2 state")
	}
}
