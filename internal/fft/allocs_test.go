package fft

import "testing"

// TestExecuteInPlaceAllocs pins the pooled-work-buffer behaviour: steady-state
// in-place execution must not allocate, for the iterative power-of-two path
// and for the non-power-of-two path that round-trips through the plan's pool.
func TestExecuteInPlaceAllocs(t *testing.T) {
	for _, n := range []int{256, 360, 1000} { // 360 = 2³·3²·5, 1000 = 2³·5³
		p := MustPlan(n, Forward)
		buf := make([]complex128, n)
		for i := range buf {
			buf[i] = complex(float64(i%9)-4, float64(i%4)-2)
		}
		p.ExecuteInPlace(buf) // warm the pool
		allocs := testing.AllocsPerRun(20, func() {
			p.ExecuteInPlace(buf)
		})
		if allocs != 0 {
			t.Errorf("n=%d: ExecuteInPlace %v allocs/op, want 0", n, allocs)
		}
	}
}

// TestExecuteAllocs pins the out-of-place paths at zero steady-state allocs
// for both kernels: the flat iterative kernel gathers straight into dst, and
// the recursive walk draws scratch from the plan's pool.
func TestExecuteAllocs(t *testing.T) {
	for _, tc := range []struct {
		n      int
		kernel Kernel
	}{
		{1024, KernelFlat},
		{1024, KernelRecursive},
		{360, KernelAuto},
	} {
		p, err := NewPlanKernel(tc.n, Forward, tc.kernel)
		if err != nil {
			t.Fatal(err)
		}
		src := make([]complex128, tc.n)
		dst := make([]complex128, tc.n)
		for i := range src {
			src[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		p.Execute(dst, src) // warm the pools
		allocs := testing.AllocsPerRun(20, func() {
			p.Execute(dst, src)
		})
		if allocs != 0 {
			t.Errorf("n=%d kernel=%v: Execute %v allocs/op, want 0", tc.n, p.Kernel(), allocs)
		}
	}
}
