package fft

import "testing"

// TestExecuteInPlaceAllocs pins the pooled-work-buffer behaviour: steady-state
// in-place execution must not allocate, for the iterative power-of-two path
// and for the non-power-of-two path that round-trips through the plan's pool.
func TestExecuteInPlaceAllocs(t *testing.T) {
	for _, n := range []int{256, 360, 1000} { // 360 = 2³·3²·5, 1000 = 2³·5³
		p := MustPlan(n, Forward)
		buf := make([]complex128, n)
		for i := range buf {
			buf[i] = complex(float64(i%9)-4, float64(i%4)-2)
		}
		p.ExecuteInPlace(buf) // warm the pool
		allocs := testing.AllocsPerRun(20, func() {
			p.ExecuteInPlace(buf)
		})
		if allocs != 0 {
			t.Errorf("n=%d: ExecuteInPlace %v allocs/op, want 0", n, allocs)
		}
	}
}
