package fft

// flatState holds the immutable tables and stage schedule for the flat
// iterative power-of-two kernel: decimation-in-time radix-4 butterflies (with
// one leading radix-2 fixup stage when log2 n is odd) swept over data in
// bit-reversed order. Compared to the recursive mixed-radix walk it does no
// per-block function calls, touches the input exactly once (the bit-reversal
// gather), and reads each stage's twiddles from one interleaved table in
// stride order — the kernel every protection scheme bottoms out in, so its
// speed multiplies through the whole scheme × geometry × transport matrix.
//
// Stage invariant: after all stages up to quarter-size m have run, the block
// of size 4m starting at a 4m-aligned base holds the 4m-point DFTs of the
// corresponding stride-(n/4m) subsequence of the input. With full *binary*
// bit reversal the four size-m sub-blocks hold the sub-DFTs of the residue
// classes in the order [0, 2, 1, 3] (the two low block bits come out
// bit-swapped), which is why the butterfly below reads its ω^{2k} operand
// from the second block and its ω^k operand from the third.
type flatState struct {
	n   int
	rev []int32 // bit-reversal permutation, rev[i] = reverse of i in log2(n) bits
	r2  bool    // leading twiddle-free radix-2 stage (log2 n odd)

	// stages are the radix-4 combine passes in ascending block size; each
	// merges four size-m blocks into one size-4m block.
	stages []flatStage
}

type flatStage struct {
	m int // quarter size: the stage combines blocks of m into 4m
	// tw holds the interleaved per-column twiddles ω_{4m}^{sign·k},
	// ω_{4m}^{sign·2k}, ω_{4m}^{sign·3k} at indices 3k, 3k+1, 3k+2.
	tw []complex128
}

// buildFlatState constructs the kernel tables for a power-of-two n. Shared
// across same-(n, sign) plans via the bounded kernel cache.
func buildFlatState(n int, sign Sign) *flatState {
	st := &flatState{n: n}
	st.rev = make([]int32, n)
	shift := 0
	for 1<<shift < n {
		shift++
	}
	for i := 1; i < n; i++ {
		st.rev[i] = st.rev[i>>1]>>1 | int32(i&1)<<(shift-1)
	}
	m := 1
	if shift&1 == 1 {
		st.r2 = true
		m = 2
	}
	p := Plan{sign: sign} // omega helper
	for ; m < n; m *= 4 {
		tw := make([]complex128, 3*m)
		for k := 0; k < m; k++ {
			tw[3*k] = p.omega(4*m, k)
			tw[3*k+1] = p.omega(4*m, 2*k)
			tw[3*k+2] = p.omega(4*m, 3*k)
		}
		st.stages = append(st.stages, flatStage{m: m, tw: tw})
	}
	return st
}

// gather copies the strided source into dst in bit-reversed order — the only
// pass that touches src, after which every stage runs in place on dst.
func (st *flatState) gather(dst, src []complex128, stride int) {
	if stride == 1 {
		for i, r := range st.rev {
			dst[i] = src[r]
		}
		return
	}
	for i, r := range st.rev {
		dst[i] = src[int(r)*stride]
	}
}

// permute applies the bit-reversal permutation in place (used by the truly
// in-place entry point, where "the input is destroyed" must actually hold).
func (st *flatState) permute(buf []complex128) {
	for i, r := range st.rev {
		if int32(i) < r {
			buf[i], buf[r] = buf[r], buf[i]
		}
	}
}

// run executes every stage in place over bit-reversed data.
func (st *flatState) run(buf []complex128, sign Sign) {
	if sign == Forward {
		st.runForward(buf)
	} else {
		st.runInverse(buf)
	}
}

// runForward is the forward-direction stage sweep. The radix-4 butterfly
// computes, from the four sub-DFT columns a (residue 0), c (residue 2,
// pre-twiddled by ω^{2k}), b (residue 1, ω^k) and d (residue 3, ω^{3k}):
//
//	t0 = a+c   t1 = a-c   t2 = b+d   t3 = b-d
//	X[k]    = t0 + t2        X[k+2m] = t0 - t2
//	X[k+m]  = t1 - i·t3      X[k+3m] = t1 + i·t3
//
// (forward ω_4 = -i; the inverse sweep flips the sign of the i·t3 rotation).
// runForward and runInverse are deliberately two copies: the rotation is the
// innermost operation, and branching on direction there costs more than the
// duplicated code.
func (st *flatState) runForward(buf []complex128) {
	n := st.n
	if st.r2 {
		for i := 0; i < n; i += 2 {
			a, b := buf[i], buf[i+1]
			buf[i], buf[i+1] = a+b, a-b
		}
	}
	for _, sg := range st.stages {
		m := sg.m
		if m == 1 {
			// First combine from singletons: every twiddle is 1.
			for g := 0; g < n; g += 4 {
				a, c, b, d := buf[g], buf[g+1], buf[g+2], buf[g+3]
				t0, t1 := a+c, a-c
				t2, t3 := b+d, b-d
				jt3 := complex(imag(t3), -real(t3)) // -i·t3
				buf[g] = t0 + t2
				buf[g+1] = t1 + jt3
				buf[g+2] = t0 - t2
				buf[g+3] = t1 - jt3
			}
			continue
		}
		tw := sg.tw
		m2, m3, size := 2*m, 3*m, 4*m
		for g := 0; g < n; g += size {
			// Column k = 0: twiddles are 1, skip the multiplies.
			a, c := buf[g], buf[g+m]
			b, d := buf[g+m2], buf[g+m3]
			t0, t1 := a+c, a-c
			t2, t3 := b+d, b-d
			jt3 := complex(imag(t3), -real(t3))
			buf[g] = t0 + t2
			buf[g+m] = t1 + jt3
			buf[g+m2] = t0 - t2
			buf[g+m3] = t1 - jt3
			for k := 1; k < m; k++ {
				w1, w2, w3 := tw[3*k], tw[3*k+1], tw[3*k+2]
				i0 := g + k
				a := buf[i0]
				c := buf[i0+m] * w2
				b := buf[i0+m2] * w1
				d := buf[i0+m3] * w3
				t0, t1 := a+c, a-c
				t2, t3 := b+d, b-d
				jt3 := complex(imag(t3), -real(t3))
				buf[i0] = t0 + t2
				buf[i0+m] = t1 + jt3
				buf[i0+m2] = t0 - t2
				buf[i0+m3] = t1 - jt3
			}
		}
	}
}

// runInverse is runForward with the opposite ω_4 rotation (+i·t3); the stage
// twiddle tables were already built with the inverse sign.
func (st *flatState) runInverse(buf []complex128) {
	n := st.n
	if st.r2 {
		for i := 0; i < n; i += 2 {
			a, b := buf[i], buf[i+1]
			buf[i], buf[i+1] = a+b, a-b
		}
	}
	for _, sg := range st.stages {
		m := sg.m
		if m == 1 {
			for g := 0; g < n; g += 4 {
				a, c, b, d := buf[g], buf[g+1], buf[g+2], buf[g+3]
				t0, t1 := a+c, a-c
				t2, t3 := b+d, b-d
				jt3 := complex(-imag(t3), real(t3)) // +i·t3
				buf[g] = t0 + t2
				buf[g+1] = t1 + jt3
				buf[g+2] = t0 - t2
				buf[g+3] = t1 - jt3
			}
			continue
		}
		tw := sg.tw
		m2, m3, size := 2*m, 3*m, 4*m
		for g := 0; g < n; g += size {
			a, c := buf[g], buf[g+m]
			b, d := buf[g+m2], buf[g+m3]
			t0, t1 := a+c, a-c
			t2, t3 := b+d, b-d
			jt3 := complex(-imag(t3), real(t3))
			buf[g] = t0 + t2
			buf[g+m] = t1 + jt3
			buf[g+m2] = t0 - t2
			buf[g+m3] = t1 - jt3
			for k := 1; k < m; k++ {
				w1, w2, w3 := tw[3*k], tw[3*k+1], tw[3*k+2]
				i0 := g + k
				a := buf[i0]
				c := buf[i0+m] * w2
				b := buf[i0+m2] * w1
				d := buf[i0+m3] * w3
				t0, t1 := a+c, a-c
				t2, t3 := b+d, b-d
				jt3 := complex(-imag(t3), real(t3))
				buf[i0] = t0 + t2
				buf[i0+m] = t1 + jt3
				buf[i0+m2] = t0 - t2
				buf[i0+m3] = t1 - jt3
			}
		}
	}
}
