package fft

import "sync"

// The kernel table cache shares *all* per-(size, direction) immutable plan
// tables — the flat kernel's bit-reversal permutation and per-stage twiddle
// tables — across plans. It generalizes the former radix-2-only registry:
// the common case (many plans over a handful of sizes: pooled execution
// contexts, per-rank sub-plans, Bluestein's internal power-of-two plans) pays
// each O(n) table build once, while the registry itself stays *bounded*: at
// most maxKernelCache entries, and a plan whose key misses a full cache
// builds private tables that die with the plan. Either way the hot path
// reads the plan's own resolved pointer, never a map.
const maxKernelCache = 32

type kernelKey struct {
	n    int
	sign Sign
}

var (
	kernelMu    sync.Mutex
	kernelCache = make(map[kernelKey]*flatState)
)

// kernelCacheEntries reports the registry size (for the bound test).
func kernelCacheEntries() int {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	return len(kernelCache)
}

// flatStateFor resolves the flat-kernel tables for (n, sign): a cache hit
// shares the existing tables, a miss builds them (outside the lock —
// construction is O(n)) and registers them only while the cache has room.
func flatStateFor(n int, sign Sign) *flatState {
	key := kernelKey{n, sign}
	kernelMu.Lock()
	if st, ok := kernelCache[key]; ok {
		kernelMu.Unlock()
		return st
	}
	kernelMu.Unlock()
	st := buildFlatState(n, sign)
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if prior, ok := kernelCache[key]; ok {
		// A concurrent build won the race; share its tables.
		return prior
	}
	if len(kernelCache) < maxKernelCache {
		kernelCache[key] = st
	}
	return st
}
