package fft

import (
	"fmt"
	"testing"
)

// The BenchmarkKernel* family measures the raw engines beneath every
// protection scheme: the flat iterative radix-4/2 kernel against the
// recursive mixed-radix walk on the same sizes, and Bluestein's transform
// under the stage-cost convolution-length chooser against the legacy
// next-power-of-two pinning. bench.sh and the CI bench smoke run this family
// alongside the root-package benchmarks.

func benchKernel(b *testing.B, kernel Kernel) {
	for e := 10; e <= 16; e += 2 {
		n := 1 << e
		b.Run(fmt.Sprintf("n=2^%d", e), func(b *testing.B) {
			p, err := NewPlanKernel(n, Forward, kernel)
			if err != nil {
				b.Fatal(err)
			}
			src := make([]complex128, n)
			dst := make([]complex128, n)
			for i := range src {
				src[i] = complex(float64(i%11)-5, float64(i%7)-3)
			}
			p.Execute(dst, src)
			b.SetBytes(int64(n * 16))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Execute(dst, src)
			}
		})
	}
}

func BenchmarkKernelFlat(b *testing.B)      { benchKernel(b, KernelFlat) }
func BenchmarkKernelRecursive(b *testing.B) { benchKernel(b, KernelRecursive) }

// BenchmarkKernelInPlace isolates the in-place flat path (permute + stages,
// no gather) from the out-of-place one.
func BenchmarkKernelInPlace(b *testing.B) {
	for e := 10; e <= 16; e += 2 {
		n := 1 << e
		b.Run(fmt.Sprintf("n=2^%d", e), func(b *testing.B) {
			p := MustPlan(n, Forward)
			buf := make([]complex128, n)
			for i := range buf {
				buf[i] = complex(float64(i%11)-5, float64(i%7)-3)
			}
			p.ExecuteInPlace(buf)
			b.SetBytes(int64(n * 16))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ExecuteInPlace(buf)
			}
		})
	}
}

// BenchmarkKernelBluestein pits the convolution-length chooser against the
// legacy next-power-of-two pinning on large primes — the case the chooser
// exists for is a prime just above half a power of two, where pinning nearly
// doubles the convolution.
func BenchmarkKernelBluestein(b *testing.B) {
	for _, n := range []int{4099, 16411, 65537} {
		chosen := convLen(n)
		pow2 := 1
		for pow2 < 2*n-1 {
			pow2 <<= 1
		}
		for _, cfg := range []struct {
			tag string
			m   int
		}{{"chosen", chosen}, {"pow2", pow2}} {
			b.Run(fmt.Sprintf("n=%d/m=%s-%d", n, cfg.tag, cfg.m), func(b *testing.B) {
				bl, err := newBluestein(n, Forward, cfg.m)
				if err != nil {
					b.Fatal(err)
				}
				src := make([]complex128, n)
				dst := make([]complex128, n)
				for i := range src {
					src[i] = complex(float64(i%11)-5, float64(i%7)-3)
				}
				bl.transform(dst, src, 1)
				b.SetBytes(int64(n * 16))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bl.transform(dst, src, 1)
				}
			})
		}
	}
}
