package fft

// rec computes the sizes[lvl]-point transform of the strided source into the
// contiguous dst. It implements decimation-in-time Cooley-Tukey: with
// n = r·m, the r sub-transforms over the residue classes src[t], src[t+r·s],
// ... land contiguously in dst[t·m : (t+1)·m], then the combine pass applies
// inter-stage twiddles and an r-point butterfly down each column k2,
// producing dst[k1·m + k2] = Σ_t ω_n^{t·k2} Y_t[k2] ω_r^{t·k1} in place.
func (p *Plan) rec(dst, src []complex128, stride, lvl int, scratch []complex128) {
	n := p.sizes[lvl]
	if lvl == len(p.factors) {
		// Leaf: size 1 (plain copy) or a Bluestein remainder.
		if n == 1 {
			dst[0] = src[0]
			return
		}
		p.blue.transform(dst, src, stride)
		return
	}
	r := p.factors[lvl]
	m := n / r

	if m == 1 {
		// Pure butterfly over the strided source; gather directly.
		for t := 0; t < r; t++ {
			dst[t] = src[t*stride]
		}
		p.butterflyInPlaceColumn(dst, 0, 1, r, lvl, scratch)
		return
	}

	for t := 0; t < r; t++ {
		p.rec(dst[t*m:(t+1)*m], src[t*stride:], stride*r, lvl+1, scratch)
	}

	tw := p.tw[lvl]
	switch r {
	case 2:
		for k2 := 0; k2 < m; k2++ {
			a := dst[k2]
			b := dst[m+k2] * tw[k2]
			dst[k2] = a + b
			dst[m+k2] = a - b
		}
	case 4:
		// ω_4^1 = sign·(-i): forward -i, inverse +i.
		m2, m3 := 2*m, 3*m
		if p.sign == Forward {
			for k2 := 0; k2 < m; k2++ {
				a := dst[k2]
				b := dst[m+k2] * tw[k2]
				c := dst[m2+k2] * tw[m+k2]
				d := dst[m3+k2] * tw[m2+k2]
				apc, amc := a+c, a-c
				bpd, bmd := b+d, b-d
				jbmd := complex(imag(bmd), -real(bmd)) // -i·(b-d)
				dst[k2] = apc + bpd
				dst[m+k2] = amc + jbmd
				dst[m2+k2] = apc - bpd
				dst[m3+k2] = amc - jbmd
			}
		} else {
			for k2 := 0; k2 < m; k2++ {
				a := dst[k2]
				b := dst[m+k2] * tw[k2]
				c := dst[m2+k2] * tw[m+k2]
				d := dst[m3+k2] * tw[m2+k2]
				apc, amc := a+c, a-c
				bpd, bmd := b+d, b-d
				jbmd := complex(-imag(bmd), real(bmd)) // +i·(b-d)
				dst[k2] = apc + bpd
				dst[m+k2] = amc + jbmd
				dst[m2+k2] = apc - bpd
				dst[m3+k2] = amc - jbmd
			}
		}
	case 3:
		w1, w2 := p.radixTw[lvl][1], p.radixTw[lvl][2]
		m2 := 2 * m
		for k2 := 0; k2 < m; k2++ {
			a := dst[k2]
			b := dst[m+k2] * tw[k2]
			c := dst[m2+k2] * tw[m+k2]
			dst[k2] = a + b + c
			dst[m+k2] = a + w1*b + w2*c
			dst[m2+k2] = a + w2*b + w1*c
		}
	case 5:
		rt := p.radixTw[lvl]
		m2, m3, m4 := 2*m, 3*m, 4*m
		for k2 := 0; k2 < m; k2++ {
			a := dst[k2]
			b := dst[m+k2] * tw[k2]
			c := dst[m2+k2] * tw[m+k2]
			d := dst[m3+k2] * tw[m2+k2]
			e := dst[m4+k2] * tw[m3+k2]
			dst[k2] = a + b + c + d + e
			dst[m+k2] = a + rt[1]*b + rt[2]*c + rt[3]*d + rt[4]*e
			dst[m2+k2] = a + rt[2]*b + rt[4]*c + rt[1]*d + rt[3]*e
			dst[m3+k2] = a + rt[3]*b + rt[1]*c + rt[4]*d + rt[2]*e
			dst[m4+k2] = a + rt[4]*b + rt[3]*c + rt[2]*d + rt[1]*e
		}
	default:
		for k2 := 0; k2 < m; k2++ {
			scratch[0] = dst[k2]
			for t := 1; t < r; t++ {
				scratch[t] = dst[t*m+k2] * tw[(t-1)*m+k2]
			}
			p.genericButterfly(dst, k2, m, r, lvl, scratch)
		}
	}
}

// butterflyInPlaceColumn applies the r-point DFT to dst[base], dst[base+step],
// ..., in place, using scratch of length ≥ r. No inter-stage twiddles are
// applied (they are all 1 when m == 1).
func (p *Plan) butterflyInPlaceColumn(dst []complex128, base, step, r, lvl int, scratch []complex128) {
	for t := 0; t < r; t++ {
		scratch[t] = dst[base+t*step]
	}
	rt := p.radixTw[lvl]
	for k1 := 0; k1 < r; k1++ {
		sum := scratch[0]
		idx := 0
		for t := 1; t < r; t++ {
			idx += k1
			if idx >= r {
				idx -= r
			}
			sum += scratch[t] * rt[idx]
		}
		dst[base+k1*step] = sum
	}
}

// genericButterfly computes the column butterfly for arbitrary radix r from
// the pre-twiddled values in scratch[0..r-1]:
//
//	dst[k1·m + k2] = Σ_t scratch[t]·ω_r^{t·k1}
func (p *Plan) genericButterfly(dst []complex128, k2, m, r, lvl int, scratch []complex128) {
	rt := p.radixTw[lvl]
	for k1 := 0; k1 < r; k1++ {
		sum := scratch[0]
		idx := 0
		for t := 1; t < r; t++ {
			idx += k1
			if idx >= r {
				idx -= r
			}
			sum += scratch[t] * rt[idx]
		}
		dst[k1*m+k2] = sum
	}
}
