package fft

import "fmt"

// bluestein implements the chirp-z transform, turning a DFT of arbitrary
// size n into a circular convolution of power-of-two size M ≥ 2n-1, which the
// radix-2/4 machinery handles. It is engaged by the planner for sizes with
// prime factors larger than maxGenericRadix.
//
// Identity: with c_t = exp(sign·πi·t²/n),
//
//	X_j = c_j · Σ_k (x_k·c_k) · conj(c_{j-k})
//
// so X = c ⊙ (x⊙c ⊛ conj(c)), computed via three size-M transforms (one of
// which is precomputed here).
type bluestein struct {
	n    int
	m    int
	sign Sign

	chirp []complex128 // c_t for t in [0, n)
	bq    []complex128 // forward transform of the padded conj-chirp kernel

	fwd *Plan // size-m Forward plan
	inv *Plan // size-m Inverse plan

	bufs chan *blueBufs
}

type blueBufs struct {
	a  []complex128
	fa []complex128
}

func newBluestein(n int, sign Sign) (*bluestein, error) {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := &bluestein{n: n, m: m, sign: sign}
	var err error
	if b.fwd, err = NewPlan(m, Forward); err != nil {
		return nil, fmt.Errorf("fft: bluestein(%d): %w", n, err)
	}
	if b.inv, err = NewPlan(m, Inverse); err != nil {
		return nil, fmt.Errorf("fft: bluestein(%d): %w", n, err)
	}

	b.chirp = make([]complex128, n)
	for t := 0; t < n; t++ {
		// c_t = exp(sign·2πi·t²/(2n)); reduce t² mod 2n to stay accurate.
		t2 := (t * t) % (2 * n)
		b.chirp[t] = unitAngle(sign, t2, 2*n)
	}

	// Kernel: q_t = conj(c_t) at offsets 0..n-1 and mirrored at m-t for the
	// negative lags of the convolution.
	q := make([]complex128, m)
	for t := 0; t < n; t++ {
		cc := conj(b.chirp[t])
		q[t] = cc
		if t > 0 {
			q[m-t] = cc
		}
	}
	b.bq = make([]complex128, m)
	b.fwd.Execute(b.bq, q)

	b.bufs = make(chan *blueBufs, 4)
	return b, nil
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// unitAngle returns exp(sign·2πi·k/n) without going through a Plan.
func unitAngle(sign Sign, k, n int) complex128 {
	p := Plan{sign: sign}
	return p.omega(n, k)
}

func (b *bluestein) getBufs() *blueBufs {
	select {
	case bb := <-b.bufs:
		return bb
	default:
		return &blueBufs{
			a:  make([]complex128, b.m),
			fa: make([]complex128, b.m),
		}
	}
}

func (b *bluestein) putBufs(bb *blueBufs) {
	select {
	case b.bufs <- bb:
	default:
	}
}

// transform computes the n-point DFT of the strided src into dst[0..n-1].
func (b *bluestein) transform(dst, src []complex128, stride int) {
	bb := b.getBufs()
	a, fa := bb.a, bb.fa
	for i := range a {
		a[i] = 0
	}
	for t := 0; t < b.n; t++ {
		a[t] = src[t*stride] * b.chirp[t]
	}
	b.fwd.Execute(fa, a)
	for i := range fa {
		fa[i] *= b.bq[i]
	}
	b.inv.Execute(a, fa)
	scale := complex(1/float64(b.m), 0)
	for j := 0; j < b.n; j++ {
		dst[j] = a[j] * scale * b.chirp[j]
	}
	b.putBufs(bb)
}
