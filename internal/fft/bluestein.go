package fft

import (
	"fmt"
	"sort"
)

// bluestein implements the chirp-z transform, turning a DFT of arbitrary
// size n into a circular convolution of size M ≥ 2n-1 that the fast kernels
// handle. It is engaged by the planner for sizes with prime factors larger
// than maxGenericRadix.
//
// Identity: with c_t = exp(sign·πi·t²/n),
//
//	X_j = c_j · Σ_k (x_k·c_k) · conj(c_{j-k})
//
// so X = c ⊙ (x⊙c ⊛ conj(c)), computed via three size-M transforms (one of
// which is precomputed here).
//
// M was historically pinned to the next power of two, which can overshoot
// 2n-1 by almost 2×; convLen instead picks the cheapest size the kernels
// handle among o·2^k candidates (o a small odd with a specialized butterfly),
// under a per-point stage-cost model that still credits the flat kernel's
// edge on pure powers of two.

// convOdd lists the odd cofactors considered for the convolution length:
// 1 keeps the flat power-of-two kernel; 3, 5, 9 = 3², 15 = 3·5 add at most
// two specialized odd-radix stages on top of the radix-4/2 recursion.
var convOdd = [...]int{1, 3, 5, 9, 15}

// convCost estimates the per-transform cost of an m = o·2^j candidate in
// per-point butterfly units: the flat kernel's radix-4/2 stages cost ~0.5
// per point per log2 level; the recursive engine pays a walk overhead on the
// same levels, the odd-radix stage cost (radix r is O(r) per point), and a
// fixed per-transform overhead (plan-walk setup, twiddle-table dispatch)
// that amortizes away as m grows — the term that makes small odd-cofactor
// candidates lose to a cheap flat-kernel overshoot. The constants are
// calibrated on the BenchmarkKernelBluestein family (BENCH_PR6.json: the
// chosen 36864 and 147456 beat their pow-2 fallbacks, while 9216 lost to
// 16384 at n=4099 by 11%) — what matters is the ordering they induce, not
// their absolute scale.
func convCost(m, o int) float64 {
	j := 0
	for v := m / o; v > 1; v >>= 1 {
		j++
	}
	perPoint := 0.5 * float64(j) // radix-4/2 levels
	if o == 1 {
		return float64(m) * perPoint // flat kernel
	}
	perPoint *= 1.30 // recursive-walk overhead on the pow-2 levels
	switch o {
	case 3:
		perPoint += 2.0
	case 5:
		perPoint += 3.3
	case 9:
		perPoint += 4.0 // two radix-3 stages
	case 15:
		perPoint += 5.3 // radix-3 + radix-5
	}
	perPoint += 24000 / float64(m) // fixed recursive-engine overhead, amortized
	return float64(m) * perPoint
}

// ConvCandidates returns the legal Bluestein convolution lengths for an
// n-point leaf — for each odd cofactor in convOdd, the smallest o·2^k ≥ 2n−1
// — sorted ascending. This is exactly the candidate set convLen scores,
// exported so the autotuner measures the same ladder the heuristic ranks and
// the two cannot drift.
func ConvCandidates(n int) []int {
	need := 2*n - 1
	out := make([]int, 0, len(convOdd))
	for _, o := range convOdd {
		m := o
		for m < need {
			m <<= 1
		}
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// BluesteinLeaf returns the Bluestein leaf size a plan for n will carry (the
// remainder after every generic radix stage), or 0 when n factors entirely
// into radices the recursive engine handles — the key the convolution-length
// knob is tuned and remembered under.
func BluesteinLeaf(n int) int {
	if n <= 0 {
		return 0
	}
	for n%2 == 0 {
		n /= 2
	}
	for f := 3; f <= maxGenericRadix; f += 2 {
		for n%f == 0 {
			n /= f
		}
	}
	if n > 1 {
		return n
	}
	return 0
}

// convLen picks the convolution length for a Bluestein leaf of size n: the
// cheapest supported m ≥ 2n-1 under convCost, preferring the smaller m on
// ties.
func convLen(n int) int {
	need := 2*n - 1
	best, bestCost := 0, 0.0
	for _, o := range convOdd {
		m := o
		for m < need {
			m <<= 1
		}
		if c := convCost(m, o); best == 0 || c < bestCost || (c == bestCost && m < best) {
			best, bestCost = m, c
		}
	}
	return best
}

type bluestein struct {
	n    int
	m    int
	sign Sign

	chirp []complex128 // c_t for t in [0, n)
	bq    []complex128 // forward transform of the padded conj-chirp kernel

	fwd *Plan // size-m Forward plan
	inv *Plan // size-m Inverse plan

	bufs chan *blueBufs
}

type blueBufs struct {
	a  []complex128
	fa []complex128
}

// newBluestein builds the chirp-z state for an n-point leaf over an m-point
// circular convolution. m must be ≥ 2n-1 with no prime factor above
// maxGenericRadix; plan construction passes convLen(n), and benchmarks pass
// the legacy next power of two to measure the chooser against it.
func newBluestein(n int, sign Sign, m int) (*bluestein, error) {
	if m < 2*n-1 {
		return nil, fmt.Errorf("fft: bluestein(%d): convolution length %d < %d", n, m, 2*n-1)
	}
	b := &bluestein{n: n, m: m, sign: sign}
	var err error
	if b.fwd, err = NewPlan(m, Forward); err != nil {
		return nil, fmt.Errorf("fft: bluestein(%d): %w", n, err)
	}
	if b.inv, err = NewPlan(m, Inverse); err != nil {
		return nil, fmt.Errorf("fft: bluestein(%d): %w", n, err)
	}

	b.chirp = make([]complex128, n)
	for t := 0; t < n; t++ {
		// c_t = exp(sign·2πi·t²/(2n)); reduce t² mod 2n to stay accurate.
		t2 := (t * t) % (2 * n)
		b.chirp[t] = unitAngle(sign, t2, 2*n)
	}

	// Kernel: q_t = conj(c_t) at offsets 0..n-1 and mirrored at m-t for the
	// negative lags of the convolution.
	q := make([]complex128, m)
	for t := 0; t < n; t++ {
		cc := conj(b.chirp[t])
		q[t] = cc
		if t > 0 {
			q[m-t] = cc
		}
	}
	b.bq = make([]complex128, m)
	b.fwd.Execute(b.bq, q)

	b.bufs = make(chan *blueBufs, 4)
	return b, nil
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// unitAngle returns exp(sign·2πi·k/n) without going through a Plan.
func unitAngle(sign Sign, k, n int) complex128 {
	p := Plan{sign: sign}
	return p.omega(n, k)
}

func (b *bluestein) getBufs() *blueBufs {
	select {
	case bb := <-b.bufs:
		return bb
	default:
		return &blueBufs{
			a:  make([]complex128, b.m),
			fa: make([]complex128, b.m),
		}
	}
}

func (b *bluestein) putBufs(bb *blueBufs) {
	select {
	case b.bufs <- bb:
	default:
	}
}

// transform computes the n-point DFT of the strided src into dst[0..n-1].
func (b *bluestein) transform(dst, src []complex128, stride int) {
	bb := b.getBufs()
	a, fa := bb.a, bb.fa
	for i := range a {
		a[i] = 0
	}
	for t := 0; t < b.n; t++ {
		a[t] = src[t*stride] * b.chirp[t]
	}
	b.fwd.Execute(fa, a)
	for i := range fa {
		fa[i] *= b.bq[i]
	}
	b.inv.Execute(a, fa)
	scale := complex(1/float64(b.m), 0)
	for j := 0; j < b.n; j++ {
		dst[j] = a[j] * scale * b.chirp[j]
	}
	b.putBufs(bb)
}
