// Package fft is a from-scratch planned FFT engine, the stand-in for FFTW in
// this reproduction. It provides:
//
//   - a flat, iterative, cache-friendly power-of-two kernel: radix-4
//     decimation-in-time butterflies (plus a radix-2 fixup stage for odd
//     log2 n) over a precomputed bit-reversal permutation and per-stage
//     twiddle tables, served from a bounded shared table cache — the default
//     execution path for every power-of-two size, in and out of place;
//   - a planner that factors non-power-of-two N into radix stages (4, 2, 3,
//     5, 7 and generic small primes) with per-stage precomputed twiddle
//     tables, run by a recursive mixed-radix Cooley-Tukey executor with
//     specialized butterflies for radices 2, 3, 4 and 5;
//   - Bluestein's chirp-z algorithm for sizes containing large prime
//     factors, with the convolution length chosen by a stage-cost model
//     over the sizes the kernels handle cheaply (not pinned to the next
//     power of two);
//   - strided input execution, which the two-layer ABFT decomposition relies
//     on for its non-contiguous sub-FFTs.
//
// The engine is deterministic and allocation-free on the hot path (scratch
// buffers are pooled per plan).
package fft

import (
	"fmt"
	"math"
	"sync"
)

// Sign selects the transform direction: the exponent of the kernel is
// exp(sign·2πi/N). Forward uses -1 (engineering convention, matching the
// paper's ω_N = exp(-2πi/N)); Inverse uses +1 and is unscaled.
type Sign int

const (
	// Forward is the forward DFT direction.
	Forward Sign = -1
	// Inverse is the unscaled inverse DFT direction. Divide by N to invert
	// a Forward transform exactly.
	Inverse Sign = +1
)

// maxGenericRadix is the largest prime handled by the O(r²) generic
// butterfly; larger prime factors switch the whole remaining size to
// Bluestein's algorithm.
const maxGenericRadix = 31

// Kernel identifies which execution engine a plan runs on.
type Kernel int

const (
	// KernelAuto lets the planner choose: the flat iterative kernel for
	// power-of-two sizes, the recursive mixed-radix walk otherwise.
	KernelAuto Kernel = iota
	// KernelFlat forces the flat iterative radix-4/2 kernel; only
	// power-of-two sizes qualify.
	KernelFlat
	// KernelRecursive forces the recursive mixed-radix executor — kept
	// selectable so benchmarks and cross-kernel tests can measure the flat
	// kernel against its predecessor on the same binary.
	KernelRecursive
)

func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelFlat:
		return "flat"
	case KernelRecursive:
		return "recursive"
	default:
		return "unknown-kernel"
	}
}

// Plan holds the factorization and twiddle tables for transforms of a fixed
// size and direction. Plans are safe for concurrent use by multiple
// goroutines.
type Plan struct {
	n    int
	sign Sign

	// factors[i] is the radix of recursion level i; sizes[i] is the
	// sub-transform size at level i (sizes[0] == n). sizes[len(factors)]
	// is the leaf size: 1 normally, or the Bluestein remainder.
	factors []int
	sizes   []int

	// tw[i] holds the inter-stage twiddles for level i: for n' = sizes[i],
	// r = factors[i], m = n'/r, entry (t-1)*m + k2 is ω_{n'}^{sign·t·k2}
	// for t in [1,r).
	tw [][]complex128

	// radixTw[i] holds ω_r^{sign·j} for j in [0,r) at level i, used by the
	// generic butterfly.
	radixTw [][]complex128

	// blue is non-nil when the leaf size needs Bluestein's algorithm.
	blue *bluestein

	maxRadix int
	scratch  sync.Pool // of []complex128, length maxRadix
	work     sync.Pool // of []complex128, length n (non-power-of-two in-place path)

	// flat is the plan's iterative kernel state, resolved at plan time for
	// power-of-two sizes so execution does no lookup per call. The tables
	// (bit-reversal permutation, per-stage twiddles) come from the bounded
	// shared kernel cache (sharing across same-size plans) or, past the cap,
	// are plan-private — process memory is bounded either way. nil means the
	// plan runs the recursive mixed-radix executor.
	flat *flatState
}

// NewPlan creates a plan for size n and direction sign. n must be positive.
// Power-of-two sizes run the flat iterative kernel; every other size runs
// the recursive mixed-radix executor (with Bluestein leaves for large
// primes).
func NewPlan(n int, sign Sign) (*Plan, error) {
	return NewPlanKernel(n, sign, KernelAuto)
}

// NewPlanKernel is NewPlan with an explicit kernel choice. KernelFlat
// requires a power-of-two n; KernelRecursive is always accepted and exists
// so benchmarks and cross-kernel tests can pit the two engines against each
// other on the same binary.
func NewPlanKernel(n int, sign Sign, kernel Kernel) (*Plan, error) {
	return NewPlanConfig(n, sign, PlanConfig{Kernel: kernel})
}

// PlanConfig carries the plan-time knobs the autotuner (internal/tune) can
// set. The zero value reproduces NewPlan exactly — KernelAuto, heuristic
// Bluestein convolution lengths — so untuned plans stay bit-identical.
type PlanConfig struct {
	// Kernel forces the execution engine; KernelAuto keeps the planner's
	// choice (flat for powers of two).
	Kernel Kernel
	// ConvLen, when non-nil, chooses the Bluestein convolution length for a
	// leaf of the given size; a return ≤ 0 defers to the convCost heuristic,
	// anything else must satisfy m ≥ 2·leaf−1 (enforced at plan build).
	ConvLen func(leaf int) int
}

// NewPlanConfig is NewPlan with explicit knob settings; see PlanConfig.
func NewPlanConfig(n int, sign Sign, cfg PlanConfig) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fft: size must be positive, got %d", n)
	}
	if sign != Forward && sign != Inverse {
		return nil, fmt.Errorf("fft: sign must be Forward or Inverse, got %d", sign)
	}
	switch cfg.Kernel {
	case KernelAuto, KernelRecursive:
	case KernelFlat:
		if !isPow2(n) {
			return nil, fmt.Errorf("fft: the flat kernel needs a power-of-two size, got %d", n)
		}
	default:
		return nil, fmt.Errorf("fft: unknown kernel %d", int(cfg.Kernel))
	}
	p := &Plan{n: n, sign: sign}
	p.factorize()
	if cfg.Kernel != KernelRecursive && isPow2(n) {
		// Flat path: the recursive per-level twiddle tables are never read,
		// so only the factorization (cheap, kept for Factors()) is built.
		p.flat = flatStateFor(n, sign)
	} else {
		p.buildTwiddles()
		if leaf := p.sizes[len(p.factors)]; leaf > 1 {
			m := 0
			if cfg.ConvLen != nil {
				m = cfg.ConvLen(leaf)
			}
			if m <= 0 {
				m = convLen(leaf)
			}
			b, err := newBluestein(leaf, sign, m)
			if err != nil {
				return nil, err
			}
			p.blue = b
		}
	}
	if p.maxRadix < 1 {
		p.maxRadix = 1
	}
	p.scratch.New = func() any {
		s := make([]complex128, p.maxRadix)
		return &s
	}
	p.work.New = func() any {
		s := make([]complex128, p.n)
		return &s
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error; for use with known-good sizes.
func MustPlan(n int, sign Sign) *Plan {
	p, err := NewPlan(n, sign)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the transform size.
func (p *Plan) N() int { return p.n }

// Direction returns the plan's transform direction.
func (p *Plan) Direction() Sign { return p.sign }

// Kernel returns the execution engine the plan resolved to.
func (p *Plan) Kernel() Kernel {
	if p.flat != nil {
		return KernelFlat
	}
	return KernelRecursive
}

// Factors returns a copy of the radix sequence chosen by the planner.
func (p *Plan) Factors() []int {
	out := make([]int, len(p.factors))
	copy(out, p.factors)
	return out
}

// factorize fills p.factors and p.sizes. It prefers radix 4, then 2, then
// odd primes in increasing order; any remainder with a prime factor larger
// than maxGenericRadix is left as a Bluestein leaf.
func (p *Plan) factorize() {
	n := p.n
	p.sizes = append(p.sizes, n)
	appendFactor := func(r int) {
		p.factors = append(p.factors, r)
		n /= r
		p.sizes = append(p.sizes, n)
		if r > p.maxRadix {
			p.maxRadix = r
		}
	}
	for n%4 == 0 {
		appendFactor(4)
	}
	for n%2 == 0 {
		appendFactor(2)
	}
	for f := 3; f <= maxGenericRadix; f += 2 {
		for n%f == 0 {
			appendFactor(f)
		}
	}
	// Whatever remains is 1 or has only prime factors > maxGenericRadix;
	// handled by Bluestein as a single leaf.
}

// buildTwiddles precomputes per-level twiddle tables.
func (p *Plan) buildTwiddles() {
	p.tw = make([][]complex128, len(p.factors))
	p.radixTw = make([][]complex128, len(p.factors))
	for i, r := range p.factors {
		np := p.sizes[i]
		m := np / r
		tab := make([]complex128, (r-1)*m)
		for t := 1; t < r; t++ {
			for k2 := 0; k2 < m; k2++ {
				tab[(t-1)*m+k2] = p.omega(np, t*k2)
			}
		}
		p.tw[i] = tab
		rt := make([]complex128, r)
		for j := 0; j < r; j++ {
			rt[j] = p.omega(r, j)
		}
		p.radixTw[i] = rt
	}
}

// omega returns exp(sign·2πi·k/n).
func (p *Plan) omega(n, k int) complex128 {
	k %= n
	if k < 0 {
		k += n
	}
	ang := float64(p.sign) * 2 * math.Pi * float64(k) / float64(n)
	s, c := math.Sincos(ang)
	return complex(c, s)
}

// Execute computes the transform of src into dst. dst and src must both have
// length N and must not overlap (use ExecuteInPlace for in-place operation).
// src is not modified.
func (p *Plan) Execute(dst, src []complex128) {
	p.ExecuteStrided(dst, src, 1)
}

// ExecuteStrided computes the transform of the N strided elements src[0],
// src[stride], ..., src[(N-1)*stride] into the contiguous dst[0..N-1].
// This is the primitive the decomposed ABFT sub-FFTs are built on.
func (p *Plan) ExecuteStrided(dst, src []complex128, stride int) {
	if len(dst) < p.n {
		panic(fmt.Sprintf("fft: dst too short: %d < %d", len(dst), p.n))
	}
	if need := (p.n-1)*stride + 1; len(src) < need {
		panic(fmt.Sprintf("fft: src too short for stride %d: %d < %d", stride, len(src), need))
	}
	if p.flat != nil {
		p.flat.gather(dst[:p.n], src, stride)
		p.flat.run(dst[:p.n], p.sign)
		return
	}
	sp := p.scratch.Get().(*[]complex128)
	p.rec(dst[:p.n], src, stride, 0, *sp)
	p.scratch.Put(sp)
}

// ExecuteInPlace transforms buf in place. With the flat kernel (power-of-two
// sizes) this is truly in place — an in-place bit-reversal permutation
// followed by the iterative stages, O(1) auxiliary space — and bit-identical
// to the out-of-place Execute (same stage sweep over the same value order).
// Other sizes round-trip through a pooled work buffer.
func (p *Plan) ExecuteInPlace(buf []complex128) {
	if len(buf) < p.n {
		panic(fmt.Sprintf("fft: buffer too short: %d < %d", len(buf), p.n))
	}
	if p.flat != nil {
		p.flat.permute(buf[:p.n])
		p.flat.run(buf[:p.n], p.sign)
		return
	}
	wp := p.work.Get().(*[]complex128)
	p.Execute(*wp, buf)
	copy(buf, *wp)
	p.work.Put(wp)
}

// Scale divides every element of buf by N; applying it after an Inverse plan
// of a Forward transform restores the original vector.
func (p *Plan) Scale(buf []complex128) {
	inv := complex(1/float64(p.n), 0)
	for i := range buf {
		buf[i] *= inv
	}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
