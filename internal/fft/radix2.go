package fft

import "sync"

// radix2State holds the tables for the iterative in-place radix-2 path: a
// bit-reversal permutation and a half-size twiddle table. The tables are
// immutable once built, so plans of the same (size, direction) can share one
// state — but the sharing registry is *bounded*: the old process-global
// sync.Map grew by one entry per distinct key for the life of the process,
// leaking tables a long-lived server would never touch again. The cache
// below keeps at most maxRadix2Cache entries; a plan whose key misses a full
// cache builds a private state that dies with the plan. Either way the hot
// path reads the plan's own r2 pointer, resolved once at build time.
type radix2State struct {
	rev    []int32
	wTable []complex128 // wTable[j] = ω_n^{sign·j}, j in [0, n/2)
}

// maxRadix2Cache bounds the shared registry: the common case — many plans
// (pooled contexts, per-rank sub-plans) over a handful of sizes — shares
// tables, while a size sweep cannot grow process memory without bound.
const maxRadix2Cache = 32

type radix2Key struct {
	n    int
	sign Sign
}

var (
	radix2Mu    sync.Mutex
	radix2Cache = make(map[radix2Key]*radix2State)
)

// radix2CacheEntries reports the registry size (for the bound test).
func radix2CacheEntries() int {
	radix2Mu.Lock()
	defer radix2Mu.Unlock()
	return len(radix2Cache)
}

// radix2stateFor resolves the plan's radix-2 state: a cache hit shares the
// existing tables, a miss builds them (outside the lock — construction is
// O(n)) and registers them only while the cache has room.
func (p *Plan) radix2stateFor() *radix2State {
	key := radix2Key{p.n, p.sign}
	radix2Mu.Lock()
	if st, ok := radix2Cache[key]; ok {
		radix2Mu.Unlock()
		return st
	}
	radix2Mu.Unlock()
	st := p.buildRadix2State()
	radix2Mu.Lock()
	defer radix2Mu.Unlock()
	if prior, ok := radix2Cache[key]; ok {
		// A concurrent build won the race; share its tables.
		return prior
	}
	if len(radix2Cache) < maxRadix2Cache {
		radix2Cache[key] = st
	}
	return st
}

// buildRadix2State constructs the tables for this plan's size and direction.
func (p *Plan) buildRadix2State() *radix2State {
	n := p.n
	st := &radix2State{}
	st.rev = make([]int32, n)
	shift := 1
	for 1<<shift < n {
		shift++
	}
	// Standard incremental bit-reversal construction.
	for i := 1; i < n; i++ {
		st.rev[i] = st.rev[i>>1]>>1 | int32(i&1)<<(shift-1)
	}
	st.wTable = make([]complex128, n/2)
	for j := 0; j < n/2; j++ {
		st.wTable[j] = p.omega(n, j)
	}
	return st
}

// radix2InPlace computes the transform of buf (length p.n, a power of two)
// truly in place: O(1) auxiliary space beyond the plan's tables. This is the
// path the parallel in-place scheme uses, where the algorithm's defining
// property — the input is destroyed — must actually hold.
func (p *Plan) radix2InPlace(buf []complex128) {
	n := p.n
	if n == 1 {
		return
	}
	st := p.r2
	for i, r := range st.rev {
		if int32(i) < r {
			buf[i], buf[r] = buf[r], buf[i]
		}
	}
	// Iterative decimation-in-time butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size // twiddle index stride into wTable
		for start := 0; start < n; start += size {
			idx := 0
			for j := start; j < start+half; j++ {
				w := st.wTable[idx]
				idx += step
				a := buf[j]
				b := buf[j+half] * w
				buf[j] = a + b
				buf[j+half] = a - b
			}
		}
	}
}
