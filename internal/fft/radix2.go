package fft

import "sync"

// radix2State holds the lazily built tables for the iterative in-place
// radix-2 path: a bit-reversal permutation and a half-size twiddle table.
type radix2State struct {
	once   sync.Once
	rev    []int32
	wTable []complex128 // wTable[j] = ω_n^{sign·j}, j in [0, n/2)
}

var radix2states sync.Map // map[radix2Key]*radix2State

type radix2Key struct {
	n    int
	sign Sign
}

// radix2state resolves the shared per-(size, direction) state. Called once
// at plan build time; the hot path uses the cached Plan.r2 pointer.
func (p *Plan) radix2state() *radix2State {
	key := radix2Key{p.n, p.sign}
	v, ok := radix2states.Load(key)
	if !ok {
		v, _ = radix2states.LoadOrStore(key, &radix2State{})
	}
	st := v.(*radix2State)
	st.once.Do(func() {
		n := p.n
		st.rev = make([]int32, n)
		shift := 1
		for 1<<shift < n {
			shift++
		}
		// Standard incremental bit-reversal construction.
		for i := 1; i < n; i++ {
			st.rev[i] = st.rev[i>>1]>>1 | int32(i&1)<<(shift-1)
		}
		st.wTable = make([]complex128, n/2)
		for j := 0; j < n/2; j++ {
			st.wTable[j] = p.omega(n, j)
		}
	})
	return st
}

// radix2InPlace computes the transform of buf (length p.n, a power of two)
// truly in place: O(1) auxiliary space beyond the shared per-size tables.
// This is the path the parallel in-place scheme uses, where the algorithm's
// defining property — the input is destroyed — must actually hold.
func (p *Plan) radix2InPlace(buf []complex128) {
	n := p.n
	if n == 1 {
		return
	}
	st := p.r2
	for i, r := range st.rev {
		if int32(i) < r {
			buf[i], buf[r] = buf[r], buf[i]
		}
	}
	// Iterative decimation-in-time butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size // twiddle index stride into wTable
		for start := 0; start < n; start += size {
			idx := 0
			for j := start; j < start+half; j++ {
				w := st.wTable[idx]
				idx += step
				a := buf[j]
				b := buf[j+half] * w
				buf[j] = a + b
				buf[j+half] = a - b
			}
		}
	}
}
