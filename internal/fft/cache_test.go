package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestKernelCacheShared pins the sharing half of the bounded-cache contract,
// generalized from the old radix-2-only registry: plans of the same
// (size, direction) share one immutable flat-kernel table set — bit-reversal
// permutation and every per-stage twiddle table — so the common pooled-
// context / per-rank case pays the O(n) build once, and the shared tables
// still produce the same transform as the recursive mixed-radix executor.
func TestKernelCacheShared(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 8, 64, 256, 1024} {
		for _, sign := range []Sign{Forward, Inverse} {
			a := MustPlan(n, sign)
			b := MustPlan(n, sign)
			if a.flat == nil || b.flat == nil {
				t.Fatalf("n=%d: power-of-two plan missing its flat-kernel state", n)
			}
			if a.flat != b.flat {
				t.Fatalf("n=%d sign=%d: same-key plans did not share cached tables", n, sign)
			}
			rec, err := NewPlanKernel(n, sign, KernelRecursive)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			}
			want := make([]complex128, n)
			rec.Execute(want, x)
			got := append([]complex128(nil), x...)
			b.ExecuteInPlace(got)
			for i := range want {
				if d := cmplx.Abs(got[i] - want[i]); d > 1e-9*float64(n) {
					t.Fatalf("n=%d sign=%d: flat in-place differs from recursive at %d by %g", n, sign, i, d)
				}
			}
		}
	}
}

// TestKernelCacheBounded pins the bound: a sweep over more distinct
// (size, direction) keys than the cap — exactly what grew the old
// process-global sync.Map forever — leaves the registry at or under
// maxKernelCache, with overflow plans owning private (but still correct)
// tables.
func TestKernelCacheBounded(t *testing.T) {
	for k := 1; k <= 20; k++ {
		n := 1 << k
		for _, sign := range []Sign{Forward, Inverse} {
			p := MustPlan(n, sign)
			if len(p.flat.rev) != n {
				t.Fatalf("n=%d: bit-reversal table size %d", n, len(p.flat.rev))
			}
			twTotal := 0
			for _, sg := range p.flat.stages {
				twTotal += len(sg.tw)
			}
			if n >= 4 && twTotal == 0 {
				t.Fatalf("n=%d: no stage twiddle tables", n)
			}
		}
	}
	if got := kernelCacheEntries(); got > maxKernelCache {
		t.Fatalf("kernel cache grew to %d entries, cap is %d", got, maxKernelCache)
	}
	// Past the cap, plans still build working private tables.
	n := 1 << 21
	p := MustPlan(n, Forward)
	if p.flat == nil || len(p.flat.rev) != n {
		t.Fatalf("overflow plan has no usable flat-kernel state")
	}
}
