package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"ftfft/internal/dft"
)

func randomVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func maxAbs(a []complex128) float64 {
	var m float64
	for _, v := range a {
		if d := cmplx.Abs(v); d > m {
			m = d
		}
	}
	return m
}

// sizes covering every code path: powers of two (radix-4/2 mix), radix 3/5/7,
// generic primes (11..31), Bluestein (37, 149), and composites of everything.
var testSizes = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32,
	35, 36, 37, 45, 49, 60, 64, 77, 81, 97, 100, 105, 121, 128, 120, 149,
	210, 243, 256, 289, 310, 512, 1000, 1024,
}

func TestExecuteMatchesDirectDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range testSizes {
		p, err := NewPlan(n, Forward)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		x := randomVec(rng, n)
		want := dft.Transform(x)
		got := make([]complex128, n)
		p.Execute(got, x)
		tol := 1e-9 * float64(n) * (1 + maxAbs(want))
		if d := maxAbsDiff(got, want); d > tol {
			t.Errorf("n=%d: max diff %g > tol %g (factors %v)", n, d, tol, p.Factors())
		}
	}
}

func TestInverseMatchesDirectIDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 4, 9, 15, 16, 37, 64, 120, 128} {
		p := MustPlan(n, Inverse)
		x := randomVec(rng, n)
		want := dft.Inverse(x)
		got := make([]complex128, n)
		p.Execute(got, x)
		p.Scale(got)
		tol := 1e-9 * float64(n) * (1 + maxAbs(want))
		if d := maxAbsDiff(got, want); d > tol {
			t.Errorf("n=%d inverse: max diff %g > tol %g", n, d, tol)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := testSizes[rng.Intn(len(testSizes))]
		fw := MustPlan(n, Forward)
		bw := MustPlan(n, Inverse)
		x := randomVec(rng, n)
		X := make([]complex128, n)
		y := make([]complex128, n)
		fw.Execute(X, x)
		bw.Execute(y, X)
		bw.Scale(y)
		return maxAbsDiff(x, y) <= 1e-8*float64(n)*(1+maxAbs(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		p := MustPlan(n, Forward)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		x := randomVec(rng, n)
		y := randomVec(rng, n)
		z := make([]complex128, n)
		for i := range z {
			z[i] = a*x[i] + y[i]
		}
		X := make([]complex128, n)
		Y := make([]complex128, n)
		Z := make([]complex128, n)
		p.Execute(X, x)
		p.Execute(Y, y)
		p.Execute(Z, z)
		for j := range Z {
			if cmplx.Abs(Z[j]-(a*X[j]+Y[j])) > 1e-8*float64(n)*(1+cmplx.Abs(Z[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		p := MustPlan(n, Forward)
		x := randomVec(rng, n)
		X := make([]complex128, n)
		p.Execute(X, x)
		var ein, eout float64
		for i := range x {
			ein += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			eout += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		return math.Abs(ein-eout/float64(n)) <= 1e-7*(1+ein)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeShiftTheorem(t *testing.T) {
	// A circular shift by s multiplies bin j by ω_n^{j·s}.
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{8, 12, 31, 64} {
		p := MustPlan(n, Forward)
		x := randomVec(rng, n)
		s := 1 + rng.Intn(n-1)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i+s)%n]
		}
		X := make([]complex128, n)
		Y := make([]complex128, n)
		p.Execute(X, x)
		p.Execute(Y, shifted)
		for j := 0; j < n; j++ {
			want := X[j] * dft.OmegaInv(n, j*s)
			if cmplx.Abs(Y[j]-want) > 1e-9*float64(n)*(1+cmplx.Abs(want)) {
				t.Fatalf("n=%d s=%d bin %d: got %v want %v", n, s, j, Y[j], want)
			}
		}
	}
}

func TestExecuteStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	base := randomVec(rng, 4096)
	for _, c := range []struct{ n, stride int }{
		{16, 3}, {64, 7}, {15, 13}, {37, 2}, {128, 32}, {1, 5},
	} {
		p := MustPlan(c.n, Forward)
		gathered := make([]complex128, c.n)
		for i := 0; i < c.n; i++ {
			gathered[i] = base[i*c.stride]
		}
		want := make([]complex128, c.n)
		p.Execute(want, gathered)
		got := make([]complex128, c.n)
		p.ExecuteStrided(got, base, c.stride)
		if d := maxAbsDiff(got, want); d > 1e-10*float64(c.n)*(1+maxAbs(want)) {
			t.Errorf("n=%d stride=%d: diff %g", c.n, c.stride, d)
		}
	}
}

func TestExecuteDoesNotModifySource(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{16, 15, 37, 128} {
		p := MustPlan(n, Forward)
		x := randomVec(rng, n)
		orig := append([]complex128(nil), x...)
		dst := make([]complex128, n)
		p.Execute(dst, x)
		for i := range x {
			if x[i] != orig[i] {
				t.Fatalf("n=%d: source modified at %d", n, i)
			}
		}
	}
}

func TestExecuteInPlacePow2MatchesOutOfPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024, 4096} {
		p := MustPlan(n, Forward)
		x := randomVec(rng, n)
		want := make([]complex128, n)
		p.Execute(want, x)
		got := append([]complex128(nil), x...)
		p.ExecuteInPlace(got)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n)*(1+maxAbs(want)) {
			t.Errorf("n=%d in-place: diff %g", n, d)
		}
	}
}

func TestExecuteInPlaceNonPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{6, 15, 37, 100} {
		p := MustPlan(n, Forward)
		x := randomVec(rng, n)
		want := make([]complex128, n)
		p.Execute(want, x)
		got := append([]complex128(nil), x...)
		p.ExecuteInPlace(got)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n)*(1+maxAbs(want)) {
			t.Errorf("n=%d in-place: diff %g", n, d)
		}
	}
}

func TestInPlaceInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 512
	fw := MustPlan(n, Forward)
	bw := MustPlan(n, Inverse)
	x := randomVec(rng, n)
	buf := append([]complex128(nil), x...)
	fw.ExecuteInPlace(buf)
	bw.ExecuteInPlace(buf)
	bw.Scale(buf)
	if d := maxAbsDiff(buf, x); d > 1e-9*float64(n)*(1+maxAbs(x)) {
		t.Fatalf("in-place round trip diff %g", d)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := NewPlan(0, Forward); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewPlan(-4, Forward); err == nil {
		t.Error("expected error for n<0")
	}
	if _, err := NewPlan(8, Sign(3)); err == nil {
		t.Error("expected error for bad sign")
	}
}

func TestFactorsMultiplyToN(t *testing.T) {
	for _, n := range testSizes {
		p := MustPlan(n, Forward)
		prod := 1
		for _, f := range p.Factors() {
			prod *= f
		}
		leaf := p.sizes[len(p.factors)]
		if prod*leaf != n {
			t.Errorf("n=%d: factors %v × leaf %d = %d", n, p.Factors(), leaf, prod*leaf)
		}
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	// A single plan must be safe for concurrent Execute calls.
	n := 256
	p := MustPlan(n, Forward)
	rng := rand.New(rand.NewSource(17))
	x := randomVec(rng, n)
	want := make([]complex128, n)
	p.Execute(want, x)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			dst := make([]complex128, n)
			for i := 0; i < 50; i++ {
				p.Execute(dst, x)
			}
			if maxAbsDiff(dst, want) > 1e-10*float64(n) {
				done <- errMismatch
				return
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errType{}

type errType struct{}

func (errType) Error() string { return "concurrent execute mismatch" }

func TestBluesteinLargePrime(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for _, n := range []int{37, 41, 149, 251, 509} {
		p := MustPlan(n, Forward)
		if p.blue == nil {
			t.Fatalf("n=%d should use Bluestein", n)
		}
		x := randomVec(rng, n)
		want := dft.Transform(x)
		got := make([]complex128, n)
		p.Execute(got, x)
		if d := maxAbsDiff(got, want); d > 1e-8*float64(n)*(1+maxAbs(want)) {
			t.Errorf("n=%d Bluestein diff %g", n, d)
		}
	}
}
