package fft

import (
	"math/rand"
	"testing"

	"ftfft/internal/dft"
)

// TestFlatKernelMatchesReference is the kernel half of the PR 6 property
// matrix: the flat iterative kernel against the O(n²) reference DFT across
// every power of two in 2..2^12, forward and inverse, out-of-place, in-place
// and strided. In-place and strided execution must further be bit-identical
// to out-of-place execution — the flat kernel runs the same stage sweep over
// the same value order regardless of how the input arrives.
func TestFlatKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for n := 2; n <= 1<<12; n <<= 1 {
		fw := MustPlan(n, Forward)
		bw := MustPlan(n, Inverse)
		if fw.Kernel() != KernelFlat || bw.Kernel() != KernelFlat {
			t.Fatalf("n=%d: power-of-two plan did not select the flat kernel", n)
		}
		x := randomVec(rng, n)

		want := dft.Transform(x)
		got := make([]complex128, n)
		fw.Execute(got, x)
		tol := 1e-9 * float64(n) * (1 + maxAbs(want))
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("n=%d: forward diverged from reference DFT by %g (tol %g)", n, d, tol)
		}

		wantInv := dft.Inverse(x)
		gotInv := make([]complex128, n)
		bw.Execute(gotInv, x)
		bw.Scale(gotInv)
		if d := maxAbsDiff(gotInv, wantInv); d > tol {
			t.Fatalf("n=%d: inverse diverged from reference IDFT by %g (tol %g)", n, d, tol)
		}

		// In-place: bit-identical to out-of-place.
		inPlace := append([]complex128(nil), x...)
		fw.ExecuteInPlace(inPlace)
		for i := range got {
			if inPlace[i] != got[i] {
				t.Fatalf("n=%d: in-place differs bit-wise from out-of-place at %d", n, i)
			}
		}

		// Strided: bit-identical to gathering first.
		const stride = 3
		base := randomVec(rng, n*stride)
		gathered := make([]complex128, n)
		for i := range gathered {
			gathered[i] = base[i*stride]
		}
		wantS := make([]complex128, n)
		fw.Execute(wantS, gathered)
		gotS := make([]complex128, n)
		fw.ExecuteStrided(gotS, base, stride)
		for i := range wantS {
			if gotS[i] != wantS[i] {
				t.Fatalf("n=%d: strided differs bit-wise from gathered at %d", n, i)
			}
		}
	}
}

// TestFlatMatchesRecursive pits the two kernels against each other across
// power-of-two sizes: same size, same direction, same input — answers equal
// within round-off. This is the cross-kernel row of the bit-identity matrix
// (the kernels legitimately differ in the last bits: different operation
// order).
func TestFlatMatchesRecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 2; n <= 1<<12; n <<= 1 {
		for _, sign := range []Sign{Forward, Inverse} {
			flat, err := NewPlanKernel(n, sign, KernelFlat)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := NewPlanKernel(n, sign, KernelRecursive)
			if err != nil {
				t.Fatal(err)
			}
			if flat.Kernel() != KernelFlat || rec.Kernel() != KernelRecursive {
				t.Fatalf("n=%d: kernel selection not honoured (%v/%v)", n, flat.Kernel(), rec.Kernel())
			}
			x := randomVec(rng, n)
			a := make([]complex128, n)
			b := make([]complex128, n)
			flat.Execute(a, x)
			rec.Execute(b, x)
			tol := 1e-9 * float64(n) * (1 + maxAbs(b))
			if d := maxAbsDiff(a, b); d > tol {
				t.Fatalf("n=%d sign=%d: kernels diverged by %g (tol %g)", n, sign, d, tol)
			}
		}
	}
}

// TestFlatKernelErrors pins the construction contract of the kernel knob.
func TestFlatKernelErrors(t *testing.T) {
	if _, err := NewPlanKernel(12, Forward, KernelFlat); err == nil {
		t.Error("expected error forcing the flat kernel onto a non-power-of-two size")
	}
	if _, err := NewPlanKernel(8, Forward, Kernel(99)); err == nil {
		t.Error("expected error for an unknown kernel")
	}
	if p, err := NewPlanKernel(8, Forward, KernelFlat); err != nil || p.Kernel() != KernelFlat {
		t.Errorf("KernelFlat on 8: %v, kernel %v", err, p.Kernel())
	}
	if p, err := NewPlanKernel(12, Forward, KernelAuto); err != nil || p.Kernel() != KernelRecursive {
		t.Errorf("KernelAuto on 12: %v, kernel %v", err, p.Kernel())
	}
}

// TestConvLen pins the Bluestein convolution-length chooser: every choice is
// ≥ 2n-1, factors as o·2^k for a supported odd o, and never costs more under
// the model than the legacy next power of two.
func TestConvLen(t *testing.T) {
	supported := func(m int) (int, bool) {
		for _, o := range convOdd {
			v := m
			for v%2 == 0 {
				v >>= 1
			}
			if v == o {
				return o, true
			}
		}
		return 0, false
	}
	for _, n := range []int{37, 149, 509, 521, 1031, 16411, 99991} {
		m := convLen(n)
		if m < 2*n-1 {
			t.Fatalf("n=%d: convLen %d < %d", n, m, 2*n-1)
		}
		o, ok := supported(m)
		if !ok {
			t.Fatalf("n=%d: convLen %d has an unsupported odd part", n, m)
		}
		pow2 := 1
		for pow2 < 2*n-1 {
			pow2 <<= 1
		}
		if convCost(m, o) > convCost(pow2, 1) {
			t.Fatalf("n=%d: chose m=%d costing more than the pow-2 fallback %d", n, m, pow2)
		}
	}
	// A prime just above half a power of two is the case the chooser exists
	// for: the legacy pow-2 length nearly doubles the work.
	if m := convLen(16411); m >= 1<<16 {
		t.Fatalf("convLen(16411) = %d, expected a sub-pow-2 candidate", m)
	}
}

// TestConvLenCalibration pins the chooser at the sizes BENCH_PR6.json
// measured: the odd-cofactor candidates win where the benchmarks showed
// them faster (16411, 65537), and n=4099 — the recorded +11% miss, where
// 9216's per-transform recursive overhead outweighed 16384's overshoot —
// goes to the flat power-of-two kernel.
func TestConvLenCalibration(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{4099, 16384},   // flat overshoot beats 9·2^10: small m amortizes overhead poorly
		{16411, 36864},  // 9·2^12, measured faster than 65536
		{65537, 147456}, // 9·2^14, measured 11% faster than 262144
	} {
		if m := convLen(tc.n); m != tc.want {
			t.Errorf("convLen(%d) = %d, want %d (benchmarked ordering)", tc.n, m, tc.want)
		}
	}
}
