package experiments

import (
	"fmt"
	"time"

	"ftfft/internal/core"
	"ftfft/internal/fault"
	"ftfft/internal/workload"
)

// Table1 reproduces the paper's Table 1: sequential execution time with
// faults injected. The expected shape: Opt-Offline(1m) ≈ 2× Opt-Offline(0)
// (a memory fault costs the offline scheme a full restart), while the online
// scheme's time barely moves as faults accumulate (each costs one O(√N)
// sub-FFT recomputation).
func Table1(o Options) error {
	o = o.withDefaults()
	header(o.Out, "Table 1 — execution time (ms) with faults, sequential")
	fmt.Fprintf(o.Out, "%-24s", "Scheme")
	for _, n := range o.Sizes {
		fmt.Fprintf(o.Out, " %10s", fmt.Sprintf("N=2^%d", log2(n)))
	}
	fmt.Fprintln(o.Out)

	rows := []struct {
		name   string
		cfg    core.Config
		faults func() []fault.Fault
	}{
		{"FFTW (0)", core.Config{Scheme: core.Plain}, nil},
		{"Opt-Offline (0)", core.Config{Scheme: core.Offline, Variant: core.Optimized, MemoryFT: true}, nil},
		{"Opt-Offline (1m)", core.Config{Scheme: core.Offline, Variant: core.Optimized, MemoryFT: true},
			func() []fault.Fault {
				return []fault.Fault{{Site: fault.SiteInputMemory, Rank: -1, Index: -1, Mode: fault.SetConstant, Value: 7}}
			}},
		{"Opt-Online (0)", core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true}, nil},
		{"Opt-Online (1c)", core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true},
			func() []fault.Fault {
				return []fault.Fault{{Site: fault.SiteSubFFT1, Rank: -1, Occurrence: 2, Index: -1, Mode: fault.AddConstant, Value: 3}}
			}},
		{"Opt-Online (1m+1c)", core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true},
			func() []fault.Fault {
				return []fault.Fault{
					{Site: fault.SiteInputMemory, Rank: -1, Index: -1, Mode: fault.SetConstant, Value: 7},
					{Site: fault.SiteSubFFT2, Rank: -1, Occurrence: 3, Index: -1, Mode: fault.AddConstant, Value: 3},
				}
			}},
		{"Opt-Online (1m+2c)", core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true},
			func() []fault.Fault {
				return []fault.Fault{
					{Site: fault.SiteIntermediateMemory, Rank: -1, Index: -1, Mode: fault.AddConstant, Value: 7},
					{Site: fault.SiteSubFFT1, Rank: -1, Occurrence: 5, Index: -1, Mode: fault.AddConstant, Value: 3},
					{Site: fault.SiteSubFFT2, Rank: -1, Occurrence: 9, Index: -1, Mode: fault.AddConstant, Value: -4},
				}
			}},
	}

	for _, row := range rows {
		fmt.Fprintf(o.Out, "%-24s", row.name)
		for _, n := range o.Sizes {
			src := workload.Uniform(int64(n), n)
			d, err := timeFaulty(n, row.cfg, src, o.Runs, row.faults)
			if err != nil {
				return fmt.Errorf("%s N=%d: %w", row.name, n, err)
			}
			fmt.Fprintf(o.Out, " %10.2f", float64(d)/float64(time.Millisecond))
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// timeFaulty measures a scheme with a fresh fault schedule per repetition.
func timeFaulty(n int, cfg core.Config, src []complex128, reps int, faults func() []fault.Fault) (time.Duration, error) {
	dst := make([]complex128, n)
	in := make([]complex128, n)
	return timeMedian(reps, func() error {
		copy(in, src)
		c := cfg
		if faults != nil {
			c.Injector = fault.NewSchedule(42, faults()...)
		}
		tr, err := core.New(n, c)
		if err != nil {
			return err
		}
		_, err = tr.Transform(dst, in)
		return err
	})
}
