// Package experiments regenerates every table and figure of the paper's
// evaluation (§9) on this repository's substrate. Each experiment prints
// rows shaped like the paper's, at laptop-scale default sizes (overridable):
// the claims under test are the *relative* ones — which scheme wins, by
// roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ftfft/internal/core"
)

// Options parameterizes all experiments.
type Options struct {
	// Sizes are the sequential problem sizes (Fig. 7, Tables 1/4/5/6 use
	// Sizes or their first element). Default 2^16..2^19.
	Sizes []int
	// ParallelN is the strong-scaling size for Fig. 8(a)/Table 2.
	// Default 2^20.
	ParallelN int
	// WeakBase is the per-rank size for weak scaling (Fig. 8(b)/Table 3).
	// Default 2^16.
	WeakBase int
	// Ranks are the worker counts for the parallel experiments.
	// Default {2, 4, 8, 16}.
	Ranks []int
	// Runs is the number of timing repetitions (median reported). Default 3.
	Runs int
	// FaultRuns is the Monte-Carlo sample count for Tables 4 and 6.
	// Default 200 (the paper uses 1000; raise it via the CLI for the full
	// run).
	FaultRuns int
	// Out receives the formatted tables.
	Out io.Writer
}

func (o Options) withDefaults() Options {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{1 << 16, 1 << 17, 1 << 18, 1 << 19}
	}
	if o.ParallelN == 0 {
		o.ParallelN = 1 << 20
	}
	if o.WeakBase == 0 {
		o.WeakBase = 1 << 16
	}
	if len(o.Ranks) == 0 {
		o.Ranks = []int{2, 4, 8, 16}
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.FaultRuns == 0 {
		o.FaultRuns = 200
	}
	return o
}

// Run dispatches an experiment by its paper id.
func Run(name string, o Options) error {
	switch name {
	case "fig7a":
		return Fig7a(o)
	case "fig7b":
		return Fig7b(o)
	case "table1":
		return Table1(o)
	case "fig8a":
		return Fig8a(o)
	case "fig8b":
		return Fig8b(o)
	case "table2":
		return Table2(o)
	case "table3":
		return Table3(o)
	case "table4":
		return Table4(o)
	case "table5":
		return Table5(o)
	case "table6":
		return Table6(o)
	case "all":
		for _, n := range Names() {
			if err := Run(n, o); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("experiments: unknown experiment %q (want one of %v)", name, Names())
	}
}

// Names lists all experiment ids in paper order.
func Names() []string {
	return []string{"fig7a", "fig7b", "table1", "fig8a", "fig8b", "table2", "table3", "table4", "table5", "table6"}
}

// timeMedian runs f reps times and returns the median wall-clock duration.
func timeMedian(reps int, f func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	ds := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		ds = append(ds, time.Since(start))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2], nil
}

// timeScheme measures one sequential scheme configuration on a fixed input.
func timeScheme(n int, cfg core.Config, src []complex128, reps int) (time.Duration, error) {
	tr, err := core.New(n, cfg)
	if err != nil {
		return 0, err
	}
	dst := make([]complex128, n)
	in := make([]complex128, n)
	return timeMedian(reps, func() error {
		copy(in, src) // schemes may repair their input; keep runs identical
		_, err := tr.Transform(dst, in)
		return err
	})
}

// overheadPct returns 100·(t-base)/base.
func overheadPct(t, base time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(t-base) / float64(base)
}

// header prints a table banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
