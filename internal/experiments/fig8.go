package experiments

import (
	"fmt"
	"time"

	"ftfft/internal/fault"
	"ftfft/internal/parallel"
	"ftfft/internal/workload"
)

// Fig8a reproduces Fig. 8(a): parallel strong scaling at fixed N. Expected
// shape: FT-FFTW > FFTW (checksum cost); the §6 optimizations close most of
// the gap, so opt-FT-FFTW ≈ opt-FFTW.
func Fig8a(o Options) error {
	o = o.withDefaults()
	header(o.Out, fmt.Sprintf("Fig 8(a) — strong scaling, execution time (ms), N=2^%d", log2(o.ParallelN)))
	fmt.Fprintf(o.Out, "%-8s %12s %12s %12s %12s\n", "ranks", "FFTW", "FT-FFTW", "opt-FFTW", "opt-FT-FFTW")
	for _, p := range o.Ranks {
		if err := fig8Row(o, o.ParallelN, p, false); err != nil {
			return err
		}
	}
	return nil
}

// Fig8b reproduces Fig. 8(b): weak scaling at fixed per-rank size.
func Fig8b(o Options) error {
	o = o.withDefaults()
	header(o.Out, fmt.Sprintf("Fig 8(b) — weak scaling, execution time (ms), N/rank=2^%d", log2(o.WeakBase)))
	fmt.Fprintf(o.Out, "%-8s %12s %12s %12s %12s\n", "N", "FFTW", "FT-FFTW", "opt-FFTW", "opt-FT-FFTW")
	for _, p := range o.Ranks {
		if err := fig8Row(o, o.WeakBase*p, p, true); err != nil {
			return err
		}
	}
	return nil
}

func fig8Row(o Options, n, p int, weak bool) error {
	src := workload.Uniform(int64(n+p), n)
	variants := []parallel.Config{
		{},
		{Protected: true},
		{Optimized: true},
		{Protected: true, Optimized: true},
	}
	if weak {
		fmt.Fprintf(o.Out, "2^%-6d", log2(n))
	} else {
		fmt.Fprintf(o.Out, "%-8d", p)
	}
	for _, cfg := range variants {
		d, err := timeParallel(n, p, cfg, src, o.Runs, nil)
		if err != nil {
			return fmt.Errorf("n=%d p=%d: %w", n, p, err)
		}
		fmt.Fprintf(o.Out, " %12.2f", float64(d)/float64(time.Millisecond))
	}
	fmt.Fprintln(o.Out)
	return nil
}

// Table2 reproduces Table 2: strong-scaling opt-FT-FFTW under fault mixes.
// Expected shape: all fault cases within noise of the fault-free run.
func Table2(o Options) error {
	o = o.withDefaults()
	header(o.Out, fmt.Sprintf("Table 2 — strong scaling opt-FT-FFTW with faults (ms), N=2^%d", log2(o.ParallelN)))
	fmt.Fprintf(o.Out, "%-26s", "Scheme")
	for _, p := range o.Ranks {
		fmt.Fprintf(o.Out, " %10s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(o.Out)
	for _, mix := range faultMixes() {
		fmt.Fprintf(o.Out, "%-26s", "Opt-FT-FFTW ("+mix.name+")")
		for _, p := range o.Ranks {
			n := o.ParallelN
			src := workload.Uniform(int64(n+p), n)
			d, err := timeParallel(n, p, parallel.Config{Protected: true, Optimized: true}, src, o.Runs, mix.faults)
			if err != nil {
				return err
			}
			fmt.Fprintf(o.Out, " %10.2f", float64(d)/float64(time.Millisecond))
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// Table3 reproduces Table 3: weak-scaling opt-FT-FFTW under fault mixes.
func Table3(o Options) error {
	o = o.withDefaults()
	header(o.Out, fmt.Sprintf("Table 3 — weak scaling opt-FT-FFTW with faults (ms), N/rank=2^%d", log2(o.WeakBase)))
	fmt.Fprintf(o.Out, "%-26s", "Scheme")
	for _, p := range o.Ranks {
		fmt.Fprintf(o.Out, " %10s", fmt.Sprintf("N=2^%d", log2(o.WeakBase*p)))
	}
	fmt.Fprintln(o.Out)
	for _, mix := range faultMixes() {
		fmt.Fprintf(o.Out, "%-26s", "Opt-FT-FFTW ("+mix.name+")")
		for _, p := range o.Ranks {
			n := o.WeakBase * p
			src := workload.Uniform(int64(n+p), n)
			d, err := timeParallel(n, p, parallel.Config{Protected: true, Optimized: true}, src, o.Runs, mix.faults)
			if err != nil {
				return err
			}
			fmt.Fprintf(o.Out, " %10.2f", float64(d)/float64(time.Millisecond))
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

type mix struct {
	name   string
	faults func() []fault.Fault
}

func faultMixes() []mix {
	twoMem := func() []fault.Fault {
		return []fault.Fault{
			{Site: fault.SiteMessage, Rank: 0, Occurrence: 2, Index: -1, Mode: fault.AddConstant, Value: 5},
			{Site: fault.SiteMessage, Rank: 1, Occurrence: 3, Index: -1, Mode: fault.AddConstant, Value: -4},
		}
	}
	twoComp := func() []fault.Fault {
		return []fault.Fault{
			{Site: fault.SiteParallelFFT1, Rank: 0, Occurrence: 2, Index: -1, Mode: fault.AddConstant, Value: 3},
			{Site: fault.SiteParallelFFT2, Rank: 1, Occurrence: 4, Index: -1, Mode: fault.AddConstant, Value: 6},
		}
	}
	return []mix{
		{"0", nil},
		{"2m", twoMem},
		{"2c", twoComp},
		{"2m+2c", func() []fault.Fault { return append(twoMem(), twoComp()...) }},
	}
}

func timeParallel(n, p int, cfg parallel.Config, src []complex128, reps int, faults func() []fault.Fault) (time.Duration, error) {
	dst := make([]complex128, n)
	in := make([]complex128, n)
	return timeMedian(reps, func() error {
		copy(in, src)
		c := cfg
		if faults != nil {
			c.Injector = fault.NewSchedule(7, faults()...)
		}
		pl, err := parallel.NewPlan(n, p, c)
		if err != nil {
			return err
		}
		_, err = pl.Transform(dst, in)
		return err
	})
}
