package experiments

import (
	"fmt"
	"math"
	"math/cmplx"

	"ftfft/internal/checksum"
	"ftfft/internal/core"
	"ftfft/internal/fft"
	"ftfft/internal/roundoff"
	"ftfft/internal/workload"
)

// Table5 reproduces the paper's Table 5: the minimal error magnitude each
// scheme can detect, at three injection positions — e1 in the input after
// checksum generation, e2 in the input of a second-layer FFT, e3 in the
// final output. Expected shape: the online scheme detects magnitudes several
// orders smaller than the offline scheme, because its verification units are
// √N-sized (threshold conditioning scales as ε·n² with unit size n).
func Table5(o Options) error {
	o = o.withDefaults()
	n := o.Sizes[0]
	m, k, err := core.Split(n)
	if err != nil {
		return err
	}
	header(o.Out, fmt.Sprintf("Table 5 — minimal detectable error magnitude, N=2^%d", log2(n)))
	fmt.Fprintf(o.Out, "%-10s %10s %10s %10s\n", "Scheme", "e1", "e2", "e3")

	x := workload.Uniform(3, n)
	sigma0 := 1 / math.Sqrt(3)

	planN := fft.MustPlan(n, fft.Forward)
	planM := fft.MustPlan(m, fft.Forward)
	planK := fft.MustPlan(k, fft.Forward)
	ran := checksum.CheckVector(n)
	cm := checksum.CheckVector(m)
	ck := checksum.CheckVector(k)
	etaOff := roundoff.EtaOffline(n, sigma0)
	eta1 := roundoff.EtaStage1(m, sigma0)
	eta2 := roundoff.EtaStage2(k, m, sigma0)
	etaOut := roundoff.EtaAccumulated(n, sigma0*math.Sqrt(float64(n)))

	// Each detector returns whether an injected error of magnitude eps at a
	// fixed position is detected by the given scheme's check.

	// Offline e1: corrupt input after (rA)·x; verify at the end.
	offE1 := func(eps float64) bool {
		cx := checksum.Dot(ran, x)
		bad := append([]complex128(nil), x...)
		bad[n/7] += complex(eps, 0)
		X := make([]complex128, n)
		planN.Execute(X, bad)
		return cmplx.Abs(checksum.DotOmega3(X)-cx) > etaOff
	}
	// Offline e2/e3: corrupt mid-computation or the output — the checksum
	// difference at the final verification is the same magnitude, so the
	// detector coincides with e3.
	offE3 := func(eps float64) bool {
		cx := checksum.Dot(ran, x)
		X := make([]complex128, n)
		planN.Execute(X, x)
		X[n/7] += complex(eps, 0)
		return cmplx.Abs(checksum.DotOmega3(X)-cx) > etaOff
	}

	// Online e1: corrupt a first-layer sub-input after its checksum.
	onE1 := func(eps float64) bool {
		buf := make([]complex128, m)
		for j := 0; j < m; j++ {
			buf[j] = x[j*k]
		}
		cx := checksum.Dot(cm, buf)
		buf[m/7] += complex(eps, 0)
		out := make([]complex128, m)
		planM.Execute(out, buf)
		return cmplx.Abs(checksum.DotOmega3(out)-cx) > eta1
	}
	// Online e2: corrupt a second-layer sub-input after its checksum.
	onE2 := func(eps float64) bool {
		buf := make([]complex128, k)
		for i := 0; i < k; i++ {
			buf[i] = x[i] * complex(math.Sqrt(float64(m)), 0) // stage-2 scale
		}
		cx := checksum.Dot(ck, buf)
		buf[k/7] += complex(eps, 0)
		out := make([]complex128, k)
		planK.Execute(out, buf)
		return cmplx.Abs(checksum.DotOmega3(out)-cx) > eta2
	}
	// Online e3: corrupt the final output; the whole-output memory pair
	// (Fig. 3) is the detector.
	onE3 := func(eps float64) bool {
		X := make([]complex128, n)
		planN.Execute(X, x)
		w := checksum.Weights(n)
		stored := checksum.GeneratePair(w, X)
		X[n/7] += complex(eps, 0)
		cur := checksum.GeneratePair(w, X)
		return cmplx.Abs(stored.D1-cur.D1) > etaOut
	}

	fmt.Fprintf(o.Out, "%-10s %10s %10s %10s\n", "Offline",
		fmtMag(minDetectable(offE1)), fmtMag(minDetectable(offE3)), fmtMag(minDetectable(offE3)))
	fmt.Fprintf(o.Out, "%-10s %10s %10s %10s\n", "Online",
		fmtMag(minDetectable(onE1)), fmtMag(minDetectable(onE2)), fmtMag(minDetectable(onE3)))
	return nil
}

// minDetectable sweeps magnitudes 10^0 … 10^-16 and returns the smallest
// detected one (+Inf when even 1.0 goes unnoticed).
func minDetectable(detect func(eps float64) bool) float64 {
	minMag := math.Inf(1)
	for e := 0; e >= -16; e-- {
		eps := math.Pow(10, float64(e))
		if detect(eps) {
			minMag = eps
		} else {
			break
		}
	}
	return minMag
}

func fmtMag(v float64) string {
	if math.IsInf(v, 1) {
		return "undetected"
	}
	return fmt.Sprintf("1e%d", int(math.Round(math.Log10(v))))
}
