package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func fmtSscanf(s, format string, args ...any) (int, error) {
	return fmt.Sscanf(s, format, args...)
}

// smallOpts keeps every experiment affordable inside the test suite.
func smallOpts(buf *bytes.Buffer) Options {
	return Options{
		Sizes:     []int{1 << 12, 1 << 13},
		ParallelN: 1 << 14,
		WeakBase:  1 << 12,
		Ranks:     []int{2, 4},
		Runs:      1,
		FaultRuns: 10,
		Out:       buf,
	}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, name := range Names() {
		var buf bytes.Buffer
		if err := Run(name, smallOpts(&buf)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "===") {
			t.Errorf("%s: no banner in output:\n%s", name, out)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
			t.Errorf("%s: suspiciously short output:\n%s", name, out)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := Run("fig99", smallOpts(&bytes.Buffer{})); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable5ShapeOnlineBeatsOffline(t *testing.T) {
	// The central numerical-stability claim: online detects magnitudes at
	// least 100× smaller than offline (paper: 1e-7 vs 1e-2 at 2^25).
	var buf bytes.Buffer
	o := smallOpts(&buf)
	o.Sizes = []int{1 << 14}
	if err := Table5(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var offE1, onE1 string
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 4 && f[0] == "Offline" {
			offE1 = f[1]
		}
		if len(f) == 4 && f[0] == "Online" {
			onE1 = f[1]
		}
	}
	if offE1 == "" || onE1 == "" {
		t.Fatalf("could not parse table:\n%s", out)
	}
	offExp := parseMag(t, offE1)
	onExp := parseMag(t, onE1)
	if onExp > offExp-2 {
		t.Errorf("online (1e%d) should detect ≥100× smaller errors than offline (1e%d):\n%s", onExp, offExp, out)
	}
}

func parseMag(t *testing.T, s string) int {
	t.Helper()
	var e int
	if _, err := sscanf(s, "1e%d", &e); err != nil {
		t.Fatalf("bad magnitude %q", s)
	}
	return e
}

func sscanf(s, format string, args ...any) (int, error) {
	return fmtSscanf(s, format, args...)
}

func TestFig7aShapeOptOnlineCheapest(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts(&buf)
	o.Sizes = []int{1 << 14}
	o.Runs = 3
	if err := Fig7a(o); err != nil {
		t.Fatal(err)
	}
	// Parse the single data row: N, offline, opt-offline, cfto-online,
	// opt-online.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	f := strings.Fields(lines[len(lines)-1])
	if len(f) != 5 {
		t.Fatalf("bad row: %q", lines[len(lines)-1])
	}
	vals := make([]float64, 4)
	for i := 0; i < 4; i++ {
		if _, err := fmtSscanf(strings.TrimSuffix(f[i+1], "%"), "%f", &vals[i]); err != nil {
			t.Fatalf("bad value %q", f[i+1])
		}
	}
	offline, optOffline, naiveOnline, optOnline := vals[0], vals[1], vals[2], vals[3]
	// The paper's qualitative claims (with generous slack for timing noise
	// at these small sizes):
	if optOffline > offline {
		t.Errorf("Opt-Offline (%g%%) should beat Offline (%g%%)", optOffline, offline)
	}
	if naiveOnline < optOnline {
		t.Errorf("naive online (%g%%) should cost more than Opt-Online (%g%%)", naiveOnline, optOnline)
	}
	if optOnline > offline {
		t.Errorf("Opt-Online (%g%%) should beat naive Offline (%g%%)", optOnline, offline)
	}
}
