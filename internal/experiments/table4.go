package experiments

import (
	"fmt"
	"math/cmplx"

	"ftfft/internal/checksum"
	"ftfft/internal/core"
	"ftfft/internal/fft"
	"ftfft/internal/roundoff"
	"ftfft/internal/workload"
)

// Table4 reproduces the paper's Table 4: observed maximum round-off checksum
// difference vs. the §8 estimate, and the resulting throughput (fraction of
// fault-free sub-FFTs whose difference stays below the threshold), for
// U(-1,1) and N(0,1) inputs and for both decomposition layers. Expected
// shape: Est ≥ Max (thresholds hold) with throughput ≈ 100%.
func Table4(o Options) error {
	o = o.withDefaults()
	n := o.Sizes[0]
	m, k, err := core.Split(n)
	if err != nil {
		return err
	}
	header(o.Out, fmt.Sprintf("Table 4 — round-off approximation, N=2^%d (m=%d, k=%d), %d runs", log2(n), m, k, o.FaultRuns))
	fmt.Fprintf(o.Out, "%-10s %12s %12s %9s %12s %12s %9s\n",
		"Input", "Max1", "Est1", "Thput1", "Max2", "Est2", "Thput2")

	for _, dist := range []struct {
		name   string
		gen    func(seed int64, n int) []complex128
		sigma0 float64
	}{
		{"U(-1,1)", workload.Uniform, 1 / 1.7320508075688772},
		{"N(0,1)", workload.Normal, 1},
	} {
		max1, max2, below1, below2, total1, total2 := 0.0, 0.0, 0, 0, 0, 0
		est1 := roundoff.EtaStage1(m, dist.sigma0)
		est2 := roundoff.EtaStage2(k, m, dist.sigma0)
		planM := fft.MustPlan(m, fft.Forward)
		planK := fft.MustPlan(k, fft.Forward)
		cm := checksum.CheckVector(m)
		ck := checksum.CheckVector(k)
		out := make([]complex128, m)
		buf := make([]complex128, m)
		colIn := make([]complex128, k)
		colOut := make([]complex128, k)

		for run := 0; run < o.FaultRuns; run++ {
			x := dist.gen(int64(run), n)
			// Stage 1: all k m-point sub-FFTs.
			work := make([]complex128, n)
			for i := 0; i < k; i++ {
				for j := 0; j < m; j++ {
					buf[j] = x[i+j*k]
				}
				cx := checksum.Dot(cm, buf)
				planM.Execute(out, buf)
				copy(work[i*m:], out)
				d := cmplx.Abs(checksum.DotOmega3(out) - cx)
				if d > max1 {
					max1 = d
				}
				if d <= est1 {
					below1++
				}
				total1++
			}
			// Stage 2: a sample of the m k-point column FFTs (with
			// twiddles), to keep the experiment affordable.
			for j := 0; j < m; j += maxI(1, m/16) {
				for i := 0; i < k; i++ {
					colIn[i] = work[i*m+j] * omegaTw(n, i*j)
				}
				cx := checksum.Dot(ck, colIn)
				planK.Execute(colOut, colIn)
				d := cmplx.Abs(checksum.DotOmega3(colOut) - cx)
				if d > max2 {
					max2 = d
				}
				if d <= est2 {
					below2++
				}
				total2++
			}
		}
		fmt.Fprintf(o.Out, "%-10s %12.3g %12.3g %8.2f%% %12.3g %12.3g %8.2f%%\n",
			dist.name, max1, est1, 100*float64(below1)/float64(total1),
			max2, est2, 100*float64(below2)/float64(total2))
	}
	return nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func omegaTw(n, k int) complex128 {
	return omegaUnit(n, k)
}
