package experiments

import (
	"fmt"

	"ftfft/internal/core"
	"ftfft/internal/workload"
)

// Fig7a reproduces Fig. 7(a): fault-free overhead of the computational-FT
// schemes relative to the plain FFT, per size. Expected shape (paper):
// Offline ≫ Opt-Offline; the naive online scheme is the worst (it re-derives
// checksum vectors per sub-FFT, ≥2× the offline cost); Opt-Online is the
// cheapest of all protected schemes.
func Fig7a(o Options) error {
	o = o.withDefaults()
	header(o.Out, "Fig 7(a) — overhead (%) without faults, computational FT")
	fmt.Fprintf(o.Out, "%-10s %12s %12s %12s %12s\n",
		"N", "Offline", "Opt-Offline", "CFTO-Online", "Opt-Online")
	schemes := []core.Config{
		{Scheme: core.Offline, Variant: core.Naive},
		{Scheme: core.Offline, Variant: core.Optimized},
		{Scheme: core.Online, Variant: core.Naive},
		{Scheme: core.Online, Variant: core.Optimized},
	}
	return overheadRows(o, schemes)
}

// Fig7b reproduces Fig. 7(b): fault-free overhead with both computational
// and memory FT. "Online" is the Fig. 2 hierarchy (computational
// optimizations only); "Opt-Online" is the Fig. 3 optimized hierarchy.
func Fig7b(o Options) error {
	o = o.withDefaults()
	header(o.Out, "Fig 7(b) — overhead (%) without faults, computational+memory FT")
	fmt.Fprintf(o.Out, "%-10s %12s %12s %12s %12s\n",
		"N", "Offline", "Opt-Offline", "Online", "Opt-Online")
	schemes := []core.Config{
		{Scheme: core.Offline, Variant: core.Naive, MemoryFT: true},
		{Scheme: core.Offline, Variant: core.Optimized, MemoryFT: true},
		{Scheme: core.Online, Variant: core.Naive, MemoryFT: true},
		{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true},
	}
	return overheadRows(o, schemes)
}

func overheadRows(o Options, schemes []core.Config) error {
	for _, n := range o.Sizes {
		src := workload.Uniform(int64(n), n)
		base, err := timeScheme(n, core.Config{Scheme: core.Plain}, src, o.Runs)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "2^%-8d", log2(n))
		for _, cfg := range schemes {
			t, err := timeScheme(n, cfg, src, o.Runs)
			if err != nil {
				return err
			}
			fmt.Fprintf(o.Out, " %11.1f%%", overheadPct(t, base))
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
