package experiments

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"ftfft/internal/core"
	"ftfft/internal/fault"
	"ftfft/internal/workload"
)

// Table6 reproduces the paper's Table 6: the distribution of output relative
// errors ‖X′−X‖∞/‖X‖∞ after one random high-bit flip in the input or output
// array, over many runs, for three schemes: no correction, optimized
// offline, and optimized online (both with memory FT). "Uncorrected" counts
// runs the scheme failed to repair (wrong indexing or exhausted retries).
// Expected shape: the online scheme's tail is far smaller than the offline
// scheme's, which is far smaller than no correction at all.
func Table6(o Options) error {
	o = o.withDefaults()
	n := o.Sizes[0]
	header(o.Out, fmt.Sprintf("Table 6 — relative output error after 1 random bit flip, N=2^%d, %d runs", log2(n), o.FaultRuns))
	thresholds := []float64{1e-6, 1e-8, 1e-10, 1e-12}
	fmt.Fprintf(o.Out, "%-14s %12s %9s %9s %9s %9s\n",
		"Scheme", "Uncorrected", ">1e-6", ">1e-8", ">1e-10", ">1e-12")

	x := workload.Uniform(9, n)
	ref := make([]complex128, n)
	refTr, err := core.New(n, core.Config{Scheme: core.Plain})
	if err != nil {
		return err
	}
	if _, err := refTr.Transform(ref, x); err != nil {
		return err
	}
	refNorm := infNorm(ref)

	schemes := []struct {
		name string
		cfg  core.Config
	}{
		{"NoCorrection", core.Config{Scheme: core.Plain}},
		{"Offline", core.Config{Scheme: core.Offline, Variant: core.Optimized, MemoryFT: true}},
		{"Online", core.Config{Scheme: core.Online, Variant: core.Optimized, MemoryFT: true}},
	}

	for _, s := range schemes {
		exceed := make([]int, len(thresholds))
		uncorrected := 0
		rng := rand.New(rand.NewSource(123))
		dst := make([]complex128, n)
		in := make([]complex128, n)
		for run := 0; run < o.FaultRuns; run++ {
			// Random high bit (52..62: exponent and top mantissa — low
			// bits are usually masked, as the paper notes), random site.
			bit := 52 + rng.Intn(11)
			site := fault.SiteInputMemory
			if rng.Intn(2) == 1 {
				site = fault.SiteOutputMemory
			}
			cfg := s.cfg
			cfg.Injector = fault.NewSchedule(int64(run),
				fault.Fault{Site: site, Rank: -1, Index: -1, Mode: fault.BitFlip, Bit: bit})
			tr, err := core.New(n, cfg)
			if err != nil {
				return err
			}
			copy(in, x)
			_, err = tr.Transform(dst, in)
			rel := math.Inf(1)
			if err == nil {
				rel = relErr(dst, ref, refNorm)
			}
			if math.IsInf(rel, 1) || rel > 1e-3 {
				uncorrected++
			}
			for i, th := range thresholds {
				if rel > th {
					exceed[i]++
				}
			}
		}
		total := float64(o.FaultRuns)
		fmt.Fprintf(o.Out, "%-14s %11.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			s.name, 100*float64(uncorrected)/total,
			100*float64(exceed[0])/total, 100*float64(exceed[1])/total,
			100*float64(exceed[2])/total, 100*float64(exceed[3])/total)
	}
	return nil
}

func infNorm(x []complex128) float64 {
	var m float64
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func relErr(got, want []complex128, wantNorm float64) float64 {
	var m float64
	for i := range got {
		if d := cmplx.Abs(got[i] - want[i]); d > m {
			m = d
		}
	}
	if wantNorm == 0 {
		return m
	}
	return m / wantNorm
}
