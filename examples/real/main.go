// Real: transform real-valued samples through the packed half-length RFFT —
// one protected complex transform of n/2 points plus an O(n) untangling —
// inject faults into the inner transform, and watch the same ABFT machinery
// repair them. Ends with an IRFFT round trip back to the samples.
//
//	go run ./examples/real
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"ftfft"
	"ftfft/internal/workload"
)

const n = 1 << 16

func main() {
	ctx := context.Background()

	// A real-valued signal: two tones plus uniform noise.
	x := make([]float64, n)
	for i, z := range workload.Uniform(7, n) {
		ti := float64(i)
		x[i] = math.Sin(2*math.Pi*441*ti/n) + 0.5*math.Cos(2*math.Pi*1031*ti/n) + 0.1*real(z)
	}

	faults := []ftfft.Fault{
		// A memory fault in the packed input, after checksum generation.
		{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Index: -1, Mode: ftfft.BitFlip, Bit: 55},
		// An arithmetic error inside a first-layer sub-FFT of the inner
		// complex transform.
		{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 5, Index: -1, Mode: ftfft.AddConstant, Value: 3},
	}
	sched := ftfft.NewFaultSchedule(42, faults...)

	tr, err := ftfft.NewReal(n,
		ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithInjector(sched))
	if err != nil {
		log.Fatal(err)
	}

	// RFFT: n real samples in, n/2+1 spectrum bins out (the upper half is
	// conj-symmetric and not stored).
	spec := make([]complex128, tr.SpectrumLen())
	rep, err := tr.Forward(ctx, spec, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rfft       : %d real samples -> %d bins under %s\n", tr.Len(), tr.SpectrumLen(), tr.Protection())
	fmt.Printf("faults     : %d injected, report: detections=%d recomputations=%d memory-fixes=%d\n",
		len(sched.Records()), rep.Detections, rep.CompRecomputations, rep.MemCorrections)

	// The two tones dominate the repaired spectrum.
	type peak struct {
		bin int
		mag float64
	}
	var p1, p2 peak
	for k := 1; k < tr.SpectrumLen()-1; k++ {
		m := math.Hypot(real(spec[k]), imag(spec[k]))
		if m > p1.mag {
			p1, p2 = peak{k, m}, p1
		} else if m > p2.mag {
			p2 = peak{k, m}
		}
	}
	fmt.Printf("peaks      : bin %d and bin %d (expected 441 and 1031)\n", p1.bin, p2.bin)

	// IRFFT round trip.
	back := make([]float64, n)
	if _, err := tr.Inverse(ctx, back, spec); err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range x {
		if d := math.Abs(back[i] - x[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("round trip : max |irfft(rfft(x)) - x| = %.3g\n", worst)
}
