// Quickstart: plan a protected FFT, transform a signal, inspect the report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/cmplx"

	"ftfft"
	"ftfft/internal/workload"
)

func main() {
	const n = 1 << 16

	// A synthetic signal: three tones in noise.
	x := workload.Tones(1, n, 0.1,
		workload.Tone{Bin: 1200, Amplitude: 1.0},
		workload.Tone{Bin: 5000, Amplitude: 0.5},
		workload.Tone{Bin: 20000, Amplitude: 0.25},
	)

	// Plan once, transform many times. OnlineABFTMemory is the paper's
	// flagship scheme: every sub-transform is verified as it completes, and
	// both arithmetic and memory soft errors are corrected on the fly.
	plan, err := ftfft.New(n, ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	X := make([]complex128, n)
	report, err := plan.Forward(ctx, X, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformed %d points; fault report: %+v\n", n, report)

	// Find the three strongest bins in the first half of the spectrum.
	type peak struct {
		bin int
		mag float64
	}
	var peaks []peak
	for j := 1; j < n/2; j++ {
		m := cmplx.Abs(X[j])
		if m > cmplx.Abs(X[j-1]) && (j+1 >= n/2 || m > cmplx.Abs(X[j+1])) && m > float64(n)/16 {
			peaks = append(peaks, peak{j, m})
		}
	}
	fmt.Println("detected tones:")
	for _, p := range peaks {
		fmt.Printf("  bin %5d  amplitude %.3f\n", p.bin, 2*p.mag/float64(n))
	}

	// Round-trip through the protected inverse.
	y := make([]complex128, n)
	if _, err := plan.Inverse(ctx, y, X); err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range x {
		if d := cmplx.Abs(y[i] - x[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("inverse round-trip max error: %.3g\n", maxDiff)
}
