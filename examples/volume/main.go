// Volume: a protected 3-D transform over a 64×64×64 volume — the canonical
// HPC FFT workload the N-dimensional axis-pass engine exists for. The
// volume holds a handful of plane waves; the forward transform must
// concentrate them into single spectral bins, survive injected soft errors
// in the middle of the axis passes, and invert back to the original volume
// — all under online ABFT with memory protection.
//
//	go run ./examples/volume
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"ftfft"
)

const d = 64 // 64×64×64 volume

func main() {
	ctx := context.Background()
	n := d * d * d

	// Three plane waves with distinct wave vectors.
	waves := []struct {
		kz, ky, kx int
		amp        float64
	}{
		{3, 0, 0, 1.0},
		{0, 5, 7, 0.5},
		{9, 2, 4, 0.25},
	}
	vol := make([]complex128, n)
	for z := 0; z < d; z++ {
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				var v complex128
				for _, w := range waves {
					phase := 2 * math.Pi * float64(w.kz*z+w.ky*y+w.kx*x) / d
					v += complex(w.amp, 0) * cmplx.Exp(complex(0, phase))
				}
				vol[z*d*d+y*d+x] = v
			}
		}
	}

	// Faults strike an axis-pass sub-FFT and the volume at rest; the online
	// scheme must catch both before the next pass consumes them.
	sched := ftfft.NewFaultSchedule(7,
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 999, Index: -1, Mode: ftfft.AddConstant, Value: 40},
		ftfft.Fault{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Occurrence: 123, Index: -1, Mode: ftfft.BitFlip, Bit: 51},
	)
	tr, err := ftfft.New(n,
		ftfft.WithDims(d, d, d),
		ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithInjector(sched),
		ftfft.WithRanks(4), // axis-pass tiles over a 4-wide executor group
	)
	if err != nil {
		log.Fatal(err)
	}

	spec := make([]complex128, n)
	rep, err := tr.Forward(ctx, spec, append([]complex128(nil), vol...))
	if err != nil {
		log.Fatalf("forward: %v (%+v)", err, rep)
	}
	fmt.Printf("forward 64³ under %v: detections=%d recomputations=%d mem-corrections=%d\n",
		tr.Protection(), rep.Detections, rep.CompRecomputations, rep.MemCorrections)

	// Each plane wave must land in exactly its (kz, ky, kx) bin with
	// amplitude amp·N.
	for _, w := range waves {
		bin := w.kz*d*d + w.ky*d + w.kx
		got := cmplx.Abs(spec[bin]) / float64(n)
		fmt.Printf("  wave (%2d,%2d,%2d): |X|/N = %.6f (want %.6f)\n", w.kz, w.ky, w.kx, got, w.amp)
	}

	back := make([]complex128, n)
	rep2, err := tr.Inverse(ctx, back, spec)
	if err != nil {
		log.Fatalf("inverse: %v (%+v)", err, rep2)
	}
	var maxErr float64
	for i := range back {
		if e := cmplx.Abs(back[i] - vol[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("round trip max |err| = %.3g; injected faults fired: %v\n", maxErr, sched.AllFired())
}
