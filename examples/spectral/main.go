// Spectral: a long-running spectral-monitoring loop — the kind of workload
// the paper's introduction motivates — processing frames continuously while
// soft errors strike at a configurable rate. The online scheme keeps the
// pipeline producing verified spectra; the run ends with an accounting of
// every error detected and corrected.
//
//	go run ./examples/spectral
package main

import (
	"context"
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"ftfft"
	"ftfft/internal/workload"
)

const (
	frameLen  = 1 << 14
	numFrames = 64
	faultRate = 0.25 // faults per frame (Poisson-ish via Bernoulli here)
)

func main() {
	ctx := context.Background()
	plan, err := ftfft.New(frameLen, ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		log.Fatal(err)
	}
	// A second, injected plan is re-created per faulty frame (schedules
	// fire once).
	rng := rand.New(rand.NewSource(11))

	X := make([]complex128, frameLen)
	var total ftfft.Report
	faultyFrames := 0

	for frame := 0; frame < numFrames; frame++ {
		// Drifting tone + noise.
		bin := 100 + 40*frame
		x := workload.Tones(int64(frame), frameLen, 0.3, workload.Tone{Bin: bin, Amplitude: 1})

		var rep ftfft.Report
		if rng.Float64() < faultRate {
			faultyFrames++
			sched := ftfft.NewFaultSchedule(int64(frame), randomFault(rng))
			faulty, ferr := ftfft.New(frameLen,
				ftfft.WithProtection(ftfft.OnlineABFTMemory), ftfft.WithInjector(sched))
			if ferr != nil {
				log.Fatal(ferr)
			}
			rep, err = faulty.Forward(ctx, X, x)
		} else {
			rep, err = plan.Forward(ctx, X, x)
		}
		if err != nil {
			log.Fatalf("frame %d: %v", frame, err)
		}
		total.Add(rep)

		// Verify the dominant bin is where the tone was placed.
		peak, mag := 0, 0.0
		for j := 1; j < frameLen/2; j++ {
			if m := cmplx.Abs(X[j]); m > mag {
				peak, mag = j, m
			}
		}
		if peak != bin {
			log.Fatalf("frame %d: spectral peak at %d, want %d — silent corruption!", frame, peak, bin)
		}
	}

	fmt.Printf("processed %d frames (%d with injected faults) — all spectra verified\n",
		numFrames, faultyFrames)
	fmt.Printf("cumulative report: detections=%d recomputed-subFFTs=%d memory-corrections=%d dmr-votes=%d\n",
		total.Detections, total.CompRecomputations, total.MemCorrections, total.TwiddleCorrections)
}

func randomFault(rng *rand.Rand) ftfft.Fault {
	switch rng.Intn(3) {
	case 0:
		return ftfft.Fault{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Index: -1,
			Mode: ftfft.BitFlip, Bit: 52 + rng.Intn(8)}
	case 1:
		return ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 1 + rng.Intn(16),
			Index: -1, Mode: ftfft.AddConstant, Value: rng.NormFloat64() * 4}
	default:
		return ftfft.Fault{Site: ftfft.SiteSubFFT2, Rank: ftfft.AnyRank, Occurrence: 1 + rng.Intn(16),
			Index: -1, Mode: ftfft.AddConstant, Value: rng.NormFloat64() * 4}
	}
}
