// Serve: FFT-as-a-service with ABFT response guarantees. The driver
// re-executes itself as a server process (the same long-lived service
// `cmd/ftserve` deploys), then runs several concurrent clients against it
// over one Unix socket: mixed sizes and protection schemes multiplex onto
// the server's bounded plan cache, every payload crosses the wire under §5
// block checksums, and the service honors the repair-or-reject contract —
// a single corrupted element in transit is located and repaired (visible in
// the response report), corruption beyond the code's reach is rejected with
// an explicit uncorrectable error, never a silently wrong spectrum. The
// demo finishes with a SIGTERM graceful drain.
//
//	go run ./examples/serve
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/cmplx"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"ftfft"
	"ftfft/internal/workload"
)

const (
	clients   = 4
	perClient = 8
	serverEnv = "FTFFT_SERVE_SERVER"
)

func main() {
	if addr := os.Getenv(serverEnv); addr != "" {
		runServer(addr)
		return
	}

	sock := filepath.Join(os.TempDir(), fmt.Sprintf("ftfft-serve-%d.sock", os.Getpid()))
	os.Remove(sock)
	defer os.Remove(sock)

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	srv := exec.Command(self)
	srv.Env = append(os.Environ(), serverEnv+"="+sock)
	srv.Stdout = os.Stdout
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Process.Kill()

	// The server is up once the socket accepts a handshake.
	var probe *ftfft.Client
	for i := 0; ; i++ {
		probe, err = ftfft.Dial("unix", sock)
		if err == nil {
			break
		}
		if i > 200 {
			log.Fatalf("server did not come up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("FFT service up on %s (payload limit %d elements)\n\n", sock, probe.MaxElems())

	// Phase 1: concurrent clients, mixed sizes and schemes, one plan cache.
	ctx := context.Background()
	sizes := []int{1 << 10, 1 << 12, 1 << 14}
	prots := []ftfft.Protection{ftfft.None, ftfft.OnlineABFT, ftfft.OnlineABFTMemory}
	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := ftfft.Dial("unix", sock)
			if err != nil {
				log.Fatalf("client %d: %v", k, err)
			}
			defer c.Close()
			for r := 0; r < perClient; r++ {
				n := sizes[(k+r)%len(sizes)]
				prot := prots[(k+2*r)%len(prots)]
				dst := make([]complex128, n)
				if _, err := c.Forward(ctx, dst, workload.Uniform(int64(k*100+r), n),
					ftfft.WithProtection(prot)); err != nil {
					log.Fatalf("client %d request %d: %v", k, r, err)
				}
			}
		}(k)
	}
	wg.Wait()
	fmt.Printf("mixed workload    : %d clients × %d requests (sizes %v, all schemes) in %v\n",
		clients, perClient, sizes, time.Since(start))

	// Phase 2: a soft error strikes a request payload in transit. The server
	// locates the corrupted element from the §5 checksum pair, repairs it,
	// and says so in the response report.
	const n = 1 << 12
	x := workload.Uniform(42, n)
	clean := make([]complex128, n)
	if _, err := probe.Forward(ctx, clean, x, ftfft.WithProtection(ftfft.OnlineABFTMemory)); err != nil {
		log.Fatal(err)
	}

	probe.InjectWireFaults(func(payload []byte) {
		payload[8*16] ^= 0x40 // flip a mantissa bit of element 8 on the wire
		payload[8*16+7] ^= 0x01
	})
	repaired := make([]complex128, n)
	rep, err := probe.Forward(ctx, repaired, x, ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := range clean {
		if d := cmplx.Abs(repaired[i] - clean[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("corrupted request : repaired in place (%d detection, %d correction), output within %.2g of clean\n",
		rep.Detections, rep.MemCorrections, worst)

	// Phase 3: corruption beyond single-error reach — the server must
	// reject, with the report metadata carrying the verdict.
	probe.InjectWireFaults(func(payload []byte) {
		for _, e := range []int{3, 900, 2100} {
			payload[e*16] ^= 0x40
			payload[e*16+7] ^= 0x01
		}
	})
	rep, err = probe.Forward(ctx, repaired, x, ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if !errors.Is(err, ftfft.ErrUncorrectable) {
		log.Fatalf("multi-element corruption was not rejected: %v", err)
	}
	fmt.Printf("uncorrectable     : rejected with explicit error (uncorrectable=%v) — never a silently wrong payload\n",
		rep.Uncorrectable)
	probe.InjectWireFaults(nil)
	probe.Close()

	// Graceful drain: SIGTERM lets in-flight work finish, then goodbye.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		log.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		log.Fatalf("server exit: %v", err)
	}
	fmt.Println("graceful drain    : server drained and exited cleanly on SIGTERM")
}

// runServer is the re-executed child: the same long-lived service a real
// deployment runs via cmd/ftserve.
func runServer(addr string) {
	srv, err := ftfft.ListenServe("unix", addr, ftfft.ServerConfig{PlanCache: 16})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	<-sigc
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("server drain: %v", err)
	}
	builds, evictions, size := srv.CacheStats()
	fmt.Printf("server            : plan cache served %d builds, %d evictions, %d resident at drain\n",
		builds, evictions, size)
}
