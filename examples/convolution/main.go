// Convolution: FFT-based circular convolution under ABFT protection — a
// denoising filter built from three protected transforms, with a soft error
// injected mid-pipeline to show the protection earning its keep.
//
//	go run ./examples/convolution
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"ftfft"
	"ftfft/internal/workload"
)

func main() {
	const n = 1 << 14

	// A noisy two-tone signal and a Gaussian smoothing kernel.
	signal := workload.Tones(3, n, 0.5,
		workload.Tone{Bin: 30, Amplitude: 1},
		workload.Tone{Bin: 90, Amplitude: 0.6},
	)
	kernel := workload.GaussianPulse(n, 0, 24)
	normalizeL1(kernel)

	// Protected convolution with an arithmetic fault injected into one of
	// the sub-FFTs of the pipeline. The plan-level Convolve reuses the plan
	// and its scratch spectra, so a filtering loop pays planning once.
	sched := ftfft.NewFaultSchedule(5, ftfft.Fault{
		Site: ftfft.SiteSubFFT2, Rank: ftfft.AnyRank, Occurrence: 17, Index: -1,
		Mode: ftfft.AddConstant, Value: 3,
	})
	plan, err := ftfft.NewPlan(n, ftfft.Options{
		Protection: ftfft.OnlineABFTMemory,
		Injector:   sched,
	})
	if err != nil {
		log.Fatal(err)
	}
	smoothed := make([]complex128, n)
	rep, err := plan.Convolve(smoothed, signal, kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convolved %d points; fault fired=%v; report: %+v\n",
		n, sched.AllFired(), rep)

	// Compare against the unprotected, fault-free result.
	want, _, err := ftfft.Convolve(signal, kernel, ftfft.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range smoothed {
		if d := cmplx.Abs(smoothed[i] - want[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max deviation from fault-free convolution: %.3g\n", maxDiff)

	// Noise suppression estimate: rms of (smoothed − clean tone part).
	fmt.Printf("input rms %.3f → smoothed rms %.3f (noise suppressed by the kernel)\n",
		rms(signal), rms(smoothed))
}

func normalizeL1(k []complex128) {
	var s float64
	for _, v := range k {
		s += cmplx.Abs(v)
	}
	for i := range k {
		k[i] /= complex(s, 0)
	}
}

func rms(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s / float64(len(x)))
}
