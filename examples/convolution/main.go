// Convolution: FFT-based circular convolution under ABFT protection — a
// denoising filter built from three protected transforms, with a soft error
// injected mid-pipeline to show the protection earning its keep.
//
//	go run ./examples/convolution
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"ftfft"
	"ftfft/internal/workload"
)

func main() {
	const n = 1 << 14

	// A noisy two-tone signal and a Gaussian smoothing kernel.
	signal := workload.Tones(3, n, 0.5,
		workload.Tone{Bin: 30, Amplitude: 1},
		workload.Tone{Bin: 90, Amplitude: 0.6},
	)
	kernel := workload.GaussianPulse(n, 0, 24)
	normalizeL1(kernel)

	// Protected convolution with an arithmetic fault injected into one of
	// the sub-FFTs of the pipeline: two forward transforms, a pointwise
	// spectral product, one inverse — every transform under the same
	// protection, on one plan whose workspaces amortize across the calls.
	sched := ftfft.NewFaultSchedule(5, ftfft.Fault{
		Site: ftfft.SiteSubFFT2, Rank: ftfft.AnyRank, Occurrence: 17, Index: -1,
		Mode: ftfft.AddConstant, Value: 3,
	})
	tr, err := ftfft.New(n,
		ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithInjector(sched))
	if err != nil {
		log.Fatal(err)
	}
	smoothed := make([]complex128, n)
	rep, err := convolve(tr, smoothed, signal, kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convolved %d points; fault fired=%v; report: %+v\n",
		n, sched.AllFired(), rep)

	// Compare against the unprotected, fault-free result.
	plain, err := ftfft.New(n)
	if err != nil {
		log.Fatal(err)
	}
	want := make([]complex128, n)
	if _, err := convolve(plain, want, signal, kernel); err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range smoothed {
		if d := cmplx.Abs(smoothed[i] - want[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max deviation from fault-free convolution: %.3g\n", maxDiff)

	// Noise suppression estimate: rms of (smoothed − clean tone part).
	fmt.Printf("input rms %.3f → smoothed rms %.3f (noise suppressed by the kernel)\n",
		rms(signal), rms(smoothed))
}

// convolve computes the circular convolution of a and b into dst via three
// transforms on one protected plan (the convolution theorem).
func convolve(tr ftfft.Transform, dst, a, b []complex128) (ftfft.Report, error) {
	ctx := context.Background()
	n := tr.Len()
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	var total ftfft.Report
	rep, err := tr.Forward(ctx, fa, a)
	total.Add(rep)
	if err != nil {
		return total, err
	}
	rep, err = tr.Forward(ctx, fb, b)
	total.Add(rep)
	if err != nil {
		return total, err
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	rep, err = tr.Inverse(ctx, dst, fa)
	total.Add(rep)
	return total, err
}

func normalizeL1(k []complex128) {
	var s float64
	for _, v := range k {
		s += cmplx.Abs(v)
	}
	for i := range k {
		k[i] /= complex(s, 0)
	}
}

func rms(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s / float64(len(x)))
}
