// Distributed: the six-step parallel FFT (paper §5) over real OS processes.
// The driver is rank 0; it re-executes itself ranks-1 times as worker
// processes, which dial the hub, take their rank and plan parameters from
// the wire handshake, and serve their slice of every transform — the same
// message-passing rank bodies that run in-process, now with every block
// crossing a process boundary through the byte-level codec. A soft error is
// injected into a message payload in the driver; the receiving worker
// process detects and repairs it from the block checksums.
//
// The -transport flag picks the wire:
//
//	go run ./examples/distributed                  # Unix-domain socket hub
//	go run ./examples/distributed -transport shm   # mmap shared-memory rings
//
// Both runs produce bit-identical output — the transports move the same
// frames, so the repair story and the arithmetic are unchanged; only the
// cost of moving bytes between processes differs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/cmplx"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"ftfft"
	"ftfft/internal/workload"
)

const (
	n     = 1 << 16
	ranks = 4

	workerEnv          = "FTFFT_DISTRIBUTED_WORKER"
	workerTransportEnv = "FTFFT_DISTRIBUTED_TRANSPORT"
)

func main() {
	transport := flag.String("transport", "socket", "wire between processes: socket (Unix-domain hub) or shm (mmap ring file)")
	flag.Parse()
	if addr := os.Getenv(workerEnv); addr != "" {
		// Worker process: one rank, geometry and protection from the hub.
		network := "unix"
		if os.Getenv(workerTransportEnv) == "shm" {
			network = "shm"
		}
		if err := ftfft.ServeWorker(context.Background(), network, addr); err != nil {
			log.Fatalf("worker: %v", err)
		}
		return
	}
	if *transport != "socket" && *transport != "shm" {
		log.Fatalf("unknown -transport %q (want socket or shm)", *transport)
	}

	var (
		hub interface {
			ftfft.Transport
			Close() error
		}
		addr string
	)
	if *transport == "shm" {
		addr = filepath.Join(os.TempDir(), fmt.Sprintf("ftfft-distributed-%d.ring", os.Getpid()))
		os.Remove(addr)
		h, err := ftfft.ListenShmHub(addr, ranks)
		if err != nil {
			log.Fatal(err)
		}
		hub = h
	} else {
		addr = filepath.Join(os.TempDir(), fmt.Sprintf("ftfft-distributed-%d.sock", os.Getpid()))
		os.Remove(addr)
		h, err := ftfft.ListenHub("unix", addr, ranks)
		if err != nil {
			log.Fatal(err)
		}
		hub = h
	}
	defer os.Remove(addr)
	defer hub.Close()

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	var workers []*exec.Cmd
	for i := 1; i < ranks; i++ {
		w := exec.Command(self)
		w.Env = append(os.Environ(), workerEnv+"="+addr, workerTransportEnv+"="+*transport)
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		hub.Close()
		for _, w := range workers {
			w.Wait()
		}
	}()

	// One fault in a message payload, injected at the driver: the corrupted
	// block crosses the wire and is repaired by a worker process.
	sched := ftfft.NewFaultSchedule(7, ftfft.Fault{
		Site: ftfft.SiteMessage, Rank: 0, Occurrence: 5, Index: -1,
		Mode: ftfft.SetConstant, Value: 1e6,
	})

	// New blocks until the three workers have dialed in and completes the
	// handshake that ships them the plan parameters.
	tr, err := ftfft.New(n,
		ftfft.WithRanks(ranks),
		ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithTransport(hub),
		ftfft.WithInjector(sched),
	)
	if err != nil {
		log.Fatal(err)
	}

	x := workload.Uniform(29, n)
	freq := make([]complex128, n)
	back := make([]complex128, n)

	ctx := context.Background()
	start := time.Now()
	repF, err := tr.Forward(ctx, freq, x)
	if err != nil {
		log.Fatal(err)
	}
	repI, err := tr.Inverse(ctx, back, freq)
	if err != nil {
		log.Fatal(err)
	}
	took := time.Since(start)

	var maxErr float64
	for i := range x {
		if d := cmplx.Abs(back[i] - x[i]); d > maxErr {
			maxErr = d
		}
	}

	wire := "unix socket hub"
	if *transport == "shm" {
		wire = "shared-memory rings"
	}
	fmt.Printf("distributed FT-FFT: %d points over %d OS processes (%s)\n", n, ranks, wire)
	fmt.Printf("forward+inverse   : %v\n", took)
	for _, r := range sched.Records() {
		fmt.Printf("injected          : %s at %s (driver) -> repaired by the receiving worker\n", r.Fault.Mode, r.Site)
	}
	fmt.Printf("fault report      : forward %d detection(s), %d repair(s); inverse clean=%v\n",
		repF.Detections, repF.MemCorrections, repI.Clean())
	fmt.Printf("round-trip error  : %.3g (machine precision)\n", maxErr)
}
