// Resilient: inject the paper's fault mixes into a transform and watch the
// online scheme detect and repair them — then run the same faults against
// the offline scheme and the unprotected baseline for contrast.
//
//	go run ./examples/resilient
package main

import (
	"context"
	"fmt"
	"log"
	"math/cmplx"

	"ftfft"
	"ftfft/internal/workload"
)

const n = 1 << 16

func main() {
	ctx := context.Background()
	x := workload.Uniform(7, n)

	// Reference spectrum from a fault-free run.
	refT, err := ftfft.New(n)
	if err != nil {
		log.Fatal(err)
	}
	ref := make([]complex128, n)
	if _, err := refT.Forward(ctx, ref, append([]complex128(nil), x...)); err != nil {
		log.Fatal(err)
	}

	faults := []ftfft.Fault{
		// A memory bit flip in the input array, after checksum generation.
		{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Index: -1, Mode: ftfft.BitFlip, Bit: 55},
		// An arithmetic error inside the 3rd first-layer sub-FFT.
		{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 3, Index: -1, Mode: ftfft.AddConstant, Value: 2.5},
		// Another one inside a second-layer sub-FFT.
		{Site: ftfft.SiteSubFFT2, Rank: ftfft.AnyRank, Occurrence: 9, Index: -1, Mode: ftfft.AddConstant, Value: -1.25},
	}

	for _, prot := range []ftfft.Protection{
		ftfft.None, ftfft.OfflineABFT, ftfft.OnlineABFTMemory,
	} {
		sched := ftfft.NewFaultSchedule(42, faults...)
		tr, err := ftfft.New(n, ftfft.WithProtection(prot), ftfft.WithInjector(sched))
		if err != nil {
			log.Fatal(err)
		}
		got := make([]complex128, n)
		rep, err := tr.Forward(ctx, got, append([]complex128(nil), x...))
		fmt.Printf("--- protection: %s ---\n", prot)
		fmt.Printf("faults fired : %d/%d\n", len(sched.Records()), len(faults))
		if err != nil {
			fmt.Printf("result       : FAILED (%v)\n\n", err)
			continue
		}
		fmt.Printf("report       : detections=%d recomputations=%d memory-fixes=%d restarts=%d\n",
			rep.Detections, rep.CompRecomputations, rep.MemCorrections, rep.FullRestarts)
		fmt.Printf("output error : %.3g (relative, ∞-norm)\n\n", relErr(got, ref))
	}
}

func relErr(got, want []complex128) float64 {
	var m, norm float64
	for i := range got {
		if d := cmplx.Abs(got[i] - want[i]); d > m {
			m = d
		}
		if a := cmplx.Abs(want[i]); a > norm {
			norm = a
		}
	}
	return m / norm
}
