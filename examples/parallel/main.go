// Parallel: the six-step in-place distributed FFT (paper §5) on simulated
// ranks, with soft errors striking messages in transit and sub-FFTs on
// specific ranks — all detected and corrected without restarting anything.
//
//	go run ./examples/parallel
package main

import (
	"context"
	"fmt"
	"log"
	"math/cmplx"
	"time"

	"ftfft"
	"ftfft/internal/workload"
)

func main() {
	const (
		n     = 1 << 18
		ranks = 8
	)
	x := workload.Uniform(13, n)

	ctx := context.Background()

	// Fault-free reference via the plain parallel path.
	plain, err := ftfft.New(n, ftfft.WithRanks(ranks))
	if err != nil {
		log.Fatal(err)
	}
	ref := make([]complex128, n)
	if _, err := plain.Forward(ctx, ref, append([]complex128(nil), x...)); err != nil {
		log.Fatal(err)
	}

	// Protected + optimized run under a Table 2-style fault mix: two
	// transit corruptions and two arithmetic errors on different ranks.
	sched := ftfft.NewFaultSchedule(99,
		ftfft.Fault{Site: ftfft.SiteMessage, Rank: 1, Occurrence: 2, Index: -1, Mode: ftfft.AddConstant, Value: 7},
		ftfft.Fault{Site: ftfft.SiteMessage, Rank: 6, Occurrence: 5, Index: -1, Mode: ftfft.AddConstant, Value: -3},
		ftfft.Fault{Site: ftfft.SiteParallelFFT1, Rank: 2, Occurrence: 4, Index: -1, Mode: ftfft.AddConstant, Value: 2},
		ftfft.Fault{Site: ftfft.SiteParallelFFT2, Rank: 7, Occurrence: 8, Index: -1, Mode: ftfft.AddConstant, Value: 5},
	)
	prot, err := ftfft.New(n,
		ftfft.WithRanks(ranks),
		ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithInjector(sched),
	)
	if err != nil {
		log.Fatal(err)
	}
	dst := make([]complex128, n)
	start := time.Now()
	rep, err := prot.Forward(ctx, dst, append([]complex128(nil), x...))
	took := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("opt-FT-FFTW: N=2^18 on %d ranks in %v\n", ranks, took)
	fmt.Printf("faults fired: %d/4\n", len(sched.Records()))
	for _, r := range sched.Records() {
		fmt.Printf("  rank %d, %s[%d]\n", r.Rank, r.Site, r.Index)
	}
	fmt.Printf("report: detections=%d recomputations=%d memory-corrections=%d dmr-votes=%d\n",
		rep.Detections, rep.CompRecomputations, rep.MemCorrections, rep.TwiddleCorrections)

	var maxDiff float64
	for i := range dst {
		if d := cmplx.Abs(dst[i] - ref[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max deviation from fault-free reference: %.3g\n", maxDiff)
	if maxDiff > 1e-6 {
		log.Fatal("output corrupted — protection failed")
	}
	fmt.Println("output verified.")
}
