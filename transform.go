package ftfft

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"ftfft/internal/core"
	"ftfft/internal/exec"
)

// Transform is the unified executor every planner composition produces: one
// protected FFT with many execution strategies, behind one cancellable
// contract. Forward and Inverse compute out-of-place DFTs of exactly Len()
// points; ForwardBatch amortizes plan state across many transforms. All
// methods are safe for concurrent use — concurrent calls draw separate
// execution contexts from an internal pool.
//
// Cancellation: ctx is observed at sub-transform boundaries (and, for
// parallel transforms, unblocks ranks parked in a transpose receive via a
// communicator abort). A canceled call returns ctx.Err() with dst in an
// unspecified state. The returned Report is valid even alongside an error.
type Transform interface {
	// Forward computes X_j = Σ_t x_t·exp(-2πi·jt/N) from src into dst (2-D
	// shapes transform rows then columns). dst and src must each hold Len()
	// elements and must not alias. When memory protection is active and an
	// input memory fault is detected, src is repaired in place.
	Forward(ctx context.Context, dst, src []complex128) (Report, error)
	// Inverse computes the inverse DFT (1/N normalization) under the same
	// protection, via the conjugation identity IDFT(x) = conj(DFT(conj(x)))/N
	// — the entire ABFT machinery guards the inverse path too.
	Inverse(ctx context.Context, dst, src []complex128) (Report, error)
	// ForwardBatch runs Forward for every (dst[i], src[i]) pair, reusing the
	// plan's pooled execution contexts across items (and running items
	// concurrently when cores are idle). Outputs are bit-identical to the
	// equivalent sequence of Forward calls; with a stateful Injector
	// installed, which item a scheduled fault strikes may differ between
	// batched and unbatched runs, because concurrent items race for the
	// injector's occurrence counters. The aggregate Report sums all items;
	// the first failing item stops the batch.
	ForwardBatch(ctx context.Context, dst, src [][]complex128) (Report, error)
	// Len returns the total number of points per transform.
	Len() int
	// Dims returns a copy of the N-D geometry: one entry per axis of the
	// row-major shape. 1-D transforms report [Len()].
	Dims() []int
	// Shape is the 2-D compatibility view of Dims: (dims[0], Len()/dims[0])
	// — exactly (rows, cols) for a 2-D transform; 1-D transforms report
	// (1, Len()).
	Shape() (rows, cols int)
	// Ranks returns the parallelism degree: simulated ranks for a parallel
	// 1-D transform, axis-pass dispatch width for an N-D transform,
	// 1 otherwise.
	Ranks() int
	// Protection returns the configured fault-tolerance scheme.
	Protection() Protection
}

// New plans an n-point protected transform. The zero option set is a plain
// sequential 1-D FFT; options compose protection (WithProtection), geometry
// (WithDims / WithShape) and parallelism (WithRanks):
//
//	ftfft.New(1<<20, ftfft.WithProtection(ftfft.OnlineABFTMemory))
//	ftfft.New(1<<20, ftfft.WithRanks(8), ftfft.WithProtection(ftfft.OnlineABFTMemory))
//	ftfft.New(rows*cols, ftfft.WithShape(rows, cols), ftfft.WithRanks(4))
//	ftfft.New(64*64*64, ftfft.WithDims(64, 64, 64), ftfft.WithRanks(8))
//
// Like FFTW, plans front-load all derived state — FFT sub-plans, twiddle
// tables, checksum weight vectors, communicators and workspaces — so
// executing a Transform allocates nothing in steady state. All dispatch
// (rank fan-out, 2-D passes, batch items) runs on one bounded executor: the
// process-wide default, or a private one via WithWorkers / WithExecutor.
func New(n int, opts ...Option) (Transform, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if err := c.validate(n); err != nil {
		return nil, err
	}
	private := false
	switch {
	case c.executorSet:
		c.pool = c.executor.pool
	case c.workers > 0:
		c.pool = exec.New(c.workers)
		private = true
	default:
		c.pool = exec.Default()
	}
	if c.rows != 0 || c.cols != 0 {
		c.dims = []int{c.rows, c.cols} // WithShape is WithDims(rows, cols)
	}
	var t Transform
	var err error
	switch {
	case len(c.dims) >= 2:
		t, err = newNDTransform(c)
	case c.ranks > 1:
		t, err = newParTransform(n, c)
	default:
		t, err = newSeqTransform(n, c)
	}
	if err != nil {
		return nil, err
	}
	if private {
		// A WithWorkers pool lives and dies with its Transform: reclaim the
		// parked worker goroutines once the plan is unreachable. AddCleanup
		// needs the concrete pointer, not the interface.
		closePool := func(p *exec.Pool) { p.Close() }
		switch tt := t.(type) {
		case *seqTransform:
			runtime.AddCleanup(tt, closePool, c.pool)
		case *parTransform:
			runtime.AddCleanup(tt, closePool, c.pool)
		case *ndTransform:
			runtime.AddCleanup(tt, closePool, c.pool)
		}
	}
	return t, nil
}

// validate is the uniform construction-time audit: every option's invalid
// range is rejected here, with one error shape, before any plan state is
// built. The zero value of every option is valid (and means "default").
func (c *config) validate(n int) error {
	if n < 1 {
		return fmt.Errorf("ftfft: invalid transform size %d", n)
	}
	if c.ranks < 0 {
		return fmt.Errorf("ftfft: invalid rank count %d", c.ranks)
	}
	if c.etaScale < 0 || math.IsNaN(c.etaScale) {
		return fmt.Errorf("ftfft: invalid eta scale %v", c.etaScale)
	}
	if c.maxRetries < 0 {
		return fmt.Errorf("ftfft: invalid retry limit %d", c.maxRetries)
	}
	if c.workers < 0 {
		return fmt.Errorf("ftfft: invalid worker count %d", c.workers)
	}
	if c.tuning != TuneEstimate && c.tuning != TuneMeasured && c.tuning != tuneWisdom {
		return fmt.Errorf("ftfft: invalid tuning mode %d", int(c.tuning))
	}
	if c.batchWindow < 0 || c.batchWindow > maxBatchWorlds {
		return fmt.Errorf("ftfft: invalid batch window %d (0 means auto, max %d)", c.batchWindow, maxBatchWorlds)
	}
	if c.workers > 0 && c.executorSet {
		return fmt.Errorf("ftfft: invalid executor options: WithWorkers and WithExecutor are mutually exclusive")
	}
	if c.transport != nil {
		if c.ranks < 2 {
			return fmt.Errorf("ftfft: invalid transport options: WithTransport needs WithRanks ≥ 2, got %d", c.ranks)
		}
		if c.dimsSet || c.rows != 0 || c.cols != 0 {
			return fmt.Errorf("ftfft: invalid transport options: WithTransport applies to the parallel 1-D transform, not WithDims/WithShape")
		}
	}
	if c.executorSet && c.executor == nil {
		return fmt.Errorf("ftfft: invalid executor: WithExecutor requires a non-nil Executor")
	}
	if c.noPeerMesh {
		return fmt.Errorf("ftfft: invalid option: WithoutPeerMesh applies to ServeWorker, not New (mesh topology is chosen by the hub: ListenMeshHub vs ListenHub)")
	}
	if c.rows != 0 || c.cols != 0 {
		if c.dimsSet {
			return fmt.Errorf("ftfft: invalid geometry options: WithDims and WithShape are mutually exclusive")
		}
		if c.rows < 1 || c.cols < 1 {
			return fmt.Errorf("ftfft: invalid 2-D shape %d×%d", c.rows, c.cols)
		}
		// Overflow-safe form of n == rows·cols (rows·cols can wrap).
		if n%c.rows != 0 || n/c.rows != c.cols {
			return fmt.Errorf("ftfft: invalid 2-D shape %d×%d for size %d", c.rows, c.cols, n)
		}
	}
	if c.dimsSet {
		if len(c.dims) == 0 {
			return fmt.Errorf("ftfft: invalid dims: WithDims needs at least one axis")
		}
		prod := 1
		for _, d := range c.dims {
			if d < 1 {
				return fmt.Errorf("ftfft: invalid axis length %d in dims %v", d, c.dims)
			}
			// prod·d ≤ n ⇔ prod ≤ n/d (all positive), so the product can
			// never overflow before the mismatch is caught.
			if d > n || prod > n/d {
				return fmt.Errorf("ftfft: invalid dims %v for size %d", c.dims, n)
			}
			prod *= d
		}
		if prod != n {
			return fmt.Errorf("ftfft: invalid dims %v for size %d", c.dims, n)
		}
	}
	return nil
}

// checkArgs is the uniform API-boundary validation every executor applies:
// both buffers must hold n elements and must not alias (all transforms are
// out-of-place).
func checkArgs(n int, dst, src []complex128) error {
	if len(dst) < n || len(src) < n {
		return fmt.Errorf("ftfft: buffers too short: dst=%d src=%d, need %d", len(dst), len(src), n)
	}
	if &dst[0] == &src[0] {
		return fmt.Errorf("ftfft: dst and src alias the same memory; transforms are out-of-place")
	}
	return nil
}

// checkBatch validates a batch: matching item counts, and every pair passes
// checkArgs.
func checkBatch(n int, dst, src [][]complex128) error {
	if len(dst) != len(src) {
		return fmt.Errorf("ftfft: batch size mismatch: %d dst vs %d src", len(dst), len(src))
	}
	for i := range dst {
		if err := checkArgs(n, dst[i], src[i]); err != nil {
			return fmt.Errorf("ftfft: batch item %d: %w", i, err)
		}
	}
	return nil
}

// runIndexed drives items through fn as an executor task group with at most
// width concurrent executions, accumulating the per-slot Reports. fn
// receives its slot index (0 ≤ slot < width) so callers can hand each slot
// private scratch. The calling goroutine always participates (the executor's
// caller-runs contract), so the group completes even when the pool is
// saturated. The first failing item (lowest index) determines the returned
// error, wrapped as "<label> <index>"; later items may have been skipped.
func runIndexed(ctx context.Context, ex *exec.Pool, items, width int, label string, fn func(ctx context.Context, slot, item int) (Report, error)) (Report, error) {
	if width > items {
		width = items
	}
	if width <= 1 {
		// Inline serial path: no dispatch, no allocation — the steady state
		// of serial 2-D passes and single-item batches.
		var total Report
		for i := 0; i < items; i++ {
			if err := ctx.Err(); err != nil {
				return total, err
			}
			rep, err := fn(ctx, 0, i)
			total.Add(rep)
			if err != nil {
				return total, fmt.Errorf("ftfft: %s %d: %w", label, i, err)
			}
		}
		return total, nil
	}
	reps := make([]Report, width)
	err := ex.Run(ctx, items, width, func(ctx context.Context, slot, item int) error {
		rep, err := fn(ctx, slot, item)
		reps[slot].Add(rep)
		if err != nil {
			return fmt.Errorf("ftfft: %s %d: %w", label, item, err)
		}
		return nil
	})
	var total Report
	for i := range reps {
		total.Add(reps[i])
	}
	return total, err
}

// seqTransform is the sequential 1-D executor: a pool of core transformers
// (one drawn per in-flight call) behind the unified contract. Forward and
// Inverse run on the calling goroutine; only ForwardBatch dispatches, as an
// executor task group.
type seqTransform struct {
	n    int
	prot Protection
	cfg  core.Config
	ex   *exec.Pool

	mu   sync.Mutex
	free []*seqCtx
}

// seqCtx is one in-flight call's state: the transformer and the conjugation
// staging buffer the inverse path writes conj(src) into.
type seqCtx struct {
	tr      *core.Transformer
	scratch []complex128
}

// maxPooledSeq bounds how many idle sequential contexts a plan retains.
const maxPooledSeq = 16

func newSeqTransform(n int, c config) (*seqTransform, error) {
	cfg, err := c.protection.coreConfig()
	if err != nil {
		return nil, err
	}
	cfg.Injector = c.injector
	cfg.EtaScale = c.etaScale
	cfg.MaxRetries = c.maxRetries
	applyCoreTuning(n, &cfg, &c, false)
	ex := c.pool
	if ex == nil {
		ex = exec.Default()
	}
	s := &seqTransform{n: n, prot: c.protection, cfg: cfg, ex: ex}
	// Build the first context eagerly: it validates n against the scheme
	// and pre-warms the pool.
	ec, err := s.newCtx()
	if err != nil {
		return nil, err
	}
	s.free = append(s.free, ec)
	return s, nil
}

func (s *seqTransform) newCtx() (*seqCtx, error) {
	tr, err := core.New(s.n, s.cfg)
	if err != nil {
		return nil, err
	}
	return &seqCtx{tr: tr, scratch: make([]complex128, s.n)}, nil
}

func (s *seqTransform) getCtx() (*seqCtx, error) {
	s.mu.Lock()
	if k := len(s.free); k > 0 {
		ec := s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
		s.mu.Unlock()
		return ec, nil
	}
	s.mu.Unlock()
	return s.newCtx()
}

// putCtx returns a context to the pool. Unlike the parallel worlds, a core
// transformer rewrites all working state per call, so contexts are reusable
// even after a failed transform.
func (s *seqTransform) putCtx(ec *seqCtx) {
	s.mu.Lock()
	if len(s.free) < maxPooledSeq {
		s.free = append(s.free, ec)
	}
	s.mu.Unlock()
}

func (s *seqTransform) Len() int                { return s.n }
func (s *seqTransform) Dims() []int             { return []int{s.n} }
func (s *seqTransform) Shape() (rows, cols int) { return 1, s.n }
func (s *seqTransform) Ranks() int              { return 1 }
func (s *seqTransform) Protection() Protection  { return s.prot }

func (s *seqTransform) Forward(ctx context.Context, dst, src []complex128) (Report, error) {
	if err := checkArgs(s.n, dst, src); err != nil {
		return Report{}, err
	}
	ec, err := s.getCtx()
	if err != nil {
		return Report{}, err
	}
	rep, err := ec.tr.TransformContext(ctx, dst[:s.n], src[:s.n])
	s.putCtx(ec)
	return rep, err
}

func (s *seqTransform) Inverse(ctx context.Context, dst, src []complex128) (Report, error) {
	if err := checkArgs(s.n, dst, src); err != nil {
		return Report{}, err
	}
	ec, err := s.getCtx()
	if err != nil {
		return Report{}, err
	}
	for i := 0; i < s.n; i++ {
		ec.scratch[i] = conj(src[i])
	}
	rep, err := ec.tr.TransformContext(ctx, dst[:s.n], ec.scratch)
	if err == nil {
		inv := complex(1/float64(s.n), 0)
		for i := 0; i < s.n; i++ {
			dst[i] = conj(dst[i]) * inv
		}
	}
	s.putCtx(ec)
	return rep, err
}

func (s *seqTransform) ForwardBatch(ctx context.Context, dst, src [][]complex128) (Report, error) {
	if err := checkBatch(s.n, dst, src); err != nil {
		return Report{}, err
	}
	// Width is capped at the context-pool size, so the steady state never
	// constructs transformers beyond what the pool retains.
	width := min(runtime.GOMAXPROCS(0), maxPooledSeq)
	return runIndexed(ctx, s.ex, len(dst), width, "batch item", func(ctx context.Context, _, i int) (Report, error) {
		return s.Forward(ctx, dst[i], src[i])
	})
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
