package ftfft

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ftfft/internal/core"
)

// Transform is the unified executor every planner composition produces: one
// protected FFT with many execution strategies, behind one cancellable
// contract. Forward and Inverse compute out-of-place DFTs of exactly Len()
// points; ForwardBatch amortizes plan state across many transforms. All
// methods are safe for concurrent use — concurrent calls draw separate
// execution contexts from an internal pool.
//
// Cancellation: ctx is observed at sub-transform boundaries (and, for
// parallel transforms, unblocks ranks parked in a transpose receive via a
// communicator abort). A canceled call returns ctx.Err() with dst in an
// unspecified state. The returned Report is valid even alongside an error.
type Transform interface {
	// Forward computes X_j = Σ_t x_t·exp(-2πi·jt/N) from src into dst (2-D
	// shapes transform rows then columns). dst and src must each hold Len()
	// elements and must not alias. When memory protection is active and an
	// input memory fault is detected, src is repaired in place.
	Forward(ctx context.Context, dst, src []complex128) (Report, error)
	// Inverse computes the inverse DFT (1/N normalization) under the same
	// protection, via the conjugation identity IDFT(x) = conj(DFT(conj(x)))/N
	// — the entire ABFT machinery guards the inverse path too.
	Inverse(ctx context.Context, dst, src []complex128) (Report, error)
	// ForwardBatch runs Forward for every (dst[i], src[i]) pair, reusing the
	// plan's pooled execution contexts across items (and running items
	// concurrently when cores are idle). Outputs are bit-identical to the
	// equivalent sequence of Forward calls; with a stateful Injector
	// installed, which item a scheduled fault strikes may differ between
	// batched and unbatched runs, because concurrent items race for the
	// injector's occurrence counters. The aggregate Report sums all items;
	// the first failing item stops the batch.
	ForwardBatch(ctx context.Context, dst, src [][]complex128) (Report, error)
	// Len returns the total number of points per transform.
	Len() int
	// Shape returns the 2-D geometry (rows, cols); 1-D transforms report
	// (1, Len()).
	Shape() (rows, cols int)
	// Ranks returns the parallelism degree: simulated ranks for a parallel
	// 1-D transform, worker-pool size for a 2-D transform, 1 otherwise.
	Ranks() int
	// Protection returns the configured fault-tolerance scheme.
	Protection() Protection
}

// New plans an n-point protected transform. The zero option set is a plain
// sequential 1-D FFT; options compose protection (WithProtection), geometry
// (WithShape) and parallelism (WithRanks):
//
//	ftfft.New(1<<20, ftfft.WithProtection(ftfft.OnlineABFTMemory))
//	ftfft.New(1<<20, ftfft.WithRanks(8), ftfft.WithProtection(ftfft.OnlineABFTMemory))
//	ftfft.New(rows*cols, ftfft.WithShape(rows, cols), ftfft.WithRanks(4))
//
// Like FFTW, plans front-load all derived state — FFT sub-plans, twiddle
// tables, checksum weight vectors, communicators and workspaces — so
// executing a Transform allocates nothing in steady state.
func New(n int, opts ...Option) (Transform, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if n < 1 {
		return nil, fmt.Errorf("ftfft: invalid transform size %d", n)
	}
	if c.ranks < 0 {
		return nil, fmt.Errorf("ftfft: invalid rank count %d", c.ranks)
	}
	if c.rows != 0 || c.cols != 0 {
		if c.rows < 1 || c.cols < 1 {
			return nil, fmt.Errorf("ftfft: invalid 2-D shape %d×%d", c.rows, c.cols)
		}
		if n != c.rows*c.cols {
			return nil, fmt.Errorf("ftfft: size %d does not match shape %d×%d", n, c.rows, c.cols)
		}
		return newGrid2D(c)
	}
	if c.ranks > 1 {
		return newParTransform(n, c)
	}
	return newSeqTransform(n, c)
}

// checkArgs is the uniform API-boundary validation every executor applies:
// both buffers must hold n elements and must not alias (all transforms are
// out-of-place).
func checkArgs(n int, dst, src []complex128) error {
	if len(dst) < n || len(src) < n {
		return fmt.Errorf("ftfft: buffers too short: dst=%d src=%d, need %d", len(dst), len(src), n)
	}
	if &dst[0] == &src[0] {
		return fmt.Errorf("ftfft: dst and src alias the same memory; transforms are out-of-place")
	}
	return nil
}

// checkBatch validates a batch: matching item counts, and every pair passes
// checkArgs.
func checkBatch(n int, dst, src [][]complex128) error {
	if len(dst) != len(src) {
		return fmt.Errorf("ftfft: batch size mismatch: %d dst vs %d src", len(dst), len(src))
	}
	for i := range dst {
		if err := checkArgs(n, dst[i], src[i]); err != nil {
			return fmt.Errorf("ftfft: batch item %d: %w", i, err)
		}
	}
	return nil
}

// runIndexed drives items through fn with at most workers concurrent
// calls, accumulating the per-item Reports. fn receives its worker index
// (0 ≤ w < workers) so callers can hand each worker a private scratch
// slot. The first failing item (lowest index) determines the returned
// error, wrapped as "<label> <index>"; later items may have been skipped.
func runIndexed(ctx context.Context, items, workers int, label string, fn func(ctx context.Context, worker, item int) (Report, error)) (Report, error) {
	var total Report
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		for i := 0; i < items; i++ {
			if err := ctx.Err(); err != nil {
				return total, err
			}
			rep, err := fn(ctx, 0, i)
			total.Add(rep)
			if err != nil {
				return total, fmt.Errorf("ftfft: %s %d: %w", label, i, err)
			}
		}
		return total, nil
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		reps    = make([]Report, workers)
		errs    = make([]error, workers)
		errItem = make([]int, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= items {
					return
				}
				rep, err := fn(ctx, w, i)
				reps[w].Add(rep)
				if err != nil {
					errs[w], errItem[w] = err, i
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	firstItem, firstErr := items, error(nil)
	for w := 0; w < workers; w++ {
		total.Add(reps[w])
		if errs[w] != nil && errItem[w] < firstItem {
			firstItem, firstErr = errItem[w], errs[w]
		}
	}
	if firstErr != nil {
		return total, fmt.Errorf("ftfft: %s %d: %w", label, firstItem, firstErr)
	}
	return total, ctx.Err()
}

// seqTransform is the sequential 1-D executor: a pool of core transformers
// (one drawn per in-flight call) behind the unified contract.
type seqTransform struct {
	n    int
	prot Protection
	cfg  core.Config

	mu   sync.Mutex
	free []*seqCtx
}

// seqCtx is one in-flight call's state: the transformer and the conjugation
// staging buffer the inverse path writes conj(src) into.
type seqCtx struct {
	tr      *core.Transformer
	scratch []complex128
}

// maxPooledSeq bounds how many idle sequential contexts a plan retains.
const maxPooledSeq = 16

func newSeqTransform(n int, c config) (*seqTransform, error) {
	cfg, err := c.protection.coreConfig()
	if err != nil {
		return nil, err
	}
	cfg.Injector = c.injector
	cfg.EtaScale = c.etaScale
	cfg.MaxRetries = c.maxRetries
	s := &seqTransform{n: n, prot: c.protection, cfg: cfg}
	// Build the first context eagerly: it validates n against the scheme
	// and pre-warms the pool.
	ec, err := s.newCtx()
	if err != nil {
		return nil, err
	}
	s.free = append(s.free, ec)
	return s, nil
}

func (s *seqTransform) newCtx() (*seqCtx, error) {
	tr, err := core.New(s.n, s.cfg)
	if err != nil {
		return nil, err
	}
	return &seqCtx{tr: tr, scratch: make([]complex128, s.n)}, nil
}

func (s *seqTransform) getCtx() (*seqCtx, error) {
	s.mu.Lock()
	if k := len(s.free); k > 0 {
		ec := s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
		s.mu.Unlock()
		return ec, nil
	}
	s.mu.Unlock()
	return s.newCtx()
}

// putCtx returns a context to the pool. Unlike the parallel worlds, a core
// transformer rewrites all working state per call, so contexts are reusable
// even after a failed transform.
func (s *seqTransform) putCtx(ec *seqCtx) {
	s.mu.Lock()
	if len(s.free) < maxPooledSeq {
		s.free = append(s.free, ec)
	}
	s.mu.Unlock()
}

func (s *seqTransform) Len() int                { return s.n }
func (s *seqTransform) Shape() (rows, cols int) { return 1, s.n }
func (s *seqTransform) Ranks() int              { return 1 }
func (s *seqTransform) Protection() Protection  { return s.prot }

func (s *seqTransform) Forward(ctx context.Context, dst, src []complex128) (Report, error) {
	if err := checkArgs(s.n, dst, src); err != nil {
		return Report{}, err
	}
	ec, err := s.getCtx()
	if err != nil {
		return Report{}, err
	}
	rep, err := ec.tr.TransformContext(ctx, dst[:s.n], src[:s.n])
	s.putCtx(ec)
	return rep, err
}

func (s *seqTransform) Inverse(ctx context.Context, dst, src []complex128) (Report, error) {
	if err := checkArgs(s.n, dst, src); err != nil {
		return Report{}, err
	}
	ec, err := s.getCtx()
	if err != nil {
		return Report{}, err
	}
	for i := 0; i < s.n; i++ {
		ec.scratch[i] = conj(src[i])
	}
	rep, err := ec.tr.TransformContext(ctx, dst[:s.n], ec.scratch)
	if err == nil {
		inv := complex(1/float64(s.n), 0)
		for i := 0; i < s.n; i++ {
			dst[i] = conj(dst[i]) * inv
		}
	}
	s.putCtx(ec)
	return rep, err
}

func (s *seqTransform) ForwardBatch(ctx context.Context, dst, src [][]complex128) (Report, error) {
	if err := checkBatch(s.n, dst, src); err != nil {
		return Report{}, err
	}
	// Worker count is capped at the context-pool size, so the steady state
	// never constructs transformers beyond what the pool retains.
	workers := min(runtime.GOMAXPROCS(0), maxPooledSeq)
	return runIndexed(ctx, len(dst), workers, "batch item", func(ctx context.Context, _, i int) (Report, error) {
		return s.Forward(ctx, dst[i], src[i])
	})
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
