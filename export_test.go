package ftfft

// PooledContexts reports how many idle execution contexts a Transform's
// freelist currently retains, and the freelist's cap. Every executor bounds
// its pool so a burst of M concurrent calls never pins M workspaces; the
// context-pool tests observe that cap through this hook.
func PooledContexts(t Transform) (free, capacity int) {
	switch tt := t.(type) {
	case *seqTransform:
		tt.mu.Lock()
		defer tt.mu.Unlock()
		return len(tt.free), maxPooledSeq
	case *ndTransform:
		return tt.pl.PooledContexts()
	case *parTransform:
		return tt.pl.PooledContexts()
	default:
		return 0, 0
	}
}
