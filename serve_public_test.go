package ftfft_test

import (
	"context"
	"errors"
	"fmt"
	"math/cmplx"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftfft"
	"ftfft/internal/workload"
)

// startServe opens a unix-socket server in a test-scoped directory and tears
// it down with the test.
func startServe(t *testing.T, cfg ftfft.ServerConfig) (*ftfft.Server, string, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "ftfft.sock")
	srv, err := ftfft.ListenServe("unix", sock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, "unix", sock
}

func dialServe(t *testing.T, network, addr string) *ftfft.Client {
	t.Helper()
	c, err := ftfft.Dial(network, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func randomReal(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

// serveCase is one (op, geometry, protection) point of the service surface,
// with the locally computed reference output and report.
type serveCase struct {
	name string
	run  func(ctx context.Context, c *ftfft.Client) (any, ftfft.Report, error)

	want    any // []complex128 or []float64, computed locally
	wantRep ftfft.Report
}

// TestServeBitIdentical is the service acceptance test: concurrent clients
// submitting mixed sizes, geometries and protection schemes must receive
// bit-for-bit the output a local Transform produces for the same request —
// the server is a transport around the same protected engine, never a
// different numeric path. The injected-faults subtest extends the guarantee
// under transform-level soft errors: server and local reference run
// identical fault schedules, so outputs and fault Reports must match
// exactly, corrections included.
func TestServeBitIdentical(t *testing.T) {
	ctx := context.Background()

	type geom struct {
		name string
		n    int
		prot ftfft.Protection
		opts []ftfft.Option
	}
	geoms := []geom{
		{"n256-plain", 256, ftfft.None, nil},
		{"n1024-online-memory", 1024, ftfft.OnlineABFTMemory, nil},
		{"shape32x32-online", 1024, ftfft.OnlineABFT, []ftfft.Option{ftfft.WithShape(32, 32)}},
		{"dims16x16x4-plain", 1024, ftfft.None, []ftfft.Option{ftfft.WithDims(16, 16, 4)}},
	}

	var cases []serveCase
	for _, g := range geoms {
		src := workload.Uniform(int64(g.n)+int64(g.prot), g.n)
		opts := append([]ftfft.Option{ftfft.WithProtection(g.prot)}, g.opts...)
		local, err := ftfft.New(g.n, opts...)
		if err != nil {
			t.Fatal(err)
		}
		fwd := make([]complex128, g.n)
		fwdRep, err := local.Forward(ctx, fwd, src)
		if err != nil {
			t.Fatal(err)
		}
		inv := make([]complex128, g.n)
		invRep, err := local.Inverse(ctx, inv, src)
		if err != nil {
			t.Fatal(err)
		}
		n := g.n
		cases = append(cases,
			serveCase{
				name: g.name + "-forward", want: fwd, wantRep: fwdRep,
				run: func(ctx context.Context, c *ftfft.Client) (any, ftfft.Report, error) {
					dst := make([]complex128, n)
					rep, err := c.Forward(ctx, dst, src, opts...)
					return dst, rep, err
				},
			},
			serveCase{
				name: g.name + "-inverse", want: inv, wantRep: invRep,
				run: func(ctx context.Context, c *ftfft.Client) (any, ftfft.Report, error) {
					dst := make([]complex128, n)
					rep, err := c.Inverse(ctx, dst, src, opts...)
					return dst, rep, err
				},
			},
		)
	}

	// Real transforms: forward to the half spectrum and back.
	const rn = 512
	rsrc := randomReal(11, rn)
	rlocal, err := ftfft.NewReal(rn, ftfft.WithProtection(ftfft.OnlineABFT))
	if err != nil {
		t.Fatal(err)
	}
	spec := make([]complex128, rn/2+1)
	specRep, err := rlocal.Forward(ctx, spec, rsrc)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, rn)
	sampRep, err := rlocal.Inverse(ctx, samples, spec)
	if err != nil {
		t.Fatal(err)
	}
	ropts := []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFT)}
	cases = append(cases,
		serveCase{
			name: "real512-forward", want: spec, wantRep: specRep,
			run: func(ctx context.Context, c *ftfft.Client) (any, ftfft.Report, error) {
				dst := make([]complex128, rn/2+1)
				rep, err := c.RealForward(ctx, dst, rsrc, ropts...)
				return dst, rep, err
			},
		},
		serveCase{
			name: "real512-inverse", want: samples, wantRep: sampRep,
			run: func(ctx context.Context, c *ftfft.Client) (any, ftfft.Report, error) {
				dst := make([]float64, rn)
				rep, err := c.RealInverse(ctx, dst, spec, ropts...)
				return dst, rep, err
			},
		},
	)

	_, network, addr := startServe(t, ftfft.ServerConfig{})

	// Phase 1: 8 concurrent clients, each running the full mixed case set
	// twice (the second round exercises the plan-cache hit path).
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := ftfft.Dial(network, addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", k, err)
				return
			}
			defer c.Close()
			for round := 0; round < 2; round++ {
				for _, sc := range cases {
					got, rep, err := sc.run(ctx, c)
					if err != nil {
						errs <- fmt.Errorf("client %d round %d %s: %v", k, round, sc.name, err)
						return
					}
					if rep != sc.wantRep {
						errs <- fmt.Errorf("client %d round %d %s: report %+v, want %+v", k, round, sc.name, rep, sc.wantRep)
						return
					}
					switch want := sc.want.(type) {
					case []complex128:
						for i, w := range want {
							if g := got.([]complex128)[i]; g != w {
								errs <- fmt.Errorf("client %d round %d %s: differs at %d: %v vs %v", k, round, sc.name, i, g, w)
								return
							}
						}
					case []float64:
						for i, w := range want {
							if g := got.([]float64)[i]; g != w {
								errs <- fmt.Errorf("client %d round %d %s: differs at %d: %v vs %v", k, round, sc.name, i, g, w)
								return
							}
						}
					}
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2 (sequential — fault schedules fire once globally): the server
	// injects transform-level faults via ServerConfig.Injector, the local
	// reference runs an identical schedule, so both repair identically and
	// the outputs stay bit-for-bit equal — with matching nonzero Reports.
	t.Run("injected-faults", func(t *testing.T) {
		mkFaults := func() []ftfft.Fault {
			return []ftfft.Fault{
				{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 3, Index: -1, Mode: ftfft.AddConstant, Value: 7},
				{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Index: 100, Mode: ftfft.SetConstant, Value: -5},
			}
		}
		const n = 1024
		x := workload.Uniform(21, n)

		refSched := ftfft.NewFaultSchedule(9, mkFaults()...)
		local, err := ftfft.New(n,
			ftfft.WithProtection(ftfft.OnlineABFTMemory), ftfft.WithInjector(refSched))
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, n)
		wantRep, err := local.Forward(ctx, want, append([]complex128(nil), x...))
		if err != nil {
			t.Fatal(err)
		}
		if wantRep.MemCorrections == 0 && wantRep.CompRecomputations == 0 {
			t.Fatalf("reference schedule repaired nothing: %+v", wantRep)
		}

		srvSched := ftfft.NewFaultSchedule(9, mkFaults()...)
		_, network, addr := startServe(t, ftfft.ServerConfig{Injector: srvSched})
		c := dialServe(t, network, addr)
		got := make([]complex128, n)
		gotRep, err := c.Forward(ctx, got, append([]complex128(nil), x...),
			ftfft.WithProtection(ftfft.OnlineABFTMemory))
		if err != nil {
			t.Fatal(err)
		}
		if !srvSched.AllFired() {
			t.Fatal("server-side faults did not fire")
		}
		if gotRep != wantRep {
			t.Fatalf("served faulty report %+v, local %+v", gotRep, wantRep)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("faulty served output differs at %d: %v vs %v", i, got[i], want[i])
			}
		}
	})
}

// TestServeWireFaultContract pins the repair-or-reject guarantee at the
// public surface: a single corrupted element in transit is repaired
// (counted in the Report, output within round-off of the clean result), and
// corruption beyond the §5 code's reach is rejected with ErrUncorrectable —
// never a silently wrong payload.
func TestServeWireFaultContract(t *testing.T) {
	ctx := context.Background()
	const n = 1024
	src := workload.Uniform(5, n)

	local, err := ftfft.New(n, ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	if _, err := local.Forward(ctx, want, src); err != nil {
		t.Fatal(err)
	}

	_, network, addr := startServe(t, ftfft.ServerConfig{})
	c := dialServe(t, network, addr)
	opts := []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFTMemory)}

	// One corrupted element: repaired server-side (checksum repair is exact
	// to round-off, not bitwise — the transform amplifies that ulp).
	corrupt := func(k int) func([]byte) {
		return func(payload []byte) {
			for e := 0; e < k; e++ {
				off := e * 16 * (len(payload) / (16 * k))
				payload[off] ^= 0x40
				payload[off+7] ^= 0x01
			}
		}
	}
	c.InjectWireFaults(corrupt(1))
	dst := make([]complex128, n)
	rep, err := c.Forward(ctx, dst, src, opts...)
	if err != nil {
		t.Fatalf("single-element corruption not repaired: %v", err)
	}
	if rep.Detections != 1 || rep.MemCorrections != 1 || rep.Uncorrectable {
		t.Fatalf("repair report %+v", rep)
	}
	tol := 1e-9 * float64(n)
	for i := range want {
		if d := cmplx.Abs(dst[i] - want[i]); d > tol {
			t.Fatalf("repaired output off at %d by %g", i, d)
		}
	}

	// Three corrupted elements: beyond single-error correction — the server
	// must reject with an uncorrectable error frame, and the connection
	// survives for the next (clean) request.
	c.InjectWireFaults(corrupt(3))
	rep, err = c.Forward(ctx, dst, src, opts...)
	if !errors.Is(err, ftfft.ErrUncorrectable) {
		t.Fatalf("multi-element corruption: err = %v, want ErrUncorrectable", err)
	}
	if !rep.Uncorrectable {
		t.Fatalf("reject report %+v lacks Uncorrectable", rep)
	}

	c.InjectWireFaults(nil)
	if _, err := c.Forward(ctx, dst, src, opts...); err != nil {
		t.Fatalf("clean request after reject: %v", err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("post-reject output differs at %d", i)
		}
	}
}

// TestServeClientOptionRejection pins the client/server option split:
// execution-side options are rejected client-side instead of being silently
// dropped on the wire.
func TestServeClientOptionRejection(t *testing.T) {
	_, network, addr := startServe(t, ftfft.ServerConfig{})
	c := dialServe(t, network, addr)
	ctx := context.Background()
	src := workload.Uniform(3, 64)
	dst := make([]complex128, 64)

	for _, tc := range []struct {
		name string
		opt  ftfft.Option
	}{
		{"ranks", ftfft.WithRanks(4)},
		{"transport", ftfft.WithTransport(ftfft.MessageOnlyTransport(2))},
		{"workers", ftfft.WithWorkers(2)},
		{"injector", ftfft.WithInjector(ftfft.NewFaultSchedule(1))},
		{"eta", ftfft.WithEtaScale(2)},
		{"retries", ftfft.WithMaxRetries(5)},
	} {
		if _, err := c.Forward(ctx, dst, src, tc.opt); err == nil {
			t.Errorf("%s: server-side option accepted by client", tc.name)
		}
	}
	// Geometry options are rejected on the real path.
	rdst := make([]complex128, 33)
	if _, err := c.RealForward(ctx, rdst, randomReal(1, 64), ftfft.WithShape(8, 8)); err == nil {
		t.Error("WithShape accepted by RealForward")
	}
	// The connection is still healthy.
	if _, err := c.Forward(ctx, dst, src); err != nil {
		t.Fatalf("clean request after rejections: %v", err)
	}
}

// TestServeGoroutineBounded holds the tentpole's burst-degradation promise
// to a number: under a 64-client burst of concurrent requests, the process
// gains goroutines only for the structural parts (one reader per connection
// on each side, one submitter per in-flight call) plus the MaxInFlight
// handler bound — never a handler per queued request.
func TestServeGoroutineBounded(t *testing.T) {
	const (
		clients     = 64
		perClient   = 4 // concurrent requests per client
		maxInFlight = 4
		workers     = 2
		n           = 4096
	)
	base := runtime.NumGoroutine()
	_, network, addr := startServe(t, ftfft.ServerConfig{
		MaxInFlight: maxInFlight,
		Workers:     workers,
	})

	// Sampler: record the goroutine high-water mark during the burst.
	var peak atomic.Int64
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := int64(runtime.NumGoroutine())
			for {
				p := peak.Load()
				if g <= p || peak.CompareAndSwap(p, g) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	src := workload.Uniform(13, n)
	opts := []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFTMemory)}
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := ftfft.Dial(network, addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			var cwg sync.WaitGroup
			for r := 0; r < perClient; r++ {
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					dst := make([]complex128, n)
					if _, err := c.Forward(context.Background(), dst, src, opts...); err != nil {
						errs <- err
					}
				}()
			}
			cwg.Wait()
		}()
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Structural budget: one submitter goroutine per in-flight call
	// (client-side), and per client one test wrapper goroutine, one client
	// read loop and one server reader for its connection; plus the bounded
	// handler pool, the private exec workers, and slack for the accept
	// loop, test scaffolding and runtime helpers. A handler-per-queued-
	// request server would exceed this by up to
	// clients·perClient − maxInFlight ≈ 250 goroutines.
	budget := int64(base + clients*perClient + 3*clients + maxInFlight + workers + 40)
	if p := peak.Load(); p > budget {
		t.Fatalf("goroutine peak %d exceeds structural budget %d (base %d)", p, budget, base)
	}

	// And the burst leaves nothing behind once clients disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+workers+10 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base+workers+10 {
		t.Fatalf("goroutines did not drain after the burst: %d, base %d", g, base)
	}
}
