module ftfft

go 1.24
