package ftfft_test

import (
	"math"
	"strings"
	"testing"

	"ftfft"
)

// TestOptionValidationUniform is the construction-time audit: every option's
// invalid range must be rejected by New with one uniform error shape
// ("ftfft: invalid ..."), before any plan state is built.
func TestOptionValidationUniform(t *testing.T) {
	shared, err := ftfft.NewExecutor(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		n    int
		opts []ftfft.Option
	}{
		{"zero size", 0, nil},
		{"negative size", -4, nil},
		{"negative ranks", 64, []ftfft.Option{ftfft.WithRanks(-1)}},
		{"negative eta scale", 64, []ftfft.Option{ftfft.WithEtaScale(-0.5)}},
		{"NaN eta scale", 64, []ftfft.Option{ftfft.WithEtaScale(math.NaN())}},
		{"negative retries", 64, []ftfft.Option{ftfft.WithMaxRetries(-1)}},
		{"negative workers", 64, []ftfft.Option{ftfft.WithWorkers(-2)}},
		{"workers and executor together", 64, []ftfft.Option{ftfft.WithWorkers(2), ftfft.WithExecutor(shared)}},
		{"nil executor", 64, []ftfft.Option{ftfft.WithExecutor(nil)}},
		{"negative shape", 64, []ftfft.Option{ftfft.WithShape(-8, -8)}},
		{"zero shape row", 64, []ftfft.Option{ftfft.WithShape(0, 64)}},
		{"shape size mismatch", 100, []ftfft.Option{ftfft.WithShape(8, 8)}},
		{"shape mismatch with ranks", 100, []ftfft.Option{ftfft.WithShape(8, 8), ftfft.WithRanks(2)}},
		{"empty dims", 64, []ftfft.Option{ftfft.WithDims()}},
		{"zero dims axis", 64, []ftfft.Option{ftfft.WithDims(8, 0, 8)}},
		{"negative dims axis", 64, []ftfft.Option{ftfft.WithDims(-8, -8)}},
		{"dims product mismatch", 100, []ftfft.Option{ftfft.WithDims(8, 8)}},
		{"dims product short", 64, []ftfft.Option{ftfft.WithDims(2, 2)}},
		{"dims product overflow", 64, []ftfft.Option{ftfft.WithDims(1<<30, 1<<30, 1<<30)}},
		{"dims and shape together", 64, []ftfft.Option{ftfft.WithDims(8, 8), ftfft.WithShape(8, 8)}},
		{"unknown tuning mode", 64, []ftfft.Option{ftfft.WithTuning(ftfft.TuningMode(99))}},
		{"negative tuning mode", 64, []ftfft.Option{ftfft.WithTuning(ftfft.TuningMode(-1))}},
		{"negative batch window", 64, []ftfft.Option{ftfft.WithBatchWindow(-1)}},
		{"oversized batch window", 64, []ftfft.Option{ftfft.WithBatchWindow(5)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ftfft.New(tc.n, tc.opts...)
			if err == nil {
				t.Fatalf("New accepted %s (got %T)", tc.name, tr)
			}
			if !strings.HasPrefix(err.Error(), "ftfft: invalid") {
				t.Fatalf("non-uniform validation error: %q (want \"ftfft: invalid ...\")", err)
			}
		})
	}

	// The zero value of every option is valid and means "default".
	for _, tc := range []struct {
		name string
		opts []ftfft.Option
	}{
		{"zero ranks", []ftfft.Option{ftfft.WithRanks(0)}},
		{"zero eta scale", []ftfft.Option{ftfft.WithEtaScale(0)}},
		{"zero retries", []ftfft.Option{ftfft.WithMaxRetries(0)}},
		{"zero workers", []ftfft.Option{ftfft.WithWorkers(0)}},
		{"one-axis dims", []ftfft.Option{ftfft.WithDims(64)}},
		{"multi-axis dims", []ftfft.Option{ftfft.WithDims(4, 4, 4)}},
		{"dims with unit axes", []ftfft.Option{ftfft.WithDims(1, 64, 1)}},
		{"zero tuning mode", []ftfft.Option{ftfft.WithTuning(ftfft.TuneEstimate)}},
		{"zero batch window", []ftfft.Option{ftfft.WithBatchWindow(0)}},
		{"batch window on sequential plan", []ftfft.Option{ftfft.WithBatchWindow(2)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ftfft.New(64, tc.opts...); err != nil {
				t.Fatalf("zero-value option rejected: %v", err)
			}
		})
	}
}

func TestNewExecutorValidation(t *testing.T) {
	for _, workers := range []int{0, -1} {
		if _, err := ftfft.NewExecutor(workers); err == nil {
			t.Errorf("NewExecutor(%d) accepted", workers)
		} else if !strings.HasPrefix(err.Error(), "ftfft: invalid") {
			t.Errorf("non-uniform error: %q", err)
		}
	}
}
