package ftfft_test

import (
	"context"
	"slices"
	"sync"
	"testing"

	"ftfft"
	"ftfft/internal/dft"
	"ftfft/internal/workload"
)

// ndShapes covers ranks k ∈ {1, 2, 3, 4}, including degenerate size-1 axes.
var ndShapes = [][]int{
	{64},
	{8, 16},
	{32, 8},
	{4, 8, 8},
	{8, 8, 8},
	{1, 32},
	{32, 1},
	{8, 1, 8},
	{2, 4, 4, 4},
	{4, 4, 2, 4},
}

// ndProtOK reports whether every non-degenerate axis of dims is plannable
// as a protected 1-D transform under prot (the online scheme needs
// composite axis lengths ≥ 4; size-1 axes are identity passes).
func ndProtOK(dims []int, prot ftfft.Protection) bool {
	for _, d := range dims {
		if d == 1 {
			continue
		}
		if _, err := ftfft.New(d, ftfft.WithProtection(prot)); err != nil {
			return false
		}
	}
	return true
}

// axiswiseReference is the nested axis-wise reference: a protected 1-D
// transform per axis length, applied line by line with explicit
// gather/scatter in the engine's pass order (innermost axis first). The
// N-D engine's strided tiled passes must be bit-identical to it.
func axiswiseReference(t *testing.T, x []complex128, dims []int, prot ftfft.Protection, inverse bool) []complex128 {
	t.Helper()
	ctx := context.Background()
	out := append([]complex128(nil), x...)
	inner := 1
	for a := len(dims) - 1; a >= 0; a-- {
		length := dims[a]
		if length == 1 {
			continue
		}
		tr, err := ftfft.New(length, ftfft.WithProtection(prot))
		if err != nil {
			t.Fatalf("axis %d (len %d): %v", a, length, err)
		}
		line := make([]complex128, length)
		res := make([]complex128, length)
		outer := len(x) / (length * inner)
		for o := 0; o < outer; o++ {
			for s := 0; s < inner; s++ {
				base := o*length*inner + s
				for r := 0; r < length; r++ {
					line[r] = out[base+r*inner]
				}
				var err error
				if inverse {
					_, err = tr.Inverse(ctx, res, line)
				} else {
					_, err = tr.Forward(ctx, res, line)
				}
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < length; r++ {
					out[base+r*inner] = res[r]
				}
			}
		}
		inner *= length
	}
	return out
}

// ndReferenceDFT applies the O(len²) reference DFT axis by axis — the
// ground truth the engine is cross-checked against within round-off.
func ndReferenceDFT(x []complex128, dims []int) []complex128 {
	out := append([]complex128(nil), x...)
	inner := 1
	for a := len(dims) - 1; a >= 0; a-- {
		length := dims[a]
		if length == 1 {
			continue
		}
		line := make([]complex128, length)
		outer := len(x) / (length * inner)
		for o := 0; o < outer; o++ {
			for s := 0; s < inner; s++ {
				base := o*length*inner + s
				for r := 0; r < length; r++ {
					line[r] = out[base+r*inner]
				}
				X := dft.Transform(line)
				for r := 0; r < length; r++ {
					out[base+r*inner] = X[r]
				}
			}
		}
		inner *= length
	}
	return out
}

// TestNDMatchesAxiswiseReference is the acceptance gate for the N-D
// engine: for every tested shape and protection, WithDims outputs are
// bit-identical to the nested axis-wise reference (gather → protected 1-D
// transform → scatter per line) and within round-off of the axis-wise
// reference DFT.
func TestNDMatchesAxiswiseReference(t *testing.T) {
	ctx := context.Background()
	for _, dims := range ndShapes {
		n := 1
		for _, d := range dims {
			n *= d
		}
		x := workload.Uniform(int64(17+n), n)
		dftWant := ndReferenceDFT(x, dims)
		for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OfflineABFT, ftfft.OnlineABFTMemory} {
			if !ndProtOK(dims, prot) {
				continue
			}
			want := axiswiseReference(t, x, dims, prot, false)
			tr, err := ftfft.New(n, ftfft.WithDims(dims...), ftfft.WithProtection(prot))
			if err != nil {
				t.Fatalf("%v %v: %v", dims, prot, err)
			}
			if got := tr.Dims(); !slices.Equal(got, dims) {
				t.Fatalf("Dims() = %v, want %v", got, dims)
			}
			got := make([]complex128, n)
			rep, err := tr.Forward(ctx, got, append([]complex128(nil), x...))
			if err != nil || !rep.Clean() {
				t.Fatalf("%v %v: err=%v rep=%+v", dims, prot, err, rep)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%v %v: element %d differs from the axis-wise reference: %v vs %v",
						dims, prot, j, got[j], want[j])
				}
			}
			tol := 1e-9 * float64(n) * (1 + maxAbs(dftWant))
			if d := maxAbsDiff(got, dftWant); d > tol {
				t.Fatalf("%v %v: diverged from reference DFT by %g (tol %g)", dims, prot, d, tol)
			}

			// Inverse: same contract.
			wantInv := axiswiseReference(t, x, dims, prot, true)
			gotInv := make([]complex128, n)
			if _, err := tr.Inverse(ctx, gotInv, append([]complex128(nil), x...)); err != nil {
				t.Fatalf("%v %v: inverse: %v", dims, prot, err)
			}
			for j := range gotInv {
				if gotInv[j] != wantInv[j] {
					t.Fatalf("%v %v: inverse element %d differs from the axis-wise reference",
						dims, prot, j)
				}
			}
		}
	}
}

// TestND3DFaultRecoveryRoundTrip drives scheduled computational and memory
// faults through a 3-D forward and inverse under online protection: every
// fault must fire, be detected, and the repaired round trip must match the
// clean run within round-off.
func TestND3DFaultRecoveryRoundTrip(t *testing.T) {
	ctx := context.Background()
	dims := []int{8, 16, 8}
	n := dims[0] * dims[1] * dims[2]
	x := workload.Uniform(23, n)

	clean, err := ftfft.New(n, ftfft.WithDims(dims...), ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		t.Fatal(err)
	}
	X := make([]complex128, n)
	back := make([]complex128, n)
	if _, err := clean.Forward(ctx, X, append([]complex128(nil), x...)); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Inverse(ctx, back, X); err != nil {
		t.Fatal(err)
	}

	sched := ftfft.NewFaultSchedule(31,
		ftfft.Fault{Site: ftfft.SiteSubFFT1, Rank: ftfft.AnyRank, Occurrence: 9, Index: -1, Mode: ftfft.AddConstant, Value: 7},
		ftfft.Fault{Site: ftfft.SiteInputMemory, Rank: ftfft.AnyRank, Occurrence: 4, Index: -1, Mode: ftfft.SetConstant, Value: 13},
		ftfft.Fault{Site: ftfft.SiteSubFFT2, Rank: ftfft.AnyRank, Occurrence: 40, Index: -1, Mode: ftfft.AddConstant, Value: 3},
	)
	faulty, err := ftfft.New(n, ftfft.WithDims(dims...),
		ftfft.WithProtection(ftfft.OnlineABFTMemory), ftfft.WithInjector(sched))
	if err != nil {
		t.Fatal(err)
	}
	gotX := make([]complex128, n)
	rep, err := faulty.Forward(ctx, gotX, append([]complex128(nil), x...))
	if err != nil {
		t.Fatalf("forward: %v (%+v)", err, rep)
	}
	gotBack := make([]complex128, n)
	rep2, err := faulty.Inverse(ctx, gotBack, gotX)
	if err != nil {
		t.Fatalf("inverse: %v (%+v)", err, rep2)
	}
	if !sched.AllFired() {
		t.Fatalf("not all scheduled faults fired: %+v", sched.Records())
	}
	rep.Add(rep2)
	if rep.Clean() {
		t.Fatalf("faults fired but the report is clean: %+v", rep)
	}
	nf := float64(n)
	if d := maxAbsDiff(gotX, X); d > 1e-7*nf*(1+maxAbs(X)) {
		t.Fatalf("3-D forward recovery diff %g (%+v)", d, rep)
	}
	if d := maxAbsDiff(gotBack, back); d > 1e-7*nf*(1+maxAbs(back)) {
		t.Fatalf("3-D inverse recovery diff %g (%+v)", d, rep)
	}
}

// TestNDShapeCompat pins the Shape()/Dims()/Ranks() accessor contract
// across geometries.
func TestNDShapeCompat(t *testing.T) {
	tr, err := ftfft.New(512, ftfft.WithDims(8, 8, 8), ftfft.WithRanks(3))
	if err != nil {
		t.Fatal(err)
	}
	if r, c := tr.Shape(); r != 8 || c != 64 {
		t.Errorf("3-D Shape() = (%d, %d), want (8, 64)", r, c)
	}
	if tr.Ranks() != 3 {
		t.Errorf("Ranks() = %d, want 3", tr.Ranks())
	}
	tr2, err := ftfft.New(512, ftfft.WithShape(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr2.Dims(); !slices.Equal(got, []int{16, 32}) {
		t.Errorf("WithShape Dims() = %v, want [16 32]", got)
	}
	seq, err := ftfft.New(512)
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.Dims(); !slices.Equal(got, []int{512}) {
		t.Errorf("1-D Dims() = %v, want [512]", got)
	}
	par, err := ftfft.New(1024, ftfft.WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := par.Dims(); !slices.Equal(got, []int{1024}) {
		t.Errorf("parallel Dims() = %v, want [1024]", got)
	}
}

// TestNDBatchBitIdentical: ForwardBatch over N-D items must match the
// unbatched sequence bit for bit, serial and dispatched.
func TestNDBatchBitIdentical(t *testing.T) {
	ctx := context.Background()
	const items = 4
	dims := []int{8, 4, 8}
	n := 8 * 4 * 8
	for _, ranks := range []int{1, 4} {
		tr, err := ftfft.New(n, ftfft.WithDims(dims...), ftfft.WithRanks(ranks),
			ftfft.WithProtection(ftfft.OnlineABFT))
		if err != nil {
			t.Fatal(err)
		}
		src := make([][]complex128, items)
		want := make([][]complex128, items)
		dst := make([][]complex128, items)
		for i := range src {
			src[i] = workload.Uniform(int64(90+i), n)
			want[i] = make([]complex128, n)
			dst[i] = make([]complex128, n)
			if _, err := tr.Forward(ctx, want[i], src[i]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.ForwardBatch(ctx, dst, src); err != nil {
			t.Fatal(err)
		}
		for i := range dst {
			for j := range dst[i] {
				if dst[i][j] != want[i][j] {
					t.Fatalf("ranks=%d: batch item %d differs at %d", ranks, i, j)
				}
			}
		}
	}
}

// TestContextPoolBounded is the workspace-retention regression test: a
// burst of M concurrent calls on one plan must not pin M workspaces — once
// the burst drains, each executor's freelist holds at most its cap, and
// the cap is strictly smaller than the burst.
func TestContextPoolBounded(t *testing.T) {
	ctx := context.Background()
	const burst = 24
	for _, tc := range []struct {
		name string
		n    int
		opts []ftfft.Option
	}{
		{"seq", 1024, []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFTMemory)}},
		{"nd", 32 * 32, []ftfft.Option{ftfft.WithDims(32, 32), ftfft.WithProtection(ftfft.OnlineABFT)}},
		{"parallel", 1024, []ftfft.Option{ftfft.WithRanks(2), ftfft.WithProtection(ftfft.OnlineABFTMemory)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ftfft.New(tc.n, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			_, capacity := ftfft.PooledContexts(tr)
			if capacity < 1 || capacity >= burst {
				t.Fatalf("freelist cap %d not in [1, %d): the burst cannot observe it", capacity, burst)
			}
			gate := make(chan struct{})
			var wg sync.WaitGroup
			errs := make([]error, burst)
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					src := workload.Uniform(int64(i), tc.n)
					dst := make([]complex128, tc.n)
					<-gate
					for it := 0; it < 3; it++ {
						if _, err := tr.Forward(ctx, dst, src); err != nil {
							errs[i] = err
							return
						}
					}
				}(i)
			}
			close(gate)
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			free, capacity := ftfft.PooledContexts(tr)
			if free > capacity {
				t.Fatalf("freelist retains %d contexts after the burst, cap is %d", free, capacity)
			}
		})
	}
}

// TestNDSerialAllocs: the serial N-D steady state must allocate nothing —
// strided passes neither gather, scatter, nor construct per call.
func TestNDSerialAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	tr, err := ftfft.New(64*64, ftfft.WithDims(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	src := workload.Uniform(3, 64*64)
	dst := make([]complex128, 64*64)
	if _, err := tr.Forward(ctx, dst, src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tr.Forward(ctx, dst, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial 2-D Forward: %v allocs/op, want 0", allocs)
	}
}
