// Command ftfft runs one protected transform and reports what the fault
// tolerance machinery saw — a quick way to watch the scheme detect and
// correct injected soft errors.
//
// Usage:
//
//	ftfft -n 20 -protection online-memory
//	ftfft -n 18 -protection online-memory -inject 1m+2c
//	ftfft -n 18 -protection offline -inject 1m
//	ftfft -n 20 -parallel 8 -inject 2m+2c
//	ftfft -dims 64x64x64 -inject 1m+1c
//	ftfft -n 20 -real -inject 1m+1c
//
// -real transforms n real samples through the packed half-length RFFT (one
// protected complex transform of n/2 points plus an O(n) untangling), then
// inverts the spectrum and checks the round trip; injected faults strike the
// inner complex transform's sites and are repaired by the same machinery.
//
// Distributed execution (real OS processes over sockets or shared memory):
//
//	ftfft -n 16 -parallel 4 -listen /tmp/ftfft.sock -spawn-workers
//	ftfft -n 16 -parallel 4 -listen /tmp/ftfft.sock   # plus, in 3 shells:
//	ftfft -worker -connect /tmp/ftfft.sock
//	ftfft -n 16 -parallel 4 -transport shm -listen /tmp/ftfft.ring -spawn-workers
//
// -listen makes this process rank 0 of a p-rank socket world (Unix-domain
// when the address contains a path separator or no colon, TCP otherwise)
// and blocks until the p-1 workers dial in; -spawn-workers forks them
// automatically. -worker -connect turns the process into one rank: it takes
// its geometry and protection from the hub's handshake and serves transforms
// until the driver exits. -transport shm swaps the sockets for same-host
// memory-mapped ring buffers (the -listen/-connect address is the ring-file
// path, created by the driver and removed on exit). -mesh on the driver has
// socket workers dial each other directly, so worker↔worker transpose frames
// skip the hub relay; -no-mesh on a worker keeps that one worker relay-only
// (its peers fall back to the hub for pairs involving it).
//
// -inject takes a mix like "2m+1c": m = memory faults, c = computational
// faults. -dims runs the N-dimensional axis-pass engine over the given
// row-major shape (with -parallel as the per-pass dispatch width).
//
// Autotuning (FFTW-style MEASURE with persistent wisdom):
//
//	ftfft -n 20 -tune -wisdom /tmp/ftfft.wisdom   # measure, run, save wisdom
//	ftfft -n 20 -wisdom /tmp/ftfft.wisdom         # reuse the saved choices
//
// -tune builds the plan under WithTuning(TuneMeasured): legal candidates for
// each tunable plan choice are timed at plan build and the winners recorded
// as wisdom. -wisdom names a wisdom file imported (if present) before
// planning; with -tune the updated table is written back after the run, so
// the same flag on a later invocation — or on ftserve — replays the measured
// choices without re-measuring.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"ftfft"
	"ftfft/internal/workload"
)

var protections = map[string]ftfft.Protection{
	"none":                ftfft.None,
	"offline":             ftfft.OfflineABFT,
	"offline-naive":       ftfft.OfflineABFTNaive,
	"online":              ftfft.OnlineABFT,
	"online-naive":        ftfft.OnlineABFTNaive,
	"online-memory":       ftfft.OnlineABFTMemory,
	"online-memory-naive": ftfft.OnlineABFTMemoryNaive,
}

func main() {
	logN := flag.Int("n", 18, "log2 of the transform size")
	dimsFlag := flag.String("dims", "", "N-D shape d0xd1x…, e.g. 64x64x64 (overrides -n; runs the axis-pass engine)")
	prot := flag.String("protection", "online-memory", "protection level: none, offline[-naive], online[-naive], online-memory[-naive]")
	realInput := flag.Bool("real", false, "transform real samples via the packed half-length RFFT (sequential 1-D only)")
	inject := flag.String("inject", "", "fault mix, e.g. 1c, 1m, 2m+2c (m = memory, c = computational)")
	parallelRanks := flag.Int("parallel", 0, "parallel ranks for 1-D, or axis-pass dispatch width with -dims (0 = sequential)")
	timeout := flag.Duration("timeout", 0, "cancel the transform after this long (0 = no deadline)")
	seed := flag.Int64("seed", 1, "input seed")
	worker := flag.Bool("worker", false, "run as a distributed worker rank (requires -connect)")
	connectAddr := flag.String("connect", "", "worker mode: hub address to dial")
	listenAddr := flag.String("listen", "", "driver mode: run -parallel ranks as OS processes; listen for workers here")
	spawnWorkers := flag.Bool("spawn-workers", false, "with -listen: fork the worker processes automatically")
	transport := flag.String("transport", "socket", "distributed wire: socket (unix/tcp, inferred from the address) or shm (same-host memory-mapped rings; -listen/-connect is the ring-file path)")
	mesh := flag.Bool("mesh", false, "with -listen: socket workers dial each other directly; worker↔worker frames skip the hub relay")
	noMesh := flag.Bool("no-mesh", false, "with -worker: join relay-only, declining peer mesh connections")
	tune := flag.Bool("tune", false, "build the plan under measured tuning: time candidate plan choices and record the winners as wisdom")
	wisdomPath := flag.String("wisdom", "", "wisdom file: imported before planning if present; with -tune, the updated table is saved back after the run")
	flag.Parse()

	if *transport != "socket" && *transport != "shm" {
		fatalf("unknown -transport %q (want socket or shm)", *transport)
	}
	importWisdom(*wisdomPath)
	if *worker {
		if *connectAddr == "" {
			fatalf("-worker requires -connect")
		}
		network := networkFor(*connectAddr)
		if *transport == "shm" {
			network = "shm"
		}
		var wopts []ftfft.Option
		if *noMesh {
			wopts = append(wopts, ftfft.WithoutPeerMesh())
		}
		if err := ftfft.ServeWorker(context.Background(), network, *connectAddr, wopts...); err != nil {
			fatalf("worker: %v", err)
		}
		return
	}
	if *noMesh {
		fatalf("-no-mesh is a worker flag (use -mesh on the driver)")
	}

	n := 1 << *logN
	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fatalf("%v", err)
	}
	if dims != nil {
		n = 1
		for _, d := range dims {
			if n > math.MaxInt/d {
				fatalf("-dims %s: shape product overflows", *dimsFlag)
			}
			n *= d
		}
	}
	x := workload.Uniform(*seed, n)

	// A single-axis -dims is a 1-D transform: New routes it to the
	// sequential or six-step parallel engine, so the fault sites and label
	// must follow that dispatch rule, not the flag that selected the size.
	isND := len(dims) >= 2

	var sched *ftfft.Schedule
	if *inject != "" {
		mixRanks := *parallelRanks
		if isND {
			// N-D axis passes visit the sequential sites regardless of the
			// dispatch width; the parallel sites (message, parallel-fft)
			// exist only in the 1-D six-step scheme.
			mixRanks = 0
		}
		faults, err := parseMix(*inject, mixRanks)
		if err != nil {
			fatalf("%v", err)
		}
		if *listenAddr != "" {
			// Distributed runs inject at the driver: only rank 0's fault
			// sites are visited in this process, so pin the mix there — the
			// corrupted blocks still travel to (and are repaired by) the
			// remote ranks.
			for i := range faults {
				faults[i].Rank = 0
			}
		}
		sched = ftfft.NewFaultSchedule(*seed, faults...)
	}

	// One constructor for every strategy: protection × geometry ×
	// parallelism compose as options on the same planner.
	p, ok := protections[*prot]
	if !ok {
		fatalf("unknown protection %q", *prot)
	}
	opts := []ftfft.Option{ftfft.WithProtection(p)}
	if sched != nil {
		opts = append(opts, ftfft.WithInjector(sched))
	}
	if *tune {
		opts = append(opts, ftfft.WithTuning(ftfft.TuneMeasured))
	}
	if *realInput {
		if isND || dims != nil || *parallelRanks > 0 || *listenAddr != "" {
			fatalf("-real is a sequential 1-D transform; drop -dims/-parallel/-listen")
		}
		runReal(n, *logN, p, sched, opts, *timeout)
		saveWisdom(*tune, *wisdomPath)
		return
	}
	label := "sequential " + p.String()
	if dims != nil {
		opts = append(opts, ftfft.WithDims(dims...))
		if isND {
			label = fmt.Sprintf("%d-D axis-pass %s", len(dims), p)
		}
	}
	if *parallelRanks > 0 {
		// New itself rejects compositions without a parallel formulation
		// (the offline levels) with a descriptive error.
		opts = append(opts, ftfft.WithRanks(*parallelRanks))
		if isND {
			label += fmt.Sprintf(", %d-wide dispatch", *parallelRanks)
		} else {
			label = fmt.Sprintf("parallel %s, %d ranks", p, *parallelRanks)
		}
	}

	var workers []*exec.Cmd
	if *listenAddr != "" {
		if *parallelRanks < 2 || isND {
			fatalf("-listen needs a 1-D transform with -parallel ≥ 2")
		}
		network := networkFor(*listenAddr)
		var hub interface {
			ftfft.Transport
			Close() error
		}
		if *transport == "shm" {
			if *mesh {
				fatalf("-mesh applies to the socket wire; the shm rings are already a full mesh")
			}
			network = "shm"
			os.Remove(*listenAddr)
			h, err := ftfft.ListenShmHub(*listenAddr, *parallelRanks)
			if err != nil {
				fatalf("%v", err)
			}
			hub = h
		} else {
			if network == "unix" {
				os.Remove(*listenAddr)
			}
			listen := ftfft.ListenHub
			if *mesh {
				listen = ftfft.ListenMeshHub
			}
			h, err := listen(network, *listenAddr, *parallelRanks)
			if err != nil {
				fatalf("%v", err)
			}
			hub = h
		}
		defer hub.Close()
		opts = append(opts, ftfft.WithTransport(hub))
		label += fmt.Sprintf(", %d OS processes over %s", *parallelRanks, network)
		if *spawnWorkers {
			self, err := os.Executable()
			if err != nil {
				fatalf("%v", err)
			}
			for i := 1; i < *parallelRanks; i++ {
				w := exec.Command(self, "-worker", "-transport", *transport, "-connect", *listenAddr)
				w.Stderr = os.Stderr
				if err := w.Start(); err != nil {
					fatalf("spawning worker %d: %v", i, err)
				}
				workers = append(workers, w)
			}
			// The hub closes on exit (deferred above); workers observe the
			// goodbye and exit cleanly, so reap them at the end.
			defer func() {
				hub.Close()
				for _, w := range workers {
					w.Wait()
				}
			}()
		}
	}

	tr, err := ftfft.New(n, opts...)
	if err != nil {
		fatalf("%v", err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	dst := make([]complex128, n)
	start := time.Now()
	rep, err := tr.Forward(ctx, dst, x)
	took := time.Since(start)

	sizeDesc := fmt.Sprintf("N = 2^%d", *logN)
	if dims != nil {
		sizeDesc = *dimsFlag
	}
	fmt.Printf("transform : %s (%d points), %s\n", sizeDesc, n, label)
	fmt.Printf("time      : %v\n", took)
	if sched != nil {
		fmt.Printf("injected  : %d fault(s)\n", len(sched.Records()))
		for _, r := range sched.Records() {
			fmt.Printf("            %s at %s[%d] (rank %d): %v -> %v\n",
				r.Fault.Mode, r.Site, r.Index, r.Rank, r.Before, r.After)
		}
	}
	fmt.Printf("report    : detections=%d recomputed-subFFTs=%d memory-corrections=%d dmr-votes=%d restarts=%d\n",
		rep.Detections, rep.CompRecomputations, rep.MemCorrections, rep.TwiddleCorrections, rep.FullRestarts)
	if err != nil {
		fmt.Printf("result    : FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("result    : verified output (DC bin X[0] = %v)\n", dst[0])
	saveWisdom(*tune, *wisdomPath)
}

// importWisdom merges a wisdom file into the process table before any plan
// is built; a missing file is fine (first -tune run creates it on save).
func importWisdom(path string) {
	if path == "" {
		return
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		fatalf("reading -wisdom %s: %v", path, err)
	}
	if err := ftfft.ImportWisdom(data); err != nil {
		fatalf("importing -wisdom %s: %v", path, err)
	}
}

// saveWisdom writes the (possibly grown) wisdom table back after a measured
// run, so later invocations replay the choices without re-measuring.
func saveWisdom(tuned bool, path string) {
	if !tuned || path == "" {
		return
	}
	if err := os.WriteFile(path, ftfft.ExportWisdom(), 0o644); err != nil {
		fatalf("saving -wisdom %s: %v", path, err)
	}
}

// runReal executes the -real path: a protected RFFT of n samples, an IRFFT
// of the resulting half spectrum, and a round-trip check — the real-input
// twin of the complex run, with the same injection and reporting story.
func runReal(n, logN int, p ftfft.Protection, sched *ftfft.Schedule, opts []ftfft.Option, timeout time.Duration) {
	tr, err := ftfft.NewReal(n, opts...)
	if err != nil {
		fatalf("%v", err)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	x := make([]float64, n)
	for i, z := range workload.Uniform(1, n) {
		x[i] = real(z)
	}
	spec := make([]complex128, tr.SpectrumLen())
	start := time.Now()
	rep, err := tr.Forward(ctx, spec, x)
	took := time.Since(start)
	fmt.Printf("transform : N = 2^%d (%d real samples -> %d spectrum bins), sequential real %s\n",
		logN, n, tr.SpectrumLen(), p)
	fmt.Printf("time      : %v\n", took)
	if sched != nil {
		fmt.Printf("injected  : %d fault(s)\n", len(sched.Records()))
		for _, r := range sched.Records() {
			fmt.Printf("            %s at %s[%d] (rank %d): %v -> %v\n",
				r.Fault.Mode, r.Site, r.Index, r.Rank, r.Before, r.After)
		}
	}
	fmt.Printf("report    : detections=%d recomputed-subFFTs=%d memory-corrections=%d dmr-votes=%d restarts=%d\n",
		rep.Detections, rep.CompRecomputations, rep.MemCorrections, rep.TwiddleCorrections, rep.FullRestarts)
	if err != nil {
		fmt.Printf("result    : FAILED: %v\n", err)
		os.Exit(1)
	}
	back := make([]float64, n)
	if _, err := tr.Inverse(ctx, back, spec); err != nil {
		fmt.Printf("result    : FAILED on inverse: %v\n", err)
		os.Exit(1)
	}
	worst := 0.0
	for i := range x {
		if d := math.Abs(back[i] - x[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("result    : verified output (DC bin X[0] = %v, round-trip max error %.3g)\n", spec[0], worst)
}

// networkFor infers the socket family from an address: anything that looks
// like a filesystem path is a Unix-domain socket, host:port is TCP.
func networkFor(addr string) string {
	if strings.ContainsAny(addr, "/\\") || !strings.Contains(addr, ":") {
		return "unix"
	}
	return "tcp"
}

// parseDims turns "64x64x64" into a shape, or nil when unset.
func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad -dims component %q (want d0xd1x…)", p)
		}
		dims = append(dims, d)
	}
	return dims, nil
}

// parseMix turns "2m+1c" into a fault list spread over distinct sites.
func parseMix(mix string, ranks int) ([]ftfft.Fault, error) {
	var out []ftfft.Fault
	memIdx, compIdx := 0, 0
	for _, part := range strings.Split(mix, "+") {
		part = strings.TrimSpace(part)
		if len(part) < 2 {
			return nil, fmt.Errorf("bad fault mix component %q", part)
		}
		count, err := strconv.Atoi(part[:len(part)-1])
		if err != nil || count < 1 {
			return nil, fmt.Errorf("bad fault count in %q", part)
		}
		kind := part[len(part)-1]
		for i := 0; i < count; i++ {
			rank := ftfft.AnyRank
			if ranks > 0 {
				rank = (memIdx + compIdx) % ranks
			}
			switch kind {
			case 'm':
				site := ftfft.SiteInputMemory
				if ranks > 0 {
					site = ftfft.SiteMessage
				} else if memIdx%2 == 1 {
					site = ftfft.SiteIntermediateMemory
				}
				out = append(out, ftfft.Fault{
					Site: site, Rank: rank, Occurrence: 1 + memIdx, Index: -1,
					Mode: ftfft.SetConstant, Value: 42,
				})
				memIdx++
			case 'c':
				site := ftfft.SiteSubFFT1
				if ranks > 0 {
					site = ftfft.SiteParallelFFT1
				} else if compIdx%2 == 1 {
					site = ftfft.SiteSubFFT2
				}
				out = append(out, ftfft.Fault{
					Site: site, Rank: rank, Occurrence: 2 + 3*compIdx, Index: -1,
					Mode: ftfft.AddConstant, Value: 5,
				})
				compIdx++
			default:
				return nil, fmt.Errorf("unknown fault kind %q (want m or c)", string(kind))
			}
		}
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftfft: "+format+"\n", args...)
	os.Exit(1)
}
