// Command ftfft runs one protected transform and reports what the fault
// tolerance machinery saw — a quick way to watch the scheme detect and
// correct injected soft errors.
//
// Usage:
//
//	ftfft -n 20 -protection online-memory
//	ftfft -n 18 -protection online-memory -inject 1m+2c
//	ftfft -n 18 -protection offline -inject 1m
//	ftfft -n 20 -parallel 8 -inject 2m+2c
//
// -inject takes a mix like "2m+1c": m = memory faults, c = computational
// faults.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ftfft"
	"ftfft/internal/workload"
)

var protections = map[string]ftfft.Protection{
	"none":                ftfft.None,
	"offline":             ftfft.OfflineABFT,
	"offline-naive":       ftfft.OfflineABFTNaive,
	"online":              ftfft.OnlineABFT,
	"online-naive":        ftfft.OnlineABFTNaive,
	"online-memory":       ftfft.OnlineABFTMemory,
	"online-memory-naive": ftfft.OnlineABFTMemoryNaive,
}

func main() {
	logN := flag.Int("n", 18, "log2 of the transform size")
	prot := flag.String("protection", "online-memory", "protection level: none, offline[-naive], online[-naive], online-memory[-naive]")
	inject := flag.String("inject", "", "fault mix, e.g. 1c, 1m, 2m+2c (m = memory, c = computational)")
	parallelRanks := flag.Int("parallel", 0, "run the parallel in-place scheme on this many ranks (0 = sequential)")
	timeout := flag.Duration("timeout", 0, "cancel the transform after this long (0 = no deadline)")
	seed := flag.Int64("seed", 1, "input seed")
	flag.Parse()

	n := 1 << *logN
	x := workload.Uniform(*seed, n)

	var sched *ftfft.Schedule
	if *inject != "" {
		faults, err := parseMix(*inject, *parallelRanks)
		if err != nil {
			fatalf("%v", err)
		}
		sched = ftfft.NewFaultSchedule(*seed, faults...)
	}

	// One constructor for every strategy: protection × parallelism compose
	// as options on the same planner.
	p, ok := protections[*prot]
	if !ok {
		fatalf("unknown protection %q", *prot)
	}
	opts := []ftfft.Option{ftfft.WithProtection(p)}
	if sched != nil {
		opts = append(opts, ftfft.WithInjector(sched))
	}
	label := "sequential " + p.String()
	if *parallelRanks > 0 {
		// New itself rejects compositions without a parallel formulation
		// (the offline levels) with a descriptive error.
		opts = append(opts, ftfft.WithRanks(*parallelRanks))
		label = fmt.Sprintf("parallel %s, %d ranks", p, *parallelRanks)
	}
	tr, err := ftfft.New(n, opts...)
	if err != nil {
		fatalf("%v", err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	dst := make([]complex128, n)
	start := time.Now()
	rep, err := tr.Forward(ctx, dst, x)
	took := time.Since(start)

	fmt.Printf("transform : N = 2^%d (%d points), %s\n", *logN, n, label)
	fmt.Printf("time      : %v\n", took)
	if sched != nil {
		fmt.Printf("injected  : %d fault(s)\n", len(sched.Records()))
		for _, r := range sched.Records() {
			fmt.Printf("            %s at %s[%d] (rank %d): %v -> %v\n",
				r.Fault.Mode, r.Site, r.Index, r.Rank, r.Before, r.After)
		}
	}
	fmt.Printf("report    : detections=%d recomputed-subFFTs=%d memory-corrections=%d dmr-votes=%d restarts=%d\n",
		rep.Detections, rep.CompRecomputations, rep.MemCorrections, rep.TwiddleCorrections, rep.FullRestarts)
	if err != nil {
		fmt.Printf("result    : FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("result    : verified output (DC bin X[0] = %v)\n", dst[0])
}

// parseMix turns "2m+1c" into a fault list spread over distinct sites.
func parseMix(mix string, ranks int) ([]ftfft.Fault, error) {
	var out []ftfft.Fault
	memSites := []struct {
		site interface{ String() string }
	}{}
	_ = memSites
	memIdx, compIdx := 0, 0
	for _, part := range strings.Split(mix, "+") {
		part = strings.TrimSpace(part)
		if len(part) < 2 {
			return nil, fmt.Errorf("bad fault mix component %q", part)
		}
		count, err := strconv.Atoi(part[:len(part)-1])
		if err != nil || count < 1 {
			return nil, fmt.Errorf("bad fault count in %q", part)
		}
		kind := part[len(part)-1]
		for i := 0; i < count; i++ {
			rank := ftfft.AnyRank
			if ranks > 0 {
				rank = (memIdx + compIdx) % ranks
			}
			switch kind {
			case 'm':
				site := ftfft.SiteInputMemory
				if ranks > 0 {
					site = ftfft.SiteMessage
				} else if memIdx%2 == 1 {
					site = ftfft.SiteIntermediateMemory
				}
				out = append(out, ftfft.Fault{
					Site: site, Rank: rank, Occurrence: 1 + memIdx, Index: -1,
					Mode: ftfft.SetConstant, Value: 42,
				})
				memIdx++
			case 'c':
				site := ftfft.SiteSubFFT1
				if ranks > 0 {
					site = ftfft.SiteParallelFFT1
				} else if compIdx%2 == 1 {
					site = ftfft.SiteSubFFT2
				}
				out = append(out, ftfft.Fault{
					Site: site, Rank: rank, Occurrence: 2 + 3*compIdx, Index: -1,
					Mode: ftfft.AddConstant, Value: 5,
				})
				compIdx++
			default:
				return nil, fmt.Errorf("unknown fault kind %q (want m or c)", string(kind))
			}
		}
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftfft: "+format+"\n", args...)
	os.Exit(1)
}
