// Command ftserve runs the long-lived FFT service: a server accepting
// transform requests over the framed wire protocol, multiplexing concurrent
// clients onto a bounded plan cache, with every payload travelling under §5
// block checksums and every response repaired or rejected — never silently
// wrong.
//
// Usage:
//
//	ftserve -listen /tmp/ftfft-serve.sock
//	ftserve -listen :9040 -plan-cache 128 -max-in-flight 16
//	ftserve -listen /tmp/ftfft-serve.sock -inject 1m+1c
//
// The address family follows the hub convention: a filesystem-looking
// address is a Unix-domain socket, host:port is TCP.
//
// SIGTERM or SIGINT drains gracefully: the listener closes, requests not yet
// admitted are refused with unavailable error frames, in-flight transforms
// finish and their responses are written, then every client gets a goodbye.
// -drain-timeout bounds the wait; a second signal forces an immediate stop.
//
// -inject installs a server-side fault schedule (m = memory, c =
// computational faults) into every plan the server builds — a demo of the
// service's ABFT story: clients requesting a protecting scheme see the
// faults detected and repaired in their response reports.
//
// -wisdom imports a tuning-wisdom file (produced by ftfft -tune -wisdom)
// before serving: plans built for cache misses apply the recorded measured
// choices, but the server itself never benchmarks inside a request. Servers
// sharing one wisdom file build identical plans and return bit-identical
// spectra.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ftfft"
)

func main() {
	listenAddr := flag.String("listen", "", "address to serve on (unix path or host:port); required")
	planCache := flag.Int("plan-cache", 0, "bound on cached plans (0 = default 64)")
	maxInFlight := flag.Int("max-in-flight", 0, "bound on concurrently executing requests (0 = 2×workers)")
	maxElems := flag.Int("max-elems", 0, "per-request payload bound in elements (0 = default 1<<20)")
	workers := flag.Int("workers", 0, "server-owned executor width (0 = shared process pool)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGTERM/SIGINT")
	inject := flag.String("inject", "", "server-side fault mix for every built plan, e.g. 1m+1c")
	wisdomPath := flag.String("wisdom", "", "tuning-wisdom file to import before serving (from ftfft -tune -wisdom)")
	quiet := flag.Bool("quiet", false, "suppress startup and shutdown chatter")
	flag.Parse()

	if *listenAddr == "" {
		fatalf("-listen is required")
	}
	if *wisdomPath != "" {
		data, err := os.ReadFile(*wisdomPath)
		if err != nil {
			fatalf("reading -wisdom %s: %v", *wisdomPath, err)
		}
		if err := ftfft.ImportWisdom(data); err != nil {
			fatalf("importing -wisdom %s: %v", *wisdomPath, err)
		}
		if !*quiet {
			fmt.Printf("ftserve: imported wisdom from %s\n", *wisdomPath)
		}
	}
	network := networkFor(*listenAddr)
	if network == "unix" {
		os.Remove(*listenAddr)
	}

	cfg := ftfft.ServerConfig{
		PlanCache:   *planCache,
		MaxInFlight: *maxInFlight,
		MaxElems:    *maxElems,
		Workers:     *workers,
	}
	if *inject != "" {
		faults, err := parseMix(*inject)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Injector = ftfft.NewFaultSchedule(1, faults...)
	}

	srv, err := ftfft.ListenServe(network, *listenAddr, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if !*quiet {
		fmt.Printf("ftserve: listening on %s %s\n", network, srv.Addr())
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	if !*quiet {
		fmt.Printf("ftserve: %v: draining (timeout %v)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigc // a second signal cuts the drain short
		cancel()
	}()
	err = srv.Shutdown(ctx)
	builds, evictions, size := srv.CacheStats()
	if !*quiet {
		fmt.Printf("ftserve: plan cache: %d builds, %d evictions, %d resident\n", builds, evictions, size)
	}
	if err != nil {
		fatalf("drain incomplete: %v", err)
	}
	if !*quiet {
		fmt.Println("ftserve: drained cleanly")
	}
}

// networkFor infers the socket family from an address: anything that looks
// like a filesystem path is a Unix-domain socket, host:port is TCP.
func networkFor(addr string) string {
	if strings.ContainsAny(addr, "/\\") || !strings.Contains(addr, ":") {
		return "unix"
	}
	return "tcp"
}

// parseMix turns "2m+1c" into a fault list spread over distinct sites.
func parseMix(mix string) ([]ftfft.Fault, error) {
	var out []ftfft.Fault
	memIdx, compIdx := 0, 0
	for _, part := range strings.Split(mix, "+") {
		part = strings.TrimSpace(part)
		if len(part) < 2 {
			return nil, fmt.Errorf("bad fault mix component %q", part)
		}
		count, err := strconv.Atoi(part[:len(part)-1])
		if err != nil || count < 1 {
			return nil, fmt.Errorf("bad fault count in %q", part)
		}
		for i := 0; i < count; i++ {
			switch part[len(part)-1] {
			case 'm':
				site := ftfft.SiteInputMemory
				if memIdx%2 == 1 {
					site = ftfft.SiteIntermediateMemory
				}
				out = append(out, ftfft.Fault{
					Site: site, Rank: ftfft.AnyRank, Occurrence: 1 + memIdx, Index: -1,
					Mode: ftfft.SetConstant, Value: 42,
				})
				memIdx++
			case 'c':
				site := ftfft.SiteSubFFT1
				if compIdx%2 == 1 {
					site = ftfft.SiteSubFFT2
				}
				out = append(out, ftfft.Fault{
					Site: site, Rank: ftfft.AnyRank, Occurrence: 2 + 3*compIdx, Index: -1,
					Mode: ftfft.AddConstant, Value: 5,
				})
				compIdx++
			default:
				return nil, fmt.Errorf("unknown fault kind %q (want m or c)", part[len(part)-1:])
			}
		}
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftserve: "+format+"\n", args...)
	os.Exit(1)
}
