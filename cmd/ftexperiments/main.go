// Command ftexperiments regenerates the tables and figures of the paper's
// evaluation (§9) on this repository's substrate.
//
// Usage:
//
//	ftexperiments -exp all                    # everything, default sizes
//	ftexperiments -exp fig7a -sizes 16,17,18  # overhead figure, 2^16..2^18
//	ftexperiments -exp table6 -faultruns 1000 # the paper's full sample count
//
// Experiment ids: fig7a fig7b table1 fig8a fig8b table2 table3 table4
// table5 table6, or "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ftfft/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig7a, fig7b, table1, fig8a, fig8b, table2, table3, table4, table5, table6, all)")
	sizes := flag.String("sizes", "", "comma-separated log2 sequential sizes, e.g. 16,17,18,19")
	parallelN := flag.Int("parallel-n", 0, "log2 size for strong scaling (0 = default 20)")
	weakBase := flag.Int("weak-base", 0, "log2 per-rank size for weak scaling (0 = default 16)")
	ranks := flag.String("ranks", "", "comma-separated rank counts, e.g. 2,4,8,16")
	runs := flag.Int("runs", 0, "timing repetitions (median reported; 0 = default 3)")
	faultRuns := flag.Int("faultruns", 0, "Monte-Carlo runs for tables 4 and 6 (0 = default 200; the paper uses 1000)")
	flag.Parse()

	o := experiments.Options{Out: os.Stdout, Runs: *runs, FaultRuns: *faultRuns}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			e, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || e < 4 || e > 30 {
				fatalf("bad -sizes entry %q (want log2 exponents 4..30)", s)
			}
			o.Sizes = append(o.Sizes, 1<<e)
		}
	}
	if *parallelN > 0 {
		o.ParallelN = 1 << *parallelN
	}
	if *weakBase > 0 {
		o.WeakBase = 1 << *weakBase
	}
	if *ranks != "" {
		for _, s := range strings.Split(*ranks, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || p < 1 {
				fatalf("bad -ranks entry %q", s)
			}
			o.Ranks = append(o.Ranks, p)
		}
	}
	if err := experiments.Run(*exp, o); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftexperiments: "+format+"\n", args...)
	os.Exit(1)
}
