// Command ftfaultsim runs Monte-Carlo fault-injection campaigns against a
// chosen protection scheme and reports detection and correction coverage —
// the generalized form of the paper's Table 6 experiment.
//
// Usage:
//
//	ftfaultsim -n 16 -runs 500 -protection online-memory
//	ftfaultsim -n 16 -runs 500 -protection offline -site output
//	ftfaultsim -n 16 -mode add -value 1e-4   # small computational offsets
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"os"

	"ftfft"
	"ftfft/internal/workload"
)

func main() {
	logN := flag.Int("n", 16, "log2 of the transform size")
	runs := flag.Int("runs", 200, "number of injection runs")
	prot := flag.String("protection", "online-memory", "protection level (see cmd/ftfft)")
	siteName := flag.String("site", "random", "fault site: input, intermediate, output, subfft, twiddle, random")
	mode := flag.String("mode", "bitflip", "corruption mode: bitflip, set, add")
	value := flag.Float64("value", 42, "constant for set/add modes")
	seed := flag.Int64("seed", 1, "campaign seed")
	flag.Parse()

	protections := map[string]ftfft.Protection{
		"none": ftfft.None, "offline": ftfft.OfflineABFT, "online": ftfft.OnlineABFT,
		"online-memory": ftfft.OnlineABFTMemory,
	}
	p, ok := protections[*prot]
	if !ok {
		fmt.Fprintf(os.Stderr, "ftfaultsim: unknown protection %q\n", *prot)
		os.Exit(1)
	}

	ctx := context.Background()
	n := 1 << *logN
	x := workload.Uniform(*seed, n)
	refT, err := ftfft.New(n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftfaultsim:", err)
		os.Exit(1)
	}
	ref := make([]complex128, n)
	if _, err := refT.Forward(ctx, ref, append([]complex128(nil), x...)); err != nil {
		fmt.Fprintln(os.Stderr, "ftfaultsim:", err)
		os.Exit(1)
	}
	refNorm := infNorm(ref)

	rng := rand.New(rand.NewSource(*seed))
	var detected, corrected, failed, silent int
	var worstSilent float64

	for run := 0; run < *runs; run++ {
		f := ftfft.Fault{Rank: ftfft.AnyRank, Index: -1}
		switch *siteName {
		case "input":
			f.Site = ftfft.SiteInputMemory
		case "intermediate":
			f.Site = ftfft.SiteIntermediateMemory
		case "output":
			f.Site = ftfft.SiteOutputMemory
		case "subfft":
			f.Site = ftfft.SiteSubFFT1
			f.Occurrence = 1 + rng.Intn(8)
		case "twiddle":
			f.Site = ftfft.SiteTwiddle
			f.Occurrence = 1 + rng.Intn(8)
		default:
			sites := []ftfft.Fault{
				{Site: ftfft.SiteInputMemory},
				{Site: ftfft.SiteIntermediateMemory},
				{Site: ftfft.SiteOutputMemory},
				{Site: ftfft.SiteSubFFT1, Occurrence: 1 + rng.Intn(8)},
				{Site: ftfft.SiteSubFFT2, Occurrence: 1 + rng.Intn(8)},
			}
			pick := sites[rng.Intn(len(sites))]
			f.Site, f.Occurrence = pick.Site, pick.Occurrence
		}
		switch *mode {
		case "bitflip":
			f.Mode = ftfft.BitFlip
			f.Bit = 52 + rng.Intn(11)
		case "set":
			f.Mode = ftfft.SetConstant
			f.Value = *value
		case "add":
			f.Mode = ftfft.AddConstant
			f.Value = *value
		default:
			fmt.Fprintf(os.Stderr, "ftfaultsim: unknown mode %q\n", *mode)
			os.Exit(1)
		}

		sched := ftfft.NewFaultSchedule(int64(run)^*seed, f)
		tr, err := ftfft.New(n, ftfft.WithProtection(p), ftfft.WithInjector(sched))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftfaultsim:", err)
			os.Exit(1)
		}
		got := make([]complex128, n)
		rep, err := tr.Forward(ctx, got, append([]complex128(nil), x...))
		if !sched.AllFired() {
			// Site not visited by this scheme (e.g. twiddle in offline);
			// count as silent-no-effect.
			continue
		}
		rel := math.Inf(1)
		if err == nil {
			rel = relErr(got, ref, refNorm)
		}
		switch {
		case err != nil:
			failed++
		case !rep.Clean():
			detected++
			if rel < 1e-6 {
				corrected++
			}
		case rel > 1e-6:
			silent++
			if rel > worstSilent {
				worstSilent = rel
			}
		}
	}

	fmt.Printf("campaign   : N=2^%d, %d runs, protection=%s, site=%s, mode=%s\n",
		*logN, *runs, *prot, *siteName, *mode)
	fmt.Printf("detected   : %d (%.1f%%)\n", detected, pct(detected, *runs))
	fmt.Printf("corrected  : %d (%.1f%%)\n", corrected, pct(corrected, *runs))
	fmt.Printf("failed     : %d (%.1f%%)  (uncorrectable, surfaced as error)\n", failed, pct(failed, *runs))
	fmt.Printf("silent     : %d (%.1f%%)  (undetected with output error > 1e-6; worst %.2g)\n",
		silent, pct(silent, *runs), worstSilent)
}

func pct(a, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(a) / float64(total)
}

func infNorm(x []complex128) float64 {
	var m float64
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func relErr(got, want []complex128, norm float64) float64 {
	var m float64
	for i := range got {
		if d := cmplx.Abs(got[i] - want[i]); d > m {
			m = d
		}
	}
	if norm == 0 {
		return m
	}
	return m / norm
}
