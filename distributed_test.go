package ftfft_test

import (
	"context"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ftfft"
)

// buildWorkerBinary compiles cmd/ftfft once per test binary; the worker mode
// of that command is the real multi-process entry point the acceptance
// criterion names.
var (
	workerBinOnce sync.Once
	workerBin     string
	workerBinErr  error
)

func buildWorkerBinary(t *testing.T) string {
	t.Helper()
	workerBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ftfft-worker-bin")
		if err != nil {
			workerBinErr = err
			return
		}
		workerBin = filepath.Join(dir, "ftfft")
		out, err := exec.Command("go", "build", "-o", workerBin, "./cmd/ftfft").CombinedOutput()
		if err != nil {
			workerBinErr = err
			t.Logf("go build ./cmd/ftfft: %v\n%s", err, out)
		}
	})
	if workerBinErr != nil {
		t.Skipf("cannot build cmd/ftfft worker binary: %v", workerBinErr)
	}
	return workerBin
}

// spawnWorkers starts count `ftfft -worker -transport transport -connect
// addr` OS processes and returns a reaper that asserts every one of them
// exited cleanly. extraFor (if non-nil) appends per-worker flags — the mesh
// rows force one worker relay-only with -no-mesh through it.
func spawnWorkers(t *testing.T, bin, transport, addr string, count int, extraFor func(i int) []string) func() {
	t.Helper()
	procs := make([]*exec.Cmd, count)
	for i := range procs {
		args := []string{"-worker", "-transport", transport, "-connect", addr}
		if extraFor != nil {
			args = append(args, extraFor(i)...)
		}
		w := exec.Command(bin, args...)
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		procs[i] = w
	}
	return func() {
		for i, w := range procs {
			done := make(chan error, 1)
			go func() { done <- w.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("worker %d exited with %v (want clean shutdown)", i, err)
				}
			case <-time.After(30 * time.Second):
				w.Process.Kill()
				t.Errorf("worker %d did not exit after hub close", i)
			}
		}
	}
}

// TestDistributedBitIdentical is the multi-process acceptance test: a p-rank
// transform whose ranks 1..p-1 are real OS processes (cmd/ftfft worker mode,
// over Unix-domain sockets and over the shared-memory ring file) must
// produce bit-for-bit the output of the in-process run over the message-only
// chan wire — the same message sequence, so the comparison holds with
// injected faults too — and, transform for transform, identical fault
// Reports. Forward and Inverse both cross the wire, and the reaper asserts
// every worker process exits 0 after the hub closes.
func TestDistributedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	const n, p = 4096, 4
	bin := buildWorkerBinary(t)

	rng := rand.New(rand.NewSource(77))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}

	// Rank-0-pinned faults: one in a scatter/transpose message payload (a
	// remote rank repairs it from the block checksums), one in the driver's
	// FFT1 stage. Occurrence counting is per (site, rank), so the reference
	// run's schedule fires at the identical visits.
	mkFaults := func() []ftfft.Fault {
		return []ftfft.Fault{
			{Site: ftfft.SiteMessage, Rank: 0, Occurrence: 2, Index: -1, Mode: ftfft.SetConstant, Value: 42},
			{Site: ftfft.SiteParallelFFT1, Rank: 0, Occurrence: 3, Index: -1, Mode: ftfft.AddConstant, Value: 5},
		}
	}

	for _, tc := range []struct {
		name      string
		transport string // "socket", "mesh" (socket wire, ListenMeshHub), "shm"
		prot      ftfft.Protection
		faulty    bool
		batch     bool // run a ForwardBatch over the pipelined window too
	}{
		{"plain", "socket", ftfft.None, false, false},
		{"online-memory", "socket", ftfft.OnlineABFTMemory, false, false},
		{"online-memory-faulty", "socket", ftfft.OnlineABFTMemory, true, false},
		{"mesh-online-memory", "mesh", ftfft.OnlineABFTMemory, false, false},
		{"mesh-online-memory-faulty", "mesh", ftfft.OnlineABFTMemory, true, false},
		{"shm-plain", "shm", ftfft.None, false, false},
		{"shm-online-memory", "shm", ftfft.OnlineABFTMemory, false, false},
		{"shm-online-memory-faulty", "shm", ftfft.OnlineABFTMemory, true, false},
		{"batch-socket", "socket", ftfft.OnlineABFTMemory, false, true},
		{"batch-mesh", "mesh", ftfft.OnlineABFTMemory, false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			refOpts := []ftfft.Option{
				ftfft.WithRanks(p), ftfft.WithProtection(tc.prot),
				ftfft.WithTransport(ftfft.MessageOnlyTransport(p)),
			}
			if tc.batch {
				// The reference chan plan's local gang is all p ranks, so it
				// needs p·4 workers for the same 4-deep pipelined window the
				// distributed root opens with 4.
				refOpts = append(refOpts, ftfft.WithWorkers(4*p))
			}
			var refSched, distSched *ftfft.Schedule
			if tc.faulty {
				refSched = ftfft.NewFaultSchedule(9, mkFaults()...)
				distSched = ftfft.NewFaultSchedule(9, mkFaults()...)
				refOpts = append(refOpts, ftfft.WithInjector(refSched))
			}
			ref, err := ftfft.New(n, refOpts...)
			if err != nil {
				t.Fatal(err)
			}

			var hub interface {
				ftfft.Transport
				Close() error
			}
			var addr string
			var extraFor func(i int) []string
			workerTransport := tc.transport
			switch tc.transport {
			case "shm":
				addr = filepath.Join(t.TempDir(), "hub.ring")
				h, err := ftfft.ListenShmHub(addr, p)
				if err != nil {
					t.Fatal(err)
				}
				hub = h
			case "mesh":
				// Mesh is chosen hub-side; workers are plain socket dialers.
				// One worker is forced relay-only, so the heterogeneous
				// mesh/relay mix crosses real process boundaries here.
				addr = filepath.Join(t.TempDir(), "hub.sock")
				h, err := ftfft.ListenMeshHub("unix", addr, p)
				if err != nil {
					t.Fatal(err)
				}
				hub = h
				workerTransport = "socket"
				extraFor = func(i int) []string {
					if i == 0 {
						return []string{"-no-mesh"}
					}
					return nil
				}
			default:
				addr = filepath.Join(t.TempDir(), "hub.sock")
				h, err := ftfft.ListenHub("unix", addr, p)
				if err != nil {
					t.Fatal(err)
				}
				hub = h
			}
			reap := spawnWorkers(t, bin, workerTransport, addr, p-1, extraFor)
			distOpts := []ftfft.Option{
				ftfft.WithRanks(p), ftfft.WithProtection(tc.prot), ftfft.WithTransport(hub),
			}
			if tc.batch {
				// Four root workers open the pipelined window to the epoch
				// ring's depth.
				distOpts = append(distOpts, ftfft.WithWorkers(4))
			}
			if tc.faulty {
				distOpts = append(distOpts, ftfft.WithInjector(distSched))
			}
			dist, err := ftfft.New(n, distOpts...)
			if err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			want := make([]complex128, n)
			got := make([]complex128, n)
			// Two rounds: world reuse across transforms must stay identical.
			for round := 0; round < 2; round++ {
				wantRep, err := ref.Forward(ctx, want, x)
				if err != nil {
					t.Fatalf("round %d ref: %v", round, err)
				}
				gotRep, err := dist.Forward(ctx, got, x)
				if err != nil {
					t.Fatalf("round %d dist: %v", round, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("round %d: multi-process output differs at %d: %v vs %v", round, i, got[i], want[i])
					}
				}
				if gotRep != wantRep {
					t.Fatalf("round %d: reports differ: dist %+v vs ref %+v", round, gotRep, wantRep)
				}
			}
			// Inverse crosses the wire through the same pipeline.
			wantInv := make([]complex128, n)
			gotInv := make([]complex128, n)
			if _, err := ref.Inverse(ctx, wantInv, x); err != nil {
				t.Fatal(err)
			}
			if _, err := dist.Inverse(ctx, gotInv, x); err != nil {
				t.Fatal(err)
			}
			for i := range wantInv {
				if gotInv[i] != wantInv[i] {
					t.Fatalf("inverse differs at %d: %v vs %v", i, gotInv[i], wantInv[i])
				}
			}
			if tc.faulty && (!refSched.AllFired() || !distSched.AllFired()) {
				t.Fatalf("faults did not all fire: ref=%v dist=%v", refSched.AllFired(), distSched.AllFired())
			}
			if tc.batch {
				// A pipelined batch across real worker processes: several
				// items in flight on distinct epochs, each bit-for-bit the
				// unbatched reference output.
				const items = 5
				bsrc := make([][]complex128, items)
				bdst := make([][]complex128, items)
				bwant := make([][]complex128, items)
				for i := range bsrc {
					bsrc[i] = make([]complex128, n)
					for j := range bsrc[i] {
						bsrc[i][j] = x[j] * complex(float64(i+1), 0)
					}
					bdst[i] = make([]complex128, n)
					bwant[i] = make([]complex128, n)
					if _, err := ref.Forward(ctx, bwant[i], bsrc[i]); err != nil {
						t.Fatal(err)
					}
				}
				rep, err := dist.ForwardBatch(ctx, bdst, bsrc)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Clean() {
					t.Fatalf("fault-free batch not clean: %+v", rep)
				}
				for i := range bwant {
					for j := range bwant[i] {
						if bdst[i][j] != bwant[i][j] {
							t.Fatalf("batch item %d differs at %d: %v vs %v", i, j, bdst[i][j], bwant[i][j])
						}
					}
				}
				if h, ok := hub.(*ftfft.Hub); ok {
					if s := h.WireStats(); s.MaxEpochsInFlight < 2 {
						t.Errorf("batch never overlapped epochs on the wire: %+v", s)
					}
				}
			}
			hub.Close()
			reap()
		})
	}
}

// batchWire is an in-process hub any pipelined batch can run over; every real
// wire (socket star, socket mesh, shm rings) satisfies it.
type batchWire interface {
	ftfft.Transport
	Close() error
	WireStats() ftfft.WireStats
}

// startBatchWire opens a hub for wire and serves p-1 worker ranks as
// in-process goroutines (private single-worker executors, like real worker
// processes each with their own pool).
func startBatchWire(t *testing.T, wire string, p int) (batchWire, *sync.WaitGroup) {
	t.Helper()
	var (
		hub           batchWire
		network, addr string
	)
	switch wire {
	case "shm":
		network, addr = "shm", filepath.Join(t.TempDir(), "batch.ring")
		h, err := ftfft.ListenShmHub(addr, p)
		if err != nil {
			t.Fatal(err)
		}
		hub = h
	case "mesh":
		network, addr = "unix", filepath.Join(t.TempDir(), "batch.sock")
		h, err := ftfft.ListenMeshHub(network, addr, p)
		if err != nil {
			t.Fatal(err)
		}
		hub = h
	default:
		network, addr = "unix", filepath.Join(t.TempDir(), "batch.sock")
		h, err := ftfft.ListenHub(network, addr, p)
		if err != nil {
			t.Fatal(err)
		}
		hub = h
	}
	var wg sync.WaitGroup
	for i := 1; i < p; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ftfft.ServeWorker(context.Background(), network, addr, ftfft.WithWorkers(1)); err != nil {
				t.Errorf("worker serve: %v", err)
			}
		}()
	}
	return hub, &wg
}

// injectWireFault installs f on whichever hub type backs the wire.
func injectWireFault(t *testing.T, hub batchWire, f func(dst, src, tag, epoch int, payload []byte)) {
	t.Helper()
	switch h := hub.(type) {
	case *ftfft.Hub:
		h.InjectWireFaults(f)
	case *ftfft.ShmHub:
		h.InjectWireFaults(f)
	default:
		t.Fatalf("wire %T has no fault hook", hub)
	}
}

// TestTransportBatchPipelined pins the epoch-pipelined batch contract that
// replaced the window=1 clamp: over every transport (in-process chan, socket
// star, socket mesh, shm rings) ForwardBatch runs a multi-item in-flight
// window — the wire's epoch high-water mark proves the overlap — and each
// item's output is bit-for-bit the unbatched in-process result. The faulty
// rows corrupt one serialized payload byte in two specific epochs; the §5
// block checksums must repair exactly those items while their neighbors in
// the same window stay untouched.
func TestTransportBatchPipelined(t *testing.T) {
	const n, p, items = 1024, 4, 6
	rng := rand.New(rand.NewSource(79))
	ctx := context.Background()

	ref, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil {
		t.Fatal(err)
	}
	src := make([][]complex128, items)
	want := make([][]complex128, items)
	for i := range src {
		src[i] = make([]complex128, n)
		for j := range src[i] {
			src[i][j] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		want[i] = make([]complex128, n)
		if _, err := ref.Forward(ctx, want[i], src[i]); err != nil {
			t.Fatal(err)
		}
	}

	for _, wire := range []string{"chan", "socket", "mesh", "shm"} {
		for _, faulty := range []bool{false, true} {
			if wire == "chan" && faulty {
				continue // the chan wire has no serialized bytes to corrupt
			}
			name := wire + "/clean"
			if faulty {
				name = wire + "/faulty"
			}
			t.Run(name, func(t *testing.T) {
				opts := []ftfft.Option{ftfft.WithRanks(p), ftfft.WithProtection(ftfft.OnlineABFTMemory)}
				var hub batchWire
				var wg *sync.WaitGroup
				if wire == "chan" {
					// Gang size is p in-process, so the window needs p·window
					// workers to open up.
					opts = append(opts, ftfft.WithTransport(ftfft.MessageOnlyTransport(p)), ftfft.WithWorkers(4*p))
				} else {
					hub, wg = startBatchWire(t, wire, p)
					opts = append(opts, ftfft.WithTransport(hub), ftfft.WithWorkers(4))
				}
				tr, err := ftfft.New(n, opts...)
				if err != nil {
					t.Fatal(err)
				}
				var (
					mu   sync.Mutex
					hits = map[int]int{}
				)
				if faulty {
					// One mantissa-bit flip in the first outbound transpose
					// frame (tag 1 = tran1) of epochs 1 and 3: two specific
					// in-flight items are corrupted mid-window, the rest ride
					// the same wire untouched.
					injectWireFault(t, hub, func(dst, src, tag, epoch int, payload []byte) {
						if tag != 1 || len(payload) < 8 || (epoch != 1 && epoch != 3) {
							return
						}
						mu.Lock()
						defer mu.Unlock()
						if hits[epoch] == 0 {
							payload[3] ^= 0x10
						}
						hits[epoch]++
					})
				}
				dst := make([][]complex128, items)
				for i := range dst {
					dst[i] = make([]complex128, n)
				}
				rep, err := tr.ForwardBatch(ctx, dst, src)
				if err != nil {
					t.Fatal(err)
				}
				if faulty {
					mu.Lock()
					fired := len(hits)
					mu.Unlock()
					if fired != 2 {
						t.Fatalf("wire faults fired in %d epochs, want 2", fired)
					}
					if rep.Detections < 2 || rep.MemCorrections < 2 || rep.Uncorrectable {
						t.Fatalf("wire corruption not repaired: %+v", rep)
					}
					for i := range want {
						if d := maxAbsDiff(dst[i], want[i]); d > 1e-7*float64(n)*(1+maxAbs(want[i])) {
							t.Fatalf("item %d repaired output off by %g", i, d)
						}
					}
				} else {
					if !rep.Clean() {
						t.Fatalf("fault-free batch not clean: %+v", rep)
					}
					for i := range want {
						for j := range want[i] {
							if dst[i][j] != want[i][j] {
								t.Fatalf("item %d differs at %d: %v vs %v", i, j, dst[i][j], want[i][j])
							}
						}
					}
				}
				if hub != nil {
					if s := hub.WireStats(); s.MaxEpochsInFlight < 2 {
						t.Errorf("batch never overlapped epochs on the wire: %+v", s)
					}
					hub.Close()
					wg.Wait()
				}
			})
		}
	}
}

// TestDistributedSharedFastPathBitIdentical closes the purity argument from
// the public API: the default shared-memory fast path and the message-only
// wire produce bit-identical outputs, so TestDistributedBitIdentical's
// message-only reference stands in for the default path transitively.
func TestDistributedSharedFastPathBitIdentical(t *testing.T) {
	const n, p = 4096, 4
	rng := rand.New(rand.NewSource(78))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OnlineABFTMemory} {
		shared, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(prot))
		if err != nil {
			t.Fatal(err)
		}
		msg, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(prot),
			ftfft.WithTransport(ftfft.MessageOnlyTransport(p)))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		want := make([]complex128, n)
		got := make([]complex128, n)
		if _, err := shared.Forward(ctx, want, x); err != nil {
			t.Fatal(err)
		}
		if _, err := msg.Forward(ctx, got, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("prot %v: message-only output differs at %d", prot, i)
			}
		}
	}
}
