package ftfft_test

import (
	"context"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ftfft"
)

// buildWorkerBinary compiles cmd/ftfft once per test binary; the worker mode
// of that command is the real multi-process entry point the acceptance
// criterion names.
var (
	workerBinOnce sync.Once
	workerBin     string
	workerBinErr  error
)

func buildWorkerBinary(t *testing.T) string {
	t.Helper()
	workerBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ftfft-worker-bin")
		if err != nil {
			workerBinErr = err
			return
		}
		workerBin = filepath.Join(dir, "ftfft")
		out, err := exec.Command("go", "build", "-o", workerBin, "./cmd/ftfft").CombinedOutput()
		if err != nil {
			workerBinErr = err
			t.Logf("go build ./cmd/ftfft: %v\n%s", err, out)
		}
	})
	if workerBinErr != nil {
		t.Skipf("cannot build cmd/ftfft worker binary: %v", workerBinErr)
	}
	return workerBin
}

// spawnWorkers starts count `ftfft -worker -transport transport -connect
// addr` OS processes and returns a reaper that asserts every one of them
// exited cleanly.
func spawnWorkers(t *testing.T, bin, transport, addr string, count int) func() {
	t.Helper()
	procs := make([]*exec.Cmd, count)
	for i := range procs {
		w := exec.Command(bin, "-worker", "-transport", transport, "-connect", addr)
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		procs[i] = w
	}
	return func() {
		for i, w := range procs {
			done := make(chan error, 1)
			go func() { done <- w.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("worker %d exited with %v (want clean shutdown)", i, err)
				}
			case <-time.After(30 * time.Second):
				w.Process.Kill()
				t.Errorf("worker %d did not exit after hub close", i)
			}
		}
	}
}

// TestDistributedBitIdentical is the multi-process acceptance test: a p-rank
// transform whose ranks 1..p-1 are real OS processes (cmd/ftfft worker mode,
// over Unix-domain sockets and over the shared-memory ring file) must
// produce bit-for-bit the output of the in-process run over the message-only
// chan wire — the same message sequence, so the comparison holds with
// injected faults too — and, transform for transform, identical fault
// Reports. Forward and Inverse both cross the wire, and the reaper asserts
// every worker process exits 0 after the hub closes.
func TestDistributedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	const n, p = 4096, 4
	bin := buildWorkerBinary(t)

	rng := rand.New(rand.NewSource(77))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}

	// Rank-0-pinned faults: one in a scatter/transpose message payload (a
	// remote rank repairs it from the block checksums), one in the driver's
	// FFT1 stage. Occurrence counting is per (site, rank), so the reference
	// run's schedule fires at the identical visits.
	mkFaults := func() []ftfft.Fault {
		return []ftfft.Fault{
			{Site: ftfft.SiteMessage, Rank: 0, Occurrence: 2, Index: -1, Mode: ftfft.SetConstant, Value: 42},
			{Site: ftfft.SiteParallelFFT1, Rank: 0, Occurrence: 3, Index: -1, Mode: ftfft.AddConstant, Value: 5},
		}
	}

	for _, tc := range []struct {
		name      string
		transport string
		prot      ftfft.Protection
		faulty    bool
	}{
		{"plain", "socket", ftfft.None, false},
		{"online-memory", "socket", ftfft.OnlineABFTMemory, false},
		{"online-memory-faulty", "socket", ftfft.OnlineABFTMemory, true},
		{"shm-plain", "shm", ftfft.None, false},
		{"shm-online-memory", "shm", ftfft.OnlineABFTMemory, false},
		{"shm-online-memory-faulty", "shm", ftfft.OnlineABFTMemory, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			refOpts := []ftfft.Option{
				ftfft.WithRanks(p), ftfft.WithProtection(tc.prot),
				ftfft.WithTransport(ftfft.MessageOnlyTransport(p)),
			}
			var refSched, distSched *ftfft.Schedule
			if tc.faulty {
				refSched = ftfft.NewFaultSchedule(9, mkFaults()...)
				distSched = ftfft.NewFaultSchedule(9, mkFaults()...)
				refOpts = append(refOpts, ftfft.WithInjector(refSched))
			}
			ref, err := ftfft.New(n, refOpts...)
			if err != nil {
				t.Fatal(err)
			}

			var hub interface {
				ftfft.Transport
				Close() error
			}
			var addr string
			if tc.transport == "shm" {
				addr = filepath.Join(t.TempDir(), "hub.ring")
				h, err := ftfft.ListenShmHub(addr, p)
				if err != nil {
					t.Fatal(err)
				}
				hub = h
			} else {
				addr = filepath.Join(t.TempDir(), "hub.sock")
				h, err := ftfft.ListenHub("unix", addr, p)
				if err != nil {
					t.Fatal(err)
				}
				hub = h
			}
			reap := spawnWorkers(t, bin, tc.transport, addr, p-1)
			distOpts := []ftfft.Option{
				ftfft.WithRanks(p), ftfft.WithProtection(tc.prot), ftfft.WithTransport(hub),
			}
			if tc.faulty {
				distOpts = append(distOpts, ftfft.WithInjector(distSched))
			}
			dist, err := ftfft.New(n, distOpts...)
			if err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			want := make([]complex128, n)
			got := make([]complex128, n)
			// Two rounds: world reuse across transforms must stay identical.
			for round := 0; round < 2; round++ {
				wantRep, err := ref.Forward(ctx, want, x)
				if err != nil {
					t.Fatalf("round %d ref: %v", round, err)
				}
				gotRep, err := dist.Forward(ctx, got, x)
				if err != nil {
					t.Fatalf("round %d dist: %v", round, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("round %d: multi-process output differs at %d: %v vs %v", round, i, got[i], want[i])
					}
				}
				if gotRep != wantRep {
					t.Fatalf("round %d: reports differ: dist %+v vs ref %+v", round, gotRep, wantRep)
				}
			}
			// Inverse crosses the wire through the same pipeline.
			wantInv := make([]complex128, n)
			gotInv := make([]complex128, n)
			if _, err := ref.Inverse(ctx, wantInv, x); err != nil {
				t.Fatal(err)
			}
			if _, err := dist.Inverse(ctx, gotInv, x); err != nil {
				t.Fatal(err)
			}
			for i := range wantInv {
				if gotInv[i] != wantInv[i] {
					t.Fatalf("inverse differs at %d: %v vs %v", i, gotInv[i], wantInv[i])
				}
			}
			if tc.faulty && (!refSched.AllFired() || !distSched.AllFired()) {
				t.Fatalf("faults did not all fire: ref=%v dist=%v", refSched.AllFired(), distSched.AllFired())
			}
			hub.Close()
			reap()
		})
	}
}

// TestTransportBatchSerializes pins the exclusive-context batch contract: a
// transport-backed plan owns one world, so ForwardBatch must reap each item
// before beginning the next — the pipelined window would otherwise park the
// second Begin on the context only reaping can return (a reproduced
// deadlock). The batch must complete promptly and match unbatched output.
func TestTransportBatchSerializes(t *testing.T) {
	const n, p, items = 1024, 4, 3
	rng := rand.New(rand.NewSource(79))
	tr, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(ftfft.OnlineABFTMemory),
		ftfft.WithTransport(ftfft.MessageOnlyTransport(p)))
	if err != nil {
		t.Fatal(err)
	}
	src := make([][]complex128, items)
	dst := make([][]complex128, items)
	want := make([][]complex128, items)
	for i := range src {
		src[i] = make([]complex128, n)
		for j := range src[i] {
			src[i][j] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		dst[i] = make([]complex128, n)
		want[i] = make([]complex128, n)
	}
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		_, err := tr.ForwardBatch(ctx, dst, src)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("ForwardBatch deadlocked on the exclusive transport context")
	}
	for i := range want {
		if _, err := tr.Forward(ctx, want[i], src[i]); err != nil {
			t.Fatal(err)
		}
		for j := range want[i] {
			if dst[i][j] != want[i][j] {
				t.Fatalf("item %d differs at %d", i, j)
			}
		}
	}
}

// TestDistributedSharedFastPathBitIdentical closes the purity argument from
// the public API: the default shared-memory fast path and the message-only
// wire produce bit-identical outputs, so TestDistributedBitIdentical's
// message-only reference stands in for the default path transitively.
func TestDistributedSharedFastPathBitIdentical(t *testing.T) {
	const n, p = 4096, 4
	rng := rand.New(rand.NewSource(78))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	for _, prot := range []ftfft.Protection{ftfft.None, ftfft.OnlineABFTMemory} {
		shared, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(prot))
		if err != nil {
			t.Fatal(err)
		}
		msg, err := ftfft.New(n, ftfft.WithRanks(p), ftfft.WithProtection(prot),
			ftfft.WithTransport(ftfft.MessageOnlyTransport(p)))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		want := make([]complex128, n)
		got := make([]complex128, n)
		if _, err := shared.Forward(ctx, want, x); err != nil {
			t.Fatal(err)
		}
		if _, err := msg.Forward(ctx, got, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("prot %v: message-only output differs at %d", prot, i)
			}
		}
	}
}
