package ftfft

import (
	"fmt"

	"ftfft/internal/exec"
)

// Executor is the bounded execution runtime a Transform dispatches its
// parallel work on: simulated-MPI rank fan-out, 2-D row/column passes and
// ForwardBatch items all draw from its fixed budget of pooled worker
// goroutines. Worker goroutines are spawned lazily, parked when idle, and
// reused across calls for the executor's lifetime, so the goroutine count
// attributable to an Executor never exceeds its budget — no matter how many
// concurrent callers share the Transforms built on it. Callers beyond the
// budget queue in arrival order instead of thundering the scheduler.
//
// By default every Transform shares one process-wide executor sized to
// runtime.GOMAXPROCS(0). WithWorkers gives one Transform a private budget;
// WithExecutor shares a private budget between several Transforms.
//
// One caveat: a parallel 1-D transform's p ranks communicate, so they are
// co-scheduled as an atomic group. If p exceeds the budget the surplus ranks
// run on transient goroutines for the call's duration — keep WithRanks ≤ the
// executor budget to preserve the strict goroutine bound.
type Executor struct {
	pool *exec.Pool
}

// NewExecutor creates an executor with a fixed budget of workers pooled
// goroutines. workers must be ≥ 1. The executor can back any number of
// Transforms (WithExecutor) and is safe for concurrent use.
func NewExecutor(workers int) (*Executor, error) {
	if workers < 1 {
		return nil, fmt.Errorf("ftfft: invalid executor worker count %d", workers)
	}
	return &Executor{pool: exec.New(workers)}, nil
}

// Workers returns the executor's worker budget.
func (e *Executor) Workers() int { return e.pool.Workers() }

// Close releases the executor's parked worker goroutines. It is idempotent
// and non-blocking, and the executor (and any Transform built on it) remains
// usable afterwards — dispatch simply reverts to spawn-per-task, trading
// worker reuse for reclaimability. Call it when the Transforms sharing this
// executor are retired; private WithWorkers pools are closed automatically
// when their Transform is garbage collected.
func (e *Executor) Close() { e.pool.Close() }

// WithWorkers gives the Transform a private executor with a fixed budget of
// n pooled worker goroutines (n ≥ 1), instead of the process-wide default.
// Use it to ring-fence a latency-critical plan from the rest of the process,
// or to cap the dispatch concurrency of a background one. Mutually exclusive
// with WithExecutor.
//
// Tuning: the budget is a dispatch bound, not a speed-up knob — n beyond
// GOMAXPROCS buys nothing for compute-bound transforms. For a parallel plan
// choose n = WithRanks·k to let k transforms run concurrently; for 2-D and
// batch work any n ≥ 1 is safe (dispatch degrades to the caller's goroutine
// at saturation).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithExecutor dispatches the Transform on a shared Executor, so several
// plans draw from one worker budget. Mutually exclusive with WithWorkers.
func WithExecutor(e *Executor) Option {
	return func(c *config) { c.executor, c.executorSet = e, true }
}
